/// Topology explorer: build any of the library's topologies and print its
/// structure — tiers, pods, ring wiring, addressing, per-switch FIB sizes
/// after convergence, and the Table II backup routes of a sample switch.
///
///   $ ./topology_report [fat|f2|f2scaled|leafspine|leafspine-f2|vl2|vl2-f2] [ports] [--dot]
///
/// Defaults: f2 8. With --dot, emits Graphviz instead (pipe into `dot`).

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/f2tree.hpp"
#include "topo/graphviz.hpp"

using namespace f2t;

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "f2";
  const int ports = argc > 2 ? std::atoi(argv[2]) : 8;

  core::Testbed::TopoBuilder builder;
  if (kind == "fat") {
    builder = [ports](net::Network& n) {
      return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = ports});
    };
  } else if (kind == "f2") {
    builder = [ports](net::Network& n) {
      return topo::build_f2tree(n, ports);
    };
  } else if (kind == "f2scaled") {
    builder = [ports](net::Network& n) {
      return topo::build_f2tree_scaled(n,
                                       topo::F2TreeScaledOptions{ports, -1});
    };
  } else if (kind == "leafspine" || kind == "leafspine-f2") {
    builder = [ports, kind](net::Network& n) {
      return topo::build_leaf_spine(
          n, topo::LeafSpineOptions{.ports = ports,
                                    .f2_rewire = kind == "leafspine-f2"});
    };
  } else if (kind == "vl2" || kind == "vl2-f2") {
    builder = [ports, kind](net::Network& n) {
      return topo::build_vl2(
          n, topo::Vl2Options{.ports = ports, .f2_rewire = kind == "vl2-f2"});
    };
  } else {
    std::cerr << "unknown topology kind: " << kind << "\n";
    return 1;
  }

  core::Testbed bed(builder);
  bed.converge();
  const auto& topo = bed.topo();

  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      topo::write_graphviz(std::cout, topo);
      return 0;
    }
  }

  std::cout << topo.summary() << "\n";
  const auto violations = topo::validate_topology(topo);
  std::cout << "validation: "
            << (violations.empty() ? "OK"
                                   : std::to_string(violations.size()) +
                                         " violations")
            << "\n";

  std::cout << "\npods:\n";
  for (std::size_t p = 0; p < topo.pods.size(); ++p) {
    std::cout << "  pod " << p << ": aggs {";
    for (const auto* agg : topo.pods[p].aggs) std::cout << " " << agg->name();
    std::cout << " } tors {";
    for (const auto* tor : topo.pods[p].tors) std::cout << " " << tor->name();
    std::cout << " }\n";
  }

  if (!topo.rings.empty()) {
    std::cout << "\nacross rings (" << topo.rings.size()
              << " switches, width " << topo.ring_width << "):\n";
    for (const auto* sw : topo.aggs) {
      const auto it = topo.rings.find(sw);
      if (it == topo.rings.end()) continue;
      std::cout << "  " << sw->name() << ": right ->";
      for (const auto port : it->second.right) {
        std::cout << " "
                  << bed.network().node(sw->port(port).peer_node).name();
      }
      std::cout << ", left ->";
      for (const auto port : it->second.left) {
        std::cout << " "
                  << bed.network().node(sw->port(port).peer_node).name();
      }
      std::cout << "\n";
    }
  }

  std::cout << "\nFIB sizes after convergence:\n";
  auto show = [&](const char* tier, const std::vector<net::L3Switch*>& sws) {
    if (sws.empty()) return;
    std::size_t total = 0;
    for (const auto* sw : sws) total += sw->fib().size();
    std::cout << "  " << tier << ": " << sws.size() << " switches, avg "
              << total / sws.size() << " routes\n";
  };
  auto topo_copy = topo;  // non-const accessors
  show("tor", topo_copy.tors);
  show("agg", topo_copy.aggs);
  show("core", topo_copy.cores);

  if (!topo.aggs.empty()) {
    auto* sample = topo_copy.aggs.front();
    std::cout << "\nrouting table of " << sample->name()
              << " (cf. Table II):\n";
    for (const auto& route : sample->fib().dump()) {
      std::cout << "  " << route.describe() << "\n";
    }
  }
  return 0;
}
