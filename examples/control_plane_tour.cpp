/// Control-plane tour: the same downward-link failure, recovered by three
/// different control planes — the OSPF-like distributed protocol the
/// paper evaluates, the §V centralized controller, and the §V BGP-like
/// path-vector protocol. Shows the paper's core argument from another
/// angle: the recovery gap is a *control-plane* cost, and F²Tree's local
/// reroute removes it no matter which control plane runs the network.
///
///   $ ./control_plane_tour [ports]   (default 8)

#include <cstdlib>
#include <iostream>

#include "core/f2tree.hpp"

using namespace f2t;

namespace {

sim::Time run_c1(const core::Testbed::TopoBuilder& builder,
                 const core::TestbedConfig& config) {
  core::Testbed bed(builder, config);
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  if (!plan) return -1;
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  return loss ? loss->duration() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int ports = argc > 1 ? std::atoi(argv[1]) : 8;
  std::cout << "One C1 failure, three control planes (" << ports
            << "-port topologies)\n\n";

  const core::Testbed::TopoBuilder fat = [ports](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = ports});
  };
  const core::Testbed::TopoBuilder f2 = [ports](net::Network& n) {
    return topo::build_f2tree(n, ports);
  };

  stats::Table table({"Control plane", "Fat tree loss", "F2Tree loss"});
  {
    core::TestbedConfig config;  // OSPF-like (paper's setting)
    table.row({"OSPF-like (SPF timer 200 ms)",
               sim::format_time(run_c1(fat, config)),
               sim::format_time(run_c1(f2, config))});
  }
  {
    core::TestbedConfig config;
    config.control_plane = core::ControlPlane::kCentral;
    table.row({"Centralized (compute 30 ms)",
               sim::format_time(run_c1(fat, config)),
               sim::format_time(run_c1(f2, config))});
  }
  {
    core::TestbedConfig config;
    config.control_plane = core::ControlPlane::kPathVector;
    table.row({"BGP-like (MRAI 100 ms)",
               sim::format_time(run_c1(fat, config)),
               sim::format_time(run_c1(f2, config))});
  }
  table.print(std::cout);
  std::cout << "\nF2Tree's column is the failure-detection time in every "
               "row: the backup routes live in the FIB, so no control "
               "plane is on the recovery path.\n";
  return 0;
}
