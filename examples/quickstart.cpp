/// Quickstart: build an F²Tree, break a downward link, watch fast reroute.
///
///   $ ./quickstart
///
/// Walks through the library's core loop in ~60 lines: assemble a Testbed
/// from a topology builder, converge the control plane, attach a UDP probe
/// flow, inject a failure, and read the recovery metrics.

#include <iostream>

#include "core/f2tree.hpp"

int main() {
  using namespace f2t;

  // 1. A ready-to-run network: 8-port F²Tree + OSPF-like control plane +
  //    BFD-like detection + backup static routes (installed automatically
  //    for F² topologies).
  core::Testbed bed(
      [](net::Network& n) { return topo::build_f2tree(n, /*ports=*/8); });
  bed.converge();  // converged FIBs at t = 0
  std::cout << "built: " << bed.topo().summary() << "\n";

  // 2. A probe flow between the leftmost and rightmost hosts, and the
  //    paper's C1 condition (one downward ToR<->agg link on its path).
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  if (!plan) {
    std::cerr << "no scenario\n";
    return 1;
  }
  std::cout << "scenario: " << plan->description << "\n";

  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options opts;
  opts.sport = plan->sport;
  opts.dport = plan->dport;
  opts.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 opts);
  sender.start();

  // 3. Fail the link at t = 380 ms and run.
  const sim::Time fail_at = sim::millis(380);
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, fail_at);
  }
  bed.sim().run(sim::seconds(3));

  // 4. Metrics: the connectivity gap should be the 60 ms detection time —
  //    no control-plane wait, because the pre-installed /16 static route
  //    through the right across neighbour takes over in the FIB.
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, fail_at);
  std::cout << "packets sent: " << sender.packets_sent()
            << ", received: " << sink.packets_received() << "\n";
  std::cout << "connectivity loss: "
            << (loss ? sim::format_time(loss->duration())
                     : std::string("none"))
            << " (fat tree would be ~270 ms; F2Tree is detection-bound at "
               "~60 ms)\n";
  return 0;
}
