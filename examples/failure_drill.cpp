/// Failure drill: walk one flow through every Table IV failure condition
/// on both topologies and narrate what the data plane does — which links
/// die, how the path changes during fast reroute, and how long
/// connectivity is lost. A compact interactive-style tour of §II-C.
///
///   $ ./failure_drill [ports]    (default 8)

#include <cstdlib>
#include <iostream>

#include "core/f2tree.hpp"

using namespace f2t;

namespace {

std::string path_to_string(const std::vector<const net::Node*>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += path[i]->name();
  }
  return out.empty() ? "(unroutable)" : out;
}

void drill(const core::Testbed::TopoBuilder& builder, const char* label,
           failure::Condition condition, int /*ports*/) {
  core::Testbed bed(builder);
  bed.converge();
  const auto plan = failure::build_condition(bed.topo(), condition);
  if (!plan) {
    std::cout << "  " << failure::condition_name(condition) << " on " << label
              << ": not applicable\n";
    return;
  }

  net::Packet probe;
  probe.src = plan->src->addr();
  probe.dst = plan->dst->addr();
  probe.proto = net::Protocol::kUdp;
  probe.sport = plan->sport;
  probe.dport = plan->dport;

  std::cout << "\n" << failure::condition_name(condition) << " on " << label
            << "\n  " << plan->description << "\n";
  std::cout << "  path before failure: "
            << path_to_string(
                   failure::trace_route(*plan->src, *plan->dst, probe))
            << "\n";

  // Attach the probe flow, fail, run past detection but before the
  // control plane converges, and re-trace: this is the fast-reroute path.
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  const sim::Time fail_at = sim::millis(380);
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, fail_at);
  }
  bed.sim().run(fail_at + sim::millis(100));  // post-detection, pre-SPF
  std::cout << "  path during fast reroute (t = +100 ms): "
            << path_to_string(
                   failure::trace_route(*plan->src, *plan->dst, probe))
            << "\n";
  bed.sim().run(sim::seconds(3));
  std::cout << "  path after convergence: "
            << path_to_string(
                   failure::trace_route(*plan->src, *plan->dst, probe))
            << "\n";

  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, fail_at);
  std::cout << "  connectivity loss: "
            << (loss ? sim::format_time(loss->duration())
                     : std::string("none"))
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int ports = argc > 1 ? std::atoi(argv[1]) : 8;
  std::cout << "F2Tree failure drill (" << ports << "-port topologies)\n";

  const core::Testbed::TopoBuilder fat = [ports](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = ports});
  };
  const core::Testbed::TopoBuilder f2 = [ports](net::Network& n) {
    return topo::build_f2tree(n, ports);
  };

  using failure::Condition;
  for (const auto condition :
       {Condition::kC1, Condition::kC2, Condition::kC3, Condition::kC4,
        Condition::kC5, Condition::kC6, Condition::kC7}) {
    if (!failure::condition_requires_f2(condition)) {
      drill(fat, "fat tree", condition, ports);
    }
    drill(f2, "F2Tree", condition, ports);
  }
  return 0;
}
