/// Partition-aggregate sandbox: run the paper's front-end-datacenter
/// workload (8-way scatter-gather requests + log-normal background flows)
/// through random failures on the topology of your choice and print the
/// tail of the completion-time distribution.
///
///   $ ./partition_aggregate_sim [f2|fat] [seconds] [concurrent_failures]
///
/// Defaults: f2, 60 seconds, 1 concurrent failure.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/f2tree.hpp"

using namespace f2t;

int main(int argc, char** argv) {
  const bool f2 = argc <= 1 || std::strcmp(argv[1], "fat") != 0;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 60;
  const int concurrent = argc > 3 ? std::atoi(argv[3]) : 1;

  std::cout << "partition-aggregate on " << (f2 ? "F2Tree" : "fat tree")
            << " (8-port), " << seconds << " s, " << concurrent
            << " concurrent failure(s)\n";

  core::Testbed bed([f2](net::Network& n) {
    return f2 ? topo::build_f2tree(n, 8)
              : topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
  });
  bed.converge();

  transport::PartitionAggregateOptions pa;
  pa.start = sim::seconds(1);
  pa.stop = sim::seconds(1 + seconds);
  pa.mean_interarrival = sim::millis(200);
  transport::PartitionAggregateApp app(bed.stacks(), sim::Random(11), pa);
  app.start();

  transport::BackgroundTrafficOptions bg;
  bg.start = sim::seconds(1);
  bg.stop = pa.stop;
  transport::BackgroundTraffic background(bed.stacks(), sim::Random(12), bg);
  background.start();

  failure::RandomFailureOptions rf;
  rf.start = sim::seconds(2);
  rf.stop = pa.stop;
  rf.max_concurrent = concurrent;
  rf.interarrival_median_s = concurrent > 1 ? 5.0 : 12.0;
  failure::RandomFailureGenerator failures(bed.injector(), sim::Random(13),
                                           rf);
  failures.start();

  bed.sim().run(pa.stop + sim::seconds(20));

  stats::Cdf cdf;
  for (const auto t : app.completion_times()) cdf.add(sim::to_millis(t));

  std::cout << "requests issued:      " << app.issued_count() << "\n"
            << "requests completed:   " << app.completed_count() << "\n"
            << "failures injected:    " << failures.failures_injected()
            << "\n"
            << "background flows:     " << background.flows().size() << " ("
            << background.completed_count() << " completed)\n"
            << "deadline (250 ms) missed: "
            << stats::Table::percent(
                   app.deadline_miss_ratio(pa.stop + sim::seconds(20)), 3)
            << "\n";
  if (!cdf.empty()) {
    std::cout << "completion time: median "
              << stats::Table::num(cdf.quantile(0.5), 2) << " ms, p99 "
              << stats::Table::num(cdf.quantile(0.99), 2) << " ms, p99.9 "
              << stats::Table::num(cdf.quantile(0.999), 2) << " ms, max "
              << stats::Table::num(cdf.max(), 2) << " ms\n";
    std::cout << "fraction of requests over 200 ms: "
              << stats::Table::percent(cdf.fraction_above(200.0), 3) << "\n";
  }
  return 0;
}
