#!/usr/bin/env bash
# Regenerates every paper artifact and the test report into ./results/,
# then smoke-tests the perf fast path: a Release (-O2/-O3 -DNDEBUG) build
# runs bench_micro and the run fails if any BENCH_*.json is missing or
# malformed (each bench emits machine-readable results; see
# bench/bench_util.hpp).
# Usage: scripts/run_all.sh [build-dir] [release-build-dir]
set -u
BUILD="${1:-build}"
RBUILD="${2:-build-release}"
OUT=results
mkdir -p "$OUT"
fail=0

echo "== tests =="
ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee "$OUT/tests.txt"
[ "${PIPESTATUS[0]}" -eq 0 ] || fail=1

echo "== observability smoke =="
# One observed recovery run must produce a schema-valid metrics JSON and
# event JSONL, plus the reconstructed timeline on stdout.
if "$BUILD"/tools/f2tsim recover --topo f2 --ports 8 --condition C1 \
    --metrics-out "$OUT/metrics.json" --events-out "$OUT/events.jsonl" \
    --timeline >"$OUT/timeline.txt" 2>&1; then
  python3 - "$OUT/metrics.json" "$OUT/events.jsonl" <<'EOF'
import json, sys

ok = True
metrics_path, events_path = sys.argv[1], sys.argv[2]
try:
    with open(metrics_path) as f:
        doc = json.load(f)
    for key in ("schema_version", "at_ns", "metrics", "histograms"):
        if key not in doc:
            raise ValueError(f"missing key {key!r}")
    if doc["schema_version"] != 1:
        raise ValueError(f"unexpected schema_version {doc['schema_version']}")
    if not doc["metrics"]:
        raise ValueError("empty metrics list")
    for m in doc["metrics"]:
        for key in ("name", "kind", "value"):
            if key not in m:
                raise ValueError(f"metric missing key {key!r}")
    print(f"OK      {metrics_path} ({len(doc['metrics'])} metrics)")
except (OSError, ValueError, json.JSONDecodeError) as e:
    print(f"BAD     {metrics_path}: {e}")
    ok = False
try:
    with open(events_path) as f:
        lines = [json.loads(line) for line in f if line.strip()]
    if not lines:
        raise ValueError("empty stream")
    header, events = lines[0], lines[1:]
    if header.get("schema_version") != 1 or header.get("stream") != "f2t-events":
        raise ValueError(f"bad header {header}")
    if header.get("events") != len(events):
        raise ValueError(f"header says {header.get('events')}, got {len(events)}")
    if not events:
        raise ValueError("no events recorded")
    for e in events:
        for key in ("at", "type"):
            if key not in e:
                raise ValueError(f"event missing key {key!r}")
    print(f"OK      {events_path} ({len(events)} events)")
except (OSError, ValueError, json.JSONDecodeError) as e:
    print(f"BAD     {events_path}: {e}")
    ok = False
sys.exit(0 if ok else 1)
EOF
  [ $? -eq 0 ] || fail=1
else
  echo "observability smoke FAILED (see $OUT/timeline.txt)"
  fail=1
fi

echo "== traced recover smoke =="
# A traced, sampled recovery run must produce a loadable Chrome
# trace_event JSON (the complete parent-linked recovery span chain) and a
# schema-valid telemetry JSONL with a rollup trailer.
if "$BUILD"/tools/f2tsim recover --topo f2 --ports 4 --condition C1 \
    --trace-out "$OUT/trace.json" --samples-out "$OUT/samples.jsonl" \
    --sample-interval-ms 5 >"$OUT/traced_recover.txt" 2>&1; then
  python3 - "$OUT/trace.json" "$OUT/samples.jsonl" <<'EOF'
import json, sys

ok = True
trace_path, samples_path = sys.argv[1], sys.argv[2]
try:
    with open(trace_path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    if not events:
        raise ValueError("no trace events")
    spans = [e for e in events if e.get("ph") == "X"]
    names = {e["name"] for e in spans}
    # The causal chain of one single-cut recovery, end to end.
    chain = {"recovery", "link_down", "detect", "fib_delta",
             "first_rerouted_packet"}
    missing = chain - names
    if missing:
        raise ValueError(f"span chain incomplete, missing {sorted(missing)}")
    for e in spans:
        for key in ("ts", "dur", "pid", "tid", "args"):
            if key not in e:
                raise ValueError(f"span {e['name']} missing key {key!r}")
        if e["dur"] < 0:
            raise ValueError(f"span {e['name']} has negative duration")
    flows_s = sum(1 for e in events if e.get("ph") == "s")
    flows_f = sum(1 for e in events if e.get("ph") == "f")
    if flows_s == 0 or flows_s != flows_f:
        raise ValueError(f"unbalanced causal arrows ({flows_s} s / {flows_f} f)")
    print(f"OK      {trace_path} ({len(spans)} spans, {flows_s} causal links)")
except (OSError, KeyError, ValueError, json.JSONDecodeError) as e:
    print(f"BAD     {trace_path}: {e}")
    ok = False
try:
    with open(samples_path) as f:
        lines = [json.loads(line) for line in f if line.strip()]
    if len(lines) < 3:
        raise ValueError("expected header, rows and rollup trailer")
    header, rows, trailer = lines[0], lines[1:-1], lines[-1]
    if header.get("schema_version") != 1 or header.get("stream") != "f2t-samples":
        raise ValueError(f"bad header {header}")
    if header.get("rows") != len(rows):
        raise ValueError(f"header says {header.get('rows')} rows, got {len(rows)}")
    width = len(header["series"])
    prev = -1
    for r in rows:
        if len(r["v"]) != width:
            raise ValueError("row width != series count")
        if r["at"] <= prev:
            raise ValueError("rows not strictly chronological")
        prev = r["at"]
    rollups = {r["name"] for r in trailer["rollups"]}
    if rollups != set(header["series"]):
        raise ValueError("rollup trailer does not cover every series")
    print(f"OK      {samples_path} ({len(rows)} rows x {width} series)")
except (OSError, KeyError, ValueError, json.JSONDecodeError) as e:
    print(f"BAD     {samples_path}: {e}")
    ok = False
sys.exit(0 if ok else 1)
EOF
  [ $? -eq 0 ] || fail=1
else
  echo "traced recover smoke FAILED (see $OUT/traced_recover.txt)"
  fail=1
fi

echo "== campaign artifact byte-identity (observability defaults) =="
# A spec that sets the observability knobs to their defaults must produce
# the exact artifact of a spec that never mentions them: the knobs are
# omitted from the canonical echo, so pre-observability artifacts remain
# byte-identical.
cat >"$OUT/spec_plain.json" <<'EOF'
{"name": "ident", "topologies": [{"name": "f2", "ports": 4}],
 "conditions": ["C1"], "seeds": 1, "horizon_ms": 1200}
EOF
cat >"$OUT/spec_defaults.json" <<'EOF'
{"name": "ident", "topologies": [{"name": "f2", "ports": 4}],
 "conditions": ["C1"], "seeds": 1, "horizon_ms": 1200,
 "trace": false, "sample_interval_ms": 0}
EOF
if "$BUILD"/tools/f2tsim campaign --spec "$OUT/spec_plain.json" --no-profile \
      --out "$OUT/campaign_plain.json" >"$OUT/campaign_ident.txt" 2>&1 \
    && "$BUILD"/tools/f2tsim campaign --spec "$OUT/spec_defaults.json" \
      --no-profile --out "$OUT/campaign_defaults.json" \
      >>"$OUT/campaign_ident.txt" 2>&1; then
  if cmp -s "$OUT/campaign_plain.json" "$OUT/campaign_defaults.json"; then
    echo "OK      default observability knobs leave the artifact byte-identical"
  else
    echo "BAD     artifact changed when trace/sample_interval_ms were set to defaults"
    fail=1
  fi
else
  echo "byte-identity smoke FAILED (see $OUT/campaign_ident.txt)"
  fail=1
fi

echo "== campaign smoke =="
# A small multi-threaded campaign must produce a schema-valid artifact,
# and its deterministic portion must be byte-identical to a single-job
# rerun of the same spec (the engine's core contract).
if "$BUILD"/tools/f2tsim campaign --topo f2 --ports 4 --conditions C1,C2 \
      --link-sites 2 --seeds 2 --jobs 4 --no-profile \
      --out "$OUT/campaign_j4.json" >"$OUT/campaign.txt" 2>&1 \
    && "$BUILD"/tools/f2tsim campaign --topo f2 --ports 4 --conditions C1,C2 \
      --link-sites 2 --seeds 2 --jobs 1 --no-profile \
      --out "$OUT/campaign_j1.json" >>"$OUT/campaign.txt" 2>&1; then
  if ! cmp -s "$OUT/campaign_j1.json" "$OUT/campaign_j4.json"; then
    echo "BAD     campaign artifact differs between --jobs 1 and --jobs 4"
    fail=1
  fi
  python3 - "$OUT/campaign_j4.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
    for key in ("schema_version", "kind", "spec", "runs", "aggregates"):
        if key not in doc:
            raise ValueError(f"missing key {key!r}")
    if doc["schema_version"] != 1 or doc["kind"] != "f2t-campaign":
        raise ValueError("bad schema_version/kind")
    if not doc["runs"]:
        raise ValueError("no runs")
    for r in doc["runs"]:
        for key in ("i", "topo", "control", "site", "seed", "ok", "on_path",
                    "loss_ns", "sent", "lost"):
            if key not in r:
                raise ValueError(f"run missing key {key!r}")
    if doc["aggregates"][0]["class"] != "total":
        raise ValueError("first aggregate must be 'total'")
    if doc["aggregates"][0]["runs"] != len(doc["runs"]):
        raise ValueError("total aggregate does not cover every run")
    for a in doc["aggregates"]:
        for key in ("class", "runs", "affected", "loss_ms_mean",
                    "loss_ms_p50", "loss_ms_p99", "gap_loss_hist"):
            if key not in a:
                raise ValueError(f"aggregate missing key {key!r}")
    print(f"OK      {path} ({len(doc['runs'])} runs, "
          f"{len(doc['aggregates'])} aggregates)")
except (OSError, ValueError, json.JSONDecodeError, IndexError) as e:
    print(f"BAD     {path}: {e}")
    sys.exit(1)
EOF
  [ $? -eq 0 ] || fail=1
else
  echo "campaign smoke FAILED (see $OUT/campaign.txt)"
  fail=1
fi

echo "== probe-BFD gray-failure campaign smoke =="
# Probe-based detection with a gray fault: BFD hello sessions must detect
# the silent packet-loss failure and the campaign artifact must stay
# schema-valid, echo the non-default knobs, and remain byte-identical
# across job counts.
if "$BUILD"/tools/f2tsim campaign --topo f2 --ports 4 --conditions C1 \
      --link-sites 2 --seeds 2 --jobs 4 --no-profile \
      --detection probe --fault gray \
      --out "$OUT/campaign_probe_j4.json" >"$OUT/campaign_probe.txt" 2>&1 \
    && "$BUILD"/tools/f2tsim campaign --topo f2 --ports 4 --conditions C1 \
      --link-sites 2 --seeds 2 --jobs 1 --no-profile \
      --detection probe --fault gray \
      --out "$OUT/campaign_probe_j1.json" >>"$OUT/campaign_probe.txt" 2>&1; then
  if ! cmp -s "$OUT/campaign_probe_j1.json" "$OUT/campaign_probe_j4.json"; then
    echo "BAD     probe campaign artifact differs between --jobs 1 and --jobs 4"
    fail=1
  fi
  python3 - "$OUT/campaign_probe_j4.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
    spec = doc["spec"]
    if spec.get("detection") != "probe":
        raise ValueError("spec must echo detection=probe")
    if spec.get("fault") != "gray":
        raise ValueError("spec must echo fault=gray")
    if not doc["runs"]:
        raise ValueError("no runs")
    bad = [r["i"] for r in doc["runs"] if not r["ok"]]
    if bad:
        raise ValueError(f"runs {bad} failed")
    # A gray failure is invisible to the oracle but not to BFD probes:
    # every affected run must measure a bounded (nonzero, recovered)
    # connectivity gap.
    affected = [r for r in doc["runs"] if r["on_path"]]
    if not affected:
        raise ValueError("no run steered traffic across the gray link")
    for r in affected:
        if not (0 < r["loss_ns"] < 500_000_000):
            raise ValueError(f"run {r['i']} gap {r['loss_ns']}ns not in (0, 500ms)")
    print(f"OK      {path} ({len(doc['runs'])} runs, "
          f"{len(affected)} affected, probe detection)")
except (OSError, KeyError, ValueError, json.JSONDecodeError) as e:
    print(f"BAD     {path}: {e}")
    sys.exit(1)
EOF
  [ $? -eq 0 ] || fail=1
else
  echo "probe campaign smoke FAILED (see $OUT/campaign_probe.txt)"
  fail=1
fi

echo "== process-mode campaign smoke =="
# The same spec run in-process (--jobs) and across forked worker
# processes (--workers) must produce byte-identical artifacts, and the
# survivability sweep section must be schema-valid.
cat >"$OUT/spec_workers.json" <<'EOF'
{"name": "workers", "topologies": [{"name": "f2", "ports": 4}],
 "conditions": ["C1"], "link_sites": 2, "random_sites": 6, "seeds": 2,
 "horizon_ms": 1200}
EOF
rm -rf "$OUT/campaign_w2.json.state"
if "$BUILD"/tools/f2tsim campaign --spec "$OUT/spec_workers.json" --jobs 4 \
      --no-profile --out "$OUT/campaign_w0.json" \
      >"$OUT/campaign_workers.txt" 2>&1 \
    && "$BUILD"/tools/f2tsim campaign --spec "$OUT/spec_workers.json" \
      --workers 2 --no-profile --out "$OUT/campaign_w2.json" \
      >>"$OUT/campaign_workers.txt" 2>&1; then
  if ! cmp -s "$OUT/campaign_w0.json" "$OUT/campaign_w2.json"; then
    echo "BAD     campaign artifact differs between --jobs 4 and --workers 2"
    fail=1
  fi
  python3 - "$OUT/campaign_w2.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
    surv = doc["survivability"]
    if surv["reliability_ms"] != [1, 10, 100, 1000]:
        raise ValueError(f"bad reliability thresholds {surv['reliability_ms']}")
    if not surv["groups"]:
        raise ValueError("no survivability groups")
    for g in surv["groups"]:
        for key in ("class", "draws", "affected", "failed",
                    "availability_mean", "availability_p50",
                    "availability_min", "reliability"):
            if key not in g:
                raise ValueError(f"group missing key {key!r}")
        if len(g["reliability"]) != 4:
            raise ValueError("reliability curve must have 4 points")
        if not all(0 <= v <= 1 for v in g["reliability"]):
            raise ValueError(f"reliability out of [0,1]: {g['reliability']}")
        if sorted(g["reliability"]) != g["reliability"]:
            raise ValueError(f"reliability not monotone: {g['reliability']}")
        if not (0 <= g["availability_min"] <= g["availability_mean"] <= 1):
            raise ValueError("availability out of order")
    draws = sum(g["draws"] for g in surv["groups"])
    rsites = [r for r in doc["runs"] if r["site"].startswith("R")]
    if draws != len(rsites):
        raise ValueError(f"groups cover {draws} draws, runs hold {len(rsites)}")
    print(f"OK      {path} ({len(surv['groups'])} survivability groups, "
          f"{draws} draws)")
except (OSError, KeyError, ValueError, json.JSONDecodeError) as e:
    print(f"BAD     {path}: {e}")
    sys.exit(1)
EOF
  [ $? -eq 0 ] || fail=1
else
  echo "process-mode campaign smoke FAILED (see $OUT/campaign_workers.txt)"
  fail=1
fi

echo "== campaign kill/resume smoke =="
# Kill a forked worker mid-campaign with SIGKILL; the parent must fail,
# and --resume must complete the campaign into an artifact byte-identical
# to an uninterrupted run. (If the campaign wins the race and finishes
# before the kill lands, resume is a no-op and the comparison still
# holds.)
cat >"$OUT/spec_kill.json" <<'EOF'
{"name": "kill", "topologies": [{"name": "f2", "ports": 8}],
 "conditions": ["C1"], "link_sites": 4, "seeds": 2}
EOF
rm -rf "$OUT/campaign_kill.json.state"
if "$BUILD"/tools/f2tsim campaign --spec "$OUT/spec_kill.json" --jobs 4 \
      --no-profile --out "$OUT/campaign_kill_ref.json" \
      >"$OUT/campaign_kill.txt" 2>&1; then
  "$BUILD"/tools/f2tsim campaign --spec "$OUT/spec_kill.json" --workers 2 \
      --no-profile --out "$OUT/campaign_kill.json" \
      >>"$OUT/campaign_kill.txt" 2>&1 &
  campaign_pid=$!
  worker_pid=""
  for _ in $(seq 1 100); do
    worker_pid=$(pgrep -P "$campaign_pid" -f "campaign-worker" | head -n 1) || true
    [ -n "$worker_pid" ] && break
    sleep 0.05
  done
  if [ -n "$worker_pid" ]; then
    kill -9 "$worker_pid" 2>/dev/null || true
  fi
  parent_rc=0
  wait "$campaign_pid" || parent_rc=$?
  if [ -n "$worker_pid" ] && [ "$parent_rc" -eq 0 ]; then
    # The kill may have raced the worker's own exit; only a kill that
    # landed mid-run must fail the parent. A zero rc with a killed
    # worker means the campaign completed — tolerated, resume below
    # still has to reproduce the reference bytes.
    echo "NOTE    worker kill raced campaign completion (parent rc 0)"
  fi
  if "$BUILD"/tools/f2tsim campaign --resume --no-profile \
        --out "$OUT/campaign_kill.json" >>"$OUT/campaign_kill.txt" 2>&1; then
    if cmp -s "$OUT/campaign_kill_ref.json" "$OUT/campaign_kill.json"; then
      echo "OK      killed campaign resumed to a byte-identical artifact"
    else
      echo "BAD     resumed artifact differs from the uninterrupted run"
      fail=1
    fi
  else
    echo "campaign --resume FAILED (see $OUT/campaign_kill.txt)"
    fail=1
  fi
else
  echo "kill/resume reference campaign FAILED (see $OUT/campaign_kill.txt)"
  fail=1
fi

echo "== workload campaign smoke =="
# An incast TCP workload riding a packet-fidelity campaign must produce a
# deterministic SLO section (byte-identical across job counts) with sane
# FCT percentiles, while workload-free artifacts above stay untouched.
if "$BUILD"/tools/f2tsim campaign --topo f2 --ports 4 --conditions C1 \
      --seeds 2 --jobs 4 --no-profile \
      --workload incast --wl-fanin 4 --wl-flow-bytes 2000 --wl-deadline-ms 100 \
      --out "$OUT/campaign_wl_j4.json" >"$OUT/campaign_wl.txt" 2>&1 \
    && "$BUILD"/tools/f2tsim campaign --topo f2 --ports 4 --conditions C1 \
      --seeds 2 --jobs 1 --no-profile \
      --workload incast --wl-fanin 4 --wl-flow-bytes 2000 --wl-deadline-ms 100 \
      --out "$OUT/campaign_wl_j1.json" >>"$OUT/campaign_wl.txt" 2>&1; then
  if ! cmp -s "$OUT/campaign_wl_j1.json" "$OUT/campaign_wl_j4.json"; then
    echo "BAD     workload campaign artifact differs between --jobs 1 and --jobs 4"
    fail=1
  fi
  python3 - "$OUT/campaign_wl_j4.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
    if doc["spec"].get("workload", {}).get("kind") != "incast":
        raise ValueError("spec must echo the workload axis")
    slo = doc["slo"]
    for key in ("runs", "flows", "completed", "fct_p50_ms_mean",
                "fct_p99_ms_mean", "fct_p999_ms_mean", "fct_p99_ms_max",
                "fct_p999_ms_max", "deadline_flows_in", "deadline_flows_out",
                "miss_in", "miss_out"):
        if key not in slo:
            raise ValueError(f"slo aggregate missing key {key!r}")
    if not (0 < slo["flows"] and 0 < slo["completed"] <= slo["flows"]):
        raise ValueError(f"implausible flow counts {slo}")
    if not (0 < slo["fct_p50_ms_mean"] <= slo["fct_p99_ms_mean"]
            <= slo["fct_p999_ms_mean"]):
        raise ValueError("FCT percentile means out of order")
    for r in doc["runs"]:
        for key in ("slo_flows", "fct_p50_ms", "fct_p999_ms", "miss_in"):
            if key not in r:
                raise ValueError(f"run {r['i']} missing SLO key {key!r}")
    print(f"OK      {path} ({slo['flows']} flows, "
          f"p999 max {slo['fct_p999_ms_max']:.2f} ms)")
except (OSError, KeyError, ValueError, json.JSONDecodeError) as e:
    print(f"BAD     {path}: {e}")
    sys.exit(1)
EOF
  [ $? -eq 0 ] || fail=1
else
  echo "workload campaign smoke FAILED (see $OUT/campaign_wl.txt)"
  fail=1
fi

echo "== benches =="
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "-- $name"
  # Benches write their BENCH_<name>.json into the cwd.
  (cd "$OUT" && "../$b") 2>&1 | tee "$OUT/$name.txt"
done

echo "== release bench smoke =="
if cmake -B "$RBUILD" -S . -DCMAKE_BUILD_TYPE=Release >"$OUT/release_configure.txt" 2>&1 \
    && cmake --build "$RBUILD" -j --target bench_micro bench_spf bench_scale_sweep bench_flow_scale >"$OUT/release_build.txt" 2>&1; then
  mkdir -p "$OUT/release"
  if ! (cd "$OUT/release" && "../../$RBUILD/bench/bench_micro" \
        --benchmark_min_time=0.05) >"$OUT/release/bench_micro.txt" 2>&1; then
    echo "release bench_micro FAILED (see $OUT/release/bench_micro.txt)"
    fail=1
  fi
  # The control-plane fast path: bench_spf exits nonzero if the
  # incremental solver diverges from compute_spf or falls back to full
  # runs on the single-link-failure scenario.
  if ! (cd "$OUT/release" && "../../$RBUILD/bench/bench_spf") \
      >"$OUT/release/bench_spf.txt" 2>&1; then
    echo "release bench_spf FAILED (see $OUT/release/bench_spf.txt)"
    fail=1
  fi
  # The hybrid-fidelity fast path: --full runs the flow-level k=32/48 fat
  # trees on top of the k<=20 two-fidelity sweep. The hard wall-time
  # budget fails the smoke if the flow-level path regresses to anywhere
  # near packet-level cost (a healthy run is minutes under the cap).
  if ! (cd "$OUT/release" && timeout 600 "../../$RBUILD/bench/bench_scale_sweep" \
        --full) >"$OUT/release/bench_scale_sweep.txt" 2>&1; then
    echo "release bench_scale_sweep FAILED or blew the 600 s budget (see $OUT/release/bench_scale_sweep.txt)"
    fail=1
  fi
  # The flow-scale transport path: arena-backed FluidFlowTable churn at
  # 10^3..10^5 concurrent flows plus a 10^5-flow workload window. The
  # wall-time budget fails the smoke if per-flow-event cost stops being
  # flat in the flow count.
  if ! (cd "$OUT/release" && timeout 600 "../../$RBUILD/bench/bench_flow_scale") \
      >"$OUT/release/bench_flow_scale.txt" 2>&1; then
    echo "release bench_flow_scale FAILED or blew the 600 s budget (see $OUT/release/bench_flow_scale.txt)"
    fail=1
  fi
else
  echo "release build FAILED (see $OUT/release_build.txt)"
  fail=1
fi

echo "== bench json validation =="
# The release smoke must have produced BENCH_micro.json, and every
# BENCH_*.json anywhere under results/ must parse with the right schema.
python3 - "$OUT" <<'EOF'
import glob, json, os, sys

out = sys.argv[1]
paths = sorted(glob.glob(os.path.join(out, "**", "BENCH_*.json"), recursive=True))
ok = True
for bench in ("micro", "spf", "scale_sweep", "flow_scale"):
    required = os.path.join(out, "release", f"BENCH_{bench}.json")
    if required not in paths:
        print(f"MISSING {required}: release bench_{bench} smoke produced no JSON")
        ok = False
for path in paths:
    try:
        with open(path) as f:
            doc = json.load(f)
        for key in ("benchmark", "git_rev", "results"):
            if key not in doc:
                raise ValueError(f"missing key {key!r}")
        if not isinstance(doc["results"], list) or not doc["results"]:
            raise ValueError("empty results")
        for r in doc["results"]:
            for key in ("name", "metric", "value", "unit"):
                if key not in r:
                    raise ValueError(f"result missing key {key!r}")
            if not isinstance(r["value"], (int, float)):
                raise ValueError(f"non-numeric value in {r['name']}")
        print(f"OK      {path} ({len(doc['results'])} results)")
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"BAD     {path}: {e}")
        ok = False
sys.exit(0 if ok else 1)
EOF
[ $? -eq 0 ] || fail=1

echo "== hybrid-fidelity guards =="
# Two hard gates on the Release scale sweep: the k=48 flow-level recovery
# run must have completed (its keys exist), and at k=20 the flow-level
# simulation phase must stay >= 10x faster than packet-level.
python3 - "$OUT/release/BENCH_scale_sweep.json" <<'EOF'
import json, sys

try:
    with open(sys.argv[1]) as f:
        doc = json.load(f)
except OSError as e:
    print(f"MISSING {sys.argv[1]}: {e}")
    sys.exit(1)
vals = {r["name"]: r["value"] for r in doc["results"]}
ok = True
for key in ("fat_tree_flow_loss/k=48", "sim_wall/flow/k=48"):
    if key not in vals:
        print(f"FAIL    k=48 flow-level recovery did not complete ({key} missing)")
        ok = False
packet = vals.get("sim_wall/packet/k=20", 0.0)
flow = vals.get("sim_wall/flow/k=20", 0.0)
if packet <= 0 or flow <= 0:
    print("FAIL    k=20 sim_wall rows missing from scale sweep")
    ok = False
else:
    ratio = packet / flow
    status = "OK     " if ratio >= 10 else "FAIL   "
    print(f"{status} flow-level speedup at k=20: {ratio:.1f}x "
          f"(packet {packet:.1f} ms vs flow {flow:.1f} ms, need >= 10x)")
    ok = ok and ratio >= 10
sys.exit(0 if ok else 1)
EOF
[ $? -eq 0 ] || fail=1

echo "== flow-scale guards =="
# Hard gates on the Release flow-scale bench: the 10^5-flow churn row must
# exist (the sweep completed at full scale), the arena table must beat the
# embedded pre-arena implementation by >= 5x at 10^4 flows, and the
# workload window must actually have held ~10^5 concurrent flows.
python3 - "$OUT/release/BENCH_flow_scale.json" <<'EOF'
import json, sys

try:
    with open(sys.argv[1]) as f:
        doc = json.load(f)
except OSError as e:
    print(f"MISSING {sys.argv[1]}: {e}")
    sys.exit(1)
vals = {r["name"]: r["value"] for r in doc["results"]}
ok = True
if "events_per_s/arena/n=100000" not in vals:
    print("FAIL    10^5-flow churn row missing (sweep did not reach full scale)")
    ok = False
speedup = vals.get("speedup_vs_legacy/n=10000", 0.0)
status = "OK     " if speedup >= 5 else "FAIL   "
print(f"{status} arena vs pre-arena at 10^4 flows: {speedup:.1f}x (need >= 5x)")
ok = ok and speedup >= 5
peak = vals.get("peak_active/workload", 0)
status = "OK     " if peak >= 100000 else "FAIL   "
print(f"{status} workload window peak concurrency: {peak:.0f} flows "
      "(need >= 100000)")
ok = ok and peak >= 100000
sys.exit(0 if ok else 1)
EOF
[ $? -eq 0 ] || fail=1

echo "== bench regression guard (non-fatal) =="
# Compares the Release-run BENCH_*.json under results/release/ against the
# committed baselines in bench/baselines/. Direction-aware: "real_time"
# regresses upward, "speedup" regresses downward. Absolute nanoseconds are
# machine-dependent, so the tolerance is generous and a regression only
# prints a warning table — it never fails the run.
python3 - "$OUT/release" bench/baselines <<'EOF'
import glob, json, os, sys

out_dir, base_dir = sys.argv[1], sys.argv[2]
TOLERANCE = 0.30  # 30% drift allowed before warning

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {r["name"]: r for r in doc.get("results", [])}

warnings = []
compared = 0
for base_path in sorted(glob.glob(os.path.join(base_dir, "BENCH_*.json"))):
    name = os.path.basename(base_path)
    out_path = os.path.join(out_dir, name)
    if not os.path.exists(out_path):
        continue
    try:
        base, cur = load(base_path), load(out_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"SKIP    {name}: {e}")
        continue
    for key, b in base.items():
        c = cur.get(key)
        if c is None or not b["value"] or b["metric"] not in ("real_time", "speedup"):
            continue
        compared += 1
        ratio = c["value"] / b["value"]
        if b["metric"] == "real_time" and ratio > 1 + TOLERANCE:
            warnings.append((name, key, b["value"], c["value"],
                             f"{(ratio - 1) * 100:+.0f}% slower"))
        elif b["metric"] == "speedup" and ratio < 1 - TOLERANCE:
            warnings.append((name, key, b["value"], c["value"],
                             f"{(1 - ratio) * 100:.0f}% less speedup"))
if warnings:
    print(f"WARNING {len(warnings)} of {compared} tracked metrics regressed "
          f"beyond {TOLERANCE:.0%} (numbers are machine-dependent):")
    print(f"  {'file':<24} {'metric':<40} {'baseline':>12} {'current':>12}  drift")
    for name, key, b, c, drift in warnings:
        print(f"  {name:<24} {key:<40} {b:>12.1f} {c:>12.1f}  {drift}")
else:
    print(f"OK      {compared} tracked metrics within {TOLERANCE:.0%} of baselines")
EOF

if [ "$fail" -ne 0 ]; then
  echo "run_all: FAILED (tests, release smoke, or bench json validation)"
  exit 1
fi
echo "results written to $OUT/"
