#!/usr/bin/env bash
# Regenerates every paper artifact and the test report into ./results/.
# Usage: scripts/run_all.sh [build-dir]
set -u
BUILD="${1:-build}"
OUT=results
mkdir -p "$OUT"

echo "== tests =="
ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee "$OUT/tests.txt"

echo "== benches =="
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "-- $name"
  "$b" 2>&1 | tee "$OUT/$name.txt"
done

echo "results written to $OUT/"
