/// Reproduces the paper's **scaling argument** (§I, §III, §IV intro): "the
/// advantage would be larger as the network scales, since it would consume
/// much more time for updating FIB and calculating OSPF shortest path".
/// We sweep the fabric port count with a per-router SPF computation cost
/// (100 µs/router, so an 80-switch fabric adds ~8 ms and a 720-switch
/// fabric ~72 ms) and measure C1 recovery. F²Tree's fast reroute never
/// touches the control plane, so its column stays at the detection floor
/// at every scale.
///
/// Also records per-configuration wall-clock time in BENCH_scale_sweep.json
/// — the end-to-end measure of the forwarding fast path, since every
/// simulated packet hop funnels through the cached FIB resolution.
///
/// The sweep runs both transport fidelities: the packet-level rows
/// (k = 8..20) are the historical baseline, and the flow-level rows rerun
/// the same configurations plus the k = 32/48 fat trees the fluid model
/// unlocks (k = 64 with --big; its central recompute alone runs minutes
/// on one core). `sim_wall/*-ospf` records each sweep's simulation phase
/// (topology build + convergence excluded, but shared OSPF event
/// machinery included — both fidelities pay the same LSA/SPF cost, so
/// these rows converge at small k). The `sim_wall/{packet,flow}/k=20`
/// pair the >= 10x flow-speedup guard compares instead isolates the
/// *transport* cost: a 120 s observation window on the k = 20 fat tree,
/// where per-packet events dominate the packet run while the fluid
/// probe's cost stays flat in the horizon.

#include <chrono>
#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "topo/fattree.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

UdpExperiment run_scaled(const core::Testbed::TopoBuilder& builder,
                         core::Fidelity fidelity, bool central) {
  ExperimentKnobs knobs;
  knobs.horizon = sim::seconds(3);
  knobs.fidelity = fidelity;
  if (central) {
    knobs.config.control_plane = core::ControlPlane::kCentral;
  } else {
    knobs.config.ospf.spf_compute_per_router = sim::micros(100);
  }
  return run_udp_experiment(builder, failure::Condition::kC1, knobs);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string fmt_loss(const UdpExperiment& e) {
  return e.ok ? stats::Table::num(sim::to_millis(e.connectivity_loss), 1)
              : "-";
}

}  // namespace

int main(int argc, char** argv) {
  // Default run stays quick enough for Debug builds: k <= 20, both
  // fidelities. --full adds the k = 32/48 flow-level fat trees (the
  // Release smoke's configuration, and what the committed baseline
  // records); --big adds k = 64 on top.
  bool full = false;
  bool big = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--big") == 0) full = big = true;
  }

  std::cout << "F2Tree reproduction - scaling argument: C1 recovery vs "
               "fabric size (SPF cost 100 us/router on top of the 200 ms "
               "timer and 10 ms FIB update)\n";

  std::vector<BenchResult> results;
  stats::Table table({"Ports N", "Switches (fat tree)",
                      "Fat tree loss (ms)", "F2Tree loss (ms)"});
  for (const int n : {8, 12, 16, 20}) {
    const double switches = core::Scalability::fat_tree_switches(n);
    const auto wall_start = std::chrono::steady_clock::now();
    const auto fat =
        run_scaled(fat_tree_builder(n), core::Fidelity::kPacket, false);
    const auto f2 =
        run_scaled(f2tree_builder(n), core::Fidelity::kPacket, false);
    const double wall_ms = ms_since(wall_start);
    table.row({std::to_string(n), stats::Table::num(switches, 0),
               fmt_loss(fat), fmt_loss(f2)});
    const std::string suffix = "/k=" + std::to_string(n);
    if (fat.ok) {
      results.push_back({"fat_tree_loss" + suffix, "connectivity_loss",
                         sim::to_millis(fat.connectivity_loss), "ms"});
    }
    if (f2.ok) {
      results.push_back({"f2tree_loss" + suffix, "connectivity_loss",
                         sim::to_millis(f2.connectivity_loss), "ms"});
    }
    results.push_back({"wall_clock" + suffix, "wall_time", wall_ms, "ms"});
    results.push_back(
        {"sim_wall/packet-ospf" + suffix, "wall_time",
         (fat.observation.profile.wall_seconds +
          f2.observation.profile.wall_seconds) * 1e3,
         "ms"});
  }
  table.print(std::cout);
  std::cout << "(expected: fat tree's recovery grows with the switch count "
               "via the SPF computation term; F2Tree stays at the 60 ms "
               "detection floor at every scale)\n";

  std::cout << "\nflow-level fidelity: same sweep without per-packet "
               "events, then the big fat trees the fluid model unlocks\n";
  stats::Table flow_table({"Ports N", "Control", "Fat loss (ms)",
                           "F2 loss (ms)", "Sim wall (ms)"});
  for (const int n : {8, 12, 16, 20}) {
    const auto fat =
        run_scaled(fat_tree_builder(n), core::Fidelity::kFlow, false);
    const auto f2 =
        run_scaled(f2tree_builder(n), core::Fidelity::kFlow, false);
    const double sim_wall_ms = (fat.observation.profile.wall_seconds +
                                f2.observation.profile.wall_seconds) * 1e3;
    const std::string suffix = "/k=" + std::to_string(n);
    flow_table.row({std::to_string(n), "ospf", fmt_loss(fat), fmt_loss(f2),
                    stats::Table::num(sim_wall_ms, 1)});
    if (fat.ok) {
      results.push_back({"fat_tree_flow_loss" + suffix, "connectivity_loss",
                         sim::to_millis(fat.connectivity_loss), "ms"});
    }
    if (f2.ok) {
      results.push_back({"f2tree_flow_loss" + suffix, "connectivity_loss",
                         sim::to_millis(f2.connectivity_loss), "ms"});
    }
    results.push_back(
        {"sim_wall/flow-ospf" + suffix, "wall_time", sim_wall_ms, "ms"});
  }

  // Beyond the packet engine's reach: single-failure recovery on k = 32/48
  // (and 64 with --big) fat trees, central control plane (per-switch LSDB
  // flooding at thousands of switches is a different bench), one host per
  // ToR — the probe needs endpoints, not load.
  std::vector<int> big_ks;
  if (full) big_ks = {32, 48};
  if (big) big_ks.push_back(64);
  for (const int n : big_ks) {
    const auto builder = [n](net::Network& net) {
      return topo::build_fat_tree(
          net, topo::FatTreeOptions{.ports = n, .hosts_per_tor = 1});
    };
    const auto wall_start = std::chrono::steady_clock::now();
    const auto fat = run_scaled(builder, core::Fidelity::kFlow, true);
    const double wall_ms = ms_since(wall_start);
    const double sim_wall_ms =
        fat.observation.profile.wall_seconds * 1e3;
    flow_table.row({std::to_string(n), "central", fmt_loss(fat), "-",
                    stats::Table::num(sim_wall_ms, 1)});
    const std::string suffix = "/k=" + std::to_string(n);
    if (fat.ok) {
      results.push_back({"fat_tree_flow_loss" + suffix, "connectivity_loss",
                         sim::to_millis(fat.connectivity_loss), "ms"});
    }
    results.push_back(
        {"flow_wall_clock" + suffix, "wall_time", wall_ms, "ms"});
    results.push_back(
        {"sim_wall/flow" + suffix, "wall_time", sim_wall_ms, "ms"});
  }
  flow_table.print(std::cout);
  std::cout << "(expected: identical loss columns at every k — the fluid "
               "probe simulates no per-packet events)\n";

  // The transport fast path in isolation: one k = 20 fat tree C1 run per
  // fidelity over a 120 s observation window. At a 3 s horizon the shared
  // OSPF event machinery dominates both fidelities' sim phase; at 120 s
  // the packet run's cost is per-packet transport while the fluid probe
  // pays a fixed number of regime traces, which is the whole point of the
  // flow-level mode. The >= 10x guard in scripts/run_all.sh reads this
  // pair.
  if (full) {
    ExperimentKnobs tk;
    tk.horizon = sim::seconds(120);
    tk.config.ospf.spf_compute_per_router = sim::micros(100);
    tk.fidelity = core::Fidelity::kPacket;
    const auto packet =
        run_udp_experiment(fat_tree_builder(20), failure::Condition::kC1, tk);
    tk.fidelity = core::Fidelity::kFlow;
    const auto flow =
        run_udp_experiment(fat_tree_builder(20), failure::Condition::kC1, tk);
    const double packet_ms = packet.observation.profile.wall_seconds * 1e3;
    const double flow_ms = flow.observation.profile.wall_seconds * 1e3;
    results.push_back({"sim_wall/packet/k=20", "wall_time", packet_ms, "ms"});
    results.push_back({"sim_wall/flow/k=20", "wall_time", flow_ms, "ms"});
    std::cout << "\ntransport fast path (k=20 fat tree, C1, 120 s horizon): "
              << "packet " << stats::Table::num(packet_ms, 1) << " ms vs flow "
              << stats::Table::num(flow_ms, 1) << " ms ("
              << stats::Table::num(packet_ms / flow_ms, 1) << "x)\n";
  }

  if (!write_bench_json("scale_sweep", results)) {
    std::cerr << "bench_scale_sweep: failed to write BENCH_scale_sweep.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_scale_sweep.json\n";
  return 0;
}
