/// Reproduces the paper's **scaling argument** (§I, §III, §IV intro): "the
/// advantage would be larger as the network scales, since it would consume
/// much more time for updating FIB and calculating OSPF shortest path".
/// We sweep the fabric port count with a per-router SPF computation cost
/// (100 µs/router, so an 80-switch fabric adds ~8 ms and a 720-switch
/// fabric ~72 ms) and measure C1 recovery. F²Tree's fast reroute never
/// touches the control plane, so its column stays at the detection floor
/// at every scale.
///
/// Also records per-configuration wall-clock time in BENCH_scale_sweep.json
/// — the end-to-end measure of the forwarding fast path, since every
/// simulated packet hop funnels through the cached FIB resolution.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

sim::Time run_scaled(const core::Testbed::TopoBuilder& builder) {
  ExperimentKnobs knobs;
  knobs.horizon = sim::seconds(3);
  knobs.config.ospf.spf_compute_per_router = sim::micros(100);
  const auto udp =
      run_udp_experiment(builder, failure::Condition::kC1, knobs);
  return udp.ok ? udp.connectivity_loss : -1;
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - scaling argument: C1 recovery vs "
               "fabric size (SPF cost 100 us/router on top of the 200 ms "
               "timer and 10 ms FIB update)\n";

  std::vector<BenchResult> results;
  stats::Table table({"Ports N", "Switches (fat tree)",
                      "Fat tree loss (ms)", "F2Tree loss (ms)"});
  for (const int n : {8, 12, 16, 20}) {
    const double switches = core::Scalability::fat_tree_switches(n);
    const auto wall_start = std::chrono::steady_clock::now();
    const auto fat = run_scaled(fat_tree_builder(n));
    const auto f2 = run_scaled(f2tree_builder(n));
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    table.row({std::to_string(n), stats::Table::num(switches, 0),
               fat >= 0 ? stats::Table::num(sim::to_millis(fat), 1) : "-",
               f2 >= 0 ? stats::Table::num(sim::to_millis(f2), 1) : "-"});
    const std::string suffix = "/k=" + std::to_string(n);
    if (fat >= 0) {
      results.push_back({"fat_tree_loss" + suffix, "connectivity_loss",
                         sim::to_millis(fat), "ms"});
    }
    if (f2 >= 0) {
      results.push_back({"f2tree_loss" + suffix, "connectivity_loss",
                         sim::to_millis(f2), "ms"});
    }
    results.push_back({"wall_clock" + suffix, "wall_time", wall_ms, "ms"});
  }
  table.print(std::cout);
  std::cout << "(expected: fat tree's recovery grows with the switch count "
               "via the SPF computation term; F2Tree stays at the 60 ms "
               "detection floor at every scale)\n";
  if (!write_bench_json("scale_sweep", results)) {
    std::cerr << "bench_scale_sweep: failed to write BENCH_scale_sweep.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_scale_sweep.json\n";
  return 0;
}
