/// Control-plane fast-path benchmark: single-link-failure reconvergence
/// SPF, full Dijkstra (compute_spf) vs the incremental SpfSolver, at
/// k = 8/16/20 fat trees (k = 20 — 500 switches — is the largest radix
/// the 256-ToR address plan admits), plus the FIB install delta each
/// recompute produces. Emits BENCH_spf.json (see bench_util.hpp); the committed
/// Release baseline lives in bench/baselines/.
///
/// The scenario is the paper's common case: a remote ToR uplink in
/// another pod fails and recovers while the computing router — an
/// aggregation switch, whose first-hop sets actually change when a
/// remote rack loses an uplink — reconverges. Each direction of the cut
/// arrives as its own LSA, exactly as flooding delivers it, and the SPF
/// run after both is what reconvergence pays per event.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "core/f2tree.hpp"

using namespace f2t;

namespace {

using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Reissues `base` with `peer` removed from its links (the LSA a router
/// floods when one adjacency dies), or verbatim when peer is 0.
routing::LsaPtr reissue(const routing::Lsa& base, net::Ipv4Addr peer,
                        std::uint64_t seq) {
  auto lsa = std::make_shared<routing::Lsa>(base);
  lsa->sequence = seq;
  std::erase_if(lsa->links, [&](const routing::LsaLink& l) {
    return l.neighbor == peer;
  });
  return lsa;
}

std::vector<routing::Route> canonical(std::vector<routing::Route> routes) {
  std::sort(routes.begin(), routes.end(),
            [](const routing::Route& a, const routing::Route& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              return a.next_hops < b.next_hops;
            });
  return routes;
}

struct CaseResult {
  double full_ns_per_run = 0;
  double incremental_ns_per_run = 0;
  std::size_t delta_down = 0;   ///< FIB slots touched by the failure
  std::size_t delta_up = 0;     ///< ... and by the recovery
  std::size_t routes = 0;       ///< converged route count at the agg
  std::size_t switches = 0;
  bool equivalent = false;
  bool all_incremental = false;
};

CaseResult run_case(int ports, int iterations) {
  sim::Simulator sim(1);
  net::Network network(sim);
  const auto topo =
      topo::build_fat_tree(network, topo::FatTreeOptions{.ports = ports});

  // Full LSDB by hand, as warm start builds it.
  std::vector<std::unique_ptr<routing::Ospf>> instances;
  for (auto* sw : topo.all_switches()) {
    auto inst = std::make_unique<routing::Ospf>(*sw);
    if (auto it = topo.subnet_of_tor.find(sw);
        it != topo.subnet_of_tor.end()) {
      inst->redistribute(it->second);
    }
    instances.push_back(std::move(inst));
  }
  routing::Lsdb lsdb;
  std::unordered_map<net::Ipv4Addr, routing::LsaPtr> base;
  for (auto& inst : instances) {
    auto lsa = inst->make_self_lsa();
    base[lsa->origin] = lsa;
    lsdb.consider(lsa);
  }

  net::L3Switch* self_sw = topo.aggs.front();
  const net::Ipv4Addr self = self_sw->router_id();
  std::vector<routing::LocalAdjacency> adjacency;
  for (net::PortId p = 0; p < self_sw->port_count(); ++p) {
    const auto& info = self_sw->port(p);
    if (info.peer_is_switch) adjacency.push_back({p, info.peer_addr});
  }

  // The failing link: the last pod's last ToR and its first uplink —
  // maximally remote from the computing aggregation switch in pod 0.
  net::L3Switch* tor_sw = topo.tors.back();
  const net::Ipv4Addr tor = tor_sw->router_id();
  net::Ipv4Addr agg;
  for (net::PortId p = 0; p < tor_sw->port_count(); ++p) {
    const auto& info = tor_sw->port(p);
    if (info.peer_is_switch) {
      agg = info.peer_addr;
      break;
    }
  }

  const routing::Lsa& tor_base = *base.at(tor);
  const routing::Lsa& agg_base = *base.at(agg);
  std::uint64_t seq = 2;

  CaseResult out;
  out.switches = topo.all_switches().size();

  // --- Full recompute timing -------------------------------------------
  double full_ns = 0;
  std::size_t sink = 0;
  for (int i = 0; i < iterations; ++i) {
    lsdb.consider(reissue(tor_base, agg, seq++));
    lsdb.consider(reissue(agg_base, tor, seq++));
    auto t0 = Clock::now();
    auto routes = routing::compute_spf(lsdb, self, adjacency);
    auto t1 = Clock::now();
    full_ns += ns_between(t0, t1);
    sink += routes.size();
    lsdb.consider(reissue(tor_base, {}, seq++));
    lsdb.consider(reissue(agg_base, {}, seq++));
    t0 = Clock::now();
    routes = routing::compute_spf(lsdb, self, adjacency);
    t1 = Clock::now();
    full_ns += ns_between(t0, t1);
    sink += routes.size();
  }
  out.full_ns_per_run = full_ns / (2.0 * iterations);

  // --- Incremental solver timing ---------------------------------------
  routing::SpfSolver solver;
  out.routes = solver.run(lsdb, self, adjacency).size();  // prime: full run
  bool all_incremental = true;
  double inc_ns = 0;
  for (int i = 0; i < iterations; ++i) {
    lsdb.consider(reissue(tor_base, agg, seq++));
    lsdb.consider(reissue(agg_base, tor, seq++));
    auto t0 = Clock::now();
    auto routes = solver.run(lsdb, self, adjacency);
    auto t1 = Clock::now();
    inc_ns += ns_between(t0, t1);
    all_incremental = all_incremental && solver.last_run_incremental();
    sink += routes.size();
    lsdb.consider(reissue(tor_base, {}, seq++));
    lsdb.consider(reissue(agg_base, {}, seq++));
    t0 = Clock::now();
    routes = solver.run(lsdb, self, adjacency);
    t1 = Clock::now();
    inc_ns += ns_between(t0, t1);
    all_incremental = all_incremental && solver.last_run_incremental();
    sink += routes.size();
  }
  out.incremental_ns_per_run = inc_ns / (2.0 * iterations);
  out.all_incremental = all_incremental;
  if (sink == 0) std::cerr << "bench_spf: empty route sets\n";

  // --- Equivalence sanity + FIB install delta sizes --------------------
  out.equivalent = canonical(solver.run(lsdb, self, adjacency)) ==
                   canonical(routing::compute_spf(lsdb, self, adjacency));
  routing::Fib fib;
  fib.apply_source_delta(routing::RouteSource::kOspf,
                         solver.run(lsdb, self, adjacency));
  lsdb.consider(reissue(tor_base, agg, seq++));
  lsdb.consider(reissue(agg_base, tor, seq++));
  out.delta_down = fib.apply_source_delta(routing::RouteSource::kOspf,
                                          solver.run(lsdb, self, adjacency));
  lsdb.consider(reissue(tor_base, {}, seq++));
  lsdb.consider(reissue(agg_base, {}, seq++));
  out.delta_up = fib.apply_source_delta(routing::RouteSource::kOspf,
                                        solver.run(lsdb, self, adjacency));
  return out;
}

}  // namespace

int main() {
  const struct {
    int ports;
    int iterations;
  } cases[] = {{8, 200}, {16, 50}, {20, 20}};

  std::vector<bench::BenchResult> results;
  bool ok = true;
  std::cout << "single-link-failure reconvergence SPF, fat tree\n"
            << "  k   switches  routes  full ns/run  incr ns/run  speedup"
            << "  delta(down/up)\n";
  for (const auto& c : cases) {
    const CaseResult r = run_case(c.ports, c.iterations);
    const double speedup =
        r.incremental_ns_per_run > 0
            ? r.full_ns_per_run / r.incremental_ns_per_run
            : 0;
    std::cout << "  " << c.ports << "  " << r.switches << "  " << r.routes
              << "  " << r.full_ns_per_run << "  " << r.incremental_ns_per_run
              << "  " << speedup << "x  " << r.delta_down << "/" << r.delta_up
              << (r.equivalent ? "" : "  [MISMATCH]")
              << (r.all_incremental ? "" : "  [FELL BACK TO FULL]") << "\n";
    ok = ok && r.equivalent && r.all_incremental;
    const std::string k = "/" + std::to_string(c.ports);
    results.push_back({"SpfFullLinkFailure" + k, "real_time",
                       r.full_ns_per_run, "ns"});
    results.push_back({"SpfIncrementalLinkFailure" + k, "real_time",
                       r.incremental_ns_per_run, "ns"});
    results.push_back({"SpfIncremental_speedup" + k, "speedup", speedup, "x"});
    results.push_back({"SpfFibDeltaDown" + k, "size",
                       static_cast<double>(r.delta_down), "entries"});
    results.push_back({"SpfFibDeltaUp" + k, "size",
                       static_cast<double>(r.delta_up), "entries"});
    results.push_back({"SpfRoutes" + k, "size",
                       static_cast<double>(r.routes), "routes"});
  }

  if (!ok) {
    std::cerr << "bench_spf: solver diverged from compute_spf or fell back\n";
    return 1;
  }
  if (!bench::write_bench_json("spf", results)) {
    std::cerr << "bench_spf: failed to write BENCH_spf.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_spf.json (" << results.size() << " results)\n";
  return 0;
}
