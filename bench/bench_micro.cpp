/// Substrate micro-benchmarks (google-benchmark): FIB longest-prefix
/// match (legacy allocating API, allocation-free lookup_into, and the
/// cached resolved-route fast path), ECMP hashing, SPF computation and
/// its first-hop set representation, event-queue throughput and topology
/// construction. These back the claim that the simulator is a
/// packet-level engine fast enough for the paper's 600 s emulations.
///
/// Unlike the figure/table benches this binary has a custom main: it runs
/// the registered benchmarks through a collecting reporter, derives the
/// fast-path speedup ratios, and writes BENCH_micro.json (see
/// bench_util.hpp) so the perf trajectory is tracked across PRs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <iostream>
#include <set>
#include <unordered_map>

#include "bench_util.hpp"
#include "core/f2tree.hpp"
#include "routing/ecmp.hpp"
#include "routing/route_cache.hpp"
#include "sim/event_queue.hpp"

using namespace f2t;

namespace {

/// Faithful replica of the seed's Fib lookup path (pre fast-path): probes
/// all 33 prefix lengths longest-first, rescans each slot for the best
/// source, takes a std::function liveness predicate and heap-allocates the
/// result. Kept here so BENCH_micro.json records the speedup against the
/// true baseline even though the library has moved on.
class SeedFib {
 public:
  using PortUpFn = std::function<bool(net::PortId)>;

  void install(routing::Route route) {
    std::sort(route.next_hops.begin(), route.next_hops.end());
    Slot& slot = by_length_[static_cast<std::size_t>(route.prefix.length())]
                           [route.prefix.address().value()];
    for (routing::Route& r : slot.by_source) {
      if (r.source == route.source) {
        r = std::move(route);
        return;
      }
    }
    slot.by_source.push_back(std::move(route));
  }

  std::vector<routing::NextHop> lookup(net::Ipv4Addr dst,
                                       const PortUpFn& port_up) const {
    for (int length = 32; length >= 0; --length) {
      const auto& bucket = by_length_[static_cast<std::size_t>(length)];
      if (bucket.empty()) continue;
      const std::uint32_t mask =
          length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
      const auto it = bucket.find(dst.value() & mask);
      if (it == bucket.end()) continue;
      const routing::Route* best = nullptr;
      for (const routing::Route& r : it->second.by_source) {
        if (best == nullptr ||
            static_cast<int>(r.source) < static_cast<int>(best->source)) {
          best = &r;
        }
      }
      if (best == nullptr) continue;
      std::vector<routing::NextHop> usable;
      usable.reserve(best->next_hops.size());
      for (const routing::NextHop& nh : best->next_hops) {
        if (!port_up || port_up(nh.port)) usable.push_back(nh);
      }
      if (!usable.empty()) return usable;
    }
    return {};
  }

 private:
  struct Slot {
    std::vector<routing::Route> by_source;
  };
  std::array<std::unordered_map<std::uint32_t, Slot>, 33> by_length_;
};

template <typename FibLike>
FibLike make_bench_fib_like(int n) {
  FibLike fib;
  for (int i = 0; i < n; ++i) {
    fib.install(routing::Route{
        net::Prefix(net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(i % 256),
                                  0),
                    24),
        {routing::NextHop{static_cast<net::PortId>(i % 8), {}}},
        routing::RouteSource::kOspf});
  }
  fib.install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                             {routing::NextHop{9, {}}},
                             routing::RouteSource::kStatic});
  return fib;
}

// The seed implementation, replicated above: the denominator every
// fast-path speedup in BENCH_micro.json is measured against.
void BM_FibLookupSeed(benchmark::State& state) {
  const auto fib = make_bench_fib_like<SeedFib>(static_cast<int>(state.range(0)));
  auto up = [](net::PortId) { return true; };
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Addr dst(10, 11, static_cast<std::uint8_t>(i++ % 256), 7);
    benchmark::DoNotOptimize(fib.lookup(dst, up));
  }
}
BENCHMARK(BM_FibLookupSeed)->Arg(32)->Arg(256);

routing::Fib make_bench_fib(int n) {
  return make_bench_fib_like<routing::Fib>(n);
}

// The seed-era API: std::function predicate, heap-allocated result.
void BM_FibLookup(benchmark::State& state) {
  const routing::Fib fib = make_bench_fib(static_cast<int>(state.range(0)));
  auto up = [](net::PortId) { return true; };
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Addr dst(10, 11, static_cast<std::uint8_t>(i++ % 256), 7);
    benchmark::DoNotOptimize(fib.lookup(dst, up));
  }
}
BENCHMARK(BM_FibLookup)->Arg(32)->Arg(256);

// Allocation-free walk: bool-vector port view, SmallVec result reused
// across lookups.
void BM_FibLookupInto(benchmark::State& state) {
  const routing::Fib fib = make_bench_fib(static_cast<int>(state.range(0)));
  const std::vector<bool> ports(16, true);
  const routing::Fib::PortStateView view{&ports};
  routing::Fib::HopVec hops;
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Addr dst(10, 11, static_cast<std::uint8_t>(i++ % 256), 7);
    hops.clear();
    fib.lookup_into(dst, view, hops);
    benchmark::DoNotOptimize(hops.data());
  }
}
BENCHMARK(BM_FibLookupInto)->Arg(32)->Arg(256);

// The forwarding fast path proper: resolved-route cache in front of the
// allocation-free walk; steady state is all hits.
void BM_FibLookupResolved(benchmark::State& state) {
  const routing::Fib fib = make_bench_fib(static_cast<int>(state.range(0)));
  const std::vector<bool> ports(16, true);
  const routing::Fib::PortStateView view{&ports};
  routing::ResolvedRouteCache cache;
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Addr dst(10, 11, static_cast<std::uint8_t>(i++ % 256), 7);
    benchmark::DoNotOptimize(cache.resolve(fib, dst, view, 0).data());
  }
}
BENCHMARK(BM_FibLookupResolved)->Arg(32)->Arg(256);

// Worst case for the cache: every lookup happens under a fresh port
// epoch (as right after a detection event), so every resolve misses and
// re-walks. Measures the cache's overhead over the bare walk.
void BM_FibLookupResolvedInvalidated(benchmark::State& state) {
  const routing::Fib fib = make_bench_fib(static_cast<int>(state.range(0)));
  const std::vector<bool> ports(16, true);
  const routing::Fib::PortStateView view{&ports};
  routing::ResolvedRouteCache cache;
  std::uint64_t epoch = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Addr dst(10, 11, static_cast<std::uint8_t>(i++ % 256), 7);
    benchmark::DoNotOptimize(cache.resolve(fib, dst, view, ++epoch).data());
  }
}
BENCHMARK(BM_FibLookupResolvedInvalidated)->Arg(256);

void BM_FibLookupFallthrough(benchmark::State& state) {
  // The fast-reroute path: the /24 is dead, lookup falls to the statics.
  routing::Fib fib;
  fib.install(routing::Route{net::Prefix::parse("10.11.3.0/24"),
                             {routing::NextHop{0, {}}},
                             routing::RouteSource::kOspf});
  fib.install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                             {routing::NextHop{1, {}}},
                             routing::RouteSource::kStatic});
  fib.install(routing::Route{net::Prefix::parse("10.10.0.0/15"),
                             {routing::NextHop{2, {}}},
                             routing::RouteSource::kStatic});
  auto up = [](net::PortId p) { return p != 0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.lookup(net::Ipv4Addr(10, 11, 3, 9), up));
  }
}
BENCHMARK(BM_FibLookupFallthrough);

// Same fall-through resolved through the cache: after the first miss the
// backup answer is served from the cache (port state is unchanged, so the
// stamp stays valid — exactly the steady state between detection and the
// control plane's eventual FIB rewrite).
void BM_FibLookupFallthroughResolved(benchmark::State& state) {
  routing::Fib fib;
  fib.install(routing::Route{net::Prefix::parse("10.11.3.0/24"),
                             {routing::NextHop{0, {}}},
                             routing::RouteSource::kOspf});
  fib.install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                             {routing::NextHop{1, {}}},
                             routing::RouteSource::kStatic});
  fib.install(routing::Route{net::Prefix::parse("10.10.0.0/15"),
                             {routing::NextHop{2, {}}},
                             routing::RouteSource::kStatic});
  std::vector<bool> ports(16, true);
  ports[0] = false;
  const routing::Fib::PortStateView view{&ports};
  routing::ResolvedRouteCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.resolve(fib, net::Ipv4Addr(10, 11, 3, 9), view, 1).data());
  }
}
BENCHMARK(BM_FibLookupFallthroughResolved);

/// Two-switch fixture for the L3Switch::forward fast path: a static route
/// steers everything out of the inter-switch port, whose egress direction
/// is physically down — transmit() then drops the packet inline without
/// scheduling events, so the loop isolates exactly
/// ttl-decrement + cached resolve + ECMP + tap dispatch + transmit.
struct ForwardBench {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::L3Switch* sw = nullptr;

  ForwardBench() {
    sw = &net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));
    auto& peer = net.add_switch("b", net::Ipv4Addr(10, 0, 0, 2));
    auto& link = net.connect(*sw, peer);
    sw->fib().install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                                     {routing::NextHop{0, peer.router_id()}},
                                     routing::RouteSource::kStatic});
    link.set_direction_up(link.direction_from(*sw), false);
  }

  net::Packet packet() const {
    net::Packet p;
    p.src = net::Ipv4Addr(10, 0, 0, 9);
    p.dst = net::Ipv4Addr(10, 11, 3, 7);
    p.size_bytes = 1000;
    return p;
  }
};

// Observability disabled: no taps, no drop handler. The zero-overhead
// claim of the obs layer is this number staying flat across PRs.
void BM_SwitchForward(benchmark::State& state) {
  ForwardBench bench;
  const net::Packet proto = bench.packet();
  for (auto _ : state) {
    net::Packet p = proto;  // fresh ttl each iteration
    benchmark::DoNotOptimize(bench.sw->forward(std::move(p)));
  }
}
BENCHMARK(BM_SwitchForward);

// Same path with one forwarding tap attached (what PacketTracer or the
// event journal costs per packet, excluding their own recording work).
void BM_SwitchForwardTapped(benchmark::State& state) {
  ForwardBench bench;
  std::uint64_t seen = 0;
  bench.sw->add_forward_tap(
      [&seen](const net::Packet&, net::PortId, net::PortId) { ++seen; });
  const net::Packet proto = bench.packet();
  for (auto _ : state) {
    net::Packet p = proto;
    benchmark::DoNotOptimize(bench.sw->forward(std::move(p)));
  }
  benchmark::DoNotOptimize(seen);
}
BENCHMARK(BM_SwitchForwardTapped);

void BM_EcmpHash(benchmark::State& state) {
  net::Packet p;
  p.src = net::Ipv4Addr(10, 11, 0, 10);
  p.dst = net::Ipv4Addr(10, 11, 9, 10);
  std::uint16_t sport = 0;
  for (auto _ : state) {
    p.sport = ++sport;
    benchmark::DoNotOptimize(routing::ecmp_select(p, 42, 4));
  }
}
BENCHMARK(BM_EcmpHash);

void BM_Spf(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo =
      topo::build_fat_tree(net, topo::FatTreeOptions{.ports = ports});
  // Build the full LSDB by hand (what warm start does).
  std::vector<std::unique_ptr<routing::Ospf>> instances;
  for (auto* sw : topo.all_switches()) {
    auto inst = std::make_unique<routing::Ospf>(*sw);
    if (auto it = topo.subnet_of_tor.find(sw); it != topo.subnet_of_tor.end()) {
      inst->redistribute(it->second);
    }
    instances.push_back(std::move(inst));
  }
  routing::Lsdb lsdb;
  for (auto& inst : instances) lsdb.consider(inst->make_self_lsa());
  // Compute at one core switch.
  auto* sw = topo.cores.front();
  std::vector<routing::LocalAdjacency> adj;
  for (net::PortId p = 0; p < sw->port_count(); ++p) {
    adj.push_back({p, sw->port(p).peer_addr});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::compute_spf(lsdb, sw->router_id(), adj));
  }
}
BENCHMARK(BM_Spf)->Arg(8)->Arg(16);

// First-hop set representations head to head: the union/insert pattern
// Dijkstra's relaxation performs, on the seed's std::set<Ipv4Addr> vs the
// inline sorted vector compute_spf uses now. 8 ECMP members, 16 unions —
// roughly one destination's worth of relaxations in a k=16 fat tree.
void BM_SpfFirstHopsStdSet(benchmark::State& state) {
  for (auto _ : state) {
    std::set<net::Ipv4Addr> acc;
    std::set<net::Ipv4Addr> member;
    for (std::uint32_t i = 0; i < 8; ++i) member.insert(net::Ipv4Addr(i * 7));
    for (int round = 0; round < 16; ++round) {
      acc.insert(member.begin(), member.end());
    }
    benchmark::DoNotOptimize(acc.size());
  }
}
BENCHMARK(BM_SpfFirstHopsStdSet);

void BM_SpfFirstHopsSmallVec(benchmark::State& state) {
  for (auto _ : state) {
    routing::SmallVec<std::uint16_t, 8> acc;
    routing::SmallVec<std::uint16_t, 8> member;
    for (std::uint16_t i = 0; i < 8; ++i) member.push_back(i);
    for (int round = 0; round < 16; ++round) {
      for (const std::uint16_t x : member) {
        const auto it = std::lower_bound(acc.begin(), acc.end(), x);
        if (it != acc.end() && *it == x) continue;
        const auto pos = static_cast<std::size_t>(it - acc.begin());
        acc.push_back(x);
        std::rotate(acc.begin() + pos, acc.end() - 1, acc.end());
      }
    }
    benchmark::DoNotOptimize(acc.size());
  }
}
BENCHMARK(BM_SpfFirstHopsSmallVec);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(i * 10, [&fired] { ++fired; });
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SchedulerChurn);

// The one-shot-timer pattern everywhere in the transport layer: schedule,
// maybe fire, cancel late. Exercises the in-heap id tracking that makes a
// late cancel a true no-op.
void BM_SchedulerCancelChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sched.schedule_at(i * 10, [] {}));
    }
    for (int i = 0; i < 1000; i += 2) sched.cancel(ids[i]);
    sched.run();
    for (const auto id : ids) sched.cancel(id);  // all late: true no-ops
    benchmark::DoNotOptimize(sched.cancelled_backlog());
  }
}
BENCHMARK(BM_SchedulerCancelChurn);

// Raw key-queue schedule/pop, calendar vs the retired binary heap, under
// the hold model (pop one, push one at a later time) that dominates a
// discrete-event run. The heap stays compiled as the honest baseline,
// and the comparison is honest in both directions: the flat heap's
// cache locality wins at small populations (~1.3x at 16k keys), the
// calendar's O(1) hold wins once the heap's log-depth outgrows the
// cache (crossover between 16k and 262k on this box) — the event
// populations the widened address plan's big fabrics generate.
template <typename Queue>
void key_queue_hold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Queue q;
    sim::EventId id = 1;
    // Seed a steady-state population with CBR-like spacing plus jitter.
    std::uint64_t salt = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < n; ++i) {
      salt ^= salt << 13; salt ^= salt >> 7; salt ^= salt << 17;
      q.push({static_cast<sim::Time>(i) * 1000 +
                  static_cast<sim::Time>(salt % 997),
              id++});
    }
    for (int i = 0; i < 4 * n; ++i) {
      const sim::EventKey k = q.pop();
      salt ^= salt << 13; salt ^= salt >> 7; salt ^= salt << 17;
      q.push({k.at + 1000 + static_cast<sim::Time>(salt % 997), id++});
    }
    benchmark::DoNotOptimize(q.size());
  }
}

void BM_BinaryHeapQueueHold(benchmark::State& state) {
  key_queue_hold<sim::BinaryHeapQueue>(state);
}
BENCHMARK(BM_BinaryHeapQueueHold)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_CalendarQueueHold(benchmark::State& state) {
  key_queue_hold<sim::CalendarQueue>(state);
}
BENCHMARK(BM_CalendarQueueHold)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_BuildTopology(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim);
    benchmark::DoNotOptimize(topo::build_f2tree(net, ports));
  }
}
BENCHMARK(BM_BuildTopology)->Arg(8)->Arg(16);

void BM_EndToEndUdpSecond(benchmark::State& state) {
  // One simulated second of the paper's CBR probe through an 8-port
  // F²Tree: the unit of work behind every recovery experiment.
  for (auto _ : state) {
    core::Testbed bed(
        [](net::Network& n) { return topo::build_f2tree(n, 8); });
    bed.converge();
    auto& topo = bed.topo();
    transport::UdpSink sink(bed.stack_of(*topo.hosts.back()), 9000);
    transport::UdpCbrSender::Options so;
    so.stop = sim::seconds(1);
    transport::UdpCbrSender sender(bed.stack_of(*topo.hosts.front()),
                                   topo.hosts.back()->addr(), so);
    sender.start();
    bed.sim().run(sim::seconds(1));
    benchmark::DoNotOptimize(sink.packets_received());
  }
}
BENCHMARK(BM_EndToEndUdpSecond)->Unit(benchmark::kMillisecond);

/// Console output as usual, plus every run captured as a BenchResult.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      results.push_back(f2t::bench::BenchResult{
          run.benchmark_name(), "real_time", run.GetAdjustedRealTime(),
          benchmark::GetTimeUnitString(run.time_unit)});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<f2t::bench::BenchResult> results;
};

double find_time(const std::vector<f2t::bench::BenchResult>& results,
                 const std::string& name) {
  for (const auto& r : results) {
    if (r.name == name && r.metric == "real_time") return r.value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  auto results = reporter.results;
  // Derived fast-path ratios (only when both sides ran, e.g. not under a
  // --benchmark_filter that excludes them).
  const struct {
    const char* name;
    const char* numer;
    const char* denom;
  } ratios[] = {
      {"FibLookupResolved_speedup/256", "BM_FibLookupSeed/256",
       "BM_FibLookupResolved/256"},
      {"FibLookupInto_speedup/256", "BM_FibLookupSeed/256",
       "BM_FibLookupInto/256"},
      {"FibLookupResolved_vs_current_legacy/256", "BM_FibLookup/256",
       "BM_FibLookupResolved/256"},
      {"SpfFirstHopsSmallVec_speedup", "BM_SpfFirstHopsStdSet",
       "BM_SpfFirstHopsSmallVec"},
      {"CalendarQueue_speedup/16384", "BM_BinaryHeapQueueHold/16384",
       "BM_CalendarQueueHold/16384"},
      {"CalendarQueue_speedup/262144", "BM_BinaryHeapQueueHold/262144",
       "BM_CalendarQueueHold/262144"},
  };
  for (const auto& ratio : ratios) {
    const double numer = find_time(results, ratio.numer);
    const double denom = find_time(results, ratio.denom);
    if (numer > 0 && denom > 0) {
      results.push_back(
          f2t::bench::BenchResult{ratio.name, "speedup", numer / denom, "x"});
    }
  }

  if (!f2t::bench::write_bench_json("micro", results)) {
    std::cerr << "bench_micro: failed to write BENCH_micro.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_micro.json (" << results.size() << " results)\n";
  return 0;
}
