/// Substrate micro-benchmarks (google-benchmark): FIB longest-prefix
/// match, ECMP hashing, SPF computation, event-queue throughput and
/// topology construction. These back the claim that the simulator is a
/// packet-level engine fast enough for the paper's 600 s emulations.

#include <benchmark/benchmark.h>

#include "core/f2tree.hpp"
#include "routing/ecmp.hpp"

using namespace f2t;

namespace {

void BM_FibLookup(benchmark::State& state) {
  routing::Fib fib;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    fib.install(routing::Route{
        net::Prefix(net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(i % 256),
                                  0),
                    24),
        {routing::NextHop{static_cast<net::PortId>(i % 8), {}}},
        routing::RouteSource::kOspf});
  }
  fib.install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                             {routing::NextHop{9, {}}},
                             routing::RouteSource::kStatic});
  auto up = [](net::PortId) { return true; };
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Addr dst(10, 11, static_cast<std::uint8_t>(i++ % 256), 7);
    benchmark::DoNotOptimize(fib.lookup(dst, up));
  }
}
BENCHMARK(BM_FibLookup)->Arg(32)->Arg(256);

void BM_FibLookupFallthrough(benchmark::State& state) {
  // The fast-reroute path: the /24 is dead, lookup falls to the statics.
  routing::Fib fib;
  fib.install(routing::Route{net::Prefix::parse("10.11.3.0/24"),
                             {routing::NextHop{0, {}}},
                             routing::RouteSource::kOspf});
  fib.install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                             {routing::NextHop{1, {}}},
                             routing::RouteSource::kStatic});
  fib.install(routing::Route{net::Prefix::parse("10.10.0.0/15"),
                             {routing::NextHop{2, {}}},
                             routing::RouteSource::kStatic});
  auto up = [](net::PortId p) { return p != 0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.lookup(net::Ipv4Addr(10, 11, 3, 9), up));
  }
}
BENCHMARK(BM_FibLookupFallthrough);

void BM_EcmpHash(benchmark::State& state) {
  net::Packet p;
  p.src = net::Ipv4Addr(10, 11, 0, 10);
  p.dst = net::Ipv4Addr(10, 11, 9, 10);
  std::uint16_t sport = 0;
  for (auto _ : state) {
    p.sport = ++sport;
    benchmark::DoNotOptimize(routing::ecmp_select(p, 42, 4));
  }
}
BENCHMARK(BM_EcmpHash);

void BM_Spf(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo =
      topo::build_fat_tree(net, topo::FatTreeOptions{.ports = ports});
  // Build the full LSDB by hand (what warm start does).
  std::vector<std::unique_ptr<routing::Ospf>> instances;
  for (auto* sw : topo.all_switches()) {
    auto inst = std::make_unique<routing::Ospf>(*sw);
    if (auto it = topo.subnet_of_tor.find(sw); it != topo.subnet_of_tor.end()) {
      inst->redistribute(it->second);
    }
    instances.push_back(std::move(inst));
  }
  routing::Lsdb lsdb;
  for (auto& inst : instances) lsdb.consider(inst->make_self_lsa());
  // Compute at one core switch.
  auto* sw = topo.cores.front();
  std::vector<routing::LocalAdjacency> adj;
  for (net::PortId p = 0; p < sw->port_count(); ++p) {
    adj.push_back({p, sw->port(p).peer_addr});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::compute_spf(lsdb, sw->router_id(), adj));
  }
}
BENCHMARK(BM_Spf)->Arg(8)->Arg(16);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(i * 10, [&fired] { ++fired; });
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SchedulerChurn);

void BM_BuildTopology(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim);
    benchmark::DoNotOptimize(topo::build_f2tree(net, ports));
  }
}
BENCHMARK(BM_BuildTopology)->Arg(8)->Arg(16);

void BM_EndToEndUdpSecond(benchmark::State& state) {
  // One simulated second of the paper's CBR probe through an 8-port
  // F²Tree: the unit of work behind every recovery experiment.
  for (auto _ : state) {
    core::Testbed bed(
        [](net::Network& n) { return topo::build_f2tree(n, 8); });
    bed.converge();
    auto& topo = bed.topo();
    transport::UdpSink sink(bed.stack_of(*topo.hosts.back()), 9000);
    transport::UdpCbrSender::Options so;
    so.stop = sim::seconds(1);
    transport::UdpCbrSender sender(bed.stack_of(*topo.hosts.front()),
                                   topo.hosts.back()->addr(), so);
    sender.start();
    bed.sim().run(sim::seconds(1));
    benchmark::DoNotOptimize(sink.packets_received());
  }
}
BENCHMARK(BM_EndToEndUdpSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
