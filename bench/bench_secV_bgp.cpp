/// Reproduces the **§V "Other Distributed Routing Schemes" discussion**:
/// DCNs running BGP-like protocols suffer the same slow failure recovery
/// (control-plane communication + calculation, no local reroute), so the
/// F² rewiring helps there too. This bench runs the C1 experiment under
/// the path-vector control plane and sweeps the MRAI — the BGP timer the
/// paper's citation [13] blames for (potentially exponential) convergence
/// delay.

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

struct PvResult {
  sim::Time loss = 0;
  std::uint64_t updates = 0;
};

PvResult run_pv(const core::Testbed::TopoBuilder& builder, sim::Time mrai) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kPathVector;
  config.path_vector.mrai = mrai;
  core::Testbed bed(builder, config);
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  if (!plan) return {};
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(3);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(4));

  PvResult out;
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  if (loss) out.loss = loss->duration();
  for (auto* sw : bed.topo().all_switches()) {
    out.updates += bed.path_vector_of(*sw).counters().updates_sent;
  }
  return out;
}

/// Churn variant: the link flaps (down/up/down) before the final failure,
/// so the updates for the last transition run into the MRAI gate — the
/// regime where BGP's timer actually hurts (cf. [13]).
PvResult run_pv_flap(const core::Testbed::TopoBuilder& builder,
                     sim::Time mrai) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kPathVector;
  config.path_vector.mrai = mrai;
  core::Testbed bed(builder, config);
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  if (!plan) return {};
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(5);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  net::Link* link = plan->fail_links.front();
  // Flap: down at 380 ms, up at 700 ms, final down at 1020 ms.
  bed.injector().fail_at(*link, sim::millis(380));
  bed.injector().recover_at(*link, sim::millis(700));
  bed.injector().fail_at(*link, sim::millis(1020));
  bed.sim().run(sim::seconds(6));

  PvResult out;
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss =
      stats::find_connectivity_loss(arrivals, sim::millis(1020));
  if (loss) out.loss = loss->duration();
  for (auto* sw : bed.topo().all_switches()) {
    out.updates += bed.path_vector_of(*sw).counters().updates_sent;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - SecV: BGP-like (path-vector) control "
               "plane, C1 failure at 380 ms (8-port)\n";

  stats::Table table({"MRAI", "Fat tree loss (ms)", "Fat tree updates",
                      "F2Tree loss (ms)", "F2Tree updates"});
  for (const auto mrai :
       {sim::millis(10), sim::millis(100), sim::millis(500)}) {
    const auto fat = run_pv(fat_tree_builder(8), mrai);
    const auto f2 = run_pv(f2tree_builder(8), mrai);
    table.row({sim::format_time(mrai),
               stats::Table::num(sim::to_millis(fat.loss), 1),
               std::to_string(fat.updates),
               stats::Table::num(sim::to_millis(f2.loss), 1),
               std::to_string(f2.updates)});
  }
  table.print(std::cout);
  std::cout << "(single clean failure: BGP converges after detection + one "
               "withdrawal wave + FIB update; the MRAI does not bite yet)\n";

  stats::print_heading(
      std::cout, "Flapping link (down/up/down): the MRAI-gated regime");
  stats::Table flap({"MRAI", "Fat tree loss after final failure (ms)",
                     "F2Tree loss (ms)"});
  for (const auto mrai :
       {sim::millis(10), sim::millis(100), sim::millis(500),
        sim::seconds(2)}) {
    const auto fat = run_pv_flap(fat_tree_builder(8), mrai);
    const auto f2 = run_pv_flap(f2tree_builder(8), mrai);
    flap.row({sim::format_time(mrai),
              stats::Table::num(sim::to_millis(fat.loss), 1),
              stats::Table::num(sim::to_millis(f2.loss), 1)});
  }
  flap.print(std::cout);
  std::cout << "(expected: with repeated transitions, fat tree's recovery "
               "grows with the MRAI while F2Tree stays at the 60 ms "
               "detection floor — 'F2Tree is also applicable to the DCN "
               "running distributed routing schemes other than OSPF'. A "
               "0.0 row means the MRAI was so large that the link's "
               "recovery was never re-advertised before the final failure, "
               "so no traffic was on the link to lose.)\n";
  return 0;
}
