/// Substantiates the **Table I / §VI comparison with Aspen tree**: Aspen
/// <f,0> adds fault tolerance only between aggregation and core (f+1
/// parallel links), at the cost of 1/(f+1) of the nodes. A core<->agg
/// failure there recovers via ECMP over the duplicate links, but a
/// ToR<->agg downward failure still waits for the control plane — the
/// paper: "Aspen Tree only has immediate backup links for downward links
/// in the fault-tolerant layer, which may still incur a substantial time
/// for recovery from downward failures at other layers." F²Tree protects
/// every layer and gives up only one ToR per pod.

#include <iostream>

#include "bench_util.hpp"
#include "topo/aspen.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

core::Testbed::TopoBuilder aspen_builder(int ports, int f) {
  return [ports, f](net::Network& n) {
    return topo::build_aspen_tree(
        n, topo::AspenOptions{.ports = ports, .fault_tolerance = f,
                              .hosts_per_tor = -1});
  };
}

/// Fails one link of the given kind on a traced flow's path and returns
/// the connectivity loss.
sim::Time measure(const core::Testbed::TopoBuilder& builder, bool core_layer) {
  core::Testbed bed(builder);
  bed.converge();
  const auto condition =
      core_layer ? failure::Condition::kC2 : failure::Condition::kC1;
  const auto plan = failure::build_condition(bed.topo(), condition);
  if (!plan) return -1;
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  return loss ? loss->duration() : 0;
}

std::string fmt(sim::Time loss) {
  if (loss < 0) return "(n/a)";
  if (loss == 0) return "none";
  return stats::Table::num(sim::to_millis(loss), 1) + " ms";
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - Table I / SecVI: comparison with "
               "Aspen tree <f,0> (8-port, single failure at 380 ms)\n";

  stats::Table table({"Topology", "Hosts", "core<->agg failure loss",
                      "ToR<->agg failure loss"});

  {
    core::Testbed bed(fat_tree_builder(8));
    table.row({"fat tree", std::to_string(bed.topo().hosts.size()),
               fmt(measure(fat_tree_builder(8), true)),
               fmt(measure(fat_tree_builder(8), false))});
  }
  {
    core::Testbed bed(aspen_builder(8, 1));
    table.row({"Aspen <1,0>", std::to_string(bed.topo().hosts.size()),
               fmt(measure(aspen_builder(8, 1), true)),
               fmt(measure(aspen_builder(8, 1), false))});
  }
  {
    core::Testbed bed(aspen_builder(8, 3));
    table.row({"Aspen <3,0>", std::to_string(bed.topo().hosts.size()),
               fmt(measure(aspen_builder(8, 3), true)),
               fmt(measure(aspen_builder(8, 3), false))});
  }
  {
    core::Testbed bed(f2tree_builder(8));
    table.row({"F2Tree", std::to_string(bed.topo().hosts.size()),
               fmt(measure(f2tree_builder(8), true)),
               fmt(measure(f2tree_builder(8), false))});
  }
  table.print(std::cout);
  std::cout << "(expected: Aspen recovers core<->agg failures immediately "
               "via its duplicate links but pays half (resp. 3/4) of the "
               "hosts and still recovers ToR<->agg failures at control-"
               "plane speed; F2Tree is detection-bound at both layers for "
               "a far smaller node cost)\n";
  return 0;
}
