/// Reproduces the **testbed experiment (§III)**: Fig 2 (UDP and TCP
/// throughput through a downward ToR<->agg link failure on the 4-port,
/// 3-layer prototypes) and **Table III** (duration of connectivity loss,
/// packets lost, duration of TCP throughput collapse).
///
/// Paper reference values: fat tree 272,847 us loss / 1302 packets /
/// 700 ms collapse; F²Tree 60,619 us / 310 packets / 220 ms collapse.

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

int main() {
  std::cout << "F2Tree reproduction - testbed experiment (Fig 2, Table III)\n"
            << "4-port 3-layer prototypes; downward ToR<->agg link failure "
               "at t = 380 ms; detection 60 ms, SPF timer 200 ms, FIB update "
               "10 ms.\n";

  ExperimentKnobs knobs;
  knobs.horizon = sim::seconds(4);

  const auto fat_udp =
      run_udp_experiment(fat_tree_builder(4), failure::Condition::kC1, knobs);
  const auto f2_udp =
      run_udp_experiment(f2tree_builder(4), failure::Condition::kC1, knobs);
  const auto fat_tcp =
      run_tcp_experiment(fat_tree_builder(4), failure::Condition::kC1, knobs);
  const auto f2_tcp =
      run_tcp_experiment(f2tree_builder(4), failure::Condition::kC1, knobs);
  if (!fat_udp.ok || !f2_udp.ok || !fat_tcp.ok || !f2_tcp.ok) {
    std::cerr << "scenario construction failed\n";
    return 1;
  }

  stats::print_heading(std::cout, "Table III");
  stats::Table table({"", "Duration of connectivity loss (us)", "Packets lost",
                      "Duration of throughput collapse (us)"});
  table.row({"Fat tree",
             stats::Table::num(sim::to_micros(fat_udp.connectivity_loss), 0),
             std::to_string(fat_udp.packets_lost),
             stats::Table::num(sim::to_micros(fat_tcp.collapse), 0)});
  table.row({"F2Tree",
             stats::Table::num(sim::to_micros(f2_udp.connectivity_loss), 0),
             std::to_string(f2_udp.packets_lost),
             stats::Table::num(sim::to_micros(f2_tcp.collapse), 0)});
  table.print(std::cout);
  std::cout << "(paper: 272847 / 1302 / 700000 vs 60619 / 310 / 220000)\n";

  const double loss_reduction =
      1.0 - sim::to_seconds(f2_udp.connectivity_loss) /
                sim::to_seconds(fat_udp.connectivity_loss);
  const double pkt_reduction =
      1.0 - static_cast<double>(f2_udp.packets_lost) /
                static_cast<double>(fat_udp.packets_lost);
  std::cout << "connectivity-loss reduction: "
            << stats::Table::percent(loss_reduction, 1)
            << " (paper: ~78%), packet-loss reduction: "
            << stats::Table::percent(pkt_reduction, 1) << " (paper: ~75%)\n";

  stats::print_heading(std::cout, "Fig 2(a): UDP receiving throughput");
  print_throughput_series(std::cout, "fat tree UDP", fat_udp.throughput,
                          sim::millis(200), sim::millis(1000));
  print_throughput_series(std::cout, "F2Tree UDP", f2_udp.throughput,
                          sim::millis(200), sim::millis(1000));

  stats::print_heading(std::cout, "Fig 2(b): TCP receiving throughput");
  print_throughput_series(std::cout, "fat tree TCP", fat_tcp.throughput,
                          sim::millis(200), sim::millis(1400));
  print_throughput_series(std::cout, "F2Tree TCP", f2_tcp.throughput,
                          sim::millis(200), sim::millis(1400));

  std::cout << "\nscenarios:\n  fat: " << fat_udp.scenario
            << "\n  f2:  " << f2_udp.scenario << "\n";
  return 0;
}
