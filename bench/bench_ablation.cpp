/// Ablations of the design choices the paper argues for (DESIGN.md §
/// "Design tradeoffs recorded for ablation"):
///
///  1. **Asymmetric backup prefix lengths** (§II-B): install both across
///     links under one equal-length prefix instead. Under condition C4
///     (two adjacent downlinks dead) ECMP can then bounce packets between
///     the two crippled switches — the Fig 3(b) loop — visible as TTL
///     drops and a recovery no better than the control plane's.
///  2. **Ring width 2 vs 4** (§II-C): with 4 across links per switch (and
///     rightward-first backup ordering) even the paper's pathological C7
///     condition fast-reroutes.
///  3. **SPF timer setting** (§III): shortening the initial SPF delay
///     narrows fat tree's recovery gap in the single-failure experiment —
///     at the cost of far more SPF churn under instability, which is why
///     operators raise it instead.

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

void ablation_equal_length_prefixes() {
  stats::print_heading(
      std::cout,
      "Ablation 1: asymmetric (paper) vs equal-length backup prefixes, "
      "condition C4 over 32 distinct flows");

  // Whether a flow loops under equal-length backups depends on the two
  // crippled switches' independent ECMP hashes (right-then-left bounces;
  // roughly a quarter of flows). The paper's asymmetric prefixes make the
  // rightward choice deterministic, so *no* flow loops. Measure the
  // fraction of flows that fail to fast-reroute under each scheme.
  for (const bool equal : {false, true}) {
    int flows = 0;
    int looped = 0;
    std::uint64_t ttl_drops_total = 0;
    std::uint16_t base_sport = 20000;
    while (flows < 32 && base_sport < 24000) {
      ExperimentKnobs knobs;
      knobs.horizon = sim::seconds(2);
      knobs.config.backup = equal ? core::BackupMode::kEqualLength
                                  : core::BackupMode::kPaper;
      core::Testbed bed(f2tree_builder(8), knobs.config);
      bed.converge();
      const auto plan =
          failure::build_condition(bed.topo(), failure::Condition::kC4,
                                   net::Protocol::kUdp, base_sport, 512);
      if (!plan) break;
      base_sport = static_cast<std::uint16_t>(plan->sport + 1);

      transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
      transport::UdpCbrSender::Options so;
      so.sport = plan->sport;
      so.dport = plan->dport;
      so.stop = sim::millis(1500);
      transport::UdpCbrSender sender(bed.stack_of(*plan->src),
                                     plan->dst->addr(), so);
      sender.start();
      for (net::Link* link : plan->fail_links) {
        bed.injector().fail_at(*link, knobs.fail_at);
      }
      bed.sim().run(knobs.horizon);

      std::uint64_t ttl_drops = 0;
      for (auto* sw : bed.topo().all_switches()) {
        ttl_drops += sw->counters().dropped_ttl;
      }
      std::vector<sim::Time> arrivals;
      for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
      const auto loss =
          stats::find_connectivity_loss(arrivals, knobs.fail_at);
      ++flows;
      // "Looped" = fast reroute failed: TTL deaths or a control-plane
      // sized hole instead of the 60 ms detection floor.
      if (ttl_drops > 0 ||
          (loss && loss->duration() > sim::millis(150))) {
        ++looped;
      }
      ttl_drops_total += ttl_drops;
    }
    std::cout << "  " << (equal ? "equal-length" : "paper (/16 + /15)")
              << ": " << looped << "/" << flows
              << " flows failed fast reroute, total TTL-expired drops = "
              << ttl_drops_total << "\n";
  }
  std::cout << "(expected: 0 looping flows with the paper's asymmetric "
               "prefixes; a substantial fraction with equal lengths, with "
               "packets dying of TTL exhaustion — the Fig 3(b) loop)\n";
}

void ablation_ring_width() {
  stats::print_heading(std::cout,
                       "Ablation 2: ring width 2 vs 4 under condition C7");
  for (const int width : {2, 4}) {
    const auto udp = run_udp_experiment(f2tree_builder(8, width),
                                        failure::Condition::kC7);
    if (!udp.ok) {
      std::cout << "  width " << width << ": (no C7 plan)\n";
      continue;
    }
    std::cout << "  width " << width << ": connectivity loss = "
              << sim::format_time(udp.connectivity_loss) << "\n";
  }
  std::cout << "(expected: width 2 degrades to control-plane recovery "
               "(~270 ms); width 4 keeps fast reroute (~60 ms) as §II-C "
               "suggests)\n";
}

void ablation_spf_timer() {
  stats::print_heading(
      std::cout, "Ablation 3: fat tree recovery vs initial SPF delay (C1)");
  stats::Table table({"SPF initial delay", "Fat tree loss (ms)",
                      "F2Tree loss (ms)"});
  for (const auto delay :
       {sim::millis(50), sim::millis(200), sim::millis(1000)}) {
    ExperimentKnobs knobs;
    knobs.horizon = sim::seconds(5);
    knobs.config.ospf.throttle.initial_delay = delay;
    const auto fat = run_udp_experiment(fat_tree_builder(8),
                                        failure::Condition::kC1, knobs);
    const auto f2 =
        run_udp_experiment(f2tree_builder(8), failure::Condition::kC1, knobs);
    table.row({sim::format_time(delay),
               fat.ok ? stats::Table::num(
                            sim::to_millis(fat.connectivity_loss), 1)
                      : "-",
               f2.ok ? stats::Table::num(sim::to_millis(f2.connectivity_loss),
                                         1)
                     : "-"});
  }
  table.print(std::cout);
  std::cout << "(expected: fat tree tracks detection + SPF delay + FIB "
               "update; F2Tree stays at the 60 ms detection floor "
               "regardless)\n";
}

void ablation_tcp_rto() {
  stats::print_heading(
      std::cout,
      "Ablation 4: TCP initial/min RTO vs throughput collapse (C1)");
  // §III: "Setting a shorter initial RTO down to hundreds of us could
  // successfully reduce the duration of TCP throughput collapse both in
  // fat tree and F2Tree. However, it will not narrow the gap between
  // these two methods to be less than the difference between the duration
  // of connectivity loss."
  stats::Table table({"Initial RTO", "Fat tree collapse (ms)",
                      "F2Tree collapse (ms)", "Gap (ms)"});
  for (const auto rto :
       {sim::millis(1), sim::millis(50), sim::millis(200)}) {
    ExperimentKnobs knobs;
    knobs.horizon = sim::seconds(4);
    knobs.tcp.initial_rto = rto;
    knobs.tcp.min_rto = rto;
    const auto fat = run_tcp_experiment(fat_tree_builder(8),
                                        failure::Condition::kC1, knobs);
    const auto f2 =
        run_tcp_experiment(f2tree_builder(8), failure::Condition::kC1, knobs);
    if (!fat.ok || !f2.ok) continue;
    table.row({sim::format_time(rto),
               stats::Table::num(sim::to_millis(fat.collapse), 0),
               stats::Table::num(sim::to_millis(f2.collapse), 0),
               stats::Table::num(
                   sim::to_millis(fat.collapse - f2.collapse), 0)});
  }
  table.print(std::cout);
  std::cout << "(expected: shorter RTOs shrink both collapses, but the gap "
               "never drops below the ~210 ms connectivity-loss "
               "difference)\n";
}

void extension_unidirectional() {
  stats::print_heading(
      std::cout,
      "Extension: unidirectional downward-direction cut (paper future "
      "work)");
  // Cut only the Sx -> dst-ToR direction. BFD-style detection declares
  // the session down on both ends, so recovery matches the bidirectional
  // case in both designs while the reverse direction keeps carrying
  // traffic until detection.
  for (const bool f2 : {false, true}) {
    core::Testbed bed(f2 ? f2tree_builder(8) : fat_tree_builder(8));
    bed.converge();
    const auto plan =
        failure::build_condition(bed.topo(), failure::Condition::kC1);
    if (!plan) continue;
    transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
    transport::UdpCbrSender::Options so;
    so.sport = plan->sport;
    so.dport = plan->dport;
    so.stop = sim::seconds(2);
    transport::UdpCbrSender sender(bed.stack_of(*plan->src),
                                   plan->dst->addr(), so);
    sender.start();
    bed.injector().fail_direction_at(*plan->fail_links.front(), *plan->sx,
                                     sim::millis(380));
    bed.sim().run(sim::seconds(3));
    std::vector<sim::Time> arrivals;
    for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
    const auto loss =
        stats::find_connectivity_loss(arrivals, sim::millis(380));
    std::cout << "  " << (f2 ? "F2Tree" : "fat tree")
              << ": connectivity loss = "
              << (loss ? sim::format_time(loss->duration())
                       : std::string("none"))
              << "\n";
  }
}

void extension_gray_failure() {
  stats::print_heading(
      std::cout,
      "Extension: gray failure (silent 30% loss, no detection event)");
  // Honest limitation: F²Tree accelerates recovery from *detected*
  // failures. A silently lossy link never trips BFD, so neither design's
  // reroute machinery engages and TCP pays the loss rate on both.
  for (const bool f2 : {false, true}) {
    core::Testbed bed(f2 ? f2tree_builder(8) : fat_tree_builder(8));
    bed.converge();
    const auto plan = failure::build_condition(
        bed.topo(), failure::Condition::kC1, net::Protocol::kTcp);
    if (!plan) continue;
    sim::Random rng(21);
    plan->fail_links.front()->set_loss_rate(net::Link::Direction::kAToB, 0.3,
                                            &rng);

    auto& a = bed.stack_of(*plan->src);
    auto& b = bed.stack_of(*plan->dst);
    transport::TcpConnection conn(a, b, plan->sport, plan->dport,
                                  transport::TcpConfig{});
    conn.a().write(2'000'000);
    const sim::Time t0 = bed.sim().now();
    sim::Time done = sim::kNever;
    conn.b().set_on_delivered([&](std::uint64_t d) {
      if (d >= 2'000'000 && done == sim::kNever) done = bed.sim().now();
    });
    bed.sim().run(sim::seconds(120));
    std::cout << "  " << (f2 ? "F2Tree" : "fat tree")
              << ": 2 MB transfer took "
              << (done == sim::kNever ? std::string("(did not finish)")
                                      : sim::format_time(done - t0))
              << ", retransmissions = "
              << conn.a().stats().segments_retransmitted
              << ", gray drops = "
              << plan->fail_links.front()->dropped_gray() << "\n";
  }
  std::cout << "(expected: both designs suffer alike — the rewiring only "
               "helps once a failure is *detected*; silent loss needs "
               "gray-failure detectors, out of the paper's scope)\n";
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - design ablations\n";
  ablation_equal_length_prefixes();
  ablation_ring_width();
  ablation_spf_timer();
  ablation_tcp_rto();
  extension_unidirectional();
  extension_gray_failure();
  return 0;
}
