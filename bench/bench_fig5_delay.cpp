/// Reproduces **Fig 5**: end-to-end packet delay during failure recovery.
/// The paper plots fat tree under C1 and F²Tree under C1, C4, C5 and C7:
/// fat tree shows a ~270 ms hole; F²Tree shows a short 60 ms hole followed
/// by a fast-reroute period with slightly higher delay (one or more extra
/// hops through across links) until the control plane converges, after
/// which delay returns to baseline.

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

void print_delay_series(const std::string& name,
                        const stats::TimeSeries& series, sim::Time from,
                        sim::Time to) {
  std::cout << "# " << name << ": time_ms delay_us\n";
  // Average per 10 ms window for a readable series.
  for (sim::Time t = from; t < to; t += sim::millis(10)) {
    const double mean = series.mean(t, t + sim::millis(10));
    std::cout << "  " << sim::to_millis(t) << " "
              << (mean > 0 ? stats::Table::num(mean, 1) : std::string("-"))
              << "\n";
  }
}

struct Phase {
  double baseline_us;  ///< mean delay before the failure
  double frr_us;       ///< mean delay during fast rerouting
  double final_us;     ///< mean delay after control-plane convergence
};

Phase phases(const stats::TimeSeries& series, sim::Time fail_at) {
  return Phase{
      series.mean(sim::millis(100), fail_at),
      series.mean(fail_at + sim::millis(70), fail_at + sim::millis(200)),
      series.mean(fail_at + sim::millis(600), fail_at + sim::millis(1200)),
  };
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - Fig 5: end-to-end delay during "
               "failure recovery (8-port, failure at t = 380 ms)\n";

  ExperimentKnobs knobs;
  knobs.horizon = sim::seconds(4);

  struct Case {
    std::string name;
    core::Testbed::TopoBuilder builder;
    failure::Condition condition;
  };
  const std::vector<Case> cases = {
      {"fat tree / C1", fat_tree_builder(8), failure::Condition::kC1},
      {"F2Tree / C1", f2tree_builder(8), failure::Condition::kC1},
      {"F2Tree / C4", f2tree_builder(8), failure::Condition::kC4},
      {"F2Tree / C5", f2tree_builder(8), failure::Condition::kC5},
      {"F2Tree / C7", f2tree_builder(8), failure::Condition::kC7},
  };

  stats::Table summary({"Case", "Baseline delay (us)",
                        "During fast reroute (us)", "After convergence (us)",
                        "Connectivity hole (ms)"});
  std::vector<std::pair<std::string, stats::TimeSeries>> all_series;

  for (const auto& c : cases) {
    const auto udp = run_udp_experiment(c.builder, c.condition, knobs);
    if (!udp.ok) {
      summary.row({c.name, "-", "-", "-", "-"});
      continue;
    }
    const Phase p = phases(udp.delay_series, knobs.fail_at);
    summary.row({c.name, stats::Table::num(p.baseline_us, 1),
                 p.frr_us > 0 ? stats::Table::num(p.frr_us, 1)
                              : std::string("(no traffic)"),
                 stats::Table::num(p.final_us, 1),
                 stats::Table::num(sim::to_millis(udp.connectivity_loss), 1)});
    all_series.emplace_back(c.name, udp.delay_series);
  }

  stats::print_heading(std::cout, "Fig 5 summary (phase means)");
  summary.print(std::cout);
  std::cout << "(paper: baseline ~100 us; F2Tree fast reroute ~117 us (one "
               "extra hop), more under C4/C5; back to ~100 us after "
               "convergence; fat tree and F2Tree/C7 show a ~270 ms hole)\n";

  stats::print_heading(std::cout, "Fig 5 series");
  for (const auto& [name, series] : all_series) {
    print_delay_series(name, series, sim::millis(300), sim::millis(900));
  }
  return 0;
}
