/// Reproduces **Fig 4**: duration of connectivity loss, UDP packets lost
/// and TCP throughput-collapse duration under the failure conditions
/// C1-C7 of Table IV, on the 8-port 3-layer emulation topologies.
/// C1-C5 compare fat tree and F²Tree; C6/C7 exist only in F²Tree.

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

int main() {
  std::cout << "F2Tree reproduction - Fig 4: handling different failure "
               "conditions (8-port, 3-layer)\n";

  struct Row {
    failure::Condition condition;
    const char* label;
    const char* description;
  };
  const std::vector<Row> conditions = {
      {failure::Condition::kC1, "C1", "1 ToR-agg link"},
      {failure::Condition::kC2, "C2", "1 core-agg link"},
      {failure::Condition::kC3, "C3", "1 ToR-agg + 1 core-agg link"},
      {failure::Condition::kC4, "C4", "2 adjacent ToR-agg links"},
      {failure::Condition::kC5, "C5",
       "all ToR-agg links in pod except left neighbour's"},
      {failure::Condition::kC6, "C6", "1 ToR-agg link + right across link"},
      {failure::Condition::kC7, "C7",
       "2 ToR-agg links + 1 right across link"},
      {failure::Condition::kC8, "C8*",
       "1 ToR-agg link + both across links (SecII-C parenthetical)"},
  };

  ExperimentKnobs knobs;
  knobs.horizon = sim::seconds(4);

  stats::Table loss({"Condition", "Failures", "Fat tree loss (ms)",
                     "F2Tree loss (ms)"});
  stats::Table pkts({"Condition", "Fat tree packets lost",
                     "F2Tree packets lost"});
  stats::Table collapse({"Condition", "Fat tree TCP collapse (ms)",
                         "F2Tree TCP collapse (ms)"});

  for (const auto& row : conditions) {
    std::string fat_loss = "-", f2_loss = "-";
    std::string fat_pkts = "-", f2_pkts = "-";
    std::string fat_col = "-", f2_col = "-";

    if (!failure::condition_requires_f2(row.condition)) {
      const auto udp =
          run_udp_experiment(fat_tree_builder(8), row.condition, knobs);
      const auto tcp =
          run_tcp_experiment(fat_tree_builder(8), row.condition, knobs);
      if (udp.ok) {
        fat_loss = stats::Table::num(sim::to_millis(udp.connectivity_loss), 1);
        fat_pkts = std::to_string(udp.packets_lost);
      }
      if (tcp.ok) fat_col = stats::Table::num(sim::to_millis(tcp.collapse), 0);
    }
    {
      const auto udp =
          run_udp_experiment(f2tree_builder(8), row.condition, knobs);
      const auto tcp =
          run_tcp_experiment(f2tree_builder(8), row.condition, knobs);
      if (udp.ok) {
        f2_loss = stats::Table::num(sim::to_millis(udp.connectivity_loss), 1);
        f2_pkts = std::to_string(udp.packets_lost);
      }
      if (tcp.ok) f2_col = stats::Table::num(sim::to_millis(tcp.collapse), 0);
    }

    loss.row({row.label, row.description, fat_loss, f2_loss});
    pkts.row({row.label, fat_pkts, f2_pkts});
    collapse.row({row.label, fat_col, f2_col});
  }

  stats::print_heading(std::cout, "Fig 4 top: duration of connectivity loss");
  loss.print(std::cout);
  std::cout << "(paper: fat tree ~270 ms everywhere; F2Tree ~60 ms on C1-C6, "
               "degrading to fat tree on C7)\n";

  stats::print_heading(std::cout, "Fig 4 middle: UDP packets lost");
  pkts.print(std::cout);

  stats::print_heading(std::cout,
                       "Fig 4 bottom: TCP throughput collapse duration");
  collapse.print(std::cout);
  std::cout << "(paper: ~610 ms fat tree vs ~220 ms F2Tree on C1-C6)\n";
  return 0;
}
