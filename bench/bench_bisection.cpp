/// Validates **§II-D "Trading (negligible) bisection bandwidth"**
/// experimentally: the paper argues F²Tree keeps fat tree's merits (no
/// oversubscription, rich path diversity) because the across links sit
/// idle outside failures. We run saturating cross-pod permutation traffic
/// (every host sends one bulk TCP flow to a host half the network away)
/// and compare the per-host goodput distribution between fat tree and
/// F²Tree, plus the same with one failure present (when the across links
/// carry the fast-reroute detour).

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

struct BisectionResult {
  double mean_mbps = 0;
  double min_mbps = 0;
  double p10_mbps = 0;
  std::size_t flows = 0;
};

BisectionResult run_permutation(const core::Testbed::TopoBuilder& builder,
                                bool with_failure) {
  // Warm up past the initial slow-start carnage, then measure 300 ms.
  const sim::Time start = sim::millis(200);
  const sim::Time stop = sim::millis(500);

  core::Testbed bed(builder);
  bed.converge();
  auto stacks = bed.stacks();
  const std::size_t n = stacks.size();

  // DCN-tuned TCP (sub-ms RTT fabric): a 200 ms minimum RTO would keep
  // congested flows silent for most of the window and measure the RTO
  // constant, not the fabric.
  transport::TcpConfig tcp;
  tcp.min_rto = sim::millis(10);
  tcp.initial_rto = sim::millis(10);

  struct Flow {
    std::unique_ptr<transport::TcpConnection> connection;
    std::uint64_t delivered_at_start = 0;
    std::uint64_t delivered_at_stop = 0;
  };
  std::vector<Flow> flows(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& flow = flows[i];
    flow.connection = transport::TcpConnection::open(
        *stacks[i], *stacks[(i + n / 2) % n], tcp);
    flow.connection->a().write(1'000'000'000);  // effectively unbounded
  }
  if (with_failure) {
    // One downward link dies mid-run; the detour rides the across links.
    auto* agg = bed.topo().pods[0].aggs[0];
    auto* tor = bed.topo().pods[0].tors[0];
    if (net::Link* link = bed.network().find_link(*agg, *tor)) {
      bed.injector().fail_at(*link, sim::millis(100));
    }
  }
  bed.sim().at(start, [&] {
    for (auto& flow : flows) {
      flow.delivered_at_start = flow.connection->b().bytes_delivered();
    }
  });
  bed.sim().at(stop, [&] {
    for (auto& flow : flows) {
      flow.delivered_at_stop = flow.connection->b().bytes_delivered();
    }
  });
  bed.sim().run(stop + sim::millis(1));

  stats::Cdf mbps;
  for (const auto& flow : flows) {
    const double bytes = static_cast<double>(flow.delivered_at_stop -
                                             flow.delivered_at_start);
    mbps.add(bytes * 8.0 / (sim::to_seconds(stop - start) * 1e6));
  }
  BisectionResult out;
  out.flows = n;
  out.mean_mbps = mbps.mean();
  out.min_mbps = mbps.min();
  out.p10_mbps = mbps.quantile(0.10);
  return out;
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - SecII-D: bisection bandwidth under "
               "saturating cross-pod permutation traffic (bulk TCP, 300 ms "
               "window, 1 Gbps links)\n";

  stats::Table table({"Topology", "Flows", "Mean goodput (Mbps)",
                      "p10 (Mbps)", "Min (Mbps)"});
  struct Case {
    const char* name;
    core::Testbed::TopoBuilder builder;
    bool failure;
  };
  const std::vector<Case> cases = {
      {"fat tree (6-port)", fat_tree_builder(6), false},
      {"F2Tree (6-port)", f2tree_builder(6), false},
      {"fat tree (6-port, 1 failure)", fat_tree_builder(6), true},
      {"F2Tree (6-port, 1 failure)", f2tree_builder(6), true},
  };
  for (const auto& c : cases) {
    const auto r = run_permutation(c.builder, c.failure);
    table.row({c.name, std::to_string(r.flows),
               stats::Table::num(r.mean_mbps, 0),
               stats::Table::num(r.p10_mbps, 0),
               stats::Table::num(r.min_mbps, 0)});
  }
  table.print(std::cout);
  std::cout << "(expected: same order of per-host goodput, dominated by ECMP "
               "hash collisions in both designs. At this tiny scale the "
               "rewiring removes 1 of 3 uplinks per aggregation switch, so "
               "F2Tree measures somewhat lower - the honest small-N version "
               "of SecII-D's point that the cost is a low-order term: at "
               "production port counts the rewiring takes 1 of N/2 uplinks, "
               "e.g. ~4% at N=48. The across links change nothing in the "
               "failure-free case and absorb the reroute detour when a "
               "downward link dies.)\n";
  return 0;
}
