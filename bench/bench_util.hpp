#pragma once

/// Shared aliases for the paper-reproduction benches: the actual
/// experiment drivers live in the library (core/runner.hpp) so the CLI
/// tool and the tests use exactly the same code paths.

#include <iostream>

#include "core/f2tree.hpp"
#include "core/runner.hpp"

namespace f2t::bench {

using core::Testbed;

using ExperimentKnobs = core::RunKnobs;
using UdpExperiment = core::UdpRun;
using TcpExperiment = core::TcpRun;

inline Testbed::TopoBuilder fat_tree_builder(int ports) {
  return core::topology_builder("fat", ports);
}

inline Testbed::TopoBuilder f2tree_builder(int ports, int ring_width = 2) {
  return core::topology_builder("f2", ports, ring_width);
}

inline UdpExperiment run_udp_experiment(const Testbed::TopoBuilder& builder,
                                        failure::Condition condition,
                                        const ExperimentKnobs& knobs = {}) {
  return core::run_udp_condition(builder, condition, knobs);
}

inline TcpExperiment run_tcp_experiment(const Testbed::TopoBuilder& builder,
                                        failure::Condition condition,
                                        const ExperimentKnobs& knobs = {}) {
  return core::run_tcp_condition(builder, condition, knobs);
}

/// Renders a throughput time series as compact rows for plotting.
inline void print_throughput_series(std::ostream& os, const std::string& name,
                                    const stats::ThroughputMeter& meter,
                                    sim::Time from, sim::Time to) {
  os << "# " << name << ": time_ms throughput_mbps\n";
  for (const auto& bin : meter.series(from, to)) {
    os << "  " << sim::to_millis(bin.start) << " "
       << stats::Table::num(bin.mbps, 1) << "\n";
  }
}

}  // namespace f2t::bench
