#pragma once

/// Shared aliases for the paper-reproduction benches: the actual
/// experiment drivers live in the library (core/runner.hpp) so the CLI
/// tool and the tests use exactly the same code paths. Also provides the
/// machine-readable result sink: every bench can emit a BENCH_<name>.json
/// so the perf trajectory is tracked across PRs instead of living in
/// scrollback.

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/f2tree.hpp"
#include "core/runner.hpp"

namespace f2t::bench {

using core::Testbed;

using ExperimentKnobs = core::RunKnobs;
using UdpExperiment = core::UdpRun;
using TcpExperiment = core::TcpRun;

inline Testbed::TopoBuilder fat_tree_builder(int ports) {
  return core::topology_builder("fat", ports);
}

inline Testbed::TopoBuilder f2tree_builder(int ports, int ring_width = 2) {
  return core::topology_builder("f2", ports, ring_width);
}

inline UdpExperiment run_udp_experiment(const Testbed::TopoBuilder& builder,
                                        failure::Condition condition,
                                        const ExperimentKnobs& knobs = {}) {
  return core::run_udp_condition(builder, condition, knobs);
}

inline TcpExperiment run_tcp_experiment(const Testbed::TopoBuilder& builder,
                                        failure::Condition condition,
                                        const ExperimentKnobs& knobs = {}) {
  return core::run_tcp_condition(builder, condition, knobs);
}

#ifndef F2T_GIT_REV
#define F2T_GIT_REV "unknown"
#endif

/// One machine-readable benchmark data point.
struct BenchResult {
  std::string name;    ///< e.g. "FibLookup/256"
  std::string metric;  ///< e.g. "real_time", "speedup", "loss"
  double value = 0;
  std::string unit;    ///< e.g. "ns", "x", "ms"
};

/// Writes `results` as BENCH_<bench>.json in `dir` (default: cwd, which
/// run_all.sh sets to results/). Schema:
///   {"benchmark": ..., "git_rev": ..., "results":
///     [{"name", "metric", "value", "unit"}, ...]}
/// Returns false on I/O failure. Non-finite values are serialised as 0
/// (JSON has no NaN/Inf) — benches should not produce them.
inline bool write_bench_json(const std::string& bench,
                             const std::vector<BenchResult>& results,
                             const std::string& dir = ".") {
  const std::string path = dir + "/BENCH_" + bench + ".json";
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"benchmark\": \"" << bench << "\",\n"
     << "  \"git_rev\": \"" << F2T_GIT_REV << "\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double value = std::isfinite(r.value) ? r.value : 0.0;
    os << "    {\"name\": \"" << r.name << "\", \"metric\": \"" << r.metric
       << "\", \"value\": " << value << ", \"unit\": \"" << r.unit << "\"}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flush();
  return os.good();
}
inline void print_throughput_series(std::ostream& os, const std::string& name,
                                    const stats::ThroughputMeter& meter,
                                    sim::Time from, sim::Time to) {
  os << "# " << name << ": time_ms throughput_mbps\n";
  for (const auto& bin : meter.series(from, to)) {
    os << "  " << sim::to_millis(bin.start) << " "
       << stats::Table::num(bin.mbps, 1) << "\n";
  }
}

}  // namespace f2t::bench
