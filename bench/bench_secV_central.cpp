/// Reproduces the **§V "Centralized Routing DCNs" discussion**: in a
/// centrally routed fat tree (PortLand-style), failure recovery costs
/// detection + failure report + route computation + FIB push + FIB
/// update; the paper argues the F² rewiring covers that whole window by
/// rerouting locally until the controller's new routes arrive. This bench
/// quantifies the claim and sweeps the controller's computation delay
/// (which grows with DCN scale).

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

sim::Time run_central(const core::Testbed::TopoBuilder& builder,
                      sim::Time compute_delay) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kCentral;
  config.central.compute_delay = compute_delay;
  core::Testbed bed(builder, config);
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  if (!plan) return -1;
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  return loss ? loss->duration() : sim::Time{0};
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - SecV: centralized routing DCNs "
               "(8-port, C1 failure at 380 ms; report 2 ms, batch 10 ms, "
               "push 2 ms, FIB 10 ms)\n";

  stats::Table table({"Controller compute delay",
                      "Fat tree loss (ms)", "F2Tree loss (ms)"});
  for (const auto compute :
       {sim::millis(10), sim::millis(30), sim::millis(100),
        sim::millis(300)}) {
    const auto fat = run_central(fat_tree_builder(8), compute);
    const auto f2 = run_central(f2tree_builder(8), compute);
    table.row({sim::format_time(compute),
               stats::Table::num(sim::to_millis(fat), 1),
               stats::Table::num(sim::to_millis(f2), 1)});
  }
  table.print(std::cout);
  std::cout << "(expected: fat tree pays detection + controller round trip "
               "+ computation, growing with DCN scale; F2Tree stays at the "
               "60 ms detection floor — 'switches could locally reroute "
               "around failures before ... the new routes calculated by "
               "the controller')\n";
  return 0;
}
