/// Reproduces **§V / Fig 7**: the F² scheme applied to other multi-rooted
/// topologies. For Leaf-Spine and VL2 we fail a downward link on a probe
/// flow's path and compare recovery with and without the rewiring +
/// backup routes. (The paper presents this qualitatively; the expectation
/// is the same shape as fat tree: control-plane-bound recovery without F²,
/// detection-bound with it. VL2's intermediate->agg downward links already
/// have ECMP backup, so the rewiring targets the agg->ToR layer.)

#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

/// Fails the last downward link (last switch -> dst ToR/leaf) on the
/// probe's path — the layer that lacks immediate backup in both original
/// topologies — and measures UDP connectivity loss.
struct Fig7Result {
  bool ok = false;
  sim::Time loss = 0;
  std::uint64_t packets_lost = 0;
};

Fig7Result run_downward_failure(const core::Testbed::TopoBuilder& builder) {
  Fig7Result out;
  core::Testbed bed(builder);
  bed.converge();
  auto& topo = bed.topo();
  const net::Host* src = topo.hosts.front();
  const net::Host* dst = topo.hosts.back();

  // Find a 5-tuple whose path's last-hop switch is an agg/spine with a
  // live downward link to the destination ToR.
  for (std::uint16_t sport = 30000; sport < 30256; ++sport) {
    net::Packet probe;
    probe.src = src->addr();
    probe.dst = dst->addr();
    probe.proto = net::Protocol::kUdp;
    probe.sport = sport;
    probe.dport = 9000;
    const auto path = failure::trace_route(*src, *dst, probe);
    if (path.size() < 5) continue;
    const auto* down_switch =
        dynamic_cast<const net::L3Switch*>(path[path.size() - 3]);
    const auto* dst_tor =
        dynamic_cast<const net::L3Switch*>(path[path.size() - 2]);
    if (down_switch == nullptr || dst_tor == nullptr) continue;
    net::Link* link = bed.network().find_link(*down_switch, *dst_tor);
    if (link == nullptr) continue;

    transport::UdpSink sink(bed.stack_of(*dst), 9000);
    transport::UdpCbrSender::Options so;
    so.sport = sport;
    so.dport = 9000;
    so.stop = sim::millis(2500);
    transport::UdpCbrSender sender(bed.stack_of(*src), dst->addr(), so);
    sender.start();
    bed.injector().fail_at(*link, sim::millis(380));
    bed.sim().run(sim::seconds(3));

    std::vector<sim::Time> arrivals;
    for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
    const auto loss =
        stats::find_connectivity_loss(arrivals, sim::millis(380));
    out.ok = true;
    out.loss = loss ? loss->duration() : 0;
    out.packets_lost =
        stats::packets_lost(sender.packets_sent(), sink.packets_received());
    return out;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - Fig 7 / SecV: the F2 scheme on other "
               "multi-rooted topologies (downward link failure at 380 ms)\n";

  struct Case {
    const char* name;
    core::Testbed::TopoBuilder builder;
  };
  const std::vector<Case> cases = {
      {"Leaf-Spine (original)",
       [](net::Network& n) {
         return topo::build_leaf_spine(n, topo::LeafSpineOptions{.ports = 8});
       }},
      {"Leaf-Spine (F2)",
       [](net::Network& n) {
         return topo::build_leaf_spine(
             n, topo::LeafSpineOptions{.ports = 8, .f2_rewire = true});
       }},
      {"VL2 (original)",
       [](net::Network& n) {
         return topo::build_vl2(n, topo::Vl2Options{.ports = 8});
       }},
      {"VL2 (F2)",
       [](net::Network& n) {
         return topo::build_vl2(
             n, topo::Vl2Options{.ports = 8, .f2_rewire = true});
       }},
      {"Fat tree (original, reference)", fat_tree_builder(8)},
      {"Fat tree (F2, reference)", f2tree_builder(8)},
  };

  stats::Table table(
      {"Topology", "Connectivity loss (ms)", "UDP packets lost"});
  for (const auto& c : cases) {
    const auto r = run_downward_failure(c.builder);
    if (!r.ok) {
      table.row({c.name, "(no scenario)", "-"});
      continue;
    }
    table.row({c.name, stats::Table::num(sim::to_millis(r.loss), 1),
               std::to_string(r.packets_lost)});
  }
  table.print(std::cout);
  std::cout << "(expected shape: originals are control-plane bound "
               "(~270 ms); F2 variants are detection bound (~60 ms))\n";
  return 0;
}
