/// Reproduces **Table I** of the paper: switches consumed and nodes
/// supported for 3-layer DCNs built with homogeneous N-port switches,
/// plus the node-cost curve behind the "~2% fewer nodes at 128 ports"
/// claim (§II-D). The F²Tree closed forms are cross-checked against
/// topologies actually constructed by the library.

#include <iostream>

#include "core/f2tree.hpp"

using namespace f2t;

namespace {

void print_table1(int n) {
  stats::print_heading(std::cout, "Table I (N = " + std::to_string(n) + ")");
  stats::Table table({"Solution", "Switches consumed", "Nodes supported",
                      "Modify routing", "Modify data plane"});
  for (const auto& row : core::table1(n)) {
    table.row({row.name, stats::Table::num(row.switches, 0),
               stats::Table::num(row.nodes, 0), row.modifies_routing,
               row.modifies_data_plane});
  }
  table.print(std::cout);
}

void verify_against_constructions() {
  stats::print_heading(
      std::cout, "Closed forms vs constructed topologies (library check)");
  stats::Table table({"Topology", "N", "Switches (formula)",
                      "Switches (built)", "Nodes (formula)", "Nodes (built)"});
  for (const int n : {6, 8, 10}) {
    {
      sim::Simulator sim(1);
      net::Network net(sim);
      const auto topo =
          topo::build_fat_tree(net, topo::FatTreeOptions{.ports = n});
      table.row({"fat tree", std::to_string(n),
                 stats::Table::num(core::Scalability::fat_tree_switches(n), 0),
                 std::to_string(topo.all_switches().size()),
                 stats::Table::num(core::Scalability::fat_tree_nodes(n), 0),
                 std::to_string(topo.hosts.size())});
    }
    {
      sim::Simulator sim(1);
      net::Network net(sim);
      const auto topo =
          topo::build_f2tree_scaled(net, topo::F2TreeScaledOptions{n, -1});
      table.row({"F2Tree", std::to_string(n),
                 stats::Table::num(core::Scalability::f2tree_switches(n), 0),
                 std::to_string(topo.all_switches().size()),
                 stats::Table::num(core::Scalability::f2tree_nodes(n), 0),
                 std::to_string(topo.hosts.size())});
    }
  }
  table.print(std::cout);
}

void print_cost_curve() {
  stats::print_heading(
      std::cout, "Bisection cost: nodes F2Tree gives up vs fat tree (§II-D)");
  stats::Table table({"N", "Fat tree nodes", "F2Tree nodes", "Cost"});
  for (const int n : {8, 16, 32, 64, 128}) {
    table.row({std::to_string(n),
               stats::Table::num(core::Scalability::fat_tree_nodes(n), 0),
               stats::Table::num(core::Scalability::f2tree_nodes(n), 0),
               stats::Table::percent(
                   core::Scalability::f2tree_node_cost_fraction(n), 2)});
  }
  table.print(std::cout);
  std::cout << "(paper: the cost becomes negligible as N grows; ~2-3% at "
               "N = 128)\n";
}

}  // namespace

int main() {
  std::cout << "F2Tree reproduction - Table I: scalability and deployment\n";
  print_table1(8);
  print_table1(48);
  print_table1(128);
  verify_against_constructions();
  print_cost_curve();
  return 0;
}
