/// Flow-scale proof for the arena-backed fluid transport: sustains 10^5
/// (and with --big 10^6) concurrent fluid flows with *flat* per-flow-event
/// cost, against the pre-arena full-solve implementation embedded below.
///
/// Two phases:
///
///  1. **Churn** — a synthetic pod-grouped channel plan (32 channels per
///     pod, ~256 flows per pod, 4-hop paths confined to one pod, modelling
///     the failure-domain locality of a real fabric) is populated with N
///     flows, then 2000 churn events run: remove one flow, admit another,
///     query the newcomer's rate (forcing a solve). The incremental table
///     re-solves only the two affected pod components, so events/s stays
///     flat as N sweeps 10^3 -> 10^5; the legacy table re-solves all N
///     flows per event, so its rows (bounded to N <= 10^4 — beyond that a
///     single sweep takes minutes) fall off linearly. The
///     `speedup_vs_legacy/n=10000` row is the headline: the same churn on
///     the same channel plan, arena vs legacy, >= 5x required by the
///     regression guard.
///
///  2. **Workload** — FluidWorkload drives ~1.1e5 Poisson arrivals of
///     elephant flows (nothing completes inside the window, so the live
///     population ramps monotonically past 10^5), then a mid-run capacity
///     failure degrades one pod 10x with the full population live. The
///     `peak_active/workload` row certifies the 10^5-concurrent claim
///     end-to-end through the event-driven generator, not just the bare
///     table.
///
/// Writes BENCH_flow_scale.json; the committed baseline lives at
/// bench/baselines/ and scripts/run_all.sh enforces presence of the
/// n=100000 arena row and the >= 5x speedup.

#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "bench_util.hpp"
#include "transport/workload.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

// ---------------------------------------------------------------------------
// The pre-arena FluidFlowTable, frozen verbatim from the hybrid-fidelity
// PR (git 2ee1673) as the comparison baseline: dense flow vector, no slot
// reuse, and every rate_of() after a mutation re-runs progressive filling
// over ALL live flows. Kept private to this bench so the library carries
// only the incremental implementation.

class LegacyFluidFlowTable {
 public:
  using FlowId = std::uint32_t;
  static constexpr double kUnbounded = std::numeric_limits<double>::max();

  LegacyFluidFlowTable(std::size_t channel_count, double default_capacity_bps)
      : capacity_(channel_count, default_capacity_bps),
        stamp_(channel_count, 0),
        residual_(channel_count, 0.0),
        load_(channel_count, 0) {}

  void set_capacity(std::uint32_t channel, double bps) {
    if (bps <= 0) {
      throw std::invalid_argument("capacity must be positive");
    }
    capacity_.at(channel) = bps;
    dirty_ = true;
  }

  FlowId add_flow(std::vector<std::uint32_t> path,
                  double demand_bps = kUnbounded) {
    for (const std::uint32_t c : path) capacity_.at(c);  // bounds check
    Flow flow;
    flow.path = std::move(path);
    flow.demand = demand_bps;
    flow.live = true;
    flows_.push_back(std::move(flow));
    ++live_flows_;
    dirty_ = true;
    return static_cast<FlowId>(flows_.size() - 1);
  }

  void remove_flow(FlowId id) {
    Flow& flow = flows_.at(id);
    if (!flow.live) return;
    flow.live = false;
    flow.rate = 0.0;
    --live_flows_;
    dirty_ = true;
  }

  double rate_of(FlowId id) {
    if (dirty_) solve();
    return flows_.at(id).rate;
  }

  std::size_t flow_count() const { return live_flows_; }

 private:
  struct Flow {
    std::vector<std::uint32_t> path;
    double demand = kUnbounded;
    double rate = 0.0;
    bool live = false;
    bool frozen = false;
  };

  double& residual(std::uint32_t channel) {
    if (stamp_[channel] != epoch_) {
      stamp_[channel] = epoch_;
      residual_[channel] = capacity_[channel];
      load_[channel] = 0;
    }
    return residual_[channel];
  }

  std::uint32_t& load(std::uint32_t channel) {
    residual(channel);  // stamp
    return load_[channel];
  }

  void solve() {
    dirty_ = false;
    ++epoch_;
    std::vector<FlowId> unfrozen;
    for (FlowId id = 0; id < flows_.size(); ++id) {
      Flow& flow = flows_[id];
      flow.frozen = false;
      flow.rate = 0.0;
      if (!flow.live) continue;
      if (flow.path.empty()) continue;
      unfrozen.push_back(id);
      for (const std::uint32_t c : flow.path) ++load(c);
    }
    while (!unfrozen.empty()) {
      double inc = std::numeric_limits<double>::max();
      for (const FlowId id : unfrozen) {
        const Flow& flow = flows_[id];
        inc = std::min(inc, flow.demand - flow.rate);
        for (const std::uint32_t c : flow.path) {
          inc = std::min(inc, residual(c) / static_cast<double>(load_[c]));
        }
      }
      for (const FlowId id : unfrozen) {
        Flow& flow = flows_[id];
        flow.rate += inc;
        for (const std::uint32_t c : flow.path) residual(c) -= inc;
      }
      std::vector<FlowId> still;
      still.reserve(unfrozen.size());
      for (const FlowId id : unfrozen) {
        Flow& flow = flows_[id];
        bool frozen = flow.rate >= flow.demand;
        if (!frozen) {
          for (const std::uint32_t c : flow.path) {
            if (residual(c) <= 1e-9 * capacity_[c]) {
              frozen = true;
              break;
            }
          }
        }
        if (frozen) {
          flow.frozen = true;
          for (const std::uint32_t c : flow.path) --load(c);
        } else {
          still.push_back(id);
        }
      }
      if (still.size() == unfrozen.size()) break;
      unfrozen = std::move(still);
    }
  }

  std::vector<Flow> flows_;
  std::vector<double> capacity_;
  std::vector<std::uint64_t> stamp_;
  std::vector<double> residual_;
  std::vector<std::uint32_t> load_;
  std::uint64_t epoch_ = 0;
  std::size_t live_flows_ = 0;
  bool dirty_ = false;
};

// ---------------------------------------------------------------------------

constexpr std::size_t kChannelsPerPod = 32;
constexpr std::size_t kFlowsPerPod = 256;  ///< bounded failure domain
constexpr std::size_t kPathHops = 4;
constexpr double kCapacityBps = 1e9;
constexpr std::size_t kChurnEvents = 2000;
constexpr std::size_t kLegacyChurnEvents = 200;

std::size_t pods_for(std::size_t flows) {
  return std::max<std::size_t>(1, flows / kFlowsPerPod);
}

/// 4 distinct channels inside one pod, the pod drawn uniformly.
std::vector<std::uint32_t> draw_path(sim::Random& rng, std::size_t pods) {
  const std::size_t pod = rng.index(pods);
  std::vector<std::uint32_t> path;
  path.reserve(kPathHops);
  while (path.size() < kPathHops) {
    const auto c =
        static_cast<std::uint32_t>(pod * kChannelsPerPod +
                                   rng.index(kChannelsPerPod));
    if (std::find(path.begin(), path.end(), c) == path.end()) {
      path.push_back(c);
    }
  }
  return path;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Populate-then-churn on either table type; returns events/s.
template <typename Table>
double churn_events_per_s(std::size_t flows, std::size_t events,
                          double* populate_s = nullptr) {
  const std::size_t pods = pods_for(flows);
  Table table(pods * kChannelsPerPod, kCapacityBps);
  sim::Random rng(0x5ca1eULL + flows);

  const auto populate_start = std::chrono::steady_clock::now();
  std::vector<typename Table::FlowId> ids;
  ids.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    ids.push_back(table.add_flow(draw_path(rng, pods)));
  }
  (void)table.rate_of(ids[0]);  // settle the initial population
  if (populate_s != nullptr) *populate_s = seconds_since(populate_start);

  const auto churn_start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < events; ++e) {
    const std::size_t victim = rng.index(flows);
    table.remove_flow(ids[victim]);
    ids[victim] = table.add_flow(draw_path(rng, pods));
    (void)table.rate_of(ids[victim]);  // force the solve into the event
  }
  const double wall = seconds_since(churn_start);
  return wall > 0 ? static_cast<double>(events) / wall : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool big = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--big") == 0) big = true;
  }

  std::cout << "F2Tree reproduction - flow-scale transport: arena-backed "
               "incremental max-min table vs the pre-arena full solve\n";

  std::vector<BenchResult> results;

  // Phase 1: churn sweep.
  stats::Table table({"Live flows", "Arena events/s", "Legacy events/s",
                      "Speedup", "Populate (s)"});
  std::vector<std::size_t> sweep = {1'000, 10'000, 100'000};
  if (big) sweep.push_back(1'000'000);
  for (const std::size_t n : sweep) {
    double populate_s = 0;
    const double arena_eps = churn_events_per_s<transport::FluidFlowTable>(
        n, kChurnEvents, &populate_s);
    const std::string suffix = "/n=" + std::to_string(n);
    results.push_back(
        {"events_per_s/arena" + suffix, "throughput", arena_eps, "1/s"});
    results.push_back(
        {"populate_s/arena" + suffix, "wall_time", populate_s, "s"});

    double legacy_eps = 0;
    std::string legacy_cell = "-";
    std::string speedup_cell = "-";
    if (n <= 10'000) {  // beyond this one legacy sweep takes minutes
      legacy_eps =
          churn_events_per_s<LegacyFluidFlowTable>(n, kLegacyChurnEvents);
      results.push_back(
          {"events_per_s/legacy" + suffix, "throughput", legacy_eps, "1/s"});
      const double speedup = legacy_eps > 0 ? arena_eps / legacy_eps : 0.0;
      results.push_back(
          {"speedup_vs_legacy" + suffix, "speedup", speedup, "x"});
      legacy_cell = stats::Table::num(legacy_eps, 0);
      speedup_cell = stats::Table::num(speedup, 1);
    }
    table.row({std::to_string(n), stats::Table::num(arena_eps, 0),
               legacy_cell, speedup_cell, stats::Table::num(populate_s, 3)});
  }
  table.print(std::cout);
  std::cout << "(expected: the arena column stays flat across the sweep — "
               "each churn event re-solves only the two affected pods)\n";

  // Phase 2: the event-driven generator at 10^5 live flows with a mid-run
  // capacity failure.
  {
    const std::size_t pods = 1024;
    sim::Simulator sim(1);
    transport::FluidFlowTable flow_table(pods * kChannelsPerPod,
                                         kCapacityBps);
    transport::FluidWorkload::Options o;
    o.arrival_rate_per_s = 110'000;
    // Elephants: 2.4e9 bits means even a flow alone on its pod (1e9 bps
    // bottleneck) needs 2.4 s — nothing completes inside the window, so
    // the live population ramps to the full arrival count.
    o.sizes = transport::FlowSizeCdf::fixed(3e8);
    o.stop = sim::seconds(1);
    transport::FluidWorkload wl(
        sim, flow_table,
        [pods](sim::Random& rng, std::vector<std::uint32_t>& path) {
          path = draw_path(rng, pods);
        },
        sim::Random(2025), o);

    const auto wall_start = std::chrono::steady_clock::now();
    wl.start();
    sim.run(sim::millis(1050));
    // A pod-local failure with the whole population live: degrade every
    // channel of pod 0 by 10x and let the component re-solve.
    for (std::size_t c = 0; c < kChannelsPerPod; ++c) {
      flow_table.set_capacity(static_cast<std::uint32_t>(c),
                              kCapacityBps / 10);
    }
    sim.run(sim::millis(1200));
    wl.finalize();
    const double wall = seconds_since(wall_start);

    std::cout << "\nworkload phase (1024 pods, Poisson 110k flows/s, "
                 "elephant sizes, pod-0 failure at t=1.05s): launched "
              << wl.launched() << ", peak active " << wl.peak_active()
              << ", wall " << stats::Table::num(wall, 2) << " s\n";
    results.push_back({"peak_active/workload", "count",
                       static_cast<double>(wl.peak_active()), "flows"});
    results.push_back({"launched/workload", "count",
                       static_cast<double>(wl.launched()), "flows"});
    results.push_back({"wall_s/workload", "wall_time", wall, "s"});
    results.push_back(
        {"events_per_s/workload", "throughput",
         wall > 0 ? static_cast<double>(wl.launched()) / wall : 0.0, "1/s"});
  }

  if (!write_bench_json("flow_scale", results)) {
    std::cerr << "bench_flow_scale: failed to write BENCH_flow_scale.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_flow_scale.json\n";
  return 0;
}
