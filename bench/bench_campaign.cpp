/// Campaign-engine throughput: the same failure-injection campaign run
/// single-threaded, with a worker-thread pool, and across forked worker
/// processes, reported as BENCH_campaign.json.
///
/// The campaign is the ISSUE's reference matrix: a k=8 fat tree, the
/// first 64 switch-link failure sites, 4 seed replicates each (256
/// independent simulations). Before reporting speedup the bench asserts
/// the three runs' deterministic artifacts are byte-identical — a
/// speedup produced by a nondeterministic engine would be meaningless.
///
/// Usage: bench_campaign [--ports N] [--sites N] [--seeds N] [--jobs N]
///                       [--workers N]
///
/// Note: `speedup` is only meaningful relative to `hardware_threads`
/// (also recorded); on a single-core machine it is expected to be ~1.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "exec/campaign.hpp"
#include "exec/process.hpp"

using namespace f2t;

int main(int argc, char** argv) {
  int ports = 8;
  int sites = 64;
  int seeds = 4;
  int jobs = 8;
  int workers = 4;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const int value = std::atoi(argv[i + 1]);
    if (key == "--ports") {
      ports = value;
    } else if (key == "--sites") {
      sites = value;
    } else if (key == "--seeds") {
      seeds = value;
    } else if (key == "--jobs") {
      jobs = value;
    } else if (key == "--workers") {
      workers = value;
    } else {
      std::cerr << "usage: bench_campaign [--ports N] [--sites N] "
                   "[--seeds N] [--jobs N] [--workers N]\n";
      return 2;
    }
  }

  core::CampaignSpec spec;
  spec.name = "bench-campaign";
  spec.topologies = {{.name = "fat", .ports = ports}};
  spec.controls = {"ospf"};
  spec.link_sites = sites;
  spec.seeds = seeds;

  const auto shards = core::enumerate_shards(spec);
  std::cout << "campaign: fat-" << ports << ", " << sites << " link sites x "
            << seeds << " seeds = " << shards.size() << " runs\n";

  exec::CampaignOptions serial;
  serial.jobs = 1;
  const auto r1 = exec::run_campaign(spec, serial);

  exec::CampaignOptions parallel;
  parallel.jobs = jobs;
  const auto rn = exec::run_campaign(spec, parallel);

  // Process mode: forked workers streaming JSONL records into a scratch
  // state dir (fork-only — the bench does not know the CLI binary path).
  const std::string state_dir =
      (std::filesystem::temp_directory_path() /
       ("f2t-bench-campaign-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(state_dir);
  exec::ProcessCampaignOptions process;
  process.workers = workers;
  process.state_dir = state_dir;
  const auto rp = exec::run_campaign_processes(spec, process);
  std::filesystem::remove_all(state_dir);

  std::ostringstream a;
  std::ostringstream b;
  std::ostringstream c;
  r1.write_json(a, /*include_profile=*/false);
  rn.write_json(b, /*include_profile=*/false);
  rp.write_json(c, /*include_profile=*/false);
  if (a.str() != b.str()) {
    std::cerr << "FAIL: campaign artifact differs between --jobs 1 and "
                 "--jobs " << jobs << " — determinism contract broken\n";
    return 1;
  }
  if (a.str() != c.str()) {
    std::cerr << "FAIL: campaign artifact differs between --jobs 1 and "
                 "--workers " << workers
              << " — process-mode determinism contract broken\n";
    return 1;
  }

  const double speedup =
      rn.wall_seconds > 0 ? r1.wall_seconds / rn.wall_seconds : 0;
  const double speedup_process =
      rp.wall_seconds > 0 ? r1.wall_seconds / rp.wall_seconds : 0;
  const double runs = static_cast<double>(shards.size());
  std::cout << "jobs=1: " << r1.wall_seconds << " s ("
            << runs / r1.wall_seconds << " runs/s)\n"
            << "jobs=" << rn.jobs << ": " << rn.wall_seconds << " s ("
            << runs / rn.wall_seconds << " runs/s), steals=" << rn.steals
            << "\n"
            << "workers=" << rp.workers << ": " << rp.wall_seconds << " s ("
            << runs / rp.wall_seconds << " runs/s, forked processes)\n"
            << "speedup: " << speedup << "x threads, " << speedup_process
            << "x processes on " << rn.hardware_threads
            << " hardware threads\n"
            << "deterministic artifacts: identical\n";

  const std::string name = "campaign/fat-" + std::to_string(ports) +
                           "/sites" + std::to_string(sites) + "x" +
                           std::to_string(seeds);
  const bool ok = bench::write_bench_json(
      "campaign",
      {{name, "wall_jobs1", r1.wall_seconds, "s"},
       {name, "wall_jobs" + std::to_string(rn.jobs), rn.wall_seconds, "s"},
       {name, "wall_workers" + std::to_string(rp.workers), rp.wall_seconds,
        "s"},
       {name, "speedup", speedup, "x"},
       {name, "speedup_process", speedup_process, "x"},
       {name, "runs_per_s_jobs1", runs / r1.wall_seconds, "runs/s"},
       {name, "runs_per_s_jobs" + std::to_string(rn.jobs),
        runs / rn.wall_seconds, "runs/s"},
       {name, "runs_per_s_workers" + std::to_string(rp.workers),
        runs / rp.wall_seconds, "runs/s"},
       {name, "hardware_threads", static_cast<double>(rn.hardware_threads),
        "threads"},
       {name, "steals", static_cast<double>(rn.steals), "count"}});
  if (!ok) {
    std::cerr << "cannot write BENCH_campaign.json\n";
    return 1;
  }
  return 0;
}
