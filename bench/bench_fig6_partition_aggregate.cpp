/// Reproduces **Fig 6**: impact of random failures on a partition-
/// aggregate workload. Random link failures (log-normal inter-arrival and
/// duration, capped at 1 or 5 concurrent failures) run against ~5
/// requests/s of 8-way partition-aggregate traffic plus log-normal
/// background flows for 600 s. Metrics: the ratio of requests missing the
/// 250 ms deadline (Fig 6(a)) and the CDF of completion times beyond
/// 100 ms (Fig 6(b)).
///
/// Paper reference: fat tree misses ~0.4% (1 CF) and ~1.6% (5 CF);
/// F²Tree misses 0% (1 CF) and ~0.06% (5 CF) — a >96% reduction. Under
/// churn fat tree's SPF hold timer grows to ~9 s, stranding some requests
/// for seconds.
///
/// Runtime: the full 600 s emulation runs by default; set
/// F2T_FIG6_SECONDS to shrink it (counts scale accordingly).
///
/// A second section sweeps the incast fan-in (8/32/128 workers per round)
/// with the trace-shaped TcpWorkload generator on a fat-16 (1024 hosts) —
/// the worker counts Fig 6's 8-way partition-aggregate cannot reach — and
/// cross-checks the generator at fan-in 8 against PartitionAggregateApp
/// on the same fabric: one round of the incast generator and one
/// partition-aggregate request are the same traffic shape (N workers,
/// 2 KB responses, one aggregator), so their completion-time medians must
/// agree to within the request-leg overhead.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "stats/percentile.hpp"
#include "transport/workload.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

struct Fig6Result {
  double miss_ratio = 0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  int failures = 0;
  stats::Cdf completion_ms;
  double frac_above_200ms = 0;
  double frac_above_1s = 0;
  sim::Time max_spf_hold = 0;
};

Fig6Result run_fig6(const core::Testbed::TopoBuilder& builder,
                    int concurrent_failures, sim::Time duration,
                    std::uint64_t seed) {
  core::TestbedConfig config;
  config.seed = seed;
  core::Testbed bed(builder, config);
  bed.converge();

  transport::PartitionAggregateOptions pa;
  pa.start = sim::seconds(1);
  pa.stop = sim::seconds(1) + duration;
  pa.mean_interarrival = sim::millis(200);  // ~3000 requests over 600 s
  transport::PartitionAggregateApp app(bed.stacks(),
                                       sim::Random(seed * 7 + 1), pa);
  app.start();

  transport::BackgroundTrafficOptions bg;
  bg.start = sim::seconds(1);
  bg.stop = pa.stop;
  bg.interarrival_median_s = 0.28;  // ~1500 flows over 600 s
  transport::BackgroundTraffic background(bed.stacks(),
                                          sim::Random(seed * 7 + 2), bg);
  background.start();

  failure::RandomFailureOptions rf;
  rf.start = sim::seconds(2);
  rf.stop = pa.stop;
  rf.max_concurrent = concurrent_failures;
  // Heavy-tailed (bursty) failure processes, as measured by Gill et al.:
  // bursts of closely spaced failures are what inflate the SPF hold
  // timer toward the multi-second values the paper reports.
  if (concurrent_failures <= 1) {
    rf.interarrival_median_s = 3.5;  // ~40 injected failures over 600 s
    rf.interarrival_sigma = 1.8;
    rf.duration_median_s = 3.0;
    rf.duration_sigma = 1.0;
  } else {
    rf.interarrival_median_s = 2.2;  // ~100 injected failures over 600 s
    rf.interarrival_sigma = 1.5;
    rf.duration_median_s = 6.0;
    rf.duration_sigma = 1.0;
  }
  failure::RandomFailureGenerator failures(bed.injector(),
                                           sim::Random(seed * 7 + 3), rf);
  failures.start();

  // Let late requests finish after the workload stops.
  bed.sim().run(pa.stop + sim::seconds(20));

  Fig6Result out;
  out.requests = app.issued_count();
  out.completed = app.completed_count();
  out.failures = failures.failures_injected();
  out.miss_ratio = app.deadline_miss_ratio(pa.stop + sim::seconds(20));
  for (const auto t : app.completion_times()) {
    out.completion_ms.add(sim::to_millis(t));
  }
  if (!out.completion_ms.empty()) {
    out.frac_above_200ms = out.completion_ms.fraction_above(200.0);
    out.frac_above_1s = out.completion_ms.fraction_above(1000.0);
  }
  for (auto* sw : bed.topo().all_switches()) {
    out.max_spf_hold =
        std::max(out.max_spf_hold, bed.ospf_of(*sw).throttle().current_hold());
  }
  return out;
}

struct IncastRow {
  std::size_t rounds = 0;
  std::size_t flows = 0;
  std::size_t completed = 0;
  double flow_fct_p99_ms = 0;
  double round_p50_ms = 0;   ///< per-round completion (max over workers)
  double round_miss = 0;     ///< rounds beyond the 250 ms deadline
};

IncastRow run_incast(core::Testbed& bed, std::size_t fanin,
                     sim::Time window) {
  transport::WorkloadOptions o;
  o.kind = transport::WorkloadKind::kIncast;
  o.fanin = fanin;
  o.incast_bytes = 2048;  // PartitionAggregateOptions::response_bytes
  o.incast_interval = sim::millis(100);
  o.start = bed.sim().now() + sim::millis(10);
  o.stop = o.start + window;
  o.deadline = sim::millis(250);
  transport::TcpWorkload wl(bed.stacks(), sim::Random(77 + fanin), o);
  wl.start();
  bed.sim().run(o.stop + sim::seconds(5));  // drain the last rounds

  IncastRow row;
  row.flows = wl.launched();
  row.completed = wl.completed();
  // A round's flows share one launch timestamp; the round completes when
  // its slowest worker response lands (what the aggregator waits for).
  std::map<sim::Time, std::pair<sim::Time, bool>> rounds;  // start -> max/ok
  std::vector<double> fct_ms;
  for (const auto& s : wl.samples()) {
    auto& [max_finish, complete] = rounds.try_emplace(s.start, 0, true)
                                       .first->second;
    if (s.finish == sim::kNever) {
      complete = false;
    } else {
      max_finish = std::max(max_finish, s.finish);
      fct_ms.push_back(sim::to_millis(s.finish - s.start));
    }
  }
  row.rounds = rounds.size();
  std::vector<double> round_ms;
  std::size_t missed = 0;
  for (const auto& [start, r] : rounds) {
    if (!r.second) {
      ++missed;
      continue;
    }
    const sim::Time completion = r.first - start;
    round_ms.push_back(sim::to_millis(completion));
    if (completion > o.deadline) ++missed;
  }
  std::sort(fct_ms.begin(), fct_ms.end());
  std::sort(round_ms.begin(), round_ms.end());
  row.flow_fct_p99_ms = stats::nearest_rank_sorted(fct_ms, 0.99);
  row.round_p50_ms = stats::nearest_rank_sorted(round_ms, 0.50);
  if (!rounds.empty()) {
    row.round_miss = static_cast<double>(missed) /
                     static_cast<double>(rounds.size());
  }
  return row;
}

}  // namespace

int main() {
  sim::Time duration = sim::seconds(600);
  if (const char* env = std::getenv("F2T_FIG6_SECONDS")) {
    duration = sim::seconds(std::atoi(env));
  }
  std::cout << "F2Tree reproduction - Fig 6: partition-aggregate workload "
               "under random failures (8-port, "
            << sim::to_seconds(duration) << " s, deadline 250 ms)\n";

  stats::Table table({"Topology", "Concurrent failures", "Requests",
                      "Failures injected", "Deadline miss ratio",
                      ">200 ms", ">1 s", "Max SPF hold"});
  struct Case {
    const char* name;
    core::Testbed::TopoBuilder builder;
    int cf;
  };
  const std::vector<Case> cases = {
      {"fat tree", fat_tree_builder(8), 1},
      {"F2Tree", f2tree_builder(8), 1},
      {"fat tree", fat_tree_builder(8), 5},
      {"F2Tree", f2tree_builder(8), 5},
  };

  std::vector<std::pair<std::string, Fig6Result>> results;
  for (const auto& c : cases) {
    auto r = run_fig6(c.builder, c.cf, duration, 1234);
    table.row({c.name, std::to_string(c.cf), std::to_string(r.requests),
               std::to_string(r.failures),
               stats::Table::percent(r.miss_ratio, 3),
               stats::Table::percent(r.frac_above_200ms, 3),
               stats::Table::percent(r.frac_above_1s, 3),
               sim::format_time(r.max_spf_hold)});
    results.emplace_back(std::string(c.name) + " / " + std::to_string(c.cf) +
                             " CF",
                         std::move(r));
  }

  stats::print_heading(std::cout, "Fig 6(a): deadline-missing requests");
  table.print(std::cout);
  std::cout << "(paper: fat tree 0.4% / 1.6%; F2Tree 0% / ~0.06% -> >96% "
               "reduction)\n";

  stats::print_heading(std::cout,
                       "Fig 6(b): CDF of completion times beyond 100 ms");
  for (auto& [name, r] : results) {
    std::cout << "# " << name << ": completion_ms cumulative_fraction\n";
    for (const auto& p : r.completion_ms.tail_points(100.0, 12)) {
      std::cout << "  " << stats::Table::num(p.value, 1) << " "
                << stats::Table::num(p.cumulative, 5) << "\n";
    }
  }

  // Headline comparison.
  const double fat1 = results[0].second.miss_ratio;
  const double f21 = results[1].second.miss_ratio;
  const double fat5 = results[2].second.miss_ratio;
  const double f25 = results[3].second.miss_ratio;
  stats::print_heading(std::cout, "Reduction of deadline-missing requests");
  std::cout << "1 CF: " << stats::Table::percent(fat1, 3) << " -> "
            << stats::Table::percent(f21, 3) << "; 5 CF: "
            << stats::Table::percent(fat5, 3) << " -> "
            << stats::Table::percent(f25, 3) << "\n";

  // Fan-in sweep: the trace-shaped incast generator on a 1024-host
  // fat-16, no failures — how the tail grows with the worker count, past
  // the 8-way shape Fig 6 is limited to.
  stats::print_heading(std::cout,
                       "Incast fan-in sweep (fat-16, 2 KB responses, "
                       "100 ms cadence, deadline 250 ms)");
  core::Testbed sweep_bed(fat_tree_builder(16));
  sweep_bed.converge();
  const sim::Time window = sim::seconds(5);
  stats::Table sweep({"Fan-in", "Rounds", "Flows", "Completed",
                      "Flow FCT p99 (ms)", "Round p50 (ms)", "Round miss"});
  double incast8_round_p50 = 0;
  for (const std::size_t fanin : {8, 32, 128}) {
    const auto row = run_incast(sweep_bed, fanin, window);
    if (fanin == 8) incast8_round_p50 = row.round_p50_ms;
    sweep.row({std::to_string(fanin), std::to_string(row.rounds),
               std::to_string(row.flows), std::to_string(row.completed),
               stats::Table::num(row.flow_fct_p99_ms, 2),
               stats::Table::num(row.round_p50_ms, 2),
               stats::Table::percent(row.round_miss, 3)});
  }
  sweep.print(std::cout);

  // Cross-check: 8-way partition-aggregate on the same fabric is the same
  // traffic shape as one incast round plus the 100 B request leg, so the
  // median completions must sit within 2x of each other.
  transport::PartitionAggregateOptions pa;
  pa.fanout = 8;
  pa.start = sweep_bed.sim().now() + sim::millis(10);
  pa.stop = pa.start + window;
  pa.mean_interarrival = sim::millis(100);
  transport::PartitionAggregateApp pa_app(sweep_bed.stacks(),
                                          sim::Random(4242), pa);
  pa_app.start();
  sweep_bed.sim().run(pa.stop + sim::seconds(5));
  std::vector<double> pa_ms;
  for (const auto t : pa_app.completion_times()) {
    pa_ms.push_back(sim::to_millis(t));
  }
  const double pa_p50 = stats::nearest_rank_sorted(pa_ms, 0.50);
  const bool consistent = incast8_round_p50 > 0 && pa_p50 > 0 &&
                          pa_p50 < 2 * incast8_round_p50 &&
                          incast8_round_p50 < 2 * pa_p50;
  std::cout << "cross-check at fan-in 8: incast round p50 "
            << stats::Table::num(incast8_round_p50, 2)
            << " ms vs partition-aggregate request p50 "
            << stats::Table::num(pa_p50, 2) << " ms ("
            << (consistent ? "consistent" : "INCONSISTENT") << ")\n";
  if (!consistent) {
    std::cerr << "bench_fig6: incast generator and partition-aggregate app "
                 "disagree at fan-in 8\n";
    return 1;
  }
  return 0;
}
