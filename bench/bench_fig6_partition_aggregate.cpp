/// Reproduces **Fig 6**: impact of random failures on a partition-
/// aggregate workload. Random link failures (log-normal inter-arrival and
/// duration, capped at 1 or 5 concurrent failures) run against ~5
/// requests/s of 8-way partition-aggregate traffic plus log-normal
/// background flows for 600 s. Metrics: the ratio of requests missing the
/// 250 ms deadline (Fig 6(a)) and the CDF of completion times beyond
/// 100 ms (Fig 6(b)).
///
/// Paper reference: fat tree misses ~0.4% (1 CF) and ~1.6% (5 CF);
/// F²Tree misses 0% (1 CF) and ~0.06% (5 CF) — a >96% reduction. Under
/// churn fat tree's SPF hold timer grows to ~9 s, stranding some requests
/// for seconds.
///
/// Runtime: the full 600 s emulation runs by default; set
/// F2T_FIG6_SECONDS to shrink it (counts scale accordingly).

#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"

using namespace f2t;
using namespace f2t::bench;

namespace {

struct Fig6Result {
  double miss_ratio = 0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  int failures = 0;
  stats::Cdf completion_ms;
  double frac_above_200ms = 0;
  double frac_above_1s = 0;
  sim::Time max_spf_hold = 0;
};

Fig6Result run_fig6(const core::Testbed::TopoBuilder& builder,
                    int concurrent_failures, sim::Time duration,
                    std::uint64_t seed) {
  core::TestbedConfig config;
  config.seed = seed;
  core::Testbed bed(builder, config);
  bed.converge();

  transport::PartitionAggregateOptions pa;
  pa.start = sim::seconds(1);
  pa.stop = sim::seconds(1) + duration;
  pa.mean_interarrival = sim::millis(200);  // ~3000 requests over 600 s
  transport::PartitionAggregateApp app(bed.stacks(),
                                       sim::Random(seed * 7 + 1), pa);
  app.start();

  transport::BackgroundTrafficOptions bg;
  bg.start = sim::seconds(1);
  bg.stop = pa.stop;
  bg.interarrival_median_s = 0.28;  // ~1500 flows over 600 s
  transport::BackgroundTraffic background(bed.stacks(),
                                          sim::Random(seed * 7 + 2), bg);
  background.start();

  failure::RandomFailureOptions rf;
  rf.start = sim::seconds(2);
  rf.stop = pa.stop;
  rf.max_concurrent = concurrent_failures;
  // Heavy-tailed (bursty) failure processes, as measured by Gill et al.:
  // bursts of closely spaced failures are what inflate the SPF hold
  // timer toward the multi-second values the paper reports.
  if (concurrent_failures <= 1) {
    rf.interarrival_median_s = 3.5;  // ~40 injected failures over 600 s
    rf.interarrival_sigma = 1.8;
    rf.duration_median_s = 3.0;
    rf.duration_sigma = 1.0;
  } else {
    rf.interarrival_median_s = 2.2;  // ~100 injected failures over 600 s
    rf.interarrival_sigma = 1.5;
    rf.duration_median_s = 6.0;
    rf.duration_sigma = 1.0;
  }
  failure::RandomFailureGenerator failures(bed.injector(),
                                           sim::Random(seed * 7 + 3), rf);
  failures.start();

  // Let late requests finish after the workload stops.
  bed.sim().run(pa.stop + sim::seconds(20));

  Fig6Result out;
  out.requests = app.issued_count();
  out.completed = app.completed_count();
  out.failures = failures.failures_injected();
  out.miss_ratio = app.deadline_miss_ratio(pa.stop + sim::seconds(20));
  for (const auto t : app.completion_times()) {
    out.completion_ms.add(sim::to_millis(t));
  }
  if (!out.completion_ms.empty()) {
    out.frac_above_200ms = out.completion_ms.fraction_above(200.0);
    out.frac_above_1s = out.completion_ms.fraction_above(1000.0);
  }
  for (auto* sw : bed.topo().all_switches()) {
    out.max_spf_hold =
        std::max(out.max_spf_hold, bed.ospf_of(*sw).throttle().current_hold());
  }
  return out;
}

}  // namespace

int main() {
  sim::Time duration = sim::seconds(600);
  if (const char* env = std::getenv("F2T_FIG6_SECONDS")) {
    duration = sim::seconds(std::atoi(env));
  }
  std::cout << "F2Tree reproduction - Fig 6: partition-aggregate workload "
               "under random failures (8-port, "
            << sim::to_seconds(duration) << " s, deadline 250 ms)\n";

  stats::Table table({"Topology", "Concurrent failures", "Requests",
                      "Failures injected", "Deadline miss ratio",
                      ">200 ms", ">1 s", "Max SPF hold"});
  struct Case {
    const char* name;
    core::Testbed::TopoBuilder builder;
    int cf;
  };
  const std::vector<Case> cases = {
      {"fat tree", fat_tree_builder(8), 1},
      {"F2Tree", f2tree_builder(8), 1},
      {"fat tree", fat_tree_builder(8), 5},
      {"F2Tree", f2tree_builder(8), 5},
  };

  std::vector<std::pair<std::string, Fig6Result>> results;
  for (const auto& c : cases) {
    auto r = run_fig6(c.builder, c.cf, duration, 1234);
    table.row({c.name, std::to_string(c.cf), std::to_string(r.requests),
               std::to_string(r.failures),
               stats::Table::percent(r.miss_ratio, 3),
               stats::Table::percent(r.frac_above_200ms, 3),
               stats::Table::percent(r.frac_above_1s, 3),
               sim::format_time(r.max_spf_hold)});
    results.emplace_back(std::string(c.name) + " / " + std::to_string(c.cf) +
                             " CF",
                         std::move(r));
  }

  stats::print_heading(std::cout, "Fig 6(a): deadline-missing requests");
  table.print(std::cout);
  std::cout << "(paper: fat tree 0.4% / 1.6%; F2Tree 0% / ~0.06% -> >96% "
               "reduction)\n";

  stats::print_heading(std::cout,
                       "Fig 6(b): CDF of completion times beyond 100 ms");
  for (auto& [name, r] : results) {
    std::cout << "# " << name << ": completion_ms cumulative_fraction\n";
    for (const auto& p : r.completion_ms.tail_points(100.0, 12)) {
      std::cout << "  " << stats::Table::num(p.value, 1) << " "
                << stats::Table::num(p.cumulative, 5) << "\n";
    }
  }

  // Headline comparison.
  const double fat1 = results[0].second.miss_ratio;
  const double f21 = results[1].second.miss_ratio;
  const double fat5 = results[2].second.miss_ratio;
  const double f25 = results[3].second.miss_ratio;
  stats::print_heading(std::cout, "Reduction of deadline-missing requests");
  std::cout << "1 CF: " << stats::Table::percent(fat1, 3) << " -> "
            << stats::Table::percent(f21, 3) << "; 5 CF: "
            << stats::Table::percent(fat5, 3) << " -> "
            << stats::Table::percent(f25, 3) << "\n";
  return 0;
}
