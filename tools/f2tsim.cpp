/// f2tsim — command-line front end to the F²Tree reproduction library.
///
/// Commands:
///   f2tsim recover  --topo f2 --ports 8 --condition C1 --control ospf
///                   [--proto udp|tcp] [--detection-ms 60] [--spf-ms 200]
///                   [--ring-width 2] [--aspen-f 1] [--csv]
///                   [--log-level LEVEL] [--metrics-out FILE]
///                   [--events-out FILE] [--timeline]
///   f2tsim workload --topo f2 --ports 8 --seconds 60 --cf 1 [--seed 1]
///                   [--log-level LEVEL]
///   f2tsim topo     --topo f2 --ports 8 [--dot]
///   f2tsim table1   --ports 8 [--aspen-f 1]
///
/// Every command maps onto the same library calls the benches and tests
/// use, so a CLI run is exactly reproducible in code.

#include <fstream>
#include <iostream>

#include "core/cli.hpp"
#include "core/f2tree.hpp"
#include "core/runner.hpp"
#include "topo/graphviz.hpp"

using namespace f2t;

namespace {

int usage() {
  std::cerr <<
      "usage: f2tsim <recover|workload|topo|table1> [options]\n"
      "  recover  --topo NAME --ports N --condition C1..C7\n"
      "           [--control ospf|central|bgp] [--proto udp|tcp]\n"
      "           [--detection-ms 60] [--spf-ms 200] [--ring-width 2]\n"
      "           [--aspen-f 1] [--seed 1] [--csv]\n"
      "           [--log-level trace|debug|info|warn|error|off]\n"
      "           [--metrics-out FILE] [--events-out FILE] [--timeline]\n"
      "  workload --topo NAME --ports N [--seconds 60] [--cf 1] [--seed 1]\n"
      "           [--log-level trace|debug|info|warn|error|off]\n"
      "  topo     --topo NAME --ports N [--ring-width 2] [--aspen-f 1] [--dot]\n"
      "  table1   --ports N [--aspen-f 1]\n"
      "topologies: fat f2 f2scaled leafspine leafspine-f2 vl2 vl2-f2 aspen\n"
      "--metrics-out/--events-out/--timeline enable observability: a\n"
      "schema-versioned metrics JSON, a JSONL event journal, and a\n"
      "reconstructed per-failure recovery timeline on stdout.\n";
  return 2;
}

failure::Condition parse_condition(const std::string& text) {
  using failure::Condition;
  static const std::map<std::string, Condition> table{
      {"C1", Condition::kC1}, {"C2", Condition::kC2}, {"C3", Condition::kC3},
      {"C4", Condition::kC4}, {"C5", Condition::kC5}, {"C6", Condition::kC6},
      {"C7", Condition::kC7}};
  const auto it = table.find(text);
  if (it == table.end()) {
    throw std::invalid_argument("unknown condition: " + text);
  }
  return it->second;
}

core::ControlPlane parse_control(const std::string& text) {
  if (text == "ospf") return core::ControlPlane::kOspf;
  if (text == "central") return core::ControlPlane::kCentral;
  if (text == "bgp") return core::ControlPlane::kPathVector;
  throw std::invalid_argument("unknown control plane: " + text);
}

sim::LogLevel parse_log_level_option(core::Cli& cli) {
  const std::string text = cli.get("log-level", "warn");
  const auto level = sim::Logger::parse_level(text);
  if (!level) throw std::invalid_argument("unknown log level: " + text);
  return *level;
}

/// Writes the observability artefacts of one observed run: metrics JSON,
/// event-journal JSONL, and (on request) the reconstructed recovery
/// timeline plus the engine profile on stdout.
int export_observation(const obs::RunObservation& o,
                       const std::string& metrics_out,
                       const std::string& events_out, bool timeline) {
  if (!o.enabled) return 0;
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot write " << metrics_out << "\n";
      return 1;
    }
    o.metrics.write_json(out);
    out << "\n";
  }
  if (!events_out.empty()) {
    std::ofstream out(events_out);
    if (!out) {
      std::cerr << "cannot write " << events_out << "\n";
      return 1;
    }
    obs::write_events_jsonl(out, o.events);
  }
  if (timeline) {
    obs::RecoveryTimeline(o.events).print(std::cout);
    std::cout << "engine: " << o.profile.events_executed << " events, "
              << static_cast<std::uint64_t>(o.profile.events_per_wall_second())
              << " events/s, " << o.profile.wall_per_sim_second()
              << " wall-s per sim-s\n";
  }
  return 0;
}

int cmd_recover(core::Cli& cli) {
  const auto builder = core::topology_builder(
      cli.get("topo", "f2"), cli.get_int("ports", 8),
      cli.get_int("ring-width", 2), cli.get_int("aspen-f", 1));
  const auto condition = parse_condition(cli.get("condition", "C1"));
  const std::string proto = cli.get("proto", "udp");
  const bool csv = cli.get_flag("csv");
  const std::string metrics_out = cli.get("metrics-out", "");
  const std::string events_out = cli.get("events-out", "");
  const bool timeline = cli.get_flag("timeline");

  core::RunKnobs knobs;
  knobs.config.control_plane = parse_control(cli.get("control", "ospf"));
  knobs.config.detection.down_delay =
      sim::millis(cli.get_int("detection-ms", 60));
  knobs.config.detection.up_delay = knobs.config.detection.down_delay;
  knobs.config.ospf.throttle.initial_delay =
      sim::millis(cli.get_int("spf-ms", 200));
  knobs.config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  knobs.config.log_level = parse_log_level_option(cli);
  knobs.config.observe =
      timeline || !metrics_out.empty() || !events_out.empty();
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }

  stats::Table table({"metric", "value"});
  if (proto == "udp") {
    const auto r = core::run_udp_condition(builder, condition, knobs);
    if (!r.ok) {
      std::cerr << "scenario construction failed (condition not applicable "
                   "to this topology?)\n";
      return 1;
    }
    table.row({"scenario", r.scenario});
    table.row({"connectivity loss",
               sim::format_time(r.connectivity_loss)});
    table.row({"packets sent", std::to_string(r.packets_sent)});
    table.row({"packets lost", std::to_string(r.packets_lost)});
    if (const int rc =
            export_observation(r.observation, metrics_out, events_out,
                               timeline);
        rc != 0) {
      return rc;
    }
  } else if (proto == "tcp") {
    const auto r = core::run_tcp_condition(builder, condition, knobs);
    if (!r.ok) {
      std::cerr << "scenario construction failed\n";
      return 1;
    }
    table.row({"throughput collapse", sim::format_time(r.collapse)});
    table.row({"rto fires", std::to_string(r.rto_fires)});
    if (const int rc =
            export_observation(r.observation, metrics_out, events_out,
                               timeline);
        rc != 0) {
      return rc;
    }
  } else {
    std::cerr << "unknown --proto " << proto << "\n";
    return usage();
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}

int cmd_workload(core::Cli& cli) {
  const auto builder = core::topology_builder(
      cli.get("topo", "f2"), cli.get_int("ports", 8),
      cli.get_int("ring-width", 2), cli.get_int("aspen-f", 1));
  const int seconds = cli.get_int("seconds", 60);
  const int cf = cli.get_int("cf", 1);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const sim::LogLevel log_level = parse_log_level_option(cli);
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }

  core::TestbedConfig config;
  config.seed = seed;
  config.log_level = log_level;
  core::Testbed bed(builder, config);
  bed.converge();

  transport::PartitionAggregateOptions pa;
  pa.start = sim::seconds(1);
  pa.stop = sim::seconds(1 + seconds);
  transport::PartitionAggregateApp app(bed.stacks(), sim::Random(seed + 1),
                                       pa);
  app.start();
  transport::BackgroundTrafficOptions bg;
  bg.start = pa.start;
  bg.stop = pa.stop;
  transport::BackgroundTraffic background(bed.stacks(), sim::Random(seed + 2),
                                          bg);
  background.start();
  failure::RandomFailureOptions rf;
  rf.start = sim::seconds(2);
  rf.stop = pa.stop;
  rf.max_concurrent = cf;
  failure::RandomFailureGenerator failures(bed.injector(),
                                           sim::Random(seed + 3), rf);
  failures.start();
  bed.sim().run(pa.stop + sim::seconds(20));

  stats::Table table({"metric", "value"});
  table.row({"requests", std::to_string(app.issued_count())});
  table.row({"completed", std::to_string(app.completed_count())});
  table.row({"failures injected", std::to_string(failures.failures_injected())});
  table.row({"deadline miss ratio",
             stats::Table::percent(
                 app.deadline_miss_ratio(pa.stop + sim::seconds(20)), 3)});
  table.print(std::cout);
  return 0;
}

int cmd_topo(core::Cli& cli) {
  const auto builder = core::topology_builder(
      cli.get("topo", "f2"), cli.get_int("ports", 8),
      cli.get_int("ring-width", 2), cli.get_int("aspen-f", 1));
  const bool dot = cli.get_flag("dot");
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo = builder(net);
  if (dot) {
    topo::write_graphviz(std::cout, topo);
  } else {
    std::cout << topo.summary() << "\n";
    const auto violations = topo::validate_topology(topo);
    for (const auto& v : violations) std::cout << "VIOLATION: " << v << "\n";
  }
  return 0;
}

int cmd_table1(core::Cli& cli) {
  const int ports = cli.get_int("ports", 8);
  const int f = cli.get_int("aspen-f", 1);
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }
  stats::Table table({"Solution", "Switches", "Nodes", "Modify routing",
                      "Modify data plane"});
  for (const auto& row : core::table1(ports, f)) {
    table.row({row.name, stats::Table::num(row.switches, 0),
               stats::Table::num(row.nodes, 0), row.modifies_routing,
               row.modifies_data_plane});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    core::Cli cli(argc, argv);
    if (!cli.has_command()) return usage();
    if (cli.command() == "recover") return cmd_recover(cli);
    if (cli.command() == "workload") return cmd_workload(cli);
    if (cli.command() == "topo") return cmd_topo(cli);
    if (cli.command() == "table1") return cmd_table1(cli);
    std::cerr << "unknown command: " << cli.command() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
