/// f2tsim — command-line front end to the F²Tree reproduction library.
///
/// Commands:
///   f2tsim recover  --topo f2 --ports 8 --condition C1 --control ospf
///                   [--proto udp|tcp] [--detection-ms 60] [--spf-ms 200]
///                   [--ring-width 2] [--aspen-f 1] [--csv]
///                   [--log-level LEVEL] [--metrics-out FILE]
///                   [--events-out FILE] [--timeline]
///   f2tsim workload --topo f2 --ports 8 --seconds 60 --cf 1 [--seed 1]
///                   [--log-level LEVEL]
///   f2tsim campaign --spec FILE [--jobs N] [--out FILE] [--no-profile]
///                   (or ad hoc: --topo f2 --ports 8 --conditions all
///                    --link-sites all --seeds 4)
///   f2tsim topo     --topo f2 --ports 8 [--dot]
///   f2tsim table1   --ports 8 [--aspen-f 1]
///
/// Every command maps onto the same library calls the benches and tests
/// use, so a CLI run is exactly reproducible in code.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/cli.hpp"
#include "core/f2tree.hpp"
#include "core/runner.hpp"
#include "exec/campaign.hpp"
#include "exec/process.hpp"
#include "obs/trace.hpp"
#include "topo/graphviz.hpp"

using namespace f2t;

namespace {

int usage() {
  std::cerr <<
      "usage: f2tsim <recover|workload|topo|table1> [options]\n"
      "  recover  --topo NAME --ports N --condition C1..C7\n"
      "           [--control ospf|central|bgp] [--proto udp|tcp]\n"
      "           [--detection-ms 60] [--spf-ms 200] [--ring-width 2]\n"
      "           [--aspen-f 1] [--seed 1] [--csv]\n"
      "           [--detection oracle|probe] [--bfd-tx-ms 20]\n"
      "           [--bfd-multiplier 3] [--no-dampening]\n"
      "           [--fault cut|unidir|gray|flap] [--gray-loss 1.0]\n"
      "           [--flap-period-ms 300] [--flap-cycles 5]\n"
      "           [--fidelity packet|flow]\n"
      "           [--workload poisson|incast] [--size-dist websearch|datamining]\n"
      "           [--wl-load 0.1] [--wl-fanin 8] [--wl-flow-bytes 20000]\n"
      "           [--wl-deadline-ms 250]\n"
      "           [--log-level trace|debug|info|warn|error|off]\n"
      "           [--metrics-out FILE] [--events-out FILE] [--timeline]\n"
      "           [--trace-out FILE] [--samples-out FILE]\n"
      "           [--sample-interval-ms 10]\n"
      "  workload --topo NAME --ports N [--seconds 60] [--cf 1] [--seed 1]\n"
      "           [--log-level trace|debug|info|warn|error|off]\n"
      "  campaign --spec FILE [--jobs N] [--out FILE] [--no-profile]\n"
      "           [--workers N] [--resume] [--state-dir DIR]\n"
      "           or ad hoc: [--name S] [--topo NAME] [--ports N]\n"
      "           [--control ospf|central|bgp] [--conditions C1,..|all]\n"
      "           [--link-sites N|all] [--random-sites N] [--seeds N]\n"
      "           [--base-seed N]\n"
      "           [--detection-ms 60] [--spf-ms 200] [--ring-width 2]\n"
      "           [--aspen-f 1] [--detection oracle|probe] [--bfd-tx-ms 20]\n"
      "           [--bfd-multiplier 3] [--no-dampening]\n"
      "           [--fault cut|unidir|gray|flap] [--gray-loss 1.0]\n"
      "           [--flap-period-ms 300] [--flap-cycles 5]\n"
      "           [--fidelity packet|flow]\n"
      "           [--trace] [--sample-interval-ms 10]\n"
      "           [--workload poisson|incast] [--size-dist websearch|datamining]\n"
      "           [--wl-load 0.1] [--wl-fanin 8] [--wl-flow-bytes 20000]\n"
      "           [--wl-deadline-ms 250]\n"
      "  topo     --topo NAME --ports N [--ring-width 2] [--aspen-f 1] [--dot]\n"
      "  table1   --ports N [--aspen-f 1]\n"
      "topologies: fat f2 f2scaled leafspine leafspine-f2 vl2 vl2-f2 aspen\n"
      "--metrics-out/--events-out/--timeline enable observability: a\n"
      "schema-versioned metrics JSON, a JSONL event journal, and a\n"
      "reconstructed per-failure recovery timeline on stdout.\n"
      "--trace-out writes a Chrome trace_event JSON of the causal recovery\n"
      "span chain (open in chrome://tracing or ui.perfetto.dev);\n"
      "--samples-out writes a JSONL telemetry time series sampled every\n"
      "--sample-interval-ms of sim time (queue depths, link utilization,\n"
      "drop rates) with p50/p99/max rollups on the last line.\n"
      "campaign shards the spec's failure matrix across --jobs worker\n"
      "threads; the JSON artifact (minus --no-profile) is byte-identical\n"
      "for any job count. --workers N runs the shards across N forked\n"
      "worker *processes* instead, streaming one JSONL record per shard\n"
      "into --state-dir (default <out>.state); the artifact stays\n"
      "byte-identical, and a killed campaign continues from its\n"
      "checkpointed shards with --resume. --random-sites N adds N\n"
      "randomly drawn single-link failures per topology/control (the\n"
      "survivability sweep; aggregated reliability/availability curves\n"
      "land in the artifact's \"survivability\" section). --workload adds\n"
      "a trace-shaped TCP background workload (Poisson arrivals from an\n"
      "empirical flow-size CDF, or periodic incast fan-in rounds) to each\n"
      "run and reports tail-latency SLOs: FCT p50/p99/p999 and the\n"
      "deadline-miss fraction inside vs outside the failure window\n"
      "(packet fidelity only).\n";
  return 2;
}

failure::Condition parse_condition(const std::string& text) {
  using failure::Condition;
  static const std::map<std::string, Condition> table{
      {"C1", Condition::kC1}, {"C2", Condition::kC2}, {"C3", Condition::kC3},
      {"C4", Condition::kC4}, {"C5", Condition::kC5}, {"C6", Condition::kC6},
      {"C7", Condition::kC7}};
  const auto it = table.find(text);
  if (it == table.end()) {
    throw std::invalid_argument("unknown condition: " + text);
  }
  return it->second;
}

core::ControlPlane parse_control(const std::string& text) {
  if (text == "ospf") return core::ControlPlane::kOspf;
  if (text == "central") return core::ControlPlane::kCentral;
  if (text == "bgp") return core::ControlPlane::kPathVector;
  throw std::invalid_argument("unknown control plane: " + text);
}

sim::LogLevel parse_log_level_option(core::Cli& cli) {
  const std::string text = cli.get("log-level", "warn");
  const auto level = sim::Logger::parse_level(text);
  if (!level) throw std::invalid_argument("unknown log level: " + text);
  return *level;
}

/// Applies the shared --detection / --bfd-* / --fault family of flags
/// (recover and ad hoc campaign accept the same set).
void apply_detection_flags(core::Cli& cli, core::RunKnobs& knobs) {
  const std::string detection = cli.get("detection", "oracle");
  if (detection == "probe") {
    knobs.config.detection.mode = routing::DetectionMode::kProbe;
  } else if (detection != "oracle") {
    throw std::invalid_argument("unknown detection: " + detection +
                                " (oracle|probe)");
  }
  knobs.config.bfd.tx_interval = sim::millis(cli.get_int("bfd-tx-ms", 20));
  knobs.config.bfd.miss_multiplier = cli.get_int("bfd-multiplier", 3);
  knobs.config.bfd.dampening.enabled = !cli.get_flag("no-dampening");

  const std::string fault = cli.get("fault", "cut");
  const auto kind = failure::parse_fault_kind(fault);
  if (!kind) {
    throw std::invalid_argument("unknown fault: " + fault +
                                " (cut|unidir|gray|flap)");
  }
  knobs.fault.kind = *kind;
  knobs.fault.gray_loss = cli.get_double("gray-loss", 1.0);
  knobs.fault.flap_period = sim::millis(cli.get_int("flap-period-ms", 300));
  knobs.fault.flap_cycles = cli.get_int("flap-cycles", 5);

  const std::string fidelity = cli.get("fidelity", "packet");
  if (!core::parse_fidelity(fidelity, knobs.fidelity)) {
    throw std::invalid_argument("unknown fidelity: " + fidelity +
                                " (packet|flow)");
  }
}

/// Parses the shared --workload flag family (recover and ad hoc campaign
/// accept the same set) into the spec axis. Returns false — leaving the
/// axis disabled — when --workload was not given.
bool parse_workload_flags(core::Cli& cli,
                          core::CampaignSpec::WorkloadAxis& wl) {
  const std::string kind = cli.get("workload", "");
  // The satellite flags are consumed up front (marking them known to the
  // Cli) so they are inert without --workload instead of tripping the
  // unknown-option check.
  const std::string size_dist = cli.get("size-dist", wl.size_dist);
  const double load = cli.get_double("wl-load", wl.load);
  const int fanin = cli.get_int("wl-fanin", wl.fanin);
  const int flow_bytes =
      cli.get_int("wl-flow-bytes", static_cast<int>(wl.flow_bytes));
  const int deadline_ms = cli.get_int("wl-deadline-ms", wl.deadline_ms);
  if (kind.empty()) return false;
  if (kind != "poisson" && kind != "incast") {
    throw std::invalid_argument("unknown workload: " + kind +
                                " (poisson|incast)");
  }
  wl.enabled = true;
  wl.kind = kind;
  wl.size_dist = size_dist;
  if (wl.size_dist != "websearch" && wl.size_dist != "datamining") {
    throw std::invalid_argument("unknown size-dist: " + wl.size_dist +
                                " (websearch|datamining)");
  }
  wl.load = load;
  if (!(wl.load > 0) || wl.load > 1) {
    throw std::invalid_argument("--wl-load must be in (0, 1]");
  }
  wl.fanin = fanin;
  if (wl.fanin < 1) throw std::invalid_argument("--wl-fanin must be >= 1");
  if (flow_bytes < 1) {
    throw std::invalid_argument("--wl-flow-bytes must be >= 1");
  }
  wl.flow_bytes = static_cast<std::uint64_t>(flow_bytes);
  wl.deadline_ms = deadline_ms;
  if (wl.deadline_ms < 0) {
    throw std::invalid_argument("--wl-deadline-ms must be >= 0");
  }
  return true;
}

/// Export destinations for one observed run's artefacts.
struct ExportPaths {
  std::string metrics_out;
  std::string events_out;
  std::string trace_out;
  std::string samples_out;
  bool timeline = false;
};

/// Writes the observability artefacts of one observed run: metrics JSON,
/// event-journal JSONL, Chrome trace JSON, sampler JSONL, and (on
/// request) the reconstructed recovery timeline plus the engine profile
/// on stdout. Samples export does not require the event journal — the
/// sampler is its own subsystem and may run with metrics observe off.
int export_observation(const obs::RunObservation& o, const ExportPaths& p) {
  if (!p.samples_out.empty()) {
    std::ofstream out(p.samples_out);
    if (!out) {
      std::cerr << "cannot write " << p.samples_out << "\n";
      return 1;
    }
    o.samples.write_jsonl(out);
  }
  if (!o.enabled) return 0;
  if (!p.metrics_out.empty()) {
    std::ofstream out(p.metrics_out);
    if (!out) {
      std::cerr << "cannot write " << p.metrics_out << "\n";
      return 1;
    }
    o.metrics.write_json(out);
    out << "\n";
  }
  if (!p.events_out.empty()) {
    std::ofstream out(p.events_out);
    if (!out) {
      std::cerr << "cannot write " << p.events_out << "\n";
      return 1;
    }
    obs::write_events_jsonl(out, o.events);
  }
  if (!p.trace_out.empty()) {
    std::ofstream out(p.trace_out);
    if (!out) {
      std::cerr << "cannot write " << p.trace_out << "\n";
      return 1;
    }
    obs::SpanTrace(o.events, o.profile).write_chrome_trace(out);
  }
  if (p.timeline) {
    obs::RecoveryTimeline(o.events).print(std::cout);
    std::cout << "engine: " << o.profile.events_executed << " events, "
              << static_cast<std::uint64_t>(o.profile.events_per_wall_second())
              << " events/s, " << o.profile.wall_per_sim_second()
              << " wall-s per sim-s\n";
  }
  return 0;
}

int cmd_recover(core::Cli& cli) {
  const auto builder = core::topology_builder(
      cli.get("topo", "f2"), cli.get_int("ports", 8),
      cli.get_int("ring-width", 2), cli.get_int("aspen-f", 1));
  const auto condition = parse_condition(cli.get("condition", "C1"));
  const std::string proto = cli.get("proto", "udp");
  const bool csv = cli.get_flag("csv");
  ExportPaths paths;
  paths.metrics_out = cli.get("metrics-out", "");
  paths.events_out = cli.get("events-out", "");
  paths.trace_out = cli.get("trace-out", "");
  paths.samples_out = cli.get("samples-out", "");
  paths.timeline = cli.get_flag("timeline");
  const int sample_interval_ms = cli.get_int("sample-interval-ms", 10);
  if (sample_interval_ms <= 0) {
    throw std::invalid_argument("--sample-interval-ms must be > 0");
  }

  core::RunKnobs knobs;
  knobs.config.control_plane = parse_control(cli.get("control", "ospf"));
  knobs.config.detection.down_delay =
      sim::millis(cli.get_int("detection-ms", 60));
  knobs.config.detection.up_delay = knobs.config.detection.down_delay;
  knobs.config.ospf.throttle.initial_delay =
      sim::millis(cli.get_int("spf-ms", 200));
  knobs.config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  apply_detection_flags(cli, knobs);
  core::CampaignSpec::WorkloadAxis workload_axis;
  if (parse_workload_flags(cli, workload_axis)) {
    if (proto != "udp") {
      throw std::invalid_argument(
          "--workload rides the UDP probe run (use --proto udp)");
    }
    knobs.workload_enabled = true;
    knobs.workload = exec::workload_options_of(workload_axis, knobs.horizon);
  }
  knobs.config.log_level = parse_log_level_option(cli);
  knobs.config.observe = paths.timeline || !paths.metrics_out.empty() ||
                         !paths.events_out.empty() || !paths.trace_out.empty();
  if (!paths.samples_out.empty()) {
    knobs.config.sample_interval = sim::millis(sample_interval_ms);
  }
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }

  stats::Table table({"metric", "value"});
  if (proto == "udp") {
    const auto r = core::run_udp_condition(builder, condition, knobs);
    if (!r.ok) {
      std::cerr << "scenario construction failed (condition not applicable "
                   "to this topology?)\n";
      return 1;
    }
    table.row({"scenario", r.scenario});
    table.row({"connectivity loss",
               sim::format_time(r.connectivity_loss)});
    table.row({"packets sent", std::to_string(r.packets_sent)});
    table.row({"packets lost", std::to_string(r.packets_lost)});
    if (r.slo_enabled) {
      table.row({"workload flows", std::to_string(r.slo.flows)});
      table.row({"workload completed", std::to_string(r.slo.completed)});
      table.row({"fct p50 ms", stats::Table::num(r.slo.fct_ms_p50, 3)});
      table.row({"fct p99 ms", stats::Table::num(r.slo.fct_ms_p99, 3)});
      table.row({"fct p999 ms", stats::Table::num(r.slo.fct_ms_p999, 3)});
      table.row({"deadline miss (failure window)",
                 stats::Table::percent(r.slo.miss_in_window, 3)});
      table.row({"deadline miss (outside)",
                 stats::Table::percent(r.slo.miss_out_window, 3)});
    }
    if (const int rc = export_observation(r.observation, paths); rc != 0) {
      return rc;
    }
  } else if (proto == "tcp") {
    const auto r = core::run_tcp_condition(builder, condition, knobs);
    if (!r.ok) {
      std::cerr << "scenario construction failed\n";
      return 1;
    }
    table.row({"throughput collapse", sim::format_time(r.collapse)});
    table.row({"rto fires", std::to_string(r.rto_fires)});
    if (const int rc = export_observation(r.observation, paths); rc != 0) {
      return rc;
    }
  } else {
    std::cerr << "unknown --proto " << proto << "\n";
    return usage();
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}

int cmd_workload(core::Cli& cli) {
  const auto builder = core::topology_builder(
      cli.get("topo", "f2"), cli.get_int("ports", 8),
      cli.get_int("ring-width", 2), cli.get_int("aspen-f", 1));
  const int seconds = cli.get_int("seconds", 60);
  const int cf = cli.get_int("cf", 1);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const sim::LogLevel log_level = parse_log_level_option(cli);
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }

  core::TestbedConfig config;
  config.seed = seed;
  config.log_level = log_level;
  core::Testbed bed(builder, config);
  bed.converge();

  transport::PartitionAggregateOptions pa;
  pa.start = sim::seconds(1);
  pa.stop = sim::seconds(1 + seconds);
  transport::PartitionAggregateApp app(bed.stacks(), sim::Random(seed + 1),
                                       pa);
  app.start();
  transport::BackgroundTrafficOptions bg;
  bg.start = pa.start;
  bg.stop = pa.stop;
  transport::BackgroundTraffic background(bed.stacks(), sim::Random(seed + 2),
                                          bg);
  background.start();
  failure::RandomFailureOptions rf;
  rf.start = sim::seconds(2);
  rf.stop = pa.stop;
  rf.max_concurrent = cf;
  failure::RandomFailureGenerator failures(bed.injector(),
                                           sim::Random(seed + 3), rf);
  failures.start();
  bed.sim().run(pa.stop + sim::seconds(20));

  stats::Table table({"metric", "value"});
  table.row({"requests", std::to_string(app.issued_count())});
  table.row({"completed", std::to_string(app.completed_count())});
  table.row({"failures injected", std::to_string(failures.failures_injected())});
  table.row({"deadline miss ratio",
             stats::Table::percent(
                 app.deadline_miss_ratio(pa.stop + sim::seconds(20)), 3)});
  table.print(std::cout);
  return 0;
}

/// Builds a CampaignSpec from ad hoc CLI flags (the no-spec-file path).
core::CampaignSpec campaign_spec_from_flags(core::Cli& cli) {
  core::CampaignSpec spec;
  spec.name = cli.get("name", "cli");
  core::CampaignSpec::TopologyAxis axis;
  axis.name = cli.get("topo", "f2");
  axis.ports = cli.get_int("ports", 8);
  axis.ring_width = cli.get_int("ring-width", 2);
  axis.aspen_f = cli.get_int("aspen-f", 1);
  spec.topologies = {axis};
  spec.controls = {cli.get("control", "ospf")};
  const std::string conditions = cli.get("conditions", "");
  if (conditions == "all") {
    using failure::Condition;
    spec.conditions = {Condition::kC1, Condition::kC2, Condition::kC3,
                       Condition::kC4, Condition::kC5, Condition::kC6,
                       Condition::kC7};
  } else if (!conditions.empty()) {
    std::istringstream in(conditions);
    std::string token;
    while (std::getline(in, token, ',')) {
      spec.conditions.push_back(parse_condition(token));
    }
  }
  const std::string sites = cli.get("link-sites", "0");
  spec.link_sites = sites == "all" ? -1 : std::stoi(sites);
  spec.random_sites = cli.get_int("random-sites", 0);
  if (spec.random_sites < 0) {
    throw std::invalid_argument("--random-sites must be >= 0");
  }
  spec.seeds = cli.get_int("seeds", 1);
  spec.base_seed = static_cast<std::uint64_t>(cli.get_int("base-seed", 1));
  spec.detection_ms = cli.get_int("detection-ms", 60);
  spec.spf_ms = cli.get_int("spf-ms", 200);
  spec.detection = cli.get("detection", "oracle");
  if (spec.detection != "oracle" && spec.detection != "probe") {
    throw std::invalid_argument("unknown detection: " + spec.detection +
                                " (oracle|probe)");
  }
  spec.bfd_tx_ms = cli.get_int("bfd-tx-ms", 20);
  spec.bfd_multiplier = cli.get_int("bfd-multiplier", 3);
  spec.dampening = !cli.get_flag("no-dampening");
  const std::string fault = cli.get("fault", "cut");
  const auto kind = failure::parse_fault_kind(fault);
  if (!kind) {
    throw std::invalid_argument("unknown fault: " + fault +
                                " (cut|unidir|gray|flap)");
  }
  spec.fault = *kind;
  spec.gray_loss = cli.get_double("gray-loss", 1.0);
  spec.flap_period_ms = cli.get_int("flap-period-ms", 300);
  spec.flap_cycles = cli.get_int("flap-cycles", 5);
  spec.fidelity = cli.get("fidelity", "packet");
  if (spec.fidelity != "packet" && spec.fidelity != "flow") {
    throw std::invalid_argument("unknown fidelity: " + spec.fidelity +
                                " (packet|flow)");
  }
  spec.trace = cli.get_flag("trace");
  spec.sample_interval_ms = cli.get_int("sample-interval-ms", 0);
  if (spec.sample_interval_ms < 0) {
    throw std::invalid_argument("--sample-interval-ms must be >= 0");
  }
  if (parse_workload_flags(cli, spec.workload) && spec.fidelity == "flow") {
    throw std::invalid_argument("--workload requires --fidelity packet");
  }
  if (spec.conditions.empty() && spec.link_sites == 0 &&
      spec.random_sites == 0) {
    // Bare "f2tsim campaign" sweeps the paper's Table IV conditions.
    using failure::Condition;
    spec.conditions = {Condition::kC1, Condition::kC2, Condition::kC3,
                       Condition::kC4, Condition::kC5, Condition::kC6,
                       Condition::kC7};
  }
  return spec;
}

std::string slurp_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int cmd_campaign(core::Cli& cli) {
  const std::string spec_path = cli.get("spec", "");
  const int jobs = cli.get_int("jobs", 1);
  const std::string out_path = cli.get("out", "campaign.json");
  const bool no_profile = cli.get_flag("no-profile");
  int workers = cli.get_int("workers", 0);
  const bool resume = cli.get_flag("resume");
  const std::string state_dir = cli.get("state-dir", out_path + ".state");

  core::CampaignSpec spec;
  if (resume) {
    // On --resume the checkpoint manifest names the campaign; a --spec
    // given alongside is verified against it (canonical echoes must be
    // byte-identical), never substituted. Ad hoc axis flags are not
    // consulted — they would be rejected as unknown options below.
    const auto manifest =
        core::CheckpointManifest::parse(slurp_or_die(state_dir +
                                                     "/manifest.json"));
    spec = manifest.spec;
    if (workers <= 0) workers = manifest.workers;
    if (!spec_path.empty()) {
      const auto given = core::CampaignSpec::parse(slurp_or_die(spec_path));
      std::ostringstream a;
      std::ostringstream b;
      given.write_json(a, 0);
      spec.write_json(b, 0);
      if (a.str() != b.str()) {
        std::cerr << "--spec does not match the checkpointed campaign in "
                  << state_dir << "\n";
        return 1;
      }
    }
  } else if (!spec_path.empty()) {
    spec = core::CampaignSpec::parse(slurp_or_die(spec_path));
  } else {
    spec = campaign_spec_from_flags(cli);
  }
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }

  const int total = static_cast<int>(core::enumerate_shards(spec).size());
  core::CampaignResult result;
  if (workers > 0) {
    exec::ProcessCampaignOptions options;
    options.workers = workers;
    options.resume = resume;
    options.state_dir = state_dir;
    // Workers re-exec this binary (the child's command line reads
    // "campaign-worker", so it is visible and killable by name); if the
    // self path cannot be resolved, fall back to fork-only children.
    std::error_code ec;
    const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec) options.exe = self.string();
    int done = 0;
    options.on_record = [&done, total](const core::ShardResult&) {
      ++done;
      if (done % 16 == 0 || done == total) {
        std::cerr << "\r" << done << "/" << total << " shards reduced"
                  << std::flush;
      }
    };
    result = exec::run_campaign_processes(spec, options);
  } else {
    exec::CampaignOptions options;
    options.jobs = jobs;
    std::atomic<int> started{0};
    std::atomic<int> done{0};
    options.on_shard_start = [&started](const core::ShardSpec&) {
      started.fetch_add(1, std::memory_order_relaxed);
    };
    options.on_result = [&started, &done, total](const core::ShardResult&) {
      const int n = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (n % 16 == 0 || n == total) {
        std::cerr << "\r" << n << "/" << total << " shards done, "
                  << started.load(std::memory_order_relaxed) << " started"
                  << std::flush;
      }
    };
    result = exec::run_campaign(spec, options);
  }
  if (total > 0) std::cerr << "\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  result.write_json(out, !no_profile);

  stats::Table table({"class", "runs", "affected", "failed", "loss ms mean",
                      "p50", "p99", "max", "pkts lost"});
  for (const auto& a : core::aggregate_runs(result.runs)) {
    table.row({a.key, std::to_string(a.runs), std::to_string(a.affected),
               std::to_string(a.failed), stats::Table::num(a.loss_ms_mean, 1),
               stats::Table::num(a.loss_ms_p50, 1),
               stats::Table::num(a.loss_ms_p99, 1),
               stats::Table::num(a.loss_ms_max, 1),
               std::to_string(a.packets_lost_total)});
  }
  table.print(std::cout);
  if (spec.random_sites > 0) {
    stats::Table surv({"class", "draws", "affected", "failed", "avail mean",
                       "avail p50", "avail min", "rel<=10ms", "rel<=100ms"});
    for (const auto& a : core::aggregate_survivability(
             result.runs, spec.horizon - spec.fail_at)) {
      surv.row({a.key, std::to_string(a.draws), std::to_string(a.affected),
                std::to_string(a.failed),
                stats::Table::num(a.availability_mean, 4),
                stats::Table::num(a.availability_p50, 4),
                stats::Table::num(a.availability_min, 4),
                stats::Table::num(a.reliability[1], 3),
                stats::Table::num(a.reliability[2], 3)});
    }
    surv.print(std::cout);
  }
  if (spec.workload.enabled) {
    // Pooled SLO summary over the shards that carried the workload —
    // the same arithmetic as the artifact's "slo" section.
    int slo_runs = 0;
    std::size_t flows = 0;
    std::size_t completed = 0;
    std::size_t dl_in = 0;
    std::size_t dl_out = 0;
    double missed_in = 0;
    double missed_out = 0;
    double p99_sum = 0;
    double p999_max = 0;
    for (const auto& r : result.runs) {
      if (!r.slo) continue;
      ++slo_runs;
      flows += r.slo_flows;
      completed += r.slo_completed;
      dl_in += r.slo_deadline_in;
      dl_out += r.slo_deadline_out;
      missed_in += r.slo_miss_in * static_cast<double>(r.slo_deadline_in);
      missed_out += r.slo_miss_out * static_cast<double>(r.slo_deadline_out);
      p99_sum += r.fct_p99_ms;
      p999_max = std::max(p999_max, r.fct_p999_ms);
    }
    stats::Table slo({"slo runs", "flows", "completed", "fct p99 ms mean",
                      "fct p999 ms max", "miss in-window", "miss outside"});
    slo.row({std::to_string(slo_runs), std::to_string(flows),
             std::to_string(completed),
             stats::Table::num(slo_runs > 0 ? p99_sum / slo_runs : 0, 3),
             stats::Table::num(p999_max, 3),
             stats::Table::percent(
                 dl_in > 0 ? missed_in / static_cast<double>(dl_in) : 0, 3),
             stats::Table::percent(
                 dl_out > 0 ? missed_out / static_cast<double>(dl_out) : 0,
                 3)});
    slo.print(std::cout);
  }
  std::cout << result.runs.size() << " shards, ";
  if (result.workers > 0) {
    std::cout << "workers=" << result.workers;
  } else {
    std::cout << "jobs=" << result.jobs;
  }
  std::cout << ", wall " << stats::Table::num(result.wall_seconds, 2)
            << "s, steals=" << result.steals << " -> " << out_path << "\n";
  return 0;
}

/// Hidden subcommand: one forked campaign worker. The parent invokes
/// `f2tsim campaign-worker --spec <state>/spec.json --shards a:b --out
/// <state>/worker-<i>.jsonl`; not advertised in usage() because users
/// never run it by hand.
int cmd_campaign_worker(core::Cli& cli) {
  const std::string spec_path = cli.get("spec", "");
  const std::string shards = cli.get("shards", "");
  const std::string out_path = cli.get("out", "");
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return 2;
  }
  if (spec_path.empty() || shards.empty() || out_path.empty()) {
    std::cerr << "campaign-worker needs --spec, --shards and --out\n";
    return 2;
  }
  const auto spec = core::CampaignSpec::parse(slurp_or_die(spec_path));
  const auto ranges = core::parse_shard_ranges(shards);
  // Append mode: on --resume the stream already holds this worker's
  // earlier records and new ones must follow them.
  std::ofstream out(out_path, std::ios::binary | std::ios::app);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  exec::run_campaign_worker(spec, ranges, out);
  out.flush();
  return out.good() ? 0 : 1;
}

int cmd_topo(core::Cli& cli) {
  const auto builder = core::topology_builder(
      cli.get("topo", "f2"), cli.get_int("ports", 8),
      cli.get_int("ring-width", 2), cli.get_int("aspen-f", 1));
  const bool dot = cli.get_flag("dot");
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo = builder(net);
  if (dot) {
    topo::write_graphviz(std::cout, topo);
  } else {
    std::cout << topo.summary() << "\n";
    const auto violations = topo::validate_topology(topo);
    for (const auto& v : violations) std::cout << "VIOLATION: " << v << "\n";
  }
  return 0;
}

int cmd_table1(core::Cli& cli) {
  const int ports = cli.get_int("ports", 8);
  const int f = cli.get_int("aspen-f", 1);
  if (const auto unknown = cli.unknown_keys(); !unknown.empty()) {
    std::cerr << "unknown option: --" << unknown.front() << "\n";
    return usage();
  }
  stats::Table table({"Solution", "Switches", "Nodes", "Modify routing",
                      "Modify data plane"});
  for (const auto& row : core::table1(ports, f)) {
    table.row({row.name, stats::Table::num(row.switches, 0),
               stats::Table::num(row.nodes, 0), row.modifies_routing,
               row.modifies_data_plane});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    core::Cli cli(argc, argv);
    if (!cli.has_command()) return usage();
    if (cli.command() == "recover") return cmd_recover(cli);
    if (cli.command() == "workload") return cmd_workload(cli);
    if (cli.command() == "campaign") return cmd_campaign(cli);
    if (cli.command() == "campaign-worker") return cmd_campaign_worker(cli);
    if (cli.command() == "topo") return cmd_topo(cli);
    if (cli.command() == "table1") return cmd_table1(cli);
    std::cerr << "unknown command: " << cli.command() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
