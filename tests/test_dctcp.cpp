#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::transport {
namespace {

TEST(EcnQueue, MarksAboveThreshold) {
  net::DropTailQueue q(10);
  q.set_ecn_threshold(3);
  net::Packet p;
  for (int i = 0; i < 6; ++i) q.push(p);
  EXPECT_EQ(q.marked(), 3u);  // packets 4..6 enqueued at size >= 3
  int ce = 0;
  while (auto popped = q.pop()) {
    if (popped->ecn_ce) ++ce;
  }
  EXPECT_EQ(ce, 3);
}

struct IncastResult {
  std::uint64_t queue_drops = 0;
  std::uint64_t rto_fires = 0;
  bool all_delivered = true;
  double alpha = 0;
};

/// 8-to-1 incast through one switch; returns congestion statistics.
IncastResult run_incast(bool dctcp) {
  sim::Simulator sim(7);
  net::Network net(sim);
  net::LinkParams params;
  params.ecn_threshold = dctcp ? 20 : 0;
  net.set_default_link_params(params);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& sink_host = net.add_host("sink", net::Ipv4Addr(10, 11, 0, 10), &sw);
  HostStack sink_stack(sink_host);

  TcpConfig config;
  config.dctcp = dctcp;
  config.min_rto = sim::millis(10);
  config.initial_rto = sim::millis(10);

  std::vector<std::unique_ptr<HostStack>> stacks;
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (int i = 0; i < 8; ++i) {
    auto& host = net.add_host("h" + std::to_string(i),
                              net::Ipv4Addr(10, 11, 0, 20 + i), &sw);
    stacks.push_back(std::make_unique<HostStack>(host));
    conns.push_back(
        std::make_unique<TcpConnection>(*stacks.back(), sink_stack,
                                        stacks.back()->alloc_port(),
                                        sink_stack.alloc_port(), config));
    conns.back()->a().write(2'000'000);
  }
  sim.run(sim::seconds(60));

  IncastResult out;
  for (const auto& conn : conns) {
    if (conn->b().bytes_delivered() != 2'000'000u) out.all_delivered = false;
    out.rto_fires += conn->a().stats().rto_fires;
    out.alpha = std::max(out.alpha, conn->a().dctcp_alpha());
  }
  net::Link* bottleneck = net.find_link(sw, sink_host);
  out.queue_drops = bottleneck->dropped_queue();
  return out;
}

TEST(Dctcp, IncastCompletesWithFarFewerDropsThanReno) {
  const auto reno = run_incast(false);
  const auto dctcp = run_incast(true);
  EXPECT_TRUE(reno.all_delivered);
  EXPECT_TRUE(dctcp.all_delivered);
  EXPECT_GT(reno.queue_drops, 0u);
  // ECN feedback throttles senders before the queue overflows. (Slow-start
  // overshoot before alpha is learned still costs some drops, as in real
  // DCTCP.)
  EXPECT_LT(dctcp.queue_drops, reno.queue_drops / 2);
  EXPECT_GT(dctcp.alpha, 0.0);
  EXPECT_LE(dctcp.alpha, 1.0);
}

TEST(Dctcp, NoMarksMeansNoCut) {
  // An app-limited paced flow never builds a queue, so DCTCP sees no
  // marks and alpha stays exactly zero (no spurious cwnd cuts).
  sim::Simulator sim(1);
  net::Network net(sim);
  net::LinkParams params;
  params.ecn_threshold = 60;
  net.set_default_link_params(params);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& a = net.add_host("a", net::Ipv4Addr(10, 11, 0, 10), &sw);
  auto& b = net.add_host("b", net::Ipv4Addr(10, 11, 0, 11), &sw);
  HostStack sa(a), sb(b);
  TcpConfig config;
  config.dctcp = true;
  auto conn = TcpConnection::open(sa, sb, config);
  PacedTcpWriter::Options wo;
  wo.interval = sim::micros(200);  // ~58 Mbps into a 1 Gbps link
  wo.stop = sim::seconds(2);
  PacedTcpWriter writer(conn->a(), sim, wo);
  writer.start();
  sim.run(sim::seconds(5));
  EXPECT_EQ(conn->b().bytes_delivered(), conn->a().bytes_written());
  EXPECT_DOUBLE_EQ(conn->a().dctcp_alpha(), 0.0);
}

}  // namespace
}  // namespace f2t::transport
