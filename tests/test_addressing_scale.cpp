#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "net/network.hpp"
#include "topo/addressing.hpp"
#include "topo/fattree.hpp"
#include "topo/leafspine.hpp"
#include "topo/validate.hpp"
#include "topo/vl2.hpp"

namespace f2t::topo {
namespace {

TEST(AddressPlanScale, LegacyQuadLayoutUnchanged) {
  // The first 256 indices of every role keep the paper's exact addresses;
  // any drift here would invalidate every recorded campaign artifact.
  EXPECT_EQ(AddressPlan::tor_router_id(0).str(), "10.11.0.1");
  EXPECT_EQ(AddressPlan::tor_router_id(255).str(), "10.11.255.1");
  EXPECT_EQ(AddressPlan::agg_router_id(17).str(), "10.12.17.1");
  EXPECT_EQ(AddressPlan::core_router_id(255).str(), "10.13.255.1");
  EXPECT_EQ(AddressPlan::host_addr(3, 0).str(), "10.11.3.10");
  EXPECT_EQ(AddressPlan::tor_subnet(9).str(), "10.11.9.0/24");
}

TEST(AddressPlanScale, ExtensionBandsAreDisjoint) {
  EXPECT_EQ(AddressPlan::tor_router_id(256).str(), "10.32.0.1");
  EXPECT_EQ(AddressPlan::agg_router_id(256).str(), "10.64.0.1");
  EXPECT_EQ(AddressPlan::core_router_id(256).str(), "10.96.0.1");
  EXPECT_EQ(AddressPlan::tor_router_id(256 + 511).str(), "10.33.255.1");
  // Every role id across the full plan is globally unique.
  std::unordered_set<std::uint32_t> seen;
  for (int i = 0; i < AddressPlan::kMaxTors; i += 97) {
    EXPECT_TRUE(seen.insert(AddressPlan::tor_router_id(i).value()).second);
    EXPECT_TRUE(seen.insert(AddressPlan::agg_router_id(i).value()).second);
    EXPECT_TRUE(seen.insert(AddressPlan::core_router_id(i).value()).second);
  }
  EXPECT_THROW(AddressPlan::tor_router_id(AddressPlan::kMaxTors),
               std::out_of_range);
}

TEST(AddressPlanScale, BigFatTreesBuildCollisionFree) {
  // k = 32/48/64 exceed the legacy 256-per-role plan; the validator's
  // address check proves the extension bands never collide. One host per
  // ToR keeps the k=64 build (5120 switches) fast.
  for (const int k : {32, 48, 64}) {
    sim::Simulator sim(1);
    net::Network net(sim);
    const auto topo = build_fat_tree(
        net, FatTreeOptions{.ports = k, .hosts_per_tor = 1});
    EXPECT_EQ(topo.tors.size(), static_cast<std::size_t>(k * k / 2));
    EXPECT_EQ(topo.aggs.size(), static_cast<std::size_t>(k * k / 2));
    EXPECT_EQ(topo.cores.size(), static_cast<std::size_t>(k * k / 4));
    const auto violations = validate_topology(topo);
    EXPECT_TRUE(violations.empty())
        << "k=" << k << ": " << violations.front();
  }
}

TEST(AddressPlanScale, BigVl2AndLeafSpineBuild) {
  {
    sim::Simulator sim(1);
    net::Network net(sim);
    // n=48 VL2: 24 pairs x 24 ToRs = 576 ToRs, past the legacy plan.
    const auto topo =
        build_vl2(net, Vl2Options{.ports = 48, .hosts_per_tor = 1});
    EXPECT_EQ(topo.tors.size(), 576u);
    EXPECT_TRUE(validate_topology(topo).empty());
  }
  {
    sim::Simulator sim(1);
    net::Network net(sim);
    const auto topo = build_leaf_spine(
        net, LeafSpineOptions{.ports = 64, .hosts_per_leaf = 1});
    EXPECT_EQ(topo.tors.size(), 64u);
    EXPECT_TRUE(validate_topology(topo).empty());
  }
}

TEST(AddressPlanScale, F2RewiringKeepsBackupCover) {
  // Rewired builders rely on the Table II prefix chain, which covers only
  // the first 256 ToR subnets: big rewired builds must refuse.
  sim::Simulator sim(1);
  net::Network net(sim);
  EXPECT_THROW(
      build_fat_tree(net, FatTreeOptions{.ports = 32, .f2_rewire = true,
                                         .hosts_per_tor = 1}),
      std::invalid_argument);
  EXPECT_THROW(build_vl2(net, Vl2Options{.ports = 48, .f2_rewire = true,
                                         .hosts_per_tor = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace f2t::topo
