#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "exec/campaign.hpp"
#include "sim/random.hpp"

namespace f2t {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesScalarsArraysObjects) {
  const auto v = core::json::parse(
      R"({"a": 1, "b": -2.5e2, "c": "x\ny\u0041", "d": [true, false, null],
          "e": {"nested": [1, 2]}})");
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("b").as_double(), -250.0);
  EXPECT_EQ(v.at("c").as_string(), "x\nyA");
  ASSERT_EQ(v.at("d").as_array().size(), 3u);
  EXPECT_TRUE(v.at("d").as_array()[0].as_bool());
  EXPECT_TRUE(v.at("d").as_array()[2].is_null());
  EXPECT_EQ(v.at("e").at("nested").as_array()[1].as_int(), 2);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(core::json::parse("{"), std::invalid_argument);
  EXPECT_THROW(core::json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(core::json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(core::json::parse("nul"), std::invalid_argument);
  EXPECT_THROW(core::json::parse("1 2"), std::invalid_argument);
  EXPECT_THROW(core::json::parse("\"\\x\""), std::invalid_argument);
}

TEST(Json, TypeMismatchThrows) {
  const auto v = core::json::parse(R"({"a": 1})");
  EXPECT_THROW(v.at("a").as_string(), std::invalid_argument);
  EXPECT_THROW(v.at("missing"), std::invalid_argument);
  EXPECT_EQ(v.find("missing"), nullptr);
}

// --------------------------------------------------------- random split --

TEST(RandomSplit, StreamsAreStableAndDistinct) {
  sim::Random root(42);
  // Pure function of (root seed, stream id): any thread, any order.
  EXPECT_EQ(root.split(3).seed(), sim::Random(42).split(3).seed());
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(sim::Random::derive_stream_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // Nearby roots must not collide with nearby streams.
  EXPECT_NE(sim::Random::derive_stream_seed(42, 1),
            sim::Random::derive_stream_seed(43, 0));
}

TEST(RandomSplit, SplitStreamsProduceIndependentSequences) {
  sim::Random root(7);
  sim::Random a = root.split(0);
  sim::Random b = root.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.engine()() == b.engine()()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

// ---------------------------------------------------------------- spec --

const char* kSpecText = R"({
  "name": "unit",
  "topologies": [{"name": "f2", "ports": 4}],
  "controls": ["ospf"],
  "conditions": ["C1", "C2"],
  "link_sites": 2,
  "seeds": 2,
  "base_seed": 9,
  "horizon_ms": 1500
})";

TEST(CampaignSpec, ParsesAndEchoesCanonically) {
  const auto spec = core::CampaignSpec::parse(kSpecText);
  EXPECT_EQ(spec.name, "unit");
  ASSERT_EQ(spec.topologies.size(), 1u);
  EXPECT_EQ(spec.topologies[0].label(), "f2-4");
  EXPECT_EQ(spec.conditions.size(), 2u);
  EXPECT_EQ(spec.link_sites, 2);
  EXPECT_EQ(spec.seeds, 2);
  EXPECT_EQ(spec.base_seed, 9u);

  // The canonical echo re-parses to the same spec.
  std::ostringstream os;
  spec.write_json(os);
  const auto again = core::CampaignSpec::parse(os.str());
  std::ostringstream os2;
  again.write_json(os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(CampaignSpec, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "condtions": ["C1"]})"),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(R"({"topologies": []})"),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "conditions": ["C9"]})"),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "controls": ["rip"], "conditions": ["C1"]})"),
               std::invalid_argument);
}

TEST(CampaignSpec, DefaultDetectionAndFaultKnobsAreOmittedFromEcho) {
  // Byte-identity guarantee: a spec that never mentions the probe/fault
  // knobs must echo exactly as it did before those knobs existed.
  const auto spec = core::CampaignSpec::parse(kSpecText);
  std::ostringstream os;
  spec.write_json(os);
  const std::string echoed = os.str();
  for (const char* key : {"\"detection\"", "\"bfd_tx_ms\"", "\"bfd_multiplier\"",
                          "\"dampening\"", "\"fault\"", "\"gray_loss\"",
                          "\"flap_period_ms\"", "\"flap_cycles\""}) {
    EXPECT_EQ(echoed.find(key), std::string::npos)
        << key << " must not appear for a default spec";
  }
}

TEST(CampaignSpec, ParsesDetectionAndFaultKnobs) {
  const auto spec = core::CampaignSpec::parse(R"({
    "topologies": [{"name": "f2", "ports": 4}],
    "conditions": ["C1"],
    "detection": "probe",
    "bfd_tx_ms": 10,
    "bfd_multiplier": 4,
    "dampening": false,
    "fault": "gray",
    "gray_loss": 0.5,
    "flap_period_ms": 200,
    "flap_cycles": 7
  })");
  EXPECT_EQ(spec.detection, "probe");
  EXPECT_EQ(spec.bfd_tx_ms, 10);
  EXPECT_EQ(spec.bfd_multiplier, 4);
  EXPECT_FALSE(spec.dampening);
  EXPECT_EQ(spec.fault, failure::FaultKind::kGray);
  EXPECT_DOUBLE_EQ(spec.gray_loss, 0.5);
  EXPECT_EQ(spec.flap_period_ms, 200);
  EXPECT_EQ(spec.flap_cycles, 7);

  // Non-default knobs survive a canonical echo round trip.
  std::ostringstream os;
  spec.write_json(os);
  const auto again = core::CampaignSpec::parse(os.str());
  EXPECT_EQ(again.detection, "probe");
  EXPECT_EQ(again.fault, failure::FaultKind::kGray);
  EXPECT_DOUBLE_EQ(again.gray_loss, 0.5);
  std::ostringstream os2;
  again.write_json(os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(CampaignSpec, RejectsBadDetectionAndFaultValues) {
  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "conditions": ["C1"], "detection": "psychic"})"),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "conditions": ["C1"], "fault": "meteor"})"),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "conditions": ["C1"], "gray_loss": 1.5})"),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "conditions": ["C1"], "bfd_multiplier": 0})"),
               std::invalid_argument);
}

TEST(CampaignSpec, ParsesObservabilityKnobsAndOmitsDefaults) {
  // Defaults: no trace, no sampling — and crucially the keys must not
  // appear in the canonical echo, so artifacts recorded before these
  // knobs existed stay byte-identical.
  const auto plain = core::CampaignSpec::parse(kSpecText);
  EXPECT_FALSE(plain.trace);
  EXPECT_EQ(plain.sample_interval_ms, 0);
  std::ostringstream os0;
  plain.write_json(os0);
  EXPECT_EQ(os0.str().find("\"trace\""), std::string::npos);
  EXPECT_EQ(os0.str().find("\"sample_interval_ms\""), std::string::npos);

  const auto spec = core::CampaignSpec::parse(R"({
    "topologies": [{"name": "f2", "ports": 4}],
    "conditions": ["C1"],
    "trace": true,
    "sample_interval_ms": 5
  })");
  EXPECT_TRUE(spec.trace);
  EXPECT_EQ(spec.sample_interval_ms, 5);
  std::ostringstream os;
  spec.write_json(os);
  EXPECT_NE(os.str().find("\"trace\": true"), std::string::npos);
  EXPECT_NE(os.str().find("\"sample_interval_ms\": 5"), std::string::npos);
  const auto again = core::CampaignSpec::parse(os.str());
  EXPECT_TRUE(again.trace);
  EXPECT_EQ(again.sample_interval_ms, 5);
  std::ostringstream os2;
  again.write_json(os2);
  EXPECT_EQ(os.str(), os2.str());

  EXPECT_THROW(core::CampaignSpec::parse(
                   R"({"topologies": [{"name": "f2", "ports": 4}],
                       "conditions": ["C1"], "sample_interval_ms": -1})"),
               std::invalid_argument);
}

TEST(CampaignSpec, EnumerateShardsIsDeterministic) {
  const auto spec = core::CampaignSpec::parse(kSpecText);
  const auto shards = core::enumerate_shards(spec);
  // (2 conditions + 2 link sites) x 2 seeds.
  ASSERT_EQ(shards.size(), 8u);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].index, static_cast<int>(i));
    EXPECT_EQ(shards[i].seed,
              sim::Random::derive_stream_seed(9, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(shards[0].site(), "C1");
  EXPECT_EQ(shards[0].replicate, 0);
  EXPECT_EQ(shards[1].replicate, 1);
  EXPECT_EQ(shards[4].site(), "L0");
  // "all" link sites resolves to every switch-to-switch link, stably.
  auto all = spec;
  all.link_sites = -1;
  const auto a = core::enumerate_shards(all);
  const auto b = core::enumerate_shards(all);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), shards.size());
}

// ------------------------------------------------------------ execution --

/// Shared tiny campaign: 1 condition + 2 link sites, 2 seeds, short
/// horizon, f2-4 — small enough for a unit test, rich enough to exercise
/// both failure-site enumerators and the aggregation.
core::CampaignSpec tiny_spec() {
  return core::CampaignSpec::parse(R"({
    "name": "tiny",
    "topologies": [{"name": "f2", "ports": 4}],
    "conditions": ["C1"],
    "link_sites": 2,
    "seeds": 2,
    "horizon_ms": 1200
  })");
}

TEST(CampaignRun, DeterministicAcrossJobCounts) {
  const auto spec = tiny_spec();
  exec::CampaignOptions serial;
  serial.jobs = 1;
  exec::CampaignOptions parallel;
  parallel.jobs = 8;
  const auto r1 = exec::run_campaign(spec, serial);
  const auto r8 = exec::run_campaign(spec, parallel);
  ASSERT_EQ(r1.runs.size(), 6u);
  std::ostringstream a;
  std::ostringstream b;
  r1.write_json(a, /*include_profile=*/false);
  r8.write_json(b, /*include_profile=*/false);
  EXPECT_EQ(a.str(), b.str())
      << "campaign artifact must be byte-identical for any --jobs";
}

TEST(CampaignRun, SingleShardRerunReproducesCampaignRecord) {
  const auto spec = tiny_spec();
  const auto shards = core::enumerate_shards(spec);
  exec::CampaignOptions options;
  options.jobs = 4;
  const auto full = exec::run_campaign(spec, options);
  ASSERT_EQ(full.runs.size(), shards.size());
  // Re-running one shard in isolation (as after a killed campaign)
  // reproduces the exact record the full campaign stored at that index.
  for (const std::size_t i : {std::size_t{0}, shards.size() - 1}) {
    const auto redo = exec::run_shard(spec, shards[i]);
    const auto& ref = full.runs[i];
    EXPECT_EQ(redo.seed, ref.seed);
    EXPECT_EQ(redo.ok, ref.ok);
    EXPECT_EQ(redo.on_path, ref.on_path);
    EXPECT_EQ(redo.connectivity_loss, ref.connectivity_loss);
    EXPECT_EQ(redo.packets_sent, ref.packets_sent);
    EXPECT_EQ(redo.packets_lost, ref.packets_lost);
    EXPECT_EQ(redo.events_executed, ref.events_executed);
    EXPECT_EQ(redo.scenario, ref.scenario);
  }
}

TEST(CampaignRun, AggregatesCoverEveryRunAndClass) {
  const auto spec = tiny_spec();
  exec::CampaignOptions options;
  options.jobs = 2;
  const auto result = exec::run_campaign(spec, options);
  const auto aggregates = core::aggregate_runs(result.runs);
  ASSERT_FALSE(aggregates.empty());
  EXPECT_EQ(aggregates[0].key, "total");
  EXPECT_EQ(aggregates[0].runs, static_cast<int>(result.runs.size()));
  int grouped = 0;
  for (std::size_t i = 1; i < aggregates.size(); ++i) {
    grouped += aggregates[i].runs;
  }
  EXPECT_EQ(grouped, aggregates[0].runs);
  // A C1 failure on the probe path must cost packets; the aggregate's
  // histogram has to see them.
  std::uint64_t hist = 0;
  for (const auto b : aggregates[0].gap_loss_hist) hist += b;
  EXPECT_EQ(hist, static_cast<std::uint64_t>(aggregates[0].affected));
}

TEST(CampaignRun, ThrowingShardBecomesDeterministicErrorRecord) {
  // "nope" passes spec parsing (topology names are resolved at run time)
  // but makes every shard's topology_builder throw. The campaign must
  // still complete, with the exception captured as a per-shard error
  // record — byte-identical for any job count.
  const auto spec = core::CampaignSpec::parse(R"({
    "name": "broken",
    "topologies": [{"name": "nope", "ports": 4}],
    "conditions": ["C1", "C2"],
    "seeds": 2,
    "horizon_ms": 500
  })");
  exec::CampaignOptions serial;
  serial.jobs = 1;
  exec::CampaignOptions parallel;
  parallel.jobs = 4;
  const auto r1 = exec::run_campaign(spec, serial);
  const auto r4 = exec::run_campaign(spec, parallel);
  ASSERT_EQ(r1.runs.size(), 4u);
  for (const auto& run : r1.runs) {
    EXPECT_FALSE(run.ok);
    EXPECT_EQ(run.error, "unknown topology: nope");
  }
  std::ostringstream a;
  std::ostringstream b;
  r1.write_json(a, /*include_profile=*/false);
  r4.write_json(b, /*include_profile=*/false);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"error\": \"unknown topology: nope\""),
            std::string::npos);

  const auto aggregates = core::aggregate_runs(r1.runs);
  ASSERT_FALSE(aggregates.empty());
  EXPECT_EQ(aggregates[0].failed, 4);
}

TEST(CampaignRun, SuccessfulRunRecordsCarryNoErrorField) {
  const auto spec = tiny_spec();
  exec::CampaignOptions options;
  options.jobs = 2;
  const auto result = exec::run_campaign(spec, options);
  std::ostringstream os;
  result.write_json(os, /*include_profile=*/false);
  EXPECT_EQ(os.str().find("\"error\""), std::string::npos);
  // And no observability fields either: the spec did not ask for them.
  EXPECT_EQ(os.str().find("\"spans\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"samples\""), std::string::npos);
}

TEST(CampaignRun, TracedShardsRecordSpansAndMilestones) {
  auto spec = tiny_spec();
  spec.trace = true;
  spec.sample_interval_ms = 5;
  exec::CampaignOptions options;
  options.jobs = 2;
  std::atomic<int> started{0};
  options.on_shard_start = [&started](const core::ShardSpec&) {
    started.fetch_add(1, std::memory_order_relaxed);
  };
  const auto result = exec::run_campaign(spec, options);
  EXPECT_EQ(started.load(), static_cast<int>(result.runs.size()));
  for (const auto& run : result.runs) {
    ASSERT_TRUE(run.ok);
    EXPECT_GT(run.spans, 0u);
    EXPECT_GT(run.samples, 0u);
    if (run.on_path) {
      EXPECT_GT(run.detect_ns, 0);
      EXPECT_GT(run.converge_ns, run.detect_ns);
    }
  }
  std::ostringstream os;
  result.write_json(os, /*include_profile=*/false);
  EXPECT_NE(os.str().find("\"spans\""), std::string::npos);
  EXPECT_NE(os.str().find("\"detect_ns\""), std::string::npos);
  EXPECT_NE(os.str().find("\"samples\""), std::string::npos);
  EXPECT_NE(os.str().find("\"queue_p99\""), std::string::npos);

  // Still byte-identical across job counts with observability on.
  exec::CampaignOptions serial;
  serial.jobs = 1;
  const auto r1 = exec::run_campaign(spec, serial);
  std::ostringstream os1;
  r1.write_json(os1, /*include_profile=*/false);
  EXPECT_EQ(os.str(), os1.str());
}

TEST(CampaignRun, CallbacksAreSerializedAcrossPoolThreads) {
  // The engine's documented contract: on_shard_start/on_result never run
  // concurrently, so hooks may touch un-synchronized state. Both hooks
  // append to one plain (unlocked) vector; under TSan or with enough
  // shards, a violated contract corrupts it or trips the re-entrancy
  // flag.
  const auto spec = tiny_spec();
  exec::CampaignOptions options;
  options.jobs = 8;
  std::vector<int> order;  // deliberately unsynchronized
  std::atomic<bool> inside{false};
  const auto enter = [&inside] {
    ASSERT_FALSE(inside.exchange(true)) << "callback ran concurrently";
  };
  const auto leave = [&inside] { inside.store(false); };
  options.on_shard_start = [&](const core::ShardSpec& s) {
    enter();
    order.push_back(s.index);
    leave();
  };
  options.on_result = [&](const core::ShardResult& r) {
    enter();
    order.push_back(r.index);
    leave();
  };
  const auto result = exec::run_campaign(spec, options);
  EXPECT_EQ(order.size(), 2 * result.runs.size());
}

// -------------------------------------------------------- survivability --

TEST(CampaignSpec, RandomSitesParseEchoAndEnumerateDeterministically) {
  const auto spec = core::CampaignSpec::parse(R"({
    "name": "surv",
    "topologies": [{"name": "f2", "ports": 4}],
    "random_sites": 5,
    "seeds": 2,
    "horizon_ms": 1200
  })");
  EXPECT_EQ(spec.random_sites, 5);
  std::ostringstream echo;
  spec.write_json(echo);
  EXPECT_NE(echo.str().find("\"random_sites\": 5"), std::string::npos);
  // Echo round-trips.
  const auto again = core::CampaignSpec::parse(echo.str());
  std::ostringstream echo2;
  again.write_json(echo2);
  EXPECT_EQ(echo.str(), echo2.str());

  const auto shards = core::enumerate_shards(spec);
  ASSERT_EQ(shards.size(), 10u);  // 5 draws x 2 seeds
  const auto shards2 = core::enumerate_shards(spec);
  std::set<int> links;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& s = shards[i];
    EXPECT_TRUE(s.is_link_site);
    EXPECT_GE(s.random_site, 0);
    EXPECT_GE(s.link_site, 0);
    EXPECT_EQ(s.site(), std::string("R") + std::to_string(s.random_site));
    // Pure function of the spec: a re-enumeration draws the same links.
    EXPECT_EQ(s.link_site, shards2[i].link_site);
    links.insert(s.link_site);
  }
  // 5 independent draws over an f2-4's links should not collapse to one.
  EXPECT_GT(links.size(), 1u);
}

TEST(CampaignSpec, RandomSitesAloneAreAValidSiteSource) {
  const auto spec = core::CampaignSpec::parse(R"({
    "name": "only-random",
    "topologies": [{"name": "f2", "ports": 4}],
    "random_sites": 3
  })");
  EXPECT_TRUE(spec.conditions.empty());
  EXPECT_EQ(core::enumerate_shards(spec).size(), 3u);
  EXPECT_THROW(core::CampaignSpec::parse(R"({
    "name": "nothing",
    "topologies": [{"name": "f2", "ports": 4}],
    "random_sites": 0
  })"),
               std::invalid_argument);
}

TEST(CampaignRun, SurvivabilitySweepProducesCurves) {
  const auto spec = core::survivability_spec(
      {core::CampaignSpec::TopologyAxis{"f2", 4, 2, 1}}, /*draws=*/8);
  EXPECT_EQ(spec.random_sites, 8);
  exec::CampaignOptions options;
  options.jobs = 4;
  const auto result = exec::run_campaign(spec, options);
  ASSERT_EQ(result.runs.size(), 8u);

  const auto surv = core::aggregate_survivability(
      result.runs, spec.horizon - spec.fail_at);
  ASSERT_EQ(surv.size(), 1u);
  const auto& a = surv[0];
  EXPECT_EQ(a.key, "f2-4/ospf");
  EXPECT_EQ(a.draws, 8);
  EXPECT_GE(a.affected, 0);
  EXPECT_GE(a.availability_mean, 0.0);
  EXPECT_LE(a.availability_mean, 1.0);
  EXPECT_GE(a.availability_min, 0.0);
  EXPECT_LE(a.availability_p50, 1.0);
  // The reliability curve is monotone in the threshold.
  for (int t = 1; t < 4; ++t) {
    EXPECT_GE(a.reliability[t], a.reliability[t - 1]);
  }
  EXPECT_LE(a.reliability[3], 1.0);

  // The artifact gains the survivability section — and stays
  // byte-identical across job counts.
  std::ostringstream os;
  result.write_json(os, /*include_profile=*/false);
  EXPECT_NE(os.str().find("\"survivability\""), std::string::npos);
  EXPECT_NE(os.str().find("\"reliability_ms\": [1, 10, 100, 1000]"),
            std::string::npos);
  exec::CampaignOptions serial;
  serial.jobs = 1;
  const auto r1 = exec::run_campaign(spec, serial);
  std::ostringstream os1;
  r1.write_json(os1, /*include_profile=*/false);
  EXPECT_EQ(os.str(), os1.str());

  // Specs without random sites do not grow the section.
  const auto plain = exec::run_campaign(tiny_spec(), serial);
  std::ostringstream pos;
  plain.write_json(pos, /*include_profile=*/false);
  EXPECT_EQ(pos.str().find("\"survivability\""), std::string::npos);
}

TEST(CampaignSpec, SurvivabilitySpecRejectsBadArguments) {
  EXPECT_THROW(core::survivability_spec({}, 8), std::invalid_argument);
  EXPECT_THROW(core::survivability_spec(
                   {core::CampaignSpec::TopologyAxis{}}, 0),
               std::invalid_argument);
}

// ------------------------------------------------------ worker protocol --

TEST(WorkerProtocol, ShardRangesRoundTripAndReject) {
  const std::vector<std::pair<int, int>> ranges{{0, 4}, {7, 9}};
  const std::string text = core::format_shard_ranges(ranges);
  EXPECT_EQ(text, "0:4,7:9");
  EXPECT_EQ(core::parse_shard_ranges(text), ranges);
  EXPECT_THROW(core::parse_shard_ranges(""), std::invalid_argument);
  EXPECT_THROW(core::parse_shard_ranges("3"), std::invalid_argument);
  EXPECT_THROW(core::parse_shard_ranges("4:4"), std::invalid_argument);
  EXPECT_THROW(core::parse_shard_ranges("5:3"), std::invalid_argument);
  EXPECT_THROW(core::parse_shard_ranges("-1:3"), std::invalid_argument);
  EXPECT_THROW(core::parse_shard_ranges("0:2,x:3"), std::invalid_argument);
  EXPECT_THROW(core::parse_shard_ranges("0:2junk"), std::invalid_argument);
}

TEST(WorkerProtocol, ContiguousRangesCompressIndexLists) {
  EXPECT_TRUE(core::contiguous_ranges({}).empty());
  EXPECT_EQ(core::contiguous_ranges({3}),
            (std::vector<std::pair<int, int>>{{3, 4}}));
  EXPECT_EQ(core::contiguous_ranges({0, 1, 2, 5, 6, 9}),
            (std::vector<std::pair<int, int>>{{0, 3}, {5, 7}, {9, 10}}));
}

TEST(WorkerProtocol, ShardRecordRoundTripsExactly) {
  core::ShardResult r;
  r.index = 42;
  r.topology = "f2-8";
  r.control = "ospf";
  r.site = "R3";
  r.site_class = "agg-spine";
  r.replicate = 7;
  r.seed = 18446744073709551557ull;  // needs 64 bits: JSON int64 overflows
  r.ok = true;
  r.on_path = true;
  r.connectivity_loss = 123456789;
  r.packets_sent = 100000;
  r.packets_lost = 37;
  r.events_executed = 987654;
  r.wall_seconds = 0.1234567890123456789;  // exercises 17-digit exactness
  r.scenario = "link 3 \"down\"";          // exercises escaping
  r.spans = 5;
  r.detect_ns = 60000000;
  r.converge_ns = 260000001;
  r.samples = 240;
  r.queue_rollup = true;
  r.queue_p99 = 17.000000000000004;  // not representable at 10 digits
  r.queue_max = 19.5;

  std::ostringstream os;
  core::write_shard_record(os, r);
  const std::string line = os.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "one record, one line";

  const auto back =
      core::parse_shard_record(std::string_view(line).substr(0, line.size() - 1));
  EXPECT_EQ(back.index, r.index);
  EXPECT_EQ(back.topology, r.topology);
  EXPECT_EQ(back.control, r.control);
  EXPECT_EQ(back.site, r.site);
  EXPECT_EQ(back.site_class, r.site_class);
  EXPECT_EQ(back.replicate, r.replicate);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.ok, r.ok);
  EXPECT_EQ(back.on_path, r.on_path);
  EXPECT_EQ(back.connectivity_loss, r.connectivity_loss);
  EXPECT_EQ(back.packets_sent, r.packets_sent);
  EXPECT_EQ(back.packets_lost, r.packets_lost);
  EXPECT_EQ(back.events_executed, r.events_executed);
  EXPECT_EQ(back.wall_seconds, r.wall_seconds);  // bit-exact, not near
  EXPECT_EQ(back.scenario, r.scenario);
  EXPECT_EQ(back.spans, r.spans);
  EXPECT_EQ(back.detect_ns, r.detect_ns);
  EXPECT_EQ(back.converge_ns, r.converge_ns);
  EXPECT_EQ(back.samples, r.samples);
  EXPECT_EQ(back.queue_rollup, r.queue_rollup);
  EXPECT_EQ(back.queue_p99, r.queue_p99);
  EXPECT_EQ(back.queue_max, r.queue_max);
  EXPECT_TRUE(back.error.empty());
}

TEST(WorkerProtocol, ErrorRecordsAndAbsentRollupsRoundTrip) {
  core::ShardResult r;
  r.index = 3;
  r.topology = "nope-4";
  r.control = "ospf";
  r.site = "C1";
  r.seed = 99;
  r.ok = false;
  r.error = "unknown topology: nope";
  std::ostringstream os;
  core::write_shard_record(os, r);
  const std::string line = os.str();
  const auto back = core::parse_shard_record(
      std::string_view(line).substr(0, line.size() - 1));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, r.error);
  EXPECT_FALSE(back.queue_rollup);  // absent fields stay absent
  EXPECT_EQ(line.find("\"queue_p99\""), std::string::npos);
}

TEST(WorkerProtocol, TornLinesAreRejected) {
  core::ShardResult r;
  r.index = 1;
  r.topology = "f2-4";
  r.control = "ospf";
  r.site = "L0";
  r.seed = 7;
  r.ok = true;
  std::ostringstream os;
  core::write_shard_record(os, r);
  const std::string line = os.str();
  // A SIGKILL mid-write leaves a prefix; every strict prefix must fail
  // to parse rather than yield a half-initialized record.
  for (const std::size_t cut : {line.size() / 4, line.size() / 2,
                                line.size() - 2}) {
    EXPECT_THROW(core::parse_shard_record(
                     std::string_view(line).substr(0, cut)),
                 std::exception)
        << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_THROW(core::parse_shard_record("{\"v\": 2}"), std::invalid_argument);
}

TEST(WorkerProtocol, ManifestRoundTripsAndValidates) {
  core::CheckpointManifest m;
  m.spec = tiny_spec();
  m.shards = 6;
  m.workers = 3;
  std::ostringstream os;
  m.write_json(os);
  const auto back = core::CheckpointManifest::parse(os.str());
  EXPECT_EQ(back.shards, 6);
  EXPECT_EQ(back.workers, 3);
  std::ostringstream a;
  std::ostringstream b;
  m.spec.write_json(a);
  back.spec.write_json(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_THROW(core::CheckpointManifest::parse("{}"), std::invalid_argument);
  EXPECT_THROW(core::CheckpointManifest::parse(
                   "{\"schema_version\": 1, \"kind\": \"wrong\"}"),
               std::invalid_argument);
}

// ------------------------------------------------------------- workload --

/// tiny_spec plus an incast workload axis (packet fidelity is the
/// default): small fan-in and short horizon keep this unit-test sized.
core::CampaignSpec tiny_workload_spec() {
  return core::CampaignSpec::parse(R"({
    "name": "tiny-wl",
    "topologies": [{"name": "f2", "ports": 4}],
    "conditions": ["C1"],
    "seeds": 2,
    "horizon_ms": 700,
    "workload": {"kind": "incast", "fanin": 3, "flow_bytes": 4000,
                 "deadline_ms": 200}
  })");
}

TEST(CampaignSpec, WorkloadAxisParsesEchoesAndValidates) {
  const auto spec = tiny_workload_spec();
  EXPECT_TRUE(spec.workload.enabled);
  EXPECT_EQ(spec.workload.kind, "incast");
  EXPECT_EQ(spec.workload.size_dist, "websearch");  // default preserved
  EXPECT_EQ(spec.workload.fanin, 3);
  EXPECT_EQ(spec.workload.flow_bytes, 4000u);
  EXPECT_EQ(spec.workload.deadline_ms, 200);

  std::ostringstream os;
  spec.write_json(os);
  EXPECT_NE(os.str().find("\"workload\""), std::string::npos);
  const auto again = core::CampaignSpec::parse(os.str());
  std::ostringstream os2;
  again.write_json(os2);
  EXPECT_EQ(os.str(), os2.str());

  const auto bad = [](const char* workload_json, const char* fidelity) {
    return std::string(R"({"topologies": [{"name": "f2", "ports": 4}],
                           "conditions": ["C1"], "fidelity": ")") +
           fidelity + R"(", "workload": )" + workload_json + "}";
  };
  // Unknown sub-key, bad kind, bad size_dist, out-of-range load/fanin.
  EXPECT_THROW(core::CampaignSpec::parse(bad(R"({"knd": "poisson"})", "packet")),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(bad(R"({"kind": "storm"})", "packet")),
               std::invalid_argument);
  EXPECT_THROW(
      core::CampaignSpec::parse(bad(R"({"size_dist": "uniform"})", "packet")),
      std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(bad(R"({"load": 1.5})", "packet")),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(bad(R"({"load": 0})", "packet")),
               std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::parse(bad(R"({"fanin": 0})", "packet")),
               std::invalid_argument);
  // The TCP workload needs host stacks: flow fidelity must refuse.
  EXPECT_THROW(core::CampaignSpec::parse(bad(R"({"kind": "poisson"})", "flow")),
               std::invalid_argument);
}

TEST(CampaignSpec, WorkloadFreeSpecsStayByteIdentical) {
  // Byte-identity guarantee: specs and artifacts without a workload axis
  // must not grow any workload/SLO keys.
  const auto spec = tiny_spec();
  std::ostringstream os;
  spec.write_json(os);
  EXPECT_EQ(os.str().find("\"workload\""), std::string::npos);

  exec::CampaignOptions options;
  options.jobs = 2;
  const auto result = exec::run_campaign(spec, options);
  std::ostringstream artifact;
  result.write_json(artifact, /*include_profile=*/false);
  for (const char* key : {"\"workload\"", "\"slo\"", "\"slo_flows\"",
                          "\"fct_p50_ms\"", "\"miss_in\""}) {
    EXPECT_EQ(artifact.str().find(key), std::string::npos)
        << key << " must not appear without a workload axis";
  }
}

TEST(CampaignRun, WorkloadSloIsDeterministicAcrossJobCounts) {
  const auto spec = tiny_workload_spec();
  exec::CampaignOptions serial;
  serial.jobs = 1;
  exec::CampaignOptions parallel;
  parallel.jobs = 4;
  const auto r1 = exec::run_campaign(spec, serial);
  const auto r4 = exec::run_campaign(spec, parallel);
  std::ostringstream a;
  std::ostringstream b;
  r1.write_json(a, /*include_profile=*/false);
  r4.write_json(b, /*include_profile=*/false);
  EXPECT_EQ(a.str(), b.str())
      << "SLO section must be byte-identical for any --jobs";

  // Every run carries per-flow SLO stats and the artifact the pooled
  // aggregate.
  for (const auto& run : r1.runs) {
    ASSERT_TRUE(run.ok);
    EXPECT_TRUE(run.slo);
    EXPECT_GT(run.slo_flows, 0u);
    EXPECT_GT(run.slo_completed, 0u);
    EXPECT_GT(run.fct_p50_ms, 0.0);
    EXPECT_GE(run.fct_p999_ms, run.fct_p99_ms);
    EXPECT_GE(run.fct_p99_ms, run.fct_p50_ms);
  }
  EXPECT_NE(a.str().find("\"slo\""), std::string::npos);
  EXPECT_NE(a.str().find("\"fct_p999_ms_max\""), std::string::npos);
}

TEST(WorkerProtocol, SloFieldsRoundTripExactly) {
  core::ShardResult r;
  r.index = 5;
  r.topology = "f2-4";
  r.control = "ospf";
  r.site = "C1";
  r.seed = 11;
  r.ok = true;
  r.slo = true;
  r.slo_flows = 120;
  r.slo_completed = 118;
  r.fct_p50_ms = 1.2345678901234567;  // exercises 17-digit exactness
  r.fct_p99_ms = 45.5;
  r.fct_p999_ms = 99.75;
  r.slo_deadline_in = 30;
  r.slo_deadline_out = 80;
  r.slo_miss_in = 0.30000000000000004;
  r.slo_miss_out = 0.0125;
  std::ostringstream os;
  core::write_shard_record(os, r);
  const std::string line = os.str();
  const auto back = core::parse_shard_record(
      std::string_view(line).substr(0, line.size() - 1));
  EXPECT_TRUE(back.slo);
  EXPECT_EQ(back.slo_flows, r.slo_flows);
  EXPECT_EQ(back.slo_completed, r.slo_completed);
  EXPECT_EQ(back.fct_p50_ms, r.fct_p50_ms);  // bit-exact, not near
  EXPECT_EQ(back.fct_p99_ms, r.fct_p99_ms);
  EXPECT_EQ(back.fct_p999_ms, r.fct_p999_ms);
  EXPECT_EQ(back.slo_deadline_in, r.slo_deadline_in);
  EXPECT_EQ(back.slo_deadline_out, r.slo_deadline_out);
  EXPECT_EQ(back.slo_miss_in, r.slo_miss_in);
  EXPECT_EQ(back.slo_miss_out, r.slo_miss_out);

  // A record without SLO fields parses back with slo == false.
  core::ShardResult plain;
  plain.index = 6;
  plain.topology = "f2-4";
  plain.control = "ospf";
  plain.site = "C1";
  plain.seed = 12;
  plain.ok = true;
  std::ostringstream os2;
  core::write_shard_record(os2, plain);
  EXPECT_EQ(os2.str().find("\"slo_flows\""), std::string::npos);
  const auto plain_back = core::parse_shard_record(
      std::string_view(os2.str()).substr(0, os2.str().size() - 1));
  EXPECT_FALSE(plain_back.slo);
}

}  // namespace
}  // namespace f2t
