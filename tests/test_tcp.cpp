#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "transport/tcp.hpp"
#include "transport/udp_app.hpp"

namespace f2t::transport {
namespace {

/// Minimal two-host fixture: h1 - switch - h2.
class TcpTest : public ::testing::Test {
 protected:
  TcpTest()
      : sw_(net_.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1))),
        h1_(net_.add_host("h1", net::Ipv4Addr(10, 11, 0, 10), &sw_)),
        h2_(net_.add_host("h2", net::Ipv4Addr(10, 11, 0, 11), &sw_)),
        s1_(h1_),
        s2_(h2_) {}

  sim::Simulator sim_{1};
  net::Network net_{sim_};
  net::L3Switch& sw_;
  net::Host& h1_;
  net::Host& h2_;
  HostStack s1_;
  HostStack s2_;
};

TEST_F(TcpTest, BulkTransferDeliversAllBytes) {
  auto conn = TcpConnection::open(s1_, s2_);
  conn->a().write(1'000'000);
  sim_.run(sim::seconds(10));
  EXPECT_EQ(conn->b().bytes_delivered(), 1'000'000u);
  EXPECT_EQ(conn->a().bytes_acked(), 1'000'000u);
}

TEST_F(TcpTest, SmallRequestResponseRoundTrip) {
  auto conn = TcpConnection::open(s1_, s2_);
  bool responded = false;
  sim::Time completed = sim::kNever;
  conn->b().set_on_delivered([&](std::uint64_t d) {
    if (!responded && d >= 100) {
      responded = true;
      conn->b().write(2048);
    }
  });
  conn->a().set_on_delivered([&](std::uint64_t d) {
    if (d >= 2048 && completed == sim::kNever) completed = sim_.now();
  });
  conn->a().write(100);
  sim_.run(sim::seconds(1));
  ASSERT_NE(completed, sim::kNever);
  // A couple of sub-ms RTTs through one switch.
  EXPECT_LT(completed, sim::millis(2));
}

TEST_F(TcpTest, RttEstimateTracksPathRtt) {
  auto conn = TcpConnection::open(s1_, s2_);
  conn->a().write(100'000);
  sim_.run(sim::seconds(5));
  // RTO floors at min_rto even though the real RTT is tiny.
  EXPECT_EQ(conn->a().current_rto(), sim::millis(200));
}

TEST_F(TcpTest, CwndGrowsFromInitialWindow) {
  auto conn = TcpConnection::open(s1_, s2_);
  const auto initial = conn->a().cwnd_bytes();
  std::uint64_t peak = 0;
  conn->a().set_on_acked([&](std::uint64_t) {
    peak = std::max(peak, conn->a().cwnd_bytes());
  });
  conn->a().write(2'000'000);
  sim_.run(sim::seconds(5));
  EXPECT_GT(peak, initial);  // slow start opened the window past IW
}

TEST_F(TcpTest, OutageTriggersRtoBackoffThenRecovery) {
  auto conn = TcpConnection::open(s1_, s2_);
  net::Link* link = net_.find_link(sw_, h2_);
  ASSERT_NE(link, nullptr);

  // Continuous paced writing across a 500 ms outage.
  PacedTcpWriter::Options wo;
  wo.stop = sim::seconds(3);
  PacedTcpWriter writer(conn->a(), sim_, wo);
  writer.start();
  sim_.at(sim::millis(500), [&] { link->set_up(false); });
  sim_.at(sim::seconds(1), [&] { link->set_up(true); });
  sim_.run(sim::seconds(6));

  EXPECT_GT(conn->a().stats().rto_fires, 0u);
  EXPECT_GT(conn->a().stats().segments_retransmitted, 0u);
  EXPECT_EQ(conn->b().bytes_delivered(), conn->a().bytes_written());
}

TEST_F(TcpTest, RtoBacksOffExponentiallyDuringBlackhole) {
  auto conn = TcpConnection::open(s1_, s2_);
  net::Link* link = net_.find_link(sw_, h2_);
  sim_.at(0, [&] { link->set_up(false); });
  sim_.at(sim::millis(1), [&] { conn->a().write(1000); });
  sim_.run(sim::seconds(4));
  // ~200+400+800+1600 ms of backoff within 4 s: 4-5 fires, not dozens.
  EXPECT_GE(conn->a().stats().rto_fires, 3u);
  EXPECT_LE(conn->a().stats().rto_fires, 6u);
  EXPECT_GT(conn->a().current_rto(), sim::millis(400));
}

TEST_F(TcpTest, QueueOverflowTriggersFastRetransmit) {
  // Tiny egress queue + a large burst => drops => dupacks => fast rtx.
  net::LinkParams tiny;
  tiny.queue_capacity = 5;
  sim::Simulator sim(2);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  net.set_default_link_params(tiny);
  auto& a = net.add_host("a", net::Ipv4Addr(10, 11, 0, 10), &sw);
  auto& b = net.add_host("b", net::Ipv4Addr(10, 11, 0, 11), &sw);
  HostStack sa(a), sb(b);
  TcpConfig config;
  config.initial_cwnd_segments = 64;  // burst far beyond the queue
  auto conn = TcpConnection::open(sa, sb, config);
  conn->a().write(200'000);
  sim.run(sim::seconds(30));
  EXPECT_EQ(conn->b().bytes_delivered(), 200'000u);
  EXPECT_GT(conn->a().stats().fast_retransmits, 0u);
}

TEST_F(TcpTest, DuplexSimultaneousTransfers) {
  auto conn = TcpConnection::open(s1_, s2_);
  conn->a().write(300'000);
  conn->b().write(500'000);
  sim_.run(sim::seconds(10));
  EXPECT_EQ(conn->b().bytes_delivered(), 300'000u);
  EXPECT_EQ(conn->a().bytes_delivered(), 500'000u);
}

TEST_F(TcpTest, ThroughputMatchesAppPacing) {
  // 1448 B / 100 us = ~115.8 Mbps offered load, well under 1 Gbps.
  auto conn = TcpConnection::open(s1_, s2_);
  std::uint64_t last = 0;
  stats::ThroughputMeter meter;
  conn->b().set_on_delivered([&](std::uint64_t d) {
    meter.add(sim_.now(), d - last);
    last = d;
  });
  PacedTcpWriter::Options wo;
  wo.stop = sim::seconds(1);
  PacedTcpWriter writer(conn->a(), sim_, wo);
  writer.start();
  sim_.run(sim::seconds(2));
  const double mbps = meter.mean_mbps(sim::millis(100), sim::millis(900));
  EXPECT_NEAR(mbps, 115.8, 8.0);
}

TEST_F(TcpTest, StackDemuxSeparatesConnections) {
  auto c1 = TcpConnection::open(s1_, s2_);
  auto c2 = TcpConnection::open(s1_, s2_);
  c1->a().write(10'000);
  c2->a().write(20'000);
  sim_.run(sim::seconds(2));
  EXPECT_EQ(c1->b().bytes_delivered(), 10'000u);
  EXPECT_EQ(c2->b().bytes_delivered(), 20'000u);
  EXPECT_EQ(s2_.unmatched_packets(), 0u);
}

TEST_F(TcpTest, UdpAndTcpCoexist) {
  UdpSink sink(s2_, 9000);
  UdpCbrSender::Options uo;
  uo.stop = sim::millis(10);
  UdpCbrSender sender(s1_, h2_.addr(), uo);
  sender.start();
  auto conn = TcpConnection::open(s1_, s2_);
  conn->a().write(50'000);
  sim_.run(sim::seconds(2));
  EXPECT_EQ(sink.packets_received(), sender.packets_sent());
  EXPECT_EQ(conn->b().bytes_delivered(), 50'000u);
}

}  // namespace
}  // namespace f2t::transport
