#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/runner.hpp"
#include "routing/fib.hpp"

namespace f2t::routing {
namespace {

using net::Ipv4Addr;
using net::Prefix;

Route make(const char* prefix, std::vector<NextHop> hops,
           RouteSource source = RouteSource::kOspf) {
  return Route{Prefix::parse(prefix), std::move(hops), source};
}

TEST(FibDelta, IdenticalSetIsANoopAndKeepsGeneration) {
  Fib fib;
  fib.replace_source(RouteSource::kOspf,
                     {make("10.11.0.0/24", {{0, Ipv4Addr(1, 1, 1, 1)}}),
                      make("10.11.1.0/24", {{1, Ipv4Addr(2, 2, 2, 2)},
                                            {2, Ipv4Addr(3, 3, 3, 3)}})});
  const std::uint64_t generation = fib.generation();
  const auto before = fib.dump();

  // Same set, different route order and unsorted next hops: still a no-op
  // after canonicalization.
  const std::size_t touched = fib.apply_source_delta(
      RouteSource::kOspf,
      {make("10.11.1.0/24",
            {{2, Ipv4Addr(3, 3, 3, 3)}, {1, Ipv4Addr(2, 2, 2, 2)}}),
       make("10.11.0.0/24", {{0, Ipv4Addr(1, 1, 1, 1)}})});
  EXPECT_EQ(touched, 0u);
  EXPECT_EQ(fib.generation(), generation)
      << "a no-op delta must not invalidate resolved-route caches";
  EXPECT_TRUE(fib.dump() == before);
}

TEST(FibDelta, InstallsChangesAndRemovesStale) {
  Fib fib;
  fib.replace_source(RouteSource::kOspf,
                     {make("10.11.0.0/24", {{0, Ipv4Addr(1, 1, 1, 1)}}),
                      make("10.11.1.0/24", {{1, Ipv4Addr(2, 2, 2, 2)}}),
                      make("10.11.2.0/24", {{2, Ipv4Addr(3, 3, 3, 3)}})});
  const std::uint64_t generation = fib.generation();

  // Keep /24#0 unchanged, rehome /24#1, drop /24#2, add /24#3.
  const std::size_t touched = fib.apply_source_delta(
      RouteSource::kOspf,
      {make("10.11.0.0/24", {{0, Ipv4Addr(1, 1, 1, 1)}}),
       make("10.11.1.0/24", {{3, Ipv4Addr(4, 4, 4, 4)}}),
       make("10.11.3.0/24", {{4, Ipv4Addr(5, 5, 5, 5)}})});
  EXPECT_EQ(touched, 3u);  // one reinstall, one removal, one new install
  EXPECT_GT(fib.generation(), generation);

  Fib want;
  want.replace_source(RouteSource::kOspf,
                      {make("10.11.0.0/24", {{0, Ipv4Addr(1, 1, 1, 1)}}),
                       make("10.11.1.0/24", {{3, Ipv4Addr(4, 4, 4, 4)}}),
                       make("10.11.3.0/24", {{4, Ipv4Addr(5, 5, 5, 5)}})});
  EXPECT_TRUE(fib.dump() == want.dump());
}

TEST(FibDelta, OtherSourcesAreUntouched) {
  Fib fib;
  fib.install(make("10.11.0.0/16", {{7, Ipv4Addr(9, 9, 9, 9)}},
                   RouteSource::kStatic));
  fib.replace_source(RouteSource::kOspf,
                     {make("10.11.0.0/24", {{0, Ipv4Addr(1, 1, 1, 1)}})});

  // The OSPF set empties out; the static backup must survive.
  const std::size_t touched =
      fib.apply_source_delta(RouteSource::kOspf, {});
  EXPECT_EQ(touched, 1u);
  const auto dump = fib.dump();
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].source, RouteSource::kStatic);
  EXPECT_EQ(dump[0].prefix, Prefix::parse("10.11.0.0/16"));
}

TEST(FibDelta, RejectsEmptyNextHopsLikeInstall) {
  Fib fib;
  EXPECT_THROW(fib.apply_source_delta(RouteSource::kOspf,
                                      {make("10.11.0.0/24", {})}),
               std::invalid_argument);
}

// Property: after any sequence of deltas the FIB is indistinguishable
// from one maintained with full replace_source rewrites.
TEST(FibDelta, EquivalentToReplaceSourceUnderChurn) {
  std::mt19937 rng(0xD17Au);
  Fib delta_fib;
  Fib replace_fib;
  delta_fib.install(make("10.0.0.0/8", {{15, Ipv4Addr(8, 8, 8, 8)}},
                         RouteSource::kStatic));
  replace_fib.install(make("10.0.0.0/8", {{15, Ipv4Addr(8, 8, 8, 8)}},
                           RouteSource::kStatic));

  for (int round = 0; round < 200; ++round) {
    std::vector<Route> desired;
    for (int p = 0; p < 8; ++p) {
      if (rng() % 2 == 0) continue;  // prefix absent this round
      std::vector<NextHop> hops;
      const int width = 1 + static_cast<int>(rng() % 3);
      for (int hop = 0; hop < width; ++hop) {
        const auto port = static_cast<net::PortId>(rng() % 4);
        hops.push_back(NextHop{port, Ipv4Addr(10, 250, 0, port)});
      }
      desired.push_back(Route{Prefix(Ipv4Addr(10, 20, std::uint8_t(p), 0), 24),
                              std::move(hops), RouteSource::kOspf});
    }
    auto copy = desired;
    delta_fib.apply_source_delta(RouteSource::kOspf, std::move(desired));
    replace_fib.replace_source(RouteSource::kOspf, std::move(copy));
    ASSERT_TRUE(delta_fib.dump() == replace_fib.dump())
        << "diverged at round " << round;
    ASSERT_EQ(delta_fib.size(), replace_fib.size());
  }
}

// ---------------------------------------------------------------------------
// Install-churn regression: a recompute that does not change the route set
// must not count as a FIB install (pinned counter semantics) on any of the
// three control planes.
// ---------------------------------------------------------------------------

TEST(InstallChurn, OspfNoopRecomputeCountsAsNoop) {
  core::TestbedConfig config;
  core::Testbed bed(core::topology_builder("fat", 4), config);
  bed.converge();

  net::L3Switch* sw = bed.topo().tors.front();
  Ospf& ospf = bed.ospf_of(*sw);
  const auto converged = ospf.counters();
  EXPECT_GT(converged.fib_installs, 0u);

  const std::uint64_t generation = sw->fib().generation();
  ospf.run_spf_now();  // nothing changed since convergence
  const auto after = ospf.counters();
  EXPECT_EQ(after.fib_installs, converged.fib_installs)
      << "a no-op recompute must not count as an install";
  EXPECT_EQ(after.fib_noop_installs, converged.fib_noop_installs + 1);
  EXPECT_EQ(after.spf_runs, converged.spf_runs + 1);
  EXPECT_EQ(sw->fib().generation(), generation)
      << "a no-op recompute must not rewrite the FIB";
}

TEST(InstallChurn, PathVectorNoopReconvergeCountsAsNoop) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kPathVector;
  core::Testbed bed(core::topology_builder("fat", 4), config);
  bed.converge();

  net::L3Switch* sw = bed.topo().tors.front();
  const auto converged = bed.path_vector_of(*sw).counters();
  const std::uint64_t generation = sw->fib().generation();

  bed.converge();  // identical fixed point: every install is a no-op
  const auto after = bed.path_vector_of(*sw).counters();
  EXPECT_EQ(after.fib_installs, converged.fib_installs);
  EXPECT_EQ(after.fib_noop_installs, converged.fib_noop_installs + 1);
  EXPECT_EQ(sw->fib().generation(), generation);
}

TEST(InstallChurn, CentralNoopConvergeLeavesFibAlone) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kCentral;
  core::Testbed bed(core::topology_builder("fat", 4), config);
  bed.converge();

  net::L3Switch* sw = bed.topo().tors.front();
  const std::uint64_t generation = sw->fib().generation();
  bed.converge();
  EXPECT_EQ(sw->fib().generation(), generation)
      << "an unchanged central recompute must not rewrite switch FIBs";
}

}  // namespace
}  // namespace f2t::routing
