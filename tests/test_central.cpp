#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::routing {
namespace {

core::TestbedConfig central_config() {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kCentral;
  return config;
}

TEST(Central, ConvergeInstallsRoutesEverywhere) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); },
                    central_config());
  bed.converge();
  for (auto* sw : bed.topo().all_switches()) {
    for (const auto& [tor, prefix] : bed.topo().subnet_of_tor) {
      if (tor == sw) continue;
      const auto hops = sw->fib().lookup(
          net::Ipv4Addr(prefix.address().value() + 10),
          [&](net::PortId p) { return sw->port_detected_up(p); });
      EXPECT_FALSE(hops.empty()) << sw->name() << " -> " << prefix.str();
    }
  }
  EXPECT_EQ(bed.controller().counters().computations, 1u);
}

TEST(Central, AllPairsReachableAfterConvergence) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); },
                    central_config());
  bed.converge();
  const auto& hosts = bed.topo().hosts;
  for (std::size_t i = 0; i < hosts.size(); i += 5) {
    const std::size_t j = (i + hosts.size() / 2 + 1) % hosts.size();
    if (i == j) continue;
    net::Packet probe;
    probe.src = hosts[i]->addr();
    probe.dst = hosts[j]->addr();
    probe.sport = static_cast<std::uint16_t>(4000 + i);
    const auto path = failure::trace_route(*hosts[i], *hosts[j], probe);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), hosts[j]);
  }
}

TEST(Central, FailureReportTriggersRecomputeAndPush) {
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
      },
      central_config());
  bed.converge();
  auto* sx = bed.topo().pods[0].aggs[0];
  auto* tor = bed.topo().pods[0].tors[0];
  net::Link* link = bed.network().find_link(*sx, *tor);
  ASSERT_NE(link, nullptr);
  bed.injector().fail_at(*link, sim::millis(10));
  bed.sim().run(sim::seconds(2));
  const auto& counters = bed.controller().counters();
  EXPECT_GE(counters.reports, 2u);  // both endpoints report
  EXPECT_GE(counters.computations, 2u);
  EXPECT_GT(counters.fib_pushes, 0u);
  // The pushed routes avoid the dead link.
  const auto prefix = bed.topo().subnet_of_tor.at(tor);
  const auto hops =
      sx->fib().lookup(net::Ipv4Addr(prefix.address().value() + 10),
                       [&](net::PortId p) { return sx->port_detected_up(p); });
  ASSERT_FALSE(hops.empty());
  for (const auto& nh : hops) EXPECT_NE(sx->port(nh.port).link, link);
}

/// The §V claim, end-to-end: under a centralized control plane, recovery
/// without F² costs detection + report + batch + compute + push + FIB
/// update; with F² it is detection-bound.
TEST(Central, F2TreeCoversTheControllerWindow) {
  auto run = [](bool f2) {
    core::Testbed bed(
        [f2](net::Network& n) {
          return f2 ? topo::build_f2tree(n, 8)
                    : topo::build_fat_tree(n,
                                           topo::FatTreeOptions{.ports = 8});
        },
        central_config());
    bed.converge();
    const auto plan =
        failure::build_condition(bed.topo(), failure::Condition::kC1);
    EXPECT_TRUE(plan.has_value());
    transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
    transport::UdpCbrSender::Options so;
    so.sport = plan->sport;
    so.dport = plan->dport;
    so.stop = sim::seconds(2);
    transport::UdpCbrSender sender(bed.stack_of(*plan->src),
                                   plan->dst->addr(), so);
    sender.start();
    for (net::Link* link : plan->fail_links) {
      bed.injector().fail_at(*link, sim::millis(380));
    }
    bed.sim().run(sim::seconds(3));
    std::vector<sim::Time> arrivals;
    for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
    const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
    return loss ? loss->duration() : sim::Time{0};
  };

  const sim::Time fat = run(false);
  const sim::Time f2 = run(true);
  // detection 60 + report 2 + batch 10 + compute 30 + push 2 + FIB 10.
  EXPECT_GE(fat, sim::millis(100));
  EXPECT_LE(fat, sim::millis(130));
  EXPECT_GE(f2, sim::millis(55));
  EXPECT_LE(f2, sim::millis(70));
}

TEST(Central, OspfAccessorThrowsOnCentralPlane) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); },
                    central_config());
  EXPECT_THROW(bed.ospf_of(*bed.topo().aggs.front()), std::invalid_argument);
  core::Testbed ospf_bed(
      [](net::Network& n) { return topo::build_f2tree(n, 4); });
  EXPECT_THROW(ospf_bed.controller(), std::logic_error);
}

}  // namespace
}  // namespace f2t::routing
