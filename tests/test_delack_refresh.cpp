#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t {
namespace {

// --- delayed ACK option -----------------------------------------------------

class DelackFixture : public ::testing::Test {
 protected:
  DelackFixture()
      : sw_(net_.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1))),
        h1_(net_.add_host("h1", net::Ipv4Addr(10, 11, 0, 10), &sw_)),
        h2_(net_.add_host("h2", net::Ipv4Addr(10, 11, 0, 11), &sw_)),
        s1_(h1_),
        s2_(h2_) {}

  sim::Simulator sim_{1};
  net::Network net_{sim_};
  net::L3Switch& sw_;
  net::Host& h1_;
  net::Host& h2_;
  transport::HostStack s1_;
  transport::HostStack s2_;
};

TEST(Delack, DelayedAckRoughlyHalvesAckCount) {
  // Each variant runs in its own clean network (sharing one would cause
  // congestion losses whose dupacks skew the count).
  auto run = [](const transport::TcpConfig& config) {
    sim::Simulator sim(1);
    net::Network net(sim);
    auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
    auto& a = net.add_host("a", net::Ipv4Addr(10, 11, 0, 10), &sw);
    auto& b = net.add_host("b", net::Ipv4Addr(10, 11, 0, 11), &sw);
    transport::HostStack sa(a), sb(b);
    auto conn = transport::TcpConnection::open(sa, sb, config);
    conn->a().write(500'000);
    sim.run(sim::seconds(10));
    EXPECT_EQ(conn->b().bytes_delivered(), 500'000u);
    return conn->a().stats().acks_received;
  };
  transport::TcpConfig immediate;
  transport::TcpConfig delack;
  delack.delayed_ack = sim::millis(40);
  const auto acks1 = run(immediate);
  const auto acks2 = run(delack);
  EXPECT_LT(acks2, acks1 * 3 / 4);
  EXPECT_GT(acks2, acks1 / 4);
}

TEST_F(DelackFixture, DelackTimerFlushesTrailingSegment) {
  transport::TcpConfig delack;
  delack.delayed_ack = sim::millis(40);
  auto conn = transport::TcpConnection::open(s1_, s2_, delack);
  conn->a().write(100);  // a single odd segment: only the timer can ack it
  sim_.run(sim::seconds(5));
  EXPECT_EQ(conn->a().bytes_acked(), 100u);
}

TEST_F(DelackFixture, OutOfOrderDataStillAckedImmediately) {
  // Dupack feedback must not be delayed or fast retransmit would stall:
  // force loss via a tiny queue and check fast retransmits still happen.
  net::LinkParams tiny;
  tiny.queue_capacity = 5;
  sim::Simulator sim(3);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  net.set_default_link_params(tiny);
  auto& a = net.add_host("a", net::Ipv4Addr(10, 11, 0, 10), &sw);
  auto& b = net.add_host("b", net::Ipv4Addr(10, 11, 0, 11), &sw);
  transport::HostStack sa(a), sb(b);
  transport::TcpConfig config;
  config.initial_cwnd_segments = 64;
  config.delayed_ack = sim::millis(40);
  auto conn = transport::TcpConnection::open(sa, sb, config);
  conn->a().write(200'000);
  sim.run(sim::seconds(30));
  EXPECT_EQ(conn->b().bytes_delivered(), 200'000u);
  EXPECT_GT(conn->a().stats().fast_retransmits, 0u);
}

// --- LSA refresh --------------------------------------------------------------

TEST(LsaRefresh, PeriodicallyReoriginates) {
  core::TestbedConfig config;
  config.ospf.lsa_refresh_interval = sim::seconds(5);
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); },
                    config);
  bed.converge();
  auto* sw = bed.topo().aggs.front();
  const auto before = bed.ospf_of(*sw).counters().lsas_originated;
  bed.sim().run(sim::seconds(21));
  const auto after = bed.ospf_of(*sw).counters().lsas_originated;
  EXPECT_GE(after - before, 4u);  // one per 5 s window
  // Sequence numbers advanced in everyone's database.
  const auto& lsdb = bed.ospf_of(*bed.topo().tors.front()).lsdb();
  EXPECT_GE(lsdb.sequence_of(sw->router_id()), 4u);
}

TEST(LsaRefresh, DisabledByDefault) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  auto* sw = bed.topo().aggs.front();
  const auto before = bed.ospf_of(*sw).counters().lsas_originated;
  bed.sim().run(sim::seconds(30));
  EXPECT_EQ(bed.ospf_of(*sw).counters().lsas_originated, before);
}

// --- C8: both across links (SecII-C parenthetical) ----------------------------

TEST(ConditionC8, DegradesToFatTreeRecovery) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC8);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->fail_links.size(), 3u);

  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_GE(loss->duration(), sim::millis(200));  // control-plane bound
}

TEST(ConditionC8, NotApplicableToFatTree) {
  core::Testbed bed([](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
  });
  bed.converge();
  EXPECT_FALSE(
      failure::build_condition(bed.topo(), failure::Condition::kC8)
          .has_value());
}

}  // namespace
}  // namespace f2t
