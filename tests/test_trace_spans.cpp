#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/f2tree.hpp"
#include "core/json.hpp"
#include "core/runner.hpp"
#include "obs/trace.hpp"

namespace f2t {
namespace {

// Builds the synthetic journal the Timeline tests use, extended with
// flood and incremental-SPF events so every chain stage is present:
// steady deliveries, a cut at 100 ms, detection at 160 ms, backup at
// 161 ms, flood 200..210 ms, SPF (one full + one incremental) 360..365,
// FIB install at 370 ms, deliveries resuming at 162 ms.
std::vector<obs::Event> synthetic_recovery_journal() {
  std::vector<obs::Event> events;
  const auto push = [&events](sim::Time at, obs::EventType type) {
    obs::Event e;
    e.at = at;
    e.type = type;
    events.push_back(e);
  };
  const auto deliver = [&events](sim::Time at) {
    obs::Event e;
    e.at = at;
    e.type = obs::EventType::kPacketDelivered;
    e.proto = static_cast<std::uint8_t>(net::Protocol::kUdp);
    events.push_back(e);
  };
  for (sim::Time t = sim::millis(1); t <= sim::millis(100);
       t += sim::millis(1)) {
    deliver(t);
  }
  push(sim::millis(100), obs::EventType::kLinkDown);
  events.back().link = 7;
  push(sim::millis(160), obs::EventType::kPortDetectedDown);
  push(sim::millis(161), obs::EventType::kBackupActivated);
  push(sim::millis(200), obs::EventType::kLsaOriginated);
  push(sim::millis(205), obs::EventType::kLsaAccepted);
  push(sim::millis(210), obs::EventType::kLsaAccepted);
  push(sim::millis(360), obs::EventType::kSpfRun);
  push(sim::millis(365), obs::EventType::kSpfRunIncremental);
  push(sim::millis(370), obs::EventType::kFibInstall);
  for (sim::Time t = sim::millis(162); t <= sim::millis(400);
       t += sim::millis(1)) {
    deliver(t);
  }
  return events;
}

TEST(SpanTrace, SyntheticJournalYieldsCompleteParentLinkedChain) {
  const auto events = synthetic_recovery_journal();
  const obs::SpanTrace trace(events);
  ASSERT_EQ(trace.timeline().failures().size(), 1u);
  const obs::FailureRecovery& f = trace.timeline().failures()[0];

  using obs::SpanKind;
  const obs::Span* root = trace.find(SpanKind::kRecovery);
  const obs::Span* down = trace.find(SpanKind::kLinkDown);
  const obs::Span* detect = trace.find(SpanKind::kDetect);
  const obs::Span* backup = trace.find(SpanKind::kBackup);
  const obs::Span* flood = trace.find(SpanKind::kFlood);
  const obs::Span* spf = trace.find(SpanKind::kSpf);
  const obs::Span* fib = trace.find(SpanKind::kFibDelta);
  const obs::Span* reroute = trace.find(SpanKind::kFirstReroute);
  ASSERT_NE(root, nullptr);
  ASSERT_NE(down, nullptr);
  ASSERT_NE(detect, nullptr);
  ASSERT_NE(backup, nullptr);
  ASSERT_NE(flood, nullptr);
  ASSERT_NE(spf, nullptr);
  ASSERT_NE(fib, nullptr);
  ASSERT_NE(reroute, nullptr);

  // Parent chain: root ← link_down ← detect ← flood ← spf ← fib ←
  // first_reroute, with backup hanging off detect as a side branch.
  const auto& spans = trace.spans();
  const auto index_of = [&spans](const obs::Span* s) {
    return static_cast<int>(s - spans.data());
  };
  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(down->parent, index_of(root));
  EXPECT_EQ(detect->parent, index_of(down));
  EXPECT_EQ(backup->parent, index_of(detect));
  EXPECT_EQ(flood->parent, index_of(detect));
  EXPECT_EQ(spf->parent, index_of(flood));
  EXPECT_EQ(fib->parent, index_of(spf));
  EXPECT_EQ(reroute->parent, index_of(fib));

  // Span ends are pinned to the scalar timeline milestones exactly.
  EXPECT_EQ(detect->begin, f.failed_at);
  EXPECT_EQ(detect->end, f.detected_at);
  EXPECT_EQ(fib->end, f.converged_at);
  EXPECT_EQ(reroute->end, f.gap_end);
  EXPECT_EQ(root->begin, f.failed_at);
  EXPECT_EQ(root->end, f.converged_at);  // latest milestone here

  // Folded counts: one cut link, one full + one incremental SPF, three
  // flood events.
  EXPECT_EQ(down->count, 1u);
  EXPECT_EQ(flood->count, 3u);
  EXPECT_EQ(spf->count, 1u);
  EXPECT_EQ(spf->count_incremental, 1u);
  EXPECT_FALSE(detect->bfd);
}

TEST(SpanTrace, MissingStagesAreSkippedAndChainRelinks) {
  // Only a cut and detection: no flood/spf/fib/reroute spans, and no
  // crash deriving them.
  std::vector<obs::Event> events;
  obs::Event e;
  e.at = sim::millis(10);
  e.type = obs::EventType::kLinkDown;
  e.link = 3;
  events.push_back(e);
  e.at = sim::millis(20);
  e.type = obs::EventType::kPortDetectedDown;
  e.link = -1;
  events.push_back(e);

  const obs::SpanTrace trace(events);
  using obs::SpanKind;
  EXPECT_NE(trace.find(SpanKind::kDetect), nullptr);
  EXPECT_EQ(trace.find(SpanKind::kFlood), nullptr);
  EXPECT_EQ(trace.find(SpanKind::kSpf), nullptr);
  EXPECT_EQ(trace.find(SpanKind::kFibDelta), nullptr);
  EXPECT_EQ(trace.find(SpanKind::kFirstReroute), nullptr);
  EXPECT_EQ(trace.find(SpanKind::kRecovery)->end, sim::millis(20));
}

TEST(SpanTrace, C1RecoverySpansPinToTimelineMilestones) {
  // The acceptance gate: a real C1 single-cut recovery on the F²Tree
  // yields the complete parent-linked chain, and every span end equals
  // its RecoveryTimeline milestone exactly.
  core::RunKnobs knobs;
  knobs.config.observe = true;
  const auto builder = core::topology_builder("f2", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);

  const obs::SpanTrace trace(r.observation.events, r.observation.profile);
  ASSERT_EQ(trace.timeline().failures().size(), 1u);
  const obs::FailureRecovery& f = trace.timeline().failures()[0];
  ASSERT_TRUE(f.detected());
  ASSERT_TRUE(f.converged());
  ASSERT_TRUE(f.rerouted());

  using obs::SpanKind;
  const obs::Span* detect = trace.find(SpanKind::kDetect);
  const obs::Span* fib = trace.find(SpanKind::kFibDelta);
  const obs::Span* reroute = trace.find(SpanKind::kFirstReroute);
  ASSERT_NE(detect, nullptr);
  ASSERT_NE(fib, nullptr);
  ASSERT_NE(reroute, nullptr);
  EXPECT_EQ(detect->end, f.detected_at);
  EXPECT_EQ(fib->end, f.converged_at);
  EXPECT_EQ(reroute->end, f.gap_end);
  // F²Tree's 2-link ring repair: backup activates, and it precedes
  // convergence.
  const obs::Span* backup = trace.find(SpanKind::kBackup);
  ASSERT_NE(backup, nullptr);
  EXPECT_LT(backup->begin, f.converged_at);

  // Every non-root span's parent is an earlier span of the same episode.
  const auto& spans = trace.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent < 0) {
      EXPECT_EQ(spans[i].kind, SpanKind::kRecovery);
      continue;
    }
    ASSERT_LT(static_cast<std::size_t>(spans[i].parent), i);
    EXPECT_EQ(spans[static_cast<std::size_t>(spans[i].parent)].episode,
              spans[i].episode);
  }
}

TEST(SpanTrace, ProbeDetectionMarksDetectSpanAsBfd) {
  core::RunKnobs knobs;
  knobs.config.observe = true;
  knobs.config.detection.mode = routing::DetectionMode::kProbe;
  const auto builder = core::topology_builder("f2", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  const obs::SpanTrace trace(r.observation.events);
  const obs::Span* detect = trace.find(obs::SpanKind::kDetect);
  ASSERT_NE(detect, nullptr);
  EXPECT_TRUE(detect->bfd);
}

TEST(SpanTrace, ChromeExportIsValidTraceEventJson) {
  const auto events = synthetic_recovery_journal();
  obs::EngineProfile profile;
  profile.wall_seconds = 0.5;
  profile.sim_seconds = 1.0;
  const obs::SpanTrace trace(events, profile);

  std::ostringstream os;
  trace.write_chrome_trace(os);
  const auto doc = core::json::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& items = doc.at("traceEvents").as_array();
  ASSERT_FALSE(items.empty());

  std::size_t complete = 0;
  std::size_t flow_starts = 0;
  std::size_t flow_ends = 0;
  std::set<std::string> names;
  for (const auto& ev : items) {
    const std::string ph = ev.at("ph").as_string();
    EXPECT_EQ(ev.at("pid").as_int(), 0);
    names.insert(ev.at("name").as_string());
    if (ph == "X") {
      ++complete;
      EXPECT_GE(ev.at("dur").as_double(), 0.0);
      EXPECT_GE(ev.at("ts").as_double(), 0.0);
      // The wall estimate rides along when the profile knows a rate.
      EXPECT_NE(ev.at("args").find("wall_est_us"), nullptr);
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_ends;
    } else {
      EXPECT_EQ(ph, "M");
    }
  }
  EXPECT_EQ(complete, trace.spans().size());
  // Flow arrows pair up, one pair per chained child below the root's
  // immediate children.
  EXPECT_EQ(flow_starts, flow_ends);
  EXPECT_GT(flow_starts, 0u);
  for (const char* expected :
       {"recovery", "link_down", "detect", "backup_activated", "lsa_flood",
        "spf_run", "fib_delta", "first_rerouted_packet", "process_name",
        "thread_name", "causal"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }

  // SPF span args distinguish full from incremental runs.
  EXPECT_NE(os.str().find("\"full\": 1, \"incremental\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace f2t
