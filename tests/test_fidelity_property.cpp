#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/runner.hpp"

namespace f2t {
namespace {

/// The hybrid-fidelity contract: for every Table IV condition the fluid
/// probe must reproduce the packet-level run's delivered set *exactly* —
/// same arrival times, same sequence numbers, same connectivity-loss
/// window — whenever the control plane is packet-free (central) so no
/// control traffic shares serializers with probe packets. This is the
/// property that lets flow-level campaigns stand in for packet-level ones
/// on the recovery metrics.
///
/// One carve-out: routing regimes that hold a transient forwarding loop
/// (f2/C7 defeats the backup ring, so the pre-reconvergence backup state
/// ping-pongs the probe). There the packet engine parks looping packets
/// in saturated drop-tail queues and drains the survivors when the FIBs
/// reconverge — queue-order interleaving no flow-level model can
/// reproduce. The fluid probe reports such regimes via
/// `fluid_loop_traces`; for those runs the suite pins the *window* to
/// within one send interval (the edge skew is the drained packets
/// beating the first cleanly-routed packet by a queue drain) and
/// requires fluid loss to be conservative (>= packet loss: fluid never
/// revives queue-buffered packets).

/// Window-edge tolerance for loop regimes: one probe send interval.
constexpr sim::Time kLoopEdgeSkew = sim::micros(100);

constexpr failure::Condition kConditions[] = {
    failure::Condition::kC1, failure::Condition::kC2, failure::Condition::kC3,
    failure::Condition::kC4, failure::Condition::kC5, failure::Condition::kC6,
    failure::Condition::kC7};

core::RunKnobs central_knobs() {
  core::RunKnobs knobs;
  knobs.horizon = sim::millis(1100);
  knobs.config.control_plane = core::ControlPlane::kCentral;
  return knobs;
}

void expect_identical_runs(const std::string& topo, int ports,
                           const core::RunKnobs& base) {
  const auto builder = core::topology_builder(topo, ports);
  for (const auto condition : kConditions) {
    core::RunKnobs knobs = base;
    knobs.fidelity = core::Fidelity::kPacket;
    const auto packet = core::run_udp_condition(builder, condition, knobs);
    knobs.fidelity = core::Fidelity::kFlow;
    const auto flow = core::run_udp_condition(builder, condition, knobs);
    if (!packet.ok) {
      // Condition absent from this topology (e.g. no distinct agg tier):
      // both fidelities must agree it is absent.
      EXPECT_FALSE(flow.ok) << topo << " " << int(condition);
      continue;
    }
    ASSERT_TRUE(flow.ok) << topo << " " << int(condition);
    const std::string label =
        topo + "/" + packet.site_class + " (" + packet.scenario + ")";
    EXPECT_EQ(flow.packets_sent, packet.packets_sent) << label;
    if (flow.fluid_loop_traces > 0) {
      // Loop carve-out (see the header comment): windows equal to within
      // one send interval, fluid loss conservative.
      EXPECT_GE(flow.packets_lost, packet.packets_lost) << label;
      EXPECT_LE(std::llabs(flow.connectivity_loss - packet.connectivity_loss),
                kLoopEdgeSkew)
          << label << " flow=" << flow.connectivity_loss
          << " packet=" << packet.connectivity_loss;
      continue;
    }
    EXPECT_EQ(flow.packets_lost, packet.packets_lost) << label;
    EXPECT_EQ(flow.connectivity_loss, packet.connectivity_loss) << label;
    const auto& fp = flow.delay_series.points();
    const auto& pp = packet.delay_series.points();
    ASSERT_EQ(fp.size(), pp.size()) << label;
    for (std::size_t i = 0; i < fp.size(); ++i) {
      ASSERT_EQ(fp[i].at, pp[i].at) << label << " arrival " << i;
      ASSERT_DOUBLE_EQ(fp[i].value, pp[i].value) << label << " delay " << i;
    }
  }
}

TEST(FidelityProperty, FatTreeCentralIdentical) {
  expect_identical_runs("fat", 8, central_knobs());
}

TEST(FidelityProperty, F2TreeCentralIdentical) {
  expect_identical_runs("f2", 8, central_knobs());
}

TEST(FidelityProperty, Vl2CentralIdentical) {
  expect_identical_runs("vl2-f2", 8, central_knobs());
}

TEST(FidelityProperty, LeafSpineCentralIdentical) {
  expect_identical_runs("leafspine-f2", 8, central_knobs());
}

TEST(FidelityProperty, UnidirectionalFaultIdentical) {
  auto knobs = central_knobs();
  knobs.fault.kind = failure::FaultKind::kUnidirectional;
  expect_identical_runs("f2", 8, knobs);
}

TEST(FidelityProperty, FlapFaultIdentical) {
  auto knobs = central_knobs();
  knobs.fault.kind = failure::FaultKind::kFlap;
  knobs.fault.flap_period = sim::millis(120);
  knobs.fault.flap_cycles = 3;
  expect_identical_runs("f2", 8, knobs);
}

TEST(FidelityProperty, OspfWindowsMatch) {
  // With an LSA-flooding control plane the probe shares serializers with
  // control packets; the recovery *window* must still match packet-level
  // (control packets are µs-scale against a 100 µs probe interval).
  core::RunKnobs knobs;
  knobs.horizon = sim::millis(1100);
  const auto builder = core::topology_builder("f2", 8);
  for (const auto condition : kConditions) {
    knobs.fidelity = core::Fidelity::kPacket;
    const auto packet = core::run_udp_condition(builder, condition, knobs);
    knobs.fidelity = core::Fidelity::kFlow;
    const auto flow = core::run_udp_condition(builder, condition, knobs);
    if (!packet.ok) {
      EXPECT_FALSE(flow.ok);
      continue;
    }
    ASSERT_TRUE(flow.ok);
    EXPECT_EQ(flow.packets_sent, packet.packets_sent);
    if (flow.fluid_loop_traces > 0) {
      // Loop carve-out: with OSPF the drained loop packets additionally
      // contend with LSA floods, but the edge skew stays sub-interval.
      EXPECT_LE(std::llabs(flow.connectivity_loss - packet.connectivity_loss),
                kLoopEdgeSkew)
          << "f2/" << packet.site_class << " (" << packet.scenario << ")";
      continue;
    }
    EXPECT_EQ(flow.connectivity_loss, packet.connectivity_loss)
        << "f2/" << packet.site_class << " (" << packet.scenario << ")";
  }
}

}  // namespace
}  // namespace f2t
