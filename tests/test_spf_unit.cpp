#include <gtest/gtest.h>

#include "routing/spf.hpp"

namespace f2t::routing {
namespace {

using net::Ipv4Addr;
using net::Prefix;

LsaPtr make_lsa(Ipv4Addr origin, std::vector<Ipv4Addr> neighbors,
                std::vector<Prefix> prefixes = {}, std::uint64_t seq = 1) {
  auto lsa = std::make_shared<Lsa>();
  lsa->origin = origin;
  lsa->sequence = seq;
  for (const auto& n : neighbors) lsa->links.push_back({n, 1});
  lsa->prefixes = std::move(prefixes);
  return lsa;
}

const Ipv4Addr A(10, 12, 0, 1);
const Ipv4Addr B(10, 12, 1, 1);
const Ipv4Addr C(10, 12, 2, 1);
const Ipv4Addr D(10, 12, 3, 1);
const Prefix kDst = Prefix::parse("10.11.9.0/24");

TEST(Spf, DiamondProducesEcmpFirstHops) {
  // A - {B, C} - D, destination prefix at D: both first hops retained.
  Lsdb db;
  db.consider(make_lsa(A, {B, C}));
  db.consider(make_lsa(B, {A, D}));
  db.consider(make_lsa(C, {A, D}));
  db.consider(make_lsa(D, {B, C}, {kDst}));

  const std::vector<LocalAdjacency> adjacency{{0, B}, {1, C}};
  const auto routes = compute_spf(db, A, adjacency);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].prefix, kDst);
  ASSERT_EQ(routes[0].next_hops.size(), 2u);
}

TEST(Spf, ShorterPathBeatsLonger) {
  // A - B - D and A - C - X(->D longer): only B is a first hop.
  const Ipv4Addr X(10, 12, 4, 1);
  Lsdb db;
  db.consider(make_lsa(A, {B, C}));
  db.consider(make_lsa(B, {A, D}));
  db.consider(make_lsa(C, {A, X}));
  db.consider(make_lsa(X, {C, D}));
  db.consider(make_lsa(D, {B, X}, {kDst}));

  const std::vector<LocalAdjacency> adjacency{{0, B}, {1, C}};
  const auto routes = compute_spf(db, A, adjacency);
  ASSERT_EQ(routes.size(), 1u);
  ASSERT_EQ(routes[0].next_hops.size(), 1u);
  EXPECT_EQ(routes[0].next_hops[0].via, B);
}

TEST(Spf, OneWayAdjacencyIsIgnored) {
  // B claims a link to D, but D does not claim B: the edge must not be
  // used (OSPF two-way check), so D is reachable only via C.
  Lsdb db;
  db.consider(make_lsa(A, {B, C}));
  db.consider(make_lsa(B, {A, D}));
  db.consider(make_lsa(C, {A, D}));
  db.consider(make_lsa(D, {C}, {kDst}));  // no B!

  const std::vector<LocalAdjacency> adjacency{{0, B}, {1, C}};
  const auto routes = compute_spf(db, A, adjacency);
  ASSERT_EQ(routes.size(), 1u);
  ASSERT_EQ(routes[0].next_hops.size(), 1u);
  EXPECT_EQ(routes[0].next_hops[0].via, C);
}

TEST(Spf, UnreachableDestinationYieldsNoRoute) {
  Lsdb db;
  db.consider(make_lsa(A, {B}));
  db.consider(make_lsa(B, {A}));
  db.consider(make_lsa(D, {}, {kDst}));  // isolated
  const std::vector<LocalAdjacency> adjacency{{0, B}};
  EXPECT_TRUE(compute_spf(db, A, adjacency).empty());
}

TEST(Spf, ParallelLinksToSameNeighborAllBecomeNextHops) {
  Lsdb db;
  db.consider(make_lsa(A, {B}));
  db.consider(make_lsa(B, {A}, {kDst}));
  // Two local ports both facing B (the testbed's doubled across links).
  const std::vector<LocalAdjacency> adjacency{{0, B}, {1, B}};
  const auto routes = compute_spf(db, A, adjacency);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].next_hops.size(), 2u);
}

TEST(Spf, DeadLocalPortExcludedByAdjacencyList) {
  // The caller passes only live adjacencies; a dead one simply isn't
  // offered, and the destination resolves via the remaining port.
  Lsdb db;
  db.consider(make_lsa(A, {B, C}));
  db.consider(make_lsa(B, {A, D}));
  db.consider(make_lsa(C, {A, D}));
  db.consider(make_lsa(D, {B, C}, {kDst}));
  const std::vector<LocalAdjacency> only_c{{1, C}};
  const auto routes = compute_spf(db, A, only_c);
  ASSERT_EQ(routes.size(), 1u);
  ASSERT_EQ(routes[0].next_hops.size(), 1u);
  EXPECT_EQ(routes[0].next_hops[0].via, C);
}

TEST(Spf, MultiplePrefixesPerRouter) {
  const Prefix kDst2 = Prefix::parse("10.11.10.0/24");
  Lsdb db;
  db.consider(make_lsa(A, {B}));
  db.consider(make_lsa(B, {A}, {kDst, kDst2}));
  const std::vector<LocalAdjacency> adjacency{{0, B}};
  const auto routes = compute_spf(db, A, adjacency);
  EXPECT_EQ(routes.size(), 2u);
}

TEST(Spf, ReachabilityProbe) {
  Lsdb db;
  db.consider(make_lsa(A, {B}));
  db.consider(make_lsa(B, {A, C}));
  db.consider(make_lsa(C, {B}));
  db.consider(make_lsa(D, {C}));  // one-way: C doesn't list D
  EXPECT_TRUE(lsdb_reachable(db, A, C));
  EXPECT_TRUE(lsdb_reachable(db, A, A));
  EXPECT_FALSE(lsdb_reachable(db, A, D));
  EXPECT_FALSE(lsdb_reachable(db, D, A));  // D->C edge fails two-way check
}

}  // namespace
}  // namespace f2t::routing
