#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::routing {
namespace {

core::TestbedConfig pv_config() {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kPathVector;
  return config;
}

TEST(PathVector, WarmStartInstallsRoutesEverywhere) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); },
                    pv_config());
  bed.converge();
  for (auto* sw : bed.topo().all_switches()) {
    for (const auto& [tor, prefix] : bed.topo().subnet_of_tor) {
      if (tor == sw) continue;
      const auto hops = sw->fib().lookup(
          net::Ipv4Addr(prefix.address().value() + 10),
          [&](net::PortId p) { return sw->port_detected_up(p); });
      EXPECT_FALSE(hops.empty()) << sw->name() << " -> " << prefix.str();
    }
  }
}

TEST(PathVector, WarmStartAllPairsReachable) {
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
      },
      pv_config());
  bed.converge();
  const auto& hosts = bed.topo().hosts;
  for (std::size_t i = 0; i < hosts.size(); i += 7) {
    const std::size_t j = (i + hosts.size() / 2 + 3) % hosts.size();
    if (i == j) continue;
    net::Packet probe;
    probe.src = hosts[i]->addr();
    probe.dst = hosts[j]->addr();
    probe.sport = static_cast<std::uint16_t>(5000 + i);
    const auto path = failure::trace_route(*hosts[i], *hosts[j], probe);
    ASSERT_FALSE(path.empty())
        << hosts[i]->name() << " -> " << hosts[j]->name();
    EXPECT_EQ(path.back(), hosts[j]);
  }
}

TEST(PathVector, MultipathInstallsEcmpSets) {
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
      },
      pv_config());
  bed.converge();
  auto* tor = bed.topo().tors.front();
  // Some remote prefix should have several equal-length uplink choices.
  std::size_t widest = 0;
  for (const auto& [remote, prefix] : bed.topo().subnet_of_tor) {
    if (remote == tor) continue;
    const auto hops = tor->fib().lookup(
        net::Ipv4Addr(prefix.address().value() + 10),
        [](net::PortId) { return true; });
    widest = std::max(widest, hops.size());
  }
  EXPECT_GE(widest, 2u);
}

TEST(PathVector, SinglePathModeInstallsOneNextHop) {
  auto config = pv_config();
  config.path_vector.multipath = false;
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 4});
      },
      config);
  bed.converge();
  for (auto* sw : bed.topo().all_switches()) {
    for (const auto& route : sw->fib().dump()) {
      if (route.source == RouteSource::kOspf) {
        EXPECT_EQ(route.next_hops.size(), 1u) << sw->name();
      }
    }
  }
}

TEST(PathVector, FailureWithdrawsAndReconverges) {
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
      },
      pv_config());
  bed.converge();
  auto* sx = bed.topo().pods[0].aggs[0];
  auto* tor = bed.topo().pods[0].tors[0];
  net::Link* link = bed.network().find_link(*sx, *tor);
  ASSERT_NE(link, nullptr);
  bed.injector().fail_at(*link, sim::millis(10));
  bed.sim().run(sim::seconds(10));

  const auto& counters = bed.path_vector_of(*sx).counters();
  EXPECT_GT(counters.updates_sent, 0u);
  EXPECT_GT(counters.routes_withdrawn, 0u);

  // Valley-free BGP: Sx itself has no remaining path to the ToR (every
  // alternative would transit the rack or loop through Sx)...
  const auto prefix = bed.topo().subnet_of_tor.at(tor);
  const auto sx_hops =
      sx->fib().lookup(net::Ipv4Addr(prefix.address().value() + 10),
                       [&](net::PortId p) { return sx->port_detected_up(p); });
  EXPECT_TRUE(sx_hops.empty());
  // ...but the network as a whole reconverged: hosts in other pods reach
  // the ToR via the other aggregation switches.
  const net::Host* src = bed.topo().hosts_of_tor.at(bed.topo().tors.back())
                             .front();
  const net::Host* dst = bed.topo().hosts_of_tor.at(tor).front();
  net::Packet probe;
  probe.src = src->addr();
  probe.dst = dst->addr();
  probe.sport = 12001;
  const auto path = failure::trace_route(*src, *dst, probe);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), dst);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_FALSE((path[i] == sx && path[i + 1] == tor) ||
                 (path[i] == tor && path[i + 1] == sx));
  }
}

TEST(PathVector, RecoveryReadvertisesFullTable) {
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 4});
      },
      pv_config());
  bed.converge();
  auto* sx = bed.topo().pods[0].aggs[0];
  auto* tor = bed.topo().pods[0].tors[0];
  net::Link* link = bed.network().find_link(*sx, *tor);
  bed.injector().fail_for(*link, sim::millis(10), sim::seconds(2));
  bed.sim().run(sim::seconds(20));

  // Direct route restored after the session re-establishes.
  const auto prefix = bed.topo().subnet_of_tor.at(tor);
  const auto hops =
      sx->fib().lookup(net::Ipv4Addr(prefix.address().value() + 10),
                       [&](net::PortId p) { return sx->port_detected_up(p); });
  ASSERT_FALSE(hops.empty());
  bool direct = false;
  for (const auto& nh : hops) {
    if (sx->port(nh.port).link == link) direct = true;
  }
  EXPECT_TRUE(direct);
}

/// §V's claim under a BGP-like plane: F²Tree's fast reroute keeps the
/// 60 ms detection floor; the original fat tree waits for withdrawal
/// propagation, path hunting and FIB updates.
TEST(PathVector, F2TreeStaysDetectionBoundUnderBgpPlane) {
  auto run = [](bool f2) {
    core::Testbed bed(
        [f2](net::Network& n) {
          return f2 ? topo::build_f2tree(n, 8)
                    : topo::build_fat_tree(n,
                                           topo::FatTreeOptions{.ports = 8});
        },
        pv_config());
    bed.converge();
    const auto plan =
        failure::build_condition(bed.topo(), failure::Condition::kC1);
    EXPECT_TRUE(plan.has_value());
    transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
    transport::UdpCbrSender::Options so;
    so.sport = plan->sport;
    so.dport = plan->dport;
    so.stop = sim::seconds(2);
    transport::UdpCbrSender sender(bed.stack_of(*plan->src),
                                   plan->dst->addr(), so);
    sender.start();
    for (net::Link* link : plan->fail_links) {
      bed.injector().fail_at(*link, sim::millis(380));
    }
    bed.sim().run(sim::seconds(4));
    std::vector<sim::Time> arrivals;
    for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
    const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
    return loss ? loss->duration() : sim::Time{0};
  };

  const sim::Time fat = run(false);
  const sim::Time f2 = run(true);
  EXPECT_GE(f2, sim::millis(55));
  EXPECT_LE(f2, sim::millis(70));
  EXPECT_GT(fat, f2);  // withdrawal wave + FIB install on top of detection
}

}  // namespace
}  // namespace f2t::routing
