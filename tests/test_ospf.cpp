#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::routing {
namespace {

TEST(SpfThrottle, FirstTriggerWaitsInitialDelay) {
  SpfThrottle t;
  EXPECT_EQ(t.schedule(sim::seconds(100)),
            sim::seconds(100) + sim::millis(200));
}

TEST(SpfThrottle, BackoffDoublesUnderChurn) {
  SpfThrottle t;
  sim::Time now = sim::seconds(10);
  sim::Time last = 0;
  std::vector<sim::Time> waits;
  for (int i = 0; i < 8; ++i) {
    const sim::Time when = t.schedule(now);
    t.ran(when);
    waits.push_back(when - now);
    last = when;
    now = when + sim::millis(1);  // immediate re-trigger after each run
  }
  (void)last;
  // Holds double: 200ms, then >= 400ms, ... capped at 10s.
  EXPECT_EQ(waits.front(), sim::millis(200));
  EXPECT_GT(waits.back(), sim::seconds(5));
  for (std::size_t i = 1; i < waits.size(); ++i) {
    EXPECT_GE(waits[i], waits[i - 1]);
  }
}

// Regression: the throttle used to double the hold on *every* trigger,
// even when the triggers coalesced into one pending SPF run — so a burst
// of LSAs from a single failure inflated every later recovery. Cisco-style
// throttling backs off per run: N coalesced triggers cost one doubling.
TEST(SpfThrottle, CoalescedTriggersCostOneDoubling) {
  SpfThrottle t;
  const sim::Time initial = t.config().initial_delay;
  ASSERT_EQ(t.current_hold(), initial);
  // A burst of 16 triggers within one pending run (no ran() in between).
  sim::Time when = 0;
  for (int i = 0; i < 16; ++i) {
    when = t.schedule(sim::seconds(10) + sim::millis(i));
  }
  EXPECT_EQ(t.current_hold(), 2 * initial)
      << "coalesced triggers must not compound the backoff";
  EXPECT_TRUE(t.pending());
  // The run fires; the *next* trigger starts a new run and doubles again.
  t.ran(when);
  EXPECT_FALSE(t.pending());
  t.schedule(when + sim::millis(1));
  EXPECT_EQ(t.current_hold(), 4 * initial);
}

// Coalesced triggers also keep returning a consistent run time: with the
// hold frozen while pending, a trigger burst shortly after a run cannot
// push the next run's scheduled time out run-by-run (the old per-trigger
// doubling walked it from last_run + 400ms all the way to the 10 s cap).
TEST(SpfThrottle, PendingRunTimeDoesNotInflate) {
  SpfThrottle t;
  t.ran(sim::seconds(10));
  sim::Time when = 0;
  for (int i = 1; i <= 16; ++i) {
    when = t.schedule(sim::seconds(10) + sim::millis(i));
  }
  // One doubling: the run lands at last_run + 2 * initial_delay at the
  // latest (the final trigger's own now + initial floor is even earlier).
  EXPECT_LE(when, sim::seconds(10) + 2 * t.config().initial_delay);
}

TEST(SpfThrottle, QuietPeriodResetsBackoff) {
  SpfThrottle t;
  sim::Time now = sim::seconds(1);
  for (int i = 0; i < 5; ++i) {
    const sim::Time when = t.schedule(now);
    t.ran(when);
    now = when + sim::millis(1);
  }
  EXPECT_GT(t.current_hold(), sim::seconds(1));
  // A long quiet period resets the hold to the initial delay.
  now += sim::seconds(100);
  const sim::Time when = t.schedule(now);
  EXPECT_EQ(when, now + sim::millis(200));
}

TEST(SpfThrottle, RejectsBadConfig) {
  SpfThrottleConfig bad;
  bad.max_wait = sim::millis(10);  // < initial_delay
  EXPECT_THROW(SpfThrottle{bad}, std::invalid_argument);
}

TEST(Lsdb, NewerSequenceWins) {
  Lsdb db;
  auto v1 = std::make_shared<Lsa>();
  v1->origin = net::Ipv4Addr(10, 12, 0, 1);
  v1->sequence = 1;
  auto v2 = std::make_shared<Lsa>(*v1);
  v2->sequence = 2;
  EXPECT_TRUE(db.consider(v1));
  EXPECT_TRUE(db.consider(v2));
  EXPECT_FALSE(db.consider(v1));  // stale
  EXPECT_EQ(db.sequence_of(v1->origin), 2u);
  EXPECT_EQ(db.size(), 1u);
}

class OspfFixture : public ::testing::Test {
 protected:
  OspfFixture()
      : bed_([](net::Network& n) { return topo::build_f2tree(n, 4); }) {
    bed_.converge();
  }
  core::Testbed bed_;
};

TEST_F(OspfFixture, WarmStartGivesFullLsdbEverywhere) {
  const auto switches = bed_.topo().all_switches();
  for (auto* sw : switches) {
    EXPECT_EQ(bed_.ospf_of(*sw).lsdb().size(), switches.size()) << sw->name();
  }
}

TEST_F(OspfFixture, EveryTorPrefixRoutedEverywhere) {
  for (auto* sw : bed_.topo().all_switches()) {
    for (const auto& [tor, prefix] : bed_.topo().subnet_of_tor) {
      if (tor == sw) continue;
      const auto hops = sw->fib().lookup(
          net::Ipv4Addr(prefix.address().value() + 10),
          [&](net::PortId p) { return sw->port_detected_up(p); });
      EXPECT_FALSE(hops.empty()) << sw->name() << " -> " << prefix.str();
    }
  }
}

TEST_F(OspfFixture, UpwardRoutesUseEcmp) {
  // A ToR should have multiple equal-cost next hops to a remote subnet.
  auto* tor = bed_.topo().tors.front();
  const auto& [remote_tor, remote_prefix] = *std::find_if(
      bed_.topo().subnet_of_tor.begin(), bed_.topo().subnet_of_tor.end(),
      [&](const auto& kv) { return kv.first != tor; });
  (void)remote_tor;
  const auto hops =
      tor->fib().lookup(net::Ipv4Addr(remote_prefix.address().value() + 10),
                        [](net::PortId) { return true; });
  EXPECT_GE(hops.size(), 2u);
}

TEST_F(OspfFixture, LinkFailureFloodsLsasAndReconverges) {
  auto& topo = bed_.topo();
  auto* sx = topo.pods[0].aggs[0];
  auto* tor = topo.pods[0].tors[0];
  net::Link* link = bed_.network().find_link(*sx, *tor);
  ASSERT_NE(link, nullptr);

  const auto before = bed_.total_ospf_counters();
  bed_.injector().fail_at(*link, sim::millis(10));
  bed_.sim().run(sim::seconds(2));
  const auto after = bed_.total_ospf_counters();

  EXPECT_GT(after.lsas_originated, before.lsas_originated);
  EXPECT_GT(after.spf_runs, before.spf_runs);
  // Both endpoints re-originated; every other switch should have accepted
  // the new LSAs.
  const auto& lsdb = bed_.ospf_of(*topo.cores.front()).lsdb();
  EXPECT_GE(lsdb.sequence_of(sx->router_id()), 2u);
  EXPECT_GE(lsdb.sequence_of(tor->router_id()), 2u);

  // Post-convergence, sx routes to the ToR's subnet around the dead link.
  const auto prefix = topo.subnet_of_tor.at(tor);
  const auto hops =
      sx->fib().lookup(net::Ipv4Addr(prefix.address().value() + 10),
                       [&](net::PortId p) { return sx->port_detected_up(p); });
  ASSERT_FALSE(hops.empty());
  for (const auto& nh : hops) {
    EXPECT_NE(sx->port(nh.port).link, link);
  }
}

TEST_F(OspfFixture, RecoveryRestoresDirectRoute) {
  auto& topo = bed_.topo();
  auto* sx = topo.pods[0].aggs[0];
  auto* tor = topo.pods[0].tors[0];
  net::Link* link = bed_.network().find_link(*sx, *tor);
  bed_.injector().fail_for(*link, sim::millis(10), sim::seconds(2));
  bed_.sim().run(sim::seconds(15));

  const auto prefix = topo.subnet_of_tor.at(tor);
  const auto hops =
      sx->fib().lookup(net::Ipv4Addr(prefix.address().value() + 10),
                       [&](net::PortId p) { return sx->port_detected_up(p); });
  ASSERT_FALSE(hops.empty());
  // The direct 1-hop route is back.
  bool direct = false;
  for (const auto& nh : hops) {
    if (sx->port(nh.port).link == link) direct = true;
  }
  EXPECT_TRUE(direct);
}

TEST_F(OspfFixture, StaticBackupsSurviveSpfReinstalls) {
  auto* agg = bed_.topo().aggs.front();
  auto* tor = bed_.topo().pods[0].tors[0];
  net::Link* link = bed_.network().find_link(*agg, *tor);
  ASSERT_NE(link, nullptr);
  bed_.injector().fail_for(*link, sim::millis(10), sim::seconds(1));
  bed_.sim().run(sim::seconds(5));
  EXPECT_TRUE(agg->fib()
                  .find(net::Prefix::parse("10.11.0.0/16"),
                        RouteSource::kStatic)
                  .has_value());
  EXPECT_TRUE(agg->fib()
                  .find(net::Prefix::parse("10.10.0.0/15"),
                        RouteSource::kStatic)
                  .has_value());
}

TEST(Detection, FlapWithinWindowIsSuppressed) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 12, 1, 1));
  net::Link& link = net.connect_default(a, b);
  DetectionAgent agent(net);
  agent.attach_all();

  int transitions = 0;
  a.add_port_state_handler([&](net::PortId, bool) { ++transitions; });

  sim.at(sim::millis(10), [&] { link.set_up(false); });
  sim.at(sim::millis(30), [&] { link.set_up(true); });  // within 60 ms window
  sim.run(sim::seconds(1));
  EXPECT_EQ(transitions, 0);
  EXPECT_TRUE(a.port_detected_up(0));
}

TEST(Detection, DownDetectedAfterConfiguredDelay) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 12, 1, 1));
  net::Link& link = net.connect_default(a, b);
  DetectionAgent agent(net);
  agent.attach_all();

  sim::Time detected_at = -1;
  a.add_port_state_handler([&](net::PortId, bool up) {
    if (!up) detected_at = sim.now();
  });
  sim.at(sim::millis(100), [&] { link.set_up(false); });
  sim.run(sim::seconds(1));
  EXPECT_EQ(detected_at, sim::millis(160));
}

TEST(Ospf, ColdStartFloodingConvergesWithoutWarmStart) {
  // Let the protocol itself distribute LSAs from scratch: trigger by
  // flapping one link after attach, then check everyone heard everyone.
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  // No converge(): seed each instance with only its own LSA via a flap.
  for (auto* sw : bed.topo().all_switches()) {
    bed.ospf_of(*sw);  // instances exist
  }
  // Flap every link so every switch originates and floods.
  for (auto* link : bed.network().links()) {
    bed.injector().fail_for(*link, sim::millis(1), sim::millis(200));
  }
  bed.sim().run(sim::seconds(60));
  const auto switches = bed.topo().all_switches();
  for (auto* sw : switches) {
    EXPECT_EQ(bed.ospf_of(*sw).lsdb().size(), switches.size()) << sw->name();
  }
}

}  // namespace
}  // namespace f2t::routing
