#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "core/f2tree.hpp"
#include "topo/fattree.hpp"
#include "transport/workload.hpp"

namespace f2t::transport {
namespace {

// ------------------------------------------------------------ FlowSizeCdf

TEST(FlowSizeCdf, BuiltinsAreValidAndNamed) {
  for (const char* name : {"websearch", "datamining"}) {
    const auto cdf = FlowSizeCdf::by_name(name);
    ASSERT_FALSE(cdf.points().empty());
    EXPECT_GT(cdf.mean_bytes(), 0.0);
    EXPECT_DOUBLE_EQ(cdf.points().back().cum, 1.0);
  }
  EXPECT_THROW(FlowSizeCdf::by_name("cachefollower"), std::invalid_argument);
  // The data-mining mix is the heavier-tailed one: far larger mean from
  // its multi-MB shuffle tail despite the tiny median.
  EXPECT_GT(FlowSizeCdf::datamining().mean_bytes(),
            FlowSizeCdf::websearch().mean_bytes());
}

TEST(FlowSizeCdf, SamplesStayInsideSupport) {
  const auto cdf = FlowSizeCdf::websearch();
  const auto hi = static_cast<std::uint64_t>(cdf.points().back().bytes);
  sim::Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t s = cdf.sample(rng);
    EXPECT_GE(s, std::uint64_t{1});
    EXPECT_LE(s, hi);
  }
}

TEST(FlowSizeCdf, FixedIsDegenerate) {
  const auto cdf = FlowSizeCdf::fixed(4096);
  sim::Random rng(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(cdf.sample(rng), 4096u);
  EXPECT_DOUBLE_EQ(cdf.mean_bytes(), 4096.0);
}

TEST(FlowSizeCdf, CsvRoundTripAndValidation) {
  const auto cdf = FlowSizeCdf::from_csv(
      "# custom mix\n"
      "1000,0.5\n"
      "10000,0.9\n"
      "100000,1.0\n");
  ASSERT_EQ(cdf.points().size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.points()[1].bytes, 10000.0);
  sim::Random rng(5);
  for (int i = 0; i < 500; ++i) EXPECT_LE(cdf.sample(rng), 100000u);
  // Non-ascending bytes, non-ascending cum, and a final cum != 1 are all
  // authoring errors that must fail loudly.
  EXPECT_THROW(FlowSizeCdf::from_csv("1000,0.5\n500,1.0\n"),
               std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf::from_csv("1000,0.9\n2000,0.5\n"),
               std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf::from_csv("1000,0.5\n2000,0.9\n"),
               std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf::from_csv("garbage\n"), std::invalid_argument);
}

// ------------------------------------------------------------ TcpWorkload

core::Testbed make_f2_8() {
  return core::Testbed(
      [](net::Network& n) { return topo::build_f2tree(n, 8); });
}

WorkloadOptions small_poisson() {
  WorkloadOptions o;
  o.kind = WorkloadKind::kPoisson;
  o.sizes = FlowSizeCdf::fixed(5000);
  o.load = 0.05;
  o.stop = sim::millis(300);
  o.deadline = sim::millis(100);
  return o;
}

TEST(TcpWorkload, PoissonFlowsLaunchAndComplete) {
  auto bed = make_f2_8();
  bed.converge();
  TcpWorkload wl(bed.stacks(), sim::Random(9), small_poisson());
  wl.start();
  bed.sim().run(sim::seconds(2));

  ASSERT_GT(wl.launched(), 10u);
  EXPECT_GT(wl.completed(), 0u);
  EXPECT_EQ(wl.completed(), wl.launched());  // idle network: all finish
  EXPECT_EQ(wl.active_count(), 0u);
  EXPECT_GE(wl.peak_active(), 1u);
  for (const auto& s : wl.samples()) {
    EXPECT_EQ(s.bytes, 5000u);
    EXPECT_GT(s.ideal, 0);
    ASSERT_NE(s.finish, sim::kNever);
    EXPECT_GT(s.finish, s.start);
  }
}

TEST(TcpWorkload, DrawsAreIndependentOfNetworkNoise) {
  // Same workload seed on two different topologies with the same host
  // population (the F^2 rewiring costs each ToR one host port, so the
  // plain fat tree is pinned to 3 hosts/ToR to match): the launch
  // schedule and flow sizes must match draw-for-draw (Random::split
  // streams), even though every packet event differs. Flow *outcomes*
  // may differ.
  auto collect = [](bool f2) {
    core::Testbed bed([f2](net::Network& n) {
      return f2 ? topo::build_f2tree(n, 8)
                : topo::build_fat_tree(
                      n, topo::FatTreeOptions{.ports = 8, .hosts_per_tor = 3});
    });
    bed.converge();
    auto opts = small_poisson();
    opts.sizes = FlowSizeCdf::websearch();
    TcpWorkload wl(bed.stacks(), sim::Random(21), opts);
    wl.start();
    bed.sim().run(sim::millis(400));
    std::vector<std::pair<sim::Time, std::uint64_t>> launches;
    for (const auto& s : wl.samples()) launches.push_back({s.start, s.bytes});
    return launches;
  };
  const auto a = collect(true);
  const auto b = collect(false);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(TcpWorkload, IncastRoundsFanIn) {
  auto bed = make_f2_8();
  bed.converge();
  WorkloadOptions o;
  o.kind = WorkloadKind::kIncast;
  o.fanin = 4;
  o.incast_bytes = 2000;
  o.incast_interval = sim::millis(20);
  o.stop = sim::millis(200);
  TcpWorkload wl(bed.stacks(), sim::Random(13), o);
  wl.start();
  bed.sim().run(sim::seconds(2));

  ASSERT_GT(wl.launched(), 0u);
  EXPECT_EQ(wl.launched() % 4, 0u);  // whole rounds only
  EXPECT_EQ(wl.completed(), wl.launched());
  for (const auto& s : wl.samples()) EXPECT_EQ(s.bytes, 2000u);
}

// ------------------------------------------------------------ FluidWorkload

TEST(FluidWorkload, RatesIntegrateToCorrectFct) {
  sim::Simulator sim(1);
  transport::FluidFlowTable table(1, 8e6);  // one 8 Mbps channel
  FluidWorkload::Options o;
  o.arrival_rate_per_s = 5;
  o.sizes = FlowSizeCdf::fixed(100'000);  // 0.1 s alone at line rate
  o.stop = sim::seconds(2);
  FluidWorkload wl(
      sim, table,
      [](sim::Random&, std::vector<std::uint32_t>& path) { path = {0}; },
      sim::Random(17), o);
  wl.start();
  sim.run(sim::seconds(30));
  wl.finalize();

  ASSERT_GT(wl.launched(), 3u);
  EXPECT_EQ(wl.completed(), wl.launched());  // long tail drained everything
  EXPECT_EQ(table.flow_count(), 0u);
  double total_bits = 0;
  sim::Time last_finish = 0;
  for (const auto& s : wl.samples()) {
    ASSERT_NE(s.finish, sim::kNever);
    // Ideal is the solo bottleneck FCT; sharing can only slow a flow.
    EXPECT_DOUBLE_EQ(sim::to_seconds(s.ideal), 0.1);
    EXPECT_GE(s.finish - s.start + sim::micros(1), s.ideal);
    total_bits += static_cast<double>(s.bytes) * 8;
    last_finish = std::max(last_finish, s.finish);
  }
  // Conservation: the channel cannot have carried more than capacity
  // times the busy interval.
  EXPECT_LE(total_bits, 8e6 * sim::to_seconds(last_finish) + 1.0);
}

TEST(FluidWorkload, DeterministicAcrossRuns) {
  auto collect = [] {
    sim::Simulator sim(1);
    transport::FluidFlowTable table(4, 1e9);
    FluidWorkload::Options o;
    o.arrival_rate_per_s = 200;
    o.sizes = FlowSizeCdf::websearch();
    o.stop = sim::millis(500);
    FluidWorkload wl(
        sim, table,
        [](sim::Random& rng, std::vector<std::uint32_t>& path) {
          path = {static_cast<std::uint32_t>(rng.index(4))};
        },
        sim::Random(23), o);
    wl.start();
    sim.run(sim::seconds(5));
    wl.finalize();
    std::vector<std::tuple<sim::Time, sim::Time, std::uint64_t>> out;
    for (const auto& s : wl.samples()) {
      out.push_back({s.start, s.finish, s.bytes});
    }
    return out;
  };
  const auto a = collect();
  const auto b = collect();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace f2t::transport
