#include <gtest/gtest.h>

#include "net/ipv4.hpp"

namespace f2t::net {
namespace {

TEST(Ipv4Addr, RoundTrip) {
  const Ipv4Addr a(10, 11, 2, 1);
  EXPECT_EQ(a.str(), "10.11.2.1");
  EXPECT_EQ(Ipv4Addr::parse("10.11.2.1"), a);
}

TEST(Ipv4Addr, ParseEdgeValues) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255").value(), 0xffffffffu);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Addr::parse(""), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("10.0.0"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("10.0.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("10.0.0.x"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("10..0.1"), std::invalid_argument);
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

TEST(Prefix, NormalizesHostBits) {
  const Prefix p(Ipv4Addr(10, 11, 3, 7), 24);
  EXPECT_EQ(p.address(), Ipv4Addr(10, 11, 3, 0));
  EXPECT_EQ(p.str(), "10.11.3.0/24");
}

TEST(Prefix, PaperBackupChainNormalization) {
  // The covering chain the backup routes rely on (§II-B / Fig 3(d)).
  EXPECT_EQ(Prefix(Ipv4Addr(10, 11, 0, 0), 16).str(), "10.11.0.0/16");
  EXPECT_EQ(Prefix(Ipv4Addr(10, 11, 0, 0), 15).str(), "10.10.0.0/15");
  EXPECT_EQ(Prefix(Ipv4Addr(10, 11, 0, 0), 14).str(), "10.8.0.0/14");
  EXPECT_EQ(Prefix(Ipv4Addr(10, 11, 0, 0), 13).str(), "10.8.0.0/13");
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::parse("10.11.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 11, 200, 9)));
  EXPECT_FALSE(p.contains(Ipv4Addr(10, 12, 0, 1)));
}

TEST(Prefix, ContainsPrefixNesting) {
  const Prefix host_net = Prefix::parse("10.11.0.0/16");
  const Prefix cover = Prefix::parse("10.10.0.0/15");
  EXPECT_TRUE(cover.contains(host_net));
  EXPECT_FALSE(host_net.contains(cover));
  EXPECT_TRUE(host_net.contains(host_net));
}

TEST(Prefix, ZeroAndFullLength) {
  const Prefix all = Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Addr(255, 1, 2, 3)));
  EXPECT_EQ(all.mask(), 0u);
  const Prefix host = Prefix::host(Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(host.length(), 32);
  EXPECT_TRUE(host.contains(Ipv4Addr(10, 0, 0, 1)));
  EXPECT_FALSE(host.contains(Ipv4Addr(10, 0, 0, 2)));
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_THROW(Prefix::parse("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0/-1"), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0/x"), std::invalid_argument);
}

TEST(Prefix, EqualityIsNormalized) {
  EXPECT_EQ(Prefix(Ipv4Addr(10, 11, 5, 200), 24),
            Prefix(Ipv4Addr(10, 11, 5, 3), 24));
  EXPECT_NE(Prefix::parse("10.11.0.0/16"), Prefix::parse("10.11.0.0/17"));
}

}  // namespace
}  // namespace f2t::net
