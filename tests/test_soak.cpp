#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "core/runner.hpp"

namespace f2t {
namespace {

/// Churn soak: 120 simulated seconds of random failures + request and
/// background traffic on both topologies, checking global invariants
/// rather than specific numbers:
///   - the run terminates (no event-loop livelock),
///   - every background flow and request eventually completes once the
///     network heals (TCP never gives up and the topology stays
///     physically connected under the concurrency cap),
///   - byte conservation: delivered == written on every flow,
///   - all links are back up at the end,
///   - control plane counters are sane (every switch ran SPF, FIB
///     installs happened, LSDBs converged back to full views).
class ChurnSoak : public ::testing::TestWithParam<const char*> {};

TEST_P(ChurnSoak, InvariantsHoldThroughChurn) {
  core::Testbed bed(core::topology_builder(GetParam(), 8));
  bed.converge();

  transport::PartitionAggregateOptions pa;
  pa.start = sim::seconds(1);
  pa.stop = sim::seconds(121);
  pa.mean_interarrival = sim::millis(250);
  transport::PartitionAggregateApp app(bed.stacks(), sim::Random(91), pa);
  app.start();

  transport::BackgroundTrafficOptions bg;
  bg.start = sim::seconds(1);
  bg.stop = pa.stop;
  bg.interarrival_median_s = 0.5;
  transport::BackgroundTraffic background(bed.stacks(), sim::Random(92), bg);
  background.start();

  failure::RandomFailureOptions rf;
  rf.start = sim::seconds(2);
  rf.stop = sim::seconds(100);  // leave time to heal
  rf.interarrival_median_s = 3.0;
  rf.interarrival_sigma = 1.2;
  rf.duration_median_s = 4.0;
  rf.max_concurrent = 3;
  failure::RandomFailureGenerator failures(bed.injector(), sim::Random(93),
                                           rf);
  failures.start();

  bed.sim().run(sim::seconds(180));

  EXPECT_GT(failures.failures_injected(), 10);
  EXPECT_EQ(bed.injector().active_failures(), 0);

  // Everything completed once the network healed.
  EXPECT_EQ(app.completed_count(), app.issued_count());
  EXPECT_EQ(background.completed_count(), background.flows().size());

  // The control plane is consistent again: every switch's LSDB holds an
  // entry for every router, and routes to every rack exist everywhere.
  const auto switches = bed.topo().all_switches();
  for (auto* sw : switches) {
    EXPECT_EQ(bed.ospf_of(*sw).lsdb().size(), switches.size()) << sw->name();
  }
  for (auto* sw : switches) {
    for (const auto& [tor, prefix] : bed.topo().subnet_of_tor) {
      if (tor == sw) continue;
      const auto hops = sw->fib().lookup(
          net::Ipv4Addr(prefix.address().value() + 10),
          [&](net::PortId p) { return sw->port_detected_up(p); });
      EXPECT_FALSE(hops.empty()) << sw->name() << " -> " << prefix.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, ChurnSoak,
                         ::testing::Values("fat", "f2"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace f2t
