#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "topo/addressing.hpp"

namespace f2t {
namespace {

TEST(Logging, SinkCapturesAtOrAboveThreshold) {
  sim::Logger logger;
  std::vector<std::string> lines;
  logger.set_sink([&](sim::LogLevel, sim::Time, const std::string& message) {
    lines.push_back(message);
  });
  logger.set_threshold(sim::LogLevel::kInfo);
  F2T_LOG(logger, sim::LogLevel::kDebug, 0, "hidden " << 1);
  F2T_LOG(logger, sim::LogLevel::kInfo, 0, "shown " << 2);
  F2T_LOG(logger, sim::LogLevel::kError, 0, "also " << 3);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "shown 2");
  EXPECT_EQ(lines[1], "also 3");
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(sim::Logger::level_name(sim::LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(sim::Logger::level_name(sim::LogLevel::kError), "ERROR");
}

TEST(Logging, LazyEvaluationSkipsDisabledLevels) {
  sim::Logger logger;  // default threshold kWarn
  int evaluated = 0;
  auto expensive = [&] {
    ++evaluated;
    return 42;
  };
  F2T_LOG(logger, sim::LogLevel::kDebug, 0, "x " << expensive());
  EXPECT_EQ(evaluated, 0);
}

TEST(TimeFormat, AdaptiveUnits) {
  EXPECT_EQ(sim::format_time(sim::micros(60)), "60us");
  EXPECT_EQ(sim::format_time(sim::millis(1)), "1000us");
  EXPECT_EQ(sim::format_time(sim::millis(272) + sim::micros(847)),
            "272.8ms");
  EXPECT_EQ(sim::format_time(sim::seconds(10)), "10s");
  EXPECT_EQ(sim::format_time(-sim::millis(50)), "-50ms");
}

TEST(PacketDescribe, MentionsKeyFields) {
  net::Packet p;
  p.src = net::Ipv4Addr(10, 11, 0, 10);
  p.dst = net::Ipv4Addr(10, 11, 4, 10);
  p.proto = net::Protocol::kTcp;
  p.sport = 1234;
  p.dport = 80;
  p.tcp.seq = 99;
  p.tcp.payload_bytes = 1448;
  const std::string s = p.describe();
  EXPECT_NE(s.find("tcp"), std::string::npos);
  EXPECT_NE(s.find("10.11.0.10:1234"), std::string::npos);
  EXPECT_NE(s.find("seq=99"), std::string::npos);
}

TEST(RouteDescribe, ShowsSourceAndHops) {
  routing::Route route{net::Prefix::parse("10.11.0.0/16"),
                       {routing::NextHop{3, net::Ipv4Addr(10, 12, 1, 1)}},
                       routing::RouteSource::kStatic};
  const std::string s = route.describe();
  EXPECT_NE(s.find("10.11.0.0/16"), std::string::npos);
  EXPECT_NE(s.find("static"), std::string::npos);
  EXPECT_NE(s.find("port3"), std::string::npos);
}

TEST(LsaDescribe, ShowsOriginAndContent) {
  routing::Lsa lsa;
  lsa.origin = net::Ipv4Addr(10, 12, 0, 1);
  lsa.sequence = 7;
  lsa.links.push_back({net::Ipv4Addr(10, 11, 0, 1), 1});
  lsa.prefixes.push_back(net::Prefix::parse("10.11.0.0/24"));
  const std::string s = lsa.describe();
  EXPECT_NE(s.find("10.12.0.1"), std::string::npos);
  EXPECT_NE(s.find("seq=7"), std::string::npos);
  EXPECT_NE(s.find("10.11.0.0/24"), std::string::npos);
  EXPECT_GT(lsa.wire_size(), 64u);
}

TEST(AddressPlan, MatchesPaperFig3d) {
  using topo::AddressPlan;
  EXPECT_EQ(AddressPlan::tor_router_id(0).str(), "10.11.0.1");
  EXPECT_EQ(AddressPlan::tor_subnet(0).str(), "10.11.0.0/24");
  EXPECT_EQ(AddressPlan::host_addr(0, 0).str(), "10.11.0.10");
  EXPECT_EQ(AddressPlan::agg_router_id(1).str(), "10.12.1.1");
  EXPECT_EQ(AddressPlan::core_router_id(0).str(), "10.13.0.1");
  EXPECT_EQ(AddressPlan::dcn_prefix().str(), "10.11.0.0/16");
  EXPECT_EQ(AddressPlan::backup_prefix(0).str(), "10.11.0.0/16");
  EXPECT_EQ(AddressPlan::backup_prefix(1).str(), "10.10.0.0/15");
  // The chain nests: each backup prefix covers the previous.
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(AddressPlan::backup_prefix(i).contains(
        AddressPlan::backup_prefix(i - 1)));
  }
}

TEST(BuiltTopology, HelpersFindStructure) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo = topo::build_f2tree(net, 8);
  auto* agg = topo.pods[2].aggs[1];
  EXPECT_EQ(topo.pod_of_agg(agg), 2);
  EXPECT_EQ(topo.index_in_pod(agg), 1);
  EXPECT_EQ(topo.pod_of_agg(topo.tors.front()), -1);
  auto* host = topo.hosts.front();
  EXPECT_EQ(topo.tor_of_host(host), topo.tors.front());
  const std::string s = topo.summary();
  EXPECT_NE(s.find("f2tree"), std::string::npos);
  EXPECT_NE(s.find("96 hosts"), std::string::npos);
}

TEST(TopologyKindNames, AllNamed) {
  EXPECT_STREQ(topo::topology_kind_name(topo::TopologyKind::kFatTree),
               "fat-tree");
  EXPECT_STREQ(topo::topology_kind_name(topo::TopologyKind::kF2Tree),
               "f2tree");
  EXPECT_STREQ(topo::topology_kind_name(topo::TopologyKind::kLeafSpine),
               "leaf-spine");
  EXPECT_STREQ(topo::topology_kind_name(topo::TopologyKind::kVl2), "vl2");
}

TEST(ConditionNames, AllNamed) {
  using failure::Condition;
  EXPECT_STREQ(failure::condition_name(Condition::kC1), "C1");
  EXPECT_STREQ(failure::condition_name(Condition::kC7), "C7");
  EXPECT_FALSE(failure::condition_requires_f2(Condition::kC5));
  EXPECT_TRUE(failure::condition_requires_f2(Condition::kC6));
}

TEST(Scalability, MonotoneAndConsistent) {
  using core::Scalability;
  // Larger switches host more nodes, and the relative F²Tree cost shrinks.
  double prev_cost = 1.0;
  for (int n = 8; n <= 128; n *= 2) {
    EXPECT_GT(Scalability::f2tree_nodes(n), 0);
    EXPECT_LT(Scalability::f2tree_nodes(n), Scalability::fat_tree_nodes(n));
    const double cost = Scalability::f2tree_node_cost_fraction(n);
    EXPECT_LT(cost, prev_cost);
    prev_cost = cost;
  }
  // Aspen at f=1 halves the nodes supported.
  EXPECT_DOUBLE_EQ(Scalability::aspen_nodes(8, 1),
                   Scalability::fat_tree_nodes(8) / 2);
}

TEST(SchedulerStats, ExecutedCount) {
  sim::Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 5u);
}

TEST(HostStack, AllocPortMonotone) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h = net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &sw);
  transport::HostStack stack(h);
  const auto p1 = stack.alloc_port();
  const auto p2 = stack.alloc_port();
  EXPECT_EQ(p2, p1 + 1);
  EXPECT_GE(p1, 49152);
}

TEST(HostStack, DuplicateUdpBindThrows) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h = net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &sw);
  transport::HostStack stack(h);
  stack.bind_udp(9000, [](const net::Packet&) {});
  EXPECT_THROW(stack.bind_udp(9000, [](const net::Packet&) {}),
               std::invalid_argument);
  stack.unbind_udp(9000);
  stack.bind_udp(9000, [](const net::Packet&) {});  // rebind OK
}

TEST(OspfCounters, DuplicateLsasIgnoredNotReflooded) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  auto* agg = bed.topo().aggs.front();
  auto* tor = bed.topo().pods[0].tors[0];
  net::Link* link = bed.network().find_link(*agg, *tor);
  bed.injector().fail_at(*link, sim::millis(10));
  bed.sim().run(sim::seconds(2));
  const auto totals = bed.total_ospf_counters();
  // Flooding over a multi-rooted tree necessarily produces duplicates;
  // they must be detected and dropped, not re-flooded forever.
  EXPECT_GT(totals.lsas_ignored, 0u);
  EXPECT_GT(totals.lsas_accepted, 0u);
  EXPECT_LT(totals.lsas_accepted + totals.lsas_ignored, 10'000u);
}

TEST(InjectorHistory, RecordsBothTransitions) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  auto* link = bed.network().links().front();
  bed.injector().fail_for(*link, sim::millis(5), sim::millis(10));
  bed.sim().run(sim::millis(30));
  ASSERT_EQ(bed.injector().history().size(), 2u);
  EXPECT_FALSE(bed.injector().history()[0].up);
  EXPECT_TRUE(bed.injector().history()[1].up);
  EXPECT_EQ(bed.injector().active_failures(), 0);
}

}  // namespace
}  // namespace f2t
