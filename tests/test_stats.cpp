#include <gtest/gtest.h>

#include <algorithm>

#include "sim/random.hpp"
#include "stats/cdf.hpp"
#include "stats/flow_metrics.hpp"
#include "stats/percentile.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace f2t::stats {
namespace {

// ------------------------------------------------------------ percentile
//
// nearest_rank_sorted is the single percentile convention shared by the
// sampler rollups and the campaign aggregates — these tests pin the edge
// behaviour both call sites depend on.

TEST(Percentile, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(nearest_rank_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted({}, 0.99), 0.0);
}

TEST(Percentile, SingleElementIsEveryPercentile) {
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(one, 0.99), 42.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(one, 1.0), 42.0);
}

TEST(Percentile, NearestRankOverHundredValues) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 1.0), 100.0);
}

TEST(Percentile, SmallSamplesClampWithoutExtrapolating) {
  // With n < 100 the p99 rank rounds up to the maximum — never past it,
  // never interpolated.
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.99), 3.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.5), 2.0);
  // p = 0 clamps the rank up to 1: the minimum, not an out-of-range read.
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 1.0), 3.0);
}

TEST(Percentile, P999SnapsExactRanksAtScale) {
  // 0.999 * 1000 is exactly 999 in IEEE arithmetic; the rank must land on
  // the 999th element, not round up to the maximum via a ceil of
  // 999.0000000000001-style noise. Same for 0.99 * 100.
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.999), 999.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.99), 990.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.50), 500.0);
}

TEST(Percentile, TinySamplesCollapseTailPercentiles) {
  // With a handful of samples p99 == p999 == max: the tail ranks all
  // round up to the last element instead of extrapolating.
  const std::vector<double> v{1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.99), 9.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 0.999), 9.0);
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(v, 1.0), 9.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(nearest_rank_sorted(one, 0.999), 7.0);
}

TEST(Percentile, FractionalRankInterpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  // Hyndman-Fan type 7: h = p * (n - 1).
  EXPECT_DOUBLE_EQ(fractional_rank_sorted(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(fractional_rank_sorted(v, 0.25), 17.5);
  EXPECT_DOUBLE_EQ(fractional_rank_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(fractional_rank_sorted(v, 1.0), 40.0);
  // Out-of-range p clamps, empty input is 0 — mirrors nearest-rank.
  EXPECT_DOUBLE_EQ(fractional_rank_sorted(v, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(fractional_rank_sorted(v, 1.5), 40.0);
  EXPECT_DOUBLE_EQ(fractional_rank_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fractional_rank_sorted({3.0}, 0.7), 3.0);
}

TEST(ThroughputMeter, BinsAndRates) {
  ThroughputMeter m(sim::millis(20));
  m.add(sim::millis(5), 1000);
  m.add(sim::millis(15), 1000);
  m.add(sim::millis(25), 500);
  const auto series = m.series(0, sim::millis(60));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].bytes, 2000u);
  EXPECT_EQ(series[1].bytes, 500u);
  EXPECT_EQ(series[2].bytes, 0u);
  EXPECT_DOUBLE_EQ(series[0].mbps, 2000 * 8.0 / (0.020 * 1e6));
  EXPECT_EQ(m.total_bytes(), 2500u);
}

TEST(ThroughputMeter, MeanRate) {
  ThroughputMeter m(sim::millis(10));
  for (int i = 0; i < 100; ++i) {
    m.add(sim::millis(i), 1250);  // 1250 B/ms = 10 Mbps
  }
  EXPECT_NEAR(m.mean_mbps(0, sim::millis(100)), 10.0, 0.01);
}

TEST(ThroughputMeter, RejectsBadInput) {
  EXPECT_THROW(ThroughputMeter(0), std::invalid_argument);
  ThroughputMeter m;
  EXPECT_THROW(m.add(-1, 10), std::invalid_argument);
}

TEST(FlowMetrics, FindsFailureGap) {
  std::vector<sim::Time> arrivals;
  for (int i = 0; i < 100; ++i) arrivals.push_back(sim::micros(100 * i));
  // Outage: 60 ms silence starting near 10 ms.
  const sim::Time resume = sim::micros(9900) + sim::millis(60);
  for (int i = 0; i < 50; ++i) {
    arrivals.push_back(resume + sim::micros(100 * i));
  }
  const auto loss = find_connectivity_loss(arrivals, sim::millis(10));
  ASSERT_TRUE(loss.has_value());
  EXPECT_EQ(loss->duration(), sim::millis(60));
}

TEST(FlowMetrics, IgnoresGapsBeforeFailure) {
  std::vector<sim::Time> arrivals{0, sim::millis(50), sim::millis(51),
                                  sim::millis(52), sim::millis(120)};
  // Gap 0->50ms is before the failure at 51ms; gap 52->120 is the one.
  const auto loss = find_connectivity_loss(arrivals, sim::millis(51));
  ASSERT_TRUE(loss.has_value());
  EXPECT_EQ(loss->gap_start, sim::millis(52));
  EXPECT_EQ(loss->gap_end, sim::millis(120));
}

TEST(FlowMetrics, NoGapReturnsNullopt) {
  std::vector<sim::Time> arrivals;
  for (int i = 0; i < 1000; ++i) arrivals.push_back(sim::micros(100 * i));
  EXPECT_FALSE(
      find_connectivity_loss(arrivals, sim::millis(10)).has_value());
}

TEST(FlowMetrics, RejectsUnsortedArrivals) {
  std::vector<sim::Time> arrivals{10, 5};
  EXPECT_THROW(find_connectivity_loss(arrivals, 0), std::invalid_argument);
}

TEST(FlowMetrics, CollapseDurationCountsLowBins) {
  ThroughputMeter m(sim::millis(20));
  // Baseline 100..380ms at ~10 Mbps.
  for (sim::Time t = 0; t < sim::millis(380); t += sim::millis(1)) {
    m.add(t, 1250);
  }
  // Collapse: nothing until 600 ms, then recovery.
  for (sim::Time t = sim::millis(600); t < sim::seconds(1);
       t += sim::millis(1)) {
    m.add(t, 1250);
  }
  const auto collapse = throughput_collapse_duration(
      m, sim::millis(100), sim::millis(380), sim::seconds(1));
  EXPECT_GE(collapse, sim::millis(200));
  EXPECT_LE(collapse, sim::millis(240));
}

TEST(FlowMetrics, PacketsLost) {
  EXPECT_EQ(packets_lost(100, 60), 40u);
  EXPECT_EQ(packets_lost(60, 100), 0u);
}

// ------------------------------------------------------------ SLO rollup

TEST(FlowMetrics, ComputeSloSplitsDeadlineMissesByWindow) {
  using sim::millis;
  std::vector<FlowSample> flows;
  // Completed before the window, met its deadline, slowdown 2.
  flows.push_back({millis(0), millis(10), 1000, millis(5), millis(20)});
  // Started in-window, completed past its deadline.
  flows.push_back({millis(120), millis(180), 1000, millis(30), millis(50)});
  // Started in-window, still open at the horizon, deadline long expired.
  flows.push_back({millis(150), sim::kNever, 1000, millis(30), millis(50)});
  // Started after the window, comfortably met its deadline, slowdown 1.
  flows.push_back({millis(300), millis(320), 1000, millis(20), millis(50)});
  // Open at the horizon with its deadline still live: proves nothing,
  // excluded from the deadline split (but counted as a flow).
  flows.push_back({millis(990), sim::kNever, 1000, millis(20), millis(50)});

  const SloSummary s =
      compute_slo(flows, millis(100), millis(200), millis(1000));
  EXPECT_EQ(s.flows, 5u);
  EXPECT_EQ(s.completed, 3u);
  // Completed FCTs sorted: 10, 20, 60 ms.
  EXPECT_DOUBLE_EQ(s.fct_ms_p50, 20.0);
  EXPECT_DOUBLE_EQ(s.fct_ms_p99, 60.0);
  EXPECT_DOUBLE_EQ(s.fct_ms_p999, 60.0);
  EXPECT_DOUBLE_EQ(s.fct_ms_max, 60.0);
  // Slowdowns sorted: 1, 2, 2 — fractional rank at p50 is the middle.
  EXPECT_DOUBLE_EQ(s.slowdown_p50, 2.0);
  EXPECT_EQ(s.deadline_flows_in_window, 2u);
  EXPECT_EQ(s.deadline_flows_out_window, 2u);
  EXPECT_DOUBLE_EQ(s.miss_in_window, 1.0);
  EXPECT_DOUBLE_EQ(s.miss_out_window, 0.0);
}

TEST(FlowMetrics, ComputeSloEmptyAndBestEffort) {
  EXPECT_EQ(compute_slo({}, 0, 0, sim::seconds(1)).flows, 0u);
  // deadline == 0 means best-effort: no deadline accounting at all.
  std::vector<FlowSample> flows;
  flows.push_back({0, sim::millis(10), 1000, sim::millis(10), 0});
  const SloSummary s = compute_slo(flows, 0, 0, sim::seconds(1));
  EXPECT_EQ(s.deadline_flows_in_window, 0u);
  EXPECT_EQ(s.deadline_flows_out_window, 0u);
  EXPECT_DOUBLE_EQ(s.miss_in_window, 0.0);
  EXPECT_DOUBLE_EQ(s.slowdown_p50, 1.0);
}

TEST(Cdf, QuantilesAndTails) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_EQ(cdf.count(), 100u);
  EXPECT_DOUBLE_EQ(cdf.min(), 1);
  EXPECT_DOUBLE_EQ(cdf.max(), 100);
  EXPECT_NEAR(cdf.quantile(0.5), 50, 1.0);
  EXPECT_NEAR(cdf.quantile(0.99), 99, 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(90), 0.10);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(90), 0.90);
  EXPECT_NEAR(cdf.mean(), 50.5, 1e-9);
}

TEST(Cdf, TailPoints) {
  Cdf cdf;
  for (int i = 1; i <= 1000; ++i) cdf.add(i);
  const auto points = cdf.tail_points(900, 10);
  ASSERT_FALSE(points.empty());
  EXPECT_GT(points.front().value, 900);
  EXPECT_DOUBLE_EQ(points.back().value, 1000);
  EXPECT_DOUBLE_EQ(points.back().cumulative, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].cumulative, points[i - 1].cumulative);
  }
}

TEST(Cdf, EmptyBehaviour) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.fraction_above(5), 0.0);
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
  EXPECT_THROW(cdf.min(), std::logic_error);
  cdf.add(1);
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
}

TEST(Table, FormatsAligned) {
  Table t({"name", "value"});
  t.row({"fat tree", "272.8"});
  t.row({"f2tree", "60.6"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| fat tree | 272.8 |"), std::string::npos);
  EXPECT_NE(s.find("| f2tree   | 60.6  |"), std::string::npos);
}

TEST(Table, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::percent(0.9625, 2), "96.25%");
}

// --------------------------------------------------- shared lognormal draws
//
// transport/background.cpp and failure/random_failures.cpp draw their
// intervals and sizes through sim::lognormal_interval / lognormal_bytes.
// The helpers must reproduce the direct draw sequence bit-for-bit —
// otherwise consolidating the call sites would silently shift every
// seeded workload and failure schedule.

TEST(LognormalHelpers, IntervalPinsDirectDrawSequence) {
  sim::Random helper(42);
  sim::Random direct(42);
  for (int i = 0; i < 64; ++i) {
    const sim::Time expected = std::max<sim::Time>(
        sim::from_seconds(direct.lognormal_median(0.05, 1.3)),
        sim::millis(1));
    EXPECT_EQ(sim::lognormal_interval(helper, 0.05, 1.3, sim::millis(1)),
              expected);
  }
}

TEST(LognormalHelpers, BytesPinsTruncateThenClampSequence) {
  sim::Random helper(7);
  sim::Random direct(7);
  const std::uint64_t lo = 1;
  const std::uint64_t hi = 1'000'000;
  for (int i = 0; i < 64; ++i) {
    const double raw = direct.lognormal_median(20e3, 1.8);
    std::uint64_t expected;
    if (!(raw >= static_cast<double>(lo))) {
      expected = lo;
    } else if (raw >= static_cast<double>(hi)) {
      expected = hi;
    } else {
      expected = static_cast<std::uint64_t>(raw);  // trunc, not round
    }
    EXPECT_EQ(sim::lognormal_bytes(helper, 20e3, 1.8, lo, hi), expected);
  }
}

TEST(TimeSeriesBasics, MeanAndDownsample) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.add(sim::millis(i), i < 50 ? 100 : 200);
  EXPECT_DOUBLE_EQ(ts.mean(0, sim::millis(50)), 100);
  EXPECT_DOUBLE_EQ(ts.mean(sim::millis(50), sim::millis(100)), 200);
  const auto ds = ts.downsample(10);
  EXPECT_LE(ds.size(), 10u);
  EXPECT_FALSE(ds.empty());
}

}  // namespace
}  // namespace f2t::stats
