#include <gtest/gtest.h>

#include <sstream>

#include "core/f2tree.hpp"
#include "core/runner.hpp"
#include "obs/sampler.hpp"

namespace f2t {
namespace {

obs::SamplerConfig config_of(sim::Time interval, std::size_t capacity) {
  obs::SamplerConfig c;
  c.interval = interval;
  c.capacity = capacity;
  return c;
}

TEST(Sampler, GaugeSnapshotsAndRateDifferentiates) {
  sim::Simulator sim(1);
  obs::TelemetrySampler sampler(sim, config_of(sim::millis(10), 64));
  double gauge_value = 3.0;
  double counter = 0.0;
  sampler.add_gauge("g", [&gauge_value] { return gauge_value; });
  // 100 units per tick over 10 ms -> 10000 units/s; scale 2 doubles it.
  sampler.add_rate("r", [&counter] { return counter; }, 2.0);
  sampler.start();

  sim.after(sim::millis(5), [&] {
    gauge_value = 7.0;
    counter = 100.0;
  });
  sim.after(sim::millis(15), [&] { counter = 250.0; });
  sim.run(sim::millis(25));
  sampler.stop();

  const auto report = sampler.report();
  EXPECT_TRUE(report.enabled);
  EXPECT_EQ(report.interval, sim::millis(10));
  ASSERT_EQ(report.series.size(), 2u);
  EXPECT_EQ(report.series[0], "g");
  EXPECT_EQ(report.series[1], "r");
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].at, sim::millis(10));
  EXPECT_DOUBLE_EQ(report.rows[0].values[0], 7.0);
  EXPECT_DOUBLE_EQ(report.rows[0].values[1], 2.0 * 100.0 / 0.010);
  EXPECT_EQ(report.rows[1].at, sim::millis(20));
  EXPECT_DOUBLE_EQ(report.rows[1].values[1], 2.0 * 150.0 / 0.010);
}

TEST(Sampler, RingKeepsMostRecentWindowAndCountsDrops) {
  sim::Simulator sim(1);
  obs::TelemetrySampler sampler(sim, config_of(sim::millis(1), 4));
  sampler.add_gauge("t", [&sim] { return sim::to_seconds(sim.now()); });
  sampler.start();
  sim.run(sim::millis(10));
  sampler.stop();

  EXPECT_EQ(sampler.ticks(), 10u);
  EXPECT_EQ(sampler.dropped_rows(), 6u);
  const auto report = sampler.report();
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.dropped_rows, 6u);
  // Chronological, and the *oldest* rows were the ones evicted.
  EXPECT_EQ(report.rows[0].at, sim::millis(7));
  EXPECT_EQ(report.rows[3].at, sim::millis(10));
}

TEST(Sampler, SourcesAreFixedAfterFirstTick) {
  sim::Simulator sim(1);
  obs::TelemetrySampler sampler(sim, config_of(sim::millis(1), 8));
  sampler.add_gauge("a", [] { return 1.0; });
  sampler.start();
  // Still allowed before any tick fired (the converge()-then-register
  // window the fluid runner uses).
  sampler.add_gauge("b", [] { return 2.0; });
  sim.run(sim::millis(2));
  EXPECT_GT(sampler.ticks(), 0u);
  EXPECT_THROW(sampler.add_gauge("late", [] { return 0.0; }),
               std::logic_error);
  EXPECT_THROW(sampler.add_rate("late", [] { return 0.0; }),
               std::logic_error);
  EXPECT_EQ(sampler.source_count(), 2u);
}

TEST(Sampler, RejectsBadConfigAndProbes) {
  sim::Simulator sim(1);
  EXPECT_THROW(obs::TelemetrySampler(sim, config_of(0, 8)),
               std::invalid_argument);
  EXPECT_THROW(obs::TelemetrySampler(sim, config_of(sim::millis(1), 0)),
               std::invalid_argument);
  obs::TelemetrySampler sampler(sim, config_of(sim::millis(1), 8));
  EXPECT_THROW(sampler.add_gauge("x", nullptr), std::invalid_argument);
}

TEST(Sampler, RollupsArePerSeriesPercentiles) {
  obs::SamplerReport report;
  report.enabled = true;
  report.series = {"a", "b"};
  for (int i = 1; i <= 100; ++i) {
    obs::SamplerReport::Row row;
    row.at = sim::millis(i);
    row.values = {static_cast<double>(i), 5.0};
    report.rows.push_back(row);
  }
  const auto rolled = report.rollups();
  ASSERT_EQ(rolled.size(), 2u);
  EXPECT_DOUBLE_EQ(rolled[0].p50, 50.0);
  EXPECT_DOUBLE_EQ(rolled[0].p99, 99.0);
  EXPECT_DOUBLE_EQ(rolled[0].max, 100.0);
  EXPECT_DOUBLE_EQ(rolled[1].p50, 5.0);
  EXPECT_DOUBLE_EQ(rolled[1].max, 5.0);
  const auto a = report.rollup_of("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->p99, 99.0);
  // A series that was never registered is *absent*, not an all-zero
  // rollup — callers can tell a typo'd name from a quiet network.
  EXPECT_FALSE(report.rollup_of("missing").has_value());
  obs::SamplerReport empty;
  empty.series = {"a"};
  EXPECT_FALSE(empty.rollup_of("a").has_value());
}

TEST(Sampler, JsonlIsSchemaVersionedWithRollupTrailer) {
  obs::SamplerReport report;
  report.enabled = true;
  report.interval = sim::millis(10);
  report.series = {"x"};
  obs::SamplerReport::Row row;
  row.at = sim::millis(10);
  row.values = {1.5};
  report.rows.push_back(row);
  report.dropped_rows = 2;

  std::ostringstream os;
  report.write_jsonl(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"stream\": \"f2t-samples\""), std::string::npos);
  EXPECT_NE(text.find("\"interval_ns\": 10000000"), std::string::npos);
  EXPECT_NE(text.find("\"dropped_rows\": 2"), std::string::npos);
  EXPECT_NE(text.find("{\"at\": 10000000, \"v\": [1.5]}"),
            std::string::npos);
  EXPECT_NE(text.find("\"rollups\""), std::string::npos);
  // Header + one row + rollup trailer.
  std::size_t lines = 0;
  for (const char ch : text) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

// ------------------------------------------------------------ integration

TEST(Sampler, TestbedRunCollectsNetworkTelemetry) {
  core::RunKnobs knobs;
  knobs.config.sample_interval = sim::millis(5);
  const auto builder = core::topology_builder("f2", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  // Sampling works without metrics observe: the sampler is its own
  // subsystem.
  EXPECT_FALSE(r.observation.enabled);
  ASSERT_TRUE(r.observation.samples.enabled);
  const auto& samples = r.observation.samples;
  EXPECT_EQ(samples.interval, sim::millis(5));
  EXPECT_FALSE(samples.rows.empty());
  // The standard telemetry set is registered: per-link series plus the
  // network-wide aggregates.
  bool saw_link = false;
  bool saw_net = false;
  bool saw_sim = false;
  for (const auto& name : samples.series) {
    if (name.rfind("link", 0) == 0) saw_link = true;
    if (name == "net.queue_depth") saw_net = true;
    if (name == "sim.event_rate") saw_sim = true;
  }
  EXPECT_TRUE(saw_link);
  EXPECT_TRUE(saw_net);
  EXPECT_TRUE(saw_sim);
  // A C1 run executes events, so the engine rate rolls up above zero.
  const auto rate = samples.rollup_of("sim.event_rate");
  ASSERT_TRUE(rate.has_value());
  EXPECT_GT(rate->max, 0.0);
  // Rows are fixed-width and chronological.
  for (std::size_t i = 0; i < samples.rows.size(); ++i) {
    EXPECT_EQ(samples.rows[i].values.size(), samples.series.size());
    if (i > 0) {
      EXPECT_GT(samples.rows[i].at, samples.rows[i - 1].at);
    }
  }
}

TEST(Sampler, DisabledByDefaultAddsNothing) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  EXPECT_FALSE(bed.sampling());
  EXPECT_THROW(bed.sampler(), std::logic_error);
}

TEST(EngineProfile, CalendarQueueStatsAreCaptured) {
  core::RunKnobs knobs;
  const auto builder = core::topology_builder("f2", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  // The calendar self-profile is filled even without observe: it is a
  // by-product of the run, not a hook.
  EXPECT_GT(r.observation.profile.queue.bucket_count, 0u);
  EXPECT_GT(r.observation.profile.queue.max_bucket_depth, 0u);
  EXPECT_GE(r.observation.profile.setup_wall_seconds, 0.0);
}

}  // namespace
}  // namespace f2t
