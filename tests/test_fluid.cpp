#include <gtest/gtest.h>

#include <stdexcept>

#include "core/runner.hpp"
#include "transport/fluid.hpp"

namespace f2t {
namespace {

// ---------------------------------------------------------------------------
// FluidFlowTable: max-min water-filling over directed channels.

TEST(FluidFlowTable, SingleFlowTakesBottleneck) {
  transport::FluidFlowTable table(4, 10e9);
  table.set_capacity(2, 1e9);
  const auto f = table.add_flow({0, 2, 3});
  EXPECT_DOUBLE_EQ(table.rate_of(f), 1e9);
}

TEST(FluidFlowTable, DemandCeilingCaps) {
  transport::FluidFlowTable table(2, 10e9);
  const auto f = table.add_flow({0}, 50e6);
  EXPECT_DOUBLE_EQ(table.rate_of(f), 50e6);
}

TEST(FluidFlowTable, ClassicMaxMinSplit) {
  // Two flows share channel 0 (cap 10); one continues onto channel 1
  // (cap 3). Max-min: the constrained flow gets 3, the other fills the
  // remaining 7.
  transport::FluidFlowTable table(2, 10.0);
  table.set_capacity(1, 3.0);
  const auto a = table.add_flow({0, 1});
  const auto b = table.add_flow({0});
  EXPECT_DOUBLE_EQ(table.rate_of(a), 3.0);
  EXPECT_DOUBLE_EQ(table.rate_of(b), 7.0);
}

TEST(FluidFlowTable, EqualSplitOnSharedChannel) {
  transport::FluidFlowTable table(1, 9.0);
  const auto a = table.add_flow({0});
  const auto b = table.add_flow({0});
  const auto c = table.add_flow({0});
  EXPECT_DOUBLE_EQ(table.rate_of(a), 3.0);
  EXPECT_DOUBLE_EQ(table.rate_of(b), 3.0);
  EXPECT_DOUBLE_EQ(table.rate_of(c), 3.0);
}

TEST(FluidFlowTable, EmptyPathMeansUnrouted) {
  transport::FluidFlowTable table(2, 10.0);
  const auto f = table.add_flow({});
  EXPECT_DOUBLE_EQ(table.rate_of(f), 0.0);
  table.set_path(f, {1});
  EXPECT_DOUBLE_EQ(table.rate_of(f), 10.0);
}

TEST(FluidFlowTable, RemoveReleasesCapacity) {
  transport::FluidFlowTable table(1, 8.0);
  const auto a = table.add_flow({0});
  const auto b = table.add_flow({0});
  EXPECT_DOUBLE_EQ(table.rate_of(a), 4.0);
  table.remove_flow(b);
  EXPECT_DOUBLE_EQ(table.rate_of(a), 8.0);
  EXPECT_EQ(table.flow_count(), 1u);
}

TEST(FluidFlowTable, SolvesAreLazy) {
  transport::FluidFlowTable table(1, 8.0);
  const auto a = table.add_flow({0});
  table.set_demand(a, 2.0);
  table.set_demand(a, 4.0);
  EXPECT_EQ(table.solve_count(), 0u);  // nothing queried yet
  EXPECT_DOUBLE_EQ(table.rate_of(a), 4.0);
  EXPECT_DOUBLE_EQ(table.rate_of(a), 4.0);
  EXPECT_EQ(table.solve_count(), 1u);  // clean queries don't re-solve
}

// ---------------------------------------------------------------------------
// Fluid runner restrictions: per-packet physics must refuse loudly.

core::RunKnobs flow_knobs() {
  core::RunKnobs knobs;
  knobs.fidelity = core::Fidelity::kFlow;
  knobs.horizon = sim::millis(900);
  return knobs;
}

TEST(FluidRunner, RefusesGrayFaults) {
  auto knobs = flow_knobs();
  knobs.fault.kind = failure::FaultKind::kGray;
  knobs.fault.gray_loss = 0.5;
  const auto builder = core::topology_builder("f2", 8);
  EXPECT_THROW(
      core::run_udp_condition(builder, failure::Condition::kC1, knobs),
      std::invalid_argument);
}

TEST(FluidRunner, RefusesProbeDetection) {
  auto knobs = flow_knobs();
  knobs.config.detection.mode = routing::DetectionMode::kProbe;
  const auto builder = core::topology_builder("f2", 8);
  EXPECT_THROW(
      core::run_udp_condition(builder, failure::Condition::kC1, knobs),
      std::invalid_argument);
}

TEST(FluidRunner, RefusesTcp) {
  auto knobs = flow_knobs();
  const auto builder = core::topology_builder("f2", 8);
  EXPECT_THROW(
      core::run_tcp_condition(builder, failure::Condition::kC1, knobs),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FluidProbe end-to-end sanity (exhaustive window equality lives in
// test_fidelity_property.cpp).

TEST(FluidRunner, NoFailureDeliversEverySend) {
  // Push the fault past the horizon: the probe sees one unbroken regime
  // and every send must arrive, exactly as in packet mode.
  core::RunKnobs knobs;
  knobs.horizon = sim::millis(700);
  knobs.fail_at = sim::seconds(30);
  knobs.config.control_plane = core::ControlPlane::kCentral;
  const auto builder = core::topology_builder("f2", 8);

  auto packet = core::run_udp_condition(builder, failure::Condition::kC1,
                                        knobs);
  knobs.fidelity = core::Fidelity::kFlow;
  auto flow = core::run_udp_condition(builder, failure::Condition::kC1, knobs);

  ASSERT_TRUE(packet.ok);
  ASSERT_TRUE(flow.ok);
  EXPECT_EQ(flow.packets_sent, packet.packets_sent);
  EXPECT_EQ(flow.packets_lost, 0u);
  EXPECT_EQ(packet.packets_lost, 0u);
  EXPECT_EQ(flow.connectivity_loss, packet.connectivity_loss);
  // Delivered series agree point-for-point.
  ASSERT_EQ(flow.delay_series.points().size(),
            packet.delay_series.points().size());
  for (std::size_t i = 0; i < flow.delay_series.points().size(); ++i) {
    EXPECT_EQ(flow.delay_series.points()[i].at,
              packet.delay_series.points()[i].at);
    EXPECT_DOUBLE_EQ(flow.delay_series.points()[i].value,
                     packet.delay_series.points()[i].value);
  }
}

TEST(FluidRunner, FlowModeExecutesFarFewerEvents) {
  core::RunKnobs knobs;
  knobs.horizon = sim::millis(900);
  knobs.config.control_plane = core::ControlPlane::kCentral;
  const auto builder = core::topology_builder("f2", 8);

  const auto packet =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  knobs.fidelity = core::Fidelity::kFlow;
  const auto flow =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(packet.ok);
  ASSERT_TRUE(flow.ok);
  // The whole point: no per-packet events on the fluid path.
  EXPECT_LT(flow.observation.profile.events_executed * 10,
            packet.observation.profile.events_executed);
}

}  // namespace
}  // namespace f2t
