#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/f2tree.hpp"
#include "core/runner.hpp"
#include "net/trace.hpp"
#include "obs/attach.hpp"
#include "obs/timeline.hpp"

namespace f2t {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("a.count");
  c.inc();
  c.inc(4);
  registry.gauge("a.gauge").set(2.5);
  obs::Histogram& h = registry.histogram("a.hist", {1, 10, 100});
  h.observe(0.5);
  h.observe(50);
  h.observe(1e6);  // overflow bucket

  const auto snap = registry.snapshot(sim::millis(7));
  EXPECT_EQ(snap.at, sim::millis(7));
  EXPECT_DOUBLE_EQ(snap.value_of("a.count"), 5.0);
  EXPECT_DOUBLE_EQ(snap.value_of("a.gauge"), 2.5);
  EXPECT_DOUBLE_EQ(snap.value_of("missing"), -1.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 3u);
  ASSERT_EQ(snap.histograms[0].counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.histograms[0].counts[0], 1u);
  EXPECT_EQ(snap.histograms[0].counts[2], 1u);
  EXPECT_EQ(snap.histograms[0].counts[3], 1u);
}

TEST(Metrics, SameNameSameKindIsShared) {
  obs::MetricsRegistry registry;
  registry.counter("shared").inc();
  registry.counter("shared").inc();
  EXPECT_EQ(registry.counter("shared").value(), 2u);
  // Same name, different kind: loud failure, not silent shadowing.
  EXPECT_THROW(registry.gauge("shared"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("shared", {1.0}), std::invalid_argument);
}

TEST(Metrics, ProbesAreSampledAtSnapshotTime) {
  obs::MetricsRegistry registry;
  double source = 1;
  registry.register_probe("probe", [&source] { return source; });
  source = 42;
  const auto snap = registry.snapshot(0);
  EXPECT_DOUBLE_EQ(snap.value_of("probe"), 42.0);
}

TEST(Metrics, JsonIsSchemaVersioned) {
  obs::MetricsRegistry registry;
  registry.counter("x").inc();
  registry.histogram("h", {1}).observe(2);
  std::ostringstream os;
  registry.snapshot(sim::millis(3)).write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"at_ns\": 3000000"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"x\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------- journal

TEST(Journal, RecordsAndSerializesJsonl) {
  obs::EventJournal journal;
  obs::Event down;
  down.at = sim::millis(10);
  down.type = obs::EventType::kLinkDown;
  down.link = 3;
  journal.record(down);
  obs::Event drop;
  drop.at = sim::millis(11);
  drop.type = obs::EventType::kPacketDrop;
  drop.reason = obs::DropReason::kLinkDown;
  drop.proto = static_cast<std::uint8_t>(net::Protocol::kUdp);
  drop.uid = 99;
  journal.record(drop);

  std::ostringstream os;
  journal.write_jsonl(os);
  const std::string text = os.str();
  // Header line + one line per event.
  EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"stream\": \"f2t-events\""), std::string::npos);
  EXPECT_NE(text.find("\"events\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"link_down\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\": \"link_down\""), std::string::npos);
  std::size_t lines = 0;
  for (const char ch : text) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);

  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
}

TEST(Journal, BoundedCapacityDropsAndCounts) {
  obs::EventJournal journal;
  EXPECT_EQ(journal.capacity(), obs::EventJournal::kDefaultCapacity);
  journal.set_capacity(2);
  obs::Event e;
  e.type = obs::EventType::kPacketDelivered;
  for (int i = 0; i < 5; ++i) {
    e.at = sim::millis(i);
    journal.record(e);
  }
  // The earliest records are kept (the ones the timeline needs), the
  // overflow is counted instead of silently truncated.
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.dropped(), 3u);
  EXPECT_EQ(journal.events().back().at, sim::millis(1));

  std::ostringstream os;
  journal.write_jsonl(os);
  EXPECT_NE(os.str().find("\"dropped\": 3"), std::string::npos);

  // An unbounded-in-practice journal never emits the key: pre-existing
  // artifacts stay byte-identical.
  obs::EventJournal calm;
  calm.record(e);
  std::ostringstream os2;
  calm.write_jsonl(os2);
  EXPECT_EQ(os2.str().find("\"dropped\""), std::string::npos);

  journal.clear();
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(Journal, EveryEventTypeHasADistinctName) {
  // Guard for new EventType values: event_type_name must cover the whole
  // enum with unique, non-placeholder names (the JSONL schema keys on
  // them). Fails when someone appends a type without a name, or forgets
  // to bump kEventTypeCount.
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    const char* name =
        obs::event_type_name(static_cast<obs::EventType>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "EventType value " << i << " lacks a name";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate event_type_name: " << name;
  }
  EXPECT_EQ(names.size(), obs::kEventTypeCount);
}

// --------------------------------------------------------------- timeline

TEST(Timeline, DerivesMilestonesFromSyntheticJournal) {
  std::vector<obs::Event> events;
  auto push = [&events](sim::Time at, obs::EventType type) {
    obs::Event e;
    e.at = at;
    e.type = type;
    events.push_back(e);
  };
  // Steady deliveries every 1 ms, failure at 100 ms, gap until 160 ms.
  for (sim::Time t = sim::millis(1); t <= sim::millis(100);
       t += sim::millis(1)) {
    obs::Event e;
    e.at = t;
    e.type = obs::EventType::kPacketDelivered;
    e.proto = static_cast<std::uint8_t>(net::Protocol::kUdp);
    events.push_back(e);
  }
  push(sim::millis(100), obs::EventType::kLinkDown);
  events.back().link = 7;
  // Two data drops inside the gap, one control drop (must not count).
  obs::Event d;
  d.at = sim::millis(105);
  d.type = obs::EventType::kPacketDrop;
  d.proto = static_cast<std::uint8_t>(net::Protocol::kUdp);
  events.push_back(d);
  d.at = sim::millis(110);
  events.push_back(d);
  d.at = sim::millis(112);
  d.proto = static_cast<std::uint8_t>(net::Protocol::kRouting);
  events.push_back(d);
  push(sim::millis(160), obs::EventType::kPortDetectedDown);
  push(sim::millis(161), obs::EventType::kBackupActivated);
  push(sim::millis(360), obs::EventType::kSpfRun);
  push(sim::millis(370), obs::EventType::kFibInstall);
  for (sim::Time t = sim::millis(162); t <= sim::millis(400);
       t += sim::millis(1)) {
    obs::Event e;
    e.at = t;
    e.type = obs::EventType::kPacketDelivered;
    e.proto = static_cast<std::uint8_t>(net::Protocol::kUdp);
    events.push_back(e);
  }

  const obs::RecoveryTimeline timeline(events);
  ASSERT_EQ(timeline.failures().size(), 1u);
  const auto& f = timeline.failures()[0];
  EXPECT_EQ(f.failed_at, sim::millis(100));
  ASSERT_EQ(f.links.size(), 1u);
  EXPECT_EQ(f.links[0], 7);
  EXPECT_EQ(f.time_to_detect(), sim::millis(60));
  EXPECT_EQ(f.backup_at, sim::millis(161));
  EXPECT_EQ(f.gap_start, sim::millis(100));
  EXPECT_EQ(f.gap_end, sim::millis(162));
  EXPECT_EQ(f.gap(), sim::millis(62));
  EXPECT_EQ(f.converged_at, sim::millis(370));
  EXPECT_EQ(f.packets_lost, 2u);  // routing drop excluded
  EXPECT_EQ(timeline.total_data_drops(), 2u);

  std::ostringstream os;
  timeline.print(os);
  EXPECT_NE(os.str().find("failure #1"), std::string::npos);
}

TEST(Timeline, GroupsSimultaneousLinkCutsIntoOneEpisode) {
  std::vector<obs::Event> events;
  for (int link = 0; link < 3; ++link) {
    obs::Event e;
    e.at = sim::millis(50);
    e.type = obs::EventType::kLinkDown;
    e.link = link;
    events.push_back(e);
  }
  const obs::RecoveryTimeline timeline(events);
  ASSERT_EQ(timeline.failures().size(), 1u);
  EXPECT_EQ(timeline.failures()[0].links.size(), 3u);
  EXPECT_FALSE(timeline.failures()[0].detected());
  EXPECT_FALSE(timeline.failures()[0].rerouted());
}

// -------------------------------------------------------------- multi-tap

TEST(ForwardTaps, MultipleTapsCoexist) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 0, 0, 2));
  net.connect(a, b);
  a.fib().install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                                 {routing::NextHop{0, b.router_id()}},
                                 routing::RouteSource::kStatic});
  int first = 0;
  int second = 0;
  a.add_forward_tap(
      [&first](const net::Packet&, net::PortId, net::PortId) { ++first; });
  a.add_forward_tap(
      [&second](const net::Packet&, net::PortId, net::PortId) { ++second; });
  EXPECT_EQ(a.forward_tap_count(), 2u);

  net::Packet p;
  p.dst = net::Ipv4Addr(10, 11, 0, 1);
  p.size_bytes = 100;
  EXPECT_TRUE(a.forward(p));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);

  // The legacy single-tap setter replaces every tap (compatibility shim).
  a.set_forward_tap(
      [&first](const net::Packet&, net::PortId, net::PortId) { ++first; });
  EXPECT_EQ(a.forward_tap_count(), 1u);
  EXPECT_TRUE(a.forward(p));
  EXPECT_EQ(first, 2);
  EXPECT_EQ(second, 1);
}

TEST(ForwardTaps, TracerAndJournalCoexist) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 0, 0, 2));
  net.connect(a, b);
  a.fib().install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                                 {routing::NextHop{0, b.router_id()}},
                                 routing::RouteSource::kStatic});
  net::PacketTracer tracer(net);
  obs::EventJournal journal;
  obs::attach_journal(sim, net, journal);

  net::Packet p;
  p.uid = 77;
  p.dst = net::Ipv4Addr(10, 11, 0, 1);
  p.size_bytes = 100;
  EXPECT_TRUE(a.forward(p));
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(tracer.hops_of(77).size(), 1u);
}

// -------------------------------------------------------------- log level

TEST(Logging, ParseLevelRoundTrip) {
  using sim::LogLevel;
  using sim::Logger;
  EXPECT_EQ(Logger::parse_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(Logger::parse_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parse_level("info"), LogLevel::kInfo);
  EXPECT_EQ(Logger::parse_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(Logger::parse_level("error"), LogLevel::kError);
  EXPECT_EQ(Logger::parse_level("off"), LogLevel::kOff);
  EXPECT_EQ(Logger::parse_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(Logger::parse_level("bogus"), std::nullopt);
  EXPECT_EQ(Logger::parse_level(""), std::nullopt);
}

// ------------------------------------------------------------ integration

TEST(Observability, DisabledByDefaultMeansNoHooks) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  EXPECT_FALSE(bed.observing());
  EXPECT_THROW(bed.obs(), std::logic_error);
  for (net::L3Switch* sw : bed.network().switches()) {
    EXPECT_EQ(sw->forward_tap_count(), 0u);
  }
}

TEST(Observability, TimelineMatchesConnectivityLossMeasurement) {
  // The acceptance gate of this subsystem: the journal-derived recovery
  // timeline must reproduce the paper's probe-based gap measurement for
  // the same run — same gap duration, same packets lost — and report a
  // detection time equal to the configured 60 ms detection delay.
  core::RunKnobs knobs;
  knobs.config.observe = true;
  const auto builder = core::topology_builder("f2", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.observation.enabled);
  ASSERT_FALSE(r.observation.events.empty());

  const obs::RecoveryTimeline timeline(r.observation.events);
  ASSERT_EQ(timeline.failures().size(), 1u);
  const auto& f = timeline.failures()[0];
  EXPECT_EQ(f.failed_at, knobs.fail_at);
  ASSERT_TRUE(f.rerouted());
  // Identical by construction: both run find_connectivity_loss over the
  // same delivery instants.
  EXPECT_EQ(f.gap(), r.connectivity_loss);
  EXPECT_EQ(f.packets_lost, r.packets_lost);
  ASSERT_TRUE(f.detected());
  EXPECT_EQ(f.time_to_detect(), knobs.config.detection.down_delay);
  // F²Tree fast reroute: the backup activates right after detection and
  // well before the control plane converges.
  ASSERT_GE(f.backup_at, f.detected_at);
  ASSERT_TRUE(f.converged());
  EXPECT_GT(f.converged_at, f.backup_at);

  // Engine profile and metrics are filled in.
  EXPECT_GT(r.observation.profile.events_executed, 0u);
  EXPECT_GT(r.observation.profile.sim_seconds, 0.0);
  EXPECT_GT(r.observation.metrics.value_of("net.forwarded"), 0.0);
  EXPECT_GT(r.observation.metrics.value_of("sim.events_executed"), 0.0);
  EXPECT_GT(r.observation.metrics.value_of("detection.detections_fired"),
            0.0);
  EXPECT_GT(r.observation.metrics.value_of("ospf.spf_runs"), 0.0);
  EXPECT_GE(r.observation.metrics.value_of("link.dropped_down"),
            static_cast<double>(f.packets_lost));
  ASSERT_FALSE(r.observation.metrics.histograms.empty());
}

TEST(Observability, JournalOverflowSurfacesAsMetric) {
  // A deliberately tiny journal on a packet run overflows; the overflow
  // is visible as the journal.dropped_events probe instead of vanishing.
  core::RunKnobs knobs;
  knobs.config.observe = true;
  knobs.config.journal_capacity = 64;
  const auto builder = core::topology_builder("f2", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.observation.events.size(), 64u);
  EXPECT_GT(r.observation.metrics.value_of("journal.dropped_events"), 0.0);
}

TEST(Observability, JournalCoversControlPlaneMilestones) {
  core::RunKnobs knobs;
  knobs.config.observe = true;
  const auto builder = core::topology_builder("fat", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  bool saw_lsa = false;
  bool saw_spf = false;
  bool saw_fib = false;
  bool saw_detect = false;
  for (const obs::Event& e : r.observation.events) {
    switch (e.type) {
      case obs::EventType::kLsaOriginated: saw_lsa = true; break;
      case obs::EventType::kSpfRun: saw_spf = true; break;
      case obs::EventType::kFibInstall: saw_fib = true; break;
      case obs::EventType::kPortDetectedDown: saw_detect = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_lsa);
  EXPECT_TRUE(saw_spf);
  EXPECT_TRUE(saw_fib);
  EXPECT_TRUE(saw_detect);
}

TEST(Observability, CentralControllerPushIsJournaled) {
  core::RunKnobs knobs;
  knobs.config.observe = true;
  knobs.config.control_plane = core::ControlPlane::kCentral;
  const auto builder = core::topology_builder("fat", 4);
  const auto r =
      core::run_udp_condition(builder, failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  bool saw_push = false;
  for (const obs::Event& e : r.observation.events) {
    if (e.type == obs::EventType::kControllerPush) saw_push = true;
  }
  EXPECT_TRUE(saw_push);
  const obs::RecoveryTimeline timeline(r.observation.events);
  ASSERT_EQ(timeline.failures().size(), 1u);
  EXPECT_TRUE(timeline.failures()[0].converged());
}

}  // namespace
}  // namespace f2t
