#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t {
namespace {

using failure::RandomFailureGenerator;
using failure::RandomFailureOptions;

/// Small switch-only mesh: enough candidate links for the generator, no
/// hosts or control plane needed to exercise its scheduling logic.
struct Mesh {
  sim::Simulator sim{1};
  net::Network net{sim};
  failure::FailureInjector injector{net};

  Mesh() {
    std::vector<net::L3Switch*> switches;
    for (int i = 0; i < 4; ++i) {
      switches.push_back(&net.add_switch(
          "s" + std::to_string(i),
          net::Ipv4Addr(10, 12, static_cast<std::uint8_t>(i), 1)));
    }
    for (std::size_t i = 0; i < switches.size(); ++i) {
      for (std::size_t j = i + 1; j < switches.size(); ++j) {
        net.connect_default(*switches[i], *switches[j]);
      }
    }
  }
};

TEST(RandomFailures, MaxConcurrentCapSuppressesExcessFailures) {
  Mesh mesh;
  RandomFailureOptions opts;
  opts.interarrival_median_s = 0.05;  // dense arrivals...
  opts.interarrival_sigma = 0.3;
  opts.duration_median_s = 30.0;  // ...against wont-recover failures
  opts.duration_sigma = 0.1;
  opts.max_concurrent = 1;
  opts.start = sim::millis(10);
  opts.stop = sim::seconds(5);
  RandomFailureGenerator gen(mesh.injector, sim::Random(11), opts);
  gen.start();
  mesh.sim.run(sim::seconds(6));

  // The first failure lasts ~30 s, so exactly one can ever be active and
  // every later arrival in the 5 s window hits the concurrency cap.
  EXPECT_EQ(gen.failures_injected(), 1);
  EXPECT_GT(gen.failures_suppressed(), 10);
  EXPECT_EQ(mesh.injector.active_failures(), 1);
}

TEST(RandomFailures, HigherCapAdmitsMoreConcurrentFailures) {
  RandomFailureOptions opts;
  opts.interarrival_median_s = 0.05;
  opts.interarrival_sigma = 0.3;
  opts.duration_median_s = 30.0;
  opts.duration_sigma = 0.1;
  opts.max_concurrent = 3;
  opts.start = sim::millis(10);
  opts.stop = sim::seconds(5);
  Mesh mesh;
  RandomFailureGenerator gen(mesh.injector, sim::Random(11), opts);
  gen.start();
  mesh.sim.run(sim::seconds(6));
  EXPECT_EQ(gen.failures_injected(), 3);
  EXPECT_EQ(mesh.injector.active_failures(), 3);
}

TEST(RandomFailures, StopTimeBoundsTheProcess) {
  Mesh mesh;
  RandomFailureOptions opts;
  opts.interarrival_median_s = 0.2;
  opts.interarrival_sigma = 0.3;
  opts.duration_median_s = 0.2;
  opts.duration_sigma = 0.3;
  opts.max_concurrent = 8;
  opts.start = sim::millis(10);
  opts.stop = sim::seconds(2);
  RandomFailureGenerator gen(mesh.injector, sim::Random(5), opts);
  gen.start();
  mesh.sim.run(sim::seconds(2));
  const int at_stop = gen.failures_injected();
  EXPECT_GT(at_stop, 0);

  // Past `stop` the process injects nothing more — the chain terminates
  // at the first scheduling tick at or after the boundary.
  mesh.sim.run(sim::seconds(30));
  EXPECT_EQ(gen.failures_injected(), at_stop);
  // Outstanding recoveries still drain: no failure outlives its duration.
  EXPECT_EQ(mesh.injector.active_failures(), 0);
}

TEST(RandomFailures, StartAtStopInjectsNothing) {
  Mesh mesh;
  RandomFailureOptions opts;
  opts.start = sim::seconds(2);
  opts.stop = sim::seconds(2);
  RandomFailureGenerator gen(mesh.injector, sim::Random(1), opts);
  gen.start();
  mesh.sim.run(sim::seconds(10));
  EXPECT_EQ(gen.failures_injected(), 0);
  EXPECT_EQ(gen.failures_suppressed(), 0);
}

TEST(RandomFailures, ThrowsWithoutSwitchLinks) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("s", net::Ipv4Addr(10, 12, 0, 1));
  net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &sw);
  failure::FailureInjector injector(net);
  EXPECT_THROW(
      RandomFailureGenerator(injector, sim::Random(1), RandomFailureOptions{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace f2t
