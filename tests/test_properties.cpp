#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "routing/ecmp.hpp"

namespace f2t {
namespace {

/// Parameterised over every topology family the library builds.
struct TopoCase {
  const char* name;
  core::Testbed::TopoBuilder builder;
};

class AllTopologies : public ::testing::TestWithParam<TopoCase> {};

TEST_P(AllTopologies, ValidatesAndConverges) {
  core::Testbed bed(GetParam().builder);
  bed.converge();
  EXPECT_TRUE(topo::validate_topology(bed.topo()).empty());
}

TEST_P(AllTopologies, AllHostPairsReachableAfterConvergence) {
  core::Testbed bed(GetParam().builder);
  bed.converge();
  const auto& hosts = bed.topo().hosts;
  int checked = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    // Check each host against a handful of others (full cross product is
    // redundant: LPM+ECMP is destination/flow-based).
    for (const std::size_t delta :
         {std::size_t{1}, std::size_t{7}, hosts.size() / 2}) {
      const std::size_t j = (i + delta) % hosts.size();
      if (i == j) continue;
      net::Packet probe;
      probe.src = hosts[i]->addr();
      probe.dst = hosts[j]->addr();
      probe.sport = static_cast<std::uint16_t>(1000 + i);
      const auto path = failure::trace_route(*hosts[i], *hosts[j], probe);
      ASSERT_FALSE(path.empty())
          << hosts[i]->name() << " -> " << hosts[j]->name();
      EXPECT_EQ(path.back(), hosts[j]);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_P(AllTopologies, ReconvergesAroundEverySampledSingleLinkFailure) {
  // Property: for a sample of single link failures, once the control
  // plane reconverges, every host pair is reachable again (multi-rooted
  // trees stay physically connected under any single failure that is not
  // a host uplink).
  core::Testbed bed(GetParam().builder);
  bed.converge();
  auto links = bed.network().links();
  std::vector<net::Link*> switch_links;
  for (auto* link : links) {
    if (dynamic_cast<net::L3Switch*>(link->end_a().node) != nullptr &&
        dynamic_cast<net::L3Switch*>(link->end_b().node) != nullptr) {
      switch_links.push_back(link);
    }
  }
  ASSERT_FALSE(switch_links.empty());
  sim::Random rng(42);
  sim::Time when = sim::millis(10);
  std::vector<net::Link*> sample;
  for (int k = 0; k < 5; ++k) {
    sample.push_back(switch_links[rng.index(switch_links.size())]);
  }
  for (net::Link* link : sample) {
    bed.injector().fail_at(*link, when);
    // SPF backoff grows under churn; leave generous convergence time.
    when += sim::seconds(30);
    const sim::Time check_at = when - sim::seconds(1);
    bed.sim().run(check_at);
    const auto& hosts = bed.topo().hosts;
    for (std::size_t i = 0; i < hosts.size(); i += 3) {
      const std::size_t j = (i + hosts.size() / 2 + 1) % hosts.size();
      if (i == j) continue;
      net::Packet probe;
      probe.src = hosts[i]->addr();
      probe.dst = hosts[j]->addr();
      probe.sport = static_cast<std::uint16_t>(2000 + i);
      const auto path = failure::trace_route(*hosts[i], *hosts[j], probe);
      ASSERT_FALSE(path.empty())
          << GetParam().name << ": " << hosts[i]->name() << " -> "
          << hosts[j]->name() << " after failing "
          << link->end_a().node->name() << "<->"
          << link->end_b().node->name();
    }
    bed.injector().recover_at(*link, when - sim::millis(500));
    bed.sim().run(when);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, AllTopologies,
    ::testing::Values(
        TopoCase{"fat4",
                 [](net::Network& n) {
                   return topo::build_fat_tree(
                       n, topo::FatTreeOptions{.ports = 4});
                 }},
        TopoCase{"fat8",
                 [](net::Network& n) {
                   return topo::build_fat_tree(
                       n, topo::FatTreeOptions{.ports = 8});
                 }},
        TopoCase{"f2_4",
                 [](net::Network& n) { return topo::build_f2tree(n, 4); }},
        TopoCase{"f2_8",
                 [](net::Network& n) { return topo::build_f2tree(n, 8); }},
        TopoCase{"f2_8_ring4",
                 [](net::Network& n) { return topo::build_f2tree(n, 8, 4); }},
        TopoCase{"f2_scaled6",
                 [](net::Network& n) {
                   return topo::build_f2tree_scaled(
                       n, topo::F2TreeScaledOptions{6, -1});
                 }},
        TopoCase{"f2_scaled8",
                 [](net::Network& n) {
                   return topo::build_f2tree_scaled(
                       n, topo::F2TreeScaledOptions{8, -1});
                 }},
        TopoCase{"leafspine8",
                 [](net::Network& n) {
                   return topo::build_leaf_spine(
                       n, topo::LeafSpineOptions{.ports = 8});
                 }},
        TopoCase{"leafspine8_f2",
                 [](net::Network& n) {
                   return topo::build_leaf_spine(
                       n,
                       topo::LeafSpineOptions{.ports = 8, .f2_rewire = true});
                 }},
        TopoCase{"vl2_8",
                 [](net::Network& n) {
                   return topo::build_vl2(n, topo::Vl2Options{.ports = 8});
                 }},
        TopoCase{"vl2_8_f2",
                 [](net::Network& n) {
                   return topo::build_vl2(
                       n, topo::Vl2Options{.ports = 8, .f2_rewire = true});
                 }}),
    [](const ::testing::TestParamInfo<TopoCase>& info) {
      return info.param.name;
    });

/// ECMP distribution property: over many flows, every equal-cost member
/// carries a reasonable share.
TEST(EcmpProperty, HashSpreadsEvenly) {
  net::Packet p;
  p.src = net::Ipv4Addr(10, 11, 0, 10);
  p.dst = net::Ipv4Addr(10, 11, 9, 10);
  std::array<int, 4> buckets{};
  for (int sport = 0; sport < 4000; ++sport) {
    p.sport = static_cast<std::uint16_t>(sport);
    buckets[routing::ecmp_select(p, 99, buckets.size())]++;
  }
  for (const int count : buckets) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

// Chi-square uniformity over the non-power-of-two member counts a failure
// leaves behind (3 live uplinks after one failure, 5 and 6 in wider
// topologies). Inputs are fixed, so the statistic is deterministic; the
// bound is the 99.9% critical value for the largest df plus slack. This
// guards both the hash mix and the hash->index reduction.
TEST(EcmpProperty, UniformOverNonPowerOfTwoMemberCounts) {
  for (const std::size_t n : {std::size_t{3}, std::size_t{5}, std::size_t{6}}) {
    std::vector<std::uint64_t> buckets(n, 0);
    net::Packet p;
    p.dport = 9000;
    const int flows = 60000;
    int f = 0;
    for (int s = 0; s < 10; ++s) {
      for (int d = 0; d < 10; ++d) {
        for (int sport = 0; f < flows && sport < 600; ++sport, ++f) {
          p.src = net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(s), 10);
          p.dst = net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(d), 10);
          p.sport = static_cast<std::uint16_t>(20000 + sport);
          buckets[routing::ecmp_select(p, 7, n)]++;
        }
      }
    }
    const double expected = static_cast<double>(flows) / n;
    double chi2 = 0;
    for (const std::uint64_t count : buckets) {
      const double diff = static_cast<double>(count) - expected;
      chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 25.0) << "ECMP selection skewed for n=" << n;
  }
}

// Regression pin: the member index is Lemire's fixed-point reduction of
// the five-tuple hash, not `hash % n`. The mapping decides the path of
// every simulated flow, so silently changing it (e.g. back to the biased
// modulo) would invalidate every recorded scenario and bench baseline.
TEST(EcmpProperty, SelectionIsFixedPointReductionOfHash) {
  net::Packet p;
  p.dst = net::Ipv4Addr(10, 11, 9, 10);
  p.dport = 9000;
  bool differs_from_modulo = false;
  for (const std::size_t n : {std::size_t{3}, std::size_t{5}, std::size_t{6}}) {
    for (int sport = 0; sport < 512; ++sport) {
      p.src = net::Ipv4Addr(10, 11, 0, 10);
      p.sport = static_cast<std::uint16_t>(sport);
      const std::uint64_t h = routing::ecmp_hash(p, 7);
      const auto lemire = static_cast<std::size_t>(
          (static_cast<unsigned __int128>(h) *
           static_cast<unsigned __int128>(n)) >>
          64);
      ASSERT_EQ(routing::ecmp_select(p, 7, n), lemire);
      if (lemire != h % n) differs_from_modulo = true;
    }
  }
  EXPECT_TRUE(differs_from_modulo)
      << "reduction indistinguishable from modulo on this input set";
}

TEST(EcmpProperty, SaltDecorrelatesSwitches) {
  net::Packet p;
  p.src = net::Ipv4Addr(10, 11, 0, 10);
  p.dst = net::Ipv4Addr(10, 11, 9, 10);
  int same = 0;
  const int n = 2000;
  for (int sport = 0; sport < n; ++sport) {
    p.sport = static_cast<std::uint16_t>(sport);
    if (routing::ecmp_select(p, 1, 2) == routing::ecmp_select(p, 2, 2)) {
      ++same;
    }
  }
  // Roughly half should agree if the salts are independent.
  EXPECT_GT(same, n / 2 - 200);
  EXPECT_LT(same, n / 2 + 200);
}

}  // namespace
}  // namespace f2t
