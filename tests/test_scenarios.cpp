#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::failure {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest()
      : fat_([](net::Network& n) {
          return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
        }),
        f2_([](net::Network& n) { return topo::build_f2tree(n, 8); }) {
    fat_.converge();
    f2_.converge();
  }

  core::Testbed fat_;
  core::Testbed f2_;
};

TEST_F(ScenarioTest, TraceRouteFindsFiveSwitchPath) {
  auto& topo = f2_.topo();
  net::Packet probe;
  probe.src = topo.hosts.front()->addr();
  probe.dst = topo.hosts.back()->addr();
  probe.proto = net::Protocol::kUdp;
  probe.sport = 12345;
  probe.dport = 9000;
  const auto path = trace_route(*topo.hosts.front(), *topo.hosts.back(),
                                probe);
  // host, tor, agg, core, agg, tor, host for inter-pod traffic.
  ASSERT_EQ(path.size(), 7u);
  EXPECT_EQ(path.front(), topo.hosts.front());
  EXPECT_EQ(path.back(), topo.hosts.back());
}

TEST_F(ScenarioTest, TraceRouteIntraTor) {
  auto& topo = f2_.topo();
  auto* tor = topo.tors.front();
  const auto& hosts = topo.hosts_of_tor.at(tor);
  ASSERT_GE(hosts.size(), 2u);
  net::Packet probe;
  probe.src = hosts[0]->addr();
  probe.dst = hosts[1]->addr();
  const auto path = trace_route(*hosts[0], *hosts[1], probe);
  ASSERT_EQ(path.size(), 3u);  // host, tor, host
}

TEST_F(ScenarioTest, TraceRouteIsDeterministicPerTuple) {
  auto& topo = f2_.topo();
  net::Packet probe;
  probe.src = topo.hosts.front()->addr();
  probe.dst = topo.hosts.back()->addr();
  probe.sport = 777;
  const auto p1 = trace_route(*topo.hosts.front(), *topo.hosts.back(), probe);
  const auto p2 = trace_route(*topo.hosts.front(), *topo.hosts.back(), probe);
  EXPECT_EQ(p1, p2);
}

TEST_F(ScenarioTest, EcmpSpreadsAcrossSourcePorts) {
  auto& topo = fat_.topo();
  std::set<const net::Node*> second_hops;
  for (std::uint16_t sport = 1000; sport < 1064; ++sport) {
    net::Packet probe;
    probe.src = topo.hosts.front()->addr();
    probe.dst = topo.hosts.back()->addr();
    probe.sport = sport;
    const auto path =
        trace_route(*topo.hosts.front(), *topo.hosts.back(), probe);
    ASSERT_GE(path.size(), 3u);
    second_hops.insert(path[2]);  // the agg chosen by the source ToR
  }
  EXPECT_GE(second_hops.size(), 2u);  // multiple aggs actually used
}

TEST_F(ScenarioTest, ConditionPlansHaveExpectedShape) {
  struct Expectation {
    Condition c;
    std::size_t links;
  };
  const std::vector<Expectation> table{
      {Condition::kC1, 1}, {Condition::kC2, 1}, {Condition::kC3, 2},
      {Condition::kC4, 2}, {Condition::kC6, 2}, {Condition::kC7, 3},
      {Condition::kC8, 3},
  };
  for (const auto& [condition, links] : table) {
    const auto plan = build_condition(f2_.topo(), condition);
    ASSERT_TRUE(plan.has_value()) << condition_name(condition);
    EXPECT_EQ(plan->fail_links.size(), links) << condition_name(condition);
    EXPECT_NE(plan->sx, nullptr);
    EXPECT_NE(plan->dst_tor, nullptr);
    EXPECT_FALSE(plan->description.empty());
  }
  // C5: all dst-pod downlinks to the dst ToR except the left neighbour's.
  const auto c5 = build_condition(f2_.topo(), Condition::kC5);
  ASSERT_TRUE(c5.has_value());
  EXPECT_EQ(c5->fail_links.size(),
            f2_.topo().pods.front().aggs.size() - 1);
}

TEST_F(ScenarioTest, C1PlanFailsTheLinkOnTheTracedPath) {
  const auto plan = build_condition(f2_.topo(), Condition::kC1);
  ASSERT_TRUE(plan.has_value());
  net::Packet probe;
  probe.src = plan->src->addr();
  probe.dst = plan->dst->addr();
  probe.proto = net::Protocol::kUdp;
  probe.sport = plan->sport;
  probe.dport = plan->dport;
  const auto path = trace_route(*plan->src, *plan->dst, probe);
  ASSERT_GE(path.size(), 3u);
  // The failed link joins the last two switches of the path.
  const auto* link = plan->fail_links.front();
  const net::Node* a = link->end_a().node;
  const net::Node* b = link->end_b().node;
  EXPECT_TRUE((a == plan->sx && b == plan->dst_tor) ||
              (b == plan->sx && a == plan->dst_tor));
  EXPECT_EQ(path[path.size() - 3], static_cast<const net::Node*>(plan->sx));
}

TEST_F(ScenarioTest, F2OnlyConditionsRejectedOnFatTree) {
  EXPECT_FALSE(build_condition(fat_.topo(), Condition::kC6).has_value());
  EXPECT_FALSE(build_condition(fat_.topo(), Condition::kC7).has_value());
  // C1-C5 are fine on fat tree.
  EXPECT_TRUE(build_condition(fat_.topo(), Condition::kC1).has_value());
  EXPECT_TRUE(build_condition(fat_.topo(), Condition::kC5).has_value());
}

TEST_F(ScenarioTest, InjectorHistoryAndSwitchFailure) {
  auto& bed = f2_;
  auto* sw = bed.topo().aggs.front();
  const auto ports = sw->port_count();
  bed.injector().fail_switch_at(*sw, sim::millis(5));
  bed.sim().run(sim::millis(10));
  EXPECT_EQ(bed.injector().history().size(), ports);
  EXPECT_EQ(bed.injector().active_failures(), static_cast<int>(ports));
  for (const auto& port : sw->ports()) {
    EXPECT_FALSE(port.link->is_up());
  }
}

TEST(RandomFailures, RespectsConcurrencyCapAndRecovers) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  RandomFailureOptions opts;
  opts.interarrival_median_s = 1.0;
  opts.interarrival_sigma = 0.5;
  opts.duration_median_s = 2.0;
  opts.duration_sigma = 0.5;
  opts.max_concurrent = 2;
  opts.start = sim::seconds(1);
  opts.stop = sim::seconds(60);
  RandomFailureGenerator gen(bed.injector(), sim::Random(7), opts);
  gen.start();

  // Sample concurrency every 500 ms.
  int max_seen = 0;
  for (sim::Time t = sim::seconds(1); t < sim::seconds(61);
       t += sim::millis(500)) {
    bed.sim().at(t, [&] {
      max_seen = std::max(max_seen, bed.injector().active_failures());
    });
  }
  bed.sim().run(sim::seconds(120));
  EXPECT_GT(gen.failures_injected(), 5);
  EXPECT_LE(max_seen, 2);
  // Everything recovered by the end.
  EXPECT_EQ(bed.injector().active_failures(), 0);
}

}  // namespace
}  // namespace f2t::failure
