#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::net {
namespace {

TEST(Unidirectional, OneDirectionKeepsFlowingUntilDetection) {
  sim::Simulator sim(1);
  Network net(sim);
  auto& a = net.add_switch("a", Ipv4Addr(10, 12, 0, 1));
  auto& h = net.add_host("h", Ipv4Addr(10, 11, 0, 10), &a);
  Link* link = net.find_link(a, h);
  ASSERT_NE(link, nullptr);

  int received = 0;
  h.set_packet_handler([&](Packet) { ++received; });
  Packet down;
  down.dst = h.addr();
  down.size_bytes = 100;

  // Cut only the host->switch direction; switch->host traffic still works.
  sim.at(sim::millis(1), [&] {
    link->set_direction_up(Link::Direction::kBToA, false);
  });
  sim.at(sim::millis(2), [&] { a.send(0, down); });
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_FALSE(link->is_up());
  EXPECT_TRUE(link->direction_up(Link::Direction::kAToB));
}

TEST(Unidirectional, ReverseDirectionIsDead) {
  sim::Simulator sim(1);
  Network net(sim);
  auto& a = net.add_switch("a", Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", Ipv4Addr(10, 12, 1, 1));
  Link& link = net.connect_default(a, b);

  link.set_direction_up(Link::Direction::kAToB, false);
  Packet p;
  p.dst = b.router_id();
  p.proto = Protocol::kRouting;
  sim.at(0, [&] { a.send(0, p); });
  sim.run();
  EXPECT_EQ(b.counters().control_in, 0u);
  EXPECT_GE(link.dropped_down(), 1u);
  // The other direction still delivers.
  Packet q;
  q.dst = a.router_id();
  q.proto = Protocol::kRouting;
  sim.at(sim.now() + 1, [&] { b.send(0, q); });
  sim.run();
  EXPECT_EQ(a.counters().control_in, 1u);
}

TEST(Unidirectional, AggregateObserverFiresOncePerSessionTransition) {
  sim::Simulator sim(1);
  Network net(sim);
  auto& a = net.add_switch("a", Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", Ipv4Addr(10, 12, 1, 1));
  Link& link = net.connect_default(a, b);
  int events = 0;
  link.add_observer([&](Link&, bool) { ++events; });

  link.set_direction_up(Link::Direction::kAToB, false);  // session down
  EXPECT_EQ(events, 1);
  link.set_direction_up(Link::Direction::kBToA, false);  // already down
  EXPECT_EQ(events, 1);
  link.set_direction_up(Link::Direction::kAToB, true);  // still half-dead
  EXPECT_EQ(events, 1);
  link.set_direction_up(Link::Direction::kBToA, true);  // session up
  EXPECT_EQ(events, 2);
}

/// The future-work scenario end-to-end: a unidirectional cut of the
/// downward agg->ToR direction. BFD-style detection declares the session
/// down on both ends, so F²Tree fast-reroutes exactly as it does for the
/// bidirectional case.
TEST(Unidirectional, F2TreeFastReroutesAroundDownwardDirectionCut) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  ASSERT_TRUE(plan.has_value());

  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();

  // Cut only Sx -> dst ToR (the direction the flow uses).
  bed.injector().fail_direction_at(*plan->fail_links.front(), *plan->sx,
                                   sim::millis(380));
  bed.sim().run(sim::seconds(3));

  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_GE(loss->duration(), sim::millis(55));
  EXPECT_LE(loss->duration(), sim::millis(70));
}

TEST(Unidirectional, FatTreeStillWaitsForControlPlane) {
  core::Testbed bed([](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
  });
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  ASSERT_TRUE(plan.has_value());

  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  bed.injector().fail_direction_at(*plan->fail_links.front(), *plan->sx,
                                   sim::millis(380));
  bed.sim().run(sim::seconds(3));

  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_GE(loss->duration(), sim::millis(260));
}

}  // namespace
}  // namespace f2t::net
