#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace f2t::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  sim::Simulator sim_{1};
  Network net_{sim_};
};

TEST_F(NetTest, QueueDropTail) {
  DropTailQueue q(2);
  Packet p;
  EXPECT_TRUE(q.push(p));
  EXPECT_TRUE(q.push(p));
  EXPECT_FALSE(q.push(p));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST_F(NetTest, QueueFifoOrder) {
  DropTailQueue q(10);
  for (std::uint32_t i = 0; i < 5; ++i) {
    Packet p;
    p.udp_seq = i;
    q.push(p);
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q.pop()->udp_seq, i);
  }
}

TEST_F(NetTest, LinkDeliversWithSerializationAndPropagation) {
  auto& tor = net_.add_switch("tor", Ipv4Addr(10, 11, 0, 1));
  auto& host = net_.add_host("h", Ipv4Addr(10, 11, 0, 10), &tor);
  // 1 Gbps, 5 us prop: a 1490-byte packet serializes in 11.92 us.
  Packet p;
  p.dst = host.addr();
  p.src = Ipv4Addr(10, 11, 0, 1);
  p.size_bytes = 1490;
  p.proto = Protocol::kUdp;
  sim::Time delivered_at = -1;
  host.set_packet_handler([&](Packet) { delivered_at = sim_.now(); });
  sim_.at(0, [&] { tor.send(0, p); });
  sim_.run();
  ASSERT_GE(delivered_at, 0);
  EXPECT_NEAR(static_cast<double>(delivered_at),
              static_cast<double>(sim::micros(5)) + 1490 * 8.0, 50.0);
}

TEST_F(NetTest, LinkDownBlackholesAndRecovers) {
  auto& tor = net_.add_switch("tor", Ipv4Addr(10, 11, 0, 1));
  auto& host = net_.add_host("h", Ipv4Addr(10, 11, 0, 10), &tor);
  Link* link = net_.find_link(tor, host);
  ASSERT_NE(link, nullptr);
  int received = 0;
  host.set_packet_handler([&](Packet) { ++received; });
  Packet p;
  p.dst = host.addr();
  p.size_bytes = 100;

  sim_.at(0, [&] { tor.send(0, p); });
  sim_.at(sim::millis(1), [&] { link->set_up(false); });
  sim_.at(sim::millis(2), [&] { tor.send(0, p); });  // lost
  sim_.at(sim::millis(3), [&] { link->set_up(true); });
  sim_.at(sim::millis(4), [&] { tor.send(0, p); });
  sim_.run();
  EXPECT_EQ(received, 2);
  EXPECT_GE(link->dropped_down(), 1u);
}

TEST_F(NetTest, PacketInFlightWhenLinkCutIsLost) {
  LinkParams slow;
  slow.propagation_delay = sim::millis(10);
  net_.set_default_link_params(slow);
  auto& tor = net_.add_switch("tor", Ipv4Addr(10, 11, 0, 1));
  auto& host = net_.add_host("h", Ipv4Addr(10, 11, 0, 10), &tor);
  Link* link = net_.find_link(tor, host);
  int received = 0;
  host.set_packet_handler([&](Packet) { ++received; });
  Packet p;
  p.dst = host.addr();
  p.size_bytes = 100;
  sim_.at(0, [&] { tor.send(0, p); });
  sim_.at(sim::millis(5), [&] { link->set_up(false); });  // mid-propagation
  sim_.run();
  EXPECT_EQ(received, 0);
}

TEST_F(NetTest, LinkObserverFiresOnTransitionsOnly) {
  auto& a = net_.add_switch("a", Ipv4Addr(10, 12, 0, 1));
  auto& b = net_.add_switch("b", Ipv4Addr(10, 12, 1, 1));
  Link& link = net_.connect_default(a, b);
  int events = 0;
  link.add_observer([&](Link&, bool) { ++events; });
  link.set_up(false);
  link.set_up(false);  // idempotent
  link.set_up(true);
  EXPECT_EQ(events, 2);
}

TEST_F(NetTest, SwitchForwardsByLpmAndCountsDrops) {
  auto& sw = net_.add_switch("sw", Ipv4Addr(10, 12, 0, 1));
  auto& h1 = net_.add_host("h1", Ipv4Addr(10, 11, 0, 10), &sw);
  auto& h2 = net_.add_host("h2", Ipv4Addr(10, 11, 0, 11), &sw);
  int got1 = 0, got2 = 0;
  h1.set_packet_handler([&](Packet) { ++got1; });
  h2.set_packet_handler([&](Packet) { ++got2; });

  Packet to2;
  to2.src = h1.addr();
  to2.dst = h2.addr();
  to2.ttl = 64;
  to2.size_bytes = 100;
  sim_.at(0, [&] { sw.forward(to2); });

  Packet nowhere = to2;
  nowhere.dst = Ipv4Addr(10, 99, 0, 1);
  sim_.at(0, [&] { sw.forward(nowhere); });

  Packet dying = to2;
  dying.ttl = 1;
  sim_.at(0, [&] { sw.forward(dying); });

  sim_.run();
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(got1, 0);
  EXPECT_EQ(sw.counters().dropped_no_route, 1u);
  EXPECT_EQ(sw.counters().dropped_ttl, 1u);
  EXPECT_EQ(sw.counters().forwarded, 1u);
}

TEST_F(NetTest, HostRejectsMisdelivered) {
  auto& sw = net_.add_switch("sw", Ipv4Addr(10, 12, 0, 1));
  auto& h1 = net_.add_host("h1", Ipv4Addr(10, 11, 0, 10), &sw);
  Packet p;
  p.dst = Ipv4Addr(10, 11, 0, 99);  // not h1
  sim_.at(0, [&] { sw.send(0, p); });
  sim_.run();
  EXPECT_EQ(h1.delivered(), 0u);
  EXPECT_EQ(h1.misdelivered(), 1u);
}

TEST_F(NetTest, NetworkLookupsAndDuplicateNames) {
  auto& sw = net_.add_switch("sw", Ipv4Addr(10, 12, 0, 1));
  auto& host = net_.add_host("h", Ipv4Addr(10, 11, 0, 10), &sw);
  EXPECT_EQ(net_.find_switch("sw"), &sw);
  EXPECT_EQ(net_.find_host("h"), &host);
  EXPECT_EQ(net_.find_switch("h"), nullptr);  // wrong type
  EXPECT_EQ(net_.find_node("nope"), nullptr);
  EXPECT_THROW(net_.add_switch("sw", Ipv4Addr(10, 12, 0, 2)),
               std::invalid_argument);
  EXPECT_THROW(net_.connect_default(sw, sw), std::invalid_argument);
}

TEST_F(NetTest, PortPeerMetadataIsFilledIn) {
  auto& a = net_.add_switch("a", Ipv4Addr(10, 12, 0, 1));
  auto& b = net_.add_switch("b", Ipv4Addr(10, 12, 1, 1));
  auto& h = net_.add_host("h", Ipv4Addr(10, 11, 0, 10), &a);
  net_.connect_default(a, b);
  // a: port0 -> host, port1 -> b.
  EXPECT_EQ(a.port(0).peer_addr, h.addr());
  EXPECT_FALSE(a.port(0).peer_is_switch);
  EXPECT_EQ(a.port(1).peer_addr, b.router_id());
  EXPECT_TRUE(a.port(1).peer_is_switch);
  EXPECT_EQ(a.port_of_link(*net_.find_link(a, b)), 1);
}

TEST_F(NetTest, ConnectedHostRouteInstalledOnTor) {
  auto& tor = net_.add_switch("tor", Ipv4Addr(10, 11, 0, 1));
  auto& h = net_.add_host("h", Ipv4Addr(10, 11, 0, 10), &tor);
  const auto route = tor.fib().find(Prefix::host(h.addr()),
                                    routing::RouteSource::kConnected);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hops.size(), 1u);
}

TEST_F(NetTest, ParallelLinksAreDistinct) {
  auto& a = net_.add_switch("a", Ipv4Addr(10, 12, 0, 1));
  auto& b = net_.add_switch("b", Ipv4Addr(10, 12, 1, 1));
  net_.connect_default(a, b);
  net_.connect_default(a, b);
  EXPECT_EQ(net_.find_links(a, b).size(), 2u);
  EXPECT_EQ(a.port_count(), 2u);
}

}  // namespace
}  // namespace f2t::net
