#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t {
namespace {

/// Runs the C1 UDP experiment and returns the connectivity loss.
sim::Time c1_loss(const core::Testbed::TopoBuilder& builder,
                  const core::TestbedConfig& config = {}) {
  core::Testbed bed(builder, config);
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  if (!plan) {
    ADD_FAILURE() << "no C1 plan";
    return -1;
  }
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  return loss ? loss->duration() : 0;
}

// --- recovery scales with port count --------------------------------------

class PortSweep : public ::testing::TestWithParam<int> {};

TEST_P(PortSweep, FatTreeIsControlPlaneBound) {
  const int ports = GetParam();
  const auto loss = c1_loss([ports](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = ports});
  });
  EXPECT_GE(loss, sim::millis(260)) << "ports=" << ports;
  EXPECT_LE(loss, sim::millis(290)) << "ports=" << ports;
}

TEST_P(PortSweep, F2TreeIsDetectionBound) {
  const int ports = GetParam();
  const auto loss = c1_loss(
      [ports](net::Network& n) { return topo::build_f2tree(n, ports); });
  EXPECT_GE(loss, sim::millis(55)) << "ports=" << ports;
  EXPECT_LE(loss, sim::millis(70)) << "ports=" << ports;
}

INSTANTIATE_TEST_SUITE_P(Ports, PortSweep, ::testing::Values(4, 6, 8, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

// --- recovery tracks the detection delay -----------------------------------

class DetectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(DetectionSweep, F2TreeLossEqualsDetectionDelay) {
  const sim::Time detection = sim::millis(GetParam());
  core::TestbedConfig config;
  config.detection.down_delay = detection;
  config.detection.up_delay = detection;
  const auto loss = c1_loss(
      [](net::Network& n) { return topo::build_f2tree(n, 8); }, config);
  // Fast reroute waits only for detection (+ sub-ms forwarding).
  EXPECT_GE(loss, detection);
  EXPECT_LE(loss, detection + sim::millis(5));
}

INSTANTIATE_TEST_SUITE_P(Delays, DetectionSweep,
                         ::testing::Values(10, 30, 60, 120),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "ms" + std::to_string(info.param);
                         });

// --- the Table I scaled geometry also fast-reroutes ------------------------

TEST(ScaledF2Tree, C1RecoveryIsDetectionBound) {
  const auto loss = c1_loss([](net::Network& n) {
    return topo::build_f2tree_scaled(n, topo::F2TreeScaledOptions{8, -1});
  });
  EXPECT_GE(loss, sim::millis(55));
  EXPECT_LE(loss, sim::millis(70));
}

// --- the §V variants fast-reroute too ---------------------------------------

TEST(OtherTopologies, LeafSpineF2IsDetectionBound) {
  // The generic C1 machinery expects a 3-tier pod structure; Leaf-Spine
  // failures are exercised via a direct downward-link cut (as in
  // bench_fig7): spine -> leaf on the traced path.
  core::Testbed bed([](net::Network& n) {
    return topo::build_leaf_spine(
        n, topo::LeafSpineOptions{.ports = 8, .f2_rewire = true});
  });
  bed.converge();
  auto& topo = bed.topo();
  const net::Host* src = topo.hosts.front();
  const net::Host* dst = topo.hosts.back();
  net::Packet probe;
  probe.src = src->addr();
  probe.dst = dst->addr();
  probe.sport = 31000;
  probe.dport = 9000;
  const auto path = failure::trace_route(*src, *dst, probe);
  ASSERT_EQ(path.size(), 5u);  // host leaf spine leaf host
  auto* spine = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[2]));
  auto* leaf = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[3]));
  net::Link* link = bed.network().find_link(*spine, *leaf);
  ASSERT_NE(link, nullptr);

  transport::UdpSink sink(bed.stack_of(*dst), 9000);
  transport::UdpCbrSender::Options so;
  so.sport = 31000;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*src), dst->addr(), so);
  sender.start();
  bed.injector().fail_at(*link, sim::millis(380));
  bed.sim().run(sim::seconds(3));

  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_LE(loss->duration(), sim::millis(70));
}

TEST(OtherTopologies, Vl2F2IsDetectionBound) {
  core::Testbed bed([](net::Network& n) {
    return topo::build_vl2(n, topo::Vl2Options{.ports = 8, .f2_rewire = true});
  });
  bed.converge();
  auto& topo = bed.topo();
  const net::Host* src = topo.hosts.front();
  const net::Host* dst = topo.hosts.back();
  net::Packet probe;
  probe.src = src->addr();
  probe.dst = dst->addr();
  probe.sport = 32000;
  probe.dport = 9000;
  const auto path = failure::trace_route(*src, *dst, probe);
  ASSERT_GE(path.size(), 5u);
  auto* agg = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[path.size() - 3]));
  auto* tor = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[path.size() - 2]));
  net::Link* link = bed.network().find_link(*agg, *tor);
  ASSERT_NE(link, nullptr);

  transport::UdpSink sink(bed.stack_of(*dst), 9000);
  transport::UdpCbrSender::Options so;
  so.sport = 32000;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*src), dst->addr(), so);
  sender.start();
  bed.injector().fail_at(*link, sim::millis(380));
  bed.sim().run(sim::seconds(3));

  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_LE(loss->duration(), sim::millis(70));
}

// --- ring width 4 handles C7 (§II-C closing remark) -------------------------

TEST(RingWidth, Width4SurvivesC7) {
  core::Testbed bed(
      [](net::Network& n) { return topo::build_f2tree(n, 8, 4); });
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC7);
  ASSERT_TRUE(plan.has_value());
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_LE(loss->duration(), sim::millis(70));
}

}  // namespace
}  // namespace f2t
