#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::routing {
namespace {

TEST(Flooding, LsaReachesEverySwitchWithinMilliseconds) {
  // The paper: "the OSPF LSA messages take very little time to get
  // propagated from S16 to the rest of the network". Measure it: after a
  // detected failure, every switch should hold the new LSA within a few
  // per-hop processing delays (~300 us x diameter), far below the 200 ms
  // SPF timer that dominates recovery.
  core::Testbed bed([](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
  });
  bed.converge();
  auto* sx = bed.topo().pods[0].aggs[0];
  auto* tor = bed.topo().pods[0].tors[0];
  net::Link* link = bed.network().find_link(*sx, *tor);
  bed.injector().fail_at(*link, sim::millis(100));
  // Detection at 160 ms; check LSDBs shortly after.
  bed.sim().run(sim::millis(165));
  int updated = 0;
  const auto switches = bed.topo().all_switches();
  for (auto* sw : switches) {
    if (bed.ospf_of(*sw).lsdb().sequence_of(sx->router_id()) >= 2) ++updated;
  }
  EXPECT_EQ(updated, static_cast<int>(switches.size()));
  // ...and nobody has recomputed routes yet (the SPF timer is pending).
  const auto counters = bed.total_ospf_counters();
  EXPECT_EQ(counters.spf_runs, switches.size());  // only the warm start
}

TEST(Flooding, SelfLsaDeduplicatesParallelRingLinks) {
  // The 4-port prototype has doubled across links; the router-level LSA
  // must list the neighbour once while SPF still uses both ports.
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  auto* agg = bed.topo().aggs.front();
  const auto lsa = bed.ospf_of(*agg).make_self_lsa();
  std::set<net::Ipv4Addr> unique;
  for (const auto& l : lsa->links) {
    EXPECT_TRUE(unique.insert(l.neighbor).second)
        << "duplicate adjacency to " << l.neighbor.str();
  }
  // And the FIB's static backups still use two distinct ports.
  const auto r16 = agg->fib().find(net::Prefix::parse("10.11.0.0/16"),
                                   RouteSource::kStatic);
  const auto r15 = agg->fib().find(net::Prefix::parse("10.10.0.0/15"),
                                   RouteSource::kStatic);
  ASSERT_TRUE(r16 && r15);
  EXPECT_NE(r16->next_hops.front().port, r15->next_hops.front().port);
}

TEST(Flooding, PvUpdateWireSizeGrowsWithContent) {
  PvUpdate update;
  const auto empty = update.wire_size();
  PvRoute route;
  route.prefix = net::Prefix::parse("10.11.0.0/24");
  route.path = {net::Ipv4Addr(10, 12, 0, 1), net::Ipv4Addr(10, 11, 0, 1)};
  update.routes.push_back(route);
  EXPECT_GT(update.wire_size(), empty);
}

TEST(Flooding, ControlPacketsShareLinksWithData) {
  // Control-plane packets traverse the same links (in-band): the paper's
  // production DCNs run routing over the fabric itself.
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  auto* agg = bed.topo().aggs.front();
  auto* tor = bed.topo().pods[0].tors[0];
  net::Link* link = bed.network().find_link(*agg, *tor);
  const auto delivered_before = link->delivered();
  // Flap a *different* link: the resulting LSAs flood across this one.
  auto* other = bed.topo().pods[1].aggs[0];
  auto* other_tor = bed.topo().pods[1].tors[0];
  bed.injector().fail_at(*bed.network().find_link(*other, *other_tor),
                         sim::millis(10));
  bed.sim().run(sim::millis(200));
  EXPECT_GT(link->delivered(), delivered_before);
}

}  // namespace
}  // namespace f2t::routing
