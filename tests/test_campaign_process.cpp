#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "exec/campaign.hpp"
#include "exec/process.hpp"

namespace f2t {
namespace {

namespace fs = std::filesystem;

/// Unique scratch state dir per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("f2t-test-" + tag + "-" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

core::CampaignSpec tiny_spec() {
  return core::CampaignSpec::parse(R"({
    "name": "tiny",
    "topologies": [{"name": "f2", "ports": 4}],
    "conditions": ["C1"],
    "link_sites": 2,
    "seeds": 2,
    "horizon_ms": 1200
  })");
}

std::string deterministic_json(const core::CampaignResult& result) {
  std::ostringstream os;
  result.write_json(os, /*include_profile=*/false);
  return os.str();
}

TEST(CampaignProcess, WorkerStreamsOneRecordPerShard) {
  const auto spec = tiny_spec();
  const auto shards = core::enumerate_shards(spec);
  ASSERT_EQ(shards.size(), 6u);
  std::ostringstream out;
  const int done =
      exec::run_campaign_worker(spec, {{1, 3}, {5, 6}}, out);
  EXPECT_EQ(done, 3);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<int> indices;
  while (std::getline(lines, line)) {
    indices.push_back(core::parse_shard_record(line).index);
  }
  EXPECT_EQ(indices, (std::vector<int>{1, 2, 5}));
  EXPECT_THROW(exec::run_campaign_worker(spec, {{4, 99}}, out),
               std::invalid_argument);
}

TEST(CampaignProcess, ArtifactIsByteIdenticalToInProcessRuns) {
  const auto spec = tiny_spec();
  exec::CampaignOptions serial;
  serial.jobs = 1;
  const std::string reference =
      deterministic_json(exec::run_campaign(spec, serial));

  for (const int workers : {1, 2, 4}) {
    ScratchDir dir("workers" + std::to_string(workers));
    exec::ProcessCampaignOptions options;
    options.workers = workers;
    options.state_dir = dir.path;
    int records = 0;
    options.on_record = [&records](const core::ShardResult&) { ++records; };
    const auto result = exec::run_campaign_processes(spec, options);
    EXPECT_EQ(records, 6);
    EXPECT_EQ(result.workers, workers);
    EXPECT_EQ(deterministic_json(result), reference)
        << "process-mode artifact must be byte-identical, workers="
        << workers;
  }
}

TEST(CampaignProcess, MoreWorkersThanShardsStillCompletes) {
  const auto spec = tiny_spec();  // 6 shards
  ScratchDir dir("overprov");
  exec::ProcessCampaignOptions options;
  options.workers = 16;
  options.state_dir = dir.path;
  const auto result = exec::run_campaign_processes(spec, options);
  EXPECT_EQ(result.runs.size(), 6u);
  for (const auto& r : result.runs) EXPECT_TRUE(r.ok);
}

TEST(CampaignProcess, FreshRunRefusesAStaleStateDir) {
  const auto spec = tiny_spec();
  ScratchDir dir("stale");
  exec::ProcessCampaignOptions options;
  options.workers = 2;
  options.state_dir = dir.path;
  (void)exec::run_campaign_processes(spec, options);
  // Same dir again without --resume: explicit error, not silent reuse.
  EXPECT_THROW(exec::run_campaign_processes(spec, options),
               std::runtime_error);
  // With resume it is a no-op continuation that still reduces correctly.
  options.resume = true;
  const auto again = exec::run_campaign_processes(spec, options);
  EXPECT_EQ(again.runs.size(), 6u);
}

TEST(CampaignProcess, ResumeRejectsMismatchedSpec) {
  const auto spec = tiny_spec();
  ScratchDir dir("mismatch");
  exec::ProcessCampaignOptions options;
  options.workers = 2;
  options.state_dir = dir.path;
  (void)exec::run_campaign_processes(spec, options);
  auto other = spec;
  other.seeds = 3;
  options.resume = true;
  EXPECT_THROW(exec::run_campaign_processes(other, options),
               std::runtime_error);
  exec::ProcessCampaignOptions fresh;
  fresh.workers = 2;
  fresh.state_dir = dir.path + "-none";
  fresh.resume = true;
  EXPECT_THROW(exec::run_campaign_processes(spec, fresh),
               std::runtime_error);
  fs::remove_all(fresh.state_dir);
}

/// Simulated kill: run a full campaign to populate the streams, then
/// damage them the way a SIGKILL does — drop whole trailing records from
/// one stream and leave a torn half-record on another — and resume. The
/// reduced artifact must be byte-identical to the uninterrupted run.
TEST(CampaignProcess, KilledCampaignResumesToIdenticalArtifact) {
  const auto spec = tiny_spec();
  ScratchDir dir("kill");
  exec::ProcessCampaignOptions options;
  options.workers = 2;
  options.state_dir = dir.path;
  const auto uninterrupted = exec::run_campaign_processes(spec, options);
  const std::string reference = deterministic_json(uninterrupted);

  // Damage stream 0: keep only its first record. Damage stream 1: tear
  // its last record in half (the kill-mid-write case).
  const std::string s0 = dir.path + "/worker-0.jsonl";
  const std::string s1 = dir.path + "/worker-1.jsonl";
  {
    std::ifstream in(s0);
    std::string first;
    ASSERT_TRUE(std::getline(in, first));
    in.close();
    std::ofstream out(s0, std::ios::trunc);
    out << first << "\n";
  }
  {
    std::ifstream in(s1, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    ASSERT_GT(text.size(), 20u);
    text.resize(text.size() - 17);  // tear into the last record
    in.close();
    std::ofstream out(s1, std::ios::binary | std::ios::trunc);
    out << text;
  }

  exec::ProcessCampaignOptions resume;
  resume.workers = 2;
  resume.resume = true;
  resume.state_dir = dir.path;
  const auto recovered = exec::run_campaign_processes(spec, resume);
  EXPECT_EQ(recovered.runs.size(), 6u);
  EXPECT_EQ(deterministic_json(recovered), reference)
      << "resume after a kill must reproduce the identical artifact";

  // The torn tail was truncated away: the stream now holds only whole,
  // parseable records.
  std::ifstream in(s1);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_NO_THROW(core::parse_shard_record(line));
  }
}

TEST(CampaignProcess, ErrorShardsCrossTheWorkerBoundaryIntact) {
  // A campaign whose shards all throw: the per-shard error records must
  // stream through workers and reduce byte-identically to in-process.
  const auto spec = core::CampaignSpec::parse(R"({
    "name": "broken",
    "topologies": [{"name": "nope", "ports": 4}],
    "conditions": ["C1", "C2"],
    "seeds": 2,
    "horizon_ms": 500
  })");
  exec::CampaignOptions serial;
  serial.jobs = 1;
  const std::string reference =
      deterministic_json(exec::run_campaign(spec, serial));
  ScratchDir dir("errors");
  exec::ProcessCampaignOptions options;
  options.workers = 2;
  options.state_dir = dir.path;
  const auto result = exec::run_campaign_processes(spec, options);
  EXPECT_EQ(deterministic_json(result), reference);
  for (const auto& r : result.runs) {
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "unknown topology: nope");
  }
}

TEST(CampaignProcess, SurvivabilitySweepSurvivesTheProcessBoundary) {
  const auto spec = core::survivability_spec(
      {core::CampaignSpec::TopologyAxis{"f2", 4, 2, 1}}, /*draws=*/6);
  exec::CampaignOptions serial;
  serial.jobs = 1;
  const std::string reference =
      deterministic_json(exec::run_campaign(spec, serial));
  ScratchDir dir("surv");
  exec::ProcessCampaignOptions options;
  options.workers = 3;
  options.state_dir = dir.path;
  const auto result = exec::run_campaign_processes(spec, options);
  EXPECT_EQ(deterministic_json(result), reference);
  EXPECT_NE(reference.find("\"survivability\""), std::string::npos);
}

TEST(CampaignProcess, RejectsBadOptions) {
  const auto spec = tiny_spec();
  exec::ProcessCampaignOptions options;
  options.workers = 0;
  options.state_dir = "/tmp/unused";
  EXPECT_THROW(exec::run_campaign_processes(spec, options),
               std::invalid_argument);
  options.workers = 2;
  options.state_dir = "";
  EXPECT_THROW(exec::run_campaign_processes(spec, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace f2t
