/// The forwarding fast path: SmallVec, the allocation-free lookup, and
/// the resolved-route cache. The property test is the load-bearing one —
/// it asserts that the cached resolution is *observably identical* to the
/// uncached walk under randomized interleavings of installs, removals,
/// replace_source, port flaps and queries, i.e. that generation-based
/// invalidation never serves a stale answer. Staleness here would not be
/// a perf bug but a correctness bug: the paper's backup fall-through
/// (§II-B) must engage on the first lookup after detection, with zero FIB
/// writes.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "routing/fib.hpp"
#include "routing/route_cache.hpp"
#include "routing/smallvec.hpp"
#include "sim/random.hpp"

namespace f2t::routing {
namespace {

std::vector<NextHop> to_vector(const Fib::HopVec& hops) {
  return std::vector<NextHop>(hops.begin(), hops.end());
}

Route make_route(net::Prefix prefix, std::vector<NextHop> hops,
                 RouteSource source) {
  Route r;
  r.prefix = prefix;
  r.next_hops = std::move(hops);
  r.source = source;
  return r;
}

TEST(SmallVec, StaysInlineUpToCapacityThenSpills) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.on_heap());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_TRUE(v.on_heap());
  EXPECT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
  // clear keeps the spilled capacity so reuse stays allocation-free.
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_GE(v.capacity(), 5u);
}

TEST(SmallVec, CopyAndMoveSemantics) {
  SmallVec<int, 2> a;
  for (int i = 0; i < 5; ++i) a.push_back(i);
  SmallVec<int, 2> b = a;  // copy
  EXPECT_EQ(a, b);
  SmallVec<int, 2> c = std::move(a);  // steals the heap buffer
  EXPECT_EQ(b, c);
  a = c;  // reuse after move
  EXPECT_EQ(a, b);
  SmallVec<int, 2> inline_src;
  inline_src.push_back(7);
  SmallVec<int, 2> d = std::move(inline_src);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], 7);
}

TEST(FibGeneration, BumpsOnEveryWrite) {
  Fib fib;
  const auto g0 = fib.generation();
  fib.install(make_route(net::Prefix::parse("10.11.3.0/24"),
                         {NextHop{0, {}}}, RouteSource::kOspf));
  const auto g1 = fib.generation();
  EXPECT_GT(g1, g0);
  fib.install(make_route(net::Prefix::parse("10.11.0.0/16"),
                         {NextHop{1, {}}}, RouteSource::kStatic));
  const auto g2 = fib.generation();
  EXPECT_GT(g2, g1);
  fib.remove(net::Prefix::parse("10.11.3.0/24"), RouteSource::kOspf);
  const auto g3 = fib.generation();
  EXPECT_GT(g3, g2);
  fib.replace_source(RouteSource::kOspf,
                     {make_route(net::Prefix::parse("10.11.4.0/24"),
                                 {NextHop{2, {}}}, RouteSource::kOspf)});
  const auto g4 = fib.generation();
  EXPECT_GT(g4, g3);
  fib.clear_source(RouteSource::kOspf);
  EXPECT_GT(fib.generation(), g4);
}

TEST(FibLookupInto, MatchesLookupIncludingFallthrough) {
  Fib fib;
  fib.install(make_route(net::Prefix::parse("10.11.3.0/24"),
                         {NextHop{0, {}}, NextHop{1, {}}},
                         RouteSource::kOspf));
  fib.install(make_route(net::Prefix::parse("10.11.0.0/16"),
                         {NextHop{2, {}}}, RouteSource::kStatic));
  const net::Ipv4Addr dst(10, 11, 3, 9);

  std::vector<bool> ports(8, true);
  auto up = [&ports](net::PortId p) { return p >= ports.size() || ports[p]; };
  Fib::HopVec hops;
  fib.lookup_into(dst, Fib::PortStateView{&ports}, hops);
  EXPECT_EQ(to_vector(hops), fib.lookup(dst, up));
  ASSERT_EQ(hops.size(), 2u);

  ports[0] = false;  // one ECMP member dead: filtered, no fall-through
  hops.clear();
  fib.lookup_into(dst, Fib::PortStateView{&ports}, hops);
  EXPECT_EQ(to_vector(hops), fib.lookup(dst, up));
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 1);

  ports[1] = false;  // whole /24 dead: falls through to the /16 static
  hops.clear();
  fib.lookup_into(dst, Fib::PortStateView{&ports}, hops);
  EXPECT_EQ(to_vector(hops), fib.lookup(dst, up));
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 2);

  // Ports beyond the vector's size count as up (lazily-grown state).
  Fib::HopVec far;
  Fib fib2;
  fib2.install(make_route(net::Prefix::parse("10.11.3.0/24"),
                          {NextHop{200, {}}}, RouteSource::kOspf));
  fib2.lookup_into(dst, Fib::PortStateView{&ports}, far);
  ASSERT_EQ(far.size(), 1u);
  EXPECT_EQ(far[0].port, 200);
}

// Generation-invalidation correctness: port-down → lookup → port-up must
// return the pre-failure next hops again, and the backup fall-through
// must engage *through the cache* with zero FIB writes.
TEST(ResolvedRouteCache, PortFlapInvalidatesAndRestores) {
  Fib fib;
  fib.install(make_route(net::Prefix::parse("10.11.3.0/24"),
                         {NextHop{0, {}}, NextHop{1, {}}},
                         RouteSource::kOspf));
  fib.install(make_route(net::Prefix::parse("10.11.0.0/16"),
                         {NextHop{4, {}}}, RouteSource::kStatic));
  const net::Ipv4Addr dst(10, 11, 3, 9);

  ResolvedRouteCache cache;
  std::vector<bool> ports(8, true);
  const Fib::PortStateView view{&ports};
  std::uint64_t epoch = 0;

  const auto healthy = to_vector(cache.resolve(fib, dst, view, epoch));
  ASSERT_EQ(healthy.size(), 2u);
  // Second resolve with unchanged state is a pure cache hit.
  const auto hits_before = cache.hits();
  EXPECT_EQ(to_vector(cache.resolve(fib, dst, view, epoch)), healthy);
  EXPECT_EQ(cache.hits(), hits_before + 1);

  // Detection: both /24 members dead. No FIB write — only the epoch
  // moves — yet the very next resolve must serve the /16 backup.
  const auto generation_before = fib.generation();
  ports[0] = false;
  ports[1] = false;
  ++epoch;
  const auto rerouted = to_vector(cache.resolve(fib, dst, view, epoch));
  EXPECT_EQ(fib.generation(), generation_before) << "fall-through wrote FIB";
  ASSERT_EQ(rerouted.size(), 1u);
  EXPECT_EQ(rerouted[0].port, 4);

  // Recovery: ports come back; the pre-failure hops come back with them.
  ports[0] = true;
  ports[1] = true;
  ++epoch;
  EXPECT_EQ(to_vector(cache.resolve(fib, dst, view, epoch)), healthy);
}

TEST(ResolvedRouteCache, FibWriteInvalidates) {
  Fib fib;
  fib.install(make_route(net::Prefix::parse("10.11.3.0/24"),
                         {NextHop{0, {}}}, RouteSource::kOspf));
  const net::Ipv4Addr dst(10, 11, 3, 9);
  ResolvedRouteCache cache;
  const Fib::PortStateView view{nullptr};

  ASSERT_EQ(to_vector(cache.resolve(fib, dst, view, 0)).size(), 1u);
  // A longer prefix arrives: the cached /24 answer must not survive.
  fib.install(make_route(net::Prefix::parse("10.11.3.0/25"),
                         {NextHop{6, {}}}, RouteSource::kOspf));
  const auto hops = to_vector(cache.resolve(fib, dst, view, 0));
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 6);
}

// The tentpole property: cached and uncached lookups agree under
// randomized interleavings of installs, removals, whole-source
// replacements, port flaps and queries.
TEST(ResolvedRouteCacheProperty, CachedEqualsUncachedUnderChurn) {
  sim::Random rng(20260807);
  Fib fib;
  ResolvedRouteCache cache;
  std::vector<bool> ports(8, true);
  std::uint64_t epoch = 0;

  auto random_prefix = [&] {
    const int length = static_cast<int>(rng.uniform_int(8, 32));
    const net::Ipv4Addr addr(
        10, static_cast<std::uint8_t>(rng.uniform_int(10, 13)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 7)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    return net::Prefix(addr, length);
  };
  auto random_source = [&] {
    switch (rng.uniform_int(0, 2)) {
      case 0: return RouteSource::kConnected;
      case 1: return RouteSource::kStatic;
      default: return RouteSource::kOspf;
    }
  };
  auto random_route = [&](RouteSource source) {
    Route route;
    route.prefix = random_prefix();
    route.source = source;
    const int hops = static_cast<int>(rng.uniform_int(1, 6));
    for (int h = 0; h < hops; ++h) {
      route.next_hops.push_back(
          NextHop{static_cast<net::PortId>(rng.uniform_int(0, 7)), {}});
    }
    std::sort(route.next_hops.begin(), route.next_hops.end());
    route.next_hops.erase(
        std::unique(route.next_hops.begin(), route.next_hops.end()),
        route.next_hops.end());
    return route;
  };

  int queries = 0;
  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 11));
    if (op < 5) {  // install
      fib.install(random_route(random_source()));
    } else if (op < 7) {  // remove
      fib.remove(random_prefix(), random_source());
    } else if (op == 7) {  // whole-source replacement (SPF reinstall)
      std::vector<Route> routes;
      const int n = static_cast<int>(rng.uniform_int(0, 5));
      for (int i = 0; i < n; ++i) routes.push_back(random_route(RouteSource::kOspf));
      // replace_source keys routes by prefix; drop duplicates.
      std::sort(routes.begin(), routes.end(),
                [](const Route& a, const Route& b) { return a.prefix < b.prefix; });
      routes.erase(std::unique(routes.begin(), routes.end(),
                               [](const Route& a, const Route& b) {
                                 return a.prefix == b.prefix;
                               }),
                   routes.end());
      fib.replace_source(RouteSource::kOspf, routes);
    } else if (op == 8) {  // port flap (detection event: epoch only)
      const auto p = static_cast<std::size_t>(rng.uniform_int(0, 7));
      ports[p] = !ports[p];
      ++epoch;
    } else {  // query: cached must equal a fresh uncached walk
      ++queries;
      const net::Ipv4Addr dst(
          10, static_cast<std::uint8_t>(rng.uniform_int(10, 13)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 7)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      const auto uncached =
          fib.lookup(dst, [&ports](net::PortId p) {
            return p >= ports.size() || ports[p];
          });
      const auto cached = to_vector(
          cache.resolve(fib, dst, Fib::PortStateView{&ports}, epoch));
      ASSERT_EQ(cached, uncached)
          << "step " << step << " dst " << dst.str() << " epoch " << epoch;
      // Immediate re-query: served from the cache (a hit) and still equal.
      const auto re_cached = to_vector(
          cache.resolve(fib, dst, Fib::PortStateView{&ports}, epoch));
      ASSERT_EQ(re_cached, uncached) << "hit path diverged at step " << step;
    }
  }
  ASSERT_GT(queries, 500);
  // The churn must actually have exercised both cache paths.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

}  // namespace
}  // namespace f2t::routing
