#include <gtest/gtest.h>

#include "routing/fib.hpp"

namespace f2t::routing {
namespace {

using net::Ipv4Addr;
using net::Prefix;

Route make(const char* prefix, std::vector<NextHop> hops,
           RouteSource source = RouteSource::kOspf) {
  return Route{Prefix::parse(prefix), std::move(hops), source};
}

Fib::PortUpFn all_up() {
  return [](net::PortId) { return true; };
}

TEST(Fib, LongestPrefixWins) {
  Fib fib;
  fib.install(make("10.11.0.0/16", {{1, Ipv4Addr(1, 1, 1, 1)}}));
  fib.install(make("10.11.3.0/24", {{2, Ipv4Addr(2, 2, 2, 2)}}));
  const auto hops = fib.lookup(Ipv4Addr(10, 11, 3, 9), all_up());
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 2);
}

TEST(Fib, NoMatchReturnsEmpty) {
  Fib fib;
  fib.install(make("10.11.0.0/16", {{1, {}}}));
  EXPECT_TRUE(fib.lookup(Ipv4Addr(10, 12, 0, 1), all_up()).empty());
}

TEST(Fib, DeadNextHopFallsThroughToShorterPrefix) {
  // The F²Tree mechanism: /24 from OSPF dies, /16 static takes over,
  // then the /15.
  Fib fib;
  fib.install(make("10.11.3.0/24", {{0, {}}}, RouteSource::kOspf));
  fib.install(make("10.11.0.0/16", {{1, {}}}, RouteSource::kStatic));
  fib.install(make("10.10.0.0/15", {{2, {}}}, RouteSource::kStatic));

  const Ipv4Addr dst(10, 11, 3, 9);
  auto up_except = [](std::initializer_list<net::PortId> down) {
    std::vector<net::PortId> dead(down);
    return [dead](net::PortId p) {
      return std::find(dead.begin(), dead.end(), p) == dead.end();
    };
  };

  auto hops = fib.lookup(dst, up_except({}));
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 0);

  hops = fib.lookup(dst, up_except({0}));
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 1);

  hops = fib.lookup(dst, up_except({0, 1}));
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 2);

  EXPECT_TRUE(fib.lookup(dst, up_except({0, 1, 2})).empty());
}

TEST(Fib, EcmpFiltersDeadMembers) {
  Fib fib;
  fib.install(make("10.11.0.0/24", {{0, {}}, {1, {}}, {2, {}}}));
  const auto hops = fib.lookup(Ipv4Addr(10, 11, 0, 5),
                               [](net::PortId p) { return p != 1; });
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].port, 0);
  EXPECT_EQ(hops[1].port, 2);
}

TEST(Fib, AdminDistancePrefersConnectedThenStatic) {
  Fib fib;
  fib.install(make("10.11.3.0/24", {{5, {}}}, RouteSource::kOspf));
  fib.install(make("10.11.3.0/24", {{6, {}}}, RouteSource::kConnected));
  fib.install(make("10.11.3.0/24", {{7, {}}}, RouteSource::kStatic));
  const auto hops = fib.lookup(Ipv4Addr(10, 11, 3, 1), all_up());
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 6);
}

TEST(Fib, BestSourceDeadDoesNotFallToWorseSourceSamePrefix) {
  // Real FIBs install only the best source per prefix; a dead connected
  // route must not resurrect an OSPF route under the same prefix.
  Fib fib;
  fib.install(make("10.11.3.0/24", {{5, {}}}, RouteSource::kOspf));
  fib.install(make("10.11.3.0/24", {{6, {}}}, RouteSource::kConnected));
  const auto hops =
      fib.lookup(Ipv4Addr(10, 11, 3, 1), [](net::PortId p) { return p != 6; });
  EXPECT_TRUE(hops.empty());
}

TEST(Fib, ReplaceSourceSwapsAtomically) {
  Fib fib;
  fib.install(make("10.11.1.0/24", {{1, {}}}, RouteSource::kOspf));
  fib.install(make("10.11.2.0/24", {{2, {}}}, RouteSource::kOspf));
  fib.install(make("10.10.0.0/15", {{9, {}}}, RouteSource::kStatic));

  fib.replace_source(RouteSource::kOspf,
                     {make("10.11.3.0/24", {{3, {}}})});
  EXPECT_TRUE(fib.find(Prefix::parse("10.11.1.0/24"), RouteSource::kOspf) ==
              std::nullopt);
  EXPECT_TRUE(fib.find(Prefix::parse("10.11.3.0/24"), RouteSource::kOspf)
                  .has_value());
  // Statics untouched.
  EXPECT_TRUE(fib.find(Prefix::parse("10.10.0.0/15"), RouteSource::kStatic)
                  .has_value());
  EXPECT_EQ(fib.size(), 2u);
}

TEST(Fib, InstallReplacesSamePrefixSameSource) {
  Fib fib;
  fib.install(make("10.11.1.0/24", {{1, {}}}));
  fib.install(make("10.11.1.0/24", {{2, {}}}));
  EXPECT_EQ(fib.size(), 1u);
  const auto hops = fib.lookup(Ipv4Addr(10, 11, 1, 1), all_up());
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 2);
}

TEST(Fib, RemoveAndClear) {
  Fib fib;
  fib.install(make("10.11.1.0/24", {{1, {}}}));
  fib.install(make("10.11.2.0/24", {{2, {}}}));
  fib.remove(Prefix::parse("10.11.1.0/24"), RouteSource::kOspf);
  EXPECT_EQ(fib.size(), 1u);
  fib.remove(Prefix::parse("10.11.1.0/24"), RouteSource::kOspf);  // no-op
  fib.clear_source(RouteSource::kOspf);
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, RejectsEmptyNextHops) {
  Fib fib;
  EXPECT_THROW(fib.install(Route{Prefix::parse("10.0.0.0/8"), {}, {}}),
               std::invalid_argument);
}

TEST(Fib, NextHopsSortedForDeterministicEcmp) {
  Fib fib;
  fib.install(make("10.11.0.0/24", {{3, {}}, {1, {}}, {2, {}}}));
  const auto hops = fib.lookup(Ipv4Addr(10, 11, 0, 1), all_up());
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].port, 1);
  EXPECT_EQ(hops[1].port, 2);
  EXPECT_EQ(hops[2].port, 3);
}

TEST(Fib, DefaultRouteMatchesEverything) {
  Fib fib;
  fib.install(make("0.0.0.0/0", {{7, {}}}));
  const auto hops = fib.lookup(Ipv4Addr(192, 168, 1, 1), all_up());
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].port, 7);
}

TEST(Fib, DumpIsSortedAndComplete) {
  Fib fib;
  fib.install(make("10.11.2.0/24", {{2, {}}}));
  fib.install(make("10.11.0.0/16", {{9, {}}}, RouteSource::kStatic));
  fib.install(make("10.11.1.0/24", {{1, {}}}));
  const auto routes = fib.dump();
  ASSERT_EQ(routes.size(), 3u);
  EXPECT_EQ(routes[0].prefix.str(), "10.11.0.0/16");
  EXPECT_EQ(routes[1].prefix.str(), "10.11.1.0/24");
  EXPECT_EQ(routes[2].prefix.str(), "10.11.2.0/24");
}

}  // namespace
}  // namespace f2t::routing
