#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t {
namespace {

using core::Testbed;

/// Table III's TCP rows: a paced TCP flow through a single downward-link
/// failure; the metric is the duration of throughput collapse (<50% of
/// the pre-failure average, 20 ms bins).
sim::Time run_tcp_collapse(const Testbed::TopoBuilder& builder,
                           std::uint64_t* rto_fires = nullptr) {
  const sim::Time fail_at = sim::millis(380);
  const sim::Time horizon = sim::seconds(4);

  Testbed bed(builder);
  bed.converge();
  auto plan = failure::build_condition(bed.topo(), failure::Condition::kC1,
                                       net::Protocol::kTcp);
  if (!plan) {
    ADD_FAILURE() << "no C1 plan";
    return 0;
  }

  auto& src_stack = bed.stack_of(*plan->src);
  auto& dst_stack = bed.stack_of(*plan->dst);
  // The TCP connection must hash onto the same path the plan was built
  // for, so reuse the plan's ports.
  transport::TcpConnection conn(src_stack, dst_stack, plan->sport,
                                plan->dport, transport::TcpConfig{});

  stats::ThroughputMeter meter;
  std::uint64_t last = 0;
  conn.b().set_on_delivered([&](std::uint64_t d) {
    meter.add(bed.sim().now(), d - last);
    last = d;
  });
  transport::PacedTcpWriter::Options wo;
  wo.stop = horizon - sim::millis(500);
  transport::PacedTcpWriter writer(conn.a(), bed.sim(), wo);
  writer.start();

  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, fail_at);
  }
  bed.sim().run(horizon);
  if (rto_fires != nullptr) *rto_fires = conn.a().stats().rto_fires;
  // Measure only while the app is still offering load, otherwise the
  // post-writer-stop silence reads as a bogus collapse.
  return stats::throughput_collapse_duration(meter, sim::millis(100),
                                             fail_at, wo.stop);
}

TEST(TcpCollapse, FatTreeSuffersDoubledRto) {
  // ~272 ms outage > 200 ms initial RTO: the first retransmission dies
  // too, so recovery waits for the doubled RTO => ~600-700 ms collapse.
  std::uint64_t rto = 0;
  const sim::Time collapse = run_tcp_collapse(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 4});
      },
      &rto);
  EXPECT_GE(collapse, sim::millis(550));
  EXPECT_LE(collapse, sim::millis(760));
  EXPECT_GE(rto, 2u);
}

TEST(TcpCollapse, F2TreeRecoversAfterSingleRto) {
  // ~60 ms outage < 200 ms RTO: the first retransmission already goes
  // through the backup path => ~200-260 ms collapse.
  std::uint64_t rto = 0;
  const sim::Time collapse = run_tcp_collapse(
      [](net::Network& n) { return topo::build_f2tree(n, 4); }, &rto);
  EXPECT_GE(collapse, sim::millis(160));
  EXPECT_LE(collapse, sim::millis(300));
  EXPECT_LE(rto, 2u);
}

TEST(TcpCollapse, EmulationScaleGapMatchesFig4C1) {
  const sim::Time fat = run_tcp_collapse([](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
  });
  const sim::Time f2 = run_tcp_collapse(
      [](net::Network& n) { return topo::build_f2tree(n, 8); });
  EXPECT_GT(fat, 2 * f2);  // paper: 610 ms vs 220 ms
}

}  // namespace
}  // namespace f2t
