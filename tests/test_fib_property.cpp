#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "routing/fib.hpp"
#include "sim/random.hpp"

namespace f2t::routing {
namespace {

/// Reference model: a plain list of routes searched linearly. Ground
/// truth for the FIB's hash-per-length + fallthrough implementation.
class ReferenceFib {
 public:
  void install(const Route& route) {
    for (auto& r : routes_) {
      if (r.prefix == route.prefix && r.source == route.source) {
        r = route;
        std::sort(r.next_hops.begin(), r.next_hops.end());
        return;
      }
    }
    routes_.push_back(route);
    std::sort(routes_.back().next_hops.begin(), routes_.back().next_hops.end());
  }

  void remove(const net::Prefix& prefix, RouteSource source) {
    std::erase_if(routes_, [&](const Route& r) {
      return r.prefix == prefix && r.source == source;
    });
  }

  std::vector<NextHop> lookup(net::Ipv4Addr dst,
                              const Fib::PortUpFn& up) const {
    for (int length = 32; length >= 0; --length) {
      // Best source for this prefix length that contains dst.
      const Route* best = nullptr;
      for (const Route& r : routes_) {
        if (r.prefix.length() != length || !r.prefix.contains(dst)) continue;
        if (best == nullptr || static_cast<int>(r.source) <
                                   static_cast<int>(best->source)) {
          best = &r;
        }
      }
      if (best == nullptr) continue;
      std::vector<NextHop> usable;
      for (const NextHop& nh : best->next_hops) {
        if (up(nh.port)) usable.push_back(nh);
      }
      if (!usable.empty()) return usable;
    }
    return {};
  }

 private:
  std::vector<Route> routes_;
};

TEST(FibProperty, MatchesReferenceModelUnderRandomOps) {
  sim::Random rng(20260706);
  Fib fib;
  ReferenceFib reference;

  auto random_prefix = [&] {
    // Cluster prefixes so lookups actually overlap.
    const int length = static_cast<int>(rng.uniform_int(8, 32));
    const net::Ipv4Addr addr(10, static_cast<std::uint8_t>(rng.uniform_int(10, 13)),
                             static_cast<std::uint8_t>(rng.uniform_int(0, 7)),
                             static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    return net::Prefix(addr, length);
  };
  auto random_source = [&] {
    switch (rng.uniform_int(0, 2)) {
      case 0: return RouteSource::kConnected;
      case 1: return RouteSource::kStatic;
      default: return RouteSource::kOspf;
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op < 6) {  // install
      Route route;
      route.prefix = random_prefix();
      route.source = random_source();
      const int hops = static_cast<int>(rng.uniform_int(1, 4));
      for (int h = 0; h < hops; ++h) {
        route.next_hops.push_back(
            NextHop{static_cast<net::PortId>(rng.uniform_int(0, 7)), {}});
      }
      // Deduplicate ports; the FIB sorts, the model must see identical sets.
      std::sort(route.next_hops.begin(), route.next_hops.end());
      route.next_hops.erase(
          std::unique(route.next_hops.begin(), route.next_hops.end()),
          route.next_hops.end());
      fib.install(route);
      reference.install(route);
    } else if (op < 8) {  // remove
      const auto prefix = random_prefix();
      const auto source = random_source();
      fib.remove(prefix, source);
      reference.remove(prefix, source);
    } else {  // lookup with a random subset of dead ports
      const std::uint64_t dead_mask =
          static_cast<std::uint64_t>(rng.uniform_int(0, 255));
      auto up = [dead_mask](net::PortId p) {
        return ((dead_mask >> p) & 1) == 0;
      };
      const net::Ipv4Addr dst(
          10, static_cast<std::uint8_t>(rng.uniform_int(10, 13)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 7)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      EXPECT_EQ(fib.lookup(dst, up), reference.lookup(dst, up))
          << "step " << step << " dst " << dst.str();
    }
  }
}

TEST(FibProperty, ReplaceSourceMatchesRemoveAllPlusInstalls) {
  sim::Random rng(77);
  Fib a;
  Fib b;
  // Seed both with identical statics.
  for (int i = 0; i < 10; ++i) {
    Route route;
    route.prefix = net::Prefix(
        net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(i), 0), 24);
    route.source = RouteSource::kStatic;
    route.next_hops = {NextHop{static_cast<net::PortId>(i % 4), {}}};
    a.install(route);
    b.install(route);
  }
  // Fill with OSPF routes.
  std::vector<Route> ospf;
  for (int i = 0; i < 20; ++i) {
    Route route;
    route.prefix = net::Prefix(
        net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(i), 0), 25);
    route.source = RouteSource::kOspf;
    route.next_hops = {NextHop{static_cast<net::PortId>(i % 8), {}}};
    ospf.push_back(route);
    a.install(route);
  }
  // a: installed one by one; b: replace_source in one shot.
  b.replace_source(RouteSource::kOspf, ospf);
  EXPECT_EQ(a.size(), b.size());
  auto up = [](net::PortId) { return true; };
  for (int i = 0; i < 20; ++i) {
    const net::Ipv4Addr dst(10, 11, static_cast<std::uint8_t>(i), 1);
    EXPECT_EQ(a.lookup(dst, up), b.lookup(dst, up));
  }
}

}  // namespace
}  // namespace f2t::routing
