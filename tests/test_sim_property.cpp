#include <gtest/gtest.h>

#include <algorithm>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace f2t::sim {
namespace {

/// Randomized scheduler workload checked against a sorted reference:
/// random schedule/cancel interleavings must fire exactly the uncancelled
/// events, in (time, insertion) order.
TEST(SchedulerProperty, MatchesSortedReferenceUnderRandomOps) {
  Random rng(1234);
  for (int round = 0; round < 20; ++round) {
    Scheduler scheduler;
    struct Planned {
      Time at;
      EventId id;
      std::uint64_t label;
      bool cancelled = false;
    };
    std::vector<Planned> planned;
    std::vector<std::uint64_t> fired;

    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const Time at = rng.uniform_int(0, 500);
      const auto label = static_cast<std::uint64_t>(i);
      const EventId id = scheduler.schedule_at(
          at, [&fired, label] { fired.push_back(label); });
      planned.push_back({at, id, label});
    }
    // Cancel a random third.
    for (auto& p : planned) {
      if (rng.chance(0.33)) {
        scheduler.cancel(p.id);
        p.cancelled = true;
      }
    }
    scheduler.run();

    std::vector<Planned> expected;
    for (const auto& p : planned) {
      if (!p.cancelled) expected.push_back(p);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Planned& a, const Planned& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return a.id < b.id;
                     });
    ASSERT_EQ(fired.size(), expected.size()) << "round " << round;
    for (std::size_t i = 0; i < fired.size(); ++i) {
      EXPECT_EQ(fired[i], expected[i].label) << "round " << round;
    }
  }
}

TEST(SchedulerProperty, CancellationDuringExecutionIsHonored) {
  Scheduler scheduler;
  bool second_fired = false;
  EventId second = kInvalidEventId;
  scheduler.schedule_at(10, [&] { scheduler.cancel(second); });
  second = scheduler.schedule_at(20, [&] { second_fired = true; });
  scheduler.run();
  EXPECT_FALSE(second_fired);
}

TEST(SchedulerProperty, ReschedulingFromHandlersKeepsOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(10, [&] {
    order.push_back(1);
    scheduler.schedule_at(15, [&] { order.push_back(2); });
    scheduler.schedule_at(10, [&] { order.push_back(3); });  // same time: after
  });
  scheduler.schedule_at(12, [&] { order.push_back(4); });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4, 2}));
}

}  // namespace
}  // namespace f2t::sim
