#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"

namespace f2t::sim {
namespace {

// ---------------------------------------------------------------------------
// Key-level: CalendarQueue must pop in exactly (at, id) order, whatever the
// bucket geometry does underneath.

TEST(CalendarQueue, PopsInKeyOrder) {
  CalendarQueue q;
  q.push({micros(30), 3});
  q.push({micros(10), 7});
  q.push({micros(20), 1});
  q.push({micros(10), 2});
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop(), (EventKey{micros(10), 2}));
  EXPECT_EQ(q.pop(), (EventKey{micros(10), 7}));
  EXPECT_EQ(q.pop(), (EventKey{micros(20), 1}));
  EXPECT_EQ(q.pop(), (EventKey{micros(30), 3}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, SameTimestampIsFifoById) {
  CalendarQueue q;
  // Ids out of push order: pop order must still be ascending id.
  for (const EventId id : {9u, 1u, 5u, 3u, 7u, 2u}) {
    q.push({millis(5), id});
  }
  EventId last = 0;
  while (!q.empty()) {
    const EventKey k = q.pop();
    EXPECT_GT(k.id, last);
    last = k.id;
  }
}

TEST(CalendarQueue, PeekMatchesPopAndHandlesEmpty) {
  CalendarQueue q;
  EXPECT_EQ(q.peek(), nullptr);
  q.push({seconds(1), 4});
  q.push({millis(1), 9});
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(*q.peek(), (EventKey{millis(1), 9}));
  EXPECT_EQ(q.pop(), (EventKey{millis(1), 9}));
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(*q.peek(), (EventKey{seconds(1), 4}));
}

TEST(CalendarQueue, InterleavedPushPopKeepsOrder) {
  // Pushing between pops (at times >= the popped time, the scheduler's
  // invariant) must never let a later key overtake an earlier one.
  CalendarQueue q;
  q.push({micros(100), 1});
  q.push({micros(300), 2});
  EXPECT_EQ(q.pop(), (EventKey{micros(100), 1}));
  q.push({micros(150), 3});  // earlier than the current min
  q.push({micros(100), 4});  // exactly at the last popped time
  EXPECT_EQ(q.pop(), (EventKey{micros(100), 4}));
  EXPECT_EQ(q.pop(), (EventKey{micros(150), 3}));
  EXPECT_EQ(q.pop(), (EventKey{micros(300), 2}));
}

TEST(CalendarQueue, SparseJumpsFindTheFarFuture) {
  // Events much more than a calendar year apart force the full-rotation
  // fallback scan; order must survive the cursor jumps.
  CalendarQueue q;
  q.push({seconds(1000), 2});
  q.push({micros(1), 1});
  q.push({seconds(2'000'000), 3});
  EXPECT_EQ(q.pop(), (EventKey{micros(1), 1}));
  EXPECT_EQ(q.pop(), (EventKey{seconds(1000), 2}));
  EXPECT_EQ(q.pop(), (EventKey{seconds(2'000'000), 3}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, AllKeysInOneBucketStillOrdered) {
  // Adversarial pile-up: identical timestamps all hash to one bucket, so
  // the bucket heap alone carries the ordering. Push enough to cross the
  // grow threshold while every key lands in the same day.
  CalendarQueue q;
  const std::size_t n = 4096;
  for (std::size_t i = 0; i < n; ++i) {
    q.push({millis(777), static_cast<EventId>(n - i)});
  }
  for (std::size_t i = 1; i <= n; ++i) {
    EXPECT_EQ(q.pop(), (EventKey{millis(777), static_cast<EventId>(i)}));
  }
}

TEST(CalendarQueue, GrowsAndShrinksAcrossLoad) {
  CalendarQueue q;
  const std::size_t initial = q.bucket_count();
  std::mt19937_64 rng(7);
  for (EventId id = 1; id <= 20000; ++id) {
    q.push({static_cast<Time>(rng() % static_cast<std::uint64_t>(seconds(1))),
            id});
  }
  EXPECT_GT(q.bucket_count(), initial);
  Time last = 0;
  while (q.size() > 8) {
    const EventKey k = q.pop();
    EXPECT_GE(k.at, last);
    last = k.at;
  }
  EXPECT_LT(q.bucket_count(), 20000u);
}

TEST(CalendarQueue, DifferentialAgainstBinaryHeap) {
  // Random interleaved push/pop against the original heap: the two
  // implementations must agree key-for-key at every step.
  std::mt19937_64 rng(42);
  CalendarQueue cal;
  BinaryHeapQueue heap;
  Time floor = 0;  // scheduler invariant: never push below the last pop
  EventId next_id = 1;
  for (int step = 0; step < 50000; ++step) {
    const bool do_push = cal.empty() || (rng() % 3) != 0;
    if (do_push) {
      // Mixed densities: mostly near-future, sometimes far-future,
      // sometimes exactly-now (the after(0) pattern).
      Time at = floor;
      switch (rng() % 4) {
        case 0: break;
        case 1: at += static_cast<Time>(rng() % 1000); break;
        case 2: at += static_cast<Time>(rng() % micros(200)); break;
        default: at += static_cast<Time>(rng() % seconds(2)); break;
      }
      const EventKey key{at, next_id++};
      cal.push(key);
      heap.push(key);
    } else {
      ASSERT_EQ(cal.size(), heap.size());
      const EventKey a = cal.pop();
      const EventKey b = heap.pop();
      ASSERT_EQ(a, b) << "diverged at step " << step;
      floor = a.at;
    }
  }
  while (!cal.empty()) {
    ASSERT_FALSE(heap.empty());
    ASSERT_EQ(cal.pop(), heap.pop());
  }
  EXPECT_TRUE(heap.empty());
}

// ---------------------------------------------------------------------------
// Scheduler-level: the calendar swap must preserve the documented cancel
// and ordering semantics exactly.

TEST(SchedulerCalendar, SameTimeEventsRunInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(millis(1), [&] { order.push_back(1); });
  sched.schedule_at(millis(1), [&] { order.push_back(2); });
  sched.schedule_at(0, [&] { order.push_back(0); });
  sched.schedule_at(millis(1), [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerCalendar, CancelOfFiredIdIsANoOp) {
  Scheduler sched;
  int fired = 0;
  const EventId first = sched.schedule_at(micros(1), [&] { ++fired; });
  sched.schedule_at(micros(2), [&] { ++fired; });
  sched.run(micros(1));
  EXPECT_EQ(fired, 1);
  sched.cancel(first);  // already fired: must not disturb the live event
  EXPECT_TRUE(sched.has_pending());
  EXPECT_EQ(sched.cancelled_backlog(), 0u);
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerCalendar, CancelPendingSkipsLazily) {
  Scheduler sched;
  int fired = 0;
  const EventId a = sched.schedule_at(micros(10), [&] { fired += 1; });
  sched.schedule_at(micros(20), [&] { fired += 10; });
  const EventId c = sched.schedule_at(micros(30), [&] { fired += 100; });
  sched.cancel(a);
  sched.cancel(c);
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sched.cancelled_backlog(), 0u);
  EXPECT_FALSE(sched.has_pending());
}

TEST(SchedulerCalendar, CancelAllThenReschedule) {
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sched.schedule_at(micros(i), [] {}));
  }
  for (const EventId id : ids) sched.cancel(id);
  EXPECT_FALSE(sched.has_pending());
  int fired = 0;
  sched.schedule_at(millis(1), [&] { ++fired; });
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), millis(1));
}

TEST(SchedulerCalendar, RunAdvancesToHorizonOverEmptyStretch) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(seconds(5), [&] { ++fired; });
  // A horizon short of the event fast-forwards time without firing.
  EXPECT_EQ(sched.run(seconds(2)), 0u);
  EXPECT_EQ(sched.now(), seconds(2));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.run(seconds(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), seconds(10));
}

TEST(SchedulerCalendar, RescheduleFromWithinAction) {
  // The sim.after(0) coalescing pattern: an action scheduling at now()
  // must run within the same run() call, after all same-time peers.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(millis(1), [&] {
    order.push_back(1);
    sched.schedule_at(sched.now(), [&] { order.push_back(3); });
  });
  sched.schedule_at(millis(1), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace f2t::sim
