#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::transport {
namespace {

core::Testbed make_f2_8() {
  return core::Testbed(
      [](net::Network& n) { return topo::build_f2tree(n, 8); });
}

TEST(PartitionAggregate, AllRequestsCompleteWithoutFailures) {
  auto bed = make_f2_8();
  bed.converge();
  PartitionAggregateOptions opts;
  opts.stop = sim::seconds(20);
  opts.mean_interarrival = sim::millis(100);
  PartitionAggregateApp app(bed.stacks(), sim::Random(3), opts);
  app.start();
  bed.sim().run(sim::seconds(25));

  EXPECT_GT(app.issued_count(), 100u);
  EXPECT_EQ(app.completed_count(), app.issued_count());
  EXPECT_DOUBLE_EQ(app.deadline_miss_ratio(sim::seconds(25)), 0.0);
  // Unloaded completion is a handful of RTTs, far below the deadline.
  const auto times = app.completion_times();
  EXPECT_LT(times.back(), sim::millis(50));
}

TEST(PartitionAggregate, SingleFailureCausesMissesInFatTreeOnly) {
  // Sustained request load through one long downward-link failure: the
  // fat tree misses deadlines for requests caught in the outage; F²Tree
  // fast-reroutes and (detection being 60 ms < the 250 ms deadline)
  // misses none. This is the Fig 6(a) mechanism in miniature.
  auto run = [](bool f2) {
    core::Testbed bed([f2](net::Network& n) {
      return f2 ? topo::build_f2tree(n, 8)
                : topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
    });
    bed.converge();
    PartitionAggregateOptions opts;
    opts.stop = sim::seconds(60);
    opts.mean_interarrival = sim::millis(20);
    PartitionAggregateApp app(bed.stacks(), sim::Random(17), opts);
    app.start();
    // Flap one agg->ToR downward link repeatedly: each fresh failure
    // reopens the recovery window (~270 ms in fat tree, ~60 ms in F²Tree)
    // that in-flight requests fall into.
    auto& topo = bed.topo();
    net::Link* link =
        bed.network().find_link(*topo.pods[0].aggs[0], *topo.pods[0].tors[0]);
    for (int k = 0; k < 10; ++k) {
      bed.injector().fail_for(*link, sim::seconds(5 + 5 * k),
                              sim::seconds(2));
    }
    bed.sim().run(sim::seconds(70));
    return app.deadline_miss_ratio(sim::seconds(70));
  };

  const double fat_miss = run(false);
  const double f2_miss = run(true);
  EXPECT_GT(fat_miss, 0.0);
  EXPECT_LT(f2_miss, fat_miss);
}

TEST(PartitionAggregate, RejectsTooFewHosts) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h1 = net.add_host("h1", net::Ipv4Addr(10, 11, 0, 10), &sw);
  HostStack s1(h1);
  PartitionAggregateOptions opts;
  EXPECT_THROW(PartitionAggregateApp({&s1}, sim::Random(1), opts),
               std::invalid_argument);
}

TEST(BackgroundTraffic, FlowsCompleteAndFollowDistribution) {
  auto bed = make_f2_8();
  bed.converge();
  BackgroundTrafficOptions opts;
  opts.stop = sim::seconds(30);
  opts.interarrival_median_s = 0.1;
  BackgroundTraffic bg(bed.stacks(), sim::Random(5), opts);
  bg.start();
  bed.sim().run(sim::seconds(60));

  ASSERT_GT(bg.flows().size(), 100u);
  EXPECT_EQ(bg.completed_count(), bg.flows().size());
  // Median of log-normal sizes should be near the configured median.
  std::vector<std::uint64_t> sizes;
  for (const auto& f : bg.flows()) sizes.push_back(f.bytes);
  std::sort(sizes.begin(), sizes.end());
  const double median = static_cast<double>(sizes[sizes.size() / 2]);
  EXPECT_GT(median, opts.size_median_bytes * 0.6);
  EXPECT_LT(median, opts.size_median_bytes * 1.7);
}

TEST(BackgroundTraffic, RejectsSingleHost) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h1 = net.add_host("h1", net::Ipv4Addr(10, 11, 0, 10), &sw);
  HostStack s1(h1);
  EXPECT_THROW(
      BackgroundTraffic({&s1}, sim::Random(1), BackgroundTrafficOptions{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace f2t::transport
