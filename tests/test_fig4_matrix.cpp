#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "core/runner.hpp"

namespace f2t {
namespace {

/// The full Fig 4 matrix as a parameterised suite: every Table IV
/// condition on both 8-port topologies, asserting the recovery *class*
/// the paper reports (detection-bound ~60 ms vs control-plane-bound
/// ~270 ms vs not-applicable).
enum class Expect { kDetectionBound, kControlPlaneBound, kNotApplicable };

struct MatrixCase {
  const char* name;
  const char* topo;
  failure::Condition condition;
  Expect expect;
};

class Fig4Matrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(Fig4Matrix, RecoveryClassMatchesPaper) {
  const auto& param = GetParam();
  core::RunKnobs knobs;
  knobs.horizon = sim::seconds(3);
  const auto r = core::run_udp_condition(
      core::topology_builder(param.topo, 8), param.condition, knobs);
  switch (param.expect) {
    case Expect::kNotApplicable:
      EXPECT_FALSE(r.ok);
      break;
    case Expect::kDetectionBound:
      ASSERT_TRUE(r.ok);
      EXPECT_GE(r.connectivity_loss, sim::millis(55)) << r.scenario;
      EXPECT_LE(r.connectivity_loss, sim::millis(70)) << r.scenario;
      break;
    case Expect::kControlPlaneBound:
      ASSERT_TRUE(r.ok);
      EXPECT_GE(r.connectivity_loss, sim::millis(200)) << r.scenario;
      EXPECT_LE(r.connectivity_loss, sim::millis(400)) << r.scenario;
      break;
  }
}

using failure::Condition;
INSTANTIATE_TEST_SUITE_P(
    AllConditions, Fig4Matrix,
    ::testing::Values(
        MatrixCase{"fat_C1", "fat", Condition::kC1, Expect::kControlPlaneBound},
        MatrixCase{"fat_C2", "fat", Condition::kC2, Expect::kControlPlaneBound},
        MatrixCase{"fat_C3", "fat", Condition::kC3, Expect::kControlPlaneBound},
        MatrixCase{"fat_C4", "fat", Condition::kC4, Expect::kControlPlaneBound},
        MatrixCase{"fat_C5", "fat", Condition::kC5, Expect::kControlPlaneBound},
        MatrixCase{"fat_C6", "fat", Condition::kC6, Expect::kNotApplicable},
        MatrixCase{"fat_C7", "fat", Condition::kC7, Expect::kNotApplicable},
        MatrixCase{"fat_C8", "fat", Condition::kC8, Expect::kNotApplicable},
        MatrixCase{"f2_C1", "f2", Condition::kC1, Expect::kDetectionBound},
        MatrixCase{"f2_C2", "f2", Condition::kC2, Expect::kDetectionBound},
        MatrixCase{"f2_C3", "f2", Condition::kC3, Expect::kDetectionBound},
        MatrixCase{"f2_C4", "f2", Condition::kC4, Expect::kDetectionBound},
        MatrixCase{"f2_C5", "f2", Condition::kC5, Expect::kDetectionBound},
        MatrixCase{"f2_C6", "f2", Condition::kC6, Expect::kDetectionBound},
        MatrixCase{"f2_C7", "f2", Condition::kC7,
                   Expect::kControlPlaneBound},
        MatrixCase{"f2_C8", "f2", Condition::kC8,
                   Expect::kControlPlaneBound}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace f2t
