#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t {
namespace {

using core::Testbed;
using failure::Condition;

/// Runs the paper's testbed experiment (§III): a CBR UDP probe through a
/// single downward ToR<->agg link failure, returning the measured
/// connectivity-loss duration.
struct UdpRunResult {
  sim::Time loss = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  bool gap_found = false;
};

UdpRunResult run_udp_failure(const Testbed::TopoBuilder& builder,
                             Condition condition,
                             sim::Time fail_at = sim::millis(380),
                             sim::Time horizon = sim::seconds(3)) {
  Testbed bed(builder);
  bed.converge();
  auto plan = failure::build_condition(bed.topo(), condition);
  if (!plan) {
    ADD_FAILURE() << "could not build scenario "
                  << failure::condition_name(condition);
    return {};
  }

  auto& src_stack = bed.stack_of(*plan->src);
  auto& dst_stack = bed.stack_of(*plan->dst);
  transport::UdpSink sink(dst_stack, plan->dport);
  transport::UdpCbrSender::Options opts;
  opts.sport = plan->sport;
  opts.dport = plan->dport;
  opts.stop = horizon - sim::millis(200);
  transport::UdpCbrSender sender(src_stack, plan->dst->addr(), opts);
  sender.start();

  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, fail_at);
  }
  bed.sim().run(horizon);

  UdpRunResult result;
  result.sent = sender.packets_sent();
  result.received = sink.packets_received();
  std::vector<sim::Time> arrivals;
  arrivals.reserve(sink.arrivals().size());
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, fail_at);
  result.gap_found = loss.has_value();
  if (loss) result.loss = loss->duration();
  return result;
}

Testbed::TopoBuilder fat4 = [](net::Network& n) {
  return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 4});
};
Testbed::TopoBuilder f2_4 = [](net::Network& n) {
  return topo::build_f2tree(n, 4);
};
Testbed::TopoBuilder fat8 = [](net::Network& n) {
  return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
};
Testbed::TopoBuilder f2_8 = [](net::Network& n) {
  return topo::build_f2tree(n, 8);
};

TEST(Recovery, FatTreeLossMatchesControlPlaneAnatomy) {
  // Table III: ~272 ms = 60 ms detection + LSA propagation + 200 ms SPF
  // timer + 10 ms FIB update.
  const auto r = run_udp_failure(fat4, Condition::kC1);
  ASSERT_TRUE(r.gap_found);
  EXPECT_GE(r.loss, sim::millis(265));
  EXPECT_LE(r.loss, sim::millis(290));
  EXPECT_GT(r.sent, 0u);
}

TEST(Recovery, F2TreeLossIsDetectionBound) {
  // Table III: ~60 ms, pure failure-detection time.
  const auto r = run_udp_failure(f2_4, Condition::kC1);
  ASSERT_TRUE(r.gap_found);
  EXPECT_GE(r.loss, sim::millis(58));
  EXPECT_LE(r.loss, sim::millis(70));
}

TEST(Recovery, F2TreeReducesLossByRoughly78Percent) {
  const auto fat = run_udp_failure(fat4, Condition::kC1);
  const auto f2 = run_udp_failure(f2_4, Condition::kC1);
  ASSERT_TRUE(fat.gap_found);
  ASSERT_TRUE(f2.gap_found);
  const double reduction =
      1.0 - sim::to_seconds(f2.loss) / sim::to_seconds(fat.loss);
  EXPECT_NEAR(reduction, 0.78, 0.05);
}

TEST(Recovery, F2TreePacketLossReducedByRoughly75Percent) {
  const auto fat = run_udp_failure(fat4, Condition::kC1);
  const auto f2 = run_udp_failure(f2_4, Condition::kC1);
  const auto fat_lost = stats::packets_lost(fat.sent, fat.received);
  const auto f2_lost = stats::packets_lost(f2.sent, f2.received);
  ASSERT_GT(fat_lost, 0u);
  const double reduction = 1.0 - static_cast<double>(f2_lost) /
                                     static_cast<double>(fat_lost);
  EXPECT_NEAR(reduction, 0.75, 0.07);
}

TEST(Recovery, EmulationScaleC1) {
  const auto fat = run_udp_failure(fat8, Condition::kC1);
  const auto f2 = run_udp_failure(f2_8, Condition::kC1);
  ASSERT_TRUE(fat.gap_found);
  ASSERT_TRUE(f2.gap_found);
  EXPECT_GE(fat.loss, sim::millis(260));
  EXPECT_LE(f2.loss, sim::millis(70));
}

TEST(Recovery, C2CoreLinkFailureRecoversViaCoreRing) {
  const auto f2 = run_udp_failure(f2_8, Condition::kC2);
  ASSERT_TRUE(f2.gap_found);
  EXPECT_LE(f2.loss, sim::millis(70));
  const auto fat = run_udp_failure(fat8, Condition::kC2);
  ASSERT_TRUE(fat.gap_found);
  EXPECT_GE(fat.loss, sim::millis(250));
}

TEST(Recovery, C4TwoAdjacentDownlinksRelayRightward) {
  const auto f2 = run_udp_failure(f2_8, Condition::kC4);
  ASSERT_TRUE(f2.gap_found);
  EXPECT_LE(f2.loss, sim::millis(70));
}

TEST(Recovery, C6RightAcrossDeadFallsBackLeft) {
  const auto f2 = run_udp_failure(f2_8, Condition::kC6);
  ASSERT_TRUE(f2.gap_found);
  EXPECT_LE(f2.loss, sim::millis(70));
}

TEST(Recovery, C7DegradesToFatTreeBehaviour) {
  // Fourth failure condition of §II-C: fast reroute fails, recovery waits
  // for the control plane.
  const auto f2 = run_udp_failure(f2_8, Condition::kC7);
  ASSERT_TRUE(f2.gap_found);
  EXPECT_GE(f2.loss, sim::millis(200));
}

}  // namespace
}  // namespace f2t
