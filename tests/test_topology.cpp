#include <gtest/gtest.h>

#include "core/scalability.hpp"
#include "sim/simulator.hpp"
#include "topo/backup_routes.hpp"
#include "topo/f2tree.hpp"
#include "topo/fattree.hpp"
#include "topo/leafspine.hpp"
#include "topo/validate.hpp"
#include "topo/vl2.hpp"

namespace f2t::topo {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  sim::Simulator sim_{1};
  net::Network network_{sim_};
};

TEST_F(TopologyTest, FatTreeCountsMatchClosedForm) {
  for (const int n : {4, 6, 8}) {
    sim::Simulator sim(1);
    net::Network network(sim);
    const auto topo = build_fat_tree(network, FatTreeOptions{.ports = n});
    EXPECT_EQ(static_cast<double>(topo.all_switches().size()),
              core::Scalability::fat_tree_switches(n))
        << "n=" << n;
    EXPECT_EQ(static_cast<double>(topo.hosts.size()),
              core::Scalability::fat_tree_nodes(n))
        << "n=" << n;
    EXPECT_TRUE(validate_topology(topo).empty());
  }
}

TEST_F(TopologyTest, FatTreeLinkCount) {
  const auto topo = build_fat_tree(network_, FatTreeOptions{.ports = 4});
  // k=4: 16 agg-tor + 16 agg-core + 16 host links.
  EXPECT_EQ(network_.link_count(), 48u);
}

TEST_F(TopologyTest, ScaledF2TreeMatchesTable1ClosedForm) {
  for (const int n : {6, 8, 10}) {
    sim::Simulator sim(1);
    net::Network network(sim);
    const auto topo = build_f2tree_scaled(network, F2TreeScaledOptions{n, -1});
    EXPECT_EQ(static_cast<double>(topo.all_switches().size()),
              core::Scalability::f2tree_switches(n))
        << "n=" << n;
    EXPECT_EQ(static_cast<double>(topo.hosts.size()),
              core::Scalability::f2tree_nodes(n))
        << "n=" << n;
    EXPECT_TRUE(validate_topology(topo).empty());
  }
}

TEST_F(TopologyTest, RewiredF2TreeSacrificesOneTorPerPod) {
  // The prototype transformation (Fig 1(b)) takes one ToR per pod out of
  // service to free one downward port on every aggregation switch; the
  // remaining ToRs keep their full uplink fan-out.
  sim::Simulator sim_a(1), sim_b(1);
  net::Network fat(sim_a), f2(sim_b);
  const auto fat_topo = build_fat_tree(fat, FatTreeOptions{.ports = 8});
  const auto f2_topo = build_f2tree(f2, 8);
  EXPECT_EQ(fat_topo.tors.size(), 32u);
  EXPECT_EQ(f2_topo.tors.size(), 24u);  // 8 pods x (4 - 1)
  EXPECT_EQ(f2_topo.hosts.size(), 96u);
  EXPECT_TRUE(validate_topology(f2_topo).empty());
  // Every agg keeps a downlink to every in-service ToR of its pod.
  for (const auto& pod : f2_topo.pods) {
    for (const auto* agg : pod.aggs) {
      for (const auto* tor : pod.tors) {
        EXPECT_NE(f2.find_link(*agg, *tor), nullptr)
            << agg->name() << " " << tor->name();
      }
    }
  }
}

TEST_F(TopologyTest, RewiredF2TreeRespectsPortBudget) {
  const auto topo = build_f2tree(network_, 8);
  for (const auto* sw : topo.all_switches()) {
    EXPECT_LE(static_cast<int>(sw->port_count()), 8) << sw->name();
  }
}

TEST_F(TopologyTest, RewiredF2TreeEveryAggAndCoreHasRing) {
  const auto topo = build_f2tree(network_, 8);
  for (const auto* sw : topo.aggs) {
    ASSERT_TRUE(topo.rings.contains(sw)) << sw->name();
    EXPECT_EQ(topo.rings.at(sw).right.size(), 1u);
    EXPECT_EQ(topo.rings.at(sw).left.size(), 1u);
  }
  for (const auto* sw : topo.cores) {
    ASSERT_TRUE(topo.rings.contains(sw)) << sw->name();
  }
  // ToRs never get across links.
  for (const auto* sw : topo.tors) {
    EXPECT_FALSE(topo.rings.contains(sw)) << sw->name();
  }
}

TEST_F(TopologyTest, RewiredF2TreeTorsKeepFullUplinkFanout) {
  const auto topo = build_f2tree(network_, 8);
  for (const auto* tor : topo.tors) {
    EXPECT_EQ(tor->port_count(), 8u) << tor->name();  // 4 up + 4 hosts
  }
}

TEST_F(TopologyTest, TestbedPrototypeN4HasDoubledAcrossLinks) {
  // Fig 1(b): 2-agg pods turn the "ring" into two parallel links.
  const auto topo = build_f2tree(network_, 4);
  for (const auto& pod : topo.pods) {
    ASSERT_EQ(pod.aggs.size(), 2u);
    const auto links = network_.find_links(*pod.aggs[0], *pod.aggs[1]);
    EXPECT_EQ(links.size(), 2u);
  }
}

TEST_F(TopologyTest, RingWidth4BuildsWhenPortsAllow) {
  const auto topo = build_f2tree(network_, 8, /*ring_width=*/4);
  EXPECT_TRUE(validate_topology(topo).empty());
  for (const auto* sw : topo.aggs) {
    EXPECT_EQ(topo.rings.at(sw).right.size(), 2u);
    EXPECT_EQ(topo.rings.at(sw).left.size(), 2u);
  }
}

TEST_F(TopologyTest, RingWidth4RejectedOnSmallSwitches) {
  EXPECT_THROW(build_f2tree(network_, 4, /*ring_width=*/4),
               std::invalid_argument);
}

TEST_F(TopologyTest, RejectsBadPortCounts) {
  EXPECT_THROW(build_fat_tree(network_, FatTreeOptions{.ports = 3}),
               std::invalid_argument);
  EXPECT_THROW(build_fat_tree(network_, FatTreeOptions{.ports = 5}),
               std::invalid_argument);
  EXPECT_THROW(build_f2tree_scaled(network_, F2TreeScaledOptions{4, -1}),
               std::invalid_argument);
}

TEST_F(TopologyTest, LeafSpineCounts) {
  const auto topo =
      build_leaf_spine(network_, LeafSpineOptions{.ports = 8});
  EXPECT_EQ(topo.cores.size(), 4u);   // spines
  EXPECT_EQ(topo.tors.size(), 8u);    // leaves
  EXPECT_EQ(topo.hosts.size(), 32u);
  EXPECT_TRUE(validate_topology(topo).empty());
}

TEST_F(TopologyTest, LeafSpineF2SacrificesTwoLeaves) {
  const auto topo = build_leaf_spine(
      network_, LeafSpineOptions{.ports = 8, .f2_rewire = true});
  EXPECT_TRUE(validate_topology(topo).empty());
  EXPECT_EQ(topo.tors.size(), 6u);  // two leaves taken out of service
  for (const auto* leaf : topo.tors) {
    EXPECT_EQ(leaf->port_count(), 8u) << leaf->name();  // 4 up + 4 hosts
  }
  for (const auto* spine : topo.cores) {
    ASSERT_TRUE(topo.rings.contains(spine));
    EXPECT_EQ(spine->port_count(), 8u) << spine->name();  // 6 down + 2 ring
  }
}

TEST_F(TopologyTest, Vl2CountsMatchTable1) {
  const auto topo = build_vl2(network_, Vl2Options{.ports = 8});
  EXPECT_EQ(static_cast<double>(topo.hosts.size()),
            core::Scalability::vl2_nodes(8));
  EXPECT_TRUE(validate_topology(topo).empty());
}

TEST_F(TopologyTest, Vl2F2AggsGetRings) {
  const auto topo =
      build_vl2(network_, Vl2Options{.ports = 8, .f2_rewire = true});
  EXPECT_TRUE(validate_topology(topo).empty());
  for (const auto* agg : topo.aggs) {
    ASSERT_TRUE(topo.rings.contains(agg)) << agg->name();
  }
  for (const auto* inter : topo.cores) {
    EXPECT_FALSE(topo.rings.contains(inter)) << inter->name();
  }
}

TEST_F(TopologyTest, BackupRoutesInstalledOnEveryRingSwitch) {
  auto topo = build_f2tree(network_, 8);
  const auto report = install_backup_routes(topo);
  EXPECT_EQ(report.switches_configured,
            static_cast<int>(topo.aggs.size() + topo.cores.size()));
  EXPECT_EQ(report.routes_installed, report.switches_configured * 2);
  for (const auto& [sw, ring] : topo.rings) {
    const auto r16 = sw->fib().find(net::Prefix::parse("10.11.0.0/16"),
                                    routing::RouteSource::kStatic);
    const auto r15 = sw->fib().find(net::Prefix::parse("10.10.0.0/15"),
                                    routing::RouteSource::kStatic);
    ASSERT_TRUE(r16.has_value()) << sw->name();
    ASSERT_TRUE(r15.has_value()) << sw->name();
    // /16 points rightward, /15 leftward (the paper's loop avoidance).
    EXPECT_EQ(r16->next_hops.at(0).port, ring.right.at(0)) << sw->name();
    EXPECT_EQ(r15->next_hops.at(0).port, ring.left.at(0)) << sw->name();
  }
}

TEST_F(TopologyTest, ScalabilityFormulas) {
  using S = core::Scalability;
  EXPECT_DOUBLE_EQ(S::fat_tree_nodes(8), 128);
  EXPECT_DOUBLE_EQ(S::f2tree_nodes(8), 72);
  EXPECT_DOUBLE_EQ(S::fat_tree_switches(8), 80);
  EXPECT_DOUBLE_EQ(S::f2tree_switches(8), 54);
  // The paper's headline: at 128 ports F²Tree supports ~2% fewer nodes.
  EXPECT_NEAR(S::f2tree_node_cost_fraction(128), 0.031, 0.01);
  EXPECT_LT(S::f2tree_node_cost_fraction(128), 0.035);
  const auto rows = core::table1(8);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[2].name, "F2Tree");
  EXPECT_THROW(core::table1(5), std::invalid_argument);
  EXPECT_THROW(core::table1(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace f2t::topo
