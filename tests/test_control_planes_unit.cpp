#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::routing {
namespace {

TEST(CentralBatching, NearbyReportsCoalesceIntoOneComputation) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kCentral;
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
      },
      config);
  bed.converge();
  // Fail three links within the batch window: one recompute, not three.
  auto& topo = bed.topo();
  bed.injector().fail_at(
      *bed.network().find_link(*topo.pods[0].aggs[0], *topo.pods[0].tors[0]),
      sim::millis(10));
  bed.injector().fail_at(
      *bed.network().find_link(*topo.pods[1].aggs[0], *topo.pods[1].tors[0]),
      sim::millis(11));
  bed.injector().fail_at(
      *bed.network().find_link(*topo.pods[2].aggs[0], *topo.pods[2].tors[0]),
      sim::millis(12));
  bed.sim().run(sim::millis(200));
  // 1 converge + 1 batched recompute.
  EXPECT_EQ(bed.controller().counters().computations, 2u);
  EXPECT_GE(bed.controller().counters().reports, 6u);  // both ends x3
}

TEST(CentralBatching, SpreadReportsTriggerSeparateComputations) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kCentral;
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
      },
      config);
  bed.converge();
  auto& topo = bed.topo();
  bed.injector().fail_at(
      *bed.network().find_link(*topo.pods[0].aggs[0], *topo.pods[0].tors[0]),
      sim::millis(10));
  bed.injector().fail_at(
      *bed.network().find_link(*topo.pods[1].aggs[0], *topo.pods[1].tors[0]),
      sim::millis(500));
  bed.sim().run(sim::seconds(1));
  EXPECT_EQ(bed.controller().counters().computations, 3u);  // converge + 2
}

TEST(PathVectorMrai, RepeatUpdatesToSameNeighborAreGated) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kPathVector;
  config.path_vector.mrai = sim::millis(400);
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 4});
      },
      config);
  bed.converge();
  auto& topo = bed.topo();
  auto* sx = topo.pods[0].aggs[0];
  net::Link* link = bed.network().find_link(*sx, *topo.pods[0].tors[0]);
  ASSERT_NE(link, nullptr);

  // Two transitions 100 ms apart (within the MRAI): the updates for the
  // second transition must wait out the interval.
  bed.injector().fail_at(*link, sim::millis(10));
  bed.injector().recover_at(*link, sim::millis(110));
  bed.sim().run(sim::millis(250));
  const auto mid = bed.path_vector_of(*sx).counters().updates_sent;
  bed.sim().run(sim::seconds(2));
  const auto after = bed.path_vector_of(*sx).counters().updates_sent;
  EXPECT_GT(after, mid);  // gated updates flushed once the MRAI expired
}

TEST(PathVectorCounters, WarmStartInstallsOnce) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kPathVector;
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 4});
      },
      config);
  bed.converge();
  for (auto* sw : bed.topo().all_switches()) {
    EXPECT_EQ(bed.path_vector_of(*sw).counters().fib_installs, 1u)
        << sw->name();
    EXPECT_EQ(bed.path_vector_of(*sw).counters().updates_sent, 0u)
        << sw->name();  // warm start exchanges no packets
  }
}

TEST(CentralPlane, WorksOnF2LeafSpine) {
  core::TestbedConfig config;
  config.control_plane = core::ControlPlane::kCentral;
  core::Testbed bed(
      [](net::Network& n) {
        return topo::build_leaf_spine(
            n, topo::LeafSpineOptions{.ports = 8, .f2_rewire = true});
      },
      config);
  bed.converge();
  const auto& hosts = bed.topo().hosts;
  net::Packet probe;
  probe.src = hosts.front()->addr();
  probe.dst = hosts.back()->addr();
  probe.sport = 100;
  const auto path = failure::trace_route(*hosts.front(), *hosts.back(), probe);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), hosts.back());
}

}  // namespace
}  // namespace f2t::routing
