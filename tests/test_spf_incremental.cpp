#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/runner.hpp"
#include "net/network.hpp"
#include "routing/smallvec.hpp"
#include "routing/spf.hpp"
#include "sim/simulator.hpp"

namespace f2t::routing {
namespace {

using net::Ipv4Addr;
using net::Prefix;

// ---------------------------------------------------------------------------
// Reference implementation: the original hash-based compute_spf, copied
// verbatim from before the dense-graph rewrite. The property suite below
// checks three-way agreement on every churn step:
//
//   SpfSolver::run  ==  compute_spf (dense)  ==  reference_spf (this)
//
// so a regression in either the dense rewrite or the incremental repair
// shows up as a route-set divergence from this known-good baseline.
// ---------------------------------------------------------------------------

using RefFirstHopSet = SmallVec<std::uint16_t, 8>;

void ref_insert_first_hop(RefFirstHopSet& set, std::uint16_t index) {
  const auto it = std::lower_bound(set.begin(), set.end(), index);
  if (it != set.end() && *it == index) return;
  const auto pos = static_cast<std::size_t>(it - set.begin());
  set.push_back(index);
  std::rotate(set.begin() + pos, set.end() - 1, set.end());
}

void ref_union_first_hops(RefFirstHopSet& into, const RefFirstHopSet& from) {
  for (const std::uint16_t index : from) ref_insert_first_hop(into, index);
}

struct RefNodeState {
  int dist = std::numeric_limits<int>::max();
  RefFirstHopSet first_hops;
};

bool ref_two_way(const Lsdb& lsdb, Ipv4Addr u, Ipv4Addr v) {
  const Lsa* lv = lsdb.find(v);
  if (lv == nullptr) return false;
  return std::any_of(lv->links.begin(), lv->links.end(),
                     [&](const LsaLink& l) { return l.neighbor == u; });
}

std::vector<Route> reference_spf(const Lsdb& lsdb, Ipv4Addr self,
                                 const std::vector<LocalAdjacency>& adjacency) {
  std::unordered_map<Ipv4Addr, std::vector<net::PortId>> ports_of;
  for (const LocalAdjacency& adj : adjacency) {
    ports_of[adj.neighbor].push_back(adj.port);
  }

  std::vector<Ipv4Addr> self_neighbors;
  self_neighbors.reserve(ports_of.size());
  for (const auto& [neighbor, ports] : ports_of) {
    self_neighbors.push_back(neighbor);
  }
  std::sort(self_neighbors.begin(), self_neighbors.end());
  std::unordered_map<Ipv4Addr, std::uint16_t> neighbor_index;
  neighbor_index.reserve(self_neighbors.size());
  for (std::size_t i = 0; i < self_neighbors.size(); ++i) {
    neighbor_index[self_neighbors[i]] = static_cast<std::uint16_t>(i);
  }

  std::unordered_map<Ipv4Addr, RefNodeState> state;
  state[self].dist = 0;

  using QueueItem = std::pair<int, Ipv4Addr>;
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push({0, self});
  std::unordered_set<Ipv4Addr> done;

  while (!queue.empty()) {
    const auto [dist, u] = queue.top();
    queue.pop();
    if (!done.insert(u).second) continue;
    const Lsa* lsa = lsdb.find(u);
    if (lsa == nullptr) continue;
    for (const LsaLink& edge : lsa->links) {
      const Ipv4Addr v = edge.neighbor;
      if (u == self) {
        if (!ports_of.contains(v)) continue;
      } else if (!ref_two_way(lsdb, u, v)) {
        continue;
      }
      const int ndist = dist + edge.cost;
      RefNodeState& sv = state[v];
      if (ndist < sv.dist) {
        sv.dist = ndist;
        sv.first_hops.clear();
      }
      if (ndist == sv.dist) {
        if (u == self) {
          ref_insert_first_hop(sv.first_hops, neighbor_index.at(v));
        } else {
          ref_union_first_hops(sv.first_hops, state[u].first_hops);
        }
        queue.push({ndist, v});
      }
    }
  }

  std::vector<Route> routes;
  for (const auto& [router, node_state] : state) {
    if (router == self || node_state.first_hops.empty()) continue;
    const Lsa* lsa = lsdb.find(router);
    if (lsa == nullptr || lsa->prefixes.empty()) continue;
    std::vector<NextHop> next_hops;
    for (const std::uint16_t hop_index : node_state.first_hops) {
      const Ipv4Addr hop = self_neighbors[hop_index];
      const auto it = ports_of.find(hop);
      if (it == ports_of.end()) continue;
      for (const net::PortId port : it->second) {
        next_hops.push_back(NextHop{port, hop});
      }
    }
    if (next_hops.empty()) continue;
    for (const Prefix& prefix : lsa->prefixes) {
      routes.push_back(Route{prefix, next_hops, RouteSource::kOspf});
    }
  }
  return routes;
}

// ---------------------------------------------------------------------------
// Churn harness: a control-plane-only model of a real topology. Per-router
// directed adjacency sets drive synthetic LSAs into one Lsdb; every
// mutation is followed by a three-way equivalence check.
// ---------------------------------------------------------------------------

bool route_less(const Route& a, const Route& b) {
  if (a.prefix != b.prefix) return a.prefix < b.prefix;
  if (a.source != b.source) return a.source < b.source;
  return a.next_hops < b.next_hops;
}

std::vector<Route> sorted(std::vector<Route> routes) {
  std::sort(routes.begin(), routes.end(), route_less);
  return routes;
}

struct Harness {
  // Physical (as-built) neighbor sets, the superset churn toggles within.
  std::map<Ipv4Addr, std::set<Ipv4Addr>> physical;
  // What each router's current LSA advertises (directed).
  std::map<Ipv4Addr, std::set<Ipv4Addr>> advertised;
  std::map<Ipv4Addr, std::vector<Prefix>> prefixes;
  std::map<Ipv4Addr, bool> extra_prefix;
  std::map<Ipv4Addr, std::uint64_t> sequence;
  std::vector<Ipv4Addr> routers;
  std::vector<std::pair<Ipv4Addr, Ipv4Addr>> links;  // undirected, u < v
  Lsdb lsdb;
  SpfSolver solver;
  Ipv4Addr self;
  std::vector<LocalAdjacency> self_ports;  // physical router-facing ports
  std::vector<bool> port_up;
  std::uint64_t incremental_runs = 0;
  std::uint64_t full_runs = 0;
  std::uint64_t checks = 0;

  void emit(Ipv4Addr origin) {
    auto lsa = std::make_shared<Lsa>();
    lsa->origin = origin;
    lsa->sequence = ++sequence[origin];
    for (const Ipv4Addr n : advertised[origin]) lsa->links.push_back({n, 1});
    lsa->prefixes = prefixes[origin];
    if (extra_prefix[origin]) {
      lsa->prefixes.push_back(
          Prefix::host(Ipv4Addr(origin.value() | 0xE0000000u)));
    }
    lsdb.consider(std::move(lsa));
  }

  std::vector<LocalAdjacency> live_adjacency() const {
    std::vector<LocalAdjacency> out;
    for (std::size_t i = 0; i < self_ports.size(); ++i) {
      if (port_up[i]) out.push_back(self_ports[i]);
    }
    return out;
  }
};

Harness make_harness(const std::string& topo_name, int ports) {
  sim::Simulator sim(1);
  net::Network network(sim);
  const topo::BuiltTopology topo =
      core::topology_builder(topo_name, ports)(network);

  Harness h;
  for (const net::L3Switch* sw : const_cast<topo::BuiltTopology&>(topo)
                                     .all_switches()) {
    const Ipv4Addr id = sw->router_id();
    h.routers.push_back(id);
    auto& neighbors = h.physical[id];
    for (net::PortId p = 0; p < sw->port_count(); ++p) {
      const auto& info = sw->port(p);
      if (info.peer_is_switch) neighbors.insert(info.peer_addr);
    }
  }
  for (const auto& [sw, subnet] : topo.subnet_of_tor) {
    h.prefixes[sw->router_id()].push_back(subnet);
  }
  std::sort(h.routers.begin(), h.routers.end());
  for (const auto& [u, neighbors] : h.physical) {
    for (const Ipv4Addr v : neighbors) {
      if (u < v && h.physical[v].contains(u)) h.links.emplace_back(u, v);
    }
  }
  h.advertised = h.physical;

  // Compute from the first (lowest-id) ToR: it has both a rack prefix and
  // the deepest view of the tree.
  const net::L3Switch* self_sw = topo.tors.front();
  h.self = self_sw->router_id();
  for (net::PortId p = 0; p < self_sw->port_count(); ++p) {
    const auto& info = self_sw->port(p);
    if (info.peer_is_switch) {
      h.self_ports.push_back(LocalAdjacency{p, info.peer_addr});
    }
  }
  h.port_up.assign(h.self_ports.size(), true);

  for (const Ipv4Addr r : h.routers) h.emit(r);
  return h;  // the Testbed-free Network dies here; only value state remains
}

void check_equivalence(Harness& h) {
  ++h.checks;
  const auto adjacency = h.live_adjacency();
  const auto incremental = sorted(h.solver.run(h.lsdb, h.self, adjacency));
  if (h.solver.last_run_incremental()) {
    ++h.incremental_runs;
  } else {
    ++h.full_runs;
  }
  const auto dense = sorted(compute_spf(h.lsdb, h.self, adjacency));
  const auto reference = sorted(reference_spf(h.lsdb, h.self, adjacency));
  ASSERT_EQ(dense.size(), reference.size()) << "check #" << h.checks;
  ASSERT_TRUE(dense == reference)
      << "dense compute_spf diverged from the reference at check #"
      << h.checks;
  ASSERT_EQ(incremental.size(), dense.size()) << "check #" << h.checks;
  ASSERT_TRUE(incremental == dense)
      << "SpfSolver diverged from compute_spf at check #" << h.checks;
}

void churn(Harness& h, std::uint32_t seed, int iterations) {
  std::mt19937 rng(seed);
  const auto pick_link = [&] {
    return h.links[rng() % h.links.size()];
  };
  const auto pick_router = [&] {
    return h.routers[rng() % h.routers.size()];
  };
  for (int i = 0; i < iterations; ++i) {
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2:
      case 3: {  // clean bidirectional link toggle, checked per direction
        const auto [a, b] = pick_link();
        if (h.advertised[a].contains(b) && h.advertised[b].contains(a)) {
          h.advertised[a].erase(b);
          h.emit(a);
          check_equivalence(h);
          h.advertised[b].erase(a);
        } else {
          h.advertised[a].insert(b);
          h.emit(a);
          check_equivalence(h);
          h.advertised[b].insert(a);
        }
        h.emit(b);
        check_equivalence(h);
        break;
      }
      case 4: {  // one-way toggle: asymmetric advertisement
        const auto [a, b] = pick_link();
        if (h.advertised[a].contains(b)) {
          h.advertised[a].erase(b);
        } else {
          h.advertised[a].insert(b);
        }
        h.emit(a);
        check_equivalence(h);
        break;
      }
      case 5: {  // prefix-only churn: no graph event, tree reuse path
        const Ipv4Addr r = pick_router();
        h.extra_prefix[r] = !h.extra_prefix[r];
        h.emit(r);
        check_equivalence(h);
        break;
      }
      case 6: {  // computing-router port flap (adjacency-only change)
        if (!h.port_up.empty()) {
          const std::size_t p = rng() % h.port_up.size();
          h.port_up[p] = !h.port_up[p];
        }
        check_equivalence(h);
        break;
      }
      case 7: {  // partition / heal one router wholesale
        const Ipv4Addr r = pick_router();
        if (h.advertised[r].empty()) {
          h.advertised[r] = h.physical[r];
        } else {
          h.advertised[r].clear();
        }
        h.emit(r);
        check_equivalence(h);
        break;
      }
      default: {  // recompute with nothing changed at all
        check_equivalence(h);
        break;
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

void run_property(const std::string& topo_name, int ports, std::uint32_t seed,
                  int iterations) {
  Harness h = make_harness(topo_name, ports);
  check_equivalence(h);  // initial full build
  if (::testing::Test::HasFatalFailure()) return;
  churn(h, seed, iterations);
  // The suite is only meaningful if both solver paths were exercised.
  EXPECT_GT(h.incremental_runs, 0u) << topo_name;
  EXPECT_GT(h.full_runs, 0u) << topo_name;
}

TEST(SpfIncrementalProperty, FatTreeChurn) {
  run_property("fat", 4, 0xF2A51u, 140);
}

TEST(SpfIncrementalProperty, Vl2Churn) { run_property("vl2", 4, 0x51E9u, 140); }

TEST(SpfIncrementalProperty, LeafSpineChurn) {
  run_property("leafspine", 4, 0xBEEFu, 140);
}

TEST(SpfIncrementalProperty, AspenChurn) {
  run_property("aspen", 4, 0xA59Eu, 140);
}

// ---------------------------------------------------------------------------
// Directed unit tests for the dense graph and the repair paths.
// ---------------------------------------------------------------------------

const Ipv4Addr A(10, 12, 0, 1);
const Ipv4Addr B(10, 12, 1, 1);
const Ipv4Addr C(10, 12, 2, 1);
const Ipv4Addr D(10, 12, 3, 1);
const Prefix kDst = Prefix::parse("10.11.9.0/24");

LsaPtr make_lsa(Ipv4Addr origin, std::vector<Ipv4Addr> neighbors,
                std::vector<Prefix> prefixes = {}, std::uint64_t seq = 1) {
  auto lsa = std::make_shared<Lsa>();
  lsa->origin = origin;
  lsa->sequence = seq;
  for (const auto& n : neighbors) lsa->links.push_back({n, 1});
  lsa->prefixes = std::move(prefixes);
  return lsa;
}

TEST(LinkStateGraph, AsymmetricLinkIsNotTwoWay) {
  // B advertises C but C does not advertise B: the precomputed edge exists
  // one-way only, and SPF must not route through it.
  Lsdb db;
  db.consider(make_lsa(A, {B}));
  db.consider(make_lsa(B, {A, C}));
  db.consider(make_lsa(C, {}, {kDst}));

  const LinkStateGraph& g = db.graph();
  const RouterIndex bi = g.index_of(B);
  const RouterIndex ci = g.index_of(C);
  ASSERT_NE(bi, kNoRouter);
  ASSERT_NE(ci, kNoRouter);
  const DenseEdge* bc = g.find_edge(bi, ci);
  ASSERT_NE(bc, nullptr);
  EXPECT_FALSE(bc->two_way);
  EXPECT_EQ(g.find_edge(ci, bi), nullptr);

  const std::vector<LocalAdjacency> adjacency{{0, B}};
  EXPECT_TRUE(compute_spf(db, A, adjacency).empty());
  EXPECT_FALSE(lsdb_reachable(db, A, C));

  // C answering back completes the pair: the same edge flips to two-way
  // and the route appears.
  db.consider(make_lsa(C, {B}, {kDst}, 2));
  const DenseEdge* bc2 = g.find_edge(bi, ci);
  ASSERT_NE(bc2, nullptr);
  EXPECT_TRUE(bc2->two_way);
  const auto routes = compute_spf(db, A, adjacency);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].prefix, kDst);
  EXPECT_TRUE(lsdb_reachable(db, A, C));
}

TEST(SpfSolver, RemoteLinkFailureRunsIncrementally) {
  // Square A-B-D-C-A with the prefix at D: cutting the far link B-D is a
  // single remote structural event, so the solver repairs the subtree.
  Lsdb db;
  db.consider(make_lsa(A, {B, C}));
  db.consider(make_lsa(B, {A, D}));
  db.consider(make_lsa(C, {A, D}));
  db.consider(make_lsa(D, {B, C}, {kDst}));
  const std::vector<LocalAdjacency> adjacency{{0, B}, {1, C}};

  SpfSolver solver;
  auto routes = solver.run(db, A, adjacency);
  EXPECT_FALSE(solver.last_run_incremental());  // first run is always full
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].next_hops.size(), 2u);

  // First direction of the cut: B stops advertising D.
  db.consider(make_lsa(B, {A}, {}, 2));
  routes = solver.run(db, A, adjacency);
  EXPECT_TRUE(solver.last_run_incremental());
  ASSERT_EQ(routes.size(), 1u);
  ASSERT_EQ(routes[0].next_hops.size(), 1u);
  EXPECT_EQ(routes[0].next_hops[0].via, C);
  EXPECT_TRUE(sorted(routes) == sorted(compute_spf(db, A, adjacency)));

  // Second direction: origin-only from A's perspective, still incremental.
  db.consider(make_lsa(D, {C}, {kDst}, 2));
  routes = solver.run(db, A, adjacency);
  EXPECT_TRUE(solver.last_run_incremental());
  EXPECT_TRUE(sorted(routes) == sorted(compute_spf(db, A, adjacency)));

  // Recovery: both directions come back, each step stays incremental and
  // equivalent, and ECMP over B and C is restored.
  db.consider(make_lsa(B, {A, D}, {}, 3));
  routes = solver.run(db, A, adjacency);
  EXPECT_TRUE(solver.last_run_incremental());
  EXPECT_TRUE(sorted(routes) == sorted(compute_spf(db, A, adjacency)));

  db.consider(make_lsa(D, {B, C}, {kDst}, 3));
  routes = solver.run(db, A, adjacency);
  EXPECT_TRUE(solver.last_run_incremental());
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].next_hops.size(), 2u);
  EXPECT_TRUE(sorted(routes) == sorted(compute_spf(db, A, adjacency)));
}

TEST(SpfSolver, LocalEventsAndAdjacencyChangesFallBackToFull) {
  Lsdb db;
  db.consider(make_lsa(A, {B, C}));
  db.consider(make_lsa(B, {A, D}));
  db.consider(make_lsa(C, {A, D}));
  db.consider(make_lsa(D, {B, C}, {kDst}));
  std::vector<LocalAdjacency> adjacency{{0, B}, {1, C}};

  SpfSolver solver;
  (void)solver.run(db, A, adjacency);

  // An event touching the computing router itself must not be repaired:
  // self relaxation trusts local adjacency, not the two-way flags.
  db.consider(make_lsa(A, {B}, {}, 2));
  auto routes = solver.run(db, A, adjacency);
  EXPECT_FALSE(solver.last_run_incremental());
  EXPECT_TRUE(sorted(routes) == sorted(compute_spf(db, A, adjacency)));

  db.consider(make_lsa(A, {B, C}, {}, 3));
  (void)solver.run(db, A, adjacency);

  // A local port flap changes the adjacency argument only: no LSA moved,
  // but the cached tree's first-hop mapping is stale, so full run.
  adjacency.pop_back();
  routes = solver.run(db, A, adjacency);
  EXPECT_FALSE(solver.last_run_incremental());
  EXPECT_TRUE(sorted(routes) == sorted(compute_spf(db, A, adjacency)));
}

TEST(SpfSolver, PrefixOnlyChurnReusesTree) {
  Lsdb db;
  db.consider(make_lsa(A, {B}));
  db.consider(make_lsa(B, {A}, {kDst}));
  const std::vector<LocalAdjacency> adjacency{{0, B}};

  SpfSolver solver;
  (void)solver.run(db, A, adjacency);

  // B re-originates with a second prefix: zero structural events, the
  // cached tree is reused and only emission re-runs.
  const Prefix extra = Prefix::parse("10.11.10.0/24");
  db.consider(make_lsa(B, {A}, {kDst, extra}, 2));
  const auto routes = solver.run(db, A, adjacency);
  EXPECT_TRUE(solver.last_run_incremental());
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_TRUE(sorted(routes) == sorted(compute_spf(db, A, adjacency)));
}

}  // namespace
}  // namespace f2t::routing
