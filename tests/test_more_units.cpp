#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t {
namespace {

// --- link pipeline ordering --------------------------------------------------

TEST(LinkPipeline, BackToBackPacketsArriveInOrderAndSpaced) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h = net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &sw);
  std::vector<std::pair<std::uint32_t, sim::Time>> arrivals;
  h.set_packet_handler([&](net::Packet p) {
    arrivals.emplace_back(p.udp_seq, sim.now());
  });
  // Three 1250-byte packets enqueued at once: 10 us serialization each.
  sim.at(0, [&] {
    for (std::uint32_t i = 0; i < 3; ++i) {
      net::Packet p;
      p.dst = h.addr();
      p.size_bytes = 1250;
      p.udp_seq = i;
      sw.send(0, p);
    }
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0].first, 0u);
  EXPECT_EQ(arrivals[1].first, 1u);
  EXPECT_EQ(arrivals[2].first, 2u);
  // Spacing equals the serialization time (10 us at 1 Gbps).
  EXPECT_EQ(arrivals[1].second - arrivals[0].second, sim::micros(10));
  EXPECT_EQ(arrivals[2].second - arrivals[1].second, sim::micros(10));
}

TEST(LinkPipeline, FlapMidSerializationDropsOnlyAffectedPackets) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h = net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &sw);
  net::Link* link = net.find_link(sw, h);
  int received = 0;
  h.set_packet_handler([&](net::Packet) { ++received; });
  net::Packet p;
  p.dst = h.addr();
  p.size_bytes = 1250;  // 10 us serialization + 5 us propagation
  sim.at(0, [&] { sw.send(0, p); });
  sim.at(sim::micros(2), [&] { link->set_up(false); });  // mid-serialization
  sim.at(sim::micros(4), [&] { link->set_up(true); });
  sim.at(sim::micros(20), [&] { sw.send(0, p); });  // after recovery
  sim.run();
  EXPECT_EQ(received, 1);
}

// --- traced paths are internally consistent ----------------------------------

TEST(TraceDetail, NodesAndLinksAgree) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  const auto& hosts = bed.topo().hosts;
  net::Packet probe;
  probe.src = hosts.front()->addr();
  probe.dst = hosts.back()->addr();
  probe.sport = 777;
  const auto traced =
      failure::trace_route_detailed(*hosts.front(), *hosts.back(), probe);
  ASSERT_FALSE(traced.empty());
  ASSERT_EQ(traced.links.size(), traced.nodes.size() - 1);
  for (std::size_t i = 0; i < traced.links.size(); ++i) {
    const net::Link* link = traced.links[i];
    const net::Node* a = traced.nodes[i];
    const net::Node* b = traced.nodes[i + 1];
    EXPECT_TRUE((link->end_a().node == a && link->end_b().node == b) ||
                (link->end_a().node == b && link->end_b().node == a))
        << "hop " << i;
  }
}

// --- random failure generator timing ------------------------------------------

TEST(RandomFailureTiming, RespectsStartAndStop) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  failure::RandomFailureOptions opts;
  opts.start = sim::seconds(10);
  opts.stop = sim::seconds(20);
  opts.interarrival_median_s = 0.5;
  opts.interarrival_sigma = 0.3;
  opts.duration_median_s = 0.5;
  opts.duration_sigma = 0.3;
  failure::RandomFailureGenerator gen(bed.injector(), sim::Random(3), opts);
  gen.start();
  bed.sim().run(sim::seconds(60));
  ASSERT_GT(gen.failures_injected(), 0);
  for (const auto& event : bed.injector().history()) {
    if (!event.up) {
      EXPECT_GE(event.at, opts.start);
      EXPECT_LE(event.at, opts.stop);
    }
  }
}

// --- forward tap arguments -----------------------------------------------------

TEST(ForwardTap, ReportsIngressAndEgress) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h1 = net.add_host("h1", net::Ipv4Addr(10, 11, 0, 10), &sw);  // port 0
  auto& h2 = net.add_host("h2", net::Ipv4Addr(10, 11, 0, 11), &sw);  // port 1
  (void)h2;
  net::PortId seen_in = 99, seen_out = 99;
  sw.set_forward_tap(
      [&](const net::Packet&, net::PortId in, net::PortId out) {
        seen_in = in;
        seen_out = out;
      });
  net::Packet p;
  p.src = h1.addr();
  p.dst = net::Ipv4Addr(10, 11, 0, 11);
  p.size_bytes = 100;
  sim.at(0, [&] { h1.send_up(p); });
  sim.run();
  EXPECT_EQ(seen_in, 0);   // arrived from h1's port
  EXPECT_EQ(seen_out, 1);  // left toward h2
}

// --- host stack unmatched counter ----------------------------------------------

TEST(HostStackDemux, CountsUnmatchedPackets) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h = net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &sw);
  transport::HostStack stack(h);
  net::Packet p;
  p.dst = h.addr();
  p.proto = net::Protocol::kUdp;
  p.dport = 1234;  // nothing bound
  p.size_bytes = 100;
  sim.at(0, [&] { sw.send(0, p); });
  sim.run();
  EXPECT_EQ(stack.unmatched_packets(), 1u);
}

// --- throughput meter bin alignment --------------------------------------------

TEST(ThroughputMeterAlignment, BinBoundariesExact) {
  stats::ThroughputMeter m(sim::millis(20));
  m.add(sim::millis(20) - 1, 100);  // last ns of bin 0
  m.add(sim::millis(20), 200);      // first ns of bin 1
  const auto series = m.series(0, sim::millis(40));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].bytes, 100u);
  EXPECT_EQ(series[1].bytes, 200u);
}

// --- CDF randomized vs reference -------------------------------------------------

TEST(CdfProperty, FractionAboveMatchesLinearScan) {
  sim::Random rng(31);
  stats::Cdf cdf;
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform_real(0, 1000);
    cdf.add(v);
    samples.push_back(v);
  }
  for (const double x : {-1.0, 0.0, 123.4, 500.0, 999.9, 1001.0}) {
    int above = 0;
    for (const double s : samples) {
      if (s > x) ++above;
    }
    EXPECT_DOUBLE_EQ(cdf.fraction_above(x),
                     static_cast<double>(above) / samples.size())
        << "x=" << x;
  }
}

// --- partition-aggregate deadline accounting -------------------------------------

TEST(DeadlineAccounting, OutstandingRequestsCountAsMissedAfterDeadline) {
  // Black-hole the whole network right away: requests never complete and
  // must be counted as missed once the deadline passes.
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  transport::PartitionAggregateOptions opts;
  opts.start = sim::millis(10);
  opts.stop = sim::millis(400);
  opts.mean_interarrival = sim::millis(50);
  transport::PartitionAggregateApp app(bed.stacks(), sim::Random(4), opts);
  app.start();
  for (auto* link : bed.network().links()) {
    bed.injector().fail_at(*link, sim::millis(5));
  }
  bed.sim().run(sim::seconds(2));
  EXPECT_GT(app.issued_count(), 0u);
  EXPECT_EQ(app.completed_count(), 0u);
  EXPECT_DOUBLE_EQ(app.deadline_miss_ratio(sim::seconds(2)), 1.0);
  // Requests younger than the deadline are not yet judged.
  EXPECT_LT(app.deadline_miss_ratio(sim::millis(100)), 1.0);
}

}  // namespace
}  // namespace f2t
