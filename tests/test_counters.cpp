#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/queue.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"

namespace f2t {
namespace {

// Coverage for counter paths the recovery-centric suites never exercise:
// local switch drops, control-plane ingress accounting, ECN marking and
// tracer state reset between experiment phases.

net::Packet data_packet(net::Ipv4Addr dst, std::uint8_t ttl = 64) {
  net::Packet p;
  p.dst = dst;
  p.size_bytes = 100;
  p.ttl = ttl;
  return p;
}

TEST(SwitchCounters, NoRouteDropIsCountedAndReported) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));

  net::L3Switch::DropReason seen{};
  int drops = 0;
  a.set_drop_handler([&](const net::Packet&, net::L3Switch::DropReason r) {
    seen = r;
    ++drops;
  });

  EXPECT_FALSE(a.forward(data_packet(net::Ipv4Addr(10, 99, 0, 1))));
  EXPECT_EQ(a.counters().dropped_no_route, 1u);
  EXPECT_EQ(a.counters().forwarded, 0u);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(seen, net::L3Switch::DropReason::kNoRoute);
}

TEST(SwitchCounters, TtlExpiryIsCountedAndReported) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));

  net::L3Switch::DropReason seen{};
  a.set_drop_handler([&seen](const net::Packet&,
                             net::L3Switch::DropReason r) { seen = r; });

  // ttl=1 decrements to zero at this hop: the packet dies here even if a
  // route exists, and the FIB is never consulted.
  EXPECT_FALSE(a.forward(data_packet(net::Ipv4Addr(10, 99, 0, 1), 1)));
  EXPECT_EQ(a.counters().dropped_ttl, 1u);
  EXPECT_EQ(a.counters().dropped_no_route, 0u);
  EXPECT_EQ(seen, net::L3Switch::DropReason::kTtlExpired);
}

TEST(SwitchCounters, ControlPacketsAreCountedNotForwarded) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));

  int control_seen = 0;
  net::PortId control_port = net::kInvalidPort;
  a.set_control_handler([&](net::PortId p, const net::Packet&) {
    ++control_seen;
    control_port = p;
  });

  net::Packet p = data_packet(net::Ipv4Addr(10, 99, 0, 1));
  p.proto = net::Protocol::kRouting;
  a.receive(2, p);
  EXPECT_EQ(a.counters().control_in, 1u);
  EXPECT_EQ(a.counters().forwarded, 0u);
  EXPECT_EQ(control_seen, 1);
  EXPECT_EQ(control_port, 2);

  // Without a handler the packet is still counted, not forwarded.
  a.set_control_handler(nullptr);
  a.receive(2, p);
  EXPECT_EQ(a.counters().control_in, 2u);
  EXPECT_EQ(a.counters().forwarded, 0u);
}

TEST(SwitchCounters, LocalDeliveryIsCounted) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));
  a.receive(0, data_packet(net::Ipv4Addr(10, 0, 0, 1)));
  EXPECT_EQ(a.counters().local_delivered, 1u);
  EXPECT_EQ(a.counters().forwarded, 0u);
}

TEST(DropTailQueue, EcnMarksAboveThreshold) {
  net::DropTailQueue q(4);
  q.set_ecn_threshold(2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.push(data_packet(net::Ipv4Addr(10, 0, 0, 9))));
  }
  // Pushes 3 and 4 arrive while size() >= 2, so exactly those are marked.
  EXPECT_EQ(q.marked(), 2u);
  EXPECT_EQ(q.enqueued(), 4u);
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_FALSE(q.pop()->ecn_ce);
  EXPECT_FALSE(q.pop()->ecn_ce);
  EXPECT_TRUE(q.pop()->ecn_ce);
  EXPECT_TRUE(q.pop()->ecn_ce);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(DropTailQueue, ZeroThresholdDisablesMarking) {
  net::DropTailQueue q(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.push(data_packet(net::Ipv4Addr(10, 0, 0, 9))));
  }
  EXPECT_EQ(q.marked(), 0u);
  EXPECT_FALSE(q.push(data_packet(net::Ipv4Addr(10, 0, 0, 9))));  // tail drop
  EXPECT_EQ(q.dropped(), 1u);
}

TEST(PacketTracer, ClearResetsStateBetweenPhases) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 0, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 0, 0, 2));
  net.connect(a, b);
  a.fib().install(routing::Route{net::Prefix::parse("10.11.0.0/16"),
                                 {routing::NextHop{0, b.router_id()}},
                                 routing::RouteSource::kStatic});
  net::PacketTracer tracer(net);

  net::Packet p = data_packet(net::Ipv4Addr(10, 11, 0, 1));
  p.uid = 5;
  EXPECT_TRUE(a.forward(p));
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(tracer.packet_count(), 1u);
  ASSERT_EQ(tracer.hops_of(5).size(), 1u);
  EXPECT_EQ(tracer.hops_of(5)[0].egress, 0);

  // Phase boundary: clear() must forget everything but keep tracing.
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.packet_count(), 0u);
  EXPECT_TRUE(tracer.hops_of(5).empty());

  p.uid = 6;
  EXPECT_TRUE(a.forward(p));
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(tracer.hops_of(6).size(), 1u);
  EXPECT_TRUE(tracer.hops_of(5).empty());
}

}  // namespace
}  // namespace f2t
