#include <gtest/gtest.h>

#include "core/f2tree.hpp"

namespace f2t::transport {
namespace {

/// TCP correctness across a fast reroute: the path changes mid-flow (and
/// briefly black-holes), yet the byte stream must arrive complete and
/// exactly once.
TEST(TcpReroute, StreamSurvivesFastRerouteIntact) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  const auto plan = failure::build_condition(
      bed.topo(), failure::Condition::kC1, net::Protocol::kTcp);
  ASSERT_TRUE(plan.has_value());

  auto& a = bed.stack_of(*plan->src);
  auto& b = bed.stack_of(*plan->dst);
  TcpConnection conn(a, b, plan->sport, plan->dport, TcpConfig{});

  // Monotone delivery check: on_delivered totals must never regress.
  std::uint64_t last_delivered = 0;
  bool monotone = true;
  conn.b().set_on_delivered([&](std::uint64_t d) {
    if (d < last_delivered) monotone = false;
    last_delivered = d;
  });

  PacedTcpWriter::Options wo;
  wo.stop = sim::seconds(2);
  PacedTcpWriter writer(conn.a(), bed.sim(), wo);
  writer.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(5));

  EXPECT_TRUE(monotone);
  EXPECT_EQ(conn.b().bytes_delivered(), conn.a().bytes_written());
  EXPECT_EQ(conn.a().bytes_acked(), conn.a().bytes_written());
  // One RTO covers the 60 ms hole; the stream should not need many.
  EXPECT_LE(conn.a().stats().rto_fires, 3u);
}

TEST(TcpReroute, FatTreeStreamAlsoCompletesJustSlower) {
  core::Testbed bed([](net::Network& n) {
    return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = 8});
  });
  bed.converge();
  const auto plan = failure::build_condition(
      bed.topo(), failure::Condition::kC1, net::Protocol::kTcp);
  ASSERT_TRUE(plan.has_value());

  auto& a = bed.stack_of(*plan->src);
  auto& b = bed.stack_of(*plan->dst);
  TcpConnection conn(a, b, plan->sport, plan->dport, TcpConfig{});
  PacedTcpWriter::Options wo;
  wo.stop = sim::seconds(2);
  PacedTcpWriter writer(conn.a(), bed.sim(), wo);
  writer.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(6));

  EXPECT_EQ(conn.b().bytes_delivered(), conn.a().bytes_written());
  // The ~270 ms outage forces at least a doubled RTO.
  EXPECT_GE(conn.a().stats().rto_fires, 2u);
}

TEST(TcpReroute, RequestResponseDuringOutageMeetsPaperTiming) {
  // A partition-aggregate style exchange launched mid-outage in F²Tree:
  // the request's first transmission dies (sent before detection), the
  // 200 ms RTO retry rides the backup path — completion ≈ 200 ms, under
  // the 250 ms deadline. This is the Fig 6 "0.04% of requests completed
  // around 200 ms" mechanism.
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  const auto plan = failure::build_condition(
      bed.topo(), failure::Condition::kC1, net::Protocol::kTcp);
  ASSERT_TRUE(plan.has_value());

  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }

  auto& a = bed.stack_of(*plan->src);
  auto& b = bed.stack_of(*plan->dst);
  TcpConnection conn(a, b, plan->sport, plan->dport, TcpConfig{});
  sim::Time completed = sim::kNever;
  bool responded = false;
  conn.b().set_on_delivered([&](std::uint64_t d) {
    if (!responded && d >= 100) {
      responded = true;
      conn.b().write(2048);
    }
  });
  conn.a().set_on_delivered([&](std::uint64_t d) {
    if (d >= 2048 && completed == sim::kNever) completed = bed.sim().now();
  });
  // Issue the request 5 ms after the failure, well inside the detection
  // window.
  const sim::Time issued = sim::millis(385);
  bed.sim().at(issued, [&] { conn.a().write(100); });
  bed.sim().run(sim::seconds(3));

  ASSERT_NE(completed, sim::kNever);
  const sim::Time completion = completed - issued;
  EXPECT_GE(completion, sim::millis(190));
  EXPECT_LE(completion, sim::millis(250));  // meets the paper's deadline
}

}  // namespace
}  // namespace f2t::transport
