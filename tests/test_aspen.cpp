#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "topo/aspen.hpp"

namespace f2t::topo {
namespace {

TEST(Aspen, CountsMatchTable1ClosedForm) {
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {8, 1}, {8, 3}, {12, 1}, {12, 2}}) {
    sim::Simulator sim(1);
    net::Network net(sim);
    const auto topo = build_aspen_tree(
        net, AspenOptions{.ports = n, .fault_tolerance = f,
                          .hosts_per_tor = -1});
    EXPECT_EQ(static_cast<double>(topo.hosts.size()),
              core::Scalability::aspen_nodes(n, f))
        << "n=" << n << " f=" << f;
    EXPECT_EQ(static_cast<double>(topo.all_switches().size()),
              core::Scalability::aspen_switches(n, f))
        << "n=" << n << " f=" << f;
    EXPECT_TRUE(validate_topology(topo).empty());
  }
}

TEST(Aspen, FaultTolerantLayerHasParallelLinks) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo = build_aspen_tree(
      net, AspenOptions{.ports = 8, .fault_tolerance = 1, .hosts_per_tor = -1});
  auto* agg = topo.pods[0].aggs[0];
  auto* core = topo.core_groups[0][0];
  EXPECT_EQ(net.find_links(*agg, *core).size(), 2u);  // f+1 = 2
  // ToR layer stays single-homed per agg.
  auto* tor = topo.pods[0].tors[0];
  EXPECT_EQ(net.find_links(*agg, *tor).size(), 1u);
}

TEST(Aspen, RejectsBadParameters) {
  sim::Simulator sim(1);
  net::Network net(sim);
  EXPECT_THROW(build_aspen_tree(net, AspenOptions{.ports = 8,
                                                  .fault_tolerance = 0,
                                                  .hosts_per_tor = -1}),
               std::invalid_argument);
  EXPECT_THROW(build_aspen_tree(net, AspenOptions{.ports = 8,
                                                  .fault_tolerance = 2,
                                                  .hosts_per_tor = -1}),
               std::invalid_argument);  // 8 % 6 != 0
  EXPECT_THROW(build_aspen_tree(net, AspenOptions{.ports = 7,
                                                  .fault_tolerance = 1,
                                                  .hosts_per_tor = -1}),
               std::invalid_argument);
}

TEST(Aspen, CoreLayerFailureRecoversViaEcmpOverDuplicates) {
  core::Testbed bed([](net::Network& n) {
    return build_aspen_tree(n, AspenOptions{.ports = 8, .fault_tolerance = 1,
                                            .hosts_per_tor = -1});
  });
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC2);
  ASSERT_TRUE(plan.has_value());
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_LE(loss->duration(), sim::millis(70));  // ECMP over the twin link
}

TEST(Aspen, TorLayerFailureStillControlPlaneBound) {
  core::Testbed bed([](net::Network& n) {
    return build_aspen_tree(n, AspenOptions{.ports = 8, .fault_tolerance = 1,
                                            .hosts_per_tor = -1});
  });
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  ASSERT_TRUE(plan.has_value());
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan->sport;
  so.dport = plan->dport;
  so.stop = sim::seconds(2);
  transport::UdpCbrSender sender(bed.stack_of(*plan->src), plan->dst->addr(),
                                 so);
  sender.start();
  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(380));
  }
  bed.sim().run(sim::seconds(3));
  std::vector<sim::Time> arrivals;
  for (const auto& a : sink.arrivals()) arrivals.push_back(a.at);
  const auto loss = stats::find_connectivity_loss(arrivals, sim::millis(380));
  ASSERT_TRUE(loss.has_value());
  EXPECT_GE(loss->duration(), sim::millis(260));  // the paper's critique
}

}  // namespace
}  // namespace f2t::topo
