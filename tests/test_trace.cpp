#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "net/trace.hpp"

namespace f2t::net {
namespace {

TEST(PacketTracer, RecordsForwardingHops) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  PacketTracer tracer(bed.network());

  auto& topo = bed.topo();
  auto& src = bed.stack_of(*topo.hosts.front());
  transport::UdpSink sink(bed.stack_of(*topo.hosts.back()), 9000);
  transport::UdpCbrSender::Options so;
  so.stop = sim::millis(1);  // a handful of packets
  transport::UdpCbrSender sender(src, topo.hosts.back()->addr(), so);
  sender.start();
  bed.sim().run(sim::millis(10));

  ASSERT_GT(sink.packets_received(), 0u);
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.packet_count(), sender.packets_sent());
  // Every traced packet crossed tor -> agg -> core(s) -> agg -> tor; in
  // the 4-port rewired prototype inter-pod paths may need one core-ring
  // hop (each core gave up two pod links).
  const auto names = tracer.path_names(1);  // first uid from this stack
  ASSERT_GE(names.size(), 5u);
  ASSERT_LE(names.size(), 6u);
  EXPECT_EQ(names.front().substr(0, 3), "tor");
  EXPECT_EQ(names[2].substr(0, 4), "core");
  EXPECT_EQ(names.back().substr(0, 3), "tor");
}

TEST(PacketTracer, ObservesFastRerouteDetour) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  const auto plan =
      failure::build_condition(bed.topo(), failure::Condition::kC1);
  ASSERT_TRUE(plan.has_value());

  PacketTracer tracer(bed.network());
  auto& src = bed.stack_of(*plan->src);
  transport::UdpSink sink(bed.stack_of(*plan->dst), plan->dport);

  for (net::Link* link : plan->fail_links) {
    bed.injector().fail_at(*link, sim::millis(10));
  }
  // One probe during the fast-reroute window (after 70 ms detection,
  // before ~220 ms convergence).
  net::Packet probe;
  probe.dst = plan->dst->addr();
  probe.proto = Protocol::kUdp;
  probe.sport = plan->sport;
  probe.dport = plan->dport;
  probe.size_bytes = 100;
  bed.sim().at(sim::millis(100), [&] { src.send(probe); });
  bed.sim().run(sim::millis(150));

  ASSERT_EQ(sink.packets_received(), 1u);
  // The data plane actually relayed through the across neighbour: the
  // path contains Sx followed by another agg of the same pod.
  const auto names = tracer.path_names(1);
  ASSERT_EQ(names.size(), 6u);  // tor agg core agg agg tor
  EXPECT_EQ(names[3], plan->sx->name());
  EXPECT_EQ(names[4].substr(0, 3), "agg");
  EXPECT_NE(names[4], plan->sx->name());
}

TEST(PacketTracer, ClearResets) {
  sim::Simulator sim(1);
  Network net(sim);
  auto& sw = net.add_switch("sw", Ipv4Addr(10, 12, 0, 1));
  auto& h1 = net.add_host("h1", Ipv4Addr(10, 11, 0, 10), &sw);
  net.add_host("h2", Ipv4Addr(10, 11, 0, 11), &sw);
  (void)h1;
  PacketTracer tracer(net);
  Packet p;
  p.uid = 42;
  p.src = Ipv4Addr(10, 11, 0, 10);
  p.dst = Ipv4Addr(10, 11, 0, 11);
  p.ttl = 8;
  sim.at(0, [&] { sw.forward(p); });
  sim.run();
  EXPECT_EQ(tracer.hops_of(42).size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.hops_of(42).size(), 0u);
  EXPECT_EQ(tracer.event_count(), 0u);
}

}  // namespace
}  // namespace f2t::net
