#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/arena.hpp"

namespace f2t {
namespace {

struct Node {
  int value = 0;
  std::vector<int> payload;
  core::ListLink link;
};

using NodeArena = core::Arena<Node>;
using NodeList = core::IntrusiveList<Node, &Node::link>;

TEST(Arena, AllocGetRelease) {
  NodeArena arena;
  const auto h = arena.alloc();
  arena.get(h).value = 42;
  EXPECT_EQ(arena.get(h).value, 42);
  EXPECT_EQ(arena.live_count(), 1u);
  arena.release(h);
  EXPECT_EQ(arena.live_count(), 0u);
  EXPECT_EQ(arena.slot_count(), 1u);  // slot retained for reuse
}

TEST(Arena, StaleHandleDetected) {
  NodeArena arena;
  const auto h = arena.alloc();
  arena.release(h);
  const auto h2 = arena.alloc();  // recycles the same slot...
  EXPECT_EQ(NodeArena::index_of(h2), NodeArena::index_of(h));
  EXPECT_NE(h2, h);  // ...under a new generation
  EXPECT_FALSE(arena.contains(h));
  EXPECT_TRUE(arena.contains(h2));
  EXPECT_EQ(arena.try_get(h), nullptr);
  EXPECT_THROW(arena.get(h), std::out_of_range);
  EXPECT_THROW(arena.release(h), std::out_of_range);  // double release
}

TEST(Arena, OutOfRangeHandleDetected) {
  NodeArena arena;
  EXPECT_EQ(arena.try_get(12345u), nullptr);
  EXPECT_THROW(arena.get(12345u), std::out_of_range);
}

TEST(Arena, FreeListReusesInLifoOrderWithoutGrowth) {
  NodeArena arena;
  std::vector<NodeArena::Handle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(arena.alloc());
  EXPECT_EQ(arena.slot_count(), 100u);
  for (const auto h : handles) arena.release(h);
  for (int i = 0; i < 100; ++i) arena.alloc();
  EXPECT_EQ(arena.slot_count(), 100u);  // fully recycled, no new slots
  EXPECT_EQ(arena.live_count(), 100u);
}

TEST(Arena, RecycledSlotKeepsBufferCapacity) {
  // The point of not destroying on release: per-flow vectors keep their
  // grown capacity across tenants, so steady-state churn does not allocate.
  NodeArena arena;
  const auto h = arena.alloc();
  arena.get(h).payload.reserve(1000);
  const auto cap = arena.get(h).payload.capacity();
  arena.release(h);
  const auto h2 = arena.alloc();
  ASSERT_EQ(NodeArena::index_of(h2), NodeArena::index_of(h));
  EXPECT_GE(arena.get(h2).payload.capacity(), cap);
}

TEST(Arena, StableAddressesAcrossGrowth) {
  NodeArena arena;
  const auto first = arena.alloc();
  Node* p = &arena.get(first);
  // Push well past one slab (4096 slots) to force new slab allocations.
  for (int i = 0; i < 10000; ++i) arena.alloc();
  EXPECT_EQ(&arena.get(first), p);
}

TEST(Arena, HandleRoundTripsThroughIndex) {
  NodeArena arena;
  const auto h = arena.alloc();
  EXPECT_EQ(arena.handle_of_index(NodeArena::index_of(h)), h);
}

TEST(IntrusiveList, PushEraseIterate) {
  NodeArena arena;
  NodeList list;
  std::vector<NodeArena::Handle> handles;
  for (int i = 0; i < 5; ++i) {
    const auto h = arena.alloc();
    arena.get(h).value = i;
    list.push_back(arena, NodeArena::index_of(h));
    handles.push_back(h);
  }
  EXPECT_EQ(list.size(), 5u);

  list.erase(arena, NodeArena::index_of(handles[0]));  // head
  list.erase(arena, NodeArena::index_of(handles[2]));  // middle
  list.erase(arena, NodeArena::index_of(handles[4]));  // tail
  EXPECT_EQ(list.size(), 2u);

  std::vector<int> seen;
  for (auto i = list.head(); i != core::kNilIndex; i = list.next(arena, i)) {
    seen.push_back(arena.at_index(i).value);
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 3}));

  list.erase(arena, NodeArena::index_of(handles[1]));
  list.erase(arena, NodeArena::index_of(handles[3]));
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.head(), core::kNilIndex);
  EXPECT_EQ(list.tail(), core::kNilIndex);
}

TEST(IntrusiveList, SingleElementEraseResetsEnds) {
  NodeArena arena;
  NodeList list;
  const auto h = arena.alloc();
  list.push_back(arena, NodeArena::index_of(h));
  EXPECT_EQ(list.head(), list.tail());
  list.erase(arena, NodeArena::index_of(h));
  EXPECT_TRUE(list.empty());
  list.push_back(arena, NodeArena::index_of(h));  // reusable after erase
  EXPECT_EQ(list.size(), 1u);
}

}  // namespace
}  // namespace f2t
