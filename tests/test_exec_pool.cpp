#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hpp"

namespace f2t {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, InlineWhenSingleThreaded) {
  exec::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](std::size_t) {
    // Single-threaded pools never spawn workers, so no lock is needed.
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  exec::ThreadPool pool(8);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  exec::ThreadPool pool(16);
  std::atomic<int> calls{0};
  pool.parallel_for(3, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, FirstExceptionPropagates) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) {
                            throw std::runtime_error("shard 37 exploded");
                          }
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed parallel_for.
  std::atomic<int> calls{0};
  pool.parallel_for(10, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, DefaultThreadCountIsHardware) {
  exec::ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1);
}

// ------------------------------------------------- failure semantics
//
// The campaign engine leans on three properties when shards throw:
// exactly one exception survives a parallel_for with many throwers, the
// serial path (threads <= 1) fails the same way the parallel path does,
// and once a failure is recorded the pool stops starting new work.

TEST(ThreadPool, ConcurrentThrowersPropagateExactlyOneException) {
  exec::ThreadPool pool(8);
  std::atomic<int> thrown{0};
  int caught = 0;
  try {
    pool.parallel_for(200, [&](std::size_t i) {
      if (i % 2 == 0) {
        thrown.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("shard " + std::to_string(i) +
                                 " exploded");
      }
    });
  } catch (const std::runtime_error& e) {
    ++caught;
    // Whichever thrower won the race, the message is one of ours — the
    // pool must not mangle or replace the first exception.
    EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
  }
  EXPECT_EQ(caught, 1);
  EXPECT_GE(thrown.load(), 1);
}

TEST(ThreadPool, SerialPathThrowsLikeParallelPath) {
  // threads <= 1 runs inline; the exception type and the "remaining
  // indices are abandoned" behaviour must match the parallel path.
  exec::ThreadPool serial(1);
  std::vector<std::size_t> ran;
  EXPECT_THROW(serial.parallel_for(10,
                                   [&](std::size_t i) {
                                     if (i == 3) {
                                       throw std::runtime_error("boom");
                                     }
                                     ran.push_back(i);
                                   }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
  // Usable after the failure, exactly like the parallel pool.
  int calls = 0;
  serial.parallel_for(4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(ThreadPool, FailureStopsStartingNewWork) {
  exec::ThreadPool pool(2);
  std::atomic<int> started{0};
  try {
    pool.parallel_for(10000, [&](std::size_t) {
      started.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("first");
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error&) {
  }
  // Once the failure flag is up the pool skips the remaining indices —
  // far fewer invocations than the full range (bounded loosely: each
  // in-flight thread may start at most a handful before observing it).
  EXPECT_LT(started.load(), 10000);
}

}  // namespace
}  // namespace f2t
