#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hpp"

namespace f2t {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, InlineWhenSingleThreaded) {
  exec::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](std::size_t) {
    // Single-threaded pools never spawn workers, so no lock is needed.
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  exec::ThreadPool pool(8);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  exec::ThreadPool pool(16);
  std::atomic<int> calls{0};
  pool.parallel_for(3, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, FirstExceptionPropagates) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) {
                            throw std::runtime_error("shard 37 exploded");
                          }
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed parallel_for.
  std::atomic<int> calls{0};
  pool.parallel_for(10, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, DefaultThreadCountIsHardware) {
  exec::ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1);
}

}  // namespace
}  // namespace f2t
