#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "core/runner.hpp"
#include "routing/ecmp.hpp"
#include "topo/addressing.hpp"
#include "topo/aspen.hpp"

namespace f2t {
namespace {

TEST(EcmpHashStability, SameInputsSameOutput) {
  net::Packet p;
  p.src = net::Ipv4Addr(10, 11, 0, 10);
  p.dst = net::Ipv4Addr(10, 11, 9, 10);
  p.sport = 1000;
  p.dport = 9000;
  const auto h1 = routing::ecmp_hash(p, 7);
  const auto h2 = routing::ecmp_hash(p, 7);
  EXPECT_EQ(h1, h2);
  p.sport = 1001;
  EXPECT_NE(routing::ecmp_hash(p, 7), h1);  // port-sensitive
  p.sport = 1000;
  p.proto = net::Protocol::kTcp;
  EXPECT_NE(routing::ecmp_hash(p, 7), h1);  // protocol-sensitive
}

TEST(EcmpSelect, RejectsEmptySet) {
  net::Packet p;
  EXPECT_THROW(routing::ecmp_select(p, 1, 0), std::invalid_argument);
}

TEST(RouteSourceNames, AllNamed) {
  EXPECT_STREQ(routing::route_source_name(routing::RouteSource::kConnected),
               "connected");
  EXPECT_STREQ(routing::route_source_name(routing::RouteSource::kStatic),
               "static");
  EXPECT_STREQ(routing::route_source_name(routing::RouteSource::kOspf),
               "ospf");
}

TEST(BackupRoutesEdgeCases, NoRingsMeansNothingInstalled) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto topo = topo::build_fat_tree(net, topo::FatTreeOptions{.ports = 4});
  const auto report = topo::install_backup_routes(topo);
  EXPECT_EQ(report.switches_configured, 0);
  EXPECT_EQ(report.routes_installed, 0);
}

TEST(BackupRoutesEdgeCases, RingWidth4InstallsFourPrefixes) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto topo = topo::build_f2tree(net, 8, 4);
  topo::install_backup_routes(topo);
  auto* agg = topo.aggs.front();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(agg->fib()
                    .find(topo::AddressPlan::backup_prefix(i),
                          routing::RouteSource::kStatic)
                    .has_value())
        << "prefix index " << i;
  }
}

TEST(HostsPerTorOverride, BuildersHonourIt) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo = topo::build_fat_tree(
      net, topo::FatTreeOptions{.ports = 8, .hosts_per_tor = 1});
  EXPECT_EQ(topo.hosts.size(), topo.tors.size());
}

TEST(LinkParamsValidation, RejectsNonPositiveBandwidth) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 12, 1, 1));
  net::LinkParams bad;
  bad.bandwidth_bps = 0;
  EXPECT_THROW(net.connect(a, b, bad), std::invalid_argument);
}

TEST(NodePortApi, PortOfUnknownLinkIsInvalid) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 12, 1, 1));
  auto& c = net.add_switch("c", net::Ipv4Addr(10, 12, 2, 1));
  net::Link& ab = net.connect_default(a, b);
  net::Link& bc = net.connect_default(b, c);
  EXPECT_EQ(a.port_of_link(ab), 0);
  EXPECT_EQ(a.port_of_link(bc), net::kInvalidPort);
  EXPECT_THROW(ab.peer_of(c), std::logic_error);
  EXPECT_THROW(ab.direction_from(c), std::logic_error);
}

TEST(RunnerBuilders, RingWidthAndAspenFForwarded) {
  {
    sim::Simulator sim(1);
    net::Network net(sim);
    const auto topo = core::topology_builder("f2", 8, 4)(net);
    EXPECT_EQ(topo.ring_width, 4);
  }
  {
    sim::Simulator sim(1);
    net::Network net(sim);
    const auto topo = core::topology_builder("aspen", 8, 2, 3)(net);
    EXPECT_EQ(static_cast<double>(topo.hosts.size()),
              core::Scalability::aspen_nodes(8, 3));
  }
}

TEST(ThroughputMeterEdge, EmptyRangeAndMeanZero) {
  stats::ThroughputMeter m;
  EXPECT_TRUE(m.series(sim::millis(10), sim::millis(10)).empty());
  EXPECT_DOUBLE_EQ(m.mean_mbps(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_mbps(0, sim::seconds(1)), 0.0);
}

TEST(RandomShuffle, IsAPermutation) {
  sim::Random rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(FormatTimeEdge, SubMicrosecondAndNegativeValues) {
  EXPECT_EQ(sim::format_time(0), "0ns");
  EXPECT_EQ(sim::format_time(999), "999ns");
  EXPECT_EQ(sim::format_time(-sim::seconds(100)), "-100s");
}

TEST(UdpSenderStopsAtDeadline, ExactCount) {
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 4); });
  bed.converge();
  auto& src = bed.stack_of(*bed.topo().hosts.front());
  transport::UdpSink sink(bed.stack_of(*bed.topo().hosts.back()), 9000);
  transport::UdpCbrSender::Options so;
  so.start = sim::millis(10);
  so.stop = sim::millis(10) + sim::millis(1);  // 1 ms @ 100 us = 10 packets
  transport::UdpCbrSender sender(src, bed.topo().hosts.back()->addr(), so);
  sender.start();
  bed.sim().run(sim::seconds(1));
  EXPECT_EQ(sender.packets_sent(), 10u);
  EXPECT_EQ(sink.packets_received(), 10u);
}

}  // namespace
}  // namespace f2t
