#include <gtest/gtest.h>

#include <stdexcept>

#include "transport/fluid.hpp"

namespace f2t {
namespace {

// ---------------------------------------------------------------------------
// Water-filling patterns the incremental component solver must reproduce
// exactly (the arithmetic is the old full solve restricted to the dirty
// component — these pin that equivalence on structured cases).

TEST(FluidTable, TwoTierBottleneckWaterFills) {
  // ch0 cap 10 carries a+b+c, ch1 cap 4 carries a+b, ch2 cap 2 carries a.
  // Max-min: a freezes at 2 (ch2), b at 2 (ch1 residual), c fills ch0's
  // remaining 6.
  transport::FluidFlowTable table(3, 10.0);
  table.set_capacity(1, 4.0);
  table.set_capacity(2, 2.0);
  const auto a = table.add_flow({0, 1, 2});
  const auto b = table.add_flow({0, 1});
  const auto c = table.add_flow({0});
  EXPECT_DOUBLE_EQ(table.rate_of(a), 2.0);
  EXPECT_DOUBLE_EQ(table.rate_of(b), 2.0);
  EXPECT_DOUBLE_EQ(table.rate_of(c), 6.0);
}

TEST(FluidTable, JoinAndLeaveMidEpochReflow) {
  transport::FluidFlowTable table(2, 12.0);
  const auto a = table.add_flow({0});
  EXPECT_DOUBLE_EQ(table.rate_of(a), 12.0);
  // Join: the newcomer halves a's share on the shared channel.
  const auto b = table.add_flow({0});
  EXPECT_DOUBLE_EQ(table.rate_of(a), 6.0);
  EXPECT_DOUBLE_EQ(table.rate_of(b), 6.0);
  // Rerouting b off the shared channel restores a in the same epoch.
  table.set_path(b, {1});
  EXPECT_DOUBLE_EQ(table.rate_of(a), 12.0);
  EXPECT_DOUBLE_EQ(table.rate_of(b), 12.0);
  // Leave: removal releases the capacity; the stale handle stays inert.
  table.remove_flow(b);
  table.remove_flow(b);  // no-op, not a crash
  EXPECT_DOUBLE_EQ(table.rate_of(b), 0.0);
  EXPECT_DOUBLE_EQ(table.rate_of(a), 12.0);
  EXPECT_EQ(table.flow_count(), 1u);
}

TEST(FluidTable, StaleHandleMutationsThrow) {
  transport::FluidFlowTable table(1, 8.0);
  const auto f = table.add_flow({0});
  table.remove_flow(f);
  EXPECT_THROW(table.set_path(f, {0}), std::out_of_range);
  EXPECT_THROW(table.set_demand(f, 1.0), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Incrementality: a mutation confined to one channel group must re-solve
// only that group's flows, never the whole table.

TEST(FluidTable, DisjointGroupsSolveIndependently) {
  // Group A lives on channel 0, group B on channel 1 — no shared channel,
  // so they are separate components of the channel<->flow graph.
  transport::FluidFlowTable table(2, 8.0);
  const auto a1 = table.add_flow({0});
  const auto a2 = table.add_flow({0});
  const auto b1 = table.add_flow({1});
  const auto b2 = table.add_flow({1});
  table.refresh();
  // First solve visits everything: all four flows were dirty.
  EXPECT_EQ(table.last_solve_flows(), 4u);
  const std::uint64_t after_first = table.solved_flow_visits();
  EXPECT_EQ(after_first, 4u);

  // Mutating group A re-solves exactly group A (now three flows).
  const auto a3 = table.add_flow({0});
  table.refresh();
  EXPECT_EQ(table.last_solve_flows(), 3u);
  EXPECT_EQ(table.solved_flow_visits(), after_first + 3);
  for (const auto id : table.last_solved()) {
    EXPECT_TRUE(id == a1 || id == a2 || id == a3);
  }
  // Group B's rates are correct without having been revisited.
  EXPECT_DOUBLE_EQ(table.rate_of(b1), 4.0);
  EXPECT_DOUBLE_EQ(table.rate_of(b2), 4.0);
  EXPECT_DOUBLE_EQ(table.rate_of(a1), 8.0 / 3.0);

  // A capacity change on channel 1 re-solves exactly group B.
  table.set_capacity(1, 6.0);
  table.refresh();
  EXPECT_EQ(table.last_solve_flows(), 2u);
  for (const auto id : table.last_solved()) {
    EXPECT_TRUE(id == b1 || id == b2);
  }
  EXPECT_DOUBLE_EQ(table.rate_of(b1), 3.0);
}

TEST(FluidTable, SharedChannelMergesComponents) {
  // A flow straddling both channels welds the groups into one component:
  // a mutation on either side must now re-solve everything it can reach.
  transport::FluidFlowTable table(2, 8.0);
  const auto a = table.add_flow({0});
  const auto b = table.add_flow({1});
  const auto bridge = table.add_flow({0, 1});
  table.refresh();
  EXPECT_EQ(table.last_solve_flows(), 3u);
  table.set_demand(a, 1.0);
  table.refresh();
  // a is on channel 0; the bridge carries the dirtiness to channel 1's b.
  EXPECT_EQ(table.last_solve_flows(), 3u);
  EXPECT_DOUBLE_EQ(table.rate_of(a), 1.0);
  // ch1 (8 over two unfrozen flows) is the bridge's bottleneck, not ch0's
  // freed residual.
  EXPECT_DOUBLE_EQ(table.rate_of(bridge), 4.0);
  EXPECT_DOUBLE_EQ(table.rate_of(b), 4.0);
}

TEST(FluidTable, RefreshWithoutMutationIsFree) {
  transport::FluidFlowTable table(1, 8.0);
  const auto f = table.add_flow({0});
  table.refresh();
  const std::uint64_t solves = table.solve_count();
  const std::uint64_t visits = table.solved_flow_visits();
  table.refresh();
  (void)table.rate_of(f);
  EXPECT_EQ(table.solve_count(), solves);
  EXPECT_EQ(table.solved_flow_visits(), visits);
}

}  // namespace
}  // namespace f2t
