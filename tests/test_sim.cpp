#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"

namespace f2t::sim {
namespace {

TEST(Time, Constructors) {
  EXPECT_EQ(micros(1), 1000);
  EXPECT_EQ(millis(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(from_seconds(0.5), millis(500));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(millis(42)), 42.0);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(kNever), "never");
  EXPECT_EQ(format_time(100), "100ns");
  EXPECT_EQ(format_time(millis(60)), "60ms");
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(10, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(s.has_pending());
}

TEST(Scheduler, CancelIsIdempotentAndSafe) {
  Scheduler s;
  const EventId id = s.schedule_at(10, [] {});
  s.cancel(id);
  s.cancel(id);
  s.cancel(kInvalidEventId);
  s.cancel(9999);  // never-issued id
  EXPECT_EQ(s.run(), 0u);
}

// Regression: cancelling an id that has already fired must be a true
// no-op. The old implementation inserted it into the cancelled set
// forever (unbounded tombstone growth) and decremented the live count,
// so a later-scheduled, still-live event made has_pending() lie.
TEST(Scheduler, CancelOfFiredIdIsTrueNoop) {
  Scheduler s;
  int fired = 0;
  const EventId first = s.schedule_at(1, [&] { ++fired; });
  s.schedule_at(2, [&] { ++fired; });
  ASSERT_TRUE(s.step());  // fires `first`
  EXPECT_FALSE(s.is_pending(first));

  s.cancel(first);  // late cancel: the classic one-shot timer pattern
  EXPECT_TRUE(s.has_pending()) << "live second event lost to a late cancel";
  EXPECT_EQ(s.cancelled_backlog(), 0u) << "late cancel left a tombstone";

  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.has_pending());
}

TEST(Scheduler, RepeatedLateCancelsLeaveNoTombstones) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(s.schedule_at(i, [] {}));
  }
  s.run();
  for (int round = 0; round < 3; ++round) {
    for (const EventId id : ids) s.cancel(id);
  }
  EXPECT_EQ(s.cancelled_backlog(), 0u);
  EXPECT_FALSE(s.has_pending());
  // Accounting still intact: a fresh event is seen and runs.
  bool late_fired = false;
  s.schedule_at(1000, [&] { late_fired = true; });
  EXPECT_TRUE(s.has_pending());
  EXPECT_EQ(s.run(), 1u);
  EXPECT_TRUE(late_fired);
}

TEST(Scheduler, CancelledThenReapedIdStaysCancelled) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(5, [&] { fired = true; });
  s.cancel(id);
  EXPECT_FALSE(s.is_pending(id));
  s.run();  // reaps the cancelled event from the heap
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.cancelled_backlog(), 0u);
  s.cancel(id);  // cancel after reap: also a true no-op
  EXPECT_EQ(s.cancelled_backlog(), 0u);
  EXPECT_FALSE(s.has_pending());
}

TEST(Scheduler, RunUntilHorizonStopsAndAdvancesClock) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(100, [&] { ++count; });
  EXPECT_EQ(s.run(50), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 50);
  EXPECT_TRUE(s.has_pending());
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule_after(10, chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(Scheduler, RejectsPastAndEmptyActions) {
  Scheduler s;
  s.schedule_at(10, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(20, nullptr), std::invalid_argument);
}

TEST(Scheduler, NextEventTimeSkipsCancelled) {
  Scheduler s;
  const EventId a = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  s.cancel(a);
  EXPECT_EQ(s.next_event_time(), 20);
}

TEST(Random, DeterministicWithSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Random, UniformIntBounds) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Random, LognormalMedianIsRoughlyMedian) {
  Random r(11);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.lognormal_median(10.0, 1.2) < 10.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(Random, ExponentialMean) {
  Random r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Random, RejectsBadArguments) {
  Random r(1);
  EXPECT_THROW(r.uniform_int(5, 4), std::invalid_argument);
  EXPECT_THROW(r.exponential(0), std::invalid_argument);
  EXPECT_THROW(r.lognormal_median(-1, 1), std::invalid_argument);
  EXPECT_THROW(r.index(0), std::invalid_argument);
}

TEST(Random, ForkIsIndependent) {
  Random a(99);
  Random child = a.fork();
  // Child stream should not equal the parent's continued stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform_int(0, 1 << 30) != child.uniform_int(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, BundlesServices) {
  Simulator sim(5);
  int fired = 0;
  sim.after(millis(5), [&] { ++fired; });
  sim.run(millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), millis(10));
}

}  // namespace
}  // namespace f2t::sim
