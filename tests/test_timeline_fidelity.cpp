#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "core/runner.hpp"
#include "obs/timeline.hpp"

namespace f2t {
namespace {

// S3 regression: the RecoveryTimeline must be derivable under flow
// fidelity (the fluid probe's finalized arrivals are journaled as
// delivery events) and agree with packet fidelity on the control-plane
// milestones of a C1 single cut.
//
// Scope: C1 on the fat-tree (and F²Tree) with oracle detection. The
// loop-regime carve-out applies as everywhere in the fluid transport:
// on f2 under C7 (and any scenario whose interim routing state loops),
// the probe refuses to classify the looping window, so the flow-mode
// delivery stream — and hence the gap — is undefined there. Those
// scenarios stay packet-fidelity-only; see transport/fluid.hpp.

obs::FailureRecovery first_failure(const core::UdpRun& r) {
  const obs::RecoveryTimeline timeline(r.observation.events);
  EXPECT_EQ(timeline.failures().size(), 1u);
  return timeline.failures().front();
}

core::UdpRun run_c1(const char* topo, core::ControlPlane control,
                    core::Fidelity fidelity) {
  core::RunKnobs knobs;
  knobs.config.observe = true;
  knobs.config.control_plane = control;
  knobs.fidelity = fidelity;
  const auto builder = core::topology_builder(topo, 4);
  return core::run_udp_condition(builder, failure::Condition::kC1, knobs);
}

TEST(TimelineFidelity, FlowModeReproducesOspfMilestonesOnFatTree) {
  const auto pkt =
      run_c1("fat", core::ControlPlane::kOspf, core::Fidelity::kPacket);
  const auto flow =
      run_c1("fat", core::ControlPlane::kOspf, core::Fidelity::kFlow);
  ASSERT_TRUE(pkt.ok);
  ASSERT_TRUE(flow.ok);
  ASSERT_FALSE(flow.observation.events.empty());

  const auto fp = first_failure(pkt);
  const auto ff = first_failure(flow);
  EXPECT_EQ(ff.failed_at, fp.failed_at);
  EXPECT_EQ(ff.links, fp.links);
  // Oracle detection fires at failed_at + down_delay in both fidelities.
  ASSERT_TRUE(fp.detected());
  ASSERT_TRUE(ff.detected());
  EXPECT_EQ(ff.detected_at, fp.detected_at);
  // The control plane is identical machinery in both modes; data packets
  // do not contend with control traffic here, so convergence matches
  // exactly.
  ASSERT_TRUE(fp.converged());
  ASSERT_TRUE(ff.converged());
  EXPECT_EQ(ff.converged_at, fp.converged_at);
  // The connectivity gap agrees to within one probe sending interval
  // (packet mode quantizes the gap edges to packet departures; the fluid
  // probe classifies the same regime windows continuously).
  ASSERT_TRUE(fp.rerouted());
  ASSERT_TRUE(ff.rerouted());
  const sim::Time interval = sim::millis(1);
  EXPECT_NEAR(static_cast<double>(ff.gap()),
              static_cast<double>(fp.gap()),
              static_cast<double>(interval));
  // And both timelines agree with their own run's probe measurement by
  // construction.
  EXPECT_EQ(fp.gap(), pkt.connectivity_loss);
  EXPECT_EQ(ff.gap(), flow.connectivity_loss);
}

TEST(TimelineFidelity, FlowModeReproducesCentralMilestonesOnF2Tree) {
  const auto pkt =
      run_c1("f2", core::ControlPlane::kCentral, core::Fidelity::kPacket);
  const auto flow =
      run_c1("f2", core::ControlPlane::kCentral, core::Fidelity::kFlow);
  ASSERT_TRUE(pkt.ok);
  ASSERT_TRUE(flow.ok);

  const auto fp = first_failure(pkt);
  const auto ff = first_failure(flow);
  EXPECT_EQ(ff.failed_at, fp.failed_at);
  ASSERT_TRUE(fp.detected());
  ASSERT_TRUE(ff.detected());
  EXPECT_EQ(ff.detected_at, fp.detected_at);
  ASSERT_TRUE(fp.converged());
  ASSERT_TRUE(ff.converged());
  EXPECT_EQ(ff.converged_at, fp.converged_at);
}

}  // namespace
}  // namespace f2t
