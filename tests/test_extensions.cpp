#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "topo/graphviz.hpp"

namespace f2t {
namespace {

// --- gray failures (silent loss BFD cannot see) -----------------------------

TEST(GrayFailure, DropsConfiguredFraction) {
  sim::Simulator sim(1);
  sim::Random rng(9);
  net::Network net(sim);
  auto& sw = net.add_switch("sw", net::Ipv4Addr(10, 12, 0, 1));
  auto& h = net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &sw);
  net::Link* link = net.find_link(sw, h);
  link->set_loss_rate(net::Link::Direction::kAToB, 0.3, &rng);

  int received = 0;
  h.set_packet_handler([&](net::Packet) { ++received; });
  for (int i = 0; i < 2000; ++i) {
    sim.at(sim::micros(100 * i), [&] {
      net::Packet p;
      p.dst = h.addr();
      p.size_bytes = 100;
      sw.send(0, p);
    });
  }
  sim.run();
  EXPECT_NEAR(received, 1400, 100);
  EXPECT_NEAR(static_cast<double>(link->dropped_gray()), 600, 100);
  // The link never went "down": no detection-visible event happened.
  EXPECT_TRUE(link->is_up());
}

TEST(GrayFailure, RejectsBadArguments) {
  sim::Simulator sim(1);
  sim::Random rng(9);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 12, 1, 1));
  net::Link& link = net.connect_default(a, b);
  EXPECT_THROW(link.set_loss_rate(net::Link::Direction::kAToB, 1.5, &rng),
               std::invalid_argument);
  EXPECT_THROW(link.set_loss_rate(net::Link::Direction::kAToB, 0.5, nullptr),
               std::invalid_argument);
  link.set_loss_rate(net::Link::Direction::kAToB, 0.0, nullptr);  // OK
}

TEST(GrayFailure, FastRerouteDoesNotTrigger) {
  // The honest limitation: a silently lossy downward link never trips
  // detection, so neither ECMP pruning nor the backup statics engage —
  // TCP just suffers the loss rate. (F²Tree targets *detected* failures.)
  core::Testbed bed([](net::Network& n) { return topo::build_f2tree(n, 8); });
  bed.converge();
  const auto plan = failure::build_condition(
      bed.topo(), failure::Condition::kC1, net::Protocol::kTcp);
  ASSERT_TRUE(plan.has_value());
  sim::Random rng(5);
  plan->fail_links.front()->set_loss_rate(net::Link::Direction::kAToB, 0.3,
                                          &rng);
  plan->fail_links.front()->set_loss_rate(net::Link::Direction::kBToA, 0.3,
                                          &rng);

  auto& a = bed.stack_of(*plan->src);
  auto& b = bed.stack_of(*plan->dst);
  transport::TcpConnection conn(a, b, plan->sport, plan->dport,
                                transport::TcpConfig{});
  conn.a().write(500'000);
  bed.sim().run(sim::seconds(30));

  // The transfer limps through on retransmissions over the same path.
  EXPECT_EQ(conn.b().bytes_delivered(), 500'000u);
  EXPECT_GT(conn.a().stats().segments_retransmitted, 0u);
  EXPECT_GT(plan->fail_links.front()->dropped_gray(), 0u);
  // The switch still believes the port is fine.
  const auto port = plan->sx->port_of_link(*plan->fail_links.front());
  EXPECT_TRUE(plan->sx->port_detected_up(port));
}

// --- graphviz export ---------------------------------------------------------

TEST(Graphviz, EmitsNodesEdgesAndAcrossHighlights) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo = topo::build_f2tree(net, 4);
  const std::string dot = topo::to_graphviz(topo);
  EXPECT_NE(dot.find("graph f2tree {"), std::string::npos);
  EXPECT_NE(dot.find("\"tor0\""), std::string::npos);
  EXPECT_NE(dot.find("\"agg0\""), std::string::npos);
  EXPECT_NE(dot.find("\"core0\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed, color=red"), std::string::npos);
  // Hosts excluded by default.
  EXPECT_EQ(dot.find("h0_0"), std::string::npos);
}

TEST(Graphviz, IncludeHostsOption) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto topo = topo::build_fat_tree(net, topo::FatTreeOptions{.ports = 4});
  topo::GraphvizOptions options;
  options.include_hosts = true;
  const std::string dot = topo::to_graphviz(topo, options);
  EXPECT_NE(dot.find("h0_0"), std::string::npos);
  EXPECT_EQ(dot.find("dashed"), std::string::npos);  // no across links
}

// --- CSV export ---------------------------------------------------------------

TEST(TableCsv, QuotesAndEscapes) {
  stats::Table t({"name", "value"});
  t.row({"plain", "1.5"});
  t.row({"has \"quote\"", "2"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"name\",\"value\"\n"), std::string::npos);
  EXPECT_NE(csv.find("\"plain\",\"1.5\"\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has \"\"quote\"\"\",\"2\"\n"), std::string::npos);
}

// --- determinism -------------------------------------------------------------

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    core::TestbedConfig config;
    config.seed = seed;
    core::Testbed bed(
        [](net::Network& n) { return topo::build_f2tree(n, 8); }, config);
    bed.converge();
    transport::PartitionAggregateOptions pa;
    pa.stop = sim::seconds(20);
    pa.mean_interarrival = sim::millis(100);
    transport::PartitionAggregateApp app(bed.stacks(), sim::Random(seed),
                                         pa);
    app.start();
    failure::RandomFailureOptions rf;
    rf.start = sim::seconds(1);
    rf.stop = sim::seconds(20);
    rf.interarrival_median_s = 2.0;
    failure::RandomFailureGenerator gen(bed.injector(), sim::Random(seed + 1),
                                        rf);
    gen.start();
    bed.sim().run(sim::seconds(30));
    // Fingerprint: total completions, event count, injector history.
    std::uint64_t fp = app.completed_count();
    fp = fp * 1000003 + bed.sim().scheduler().executed_count();
    for (const auto& e : bed.injector().history()) {
      fp = fp * 1000003 + static_cast<std::uint64_t>(e.at) + e.link;
    }
    return fp;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace f2t
