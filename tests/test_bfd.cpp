#include <gtest/gtest.h>

#include "core/f2tree.hpp"
#include "core/runner.hpp"
#include "routing/bfd.hpp"

namespace f2t {
namespace {

using core::RunKnobs;
using core::Testbed;
using failure::Condition;
using failure::FaultKind;
using routing::BfdConfig;
using routing::BfdManager;
using routing::DetectionMode;

// ---------------------------------------------------------- unit: sessions

/// Two directly connected switches with one BFD session pair — the
/// smallest network where hellos traverse a real link.
struct Pair {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::L3Switch& a;
  net::L3Switch& b;
  net::Link& link;
  BfdManager bfd;

  explicit Pair(const BfdConfig& config = {})
      : a(net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1))),
        b(net.add_switch("b", net::Ipv4Addr(10, 12, 1, 1))),
        link(net.connect_default(a, b)),
        bfd(net, config) {
    bfd.attach_all();
  }
};

TEST(Bfd, SessionsComeUpAndExchangeHellos) {
  Pair p;
  EXPECT_EQ(p.bfd.session_count(), 2u);
  p.sim.run(sim::millis(200));
  EXPECT_TRUE(p.bfd.session_up(p.a, 0));
  EXPECT_TRUE(p.bfd.session_up(p.b, 0));
  EXPECT_TRUE(p.a.port_detected_up(0));
  // ~50 hellos per direction in 200 ms at the 20 ms default interval.
  EXPECT_GE(p.bfd.counters().hellos_sent, 18u);
  EXPECT_GE(p.bfd.counters().hellos_received, 16u);
  EXPECT_EQ(p.bfd.counters().sessions_down, 0u);
}

TEST(Bfd, CleanCutDetectedWithinDetectTime) {
  Pair p;
  const sim::Time cut = sim::millis(200);
  p.sim.at(cut, [&] { p.link.set_up(false); });

  // Record when each end's detected state flips down.
  sim::Time a_down = -1;
  sim::Time b_down = -1;
  p.a.add_port_state_handler([&](net::PortId, bool up) {
    if (!up && a_down < 0) a_down = p.sim.now();
  });
  p.b.add_port_state_handler([&](net::PortId, bool up) {
    if (!up && b_down < 0) b_down = p.sim.now();
  });
  p.sim.run(sim::seconds(1));

  // Acceptance: a clean bidirectional cut is detected within
  // tx_interval x multiplier (60 ms) plus one in-flight hello of slack.
  const sim::Time bound = p.bfd.config().detect_time() + sim::millis(21);
  ASSERT_GE(a_down, cut);
  ASSERT_GE(b_down, cut);
  EXPECT_LE(a_down - cut, bound);
  EXPECT_LE(b_down - cut, bound);
  EXPECT_FALSE(p.a.port_detected_up(0));
  EXPECT_FALSE(p.b.port_detected_up(0));
  EXPECT_GE(p.bfd.counters().hellos_missed, 2u);
}

TEST(Bfd, SessionRecoversAfterRepair) {
  Pair p;
  p.sim.at(sim::millis(200), [&] { p.link.set_up(false); });
  p.sim.at(sim::millis(600), [&] { p.link.set_up(true); });
  p.sim.run(sim::millis(900));
  EXPECT_TRUE(p.bfd.session_up(p.a, 0));
  EXPECT_TRUE(p.bfd.session_up(p.b, 0));
  EXPECT_TRUE(p.a.port_detected_up(0));
  EXPECT_TRUE(p.b.port_detected_up(0));
  EXPECT_GE(p.bfd.counters().sessions_up, 2u);
}

TEST(Bfd, UnidirectionalCutTakesBothEndsDown) {
  Pair p;
  // Cut only a->b: b goes deaf; a still hears b's hellos, but those
  // hellos now carry i_hear_you = false — the remote-state signal.
  p.sim.at(sim::millis(200), [&] {
    p.link.set_direction_up(p.link.direction_from(p.a), false);
  });
  p.sim.run(sim::seconds(1));
  EXPECT_FALSE(p.bfd.session_up(p.a, 0));
  EXPECT_FALSE(p.bfd.session_up(p.b, 0));
  EXPECT_FALSE(p.a.port_detected_up(0));
  EXPECT_FALSE(p.b.port_detected_up(0));
  EXPECT_GE(p.bfd.counters().remote_down_signals, 1u);
}

TEST(Bfd, FullGrayLossDetectedWithoutAnyLinkTransition) {
  Pair p;
  p.sim.at(sim::millis(200), [&] {
    p.link.set_loss_rate(p.link.direction_from(p.a), 1.0, &p.sim.random());
  });
  p.sim.run(sim::seconds(1));
  EXPECT_TRUE(p.link.is_up()) << "gray failure must not transition the link";
  EXPECT_FALSE(p.bfd.session_up(p.a, 0));
  EXPECT_FALSE(p.bfd.session_up(p.b, 0));
  EXPECT_FALSE(p.a.port_detected_up(0));
  EXPECT_FALSE(p.b.port_detected_up(0));
}

TEST(Bfd, LateLinkGetsSessionsThroughNetworkHook) {
  Pair p;
  ASSERT_EQ(p.bfd.session_count(), 2u);
  auto& c = p.net.add_switch("c", net::Ipv4Addr(10, 12, 2, 1));
  net::Link& late = p.net.connect_default(p.b, c);
  EXPECT_EQ(p.bfd.session_count(), 4u);
  p.sim.run(sim::millis(200));
  EXPECT_TRUE(p.bfd.session_up(c, 0));
  p.sim.at(p.sim.now(), [&] { late.set_up(false); });
  p.sim.run(p.sim.now() + sim::millis(200));
  EXPECT_FALSE(p.bfd.session_up(c, 0));
}

TEST(Bfd, HostLinksCarryNoSession) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1));
  net.add_host("h", net::Ipv4Addr(10, 11, 0, 10), &a);
  BfdManager bfd(net);
  bfd.attach_all();
  EXPECT_EQ(bfd.session_count(), 0u);
}

// ------------------------------------------------------- unit: dampening

TEST(BfdDampening, FlapTrainSuppressesThenReuses) {
  BfdConfig config;
  // Short half-life so the reuse arrives inside a unit test; the
  // threshold is lowered to match (at 500 ms the penalty decays ~34%
  // between 300 ms flaps, capping the series below the 2500 default).
  config.dampening.half_life = sim::millis(500);
  config.dampening.suppress_threshold = 2000;

  Pair p(config);

  // Three down transitions cross the 2000 suppress threshold at the
  // default 1000/flap penalty.
  for (int cycle = 0; cycle < 4; ++cycle) {
    const sim::Time at = sim::millis(200 + 300 * cycle);
    p.sim.at(at, [&] { p.link.set_up(false); });
    p.sim.at(at + sim::millis(150), [&] { p.link.set_up(true); });
  }
  p.sim.run(sim::millis(1700));
  EXPECT_GE(p.bfd.counters().suppresses, 1u);
  EXPECT_TRUE(p.bfd.session_suppressed(p.a, 0) ||
              p.bfd.session_suppressed(p.b, 0));
  // While suppressed the port is held detected-down although the session
  // itself has recovered (the link is physically up again).
  EXPECT_TRUE(p.link.is_up());
  EXPECT_FALSE(p.a.port_detected_up(0) && p.b.port_detected_up(0));

  // With a 500 ms half-life the penalty decays below the 800 reuse
  // threshold in ~1 s of quiet; the reuse restores the live state.
  p.sim.run(sim::seconds(4));
  EXPECT_GE(p.bfd.counters().reuses, 1u);
  EXPECT_FALSE(p.bfd.session_suppressed(p.a, 0));
  EXPECT_FALSE(p.bfd.session_suppressed(p.b, 0));
  EXPECT_TRUE(p.a.port_detected_up(0));
  EXPECT_TRUE(p.b.port_detected_up(0));
}

TEST(BfdDampening, DisabledDampeningReportsEveryFlap) {
  BfdConfig config;
  config.dampening.enabled = false;
  Pair p(config);
  for (int cycle = 0; cycle < 6; ++cycle) {
    const sim::Time at = sim::millis(200 + 300 * cycle);
    p.sim.at(at, [&] { p.link.set_up(false); });
    p.sim.at(at + sim::millis(150), [&] { p.link.set_up(true); });
  }
  p.sim.run(sim::seconds(3));
  EXPECT_EQ(p.bfd.counters().suppresses, 0u);
  EXPECT_GE(p.bfd.counters().sessions_down, 6u);
  EXPECT_TRUE(p.a.port_detected_up(0));
  EXPECT_TRUE(p.b.port_detected_up(0));
}

TEST(BfdDampening, PenaltyDecaysExponentially) {
  BfdConfig config;
  config.dampening.half_life = sim::millis(400);
  Pair p(config);
  p.sim.at(sim::millis(200), [&] { p.link.set_up(false); });
  p.sim.at(sim::millis(350), [&] { p.link.set_up(true); });
  p.sim.run(sim::millis(400));
  const double just_after = p.bfd.session_penalty(p.a, 0);
  EXPECT_GT(just_after, 500.0);
  p.sim.run(sim::millis(800));  // one half-life later
  const double later = p.bfd.session_penalty(p.a, 0);
  EXPECT_NEAR(later, just_after / 2, just_after * 0.15);
}

// -------------------------------------- regression: oracle late links

TEST(DetectionAgent, ObservesLinksAddedAfterAttachAll) {
  sim::Simulator sim(1);
  net::Network net(sim);
  auto& a = net.add_switch("a", net::Ipv4Addr(10, 12, 0, 1));
  auto& b = net.add_switch("b", net::Ipv4Addr(10, 12, 1, 1));
  net.connect_default(a, b);
  routing::DetectionAgent agent(net);
  agent.attach_all();

  // The link wired *after* attach_all used to escape detection entirely:
  // no observer, so its failure never reached set_port_detected.
  auto& c = net.add_switch("c", net::Ipv4Addr(10, 12, 2, 1));
  net::Link& late = net.connect_default(b, c);
  sim.at(sim::millis(10), [&] { late.set_up(false); });
  sim.run(sim::millis(200));
  EXPECT_FALSE(c.port_detected_up(0));
  EXPECT_GE(agent.counters().detections_fired, 2u);
}

// --------------------------------------------- system: probe-mode recovery

RunKnobs probe_knobs() {
  RunKnobs knobs;
  knobs.config.detection.mode = DetectionMode::kProbe;
  return knobs;
}

TEST(BfdSystem, ProbeModeRecoversC1WithinPaperBudget) {
  const auto builder = core::topology_builder("f2", 4);
  const auto run = core::run_udp_condition(builder, Condition::kC1,
                                           probe_knobs());
  ASSERT_TRUE(run.ok);
  // Probe detection floor is 60 ms (20 ms x 3) like the oracle; the
  // F²Tree backup route then takes over, so loss stays in the paper's
  // sub-150 ms band rather than the fat-tree sub-second one.
  EXPECT_GT(run.connectivity_loss, sim::millis(40));
  EXPECT_LT(run.connectivity_loss, sim::millis(150));
  EXPECT_GT(run.packets_sent, 0u);
}

TEST(BfdSystem, GrayFailureBlackholesUnderOracleButRecoversUnderProbe) {
  const auto builder = core::topology_builder("f2", 4);
  RunKnobs gray;
  gray.fault.kind = FaultKind::kGray;
  gray.fault.gray_loss = 1.0;

  // Oracle detection never sees a transition: the stream dies at
  // fail_at and stays dead, so no recovery gap is even measurable.
  const auto oracle = core::run_udp_condition(builder, Condition::kC1, gray);
  ASSERT_TRUE(oracle.ok);
  EXPECT_EQ(oracle.connectivity_loss, 0);
  EXPECT_GT(oracle.packets_lost, 1000u);

  RunKnobs probe = probe_knobs();
  probe.fault = gray.fault;
  const auto probed = core::run_udp_condition(builder, Condition::kC1, probe);
  ASSERT_TRUE(probed.ok);
  EXPECT_GT(probed.connectivity_loss, 0);
  EXPECT_LT(probed.connectivity_loss, sim::millis(200));
  EXPECT_LT(probed.packets_lost, oracle.packets_lost / 4);
}

TEST(BfdSystem, UnidirectionalCutRecoversUnderProbe) {
  const auto builder = core::topology_builder("f2", 4);
  RunKnobs probe = probe_knobs();
  probe.fault.kind = FaultKind::kUnidirectional;
  const auto run = core::run_udp_condition(builder, Condition::kC1, probe);
  ASSERT_TRUE(run.ok);
  // The downward direction is cut; remote-state signalling takes both
  // session ends down and traffic reroutes onto the backup.
  EXPECT_GT(run.connectivity_loss, sim::millis(40));
  EXPECT_LT(run.connectivity_loss, sim::millis(200));
}

/// Builds a testbed + C1 plan, applies a flap train, runs, and returns
/// the aggregate OSPF counters (plus the bed for BFD introspection).
routing::Ospf::Counters run_flap_train(const core::TestbedConfig& config,
                                       std::uint64_t* suppresses = nullptr) {
  Testbed bed(core::topology_builder("f2", 4), config);
  bed.converge();
  const auto plan = failure::build_condition(bed.topo(), Condition::kC1);
  EXPECT_TRUE(plan.has_value());
  failure::FaultSpec fault;
  fault.kind = FaultKind::kFlap;
  fault.flap_period = sim::millis(300);
  fault.flap_cycles = 6;
  failure::apply_fault(bed.topo(), bed.injector(), *plan, fault,
                       sim::millis(380));
  bed.sim().run(sim::seconds(3));
  if (suppresses != nullptr) {
    *suppresses = config.detection.mode == DetectionMode::kProbe
                      ? bed.bfd().counters().suppresses
                      : 0;
  }
  return bed.total_ospf_counters();
}

TEST(BfdSystem, FlapDampeningBoundsControlPlaneChurn) {
  // Oracle baseline: every 300 ms flap cycle outlives the 60 ms window,
  // so each transition reaches the control plane and churns LSAs. A
  // short SPF hold keeps the throttle from coalescing the oracle's
  // extra triggers into the same run count dampening produces — the
  // comparison must isolate the dampener, not the throttle.
  core::TestbedConfig oracle;
  oracle.ospf.throttle.initial_delay = sim::millis(50);
  const auto churned = run_flap_train(oracle);

  core::TestbedConfig probe;
  probe.ospf.throttle.initial_delay = sim::millis(50);
  probe.detection.mode = DetectionMode::kProbe;
  std::uint64_t suppresses = 0;
  const auto damped = run_flap_train(probe, &suppresses);

  EXPECT_GE(suppresses, 1u) << "the flap train must trip dampening";
  // The 6-cycle train costs the oracle an origination per reported
  // transition at both ends; dampening caps probe mode well below that.
  EXPECT_GT(churned.lsas_originated, damped.lsas_originated);
  EXPECT_GT(churned.spf_runs, damped.spf_runs);
}

}  // namespace
}  // namespace f2t
