#include <gtest/gtest.h>

#include "core/cli.hpp"
#include "core/runner.hpp"

namespace f2t::core {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"f2tsim"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesCommandValuesAndFlags) {
  auto cli = make({"recover", "--topo", "f2", "--ports", "8", "--csv"});
  EXPECT_EQ(cli.command(), "recover");
  EXPECT_EQ(cli.get("topo", "fat"), "f2");
  EXPECT_EQ(cli.get_int("ports", 4), 8);
  EXPECT_TRUE(cli.get_flag("csv"));
  EXPECT_FALSE(cli.get_flag("dot"));
  EXPECT_TRUE(cli.unknown_keys().empty());
}

TEST(Cli, DefaultsWhenAbsent) {
  auto cli = make({"topo"});
  EXPECT_EQ(cli.get("topo", "f2"), "f2");
  EXPECT_EQ(cli.get_int("ports", 8), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.5), 0.5);
}

TEST(Cli, UnknownKeysReported) {
  auto cli = make({"recover", "--topo", "f2", "--oops", "1", "--bad"});
  cli.get("topo", "");
  auto unknown = cli.unknown_keys();
  std::sort(unknown.begin(), unknown.end());
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "bad");
  EXPECT_EQ(unknown[1], "oops");
}

TEST(Cli, RejectsMalformedArguments) {
  EXPECT_THROW(make({"recover", "topo", "f2"}), std::invalid_argument);
  auto cli = make({"recover", "--ports", "eight"});
  EXPECT_THROW(cli.get_int("ports", 4), std::invalid_argument);
  auto cli2 = make({"recover", "--rate", "fast"});
  EXPECT_THROW(cli2.get_double("rate", 1.0), std::invalid_argument);
}

TEST(Cli, NoCommand) {
  auto cli = make({});
  EXPECT_FALSE(cli.has_command());
}

TEST(Runner, TopologyBuilderByName) {
  for (const char* name :
       {"fat", "f2", "f2scaled", "leafspine", "leafspine-f2", "vl2",
        "vl2-f2", "aspen"}) {
    sim::Simulator sim(1);
    net::Network net(sim);
    const auto topo = topology_builder(name, 8)(net);
    EXPECT_GT(topo.hosts.size(), 0u) << name;
  }
  EXPECT_THROW(topology_builder("nope", 8), std::invalid_argument);
}

TEST(Runner, UdpConditionRunsViaLibraryEntrypoint) {
  RunKnobs knobs;
  knobs.horizon = sim::seconds(2);
  const auto r = run_udp_condition(topology_builder("f2", 8),
                                   failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.connectivity_loss, sim::millis(55));
  EXPECT_LE(r.connectivity_loss, sim::millis(70));
}

TEST(Runner, TcpConditionRunsViaLibraryEntrypoint) {
  RunKnobs knobs;
  knobs.horizon = sim::seconds(3);
  const auto r = run_tcp_condition(topology_builder("fat", 8),
                                   failure::Condition::kC1, knobs);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.collapse, sim::millis(400));
}

}  // namespace
}  // namespace f2t::core
