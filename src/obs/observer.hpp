#pragma once

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace f2t::obs {

/// All observability state for one simulation run: the metrics registry
/// components register instruments/probes with, and the structured event
/// journal the attach layer routes hook callbacks into.
///
/// A Testbed owns at most one of these, created only when observation is
/// requested — when absent, no hooks are attached anywhere and the
/// simulation pays zero cost (see obs/attach.hpp).
struct Observability {
  MetricsRegistry metrics;
  EventJournal journal;
};

}  // namespace f2t::obs
