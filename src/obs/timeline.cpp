#include "obs/timeline.hpp"

#include <algorithm>

#include "net/packet.hpp"
#include "stats/flow_metrics.hpp"

namespace f2t::obs {

namespace {

bool is_data(const Event& e) {
  return e.proto != 0xff &&
         e.proto != static_cast<std::uint8_t>(net::Protocol::kRouting);
}

}  // namespace

RecoveryTimeline::RecoveryTimeline(const std::vector<Event>& events,
                                   sim::Time min_gap) {
  std::vector<sim::Time> deliveries;
  for (const Event& e : events) {
    if (e.type == EventType::kPacketDelivered) {
      deliveries.push_back(e.at);
      ++total_deliveries_;
    } else if (e.type == EventType::kPacketDrop && is_data(e)) {
      ++total_data_drops_;
    }
  }
  std::sort(deliveries.begin(), deliveries.end());

  // Link-down events sharing a timestamp are one failure episode (the
  // paper's multi-link conditions C2/C5/C7 cut several links at once).
  for (const Event& e : events) {
    if (e.type != EventType::kLinkDown) continue;
    if (!failures_.empty() && failures_.back().failed_at == e.at) {
      failures_.back().links.push_back(e.link);
      continue;
    }
    FailureRecovery f;
    f.failed_at = e.at;
    f.links.push_back(e.link);
    failures_.push_back(std::move(f));
  }
  std::sort(failures_.begin(), failures_.end(),
            [](const FailureRecovery& a, const FailureRecovery& b) {
              return a.failed_at < b.failed_at;
            });

  for (std::size_t i = 0; i < failures_.size(); ++i) {
    FailureRecovery& f = failures_[i];
    const sim::Time window_end = i + 1 < failures_.size()
                                     ? failures_[i + 1].failed_at
                                     : sim::kNever;
    for (const Event& e : events) {
      if (e.at < f.failed_at || e.at >= window_end) continue;
      switch (e.type) {
        case EventType::kPortDetectedDown:
          if (f.detected_at < 0) f.detected_at = e.at;
          break;
        case EventType::kBackupActivated:
          if (f.backup_at < 0) f.backup_at = e.at;
          break;
        case EventType::kFibInstall:
        case EventType::kControllerPush:
          f.converged_at = std::max(f.converged_at, e.at);
          break;
        default:
          break;
      }
    }
    if (const auto loss =
            stats::find_connectivity_loss(deliveries, f.failed_at, min_gap)) {
      f.gap_start = loss->gap_start;
      f.gap_end = loss->gap_end;
    }
    const sim::Time drops_until = f.gap_end >= 0 ? f.gap_end : window_end;
    for (const Event& e : events) {
      if (e.type == EventType::kPacketDrop && is_data(e) &&
          e.at >= f.failed_at && e.at <= drops_until) {
        ++f.packets_lost;
      }
    }
  }
}

void RecoveryTimeline::print(std::ostream& os) const {
  if (failures_.empty()) {
    os << "recovery timeline: no failure episodes in journal\n";
    return;
  }
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    const FailureRecovery& f = failures_[i];
    os << "failure #" << i + 1 << " at " << sim::format_time(f.failed_at)
       << " (" << f.links.size()
       << (f.links.size() == 1 ? " link)\n" : " links)\n");
    os << "  time to detect      : "
       << (f.detected() ? sim::format_time(f.time_to_detect()) : "never")
       << "\n";
    os << "  backup activated    : "
       << (f.backup_at >= 0 ? sim::format_time(f.backup_at - f.failed_at)
                            : "never")
       << "\n";
    os << "  first rerouted pkt  : "
       << (f.rerouted() ? sim::format_time(f.time_to_first_reroute())
                        : "never")
       << "\n";
    os << "  time to converge    : "
       << (f.converged() ? sim::format_time(f.time_to_converge()) : "never")
       << "\n";
    os << "  connectivity gap    : "
       << (f.rerouted() ? sim::format_time(f.gap()) : "none") << "\n";
    os << "  packets lost in gap : " << f.packets_lost << "\n";
  }
}

}  // namespace f2t::obs
