#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace f2t::obs {

/// What happened. One enum across the layers so a single journal can be
/// replayed into the paper's recovery timeline: physical link state,
/// detected port state, control-plane progress (LSA / SPF / FIB /
/// controller push / BGP update), data-plane backup activation, and the
/// per-packet drop/delivery stream the gap measurement needs.
enum class EventType : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kPortDetectedDown,
  kPortDetectedUp,
  kLsaOriginated,
  kLsaAccepted,
  kSpfRun,
  kSpfRunIncremental,  ///< SPF served by the incremental subtree repair
  kFibInstall,
  kBackupActivated,
  kControllerPush,
  kBgpUpdateSent,
  kBgpUpdateReceived,
  kPacketDrop,
  kPacketDelivered,
  kBfdSessionUp,
  kBfdSessionDown,
  kBfdSuppress,  ///< flap dampening holds the port detected-down
  kBfdReuse,     ///< penalty decayed below reuse; session state restored
};

/// One past the last EventType value. Keep in sync when adding event
/// types; tests/test_observability.cpp iterates [0, kEventTypeCount) and
/// fails if any value lacks a distinct event_type_name — the guard that
/// a new type cannot ship nameless.
inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kBfdReuse) + 1;

const char* event_type_name(EventType type);

/// Why a packet died. The switch knows kNoRoute/kTtlExpired; the link
/// knows kLinkDown (cut wire, black-holed queue, lost mid-flight),
/// kQueueFull (tail drop) and kGrayLoss (silent loss, never detected).
enum class DropReason : std::uint8_t {
  kNone,
  kNoRoute,
  kTtlExpired,
  kLinkDown,
  kQueueFull,
  kGrayLoss,
};

const char* drop_reason_name(DropReason reason);

/// One journal record: a sim-timestamped typed event plus the subset of
/// identifying fields that apply (-1 / 0 = not applicable). Fixed-size
/// and string-free so recording is an O(1) push_back.
struct Event {
  sim::Time at = 0;
  EventType type = EventType::kLinkDown;
  DropReason reason = DropReason::kNone;
  std::uint8_t proto = 0xff;  ///< net::Protocol of the packet, 0xff = n/a
  std::int64_t node = -1;     ///< NodeId involved
  std::int64_t link = -1;     ///< LinkId involved
  std::int64_t port = -1;     ///< PortId involved
  std::uint64_t uid = 0;      ///< packet uid for drop/delivery events
};

/// Appends one event as a JSON object line (no trailing header).
void write_event_json(std::ostream& os, const Event& e);

/// Writes a schema-versioned JSONL stream: a header line
/// {"schema_version":1,"stream":"f2t-events","events":N} followed by one
/// JSON object per event. When `dropped` is non-zero (journal overflow)
/// the header additionally carries "dropped":D — absent otherwise, so
/// pre-existing artifacts stay byte-identical.
void write_events_jsonl(std::ostream& os, const std::vector<Event>& events,
                        std::uint64_t dropped = 0);

/// Structured event journal: a flat, append-only record stream.
///
/// Recording costs one vector push_back; the emitting hooks in net/ and
/// routing/ are only attached when a journal exists (see obs/attach.hpp),
/// so a run without observability pays nothing — not even a branch on the
/// forwarding fast path.
///
/// The journal is bounded: once `capacity()` events are stored, further
/// records are counted in dropped() and discarded, so a large packet run
/// (k=48 with per-packet delivery events) cannot grow memory without
/// limit. The default bound (1M events, 40 bytes each) comfortably holds
/// every paper experiment; overflow is surfaced as the
/// `journal.dropped_events` metric and a "dropped" key in the JSONL
/// header rather than silently truncating.
class EventJournal {
 public:
  static constexpr int kSchemaVersion = 1;
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  void record(const Event& e) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Maximum number of retained events; records past it are dropped and
  /// counted. Lowering the capacity below the current size keeps the
  /// already-recorded prefix (the earliest events — the ones the
  /// recovery timeline needs most).
  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }

  /// Events discarded because the journal was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Drops accumulated events and the overflow count (e.g. between
  /// experiment phases).
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  void write_jsonl(std::ostream& os) const {
    write_events_jsonl(os, events_, dropped_);
  }

 private:
  std::vector<Event> events_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
};

}  // namespace f2t::obs
