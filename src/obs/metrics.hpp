#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace f2t::obs {

/// Monotone counter. Components hold a reference obtained from the
/// registry and bump it on their hot paths; reading happens only at
/// snapshot time.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge (occupancy, sizes, ratios).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets; one implicit overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;           // sorted ascending
  std::vector<std::uint64_t> counts_;    // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Point-in-time export of a registry: every instrument sampled at one
/// simulation time, serialisable as schema-versioned JSON (the metrics
/// sibling of bench_util.hpp's BENCH_*.json).
struct MetricsSnapshot {
  static constexpr int kSchemaVersion = 1;

  struct Sample {
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "probe"
    double value = 0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0;
  };

  sim::Time at = 0;
  std::vector<Sample> samples;
  std::vector<HistogramSample> histograms;

  /// Value of a sampled metric by name; -1 when absent (tests and the
  /// timeline tool treat metrics as optional).
  double value_of(const std::string& name) const;

  /// {"schema_version":1,"at_ns":...,"metrics":[...],"histograms":[...]}
  void write_json(std::ostream& os) const;
};

/// Named instruments registered by components, snapshotable at any sim
/// time. Names are unique across kinds; re-requesting an existing name
/// with the same kind returns the same instrument (so independent
/// attach sites can share a counter), a different kind throws.
///
/// Instruments are stored behind stable pointers: references handed out
/// stay valid for the registry's lifetime regardless of later
/// registrations. `register_probe` adds a pull-style gauge sampled only
/// at snapshot time — the zero-overhead way to export the per-component
/// counter structs that already exist (L3Switch::Counters,
/// Ospf::Counters, DropTailQueue accounting, TCP stats).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  void register_probe(const std::string& name, std::function<double()> probe);

  MetricsSnapshot snapshot(sim::Time at) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size() +
           probes_.size();
  }

 private:
  void ensure_unused(const std::string& name, const char* kind) const;

  // std::map keeps snapshots deterministically sorted by name.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> probes_;
};

}  // namespace f2t::obs
