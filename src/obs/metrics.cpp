#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace f2t::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void MetricsRegistry::ensure_unused(const std::string& name,
                                    const char* kind) const {
  const bool taken = (kind[0] != 'c' && counters_.contains(name)) ||
                     (kind[0] != 'g' && gauges_.contains(name)) ||
                     (kind[0] != 'h' && histograms_.contains(name)) ||
                     (kind[0] != 'p' && probes_.contains(name));
  if (taken) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered with another kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  ensure_unused(name, "counter");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  ensure_unused(name, "gauge");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  ensure_unused(name, "histogram");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::register_probe(const std::string& name,
                                     std::function<double()> probe) {
  ensure_unused(name, "probe");
  if (!probe) throw std::invalid_argument("MetricsRegistry: null probe");
  probes_[name] = std::move(probe);
}

MetricsSnapshot MetricsRegistry::snapshot(sim::Time at) const {
  MetricsSnapshot snap;
  snap.at = at;
  for (const auto& [name, c] : counters_) {
    snap.samples.push_back(
        {name, "counter", static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    snap.samples.push_back({name, "gauge", g->value()});
  }
  for (const auto& [name, probe] : probes_) {
    snap.samples.push_back({name, "probe", probe()});
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->bounds(), h->counts(), h->count(), h->sum()});
  }
  return snap;
}

double MetricsSnapshot::value_of(const std::string& name) const {
  for (const Sample& s : samples) {
    if (s.name == name) return s.value;
  }
  return -1;
}

namespace {
/// JSON has no NaN/Inf; clamp to 0 like bench_util does.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }
}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n"
     << "  \"schema_version\": " << kSchemaVersion << ",\n"
     << "  \"at_ns\": " << at << ",\n"
     << "  \"metrics\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    os << "    {\"name\": \"" << s.name << "\", \"kind\": \"" << s.kind
       << "\", \"value\": " << finite(s.value) << "}"
       << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"histograms\": [\n";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    os << "    {\"name\": \"" << h.name << "\", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << finite(h.bounds[b]) << (b + 1 < h.bounds.size() ? ", " : "");
    }
    os << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << h.counts[b] << (b + 1 < h.counts.size() ? ", " : "");
    }
    os << "], \"count\": " << h.count << ", \"sum\": " << finite(h.sum)
       << "}" << (i + 1 < histograms.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace f2t::obs
