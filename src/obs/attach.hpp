#pragma once

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace f2t::net {
class Network;
}
namespace f2t::routing {
class Ospf;
class CentralController;
class PathVector;
class DetectionAgent;
class BfdManager;
}  // namespace f2t::routing
namespace f2t::sim {
class Simulator;
}

namespace f2t::obs {

/// The glue between the simulation layers and the observability layer.
///
/// Lower layers (net/, routing/) expose narrow guarded hooks in their own
/// vocabulary (Link::DropHook, Ospf::ObsEvent, ...) and know nothing about
/// journals or registries. These functions translate: they install hook
/// closures that stamp the current simulation time and append typed Events
/// to the journal, and register pull-style probes that read the counters
/// components already keep. Nothing here runs unless explicitly attached,
/// so an unobserved run pays no cost.

/// Installs journal hooks on every link, switch and host of the network:
/// physical link up/down, detected port transitions, per-packet drops with
/// reasons, host deliveries, and data-plane backup-route activation (the
/// first forward that resolves via a kStatic F²Tree backup after not
/// doing so).
void attach_journal(sim::Simulator& sim, net::Network& network,
                    EventJournal& journal);

/// Installs OSPF milestone hooks (LSA originated/accepted, SPF run,
/// FIB install) for one instance.
void attach_journal(sim::Simulator& sim, routing::Ospf& ospf,
                    EventJournal& journal);

/// Installs the controller push hook (fires when a pushed FIB lands).
void attach_journal(sim::Simulator& sim, routing::CentralController& controller,
                    EventJournal& journal);

/// Installs path-vector milestone hooks (update sent/received, FIB
/// install) for one instance.
void attach_journal(sim::Simulator& sim, routing::PathVector& path_vector,
                    EventJournal& journal);

/// Installs BFD milestone hooks (session up/down, dampening
/// suppress/reuse), stamped with the session's switch and port.
void attach_journal(sim::Simulator& sim, routing::BfdManager& bfd,
                    EventJournal& journal);

/// Registers network-wide aggregate probes: forwarding counters, link and
/// queue accounting, route-cache hit rates, host delivery counts. Pull
/// style — nothing is touched until snapshot time.
void register_metrics(MetricsRegistry& registry, net::Network& network);

/// Registers the engine probe (sim.events_executed).
void register_metrics(MetricsRegistry& registry, sim::Simulator& sim);

/// Registers detection-agent probes (windows opened, flaps suppressed,
/// detections fired).
void register_metrics(MetricsRegistry& registry,
                      routing::DetectionAgent& detection);

/// Registers BFD probes (hellos sent/received/missed, session
/// transitions, dampening suppress/reuse counts).
void register_metrics(MetricsRegistry& registry, routing::BfdManager& bfd);

}  // namespace f2t::obs
