#include "obs/attach.hpp"

#include <memory>

#include "net/network.hpp"
#include "routing/bfd.hpp"
#include "routing/central.hpp"
#include "routing/detection.hpp"
#include "routing/ospf.hpp"
#include "routing/pathvector.hpp"
#include "sim/simulator.hpp"

namespace f2t::obs {

namespace {

Event packet_event(sim::Simulator& sim, EventType type, const net::Packet& p) {
  Event e;
  e.at = sim.now();
  e.type = type;
  e.proto = static_cast<std::uint8_t>(p.proto);
  e.uid = p.uid;
  return e;
}

DropReason reason_of(net::Link::DropKind kind) {
  switch (kind) {
    case net::Link::DropKind::kDown: return DropReason::kLinkDown;
    case net::Link::DropKind::kQueueFull: return DropReason::kQueueFull;
    case net::Link::DropKind::kGray: return DropReason::kGrayLoss;
  }
  return DropReason::kNone;
}

DropReason reason_of(net::L3Switch::DropReason reason) {
  switch (reason) {
    case net::L3Switch::DropReason::kNoRoute: return DropReason::kNoRoute;
    case net::L3Switch::DropReason::kTtlExpired: return DropReason::kTtlExpired;
  }
  return DropReason::kNone;
}

}  // namespace

void attach_journal(sim::Simulator& sim, net::Network& network,
                    EventJournal& journal) {
  for (net::Link* link : network.links()) {
    const std::int64_t link_id = link->id();
    link->add_observer([&sim, &journal, link_id](net::Link&, bool up) {
      Event e;
      e.at = sim.now();
      e.type = up ? EventType::kLinkUp : EventType::kLinkDown;
      e.link = link_id;
      journal.record(e);
    });
    link->set_drop_hook([&sim, &journal, link_id](const net::Packet& p,
                                                  net::Link::DropKind kind) {
      Event e = packet_event(sim, EventType::kPacketDrop, p);
      e.reason = reason_of(kind);
      e.link = link_id;
      journal.record(e);
    });
  }

  for (net::L3Switch* sw : network.switches()) {
    const std::int64_t node_id = sw->id();
    sw->add_port_state_handler(
        [&sim, &journal, node_id](net::PortId port, bool up) {
          Event e;
          e.at = sim.now();
          e.type = up ? EventType::kPortDetectedUp
                      : EventType::kPortDetectedDown;
          e.node = node_id;
          e.port = port;
          journal.record(e);
        });
    sw->set_drop_handler([&sim, &journal, node_id](
                             const net::Packet& p,
                             net::L3Switch::DropReason reason) {
      Event e = packet_event(sim, EventType::kPacketDrop, p);
      e.reason = reason_of(reason);
      e.node = node_id;
      journal.record(e);
    });
    // Backup activation is a *transition*: the first forward whose
    // resolution fell through to a kStatic F²Tree backup after the
    // previous one did not. One bool per switch keeps it O(1) per packet.
    auto was_static = std::make_shared<bool>(false);
    sw->add_forward_tap([&sim, &journal, sw, node_id, was_static](
                            const net::Packet&, net::PortId, net::PortId) {
      const bool is_static =
          sw->last_resolved_source() == routing::RouteSource::kStatic;
      if (is_static && !*was_static) {
        Event e;
        e.at = sim.now();
        e.type = EventType::kBackupActivated;
        e.node = node_id;
        journal.record(e);
      }
      *was_static = is_static;
    });
  }

  for (net::Host* host : network.hosts()) {
    const std::int64_t node_id = host->id();
    host->set_delivery_tap([&sim, &journal, node_id](const net::Packet& p) {
      Event e = packet_event(sim, EventType::kPacketDelivered, p);
      e.node = node_id;
      journal.record(e);
    });
  }
}

void attach_journal(sim::Simulator& sim, routing::Ospf& ospf,
                    EventJournal& journal) {
  const std::int64_t node_id = ospf.device().id();
  ospf.set_obs_hook([&sim, &journal, node_id](routing::Ospf::ObsEvent event) {
    Event e;
    e.at = sim.now();
    e.node = node_id;
    switch (event) {
      case routing::Ospf::ObsEvent::kLsaOriginated:
        e.type = EventType::kLsaOriginated;
        break;
      case routing::Ospf::ObsEvent::kLsaAccepted:
        e.type = EventType::kLsaAccepted;
        break;
      case routing::Ospf::ObsEvent::kSpfRun:
        e.type = EventType::kSpfRun;
        break;
      case routing::Ospf::ObsEvent::kSpfRunIncremental:
        e.type = EventType::kSpfRunIncremental;
        break;
      case routing::Ospf::ObsEvent::kFibInstall:
        e.type = EventType::kFibInstall;
        break;
    }
    journal.record(e);
  });
}

void attach_journal(sim::Simulator& sim,
                    routing::CentralController& controller,
                    EventJournal& journal) {
  controller.set_push_hook([&sim, &journal](net::L3Switch& sw) {
    Event e;
    e.at = sim.now();
    e.type = EventType::kControllerPush;
    e.node = sw.id();
    journal.record(e);
  });
}

void attach_journal(sim::Simulator& sim, routing::PathVector& path_vector,
                    EventJournal& journal) {
  const std::int64_t node_id = path_vector.device().id();
  path_vector.set_obs_hook(
      [&sim, &journal, node_id](routing::PathVector::ObsEvent event) {
        Event e;
        e.at = sim.now();
        e.node = node_id;
        switch (event) {
          case routing::PathVector::ObsEvent::kUpdateSent:
            e.type = EventType::kBgpUpdateSent;
            break;
          case routing::PathVector::ObsEvent::kUpdateReceived:
            e.type = EventType::kBgpUpdateReceived;
            break;
          case routing::PathVector::ObsEvent::kFibInstall:
            e.type = EventType::kFibInstall;
            break;
        }
        journal.record(e);
      });
}

void register_metrics(MetricsRegistry& registry, net::Network& network) {
  auto sum_switch = [&network](auto field) {
    return [&network, field]() {
      std::uint64_t total = 0;
      for (net::L3Switch* sw : network.switches()) total += field(*sw);
      return static_cast<double>(total);
    };
  };
  registry.register_probe("net.forwarded", sum_switch([](net::L3Switch& s) {
                            return s.counters().forwarded;
                          }));
  registry.register_probe("net.local_delivered",
                          sum_switch([](net::L3Switch& s) {
                            return s.counters().local_delivered;
                          }));
  registry.register_probe("net.dropped_no_route",
                          sum_switch([](net::L3Switch& s) {
                            return s.counters().dropped_no_route;
                          }));
  registry.register_probe("net.dropped_ttl", sum_switch([](net::L3Switch& s) {
                            return s.counters().dropped_ttl;
                          }));
  registry.register_probe("net.control_in", sum_switch([](net::L3Switch& s) {
                            return s.counters().control_in;
                          }));
  registry.register_probe("net.route_cache.hits",
                          sum_switch([](net::L3Switch& s) {
                            return s.route_cache().hits();
                          }));
  registry.register_probe("net.route_cache.misses",
                          sum_switch([](net::L3Switch& s) {
                            return s.route_cache().misses();
                          }));

  auto sum_link = [&network](auto field) {
    return [&network, field]() {
      std::uint64_t total = 0;
      for (net::Link* link : network.links()) total += field(*link);
      return static_cast<double>(total);
    };
  };
  registry.register_probe("link.delivered", sum_link([](net::Link& l) {
                            return l.delivered();
                          }));
  registry.register_probe("link.dropped_down", sum_link([](net::Link& l) {
                            return l.dropped_down();
                          }));
  registry.register_probe("link.dropped_queue", sum_link([](net::Link& l) {
                            return l.dropped_queue();
                          }));
  registry.register_probe("link.dropped_gray", sum_link([](net::Link& l) {
                            return l.dropped_gray();
                          }));
  registry.register_probe("queue.enqueued", sum_link([](net::Link& l) {
                            return l.queue_enqueued();
                          }));
  registry.register_probe("queue.marked", sum_link([](net::Link& l) {
                            return l.queue_marked();
                          }));
  registry.register_probe("queue.depth", sum_link([](net::Link& l) {
                            return l.queue_depth();
                          }));

  registry.register_probe("host.delivered", [&network]() {
    std::uint64_t total = 0;
    for (net::Host* h : network.hosts()) total += h->delivered();
    return static_cast<double>(total);
  });
  registry.register_probe("host.misdelivered", [&network]() {
    std::uint64_t total = 0;
    for (net::Host* h : network.hosts()) total += h->misdelivered();
    return static_cast<double>(total);
  });
}

void register_metrics(MetricsRegistry& registry, sim::Simulator& sim) {
  registry.register_probe("sim.events_executed", [&sim]() {
    return static_cast<double>(sim.scheduler().executed_count());
  });
  registry.register_probe("sim.calendar.rebuilds", [&sim]() {
    return static_cast<double>(sim.scheduler().queue_stats().rebuilds());
  });
  registry.register_probe("sim.calendar.far_jumps", [&sim]() {
    return static_cast<double>(sim.scheduler().queue_stats().far_jumps);
  });
  registry.register_probe("sim.calendar.max_bucket_depth", [&sim]() {
    return static_cast<double>(
        sim.scheduler().queue_stats().max_bucket_depth);
  });
  registry.register_probe("sim.calendar.buckets", [&sim]() {
    return static_cast<double>(sim.scheduler().queue_stats().bucket_count);
  });
}

void attach_journal(sim::Simulator& sim, routing::BfdManager& bfd,
                    EventJournal& journal) {
  bfd.set_obs_hook([&sim, &journal](routing::BfdManager::ObsEvent event,
                                    net::NodeId node, net::PortId port) {
    Event e;
    e.at = sim.now();
    e.node = node;
    e.port = port;
    switch (event) {
      case routing::BfdManager::ObsEvent::kSessionUp:
        e.type = EventType::kBfdSessionUp;
        break;
      case routing::BfdManager::ObsEvent::kSessionDown:
        e.type = EventType::kBfdSessionDown;
        break;
      case routing::BfdManager::ObsEvent::kSuppress:
        e.type = EventType::kBfdSuppress;
        break;
      case routing::BfdManager::ObsEvent::kReuse:
        e.type = EventType::kBfdReuse;
        break;
    }
    journal.record(e);
  });
}

void register_metrics(MetricsRegistry& registry,
                      routing::DetectionAgent& detection) {
  registry.register_probe("detection.reports_scheduled", [&detection]() {
    return static_cast<double>(detection.counters().reports_scheduled);
  });
  registry.register_probe("detection.flaps_suppressed", [&detection]() {
    return static_cast<double>(detection.counters().flaps_suppressed);
  });
  registry.register_probe("detection.detections_fired", [&detection]() {
    return static_cast<double>(detection.counters().detections_fired);
  });
}

void register_metrics(MetricsRegistry& registry, routing::BfdManager& bfd) {
  const auto probe = [&bfd](auto field) {
    return [&bfd, field]() {
      return static_cast<double>(field(bfd.counters()));
    };
  };
  using Counters = routing::BfdManager::Counters;
  registry.register_probe("bfd.hellos_sent", probe([](const Counters& c) {
                            return c.hellos_sent;
                          }));
  registry.register_probe("bfd.hellos_received", probe([](const Counters& c) {
                            return c.hellos_received;
                          }));
  registry.register_probe("bfd.hellos_missed", probe([](const Counters& c) {
                            return c.hellos_missed;
                          }));
  registry.register_probe("bfd.sessions_up", probe([](const Counters& c) {
                            return c.sessions_up;
                          }));
  registry.register_probe("bfd.sessions_down", probe([](const Counters& c) {
                            return c.sessions_down;
                          }));
  registry.register_probe("bfd.remote_down_signals",
                          probe([](const Counters& c) {
                            return c.remote_down_signals;
                          }));
  registry.register_probe("bfd.suppresses", probe([](const Counters& c) {
                            return c.suppresses;
                          }));
  registry.register_probe("bfd.reuses", probe([](const Counters& c) {
                            return c.reuses;
                          }));
}

}  // namespace f2t::obs
