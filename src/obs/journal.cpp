#include "obs/journal.hpp"

namespace f2t::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kLinkDown: return "link_down";
    case EventType::kLinkUp: return "link_up";
    case EventType::kPortDetectedDown: return "port_detected_down";
    case EventType::kPortDetectedUp: return "port_detected_up";
    case EventType::kLsaOriginated: return "lsa_originated";
    case EventType::kLsaAccepted: return "lsa_accepted";
    case EventType::kSpfRun: return "spf_run";
    case EventType::kSpfRunIncremental: return "spf_run_incremental";
    case EventType::kFibInstall: return "fib_install";
    case EventType::kBackupActivated: return "backup_activated";
    case EventType::kControllerPush: return "controller_push";
    case EventType::kBgpUpdateSent: return "bgp_update_sent";
    case EventType::kBgpUpdateReceived: return "bgp_update_received";
    case EventType::kPacketDrop: return "packet_drop";
    case EventType::kPacketDelivered: return "packet_delivered";
    case EventType::kBfdSessionUp: return "bfd_session_up";
    case EventType::kBfdSessionDown: return "bfd_session_down";
    case EventType::kBfdSuppress: return "bfd_suppress";
    case EventType::kBfdReuse: return "bfd_reuse";
  }
  return "?";
}

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kLinkDown: return "link_down";
    case DropReason::kQueueFull: return "queue_full";
    case DropReason::kGrayLoss: return "gray_loss";
  }
  return "?";
}

void write_event_json(std::ostream& os, const Event& e) {
  os << "{\"at\": " << e.at << ", \"type\": \"" << event_type_name(e.type)
     << "\"";
  if (e.node >= 0) os << ", \"node\": " << e.node;
  if (e.link >= 0) os << ", \"link\": " << e.link;
  if (e.port >= 0) os << ", \"port\": " << e.port;
  if (e.reason != DropReason::kNone) {
    os << ", \"reason\": \"" << drop_reason_name(e.reason) << "\"";
  }
  if (e.proto != 0xff) os << ", \"proto\": " << static_cast<int>(e.proto);
  if (e.type == EventType::kPacketDrop ||
      e.type == EventType::kPacketDelivered) {
    os << ", \"uid\": " << e.uid;
  }
  os << "}";
}

void write_events_jsonl(std::ostream& os, const std::vector<Event>& events,
                        std::uint64_t dropped) {
  os << "{\"schema_version\": " << EventJournal::kSchemaVersion
     << ", \"stream\": \"f2t-events\", \"events\": " << events.size();
  if (dropped > 0) os << ", \"dropped\": " << dropped;
  os << "}\n";
  for (const Event& e : events) {
    write_event_json(os, e);
    os << "\n";
  }
}

}  // namespace f2t::obs
