#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/journal.hpp"
#include "obs/timeline.hpp"

namespace f2t::obs {

/// One stage of the paper's causal recovery chain, as a span. The chain
/// per failure episode is
///   link_down → detect → lsa_flood → spf_run → fib_delta →
///   first_rerouted_packet
/// under a per-episode root span; backup activation hangs off detect as
/// a side branch (it is the data-plane shortcut, not a chain stage).
enum class SpanKind : std::uint8_t {
  kRecovery,      ///< per-episode root: failure instant → last milestone
  kLinkDown,      ///< instant: the physical cut(s)
  kDetect,        ///< failure → first port-detected-down
  kBackup,        ///< instant: first static-backup activation
  kFlood,         ///< first → last LSA/BGP flood event of the episode
  kSpf,           ///< first → last SPF run (full or incremental)
  kFibDelta,      ///< first FIB write → convergence (last install/push)
  kFirstReroute,  ///< delivery gap: last pre-gap → first post-gap packet
};

const char* span_kind_name(SpanKind kind);

/// A parent-linked span. Durations are simulated time; the Chrome export
/// adds an estimated wall-clock duration from the engine profile. Spans
/// are pinned to RecoveryTimeline milestones *by construction*: kDetect
/// ends at detected_at, kFibDelta and kRecovery end at converged_at (when
/// converged), kFirstReroute ends at gap_end — so the trace can never
/// disagree with the scalar timeline it visualizes.
struct Span {
  SpanKind kind = SpanKind::kRecovery;
  int episode = 0;   ///< index into RecoveryTimeline::failures()
  int parent = -1;   ///< index into spans(), -1 for the episode root
  sim::Time begin = 0;
  sim::Time end = 0;
  std::uint64_t count = 0;  ///< folded journal events (links cut, LSAs, …)
  /// kSpf only: count = full Dijkstra runs, count_incremental = runs
  /// served by the incremental subtree repair.
  std::uint64_t count_incremental = 0;
  bool bfd = false;  ///< kDetect only: a BFD session-down drove detection

  sim::Time duration() const { return end - begin; }
};

/// Stitches one run's journal into causal recovery spans.
///
/// Pure post-run derivation: it reads the already-recorded journal, so
/// tracing adds zero hooks, zero branches and zero events to the
/// simulation itself — a traced run and an untraced observed run execute
/// identically. Missing milestones (never detected, never converged, …)
/// simply skip their stage; the chain links each present stage to the
/// nearest preceding one.
class SpanTrace {
 public:
  explicit SpanTrace(const std::vector<Event>& events,
                     const EngineProfile& profile = {});

  const std::vector<Span>& spans() const { return spans_; }
  /// The scalar timeline the spans were pinned to.
  const RecoveryTimeline& timeline() const { return timeline_; }

  /// First span of `kind` in `episode`, or nullptr.
  const Span* find(SpanKind kind, int episode = 0) const;

  /// Chrome trace_event JSON (the "JSON Array Format" with metadata),
  /// loadable in about:tracing and Perfetto. One pid ("f2t-sim"), one tid
  /// per failure episode; spans become "X" complete events with ts/dur in
  /// microseconds of simulated time, parent links become "s"/"f" flow
  /// arrows, and args carry the journal-event counts plus an estimated
  /// wall-clock cost from the engine profile.
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::vector<Span> spans_;
  RecoveryTimeline timeline_;
  EngineProfile profile_;
};

}  // namespace f2t::obs
