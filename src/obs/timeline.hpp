#pragma once

#include <ostream>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/event_queue.hpp"

namespace f2t::obs {

/// Engine self-profiling for one run: how much discrete-event work the
/// simulation did, how fast the host executed it, where the wall clock
/// went (setup vs the event loop vs collection), and how the calendar
/// queue behaved (geometry churn, pile-up depth).
struct EngineProfile {
  std::size_t events_executed = 0;
  double wall_seconds = 0;  ///< the event loop only
  double sim_seconds = 0;
  /// Wall clock outside the event loop: topology build + convergence
  /// (setup) and post-run metric/arrival collection (collect). Filled by
  /// the runner; zero when the caller drives the Testbed directly.
  double setup_wall_seconds = 0;
  double collect_wall_seconds = 0;
  sim::CalendarStats queue;  ///< scheduler calendar-queue self-profile

  double events_per_wall_second() const {
    return wall_seconds > 0 ? static_cast<double>(events_executed) /
                                  wall_seconds
                            : 0;
  }
  double wall_per_sim_second() const {
    return sim_seconds > 0 ? wall_seconds / sim_seconds : 0;
  }
};

/// Everything one observed run exports: a metrics snapshot taken at the
/// horizon, the full event journal, and the engine profile. Copied out of
/// the Testbed by the runner so results outlive the simulation.
///
/// `samples` is populated independently of `enabled`: periodic sampling
/// (TestbedConfig::sample_interval) is its own opt-in and does not
/// require the journal/metrics machinery.
struct RunObservation {
  bool enabled = false;
  MetricsSnapshot metrics;
  std::vector<Event> events;
  EngineProfile profile;
  SamplerReport samples;
};

/// One failure episode reconstructed from the journal: all links that
/// went down at the same instant, and the recovery milestones that
/// followed. Times are -1 ("never") when the journal holds no evidence.
struct FailureRecovery {
  sim::Time failed_at = 0;            ///< physical link-down instant
  std::vector<std::int64_t> links;    ///< LinkIds cut at that instant
  sim::Time detected_at = -1;         ///< first port-detected-down after it
  sim::Time backup_at = -1;           ///< first backup-route activation
  sim::Time gap_start = -1;           ///< last pre-gap delivery (paper's gap)
  sim::Time gap_end = -1;             ///< first post-gap delivery
  sim::Time converged_at = -1;        ///< last FIB install/push in the episode
  std::uint64_t packets_lost = 0;     ///< data packets dropped in the gap

  bool detected() const { return detected_at >= 0; }
  bool rerouted() const { return gap_end >= 0; }
  bool converged() const { return converged_at >= 0; }

  /// Table III quantities, relative to the failure instant.
  sim::Time time_to_detect() const { return detected_at - failed_at; }
  sim::Time time_to_first_reroute() const { return gap_end - failed_at; }
  sim::Time time_to_converge() const { return converged_at - failed_at; }
  /// Connectivity-loss duration, identical in definition to
  /// stats::find_connectivity_loss on the delivery stream.
  sim::Time gap() const { return gap_end - gap_start; }
};

/// Replays one run's journal and derives the paper's per-failure
/// quantities (Table III / Fig. 4–6): time-to-detect, time-to-first-
/// rerouted-packet, time-to-converge, and packets lost in the gap.
///
/// Derivation rules (documented in docs/ARCHITECTURE.md):
///  - link-down events sharing one timestamp form one failure episode;
///  - detection is the first port-detected-down at or after the episode;
///  - the gap is computed from packet-delivered events with exactly the
///    semantics of stats::find_connectivity_loss (first inter-delivery
///    gap > min_gap ending after the failure instant), so it matches the
///    UDP probe's ConnectivityLoss measurement by construction;
///  - convergence is the last FIB install / controller push before the
///    next episode (the control plane's final word on this failure);
///  - packets lost are data-plane drop events in [failure, gap end].
class RecoveryTimeline {
 public:
  explicit RecoveryTimeline(const std::vector<Event>& events,
                            sim::Time min_gap = sim::millis(5));

  const std::vector<FailureRecovery>& failures() const { return failures_; }

  /// Total data-plane (non-routing) packet drops in the journal.
  std::uint64_t total_data_drops() const { return total_data_drops_; }
  std::uint64_t total_deliveries() const { return total_deliveries_; }

  /// Human-readable per-episode report.
  void print(std::ostream& os) const;

 private:
  std::vector<FailureRecovery> failures_;
  std::uint64_t total_data_drops_ = 0;
  std::uint64_t total_deliveries_ = 0;
};

}  // namespace f2t::obs
