#include "obs/trace.hpp"

#include <algorithm>

namespace f2t::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRecovery: return "recovery";
    case SpanKind::kLinkDown: return "link_down";
    case SpanKind::kDetect: return "detect";
    case SpanKind::kBackup: return "backup_activated";
    case SpanKind::kFlood: return "lsa_flood";
    case SpanKind::kSpf: return "spf_run";
    case SpanKind::kFibDelta: return "fib_delta";
    case SpanKind::kFirstReroute: return "first_rerouted_packet";
  }
  return "?";
}

namespace {

bool is_flood_event(EventType t) {
  return t == EventType::kLsaOriginated || t == EventType::kLsaAccepted ||
         t == EventType::kBgpUpdateSent || t == EventType::kBgpUpdateReceived;
}

bool is_spf_event(EventType t) {
  return t == EventType::kSpfRun || t == EventType::kSpfRunIncremental;
}

bool is_install_event(EventType t) {
  return t == EventType::kFibInstall || t == EventType::kControllerPush;
}

}  // namespace

SpanTrace::SpanTrace(const std::vector<Event>& events,
                     const EngineProfile& profile)
    : timeline_(events), profile_(profile) {
  const auto& failures = timeline_.failures();
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const FailureRecovery& f = failures[i];
    const sim::Time window_end = i + 1 < failures.size()
                                     ? failures[i + 1].failed_at
                                     : sim::kNever;
    const auto in_window = [&](const Event& e) {
      return e.at >= f.failed_at && e.at < window_end;
    };
    const int episode = static_cast<int>(i);

    const int root = static_cast<int>(spans_.size());
    spans_.push_back({SpanKind::kRecovery, episode, -1, f.failed_at,
                      f.failed_at, 1, 0, false});

    spans_.push_back({SpanKind::kLinkDown, episode, root, f.failed_at,
                      f.failed_at, f.links.size(), 0, false});
    // The causal chain: each present stage parents the next; absent
    // stages (no detection, no convergence, …) are skipped and the chain
    // links to the nearest preceding stage instead.
    int chain = static_cast<int>(spans_.size()) - 1;

    if (f.detected()) {
      Span s{SpanKind::kDetect, episode, chain, f.failed_at, f.detected_at,
             0,  0, false};
      for (const Event& e : events) {
        if (!in_window(e)) continue;
        if (e.type == EventType::kPortDetectedDown) ++s.count;
        if (e.type == EventType::kBfdSessionDown && e.at <= f.detected_at) {
          s.bfd = true;
        }
      }
      chain = static_cast<int>(spans_.size());
      spans_.push_back(s);
    }

    if (f.backup_at >= 0) {
      spans_.push_back({SpanKind::kBackup, episode, chain, f.backup_at,
                        f.backup_at, 1, 0, false});
    }

    // Flood / SPF / FIB stages span first → last matching journal event
    // in the episode window.
    const auto stage = [&](SpanKind kind, auto match) {
      Span s{kind, episode, chain, -1, -1, 0, 0, false};
      for (const Event& e : events) {
        if (!in_window(e) || !match(e)) continue;
        if (s.count + s.count_incremental == 0) s.begin = e.at;
        s.begin = std::min(s.begin, e.at);
        s.end = std::max(s.end, e.at);
        if (e.type == EventType::kSpfRunIncremental) {
          ++s.count_incremental;
        } else {
          ++s.count;
        }
      }
      if (s.count + s.count_incremental == 0) return;
      chain = static_cast<int>(spans_.size());
      spans_.push_back(s);
    };
    stage(SpanKind::kFlood,
          [](const Event& e) { return is_flood_event(e.type); });
    stage(SpanKind::kSpf, [](const Event& e) { return is_spf_event(e.type); });
    stage(SpanKind::kFibDelta,
          [](const Event& e) { return is_install_event(e.type); });
    // Pin the FIB stage's end to the timeline's convergence milestone —
    // identical by derivation (both are the last install/push in the
    // window), asserted here so a derivation drift cannot ship.
    if (f.converged() && spans_.back().kind == SpanKind::kFibDelta) {
      spans_.back().end = f.converged_at;
    }

    if (f.rerouted()) {
      // The connectivity gap: starts at the last pre-gap delivery
      // (clamped into the episode window for containment under the
      // root), ends at the first post-gap delivery.
      spans_.push_back({SpanKind::kFirstReroute, episode, chain,
                        std::max(f.failed_at, f.gap_start), f.gap_end, 1, 0,
                        false});
    }

    // Root covers every milestone of its episode.
    sim::Time last = f.failed_at;
    for (std::size_t s = static_cast<std::size_t>(root); s < spans_.size();
         ++s) {
      last = std::max(last, spans_[s].end);
    }
    spans_[static_cast<std::size_t>(root)].end = last;
  }
}

const Span* SpanTrace::find(SpanKind kind, int episode) const {
  for (const Span& s : spans_) {
    if (s.kind == kind && s.episode == episode) return &s;
  }
  return nullptr;
}

namespace {

/// Nanoseconds as fractional microseconds ("380000.125"), the trace_event
/// ts/dur unit, without floating-point formatting jitter.
void write_us(std::ostream& os, sim::Time ns) {
  os << ns / 1000 << '.';
  const sim::Time frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void SpanTrace::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"f2t-sim\"}}";
  const auto& failures = timeline_.failures();
  for (std::size_t i = 0; i < failures.size(); ++i) {
    os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": "
       << i << ", \"args\": {\"name\": \"failure #" << i + 1 << "\"}}";
  }
  // Wall-clock cost estimate: the engine's measured wall-per-sim-second
  // rate applied to each span's simulated duration.
  const double wall_per_sim = profile_.wall_per_sim_second();
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    os << ",\n{\"name\": \"" << span_kind_name(s.kind)
       << "\", \"cat\": \"recovery\", \"ph\": \"X\", \"ts\": ";
    write_us(os, s.begin);
    os << ", \"dur\": ";
    write_us(os, s.duration());
    os << ", \"pid\": 0, \"tid\": " << s.episode << ", \"args\": {";
    os << "\"sim_ns\": " << s.duration();
    if (wall_per_sim > 0) {
      os << ", \"wall_est_us\": "
         << static_cast<std::int64_t>(sim::to_seconds(s.duration()) *
                                      wall_per_sim * 1e6);
    }
    if (s.kind == SpanKind::kSpf) {
      os << ", \"full\": " << s.count
         << ", \"incremental\": " << s.count_incremental;
    } else {
      os << ", \"count\": " << s.count;
    }
    if (s.kind == SpanKind::kDetect) {
      os << ", \"mode\": \"" << (s.bfd ? "bfd" : "oracle") << "\"";
    }
    os << "}}";
    // Causal arrow from the parent stage (skipping the episode root:
    // containment already shows that nesting).
    if (s.parent >= 0 &&
        spans_[static_cast<std::size_t>(s.parent)].kind !=
            SpanKind::kRecovery) {
      const Span& p = spans_[static_cast<std::size_t>(s.parent)];
      os << ",\n{\"name\": \"causal\", \"cat\": \"recovery\", \"ph\": "
            "\"s\", \"id\": "
         << i << ", \"ts\": ";
      write_us(os, p.end);
      os << ", \"pid\": 0, \"tid\": " << p.episode << "}";
      os << ",\n{\"name\": \"causal\", \"cat\": \"recovery\", \"ph\": "
            "\"f\", \"bp\": \"e\", \"id\": "
         << i << ", \"ts\": ";
      write_us(os, s.begin);
      os << ", \"pid\": 0, \"tid\": " << s.episode << "}";
    }
  }
  os << "\n]}\n";
}

}  // namespace f2t::obs
