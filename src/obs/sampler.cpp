#include "obs/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "net/link.hpp"
#include "net/network.hpp"
#include "stats/percentile.hpp"

namespace f2t::obs {

namespace {

/// Deterministic double formatting shared with the campaign artifacts:
/// shortest round-trippable-enough form at 10 significant digits, NaN/Inf
/// clamped to 0 (JSON has neither).
std::string fmt(double v) {
  if (!std::isfinite(v) || v == 0) return "0";
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

SamplerReport::Rollup rollup_column(const std::vector<SamplerReport::Row>& rows,
                                    const std::string& name, std::size_t s) {
  std::vector<double> column;
  column.reserve(rows.size());
  for (const SamplerReport::Row& row : rows) column.push_back(row.values[s]);
  std::sort(column.begin(), column.end());
  SamplerReport::Rollup r;
  r.name = name;
  r.p50 = stats::nearest_rank_sorted(column, 0.50);
  r.p99 = stats::nearest_rank_sorted(column, 0.99);
  r.p999 = stats::nearest_rank_sorted(column, 0.999);
  r.max = column.back();
  return r;
}

}  // namespace

std::vector<SamplerReport::Rollup> SamplerReport::rollups() const {
  std::vector<Rollup> out;
  if (rows.empty()) return out;
  out.reserve(series.size());
  for (std::size_t s = 0; s < series.size(); ++s) {
    out.push_back(rollup_column(rows, series[s], s));
  }
  return out;
}

std::optional<SamplerReport::Rollup> SamplerReport::rollup_of(
    const std::string& name) const {
  if (rows.empty()) return std::nullopt;
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (series[s] == name) return rollup_column(rows, name, s);
  }
  return std::nullopt;
}

void SamplerReport::write_jsonl(std::ostream& os) const {
  os << "{\"schema_version\": " << kSchemaVersion
     << ", \"stream\": \"f2t-samples\", \"interval_ns\": " << interval
     << ", \"series\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << series[i] << "\"";
  }
  os << "], \"rows\": " << rows.size()
     << ", \"dropped_rows\": " << dropped_rows << "}\n";
  for (const Row& row : rows) {
    os << "{\"at\": " << row.at << ", \"v\": [";
    for (std::size_t i = 0; i < row.values.size(); ++i) {
      if (i > 0) os << ", ";
      os << fmt(row.values[i]);
    }
    os << "]}\n";
  }
  os << "{\"rollups\": [";
  const auto rolled = rollups();
  for (std::size_t i = 0; i < rolled.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << rolled[i].name << "\", \"p50\": "
       << fmt(rolled[i].p50) << ", \"p99\": " << fmt(rolled[i].p99)
       << ", \"p999\": " << fmt(rolled[i].p999) << ", \"max\": "
       << fmt(rolled[i].max) << "}";
  }
  os << "]}\n";
}

TelemetrySampler::TelemetrySampler(sim::Simulator& sim,
                                   const SamplerConfig& config)
    : sim_(sim), config_(config) {
  if (config_.interval <= 0) {
    throw std::invalid_argument("TelemetrySampler: interval must be > 0");
  }
  if (config_.capacity == 0) {
    throw std::invalid_argument("TelemetrySampler: capacity must be > 0");
  }
}

void TelemetrySampler::add_gauge(std::string name,
                                 std::function<double()> probe) {
  if (ticks_ > 0) {
    throw std::logic_error(
        "TelemetrySampler: sources are fixed once sampling has ticked");
  }
  if (!probe) throw std::invalid_argument("TelemetrySampler: null probe");
  sources_.push_back({std::move(name), std::move(probe), false, 1.0, 0});
}

void TelemetrySampler::add_rate(std::string name,
                                std::function<double()> probe, double scale) {
  if (ticks_ > 0) {
    throw std::logic_error(
        "TelemetrySampler: sources are fixed once sampling has ticked");
  }
  if (!probe) throw std::invalid_argument("TelemetrySampler: null probe");
  Source s{std::move(name), std::move(probe), true, scale, 0};
  s.last = s.probe();  // rate baseline: the value at registration
  sources_.push_back(std::move(s));
}

void TelemetrySampler::start() {
  if (started_) return;
  started_ = true;
  last_tick_at_ = sim_.now();
  pending_ = sim_.after(config_.interval, [this] { tick(); });
}

void TelemetrySampler::stop() {
  if (pending_ != sim::kInvalidEventId) {
    sim_.cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
  started_ = false;
}

void TelemetrySampler::tick() {
  const sim::Time now = sim_.now();
  const double dt = sim::to_seconds(now - last_tick_at_);
  SamplerReport::Row row;
  row.at = now;
  row.values.reserve(sources_.size());
  for (Source& s : sources_) {
    const double v = s.probe();
    if (s.rate) {
      row.values.push_back(dt > 0 ? s.scale * (v - s.last) / dt : 0);
      s.last = v;
    } else {
      row.values.push_back(v);
    }
  }
  if (ring_.size() < config_.capacity) {
    ring_.push_back(std::move(row));
  } else {
    ring_[head_] = std::move(row);
    head_ = (head_ + 1) % config_.capacity;
    ++dropped_;
  }
  ++ticks_;
  last_tick_at_ = now;
  pending_ = sim_.after(config_.interval, [this] { tick(); });
}

SamplerReport TelemetrySampler::report() const {
  SamplerReport out;
  out.enabled = true;
  out.interval = config_.interval;
  out.series.reserve(sources_.size());
  for (const Source& s : sources_) out.series.push_back(s.name);
  out.rows.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.rows.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  out.dropped_rows = dropped_;
  return out;
}

void attach_telemetry(TelemetrySampler& sampler, sim::Simulator& sim,
                      net::Network& network) {
  for (net::Link* link : network.links()) {
    const std::string base = "link" + std::to_string(link->id());
    const double bandwidth = link->params().bandwidth_bps;
    for (const auto& [dir, tag] :
         {std::pair{net::Link::Direction::kAToB, ".ab"},
          std::pair{net::Link::Direction::kBToA, ".ba"}}) {
      sampler.add_gauge(base + tag + ".qdepth", [link, dir = dir] {
        return static_cast<double>(link->queue_depth(dir));
      });
      // Utilization: delivered bits over capacity for the elapsed tick.
      sampler.add_rate(
          base + tag + ".util",
          [link, dir = dir] {
            return static_cast<double>(link->delivered_bytes(dir));
          },
          8.0 / bandwidth);
      sampler.add_rate(base + tag + ".drops", [link, dir = dir] {
        return static_cast<double>(link->dropped_wire(dir) +
                                   link->queue_dropped(dir));
      });
    }
  }
  sampler.add_gauge("net.queue_depth", [&network] {
    std::uint64_t total = 0;
    for (net::Link* link : network.links()) total += link->queue_depth();
    return static_cast<double>(total);
  });
  sampler.add_rate("net.drop_rate", [&network] {
    std::uint64_t total = 0;
    for (net::Link* link : network.links()) {
      total += link->dropped_down() + link->dropped_gray() +
               link->dropped_queue();
    }
    return static_cast<double>(total);
  });
  sampler.add_rate("sim.event_rate", [&sim] {
    return static_cast<double>(sim.scheduler().executed_count());
  });
}

}  // namespace f2t::obs
