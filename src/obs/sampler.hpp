#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace f2t::net {
class Network;
}

namespace f2t::obs {

/// Sampler cadence and retention. The interval is simulated time; the
/// capacity bounds memory as a ring — once full, the *oldest* rows are
/// overwritten and counted in dropped_rows, so a long run keeps the most
/// recent window (the post-reroute congestion the analysis wants) at a
/// fixed cost.
struct SamplerConfig {
  sim::Time interval = sim::millis(10);
  std::size_t capacity = 4096;  ///< retained ticks (rows)
};

/// The time series one sampled run exports: the column names, the
/// retained rows in chronological order, and how many rows the ring
/// overwrote. Plain data — copied out of the Testbed by the runner so
/// results outlive the simulation.
struct SamplerReport {
  static constexpr int kSchemaVersion = 1;

  struct Row {
    sim::Time at = 0;
    std::vector<double> values;  ///< one per series, same order
  };

  struct Rollup {
    std::string name;
    double p50 = 0;
    double p99 = 0;
    double p999 = 0;
    double max = 0;
  };

  bool enabled = false;
  sim::Time interval = 0;
  std::vector<std::string> series;
  std::vector<Row> rows;
  std::uint64_t dropped_rows = 0;

  /// Per-series p50/p99/p999/max over the retained rows (nearest-rank
  /// percentiles via stats::nearest_rank_sorted, the same convention the
  /// campaign aggregates use). Empty when there are no rows.
  std::vector<Rollup> rollups() const;

  /// The rollup for one series by name (campaign shards summarize queue
  /// depth). Computes just the requested column — O(rows log rows), not
  /// every series — and returns nullopt when the series does not exist
  /// or no rows were retained, so a typo'd metric name is
  /// distinguishable from an all-zero series instead of silently
  /// fabricating a zeroed rollup.
  std::optional<Rollup> rollup_of(const std::string& name) const;

  /// Schema-versioned JSONL: a header line
  ///   {"schema_version":1,"stream":"f2t-samples","interval_ns":I,
  ///    "series":[...],"rows":N,"dropped_rows":D}
  /// then one {"at":T,"v":[...]} line per row (chronological), then a
  /// final {"rollups":[{"name":...,"p50":...,"p99":...,"p999":...,
  /// "max":...},...]} line. Deterministic formatting — byte-identical across runs with
  /// identical inputs.
  void write_jsonl(std::ostream& os) const;
};

/// Periodic telemetry sampler driven by the calendar-queue scheduler.
///
/// Sources are registered before the first tick fires: gauges snapshot a
/// probe's value as-is; rate sources keep the probe's previous value and
/// record `scale * delta / seconds-since-last-tick` (utilization is the
/// delivered-byte counter with scale 8/bandwidth; drop *rates* are the
/// cumulative drop counters differentiated the same way). Each tick
/// reads every probe, appends one ring row and reschedules itself —
/// O(sources) work on the scheduler's own timeline, zero cost to runs
/// that never construct a sampler.
class TelemetrySampler {
 public:
  TelemetrySampler(sim::Simulator& sim, const SamplerConfig& config);

  /// Registers a sampled series. Throws std::logic_error after the first
  /// tick has fired (rows are fixed-width).
  void add_gauge(std::string name, std::function<double()> probe);
  void add_rate(std::string name, std::function<double()> probe,
                double scale = 1.0);

  /// Schedules the first tick `interval` from now. Idempotent.
  void start();

  /// Cancels the pending tick; the collected series stays readable.
  void stop();

  std::size_t source_count() const { return sources_.size(); }
  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t dropped_rows() const { return dropped_; }

  /// Snapshot of the collected series (chronological rows).
  SamplerReport report() const;

 private:
  void tick();

  struct Source {
    std::string name;
    std::function<double()> probe;
    bool rate = false;
    double scale = 1.0;
    double last = 0;  ///< previous probe value (rate sources)
  };

  sim::Simulator& sim_;
  SamplerConfig config_;
  std::vector<Source> sources_;
  std::vector<SamplerReport::Row> ring_;  ///< ring buffer, head_ = oldest
  std::size_t head_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t dropped_ = 0;
  sim::Time last_tick_at_ = 0;
  sim::EventId pending_ = sim::kInvalidEventId;
  bool started_ = false;
};

/// Registers the standard network telemetry on a sampler: per-link,
/// per-direction queue depth ("link<id>.<ab|ba>.qdepth", packets),
/// utilization ("….util", fraction of line rate from delivered bytes) and
/// drop rate ("….drops", wire + tail drops per second), plus network-wide
/// aggregates ("net.queue_depth", "net.drop_rate") and the engine's event
/// execution rate ("sim.event_rate").
void attach_telemetry(TelemetrySampler& sampler, sim::Simulator& sim,
                      net::Network& network);

}  // namespace f2t::obs
