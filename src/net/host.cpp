#include "net/host.hpp"

#include <stdexcept>

namespace f2t::net {

void Host::receive(PortId /*p*/, Packet packet) {
  if (packet.dst != addr_) {
    ++misdelivered_;
    return;
  }
  ++delivered_;
  if (delivery_tap_) delivery_tap_(packet);
  if (handler_) handler_(std::move(packet));
}

void Host::send_up(Packet packet) {
  if (port_count() == 0) {
    throw std::logic_error("Host::send_up: " + name() + " has no uplink");
  }
  send(0, std::move(packet));
}

}  // namespace f2t::net
