#include "net/packet.hpp"

#include <sstream>

namespace f2t::net {

namespace {
const char* proto_name(Protocol p) {
  switch (p) {
    case Protocol::kUdp: return "udp";
    case Protocol::kTcp: return "tcp";
    case Protocol::kRouting: return "routing";
  }
  return "?";
}
}  // namespace

std::string Packet::describe() const {
  std::ostringstream os;
  os << proto_name(proto) << " " << src.str() << ":" << sport << " -> "
     << dst.str() << ":" << dport << " size=" << size_bytes
     << " ttl=" << int{ttl};
  if (proto == Protocol::kTcp) {
    os << " seq=" << tcp.seq << " ack=" << tcp.ack
       << " len=" << tcp.payload_bytes << " flags=" << int{tcp.flags};
  } else if (proto == Protocol::kUdp) {
    os << " useq=" << udp_seq;
  }
  return os.str();
}

}  // namespace f2t::net
