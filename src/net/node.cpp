#include "net/node.hpp"

#include <stdexcept>

#include "net/link.hpp"

namespace f2t::net {

PortId Node::add_port() {
  if (ports_.size() >= kInvalidPort) {
    throw std::length_error("add_port: too many ports");
  }
  ports_.push_back(PortInfo{nullptr, kInvalidNode, Ipv4Addr{}});
  return static_cast<PortId>(ports_.size() - 1);
}

void Node::set_port_link(PortId p, Link* link) {
  if (link == nullptr) throw std::invalid_argument("set_port_link: null link");
  ports_.at(p).link = link;
}

void Node::set_port_peer(PortId p, NodeId peer, Ipv4Addr peer_addr,
                         bool peer_is_switch) {
  PortInfo& info = ports_.at(p);
  info.peer_node = peer;
  info.peer_addr = peer_addr;
  info.peer_is_switch = peer_is_switch;
}

PortId Node::port_of_link(const Link& link) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].link == &link) return static_cast<PortId>(i);
  }
  return kInvalidPort;
}

void Node::send(PortId p, Packet packet) {
  ports_.at(p).link->transmit(*this, std::move(packet));
}

}  // namespace f2t::net
