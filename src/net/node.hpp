#pragma once

#include <string>
#include <vector>

#include "net/ids.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace f2t::net {

class Link;

/// Base class for hosts and switches.
///
/// A node owns a list of ports; each port is bound to one link end. The
/// Network builder wires ports and fills in the peer metadata (node id and
/// L3 address of the far side) that the control plane needs.
class Node {
 public:
  struct PortInfo {
    Link* link = nullptr;
    NodeId peer_node = kInvalidNode;
    Ipv4Addr peer_addr;  ///< router id of a peer switch / address of a host
    bool peer_is_switch = false;
  };

  Node(sim::Simulator& simulator, NodeId id, std::string name)
      : sim_(simulator), id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

  std::size_t port_count() const { return ports_.size(); }
  const PortInfo& port(PortId p) const { return ports_.at(p); }
  const std::vector<PortInfo>& ports() const { return ports_; }

  /// Creates an unbound port; Network binds it to a link right after.
  PortId add_port();
  void set_port_link(PortId p, Link* link);
  void set_port_peer(PortId p, NodeId peer, Ipv4Addr peer_addr,
                     bool peer_is_switch);

  /// The port bound to `link`, or kInvalidPort.
  PortId port_of_link(const Link& link) const;

  /// Transmits a packet out of a port (into that port's link).
  void send(PortId p, Packet packet);

  /// Packet arrival from a link. Implemented by Host / L3Switch.
  virtual void receive(PortId p, Packet packet) = 0;

 protected:
  sim::Simulator& sim_;

 private:
  NodeId id_;
  std::string name_;
  std::vector<PortInfo> ports_;
};

}  // namespace f2t::net
