#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "net/node.hpp"

namespace f2t::net {

Link::Link(sim::Simulator& simulator, LinkId id, End a, End b,
           const LinkParams& params)
    : sim_(simulator),
      id_(id),
      a_(a),
      b_(b),
      params_(params),
      a_to_b_(params.queue_capacity),
      b_to_a_(params.queue_capacity) {
  if (a_.node == nullptr || b_.node == nullptr) {
    throw std::invalid_argument("Link: null endpoint");
  }
  if (params_.bandwidth_bps <= 0) {
    throw std::invalid_argument("Link: bandwidth must be positive");
  }
  a_to_b_.queue.set_ecn_threshold(params_.ecn_threshold);
  b_to_a_.queue.set_ecn_threshold(params_.ecn_threshold);
}

const Link::End& Link::peer_of(const Node& from) const {
  if (&from == a_.node) return b_;
  if (&from == b_.node) return a_;
  throw std::logic_error("Link::peer_of: node is not an endpoint");
}

Link::Direction Link::direction_from(const Node& from) const {
  if (&from == a_.node) return Direction::kAToB;
  if (&from == b_.node) return Direction::kBToA;
  throw std::logic_error("Link::direction_from: node is not an endpoint");
}

Link::Channel& Link::channel_from(const Node& from) {
  if (&from == a_.node) return a_to_b_;
  if (&from == b_.node) return b_to_a_;
  throw std::logic_error("Link::channel_from: node is not an endpoint");
}

void Link::set_channel_up(Channel& ch, bool up) {
  if (ch.up == up) return;
  ch.up = up;
  ++ch.epoch;
  if (!channel_observers_.empty()) {
    const Direction d =
        &ch == &a_to_b_ ? Direction::kAToB : Direction::kBToA;
    for (const auto& observer : channel_observers_) observer(*this, d, up);
  }
  if (!up) {
    // Physical cut: everything queued or serialized in this direction
    // is lost.
    dropped_down_ += ch.queue.size();
    ch.dropped_wire += ch.queue.size();
    if (drop_hook_) {
      for (const Packet& p : ch.queue.contents()) {
        drop_hook_(p, DropKind::kDown);
      }
    }
    ch.queue.clear();
    ch.busy = false;
  }
}

void Link::set_up(bool up) {
  const bool was_up = is_up();
  set_channel_up(a_to_b_, up);
  set_channel_up(b_to_a_, up);
  if (is_up() != was_up) {
    for (const auto& observer : observers_) observer(*this, is_up());
  }
}

void Link::set_direction_up(Direction direction, bool up) {
  const bool was_up = is_up();
  set_channel_up(channel(direction), up);
  if (is_up() != was_up) {
    for (const auto& observer : observers_) observer(*this, is_up());
  }
}

void Link::transmit(const Node& from, Packet packet) {
  Channel& ch = channel_from(from);
  if (!ch.up) {
    // The sender has not yet detected the failure; the packet is lost on
    // the wire. This is the window the paper's fast reroute shrinks.
    ++dropped_down_;
    ++ch.dropped_wire;
    if (drop_hook_) drop_hook_(packet, DropKind::kDown);
    return;
  }
  // Tail-drop check happens before push so the hook still sees the packet
  // (push takes it by value); the queue itself keeps the drop count.
  if (drop_hook_ && ch.queue.size() >= ch.queue.capacity()) {
    drop_hook_(packet, DropKind::kQueueFull);
  }
  if (!ch.queue.push(std::move(packet))) return;  // tail drop
  if (!ch.busy) start_next(ch, peer_of(from));
}

void Link::start_next(Channel& ch, const End& to) {
  auto next = ch.queue.pop();
  if (!next) return;
  ch.busy = true;
  const double bits = static_cast<double>(next->size_bytes) * 8.0;
  const sim::Time tx = sim::from_seconds(bits / params_.bandwidth_bps);
  const std::uint64_t epoch = ch.epoch;
  Packet packet = std::move(*next);
  sim_.after(tx, [this, &ch, to, packet = std::move(packet), epoch]() mutable {
    // Serialization finished: free the line, launch propagation.
    if (epoch == ch.epoch) {
      const sim::Time prop = params_.propagation_delay;
      sim_.after(prop, [this, &ch, to, packet = std::move(packet),
                        epoch]() mutable {
        deliver(ch, to, std::move(packet), epoch);
      });
      ch.busy = false;
      start_next(ch, to);
    } else {
      // The direction was cut and the channel reset; the packet is lost
      // mid-serialization.
      ++dropped_down_;
      ++ch.dropped_wire;
      if (drop_hook_) drop_hook_(packet, DropKind::kDown);
    }
  });
}

void Link::set_loss_rate(Direction direction, double rate,
                         sim::Random* rng) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("Link::set_loss_rate: rate out of [0,1]");
  }
  if (rate > 0.0 && rng == nullptr) {
    throw std::invalid_argument("Link::set_loss_rate: rng required");
  }
  Channel& ch = channel(direction);
  ch.loss_rate = rate;
  ch.loss_rng = rng;
}

void Link::deliver(Channel& ch, const End& to, Packet packet,
                   std::uint64_t epoch) {
  if (epoch != ch.epoch || !ch.up) {
    ++dropped_down_;  // cut while propagating
    ++ch.dropped_wire;
    if (drop_hook_) drop_hook_(packet, DropKind::kDown);
    return;
  }
  if (ch.loss_rate > 0.0 && ch.loss_rng->chance(ch.loss_rate)) {
    ++dropped_gray_;  // silent gray-failure loss: nobody detects this
    ++ch.dropped_wire;
    if (drop_hook_) drop_hook_(packet, DropKind::kGray);
    return;
  }
  ++delivered_;
  ch.delivered_bytes += packet.size_bytes;
  ++packet.hops;
  to.node->receive(to.port, std::move(packet));
}

std::uint64_t Link::dropped_queue() const {
  return a_to_b_.queue.dropped() + b_to_a_.queue.dropped();
}

std::uint64_t Link::queue_enqueued() const {
  return a_to_b_.queue.enqueued() + b_to_a_.queue.enqueued();
}

std::uint64_t Link::queue_marked() const {
  return a_to_b_.queue.marked() + b_to_a_.queue.marked();
}

std::size_t Link::queue_depth() const {
  return a_to_b_.queue.size() + b_to_a_.queue.size();
}

}  // namespace f2t::net
