#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ids.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace f2t::net {

class Node;

/// Link construction parameters. Defaults match the paper's emulation:
/// 1 Gbps, 5 µs propagation delay (≈250 µs RTT across six hops including
/// transmission and processing), 100-packet drop-tail ports.
struct LinkParams {
  double bandwidth_bps = 1e9;
  sim::Time propagation_delay = sim::micros(5);
  std::size_t queue_capacity = 100;
  std::size_t ecn_threshold = 0;  ///< DCTCP marking threshold; 0 = off
};

/// Point-to-point duplex link between two node ports.
///
/// Each direction has its own drop-tail queue, serializer and up/down
/// state. The paper evaluates bidirectional failures (set_up affects both
/// directions) and leaves mixed unidirectional failures to future work —
/// which set_direction_up supports: a single dead direction black-holes
/// only that direction's packets, while the liveness observers (and hence
/// BFD-style detection) treat the link as down the way a real BFD session
/// would.
///
/// Going down black-holes queued and in-flight packets — exactly the
/// behaviour that makes the 60 ms detection delay costly — and notifies
/// observers *immediately* at the physical layer; the endpoints only act
/// once their detection delay elapses (see routing/detection).
class Link {
 public:
  struct End {
    Node* node = nullptr;
    PortId port = kInvalidPort;
  };

  /// A transmission direction, named by its origin end.
  enum class Direction { kAToB, kBToA };

  Link(sim::Simulator& simulator, LinkId id, End a, End b,
       const LinkParams& params);

  LinkId id() const { return id_; }
  const End& end_a() const { return a_; }
  const End& end_b() const { return b_; }

  /// The far end as seen from `from`. Precondition: `from` is an endpoint.
  const End& peer_of(const Node& from) const;

  /// The direction whose origin is `from`.
  Direction direction_from(const Node& from) const;

  /// True iff both directions are up (a BFD session's view).
  bool is_up() const { return a_to_b_.up && b_to_a_.up; }
  bool direction_up(Direction d) const {
    return d == Direction::kAToB ? a_to_b_.up : b_to_a_.up;
  }

  /// Brings both directions up or down. Idempotent per direction.
  void set_up(bool up);

  /// Unidirectional state change (future-work extension of the paper).
  void set_direction_up(Direction direction, bool up);

  /// Gray failure: the direction stays *up* (no detection fires) but
  /// drops each packet independently with probability `rate`. Models the
  /// silent packet-loss failures production studies report, which BFD
  /// does not catch — and which F²Tree's detection-triggered reroute
  /// therefore cannot help with.
  void set_loss_rate(Direction direction, double rate, sim::Random* rng);

  std::uint64_t dropped_gray() const { return dropped_gray_; }

  /// Called by Node::send. Drops silently when the direction is down.
  void transmit(const Node& from, Packet packet);

  /// Observer signature: (link, session-now-up?). Fired on transitions of
  /// the aggregate is_up() state.
  using Observer = std::function<void(Link&, bool)>;
  void add_observer(Observer observer) {
    observers_.push_back(std::move(observer));
  }

  /// Per-direction observer: (link, direction, direction-now-up?), fired
  /// on every actual channel transition — including the unidirectional
  /// ones that do not move the aggregate is_up() state the `Observer`
  /// callback watches. The fluid transport model reconstructs per-channel
  /// availability windows from exactly this stream.
  using ChannelObserver = std::function<void(Link&, Direction, bool)>;
  void add_channel_observer(ChannelObserver observer) {
    if (observer) channel_observers_.push_back(std::move(observer));
  }

  /// Why this link dropped a packet: the direction was down (cut wire,
  /// black-holed queue, lost mid-flight), the tail queue was full, or a
  /// configured gray failure ate it.
  enum class DropKind { kDown, kQueueFull, kGray };

  /// Per-packet drop observer, called at the instant of loss. Unset by
  /// default: the guard is a single branch on paths that already drop, so
  /// it costs nothing on the delivery fast path.
  using DropHook = std::function<void(const Packet&, DropKind)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  const LinkParams& params() const { return params_; }

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped_down() const { return dropped_down_; }
  std::uint64_t dropped_queue() const;

  /// Aggregate queue accounting across both directions (for the metrics
  /// registry's occupancy/ECN probes).
  std::uint64_t queue_enqueued() const;
  std::uint64_t queue_marked() const;
  std::size_t queue_depth() const;

  /// Per-direction telemetry counters for the periodic sampler
  /// (obs/sampler.hpp): bytes successfully delivered (utilization =
  /// delivered-bit rate over bandwidth), wire drops (down + gray), tail
  /// drops, and instantaneous queue depth. All are maintained on paths
  /// the link already counts, so they add no fast-path work.
  std::uint64_t delivered_bytes(Direction d) const {
    return channel(d).delivered_bytes;
  }
  std::uint64_t dropped_wire(Direction d) const {
    return channel(d).dropped_wire;
  }
  std::uint64_t queue_dropped(Direction d) const {
    return channel(d).queue.dropped();
  }
  std::size_t queue_depth(Direction d) const {
    return channel(d).queue.size();
  }

 private:
  struct Channel {
    DropTailQueue queue;
    bool busy = false;
    bool up = true;
    std::uint64_t epoch = 0;  ///< bumped on every state change
    double loss_rate = 0.0;   ///< gray-failure drop probability
    sim::Random* loss_rng = nullptr;
    std::uint64_t delivered_bytes = 0;  ///< payload bytes handed to the peer
    std::uint64_t dropped_wire = 0;     ///< down + gray drops, this direction

    explicit Channel(std::size_t capacity) : queue(capacity) {}
  };

  Channel& channel_from(const Node& from);
  Channel& channel(Direction d) {
    return d == Direction::kAToB ? a_to_b_ : b_to_a_;
  }
  const Channel& channel(Direction d) const {
    return d == Direction::kAToB ? a_to_b_ : b_to_a_;
  }
  void set_channel_up(Channel& ch, bool up);
  void start_next(Channel& channel, const End& to);
  void deliver(Channel& channel, const End& to, Packet packet,
               std::uint64_t epoch);

  sim::Simulator& sim_;
  LinkId id_;
  End a_;
  End b_;
  LinkParams params_;
  Channel a_to_b_;
  Channel b_to_a_;
  std::vector<Observer> observers_;
  std::vector<ChannelObserver> channel_observers_;
  DropHook drop_hook_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t dropped_gray_ = 0;
};

}  // namespace f2t::net
