#include "net/ipv4.hpp"

#include <charconv>
#include <stdexcept>

namespace f2t::net {

namespace {

std::uint32_t parse_octet(std::string_view text, std::size_t& pos) {
  std::uint32_t value = 0;
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) {
    throw std::invalid_argument("Ipv4Addr: bad octet in '" +
                                std::string(text) + "'");
  }
  pos = static_cast<std::size_t>(ptr - text.data());
  return value;
}

}  // namespace

Ipv4Addr Ipv4Addr::parse(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') {
        throw std::invalid_argument("Ipv4Addr: expected '.' in '" +
                                    std::string(text) + "'");
      }
      ++pos;
    }
    value = (value << 8) | parse_octet(text, pos);
  }
  if (pos != text.size()) {
    throw std::invalid_argument("Ipv4Addr: trailing characters in '" +
                                std::string(text) + "'");
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::str() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

Prefix::Prefix(Ipv4Addr addr, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("Prefix: length out of range");
  }
  const std::uint32_t m =
      length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
  address_ = Ipv4Addr(addr.value() & m);
}

Prefix Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("Prefix: missing '/' in '" +
                                std::string(text) + "'");
  }
  const Ipv4Addr addr = Ipv4Addr::parse(text.substr(0, slash));
  int length = 0;
  const std::string_view len_text = text.substr(slash + 1);
  auto [ptr, ec] = std::from_chars(len_text.data(),
                                   len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) {
    throw std::invalid_argument("Prefix: bad length in '" + std::string(text) +
                                "'");
  }
  return Prefix(addr, length);
}

std::uint32_t Prefix::mask() const {
  return length_ == 0 ? 0u : (~std::uint32_t{0} << (32 - length_));
}

bool Prefix::contains(Ipv4Addr addr) const {
  return (addr.value() & mask()) == address_.value();
}

bool Prefix::contains(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.address_);
}

std::string Prefix::str() const {
  return address_.str() + "/" + std::to_string(length_);
}

}  // namespace f2t::net
