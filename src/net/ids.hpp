#pragma once

#include <cstdint>

namespace f2t::net {

/// Index of a node within its Network. Stable for the network's lifetime.
using NodeId = std::uint32_t;

/// Index of a port within its node. Ports are created when links attach.
using PortId = std::uint16_t;

/// Index of a link within its Network.
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr PortId kInvalidPort = ~PortId{0};
inline constexpr LinkId kInvalidLink = ~LinkId{0};

}  // namespace f2t::net
