#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/ipv4.hpp"
#include "sim/time.hpp"

namespace f2t::net {

enum class Protocol : std::uint8_t { kUdp, kTcp, kRouting };

/// TCP flag bits (subset the model uses).
struct TcpFlags {
  static constexpr std::uint8_t kSyn = 0x1;
  static constexpr std::uint8_t kAck = 0x2;
  static constexpr std::uint8_t kFin = 0x4;
  static constexpr std::uint8_t kEce = 0x8;  ///< ECN echo (DCTCP mode)
};

/// TCP header fields carried inline in the packet. Sequence numbers are
/// 64-bit byte offsets — the model never wraps, unlike real TCP, which
/// keeps long-simulation bookkeeping simple.
struct TcpSegment {
  std::uint64_t seq = 0;            ///< first payload byte's sequence number
  std::uint64_t ack = 0;            ///< cumulative ACK (valid if kAck set)
  std::uint32_t payload_bytes = 0;  ///< bytes of application payload
  std::uint8_t flags = 0;
};

/// Base for control-plane payloads (e.g. routing LSAs). The net layer does
/// not know the concrete types; the routing layer downcasts on delivery.
struct ControlPayload {
  virtual ~ControlPayload() = default;
};

/// A simulated packet. Copied by value; the only indirection is the
/// shared control payload, so data packets are cheap to move around.
struct Packet {
  std::uint64_t uid = 0;  ///< globally unique id (assigned by the sender)
  Ipv4Addr src;
  Ipv4Addr dst;
  Protocol proto = Protocol::kUdp;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t size_bytes = 0;  ///< wire size, headers included
  std::uint8_t ttl = 64;
  std::uint8_t hops = 0;            ///< links traversed so far
  bool ecn_ce = false;              ///< congestion-experienced mark
  sim::Time sent_at = 0;            ///< stamped by the originating app
  std::uint32_t udp_seq = 0;        ///< UDP app sequence number
  TcpSegment tcp;                   ///< valid when proto == kTcp
  std::shared_ptr<const ControlPayload> control;  ///< valid when kRouting

  std::string describe() const;
};

/// Standard header overhead used when sizing segments (Ethernet + IP + TCP).
inline constexpr std::uint32_t kTcpHeaderBytes = 54;
inline constexpr std::uint32_t kUdpHeaderBytes = 42;
inline constexpr std::uint32_t kMss = 1448;  ///< as in the paper's flows

}  // namespace f2t::net
