#include "net/network.hpp"

#include <stdexcept>

namespace f2t::net {

L3Switch& Network::add_switch(const std::string& name, Ipv4Addr router_id) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Network: duplicate node name " + name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto sw = std::make_unique<L3Switch>(sim_, id, name, router_id);
  L3Switch& ref = *sw;
  nodes_.push_back(std::move(sw));
  by_name_.emplace(name, id);
  return ref;
}

Host& Network::add_host(const std::string& name, Ipv4Addr addr,
                        L3Switch* tor) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Network: duplicate node name " + name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto host = std::make_unique<Host>(sim_, id, name, addr);
  Host& ref = *host;
  nodes_.push_back(std::move(host));
  by_name_.emplace(name, id);
  if (tor != nullptr) {
    connect(*tor, ref, default_params_);
    const PortId tor_port = static_cast<PortId>(tor->port_count() - 1);
    tor->fib().install(routing::Route{
        net::Prefix::host(addr),
        {routing::NextHop{tor_port, addr}},
        routing::RouteSource::kConnected});
  }
  return ref;
}

Ipv4Addr Network::l3_addr_of(const Node& node) const {
  if (const auto* sw = dynamic_cast<const L3Switch*>(&node)) {
    return sw->router_id();
  }
  if (const auto* host = dynamic_cast<const Host*>(&node)) {
    return host->addr();
  }
  return Ipv4Addr{};
}

Link& Network::connect(Node& a, Node& b, const LinkParams& params) {
  if (&a == &b) throw std::invalid_argument("Network: self-link");
  const LinkId id = static_cast<LinkId>(links_.size());
  const PortId pa = a.add_port();
  const PortId pb = b.add_port();
  links_.push_back(std::make_unique<Link>(sim_, id, Link::End{&a, pa},
                                          Link::End{&b, pb}, params));
  Link& ref = *links_.back();
  a.set_port_link(pa, &ref);
  b.set_port_link(pb, &ref);
  a.set_port_peer(pa, b.id(), l3_addr_of(b),
                  dynamic_cast<L3Switch*>(&b) != nullptr);
  b.set_port_peer(pb, a.id(), l3_addr_of(a),
                  dynamic_cast<L3Switch*>(&a) != nullptr);
  for (const LinkHook& hook : link_hooks_) hook(ref);
  return ref;
}

Link* Network::find_link(const Node& a, const Node& b) {
  for (const auto& link : links_) {
    const bool fwd = link->end_a().node == &a && link->end_b().node == &b;
    const bool rev = link->end_a().node == &b && link->end_b().node == &a;
    if (fwd || rev) return link.get();
  }
  return nullptr;
}

std::vector<Link*> Network::find_links(const Node& a, const Node& b) {
  std::vector<Link*> out;
  for (const auto& link : links_) {
    const bool fwd = link->end_a().node == &a && link->end_b().node == &b;
    const bool rev = link->end_a().node == &b && link->end_b().node == &a;
    if (fwd || rev) out.push_back(link.get());
  }
  return out;
}

Node* Network::find_node(const std::string& name) {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : nodes_[it->second].get();
}

L3Switch* Network::find_switch(const std::string& name) {
  return dynamic_cast<L3Switch*>(find_node(name));
}

Host* Network::find_host(const std::string& name) {
  return dynamic_cast<Host*>(find_node(name));
}

std::vector<L3Switch*> Network::switches() {
  std::vector<L3Switch*> out;
  for (const auto& node : nodes_) {
    if (auto* sw = dynamic_cast<L3Switch*>(node.get())) out.push_back(sw);
  }
  return out;
}

std::vector<Host*> Network::hosts() {
  std::vector<Host*> out;
  for (const auto& node : nodes_) {
    if (auto* host = dynamic_cast<Host*>(node.get())) out.push_back(host);
  }
  return out;
}

std::vector<Link*> Network::links() {
  std::vector<Link*> out;
  out.reserve(links_.size());
  for (const auto& link : links_) out.push_back(link.get());
  return out;
}

}  // namespace f2t::net
