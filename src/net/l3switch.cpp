#include "net/l3switch.hpp"

#include "routing/ecmp.hpp"
#include "sim/logging.hpp"

namespace f2t::net {

L3Switch::L3Switch(sim::Simulator& simulator, NodeId id, std::string name,
                   Ipv4Addr router_id)
    : Node(simulator, id, std::move(name)), router_id_(router_id) {}

void L3Switch::ensure_port_state(PortId p) const {
  if (detected_up_.size() <= p) detected_up_.resize(p + 1u, true);
}

bool L3Switch::port_detected_up(PortId p) const {
  ensure_port_state(p);
  return detected_up_[p];
}

void L3Switch::set_port_detected(PortId p, bool up) {
  ensure_port_state(p);
  if (detected_up_[p] == up) return;
  detected_up_[p] = up;
  // Every transition invalidates the resolved-route cache: the paper's
  // backup fall-through must engage on the very next lookup with zero FIB
  // writes, so detection alone has to change the cache stamp.
  ++port_epoch_;
  F2T_LOG(sim_.logger(), sim::LogLevel::kDebug, sim_.now(),
          name() << ": port " << p << (up ? " detected up" : " detected down"));
  for (const auto& handler : port_state_handlers_) handler(p, up);
}

const routing::Fib::HopVec& L3Switch::resolve_next_hops(Ipv4Addr dst) const {
  return route_cache_.resolve(fib_, dst,
                              routing::Fib::PortStateView{&detected_up_},
                              port_epoch_);
}

void L3Switch::receive(PortId p, Packet packet) {
  if (packet.proto == Protocol::kRouting) {
    ++counters_.control_in;
    for (const ControlHandler& handler : control_handlers_) {
      handler(p, packet);
    }
    return;
  }
  if (packet.dst == router_id_) {
    ++counters_.local_delivered;
    return;
  }
  forward(std::move(packet), p);
}

bool L3Switch::forward(Packet packet, PortId ingress) {
  if (packet.ttl == 0 || --packet.ttl == 0) {
    ++counters_.dropped_ttl;
    if (drop_handler_) drop_handler_(packet, DropReason::kTtlExpired);
    F2T_LOG(sim_.logger(), sim::LogLevel::kDebug, sim_.now(),
            name() << ": TTL expired for " << packet.describe());
    return false;
  }
  const auto& next_hops = resolve_next_hops(packet.dst);
  if (next_hops.empty()) {
    ++counters_.dropped_no_route;
    if (drop_handler_) drop_handler_(packet, DropReason::kNoRoute);
    F2T_LOG(sim_.logger(), sim::LogLevel::kDebug, sim_.now(),
            name() << ": no route for " << packet.dst.str());
    return false;
  }
  const PortId egress =
      routing::ecmp_pick(packet, static_cast<std::uint64_t>(id()),
                         next_hops.data(), next_hops.size())
          .port;
  ++counters_.forwarded;
  for (const ForwardTap& tap : forward_taps_) tap(packet, ingress, egress);
  send(egress, std::move(packet));
  return true;
}

}  // namespace f2t::net
