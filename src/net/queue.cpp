#include "net/queue.hpp"

#include <utility>

namespace f2t::net {

bool DropTailQueue::push(Packet packet) {
  if (packets_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  if (ecn_threshold_ > 0 && packets_.size() >= ecn_threshold_) {
    packet.ecn_ce = true;
    ++marked_;
  }
  packets_.push_back(std::move(packet));
  ++enqueued_;
  return true;
}

std::optional<Packet> DropTailQueue::pop() {
  if (packets_.empty()) return std::nullopt;
  Packet p = std::move(packets_.front());
  packets_.pop_front();
  return p;
}

}  // namespace f2t::net
