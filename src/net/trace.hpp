#pragma once

#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace f2t::net {

/// Data-plane packet tracer: hooks the forwarding tap of every switch in
/// a network and records each forwarding decision. Unlike
/// failure::trace_route (which *predicts* a path from FIB state), this
/// observes what the data plane actually did — including transient
/// bounces, reroutes mid-flight and TTL deaths — which is how the tests
/// verify fast-reroute paths packet by packet.
///
/// Tracing costs a hash-map append per forwarded packet; construct it
/// only in experiments that need it. The tracer appends its tap, so it
/// coexists with other tap users (e.g. the observability journal).
class PacketTracer {
 public:
  struct Hop {
    sim::Time at = 0;
    NodeId node = kInvalidNode;
    PortId ingress = kInvalidPort;
    PortId egress = kInvalidPort;
  };

  /// Attaches to every switch currently in the network.
  explicit PacketTracer(Network& network);

  /// Hop sequence of one packet (by uid), in forwarding order.
  const std::vector<Hop>& hops_of(std::uint64_t uid) const;

  /// Switch names visited by a packet, in order.
  std::vector<std::string> path_names(std::uint64_t uid) const;

  /// Total forwarding events recorded.
  std::size_t event_count() const { return events_; }

  /// Number of distinct packets seen.
  std::size_t packet_count() const { return by_uid_.size(); }

  /// Drops accumulated state (e.g. between experiment phases).
  void clear();

 private:
  Network& network_;
  std::unordered_map<std::uint64_t, std::vector<Hop>> by_uid_;
  std::vector<Hop> empty_;
  std::size_t events_ = 0;
};

}  // namespace f2t::net
