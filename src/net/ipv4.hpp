#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace f2t::net {

/// IPv4 address as a host-order 32-bit value.
///
/// The simulator routes on real dotted-quad addresses because the paper's
/// mechanism *is* an addressing trick: backup static routes with shorter
/// prefixes (/16 and /15) deliberately losing to the protocol-computed /24s
/// in longest-prefix match until the /24s' next hops die.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses "a.b.c.d"; throws std::invalid_argument on malformed input.
  static Ipv4Addr parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_unspecified() const { return value_ == 0; }

  std::string str() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix. Always stored normalized (host bits zeroed), so two
/// Prefix values compare equal iff they denote the same route key.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4Addr addr, int length);

  /// Parses "a.b.c.d/len"; throws std::invalid_argument on malformed input.
  static Prefix parse(std::string_view text);

  /// The /32 host prefix for an address.
  static Prefix host(Ipv4Addr addr) { return Prefix(addr, 32); }

  Ipv4Addr address() const { return address_; }
  int length() const { return length_; }
  std::uint32_t mask() const;

  bool contains(Ipv4Addr addr) const;
  bool contains(const Prefix& other) const;

  std::string str() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Addr address_;
  int length_ = 0;
};

}  // namespace f2t::net

template <>
struct std::hash<f2t::net::Ipv4Addr> {
  std::size_t operator()(const f2t::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<f2t::net::Prefix> {
  std::size_t operator()(const f2t::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.address().value()} << 8) |
        static_cast<std::uint64_t>(p.length()));
  }
};
