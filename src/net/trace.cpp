#include "net/trace.hpp"

namespace f2t::net {

PacketTracer::PacketTracer(Network& network) : network_(network) {
  for (L3Switch* sw : network_.switches()) {
    const NodeId id = sw->id();
    sw->add_forward_tap(
        [this, id](const Packet& packet, PortId ingress, PortId egress) {
          by_uid_[packet.uid].push_back(
              Hop{network_.simulator().now(), id, ingress, egress});
          ++events_;
        });
  }
}

const std::vector<PacketTracer::Hop>& PacketTracer::hops_of(
    std::uint64_t uid) const {
  const auto it = by_uid_.find(uid);
  return it == by_uid_.end() ? empty_ : it->second;
}

std::vector<std::string> PacketTracer::path_names(std::uint64_t uid) const {
  std::vector<std::string> names;
  for (const Hop& hop : hops_of(uid)) {
    names.push_back(network_.node(hop.node).name());
  }
  return names;
}

void PacketTracer::clear() {
  by_uid_.clear();
  events_ = 0;
}

}  // namespace f2t::net
