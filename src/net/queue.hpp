#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "net/packet.hpp"

namespace f2t::net {

/// Drop-tail FIFO bounded by packet count, as in commodity switch ports.
///
/// The paper's experiments are failure-recovery bound, not queueing bound,
/// but the transport model still needs loss under overload to behave like
/// a real network (e.g. partition-aggregate incast).
class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets = 100)
      : capacity_(capacity_packets) {}

  /// ECN/DCTCP: packets enqueued while size() >= threshold get their CE
  /// bit set. Zero disables marking (default).
  void set_ecn_threshold(std::size_t packets) { ecn_threshold_ = packets; }
  std::size_t ecn_threshold() const { return ecn_threshold_; }

  /// Returns false (and counts a drop) if the queue is full.
  bool push(Packet packet);

  std::optional<Packet> pop();

  void clear() { packets_.clear(); }

  bool empty() const { return packets_.empty(); }
  std::size_t size() const { return packets_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t marked() const { return marked_; }

  /// Queued packets in FIFO order; used by the link layer to account for
  /// packets black-holed when a direction is cut.
  const std::deque<Packet>& contents() const { return packets_; }

 private:
  std::deque<Packet> packets_;
  std::size_t capacity_;
  std::size_t ecn_threshold_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t marked_ = 0;
};

}  // namespace f2t::net
