#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "net/l3switch.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace f2t::net {

/// Owns every node and link of one simulated network and wires them up.
///
/// The Network is deliberately dumb: topology generators (src/topo) decide
/// *what* to connect; failure injectors (src/failure) decide what to break;
/// the control plane (src/routing) decides what to install. Connected /32
/// host routes are the one piece of routing the builder installs itself,
/// mirroring a ToR's directly-attached subnet.
class Network {
 public:
  explicit Network(sim::Simulator& simulator) : sim_(simulator) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator& simulator() { return sim_; }

  /// Creates an L3 switch. Names must be unique.
  L3Switch& add_switch(const std::string& name, Ipv4Addr router_id);

  /// Creates a host and, if `tor` is given, links it to the ToR and
  /// installs the connected /32 route on the ToR.
  Host& add_host(const std::string& name, Ipv4Addr addr,
                 L3Switch* tor = nullptr);

  /// Connects two nodes with a duplex link; fills in per-port peer
  /// metadata on both sides.
  Link& connect(Node& a, Node& b, const LinkParams& params = {});

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }

  Link& link(LinkId id) { return *links_.at(id); }
  std::size_t link_count() const { return links_.size(); }

  /// The link between two nodes, or nullptr (first match if parallel).
  Link* find_link(const Node& a, const Node& b);

  /// All links between two nodes (across rings can be parallel pairs).
  std::vector<Link*> find_links(const Node& a, const Node& b);

  Node* find_node(const std::string& name);
  L3Switch* find_switch(const std::string& name);
  Host* find_host(const std::string& name);

  std::vector<L3Switch*> switches();
  std::vector<Host*> hosts();
  std::vector<Link*> links();

  const LinkParams& default_link_params() const { return default_params_; }
  void set_default_link_params(const LinkParams& params) {
    default_params_ = params;
  }

  /// Connect with the network-wide default parameters.
  Link& connect_default(Node& a, Node& b) {
    return connect(a, b, default_params_);
  }

  /// Fired at the end of every connect(), after the link is fully wired.
  /// This is how layers that observe "every link" (failure detection,
  /// observability) see links added after their attach call — without it,
  /// a late connect() silently escapes detection.
  using LinkHook = std::function<void(Link&)>;
  void add_link_hook(LinkHook hook) {
    link_hooks_.push_back(std::move(hook));
  }

 private:
  Ipv4Addr l3_addr_of(const Node& node) const;

  sim::Simulator& sim_;
  LinkParams default_params_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<LinkHook> link_hooks_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace f2t::net
