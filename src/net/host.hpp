#pragma once

#include <functional>

#include "net/node.hpp"

namespace f2t::net {

/// End host: one address, one uplink to its ToR, and a packet handler
/// installed by the transport layer. Hosts do no routing — everything
/// non-local goes out of port 0, like a default-gateway Linux box.
class Host : public Node {
 public:
  using PacketHandler = std::function<void(Packet)>;

  Host(sim::Simulator& simulator, NodeId id, std::string name, Ipv4Addr addr)
      : Node(simulator, id, std::move(name)), addr_(addr) {}

  Ipv4Addr addr() const { return addr_; }

  void set_packet_handler(PacketHandler handler) {
    handler_ = std::move(handler);
  }

  /// Observer called on every successful delivery, before the transport
  /// handler runs. Unset by default; the guard is one branch per delivery.
  using DeliveryTap = std::function<void(const Packet&)>;
  void set_delivery_tap(DeliveryTap tap) { delivery_tap_ = std::move(tap); }

  void receive(PortId p, Packet packet) override;

  /// Sends an application packet via the uplink (port 0).
  void send_up(Packet packet);

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t misdelivered() const { return misdelivered_; }

 private:
  Ipv4Addr addr_;
  PacketHandler handler_;
  DeliveryTap delivery_tap_;
  std::uint64_t delivered_ = 0;
  std::uint64_t misdelivered_ = 0;
};

}  // namespace f2t::net
