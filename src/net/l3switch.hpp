#pragma once

#include <functional>
#include <vector>

#include "net/node.hpp"
#include "routing/fib.hpp"
#include "routing/route_cache.hpp"

namespace f2t::net {

/// Layer-3 switch: the data plane of the reproduction.
///
/// Matches the paper's production-DCN model (§II-B): all ports are bundled
/// into one L3 interface with a single address (the router id); forwarding
/// is longest-prefix match over the FIB with ECMP among usable next hops.
/// "Usable" is judged by the *locally detected* port state, which lags the
/// physical state by the failure-detection delay — that lag is the floor
/// on any recovery scheme, F²Tree included.
class L3Switch : public Node {
 public:
  struct Counters {
    std::uint64_t forwarded = 0;
    std::uint64_t local_delivered = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_ttl = 0;
    std::uint64_t control_in = 0;
  };

  /// Why this switch dropped a packet (the link layer has its own
  /// reasons; see Link::DropKind).
  enum class DropReason { kNoRoute, kTtlExpired };

  /// Called for control-plane (Protocol::kRouting) packets.
  using ControlHandler = std::function<void(PortId, const Packet&)>;
  /// Observer of detected port up/down transitions.
  using PortStateHandler = std::function<void(PortId, bool)>;
  /// Forwarding tap: (packet, ingress-or-kInvalidPort, egress).
  using ForwardTap = std::function<void(const Packet&, PortId, PortId)>;
  /// Observer of local forwarding drops (no route / TTL death).
  using DropHandler = std::function<void(const Packet&, DropReason)>;

  L3Switch(sim::Simulator& simulator, NodeId id, std::string name,
           Ipv4Addr router_id);

  Ipv4Addr router_id() const { return router_id_; }

  routing::Fib& fib() { return fib_; }
  const routing::Fib& fib() const { return fib_; }

  void receive(PortId p, Packet packet) override;

  /// Routes a packet that originates at this switch (control plane) or
  /// arrived from a link. Looks up the FIB, applies ECMP, transmits.
  /// `ingress` is only used for the tap. Returns false when dropped.
  bool forward(Packet packet, PortId ingress = kInvalidPort);

  /// Locally detected port state (true = believed up).
  bool port_detected_up(PortId p) const;
  void set_port_detected(PortId p, bool up);

  /// Resolved usable next hops for `dst` under the current FIB contents
  /// and detected port state, served from the per-switch route cache
  /// (invalidated by FIB generation + port epoch; see ResolvedRouteCache).
  /// The returned reference is valid until the next resolution.
  const routing::Fib::HopVec& resolve_next_hops(Ipv4Addr dst) const;

  /// Monotone count of detected port-state *transitions*; part of the
  /// route cache's invalidation stamp.
  std::uint64_t port_epoch() const { return port_epoch_; }

  const routing::ResolvedRouteCache& route_cache() const {
    return route_cache_;
  }

  /// Source of the most recent next-hop resolution (kStatic = the F²Tree
  /// backup took over). Valid until the next forward/resolve.
  routing::RouteSource last_resolved_source() const {
    return route_cache_.last_source();
  }

  /// Appends a control-plane handler; every handler sees every
  /// Protocol::kRouting packet and filters by payload type itself, so a
  /// routing protocol and a BFD session manager can share the wire.
  void add_control_handler(ControlHandler handler) {
    if (handler) control_handlers_.push_back(std::move(handler));
  }
  /// Compatibility shim for the historic single-handler API: *replaces*
  /// all handlers with `handler` (nullptr uninstalls them all). Prefer
  /// add_control_handler.
  void set_control_handler(ControlHandler handler) {
    control_handlers_.clear();
    add_control_handler(std::move(handler));
  }
  std::size_t control_handler_count() const {
    return control_handlers_.size();
  }
  void add_port_state_handler(PortStateHandler handler) {
    port_state_handlers_.push_back(std::move(handler));
  }

  /// Appends a forwarding tap; every tap sees every forwarded packet, so
  /// a PacketTracer and the observability journal can coexist.
  void add_forward_tap(ForwardTap tap) {
    forward_taps_.push_back(std::move(tap));
  }
  /// Compatibility shim for the historic single-tap API: *replaces* all
  /// taps with `tap`. Prefer add_forward_tap.
  void set_forward_tap(ForwardTap tap) {
    forward_taps_.clear();
    forward_taps_.push_back(std::move(tap));
  }
  std::size_t forward_tap_count() const { return forward_taps_.size(); }

  void set_drop_handler(DropHandler handler) {
    drop_handler_ = std::move(handler);
  }

  const Counters& counters() const { return counters_; }

 private:
  void ensure_port_state(PortId p) const;

  Ipv4Addr router_id_;
  routing::Fib fib_;
  mutable std::vector<bool> detected_up_;  // grown lazily as ports attach
  mutable routing::ResolvedRouteCache route_cache_;
  std::uint64_t port_epoch_ = 0;
  std::vector<ControlHandler> control_handlers_;
  std::vector<PortStateHandler> port_state_handlers_;
  std::vector<ForwardTap> forward_taps_;
  DropHandler drop_handler_;
  Counters counters_;
};

}  // namespace f2t::net
