#pragma once

#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "transport/tcp.hpp"

namespace f2t::transport {

/// Background traffic generator with log-normal flow sizes and
/// inter-arrival times, the distribution shapes the paper derives from
/// production-DCN measurements ([25], Benson et al. IMC'10). Flows run
/// between uniformly random host pairs over TCP.
struct BackgroundTrafficOptions {
  double size_median_bytes = 20'000;
  double size_sigma = 1.5;
  double interarrival_median_s = 0.28;  ///< ~1500 flows in 600 s
  double interarrival_sigma = 1.0;
  std::uint64_t max_flow_bytes = 10'000'000;  ///< tail clamp
  sim::Time start = 0;
  sim::Time stop = sim::seconds(600);
  TcpConfig tcp;
};

class BackgroundTraffic {
 public:
  struct FlowRecord {
    sim::Time started = 0;
    sim::Time finished = sim::kNever;
    std::uint64_t bytes = 0;

    bool is_complete() const { return finished != sim::kNever; }
  };

  BackgroundTraffic(std::vector<HostStack*> stacks, sim::Random rng,
                    const BackgroundTrafficOptions& options);

  void start();

  const std::vector<FlowRecord>& flows() const { return records_; }
  std::size_t completed_count() const;
  std::uint64_t total_bytes() const;

 private:
  void schedule_next();
  void launch_flow();

  std::vector<HostStack*> stacks_;
  sim::Random rng_;
  BackgroundTrafficOptions options_;
  std::vector<FlowRecord> records_;
  std::vector<std::unique_ptr<TcpConnection>> connections_;
  sim::Simulator* sim_ = nullptr;
};

}  // namespace f2t::transport
