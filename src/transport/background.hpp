#pragma once

#include <memory>
#include <vector>

#include "core/arena.hpp"
#include "sim/random.hpp"
#include "transport/tcp.hpp"

namespace f2t::transport {

/// Background traffic generator with log-normal flow sizes and
/// inter-arrival times, the distribution shapes the paper derives from
/// production-DCN measurements ([25], Benson et al. IMC'10). Flows run
/// between uniformly random host pairs over TCP.
struct BackgroundTrafficOptions {
  double size_median_bytes = 20'000;
  double size_sigma = 1.5;
  double interarrival_median_s = 0.28;  ///< ~1500 flows in 600 s
  double interarrival_sigma = 1.0;
  std::uint64_t max_flow_bytes = 10'000'000;  ///< tail clamp
  sim::Time start = 0;
  sim::Time stop = sim::seconds(600);
  TcpConfig tcp;
};

class BackgroundTraffic {
 public:
  struct FlowRecord {
    sim::Time started = 0;
    sim::Time finished = sim::kNever;
    std::uint64_t bytes = 0;

    bool is_complete() const { return finished != sim::kNever; }
  };

  BackgroundTraffic(std::vector<HostStack*> stacks, sim::Random rng,
                    const BackgroundTrafficOptions& options);

  void start();

  const std::vector<FlowRecord>& flows() const { return records_; }
  std::size_t completed_count() const { return completed_; }
  std::uint64_t total_bytes() const;
  /// Flows currently in flight — the live-memory bound: completed flows
  /// release their TCP machinery back to the arena immediately.
  std::size_t active_count() const { return active_.size(); }

 private:
  /// Arena-resident per-flow state. The all-time FlowRecord summary stays
  /// in the flat records_ vector (24-byte PODs — cheap at any count); what
  /// must NOT scale with all-time flow count is the TCP machinery, so a
  /// completed flow's connection is torn down and its slot recycled. The
  /// delivery callback captures the generation-checked arena handle, so a
  /// late delivery signal for a recycled slot is detected, not aliased.
  struct ActiveFlow {
    std::size_t record = 0;
    std::uint64_t bytes = 0;
    std::unique_ptr<TcpConnection> conn;
    core::ListLink link;
  };

  void schedule_next();
  void launch_flow();
  void finish_flow(core::Arena<ActiveFlow>::Handle handle);

  std::vector<HostStack*> stacks_;
  sim::Random rng_;
  BackgroundTrafficOptions options_;
  std::vector<FlowRecord> records_;
  core::Arena<ActiveFlow> arena_;
  core::IntrusiveList<ActiveFlow, &ActiveFlow::link> active_;
  std::size_t completed_ = 0;
  sim::Simulator* sim_ = nullptr;
};

}  // namespace f2t::transport
