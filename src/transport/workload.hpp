#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/arena.hpp"
#include "sim/random.hpp"
#include "stats/flow_metrics.hpp"
#include "transport/fluid.hpp"
#include "transport/tcp.hpp"

namespace f2t::transport {

/// Empirical flow-size distribution as a piecewise-linear CDF over bytes.
///
/// The built-in tables are shaped after the two canonical production
/// mixes every datacenter transport paper evaluates against: the
/// web-search workload (DCTCP / pFabric: body of tens-of-KB
/// query-responses, tail into tens of MB) and the data-mining workload
/// (VL2: half the flows are sub-KB control messages, the top decile
/// carries multi-MB shuffles). Custom mixes load from CSV ("bytes,cum"
/// rows, cumulative ascending to 1.0).
///
/// Sampling is inverse-transform: one uniform draw per flow, linear
/// interpolation inside a segment, with the mass below the first point
/// concentrated at the first point (the published tables start at a
/// nonzero quantile).
class FlowSizeCdf {
 public:
  struct Point {
    double bytes = 0;
    double cum = 0;
  };

  /// Web-search-like mix: median ~20 KB, p99 in the MB range.
  static FlowSizeCdf websearch();
  /// Data-mining-like mix: median 100 B, heavy multi-MB tail.
  static FlowSizeCdf datamining();
  /// Degenerate single-size distribution (tests, incast responses).
  static FlowSizeCdf fixed(double bytes);
  /// "websearch" | "datamining" (campaign spec names); throws otherwise.
  static FlowSizeCdf by_name(const std::string& name);
  /// CSV text: one "bytes,cum" pair per line, '#' comments ignored.
  static FlowSizeCdf from_csv(std::string_view text);

  explicit FlowSizeCdf(std::vector<Point> points);

  std::uint64_t sample(sim::Random& rng) const;
  double mean_bytes() const { return mean_bytes_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
  double mean_bytes_ = 0;
};

enum class WorkloadKind {
  kPoisson,  ///< open-loop arrivals between random host pairs
  kIncast,   ///< periodic fan-in rounds: many workers -> one aggregator
};

struct WorkloadOptions {
  WorkloadKind kind = WorkloadKind::kPoisson;
  FlowSizeCdf sizes = FlowSizeCdf::websearch();
  /// Poisson: offered load as a fraction of the aggregate host uplink
  /// capacity; the arrival rate is load * hosts * uplink_bps /
  /// (mean_size_bytes * 8).
  double load = 0.1;
  /// Incast: workers per aggregation round (capped at hosts - 1).
  std::size_t fanin = 32;
  /// Incast: per-worker response size (overrides `sizes`).
  std::uint64_t incast_bytes = 20'000;
  /// Incast: fixed round cadence.
  sim::Time incast_interval = sim::millis(10);
  sim::Time start = 0;
  sim::Time stop = sim::seconds(1);
  /// Per-flow completion deadline for the SLO miss-fraction split
  /// (relative to flow start; 0 = best-effort).
  sim::Time deadline = 0;
  TcpConfig tcp;
};

/// Packet-fidelity trace-shaped workload: TCP flows between random host
/// pairs (Poisson) or worker->aggregator fan-in rounds (incast).
///
/// Determinism contract: all draws go through Random::split stream seeds
/// of the constructor's rng, so two instances built with the same seed
/// make identical draws regardless of what else consumes randomness in
/// the run — the property campaign shards rely on.
///
/// Bookkeeping is arena-backed (core::Arena): per-flow TCP machinery is
/// torn down and its slot recycled the moment the flow completes, so live
/// memory tracks *concurrent* flows while the all-time record stays a
/// flat vector of PODs.
class TcpWorkload {
 public:
  TcpWorkload(std::vector<HostStack*> stacks, sim::Random rng,
              WorkloadOptions options);

  void start();

  std::size_t launched() const { return samples_.size(); }
  std::size_t completed() const { return completed_; }
  std::size_t active_count() const { return active_.size(); }
  std::size_t peak_active() const { return peak_active_; }

  /// All-time per-flow samples; unfinished flows have finish == kNever.
  const std::vector<stats::FlowSample>& samples() const { return samples_; }

 private:
  struct ActiveFlow {
    std::size_t record = 0;
    std::uint64_t bytes = 0;
    std::unique_ptr<TcpConnection> conn;
    core::ListLink link;
  };

  void schedule_poisson();
  void run_incast_round();
  void launch_flow(std::size_t src, std::size_t dst, std::uint64_t bytes);
  void finish_flow(core::Arena<ActiveFlow>::Handle handle);

  std::vector<HostStack*> stacks_;
  WorkloadOptions options_;
  sim::Random arrival_rng_;
  sim::Random size_rng_;
  sim::Random pair_rng_;
  double arrival_mean_s_ = 0;  ///< Poisson interarrival mean
  double uplink_bps_ = 0;
  std::vector<stats::FlowSample> samples_;
  core::Arena<ActiveFlow> arena_;
  core::IntrusiveList<ActiveFlow, &ActiveFlow::link> active_;
  std::vector<std::size_t> incast_scratch_;  ///< worker draw, capacity reused
  std::size_t completed_ = 0;
  std::size_t peak_active_ = 0;
  sim::Simulator* sim_ = nullptr;
};

/// Flow-fidelity workload: the 10^5..10^6-flow scale path.
///
/// Drives a FluidFlowTable directly — no packets, no per-byte events.
/// Poisson arrivals pull a path from `path_fn` (a routing adapter or a
/// synthetic topology in benches), each live flow integrates its max-min
/// rate over time, and completions are scheduled events re-clocked only
/// when the flow's rate actually changes: after every table mutation the
/// generator asks the table which flows the incremental solve touched
/// (FluidFlowTable::last_solved) and re-times exactly those. Per-event
/// cost is therefore O(affected component), never O(live flows).
class FluidWorkload {
 public:
  /// Fills `path` with directed channel keys for a new flow.
  using PathFn =
      std::function<void(sim::Random&, std::vector<std::uint32_t>&)>;

  struct Options {
    double arrival_rate_per_s = 10'000;
    FlowSizeCdf sizes = FlowSizeCdf::websearch();
    sim::Time start = 0;
    sim::Time stop = sim::seconds(1);
    sim::Time deadline = 0;  ///< relative to flow start; 0 = none
  };

  FluidWorkload(sim::Simulator& sim, FluidFlowTable& table, PathFn path_fn,
                sim::Random rng, Options options);

  void start();
  /// Closes the books at the horizon: integrates remaining bits one last
  /// time so unfinished flows age correctly. Call after the run.
  void finalize();

  std::size_t launched() const { return samples_.size(); }
  std::size_t completed() const { return completed_; }
  std::size_t active_count() const { return live_.live_count(); }
  std::size_t peak_active() const { return peak_active_; }
  const std::vector<stats::FlowSample>& samples() const { return samples_; }

 private:
  struct LiveFlow {
    FluidFlowTable::FlowId id = 0;
    std::size_t record = 0;
    double remaining_bits = 0;
    double rate_bps = 0;
    sim::Time clocked_at = 0;
    sim::EventId completion = 0;
    bool has_completion = false;
  };

  void schedule_arrival();
  void launch_flow();
  void complete_flow(std::uint32_t slot);
  /// Re-clocks every flow the last solve touched; call after mutations.
  void reclock_changed();
  void reclock(LiveFlow& flow, sim::Time now);

  sim::Simulator& sim_;
  FluidFlowTable& table_;
  PathFn path_fn_;
  Options options_;
  sim::Random arrival_rng_;
  sim::Random size_rng_;
  sim::Random path_rng_;
  std::vector<stats::FlowSample> samples_;
  core::Arena<LiveFlow> live_;
  /// Table flow slot -> our arena handle (flat side table, see
  /// FluidFlowTable::slot_of).
  std::vector<std::uint32_t> by_table_slot_;
  std::vector<std::uint32_t> path_scratch_;
  std::size_t completed_ = 0;
  std::size_t peak_active_ = 0;
  bool finalized_ = false;
};

}  // namespace f2t::transport
