#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/host.hpp"

namespace f2t::transport {

class TcpEndpoint;

/// Per-host transport demultiplexer.
///
/// Owns the host's packet handler and routes arrivals to bound UDP sockets
/// or registered TCP endpoints by (remote address, remote port, local
/// port). One HostStack is created per host by the experiment harness.
class HostStack {
 public:
  using UdpHandler = std::function<void(const net::Packet&)>;

  explicit HostStack(net::Host& host);

  net::Host& host() { return host_; }
  sim::Simulator& simulator() { return host_.simulator(); }

  void bind_udp(std::uint16_t port, UdpHandler handler);
  void unbind_udp(std::uint16_t port);

  void register_tcp(net::Ipv4Addr remote, std::uint16_t remote_port,
                    std::uint16_t local_port, TcpEndpoint* endpoint);
  void unregister_tcp(net::Ipv4Addr remote, std::uint16_t remote_port,
                      std::uint16_t local_port);

  /// Allocates an ephemeral port (49152...). Never reused within a run.
  std::uint16_t alloc_port();

  /// Stamps common fields and transmits via the host uplink.
  void send(net::Packet packet);

  std::uint64_t unmatched_packets() const { return unmatched_; }

 private:
  static std::uint64_t tcp_key(net::Ipv4Addr remote, std::uint16_t remote_port,
                               std::uint16_t local_port);
  void on_packet(net::Packet packet);

  net::Host& host_;
  std::unordered_map<std::uint16_t, UdpHandler> udp_;
  std::unordered_map<std::uint64_t, TcpEndpoint*> tcp_;
  std::uint16_t next_port_ = 49152;
  std::uint64_t next_uid_ = 1;
  std::uint64_t unmatched_ = 0;
};

}  // namespace f2t::transport
