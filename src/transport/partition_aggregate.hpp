#pragma once

#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "transport/tcp.hpp"

namespace f2t::transport {

/// Partition-aggregate workload (§IV-B): randomly chosen requesters each
/// send a small TCP request to `fanout` other hosts and wait for a 2 KB
/// response from every worker; the request completes when all responses
/// are in. The paper's metric is the fraction of requests whose completion
/// time exceeds a 250 ms deadline.
struct PartitionAggregateOptions {
  int fanout = 8;
  std::uint32_t request_bytes = 100;
  std::uint32_t response_bytes = 2048;
  sim::Time deadline = sim::millis(250);
  sim::Time start = 0;
  sim::Time stop = sim::seconds(600);
  sim::Time mean_interarrival = sim::millis(200);  ///< ~3000 over 600 s
  TcpConfig tcp;
};

class PartitionAggregateApp {
 public:
  struct RequestRecord {
    sim::Time issued = 0;
    sim::Time completed = sim::kNever;  ///< kNever = still outstanding

    bool is_complete() const { return completed != sim::kNever; }
    sim::Time completion_time() const { return completed - issued; }
  };

  PartitionAggregateApp(std::vector<HostStack*> stacks, sim::Random rng,
                        const PartitionAggregateOptions& options);

  void start();

  const std::vector<RequestRecord>& requests() const { return records_; }

  /// Requests that missed the deadline: completed late, or still
  /// outstanding longer than the deadline by `horizon`.
  double deadline_miss_ratio(sim::Time horizon) const;

  /// Completion times of completed requests, sorted ascending.
  std::vector<sim::Time> completion_times() const;

  std::size_t issued_count() const { return records_.size(); }
  std::size_t completed_count() const;

 private:
  struct Exchange {
    std::unique_ptr<TcpConnection> connection;
    bool worker_responded = false;
    bool response_done = false;
  };
  struct Pending {
    std::size_t record_index = 0;
    int responses_remaining = 0;
    std::vector<Exchange> exchanges;
  };

  void schedule_next();
  void launch_request();

  std::vector<HostStack*> stacks_;
  sim::Random rng_;
  PartitionAggregateOptions options_;
  std::vector<RequestRecord> records_;
  std::vector<std::unique_ptr<Pending>> pending_;
  sim::Simulator* sim_ = nullptr;
};

}  // namespace f2t::transport
