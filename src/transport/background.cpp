#include "transport/background.hpp"

#include <stdexcept>

namespace f2t::transport {

BackgroundTraffic::BackgroundTraffic(std::vector<HostStack*> stacks,
                                     sim::Random rng,
                                     const BackgroundTrafficOptions& options)
    : stacks_(std::move(stacks)), rng_(std::move(rng)), options_(options) {
  if (stacks_.size() < 2) {
    throw std::invalid_argument("background traffic: need >= 2 hosts");
  }
  sim_ = &stacks_.front()->simulator();
}

void BackgroundTraffic::start() {
  sim_->at(options_.start, [this] { schedule_next(); });
}

void BackgroundTraffic::schedule_next() {
  if (sim_->now() >= options_.stop) return;
  launch_flow();
  sim_->after(sim::lognormal_interval(rng_, options_.interarrival_median_s,
                                      options_.interarrival_sigma,
                                      sim::micros(10)),
              [this] { schedule_next(); });
}

void BackgroundTraffic::launch_flow() {
  const std::size_t src = rng_.index(stacks_.size());
  std::size_t dst = rng_.index(stacks_.size());
  while (dst == src) dst = rng_.index(stacks_.size());

  const std::uint64_t bytes =
      sim::lognormal_bytes(rng_, options_.size_median_bytes,
                           options_.size_sigma, 1, options_.max_flow_bytes);

  const std::size_t index = records_.size();
  records_.push_back(FlowRecord{sim_->now(), sim::kNever, bytes});

  const auto handle = arena_.alloc();
  ActiveFlow& flow = arena_.get(handle);
  flow.record = index;
  flow.bytes = bytes;
  flow.conn = TcpConnection::open(*stacks_[src], *stacks_[dst], options_.tcp);
  active_.push_back(arena_, core::Arena<ActiveFlow>::index_of(handle));

  TcpEndpoint& sender = flow.conn->a();
  TcpEndpoint& receiver = flow.conn->b();
  receiver.set_on_delivered([this, handle](std::uint64_t delivered) {
    const ActiveFlow* f = arena_.try_get(handle);
    if (f != nullptr && delivered >= f->bytes &&
        !records_[f->record].is_complete()) {
      finish_flow(handle);
    }
  });
  sender.write(bytes);
}

void BackgroundTraffic::finish_flow(core::Arena<ActiveFlow>::Handle handle) {
  ActiveFlow& flow = arena_.get(handle);
  records_[flow.record].finished = sim_->now();
  ++completed_;
  active_.erase(arena_, core::Arena<ActiveFlow>::index_of(handle));
  // Tearing down the connection inside its own delivery callback would
  // free the endpoint mid-signal; defer to an immediate follow-up event.
  sim_->after(0, [this, handle] {
    ActiveFlow* f = arena_.try_get(handle);
    if (f == nullptr) return;
    f->conn.reset();
    arena_.release(handle);
  });
}

std::uint64_t BackgroundTraffic::total_bytes() const {
  std::uint64_t total = 0;
  for (const FlowRecord& r : records_) total += r.bytes;
  return total;
}

}  // namespace f2t::transport
