#include "transport/background.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::transport {

BackgroundTraffic::BackgroundTraffic(std::vector<HostStack*> stacks,
                                     sim::Random rng,
                                     const BackgroundTrafficOptions& options)
    : stacks_(std::move(stacks)), rng_(std::move(rng)), options_(options) {
  if (stacks_.size() < 2) {
    throw std::invalid_argument("background traffic: need >= 2 hosts");
  }
  sim_ = &stacks_.front()->simulator();
}

void BackgroundTraffic::start() {
  sim_->at(options_.start, [this] { schedule_next(); });
}

void BackgroundTraffic::schedule_next() {
  if (sim_->now() >= options_.stop) return;
  launch_flow();
  const double gap_s = rng_.lognormal_median(options_.interarrival_median_s,
                                             options_.interarrival_sigma);
  sim_->after(std::max<sim::Time>(sim::from_seconds(gap_s), sim::micros(10)),
              [this] { schedule_next(); });
}

void BackgroundTraffic::launch_flow() {
  const std::size_t src = rng_.index(stacks_.size());
  std::size_t dst = rng_.index(stacks_.size());
  while (dst == src) dst = rng_.index(stacks_.size());

  const std::uint64_t bytes = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          rng_.lognormal_median(options_.size_median_bytes,
                                options_.size_sigma)),
      1, options_.max_flow_bytes);

  const std::size_t index = records_.size();
  records_.push_back(FlowRecord{sim_->now(), sim::kNever, bytes});

  connections_.push_back(
      TcpConnection::open(*stacks_[src], *stacks_[dst], options_.tcp));
  TcpEndpoint& sender = connections_.back()->a();
  TcpEndpoint& receiver = connections_.back()->b();
  receiver.set_on_delivered([this, index, bytes](std::uint64_t delivered) {
    if (delivered >= bytes && !records_[index].is_complete()) {
      records_[index].finished = sim_->now();
    }
  });
  sender.write(bytes);
}

std::size_t BackgroundTraffic::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const FlowRecord& r) { return r.is_complete(); }));
}

std::uint64_t BackgroundTraffic::total_bytes() const {
  std::uint64_t total = 0;
  for (const FlowRecord& r : records_) total += r.bytes;
  return total;
}

}  // namespace f2t::transport
