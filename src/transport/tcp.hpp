#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "transport/app.hpp"

namespace f2t::transport {

/// TCP model parameters. The 200 ms initial/minimum RTO is the Linux
/// default the paper's analysis hinges on (Table III discussion: a lost
/// retransmission doubles it to 400 ms, explaining fat tree's 700 ms
/// throughput collapse vs F²Tree's 220 ms).
struct TcpConfig {
  std::uint32_t mss = net::kMss;
  sim::Time initial_rto = sim::millis(200);
  sim::Time min_rto = sim::millis(200);
  sim::Time max_rto = sim::seconds(60);
  std::uint32_t initial_cwnd_segments = 10;
  std::uint32_t dupack_threshold = 3;
  /// Delayed-ACK timeout; zero (the default) ACKs every segment
  /// immediately. When enabled, in-order data is ACKed every second
  /// segment or after this delay, whichever first; out-of-order data is
  /// always ACKed immediately (it is dupack feedback).
  sim::Time delayed_ack = 0;
  /// DCTCP mode (the congestion control of the paper's workload source
  /// [24]): receivers echo per-packet CE marks, senders keep an EWMA of
  /// the marked fraction and cut cwnd proportionally once per window.
  /// Requires ECN marking on the links (LinkParams::ecn_threshold).
  bool dctcp = false;
  double dctcp_g = 1.0 / 16.0;  ///< EWMA gain
};

/// One side of a TCP connection.
///
/// The model is byte-counting Reno: cumulative ACKs, slow start and AIMD,
/// RFC 6298 RTT estimation with Karn's rule, exponential RTO backoff,
/// fast retransmit on three duplicate ACKs, immediate ACKs (no delayed
/// ACK), and out-of-order buffering at the receiver. Connection setup and
/// teardown are elided (endpoints are created established): the paper's
/// recovery effects live entirely in the data-transfer machinery.
class TcpEndpoint {
 public:
  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_retransmitted = 0;
    std::uint64_t rto_fires = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t bytes_acked = 0;
    std::uint64_t bytes_delivered = 0;  ///< in-order bytes received
  };

  /// Fired when in-order delivery advances; argument is total delivered.
  using DeliveredFn = std::function<void(std::uint64_t)>;
  /// Fired when cumulative ACK advances; argument is total acked.
  using AckedFn = std::function<void(std::uint64_t)>;

  TcpEndpoint(HostStack& stack, net::Ipv4Addr remote,
              std::uint16_t remote_port, std::uint16_t local_port,
              const TcpConfig& config);
  ~TcpEndpoint();

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  /// Appends bytes to the application send stream.
  void write(std::uint64_t bytes);

  void set_on_delivered(DeliveredFn fn) { on_delivered_ = std::move(fn); }
  void set_on_acked(AckedFn fn) { on_acked_ = std::move(fn); }

  /// Packet arrival from the host stack.
  void on_packet(const net::Packet& packet);

  const Stats& stats() const { return stats_; }
  double dctcp_alpha() const { return dctcp_alpha_; }
  std::uint64_t bytes_written() const { return write_total_; }
  std::uint64_t bytes_acked() const { return snd_una_; }
  std::uint64_t bytes_delivered() const { return rcv_nxt_; }
  sim::Time current_rto() const { return rto_; }
  std::uint64_t cwnd_bytes() const { return cwnd_; }

  net::Ipv4Addr remote() const { return remote_; }
  std::uint16_t local_port() const { return local_port_; }
  std::uint16_t remote_port() const { return remote_port_; }

 private:
  void try_send();
  void send_segment(std::uint64_t seq, std::uint32_t len, bool retransmission);
  void send_ack();
  void handle_ack(std::uint64_t ack, bool ece);
  void handle_data(std::uint64_t seq, std::uint32_t len, bool ce);
  void dctcp_on_ack(std::uint64_t newly, bool ece);
  void arm_rto();
  void disarm_rto();
  void on_rto();
  void take_rtt_sample(sim::Time sample);
  std::uint64_t flight() const { return snd_nxt_ - snd_una_; }

  HostStack& stack_;
  net::Ipv4Addr remote_;
  std::uint16_t remote_port_;
  std::uint16_t local_port_;
  TcpConfig config_;

  // --- sender state -----------------------------------------------------
  std::uint64_t write_total_ = 0;  ///< bytes the app asked to send
  std::uint64_t snd_una_ = 0;      ///< oldest unacked byte
  std::uint64_t snd_nxt_ = 0;      ///< next byte to transmit
  std::uint64_t cwnd_ = 0;         ///< congestion window (bytes)
  std::uint64_t ssthresh_ = 0;
  std::uint32_t dupacks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint64_t recover_point_ = 0;  ///< NewReno recovery / go-back-N mark
  sim::EventId rto_timer_ = sim::kInvalidEventId;
  sim::Time rto_;
  bool rtt_seeded_ = false;
  sim::Time srtt_ = 0;
  sim::Time rttvar_ = 0;
  // RTT sample in progress (Karn's rule: invalidated by retransmission).
  std::uint64_t sample_end_seq_ = 0;
  sim::Time sample_sent_at_ = 0;
  bool sample_pending_ = false;

  // --- receiver state -----------------------------------------------------
  std::uint64_t rcv_nxt_ = 0;  ///< next expected byte == bytes delivered
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< seq -> end (exclusive)
  sim::EventId delack_timer_ = sim::kInvalidEventId;
  std::uint32_t unacked_segments_ = 0;
  bool echo_ce_ = false;  ///< receiver: CE seen on the segment being acked

  // --- DCTCP sender state -------------------------------------------------
  double dctcp_alpha_ = 0.0;
  std::uint64_t dctcp_acked_ = 0;
  std::uint64_t dctcp_marked_ = 0;
  std::uint64_t dctcp_window_end_ = 0;

  DeliveredFn on_delivered_;
  AckedFn on_acked_;
  Stats stats_;
};

/// A pre-established TCP connection between two hosts: a matched pair of
/// endpoints. Destroying the connection unregisters both sides.
class TcpConnection {
 public:
  TcpConnection(HostStack& a, HostStack& b, std::uint16_t a_port,
                std::uint16_t b_port, const TcpConfig& config);

  /// Convenience: allocates ephemeral ports on both sides.
  static std::unique_ptr<TcpConnection> open(HostStack& a, HostStack& b,
                                             const TcpConfig& config = {});

  TcpEndpoint& a() { return *a_; }
  TcpEndpoint& b() { return *b_; }

 private:
  std::unique_ptr<TcpEndpoint> a_;
  std::unique_ptr<TcpEndpoint> b_;
};

}  // namespace f2t::transport
