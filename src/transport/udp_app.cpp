#include "transport/udp_app.hpp"

#include "transport/tcp.hpp"

namespace f2t::transport {

UdpCbrSender::UdpCbrSender(HostStack& stack, net::Ipv4Addr dst,
                           const Options& options)
    : stack_(stack), dst_(dst), options_(options) {}

void UdpCbrSender::start() {
  stack_.simulator().at(options_.start, [this] { tick(); });
}

void UdpCbrSender::tick() {
  const sim::Time now = stack_.simulator().now();
  if (now >= options_.stop) return;
  net::Packet packet;
  packet.dst = dst_;
  packet.proto = net::Protocol::kUdp;
  packet.sport = options_.sport;
  packet.dport = options_.dport;
  packet.size_bytes = options_.payload_bytes + net::kUdpHeaderBytes;
  packet.udp_seq = static_cast<std::uint32_t>(sent_);
  ++sent_;
  stack_.send(std::move(packet));
  stack_.simulator().after(options_.interval, [this] { tick(); });
}

UdpSink::UdpSink(HostStack& stack, std::uint16_t port) {
  stack.bind_udp(port, [this, &stack](const net::Packet& packet) {
    const sim::Time now = stack.simulator().now();
    arrivals_.push_back(Arrival{now, packet.udp_seq, now - packet.sent_at});
  });
}

PacedTcpWriter::PacedTcpWriter(TcpEndpoint& endpoint,
                               sim::Simulator& simulator,
                               const Options& options)
    : endpoint_(endpoint), sim_(simulator), options_(options) {}

void PacedTcpWriter::start() {
  sim_.at(options_.start, [this] { tick(); });
}

void PacedTcpWriter::tick() {
  if (sim_.now() >= options_.stop) return;
  endpoint_.write(options_.chunk_bytes);
  written_ += options_.chunk_bytes;
  sim_.after(options_.interval, [this] { tick(); });
}

}  // namespace f2t::transport
