#include "transport/partition_aggregate.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::transport {

PartitionAggregateApp::PartitionAggregateApp(
    std::vector<HostStack*> stacks, sim::Random rng,
    const PartitionAggregateOptions& options)
    : stacks_(std::move(stacks)), rng_(std::move(rng)), options_(options) {
  if (static_cast<int>(stacks_.size()) < options_.fanout + 1) {
    throw std::invalid_argument(
        "partition-aggregate: not enough hosts for the fanout");
  }
  sim_ = &stacks_.front()->simulator();
}

void PartitionAggregateApp::start() {
  sim_->at(options_.start, [this] { schedule_next(); });
}

void PartitionAggregateApp::schedule_next() {
  if (sim_->now() >= options_.stop) return;
  launch_request();
  const double mean_s = sim::to_seconds(options_.mean_interarrival);
  const sim::Time gap = sim::from_seconds(rng_.exponential(mean_s));
  sim_->after(std::max<sim::Time>(gap, sim::micros(1)),
              [this] { schedule_next(); });
}

void PartitionAggregateApp::launch_request() {
  // Pick a requester and `fanout` distinct workers.
  const std::size_t requester_idx = rng_.index(stacks_.size());
  HostStack* requester = stacks_[requester_idx];
  std::vector<HostStack*> workers;
  while (static_cast<int>(workers.size()) < options_.fanout) {
    const std::size_t w = rng_.index(stacks_.size());
    if (w == requester_idx) continue;
    HostStack* candidate = stacks_[w];
    if (std::find(workers.begin(), workers.end(), candidate) !=
        workers.end()) {
      continue;
    }
    workers.push_back(candidate);
  }

  const std::size_t record_index = records_.size();
  records_.push_back(RequestRecord{sim_->now(), sim::kNever});

  auto pending = std::make_unique<Pending>();
  Pending* p = pending.get();
  p->record_index = record_index;
  p->responses_remaining = options_.fanout;
  p->exchanges.resize(static_cast<std::size_t>(options_.fanout));

  for (int i = 0; i < options_.fanout; ++i) {
    Exchange& exchange = p->exchanges[static_cast<std::size_t>(i)];
    exchange.connection =
        TcpConnection::open(*requester, *workers[static_cast<std::size_t>(i)],
                            options_.tcp);
    TcpEndpoint& req_side = exchange.connection->a();
    TcpEndpoint& wrk_side = exchange.connection->b();

    wrk_side.set_on_delivered(
        [this, p, i, &wrk_side](std::uint64_t delivered) {
          Exchange& ex = p->exchanges[static_cast<std::size_t>(i)];
          if (!ex.worker_responded && delivered >= options_.request_bytes) {
            ex.worker_responded = true;
            wrk_side.write(options_.response_bytes);
          }
        });
    req_side.set_on_delivered([this, p, i](std::uint64_t delivered) {
      Exchange& ex = p->exchanges[static_cast<std::size_t>(i)];
      if (!ex.response_done && delivered >= options_.response_bytes) {
        ex.response_done = true;
        if (--p->responses_remaining == 0) {
          records_[p->record_index].completed = sim_->now();
        }
      }
    });
    req_side.write(options_.request_bytes);
  }
  pending_.push_back(std::move(pending));
}

double PartitionAggregateApp::deadline_miss_ratio(sim::Time horizon) const {
  if (records_.empty()) return 0.0;
  std::size_t missed = 0;
  std::size_t counted = 0;
  for (const RequestRecord& r : records_) {
    if (r.is_complete()) {
      ++counted;
      if (r.completion_time() > options_.deadline) ++missed;
    } else if (horizon - r.issued > options_.deadline) {
      // Outstanding past the deadline: definitely missed.
      ++counted;
      ++missed;
    }
  }
  return counted == 0 ? 0.0
                      : static_cast<double>(missed) /
                            static_cast<double>(counted);
}

std::vector<sim::Time> PartitionAggregateApp::completion_times() const {
  std::vector<sim::Time> out;
  for (const RequestRecord& r : records_) {
    if (r.is_complete()) out.push_back(r.completion_time());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PartitionAggregateApp::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const RequestRecord& r) { return r.is_complete(); }));
}

}  // namespace f2t::transport
