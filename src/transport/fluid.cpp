#include "transport/fluid.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/l3switch.hpp"
#include "routing/ecmp.hpp"

namespace f2t::transport {

namespace {

std::uint32_t channel_key(const net::Link& link, net::Link::Direction d) {
  return link.id() * 2u + (d == net::Link::Direction::kAToB ? 0u : 1u);
}

}  // namespace

FluidProbe::FluidProbe(net::Network& network, const net::Host& src,
                       const net::Host& dst, const Options& options)
    : network_(network),
      sim_(network.simulator()),
      src_(src),
      dst_(dst),
      options_(options),
      flows_(std::make_unique<FluidFlowTable>(
          2 * network.link_count(),
          network.default_link_params().bandwidth_bps)) {
  if (options_.stop == sim::kNever) {
    throw std::invalid_argument("FluidProbe: stop must be finite");
  }
  if (options_.interval <= 0) {
    throw std::invalid_argument("FluidProbe: interval must be positive");
  }
  if (src_.port_count() == 0) {
    throw std::invalid_argument("FluidProbe: source host has no uplink");
  }
  probe_.src = src_.addr();
  probe_.dst = dst_.addr();
  probe_.proto = net::Protocol::kUdp;
  probe_.sport = options_.sport;
  probe_.dport = options_.dport;
  wire_bytes_ = options_.payload_bytes + net::kUdpHeaderBytes;
  total_sends_ =
      options_.stop <= options_.start
          ? 0
          : static_cast<std::uint64_t>(options_.stop - options_.start +
                                       options_.interval - 1) /
                static_cast<std::uint64_t>(options_.interval);

  // Per-channel capacities for the rate table (links may deviate from the
  // network default).
  for (net::Link* link : network_.links()) {
    flows_->set_capacity(channel_key(*link, net::Link::Direction::kAToB),
                         link->params().bandwidth_bps);
    flows_->set_capacity(channel_key(*link, net::Link::Direction::kBToA),
                         link->params().bandwidth_bps);
  }
  // CBR demand: one wire-sized datagram per interval.
  const double demand_bps = static_cast<double>(wire_bytes_) * 8.0 /
                            sim::to_seconds(options_.interval);
  probe_flow_ = flows_->add_flow({}, demand_bps);

  attach_hooks();
  retrace_regime();
  sync_flow_path();
}

FluidProbe::~FluidProbe() = default;

void FluidProbe::attach_hooks() {
  channel_log_.assign(2 * network_.link_count(), {});
  channel_init_up_.assign(2 * network_.link_count(), 1);
  for (net::Link* link : network_.links()) {
    using Dir = net::Link::Direction;
    channel_init_up_[channel_key(*link, Dir::kAToB)] =
        link->direction_up(Dir::kAToB) ? 1 : 0;
    channel_init_up_[channel_key(*link, Dir::kBToA)] =
        link->direction_up(Dir::kBToA) ? 1 : 0;
    link->add_channel_observer([this](net::Link& l, Dir d, bool up) {
      // Physical transitions are invisible to forwarding (paths depend on
      // FIBs + detected ports only), so they never trigger a re-trace —
      // they only extend the availability log the horizon evaluation
      // reads.
      channel_log_[channel_key(l, d)].push_back({sim_.now(), up});
      ++stats_.transitions;
    });
  }
  for (net::L3Switch* sw : network_.switches()) {
    sw->fib().add_change_hook([this] { mark_routing_dirty(); });
    sw->add_port_state_handler(
        [this](net::PortId, bool) { mark_routing_dirty(); });
  }
}

void FluidProbe::mark_routing_dirty() {
  if (routing_dirty_) return;
  routing_dirty_ = true;
  // Coalesce: one processor run per burst of same-timestamp mutations.
  // Scheduling with zero delay orders the run after every routing event
  // already queued at this timestamp (their ids are older), which gives
  // sends at later times the end-of-timestamp state — exactly what the
  // packet engine's event ordering yields, since control events are
  // scheduled ms ahead and therefore outrank µs-scale data events of equal
  // timestamp. A mutation arriving *after* this run at the same timestamp
  // re-arms the flag and triggers another (self-correcting) run.
  sim_.after(0, [this] { process_change(); });
}

sim::Time FluidProbe::send_time(std::uint64_t k) const {
  return options_.start + static_cast<sim::Time>(k) * options_.interval;
}

std::uint64_t FluidProbe::first_k_at_or_after(sim::Time t) const {
  if (t <= options_.start) return 0;
  const sim::Time delta = t - options_.start;
  const auto k = static_cast<std::uint64_t>(
      (delta + options_.interval - 1) / options_.interval);
  return std::min(k, total_sends_);
}

sim::Time FluidProbe::hop_flight(const net::Link& link) const {
  const double bits = static_cast<double>(wire_bytes_) * 8.0;
  return sim::from_seconds(bits / link.params().bandwidth_bps) +
         link.params().propagation_delay;
}

FluidProbe::Terminal FluidProbe::trace_from(const net::Node* node,
                                            sim::Time at, int ttl,
                                            std::vector<Hop>& hops) {
  ++stats_.retraces;
  const net::Node* current = node;
  for (;;) {
    if (current == &dst_) return Terminal::kDelivered;
    const auto* sw = dynamic_cast<const net::L3Switch*>(current);
    if (sw == nullptr) return Terminal::kWrongHost;
    if (sw->router_id() == probe_.dst) return Terminal::kConsumed;
    // L3Switch::forward drops when the arriving TTL is <= 1.
    if (ttl <= 1) {
      ++stats_.loop_traces;
      return Terminal::kTtlExpired;
    }
    --ttl;
    const auto& next_hops = sw->resolve_next_hops(probe_.dst);
    if (next_hops.empty()) return Terminal::kNoRoute;
    const std::size_t pick = routing::ecmp_select(
        probe_, static_cast<std::uint64_t>(sw->id()), next_hops.size());
    net::Link* link = sw->port(next_hops[pick].port).link;
    const net::Link::End& to = link->peer_of(*sw);
    const sim::Time flight = hop_flight(*link);
    hops.push_back(Hop{channel_key(*link, link->direction_from(*sw)), at,
                       flight, to.node->id(),
                       static_cast<std::int16_t>(ttl)});
    at += flight;
    current = to.node;
  }
}

FluidProbe::Terminal FluidProbe::trace_path(sim::Time base,
                                            std::vector<Hop>& hops) {
  hops.clear();
  net::Link* uplink = src_.port(0).link;
  const net::Link::End& to = uplink->peer_of(src_);
  const sim::Time flight = hop_flight(*uplink);
  // Hosts neither route nor decrement TTL; the stack stamps 64.
  hops.push_back(Hop{channel_key(*uplink, uplink->direction_from(src_)),
                     base, flight, to.node->id(), 64});
  return trace_from(to.node, base + flight, 64, hops);
}

void FluidProbe::retrace_regime() {
  regime_terminal_ = trace_path(0, regime_hops_);
}

sim::Time FluidProbe::regime_decision_offset() const {
  // Forwarding decisions happen at hop enqueue times; a dropped or
  // consumed packet's final decision happens on arrival at the dropping
  // node, one flight later.
  const Hop& last = regime_hops_.back();
  return regime_terminal_ == Terminal::kDelivered ? last.enqueue
                                                  : last.enqueue + last.flight;
}

void FluidProbe::partition_sends(sim::Time now) {
  const std::uint64_t k_sent = first_k_at_or_after(now);
  const std::uint64_t k_full = std::min(
      k_sent, first_k_at_or_after(now - regime_decision_offset()));
  if (k_full > next_k_) {
    Batch batch;
    batch.k_begin = next_k_;
    batch.k_end = k_full;
    batch.hops = regime_hops_;
    batch.terminal = regime_terminal_;
    batches_.push_back(std::move(batch));
    ++stats_.batches;
  }
  for (std::uint64_t k = std::max(next_k_, k_full); k < k_sent; ++k) {
    // Straddler: instantiate the regime path at this send's absolute
    // times; advance_pending will keep the already-decided prefix and
    // re-trace the rest under the new state. Arena-allocated: a recycled
    // slot's hop buffer keeps its capacity, so straddler churn does not
    // allocate in steady state.
    const auto h = pending_arena_.alloc();
    Pending& p = pending_arena_.get(h);
    p.k = k;
    p.hops.assign(regime_hops_.begin(), regime_hops_.end());
    for (Hop& hop : p.hops) hop.enqueue += send_time(k);
    p.final_count = 0;
    p.terminal = regime_terminal_;
    open_.push_back(pending_arena_, core::Arena<Pending>::index_of(h));
    ++stats_.straddlers;
  }
  next_k_ = std::max(next_k_, k_sent);
}

void FluidProbe::advance_pending(std::uint32_t pending_idx, sim::Time now) {
  Pending& p = pending_arena_.at_index(pending_idx);
  // Promote optimistic hops whose forwarding decision predates `now`;
  // they were traced under the regime that was live at their enqueue
  // time, so they are final.
  std::size_t keep = p.final_count;
  while (keep < p.hops.size() && p.hops[keep].enqueue < now) ++keep;
  const bool trace_intact = keep == p.hops.size();
  if (trace_intact) {
    const Hop& last = p.hops.back();
    const bool decided =
        p.terminal == Terminal::kDelivered  // no decision on host arrival
        || last.enqueue + last.flight < now;
    if (decided) {
      open_.erase(pending_arena_, pending_idx);
      resolved_.push_back(pending_arena_, pending_idx);
      return;
    }
  }
  p.hops.resize(keep);
  p.final_count = keep;
  const Hop& last = p.hops.back();
  p.terminal = trace_from(&network_.node(last.to),
                          last.enqueue + last.flight, last.ttl_at_to,
                          p.hops);
}

void FluidProbe::process_change() {
  routing_dirty_ = false;
  const sim::Time now = sim_.now();
  ++stats_.routing_changes;

  partition_sends(now);

  // Snapshot the open list first: advance_pending moves decided entries
  // onto resolved_ while we iterate.
  pending_scratch_.clear();
  for (auto i = open_.head(); i != core::kNilIndex;
       i = open_.next(pending_arena_, i)) {
    pending_scratch_.push_back(i);
  }
  for (const std::uint32_t i : pending_scratch_) advance_pending(i, now);

  retrace_regime();
  sync_flow_path();
}

void FluidProbe::sync_flow_path() {
  std::vector<std::uint32_t> path;
  if (regime_terminal_ == Terminal::kDelivered) {
    path.reserve(regime_hops_.size());
    for (const Hop& hop : regime_hops_) path.push_back(hop.channel);
  }
  flows_->set_path(probe_flow_, std::move(path));
}

double FluidProbe::probe_rate_bps() { return flows_->rate_of(probe_flow_); }

bool FluidProbe::channel_clean(std::uint32_t channel) const {
  return channel_log_[channel].empty() && channel_init_up_[channel] != 0;
}

bool FluidProbe::hop_open(std::uint32_t channel, sim::Time enqueue,
                          sim::Time flight) const {
  const auto& log = channel_log_[channel];
  // State at enqueue: transitions stamped exactly at the enqueue time
  // count as applied (transition events outrank data events of equal
  // timestamp in the packet engine — they were scheduled earlier).
  const auto next = std::upper_bound(
      log.begin(), log.end(), enqueue,
      [](sim::Time t, const Transition& tr) { return t < tr.at; });
  const bool up =
      next == log.begin() ? channel_init_up_[channel] != 0 : std::prev(next)->up;
  if (!up) return false;
  // Any transition during (enqueue, enqueue + flight] kills the packet:
  // the channel epoch check at serialization end / delivery fails, and a
  // transition exactly at the delivery timestamp fires first for the same
  // event-ordering reason as above.
  return next == log.end() || next->at > enqueue + flight;
}

bool FluidProbe::send_delivered(const std::vector<Hop>& hops,
                                sim::Time base) const {
  for (const Hop& hop : hops) {
    if (channel_clean(hop.channel)) continue;
    if (!hop_open(hop.channel, base + hop.enqueue, hop.flight)) return false;
  }
  return true;
}

void FluidProbe::emit_arrival(std::uint64_t k, sim::Time at) {
  arrivals_.push_back(UdpSink::Arrival{at, k, at - send_time(k)});
}

void FluidProbe::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Close the last regime: no further routing changes, so everything
  // outstanding is decided by the current path, and optimistic straddler
  // continuations stand.
  if (next_k_ < total_sends_) {
    Batch batch;
    batch.k_begin = next_k_;
    batch.k_end = total_sends_;
    batch.hops = regime_hops_;
    batch.terminal = regime_terminal_;
    batches_.push_back(std::move(batch));
    ++stats_.batches;
    next_k_ = total_sends_;
  }
  while (open_.head() != core::kNilIndex) {
    const std::uint32_t i = open_.head();
    open_.erase(pending_arena_, i);
    resolved_.push_back(pending_arena_, i);
  }

  for (const Batch& batch : batches_) {
    if (batch.terminal != Terminal::kDelivered) continue;
    const Hop& last = batch.hops.back();
    const sim::Time delay = last.enqueue + last.flight;
    bool all_clean = true;
    for (const Hop& hop : batch.hops) {
      if (!channel_clean(hop.channel)) {
        all_clean = false;
        break;
      }
    }
    for (std::uint64_t k = batch.k_begin; k < batch.k_end; ++k) {
      const sim::Time t = send_time(k);
      if (all_clean || send_delivered(batch.hops, t)) {
        emit_arrival(k, t + delay);
      }
    }
  }
  for (auto i = resolved_.head(); i != core::kNilIndex;
       i = resolved_.next(pending_arena_, i)) {
    const Pending& p = pending_arena_.at_index(i);
    if (p.terminal != Terminal::kDelivered) continue;
    if (!send_delivered(p.hops, 0)) continue;
    const Hop& last = p.hops.back();
    emit_arrival(p.k, last.enqueue + last.flight);
  }
  std::sort(arrivals_.begin(), arrivals_.end(),
            [](const UdpSink::Arrival& a, const UdpSink::Arrival& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.seq < b.seq;
            });
}

FluidFlowTable::FluidFlowTable(std::size_t channel_count,
                               double default_capacity_bps)
    : capacity_(channel_count, default_capacity_bps),
      members_(channel_count),
      stamp_(channel_count, 0),
      residual_(channel_count, 0.0),
      load_(channel_count, 0),
      channel_dirty_(channel_count, 0) {}

void FluidFlowTable::mark_channel_dirty(std::uint32_t channel) {
  if (channel_dirty_[channel]) return;
  channel_dirty_[channel] = 1;
  dirty_channels_.push_back(channel);
  dirty_ = true;
}

void FluidFlowTable::mark_path_dirty(const Flow& flow) {
  for (auto n = flow.first_node; n != core::kNilIndex;
       n = nodes_.at_index(n).next_in_path) {
    mark_channel_dirty(nodes_.at_index(n).channel);
  }
}

void FluidFlowTable::link_path(std::uint32_t flow_idx, Flow& flow,
                               const std::vector<std::uint32_t>& path) {
  std::uint32_t prev = core::kNilIndex;
  for (const std::uint32_t c : path) {
    const auto h = nodes_.alloc();
    const std::uint32_t idx = core::Arena<PathNode>::index_of(h);
    PathNode& node = nodes_.get(h);
    node.channel = c;
    node.flow = flow_idx;
    node.next_in_path = core::kNilIndex;
    if (prev == core::kNilIndex) {
      flow.first_node = idx;
    } else {
      nodes_.at_index(prev).next_in_path = idx;
    }
    prev = idx;
    members_[c].push_back(nodes_, idx);
  }
}

void FluidFlowTable::unlink_path(Flow& flow) {
  std::uint32_t n = flow.first_node;
  while (n != core::kNilIndex) {
    PathNode& node = nodes_.at_index(n);
    const std::uint32_t next = node.next_in_path;
    members_[node.channel].erase(nodes_, n);
    nodes_.release(nodes_.handle_of_index(n));
    n = next;
  }
  flow.first_node = core::kNilIndex;
}

bool FluidFlowTable::path_equals(
    const Flow& flow, const std::vector<std::uint32_t>& path) const {
  std::uint32_t n = flow.first_node;
  for (const std::uint32_t c : path) {
    if (n == core::kNilIndex) return false;
    const PathNode& node = nodes_.at_index(n);
    if (node.channel != c) return false;
    n = node.next_in_path;
  }
  return n == core::kNilIndex;
}

void FluidFlowTable::set_capacity(std::uint32_t channel, double bps) {
  if (bps <= 0) {
    throw std::invalid_argument("FluidFlowTable: capacity must be positive");
  }
  capacity_.at(channel) = bps;
  mark_channel_dirty(channel);
}

FluidFlowTable::FlowId FluidFlowTable::add_flow(
    std::vector<std::uint32_t> path, double demand_bps) {
  for (const std::uint32_t c : path) capacity_.at(c);  // bounds check
  const FlowId id = static_cast<FlowId>(flows_.alloc());
  Flow& flow = flows_.get(id);
  // Recycled slot: reset every field the previous tenant may have left.
  flow.first_node = core::kNilIndex;
  flow.demand = demand_bps;
  flow.rate = 0.0;
  flow.seen_epoch = 0;
  flow.frozen = false;
  link_path(core::Arena<Flow>::index_of(id), flow, path);
  mark_path_dirty(flow);
  return id;
}

void FluidFlowTable::remove_flow(FlowId id) {
  Flow* flow = flows_.try_get(id);
  if (flow == nullptr) return;  // stale handle: already removed
  mark_path_dirty(*flow);
  unlink_path(*flow);
  flows_.release(id);
}

void FluidFlowTable::set_path(FlowId id, std::vector<std::uint32_t> path) {
  for (const std::uint32_t c : path) capacity_.at(c);  // bounds check
  Flow& flow = flows_.get(id);
  if (path_equals(flow, path)) return;
  mark_path_dirty(flow);  // old channels lose this flow's share
  unlink_path(flow);
  link_path(core::Arena<Flow>::index_of(id), flow, path);
  mark_path_dirty(flow);
  if (path.empty()) flow.rate = 0.0;  // unrouted immediately
}

void FluidFlowTable::set_demand(FlowId id, double demand_bps) {
  Flow& flow = flows_.get(id);
  flow.demand = demand_bps;
  mark_path_dirty(flow);  // unrouted flows stay at rate 0: nothing to mark
}

double FluidFlowTable::rate_of(FlowId id) {
  if (dirty_) solve();
  const Flow* flow = flows_.try_get(id);
  return flow != nullptr ? flow->rate : 0.0;
}

void FluidFlowTable::touch_channel(std::uint32_t channel) {
  channel_dirty_[channel] = 0;  // absorbed into the current component
  if (stamp_[channel] == epoch_) return;
  stamp_[channel] = epoch_;
  residual_[channel] = capacity_[channel];
  load_[channel] = 0;
  channel_stack_.push_back(channel);
}

void FluidFlowTable::solve() {
  dirty_ = false;
  ++solves_;
  last_solve_flows_ = 0;
  last_solved_.clear();

  // Each dirty channel seeds one connected component; seeds absorbed into
  // an earlier component's BFS (their dirty flag cleared by
  // touch_channel) are skipped. Solving per component matters: a batch of
  // mutations spanning k disjoint components (mass add, multi-link
  // failure) costs sum(comp_i^2) worst-case instead of (sum comp_i)^2 —
  // one merged progressive filling would interleave every component's
  // freeze levels into a single global increment sequence.
  for (const std::uint32_t seed : dirty_channels_) {
    if (!channel_dirty_[seed]) continue;
    solve_component(seed);
  }
  dirty_channels_.clear();
}

void FluidFlowTable::solve_component(std::uint32_t seed) {
  ++epoch_;

  // Collect the connected component of the seed channel: BFS over the
  // channel<->flow membership graph. Every flow crossing a component
  // channel joins the component and contributes its other channels, so
  // at the end the component's channels are crossed *only* by component
  // flows — their rates can be recomputed from raw capacities without
  // consulting the rest of the table.
  comp_flows_.clear();
  channel_stack_.clear();
  touch_channel(seed);
  for (std::size_t i = 0; i < channel_stack_.size(); ++i) {
    const std::uint32_t c = channel_stack_[i];
    const MemberList& list = members_[c];
    for (auto n = list.head(); n != core::kNilIndex; n = list.next(nodes_, n)) {
      const std::uint32_t flow_idx = nodes_.at_index(n).flow;
      Flow& flow = flows_.at_index(flow_idx);
      if (flow.seen_epoch == epoch_) continue;
      flow.seen_epoch = epoch_;
      comp_flows_.push_back(flow_idx);
      for (auto pn = flow.first_node; pn != core::kNilIndex;
           pn = nodes_.at_index(pn).next_in_path) {
        touch_channel(nodes_.at_index(pn).channel);
      }
    }
  }
  last_solve_flows_ += comp_flows_.size();
  solved_flow_visits_ += comp_flows_.size();
  for (const std::uint32_t flow_idx : comp_flows_) {
    last_solved_.push_back(flows_.handle_of_index(flow_idx));
  }

  unfrozen_.clear();
  for (const std::uint32_t flow_idx : comp_flows_) {
    Flow& flow = flows_.at_index(flow_idx);
    flow.frozen = false;
    flow.rate = 0.0;
    unfrozen_.push_back(flow_idx);
    for (auto pn = flow.first_node; pn != core::kNilIndex;
         pn = nodes_.at_index(pn).next_in_path) {
      ++load_[nodes_.at_index(pn).channel];
    }
  }

  // Progressive filling: raise every unfrozen flow's rate by the largest
  // uniform increment no channel or demand can absorb less of, then
  // freeze whatever saturated. Terminates in <= component-size iterations
  // (every round freezes at least one flow).
  while (!unfrozen_.empty()) {
    double inc = std::numeric_limits<double>::max();
    for (const std::uint32_t flow_idx : unfrozen_) {
      const Flow& flow = flows_.at_index(flow_idx);
      inc = std::min(inc, flow.demand - flow.rate);
      for (auto pn = flow.first_node; pn != core::kNilIndex;
           pn = nodes_.at_index(pn).next_in_path) {
        const std::uint32_t c = nodes_.at_index(pn).channel;
        inc = std::min(inc, residual_[c] / static_cast<double>(load_[c]));
      }
    }
    for (const std::uint32_t flow_idx : unfrozen_) {
      Flow& flow = flows_.at_index(flow_idx);
      flow.rate += inc;
      for (auto pn = flow.first_node; pn != core::kNilIndex;
           pn = nodes_.at_index(pn).next_in_path) {
        residual_[nodes_.at_index(pn).channel] -= inc;
      }
    }
    still_.clear();
    for (const std::uint32_t flow_idx : unfrozen_) {
      Flow& flow = flows_.at_index(flow_idx);
      bool frozen = flow.rate >= flow.demand;
      if (!frozen) {
        for (auto pn = flow.first_node; pn != core::kNilIndex;
             pn = nodes_.at_index(pn).next_in_path) {
          const std::uint32_t c = nodes_.at_index(pn).channel;
          if (residual_[c] <= 1e-9 * capacity_[c]) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        flow.frozen = true;
        for (auto pn = flow.first_node; pn != core::kNilIndex;
             pn = nodes_.at_index(pn).next_in_path) {
          --load_[nodes_.at_index(pn).channel];
        }
      } else {
        still_.push_back(flow_idx);
      }
    }
    if (still_.size() == unfrozen_.size()) break;  // numeric safety valve
    std::swap(unfrozen_, still_);
  }
}

}  // namespace f2t::transport
