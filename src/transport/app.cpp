#include "transport/app.hpp"

#include <stdexcept>

#include "transport/tcp.hpp"

namespace f2t::transport {

HostStack::HostStack(net::Host& host) : host_(host) {
  host_.set_packet_handler(
      [this](net::Packet packet) { on_packet(std::move(packet)); });
}

void HostStack::bind_udp(std::uint16_t port, UdpHandler handler) {
  if (!udp_.emplace(port, std::move(handler)).second) {
    throw std::invalid_argument(host_.name() + ": UDP port " +
                                std::to_string(port) + " already bound");
  }
}

void HostStack::unbind_udp(std::uint16_t port) { udp_.erase(port); }

std::uint64_t HostStack::tcp_key(net::Ipv4Addr remote,
                                 std::uint16_t remote_port,
                                 std::uint16_t local_port) {
  return (std::uint64_t{remote.value()} << 32) |
         (std::uint64_t{remote_port} << 16) | local_port;
}

void HostStack::register_tcp(net::Ipv4Addr remote, std::uint16_t remote_port,
                             std::uint16_t local_port, TcpEndpoint* endpoint) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("register_tcp: null endpoint");
  }
  if (!tcp_.emplace(tcp_key(remote, remote_port, local_port), endpoint)
           .second) {
    throw std::invalid_argument(host_.name() + ": TCP 5-tuple already bound");
  }
}

void HostStack::unregister_tcp(net::Ipv4Addr remote, std::uint16_t remote_port,
                               std::uint16_t local_port) {
  tcp_.erase(tcp_key(remote, remote_port, local_port));
}

std::uint16_t HostStack::alloc_port() {
  if (next_port_ == 0) {
    throw std::length_error(host_.name() + ": ephemeral ports exhausted");
  }
  return next_port_++;
}

void HostStack::send(net::Packet packet) {
  packet.uid = next_uid_++;
  packet.src = host_.addr();
  packet.ttl = 64;
  packet.sent_at = simulator().now();
  host_.send_up(std::move(packet));
}

void HostStack::on_packet(net::Packet packet) {
  if (packet.proto == net::Protocol::kUdp) {
    const auto it = udp_.find(packet.dport);
    if (it == udp_.end()) {
      ++unmatched_;
      return;
    }
    it->second(packet);
    return;
  }
  if (packet.proto == net::Protocol::kTcp) {
    const auto it = tcp_.find(tcp_key(packet.src, packet.sport, packet.dport));
    if (it == tcp_.end()) {
      ++unmatched_;
      return;
    }
    it->second->on_packet(packet);
    return;
  }
  ++unmatched_;  // routing packets should never reach hosts
}

}  // namespace f2t::transport
