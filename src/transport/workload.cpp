#include "transport/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace f2t::transport {

// ---------------------------------------------------------------------------
// FlowSizeCdf

FlowSizeCdf::FlowSizeCdf(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("FlowSizeCdf: empty table");
  }
  double prev_bytes = 0;
  double prev_cum = 0;
  for (const Point& p : points_) {
    if (p.bytes <= prev_bytes) {
      throw std::invalid_argument("FlowSizeCdf: bytes must ascend");
    }
    if (p.cum <= prev_cum || p.cum > 1.0) {
      throw std::invalid_argument("FlowSizeCdf: cum must ascend to 1");
    }
    prev_bytes = p.bytes;
    prev_cum = p.cum;
  }
  if (points_.back().cum != 1.0) {
    throw std::invalid_argument("FlowSizeCdf: last cum must be 1");
  }
  // Mean of the piecewise-linear CDF: the mass below the first point sits
  // *at* the first point; each later segment spreads its mass uniformly.
  mean_bytes_ = points_.front().bytes * points_.front().cum;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cum - points_[i - 1].cum;
    mean_bytes_ += mass * 0.5 * (points_[i].bytes + points_[i - 1].bytes);
  }
}

FlowSizeCdf FlowSizeCdf::websearch() {
  // Shaped after the DCTCP / pFabric web-search mix: tens-of-KB
  // query-responses in the body, a tail reaching tens of MB.
  return FlowSizeCdf({{6e3, 0.15},
                      {13e3, 0.30},
                      {19e3, 0.45},
                      {33e3, 0.60},
                      {53e3, 0.70},
                      {133e3, 0.80},
                      {667e3, 0.90},
                      {1333e3, 0.95},
                      {6667e3, 0.98},
                      {20e6, 1.0}});
}

FlowSizeCdf FlowSizeCdf::datamining() {
  // Shaped after the VL2 data-mining mix: half the flows are sub-KB
  // control messages, the top decile carries the multi-MB shuffles.
  return FlowSizeCdf({{100, 0.50},
                      {1e3, 0.60},
                      {10e3, 0.70},
                      {100e3, 0.75},
                      {1e6, 0.80},
                      {10e6, 0.90},
                      {100e6, 1.0}});
}

FlowSizeCdf FlowSizeCdf::fixed(double bytes) {
  return FlowSizeCdf({{bytes, 1.0}});
}

FlowSizeCdf FlowSizeCdf::by_name(const std::string& name) {
  if (name == "websearch") return websearch();
  if (name == "datamining") return datamining();
  throw std::invalid_argument("FlowSizeCdf: unknown distribution '" + name +
                              "' (want websearch|datamining)");
}

FlowSizeCdf FlowSizeCdf::from_csv(std::string_view text) {
  std::vector<Point> points;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument("FlowSizeCdf: CSV line missing comma: " +
                                  line);
    }
    try {
      points.push_back(Point{std::stod(line.substr(0, comma)),
                             std::stod(line.substr(comma + 1))});
    } catch (const std::exception&) {
      throw std::invalid_argument("FlowSizeCdf: bad CSV line: " + line);
    }
  }
  return FlowSizeCdf(std::move(points));
}

std::uint64_t FlowSizeCdf::sample(sim::Random& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  const Point& first = points_.front();
  double bytes;
  if (u <= first.cum) {
    bytes = first.bytes;
  } else {
    // Find the segment (i-1, i] holding u and interpolate linearly.
    std::size_t i = 1;
    while (i + 1 < points_.size() && u > points_[i].cum) ++i;
    const Point& lo = points_[i - 1];
    const Point& hi = points_[i];
    bytes = lo.bytes + (hi.bytes - lo.bytes) * (u - lo.cum) /
                           (hi.cum - lo.cum);
  }
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(bytes));
}

// ---------------------------------------------------------------------------
// TcpWorkload

namespace {

double host_uplink_bps(const std::vector<HostStack*>& stacks) {
  net::Host& host = stacks.front()->host();
  if (host.port_count() == 0) {
    throw std::invalid_argument("workload: host has no uplink");
  }
  return host.port(0).link->params().bandwidth_bps;
}

}  // namespace

TcpWorkload::TcpWorkload(std::vector<HostStack*> stacks, sim::Random rng,
                         WorkloadOptions options)
    : stacks_(std::move(stacks)),
      options_(std::move(options)),
      // Stateless stream splits: each draw purpose gets its own engine so
      // the sequence of sizes never depends on how many pair draws ran.
      arrival_rng_(rng.split(1)),
      size_rng_(rng.split(2)),
      pair_rng_(rng.split(3)) {
  if (stacks_.size() < 2) {
    throw std::invalid_argument("workload: need >= 2 hosts");
  }
  sim_ = &stacks_.front()->simulator();
  uplink_bps_ = host_uplink_bps(stacks_);
  if (options_.kind == WorkloadKind::kPoisson) {
    if (options_.load <= 0) {
      throw std::invalid_argument("workload: load must be positive");
    }
    const double rate_per_s =
        options_.load * static_cast<double>(stacks_.size()) * uplink_bps_ /
        (options_.sizes.mean_bytes() * 8.0);
    arrival_mean_s_ = 1.0 / rate_per_s;
  } else {
    options_.fanin = std::min(options_.fanin, stacks_.size() - 1);
    if (options_.fanin == 0) {
      throw std::invalid_argument("workload: incast fan-in must be positive");
    }
    if (options_.incast_interval <= 0) {
      throw std::invalid_argument("workload: incast interval must be positive");
    }
  }
}

void TcpWorkload::start() {
  sim_->at(options_.start, [this] {
    if (options_.kind == WorkloadKind::kPoisson) {
      schedule_poisson();
    } else {
      run_incast_round();
    }
  });
}

void TcpWorkload::schedule_poisson() {
  if (sim_->now() >= options_.stop) return;
  const std::size_t src = pair_rng_.index(stacks_.size());
  std::size_t dst = pair_rng_.index(stacks_.size());
  while (dst == src) dst = pair_rng_.index(stacks_.size());
  launch_flow(src, dst, options_.sizes.sample(size_rng_));
  const sim::Time gap =
      std::max<sim::Time>(1, sim::from_seconds(arrival_rng_.exponential(
                                 arrival_mean_s_)));
  sim_->after(gap, [this] { schedule_poisson(); });
}

void TcpWorkload::run_incast_round() {
  if (sim_->now() >= options_.stop) return;
  const std::size_t aggregator = pair_rng_.index(stacks_.size());
  // Distinct workers: partial Fisher-Yates over every host but the
  // aggregator (scratch keeps its capacity across rounds).
  incast_scratch_.clear();
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    if (i != aggregator) incast_scratch_.push_back(i);
  }
  for (std::size_t j = 0; j < options_.fanin; ++j) {
    const std::size_t pick = j + pair_rng_.index(incast_scratch_.size() - j);
    std::swap(incast_scratch_[j], incast_scratch_[pick]);
    launch_flow(incast_scratch_[j], aggregator, options_.incast_bytes);
  }
  sim_->after(options_.incast_interval, [this] { run_incast_round(); });
}

void TcpWorkload::launch_flow(std::size_t src, std::size_t dst,
                              std::uint64_t bytes) {
  const std::size_t index = samples_.size();
  stats::FlowSample sample;
  sample.start = sim_->now();
  sample.bytes = bytes;
  sample.ideal = sim::from_seconds(static_cast<double>(bytes) * 8.0 /
                                   uplink_bps_);
  sample.deadline = options_.deadline;
  samples_.push_back(sample);

  const auto handle = arena_.alloc();
  ActiveFlow& flow = arena_.get(handle);
  flow.record = index;
  flow.bytes = bytes;
  flow.conn = TcpConnection::open(*stacks_[src], *stacks_[dst], options_.tcp);
  active_.push_back(arena_, core::Arena<ActiveFlow>::index_of(handle));
  peak_active_ = std::max(peak_active_, active_.size());

  TcpEndpoint& sender = flow.conn->a();
  TcpEndpoint& receiver = flow.conn->b();
  receiver.set_on_delivered([this, handle](std::uint64_t delivered) {
    const ActiveFlow* f = arena_.try_get(handle);
    if (f != nullptr && delivered >= f->bytes &&
        samples_[f->record].finish == sim::kNever) {
      finish_flow(handle);
    }
  });
  sender.write(bytes);
}

void TcpWorkload::finish_flow(core::Arena<ActiveFlow>::Handle handle) {
  ActiveFlow& flow = arena_.get(handle);
  samples_[flow.record].finish = sim_->now();
  ++completed_;
  active_.erase(arena_, core::Arena<ActiveFlow>::index_of(handle));
  // Teardown inside the delivery callback would free the endpoint
  // mid-signal; defer to an immediate follow-up event.
  sim_->after(0, [this, handle] {
    ActiveFlow* f = arena_.try_get(handle);
    if (f == nullptr) return;
    f->conn.reset();
    arena_.release(handle);
  });
}

// ---------------------------------------------------------------------------
// FluidWorkload

FluidWorkload::FluidWorkload(sim::Simulator& sim, FluidFlowTable& table,
                             PathFn path_fn, sim::Random rng, Options options)
    : sim_(sim),
      table_(table),
      path_fn_(std::move(path_fn)),
      options_(std::move(options)),
      arrival_rng_(rng.split(1)),
      size_rng_(rng.split(2)),
      path_rng_(rng.split(3)) {
  if (options_.arrival_rate_per_s <= 0) {
    throw std::invalid_argument("FluidWorkload: arrival rate must be > 0");
  }
  if (path_fn_ == nullptr) {
    throw std::invalid_argument("FluidWorkload: path_fn required");
  }
}

void FluidWorkload::start() {
  sim_.at(options_.start, [this] { schedule_arrival(); });
}

void FluidWorkload::schedule_arrival() {
  if (sim_.now() >= options_.stop) return;
  launch_flow();
  const sim::Time gap =
      std::max<sim::Time>(1, sim::from_seconds(arrival_rng_.exponential(
                                 1.0 / options_.arrival_rate_per_s)));
  sim_.after(gap, [this] { schedule_arrival(); });
}

void FluidWorkload::launch_flow() {
  path_scratch_.clear();
  path_fn_(path_rng_, path_scratch_);
  const std::uint64_t bytes = options_.sizes.sample(size_rng_);

  stats::FlowSample sample;
  sample.start = sim_.now();
  sample.bytes = bytes;
  sample.deadline = options_.deadline;
  double bottleneck = 0;
  for (const std::uint32_t c : path_scratch_) {
    const double cap = table_.capacity_of(c);
    if (bottleneck == 0 || cap < bottleneck) bottleneck = cap;
  }
  if (bottleneck > 0) {
    sample.ideal = sim::from_seconds(static_cast<double>(bytes) * 8.0 /
                                     bottleneck);
  }
  const std::size_t record = samples_.size();
  samples_.push_back(sample);

  const FluidFlowTable::FlowId id = table_.add_flow(path_scratch_);
  const auto handle = live_.alloc();
  LiveFlow& flow = live_.get(handle);
  flow.id = id;
  flow.record = record;
  flow.remaining_bits = static_cast<double>(bytes) * 8.0;
  flow.rate_bps = 0;
  flow.clocked_at = sim_.now();
  flow.has_completion = false;
  const std::uint32_t slot = FluidFlowTable::slot_of(id);
  if (slot >= by_table_slot_.size()) {
    by_table_slot_.resize(slot + 1, core::kNilIndex);
  }
  by_table_slot_[slot] = core::Arena<LiveFlow>::index_of(handle);
  peak_active_ = std::max(peak_active_, live_.live_count());

  reclock_changed();
}

void FluidWorkload::reclock_changed() {
  table_.refresh();
  const sim::Time now = sim_.now();
  for (const FluidFlowTable::FlowId id : table_.last_solved()) {
    const std::uint32_t slot = FluidFlowTable::slot_of(id);
    if (slot >= by_table_slot_.size()) continue;
    const std::uint32_t idx = by_table_slot_[slot];
    if (idx == core::kNilIndex) continue;
    LiveFlow& flow = live_.at_index(idx);
    if (flow.id != id) continue;  // slot recycled by the table
    reclock(flow, now);
  }
}

void FluidWorkload::reclock(LiveFlow& flow, sim::Time now) {
  // Integrate the old rate up to now, then re-time the completion under
  // the new one. Only called for flows the last solve actually touched.
  flow.remaining_bits -= flow.rate_bps * sim::to_seconds(now - flow.clocked_at);
  if (flow.remaining_bits < 0) flow.remaining_bits = 0;
  flow.clocked_at = now;
  flow.rate_bps = table_.rate_of(flow.id);
  if (flow.has_completion) {
    sim_.cancel(flow.completion);
    flow.has_completion = false;
  }
  if (flow.rate_bps > 0) {
    const sim::Time eta = std::max<sim::Time>(
        0, sim::from_seconds(flow.remaining_bits / flow.rate_bps));
    const std::uint32_t slot = FluidFlowTable::slot_of(flow.id);
    flow.completion = sim_.after(eta, [this, slot] { complete_flow(slot); });
    flow.has_completion = true;
  }
}

void FluidWorkload::finalize() {
  if (finalized_) return;
  finalized_ = true;
  table_.refresh();
  const sim::Time now = sim_.now();
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(by_table_slot_.size()); ++slot) {
    const std::uint32_t idx = by_table_slot_[slot];
    if (idx == core::kNilIndex) continue;
    LiveFlow& flow = live_.at_index(idx);
    // Integrate the tail interval so the flow's progress reflects the
    // horizon; a flow whose last bit lands exactly at the horizon (its
    // completion event tied with the scheduler cutoff) still counts.
    flow.remaining_bits -=
        flow.rate_bps * sim::to_seconds(now - flow.clocked_at);
    flow.clocked_at = now;
    if (flow.has_completion) {
      sim_.cancel(flow.completion);
      flow.has_completion = false;
    }
    if (flow.remaining_bits <= 1e-6) {
      samples_[flow.record].finish = now;
      ++completed_;
      table_.remove_flow(flow.id);
      by_table_slot_[slot] = core::kNilIndex;
      live_.release(live_.handle_of_index(idx));
    }
  }
}

void FluidWorkload::complete_flow(std::uint32_t slot) {
  if (slot >= by_table_slot_.size()) return;
  const std::uint32_t idx = by_table_slot_[slot];
  if (idx == core::kNilIndex) return;  // raced with removal: stale event
  LiveFlow& flow = live_.at_index(idx);
  flow.has_completion = false;
  samples_[flow.record].finish = sim_.now();
  ++completed_;
  table_.remove_flow(flow.id);
  by_table_slot_[slot] = core::kNilIndex;
  live_.release(live_.handle_of_index(idx));
  // The departure frees capacity: re-time the flows whose rates rose.
  reclock_changed();
}

}  // namespace f2t::transport
