#pragma once

#include <cstdint>
#include <vector>

#include "transport/app.hpp"

namespace f2t::transport {

/// Constant-bit-rate UDP sender, as in the paper's probe flows:
/// one 1448-byte segment every 100 µs by default.
class UdpCbrSender {
 public:
  struct Options {
    std::uint16_t sport = 9000;
    std::uint16_t dport = 9000;
    std::uint32_t payload_bytes = net::kMss;
    sim::Time interval = sim::micros(100);
    sim::Time start = 0;
    sim::Time stop = sim::kNever;  ///< exclusive; kNever = until sim ends
  };

  UdpCbrSender(HostStack& stack, net::Ipv4Addr dst, const Options& options);

  /// Schedules the first transmission. Must be called once.
  void start();

  std::uint64_t packets_sent() const { return sent_; }
  const Options& options() const { return options_; }

 private:
  void tick();

  HostStack& stack_;
  net::Ipv4Addr dst_;
  Options options_;
  std::uint64_t sent_ = 0;
};

/// UDP receiver recording per-packet arrival time, sequence number and
/// one-way delay; the raw material for the paper's connectivity-loss and
/// end-to-end-delay measurements (Fig 2, Fig 5, Table III).
class UdpSink {
 public:
  struct Arrival {
    sim::Time at;
    std::uint64_t seq;
    sim::Time delay;  ///< one-way, from the sender's stamp
  };

  UdpSink(HostStack& stack, std::uint16_t port);

  const std::vector<Arrival>& arrivals() const { return arrivals_; }
  std::uint64_t packets_received() const { return arrivals_.size(); }

 private:
  std::vector<Arrival> arrivals_;
};

/// Application-paced TCP writer: appends one MSS to the stream every
/// interval, reproducing the paper's "send a segment of 1448 bytes every
/// 100 µs" TCP probe flow.
class PacedTcpWriter {
 public:
  struct Options {
    std::uint32_t chunk_bytes = net::kMss;
    sim::Time interval = sim::micros(100);
    sim::Time start = 0;
    sim::Time stop = sim::kNever;
  };

  PacedTcpWriter(TcpEndpoint& endpoint, sim::Simulator& simulator,
                 const Options& options);

  void start();

  std::uint64_t bytes_written() const { return written_; }

 private:
  void tick();

  TcpEndpoint& endpoint_;
  sim::Simulator& sim_;
  Options options_;
  std::uint64_t written_ = 0;
};

}  // namespace f2t::transport
