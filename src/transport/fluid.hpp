#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/arena.hpp"
#include "net/network.hpp"
#include "transport/udp_app.hpp"

namespace f2t::transport {

/// Flow-level (fluid) transport: the simulation core's fast fidelity.
///
/// Packet-level runs cost one event per packet per hop — O(10^6) events
/// for a single 3-second probe flow, independent of what is actually being
/// measured. But the paper's headline metric, the connectivity-loss
/// window, is a property of *routing-state transitions*: a CBR probe's
/// packet k is delivered iff, at each hop of the path the routing state
/// assigns it, the traversed channel stays up across its serialization +
/// propagation window. The fluid model therefore simulates no probe
/// packets at all. It watches the routing state (FIB generations and
/// detected-port epochs) and the physical channel transitions, re-traces
/// the probe's path only when the routing state changes, and derives the
/// delivered set in closed form per constant-routing regime.
///
/// Exactness: under oracle detection and a packet-free control plane
/// (central), the fluid arrival set — times, sequence numbers, one-way
/// delays — is *identical* to the packet-level run's, because the probe is
/// the only packet stream and every quantity the packet engine computes
/// per event is piecewise-affine in the send time. With an LSA-flooding
/// control plane (OSPF) the windows agree whenever no control packet
/// shares a busy serializer with a boundary probe packet (control packets
/// are µs-scale and flood only during the outage); the fidelity property
/// suite pins the exact-equality cases. Not modelled (construction
/// refuses): gray faults (per-packet RNG needs packets), probe/BFD
/// detection (hello timing would interleave with probe serialization),
/// and TCP (window dynamics are inherently per-packet).
class FluidFlowTable;

class FluidProbe {
 public:
  struct Options {
    std::uint16_t sport = 9000;
    std::uint16_t dport = 9000;
    std::uint32_t payload_bytes = net::kMss;
    sim::Time interval = sim::micros(100);
    sim::Time start = 0;
    /// Exclusive send cutoff. Must be finite: the fluid model enumerates
    /// the send set arithmetically.
    sim::Time stop = 0;
  };

  struct Stats {
    std::uint64_t routing_changes = 0;  ///< coalesced change-processor runs
    std::uint64_t retraces = 0;         ///< path traces performed
    std::uint64_t transitions = 0;      ///< channel transitions logged
    std::uint64_t batches = 0;          ///< constant-regime send batches
    std::uint64_t straddlers = 0;       ///< sends split across regimes
    /// Traces that ran out of TTL: the routing state held a forwarding
    /// loop on the probe's path. Loop regimes are the one place the fluid
    /// model is *not* packet-exact — the packet engine buffers looping
    /// packets in saturated queues and drains survivors at reconvergence,
    /// which is inherently per-packet behaviour (see the fidelity
    /// property suite's loop carve-out).
    std::uint64_t loop_traces = 0;
  };

  /// Attaches to every switch FIB, detected-port handler and link channel
  /// of `network`. Attach *after* control-plane convergence (warm-start
  /// installs would only cause idle re-traces) and *before* faults are
  /// injected (channel logs must be complete).
  FluidProbe(net::Network& network, const net::Host& src,
             const net::Host& dst, const Options& options);
  ~FluidProbe();

  FluidProbe(const FluidProbe&) = delete;
  FluidProbe& operator=(const FluidProbe&) = delete;

  /// Closes the final routing regime and evaluates every send against the
  /// recorded channel availability windows. Call once, after the
  /// simulation ran to its horizon.
  void finalize();

  /// Delivered probe packets, sorted by (arrival time, sequence number);
  /// shape-compatible with UdpSink::arrivals(). Valid after finalize().
  const std::vector<UdpSink::Arrival>& arrivals() const { return arrivals_; }

  std::uint64_t packets_sent() const { return total_sends_; }

  const Stats& stats() const { return stats_; }

  /// The max-min rate table the probe registers its live path with (one
  /// flow here; shared when several fluid workloads run on one network).
  FluidFlowTable& flows() { return *flows_; }

  /// The probe flow's current max-min rate share in bits per second.
  double probe_rate_bps();

 private:
  /// One resolved hop of a send's path. `enqueue` is absolute in pending
  /// records and send-relative in regime batches.
  struct Hop {
    std::uint32_t channel = 0;  ///< link id * 2 + direction
    sim::Time enqueue = 0;
    sim::Time flight = 0;  ///< serialization + propagation
    net::NodeId to = net::kInvalidNode;
    std::int16_t ttl_at_to = 0;
  };

  /// Where a traced path ends, mirroring the packet engine's outcomes.
  enum class Terminal {
    kDelivered,   ///< reached the destination host
    kNoRoute,     ///< a switch had no usable next hop
    kTtlExpired,  ///< transient loop consumed the TTL
    kConsumed,    ///< dst matched a router id (never for host probes)
    kWrongHost,   ///< forwarded into a non-destination host
  };

  /// A maximal run of sends whose every hop falls inside one
  /// constant-routing regime; hop enqueue fields are offsets from the
  /// send time, so the record covers the whole [k_begin, k_end) range.
  struct Batch {
    std::uint64_t k_begin = 0;
    std::uint64_t k_end = 0;
    std::vector<Hop> hops;
    Terminal terminal = Terminal::kNoRoute;
  };

  /// A send whose path straddles a routing change: hops[0..final_count)
  /// were decided by past regimes and are final; the rest is the
  /// optimistic continuation under the newest state, truncated and
  /// re-traced whenever the routing state changes again. Lives in an
  /// arena (hop buffers recycle their capacity) and on exactly one of the
  /// open_/resolved_ intrusive lists.
  struct Pending {
    std::uint64_t k = 0;
    std::vector<Hop> hops;
    std::size_t final_count = 0;
    Terminal terminal = Terminal::kNoRoute;
    core::ListLink link;
  };

  struct Transition {
    sim::Time at = 0;
    bool up = true;
  };

  void attach_hooks();
  void mark_routing_dirty();
  void process_change();
  sim::Time send_time(std::uint64_t k) const;
  std::uint64_t first_k_at_or_after(sim::Time t) const;
  sim::Time hop_flight(const net::Link& link) const;
  /// Traces the forwarding walk from `node` (a packet arriving there at
  /// `at` with `ttl`), appending hops. Pure read of the live routing
  /// state.
  Terminal trace_from(const net::Node* node, sim::Time at, int ttl,
                      std::vector<Hop>& hops);
  /// Traces the full path from the source host; offsets when base == 0.
  Terminal trace_path(sim::Time base, std::vector<Hop>& hops);
  void retrace_regime();
  /// Decision horizon of the current regime path: a send at t is fully
  /// decided once now > t + off_dec (all forwarding and drop decisions
  /// behind it).
  sim::Time regime_decision_offset() const;
  void partition_sends(sim::Time now);
  void advance_pending(std::uint32_t pending_idx, sim::Time now);
  void sync_flow_path();
  bool channel_clean(std::uint32_t channel) const;
  bool hop_open(std::uint32_t channel, sim::Time enqueue,
                sim::Time flight) const;
  bool send_delivered(const std::vector<Hop>& hops, sim::Time base) const;
  void emit_arrival(std::uint64_t k, sim::Time at);

  net::Network& network_;
  sim::Simulator& sim_;
  const net::Host& src_;
  const net::Host& dst_;
  Options options_;
  net::Packet probe_;  ///< header fields the ECMP hash consumes
  std::uint32_t wire_bytes_ = 0;
  std::uint64_t total_sends_ = 0;

  /// Per-channel availability: initial state at attach + every transition
  /// since, indexed by link id * 2 + direction.
  std::vector<std::vector<Transition>> channel_log_;
  std::vector<char> channel_init_up_;

  bool routing_dirty_ = false;
  std::vector<Hop> regime_hops_;  ///< enqueue = offset from send time
  Terminal regime_terminal_ = Terminal::kNoRoute;
  std::uint64_t next_k_ = 0;  ///< first send not yet batched or pended

  std::vector<Batch> batches_;
  core::Arena<Pending> pending_arena_;
  core::IntrusiveList<Pending, &Pending::link> open_;
  core::IntrusiveList<Pending, &Pending::link> resolved_;
  std::vector<std::uint32_t> pending_scratch_;  ///< open-list snapshot
  std::vector<UdpSink::Arrival> arrivals_;
  bool finalized_ = false;

  std::unique_ptr<FluidFlowTable> flows_;
  std::uint32_t probe_flow_ = 0;

  Stats stats_;
};

/// Per-flow max-min fair rate shares over directed link channels.
///
/// Progressive water-filling: every unfrozen flow's rate rises uniformly;
/// a flow freezes when it hits its demand or when a channel on its path
/// saturates. Channels are identified as link id * 2 + direction, matching
/// FluidProbe's channel keys.
///
/// Built for 10^5..10^6 concurrent flows. Flows and their path nodes live
/// in core::Arena slabs (FlowId is a generation-checked handle; add/remove
/// never allocate in steady state because released slots recycle their
/// path chains). Each channel keeps an intrusive membership list of the
/// path nodes crossing it, giving solve() the channel<->flow bipartite
/// graph for free. Mutations mark only the channels they touch, and
/// solve() recomputes only the *connected component* of dirty channels:
/// a BFS over membership collects the affected flows (every flow crossing
/// a component channel is itself in the component, so the component owns
/// those channels outright and can be water-filled in isolation — max-min
/// rates of disjoint components are independent). Per-channel scratch
/// (residual capacity, unfrozen-flow count) lives in flat arrays stamped
/// with a solve epoch, the routing/lsgraph SpfArrays idiom, so nothing is
/// ever cleared O(channels).
class FluidFlowTable {
 public:
  /// Arena handle: slot index | generation << 24. Stale handles are
  /// detected, not aliased (remove_flow of a stale id is a no-op,
  /// rate_of of a stale id is 0 — a removed flow's rate).
  using FlowId = std::uint32_t;
  static constexpr double kUnbounded = std::numeric_limits<double>::max();

  /// `channel_count` = 2 * link count; `default_capacity_bps` seeds every
  /// channel (override per channel with set_capacity).
  FluidFlowTable(std::size_t channel_count, double default_capacity_bps);

  void set_capacity(std::uint32_t channel, double bps);
  double capacity_of(std::uint32_t channel) const {
    return capacity_.at(channel);
  }
  std::size_t channel_count() const { return capacity_.size(); }

  /// Registers a flow crossing `path` (channel keys, in order) with an
  /// application demand ceiling. An empty path means "currently unrouted":
  /// the flow's rate is 0 until set_path gives it one.
  FlowId add_flow(std::vector<std::uint32_t> path,
                  double demand_bps = kUnbounded);
  void remove_flow(FlowId id);
  void set_path(FlowId id, std::vector<std::uint32_t> path);
  void set_demand(FlowId id, double demand_bps);

  /// The flow's max-min rate in bps; re-solves if the table is dirty.
  double rate_of(FlowId id);

  /// Solves now if dirty (otherwise a no-op), making last_solved() current
  /// without naming a flow. Rate-integrating consumers call this after a
  /// batch of mutations, then re-clock exactly the flows it recomputed.
  void refresh() {
    if (dirty_) solve();
  }

  /// The dense slot index under a FlowId (stable for the flow's lifetime,
  /// recycled after removal) — lets consumers keep side tables in flat
  /// arrays instead of hash maps.
  static std::uint32_t slot_of(FlowId id) { return id & core::kHandleIndexMask; }

  bool is_live(FlowId id) const { return flows_.contains(id); }
  std::size_t flow_count() const { return flows_.live_count(); }
  std::uint64_t solve_count() const { return solves_; }
  /// Cumulative flows water-filled across all solves — the incrementality
  /// metric: for mutations confined to one component this grows by that
  /// component's size, not by flow_count().
  std::uint64_t solved_flow_visits() const { return solved_flow_visits_; }
  /// Flows touched by the most recent solve.
  std::size_t last_solve_flows() const { return last_solve_flows_; }
  /// Flow handles whose rate was recomputed by the most recent solve (in
  /// component-discovery order). Consumers integrating rate over time
  /// (fluid FCT) re-clock exactly these flows after a query.
  const std::vector<FlowId>& last_solved() const { return last_solved_; }

 private:
  /// One hop of a flow's path: a link in the flow's own chain and a
  /// member of its channel's intrusive list.
  struct PathNode {
    std::uint32_t channel = 0;
    std::uint32_t flow = core::kNilIndex;  ///< owning flow's slot index
    std::uint32_t next_in_path = core::kNilIndex;
    core::ListLink in_channel;
  };
  struct Flow {
    std::uint32_t first_node = core::kNilIndex;
    double demand = kUnbounded;
    double rate = 0.0;
    std::uint64_t seen_epoch = 0;  ///< component-membership stamp
    bool frozen = false;           ///< water-fill scratch
  };
  using MemberList = core::IntrusiveList<PathNode, &PathNode::in_channel>;

  void mark_channel_dirty(std::uint32_t channel);
  void mark_path_dirty(const Flow& flow);
  void link_path(std::uint32_t flow_idx, Flow& flow,
                 const std::vector<std::uint32_t>& path);
  void unlink_path(Flow& flow);
  bool path_equals(const Flow& flow,
                   const std::vector<std::uint32_t>& path) const;
  void touch_channel(std::uint32_t channel);
  /// One solve() per refresh; it water-fills each dirty connected
  /// component independently so disjoint mutation batches cost the sum of
  /// their component sizes, not the square of the union.
  void solve();
  void solve_component(std::uint32_t seed);

  core::Arena<Flow> flows_;
  core::Arena<PathNode> nodes_;
  std::vector<double> capacity_;
  std::vector<MemberList> members_;  ///< per-channel flow membership
  /// Epoch-stamped scratch: valid for channel c iff stamp_[c] == epoch_.
  std::vector<std::uint64_t> stamp_;
  std::vector<double> residual_;
  std::vector<std::uint32_t> load_;
  /// Channels touched since the last solve (flag deduplicates).
  std::vector<char> channel_dirty_;
  std::vector<std::uint32_t> dirty_channels_;
  /// Solve scratch, member-owned so steady-state solves never allocate.
  std::vector<std::uint32_t> comp_flows_;
  std::vector<std::uint32_t> channel_stack_;
  std::vector<std::uint32_t> unfrozen_;
  std::vector<std::uint32_t> still_;
  std::vector<FlowId> last_solved_;
  std::uint64_t epoch_ = 0;
  bool dirty_ = false;
  std::uint64_t solves_ = 0;
  std::uint64_t solved_flow_visits_ = 0;
  std::size_t last_solve_flows_ = 0;
};

}  // namespace f2t::transport
