#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "transport/udp_app.hpp"

namespace f2t::transport {

/// Flow-level (fluid) transport: the simulation core's fast fidelity.
///
/// Packet-level runs cost one event per packet per hop — O(10^6) events
/// for a single 3-second probe flow, independent of what is actually being
/// measured. But the paper's headline metric, the connectivity-loss
/// window, is a property of *routing-state transitions*: a CBR probe's
/// packet k is delivered iff, at each hop of the path the routing state
/// assigns it, the traversed channel stays up across its serialization +
/// propagation window. The fluid model therefore simulates no probe
/// packets at all. It watches the routing state (FIB generations and
/// detected-port epochs) and the physical channel transitions, re-traces
/// the probe's path only when the routing state changes, and derives the
/// delivered set in closed form per constant-routing regime.
///
/// Exactness: under oracle detection and a packet-free control plane
/// (central), the fluid arrival set — times, sequence numbers, one-way
/// delays — is *identical* to the packet-level run's, because the probe is
/// the only packet stream and every quantity the packet engine computes
/// per event is piecewise-affine in the send time. With an LSA-flooding
/// control plane (OSPF) the windows agree whenever no control packet
/// shares a busy serializer with a boundary probe packet (control packets
/// are µs-scale and flood only during the outage); the fidelity property
/// suite pins the exact-equality cases. Not modelled (construction
/// refuses): gray faults (per-packet RNG needs packets), probe/BFD
/// detection (hello timing would interleave with probe serialization),
/// and TCP (window dynamics are inherently per-packet).
class FluidFlowTable;

class FluidProbe {
 public:
  struct Options {
    std::uint16_t sport = 9000;
    std::uint16_t dport = 9000;
    std::uint32_t payload_bytes = net::kMss;
    sim::Time interval = sim::micros(100);
    sim::Time start = 0;
    /// Exclusive send cutoff. Must be finite: the fluid model enumerates
    /// the send set arithmetically.
    sim::Time stop = 0;
  };

  struct Stats {
    std::uint64_t routing_changes = 0;  ///< coalesced change-processor runs
    std::uint64_t retraces = 0;         ///< path traces performed
    std::uint64_t transitions = 0;      ///< channel transitions logged
    std::uint64_t batches = 0;          ///< constant-regime send batches
    std::uint64_t straddlers = 0;       ///< sends split across regimes
    /// Traces that ran out of TTL: the routing state held a forwarding
    /// loop on the probe's path. Loop regimes are the one place the fluid
    /// model is *not* packet-exact — the packet engine buffers looping
    /// packets in saturated queues and drains survivors at reconvergence,
    /// which is inherently per-packet behaviour (see the fidelity
    /// property suite's loop carve-out).
    std::uint64_t loop_traces = 0;
  };

  /// Attaches to every switch FIB, detected-port handler and link channel
  /// of `network`. Attach *after* control-plane convergence (warm-start
  /// installs would only cause idle re-traces) and *before* faults are
  /// injected (channel logs must be complete).
  FluidProbe(net::Network& network, const net::Host& src,
             const net::Host& dst, const Options& options);
  ~FluidProbe();

  FluidProbe(const FluidProbe&) = delete;
  FluidProbe& operator=(const FluidProbe&) = delete;

  /// Closes the final routing regime and evaluates every send against the
  /// recorded channel availability windows. Call once, after the
  /// simulation ran to its horizon.
  void finalize();

  /// Delivered probe packets, sorted by (arrival time, sequence number);
  /// shape-compatible with UdpSink::arrivals(). Valid after finalize().
  const std::vector<UdpSink::Arrival>& arrivals() const { return arrivals_; }

  std::uint64_t packets_sent() const { return total_sends_; }

  const Stats& stats() const { return stats_; }

  /// The max-min rate table the probe registers its live path with (one
  /// flow here; shared when several fluid workloads run on one network).
  FluidFlowTable& flows() { return *flows_; }

  /// The probe flow's current max-min rate share in bits per second.
  double probe_rate_bps();

 private:
  /// One resolved hop of a send's path. `enqueue` is absolute in pending
  /// records and send-relative in regime batches.
  struct Hop {
    std::uint32_t channel = 0;  ///< link id * 2 + direction
    sim::Time enqueue = 0;
    sim::Time flight = 0;  ///< serialization + propagation
    net::NodeId to = net::kInvalidNode;
    std::int16_t ttl_at_to = 0;
  };

  /// Where a traced path ends, mirroring the packet engine's outcomes.
  enum class Terminal {
    kDelivered,   ///< reached the destination host
    kNoRoute,     ///< a switch had no usable next hop
    kTtlExpired,  ///< transient loop consumed the TTL
    kConsumed,    ///< dst matched a router id (never for host probes)
    kWrongHost,   ///< forwarded into a non-destination host
  };

  /// A maximal run of sends whose every hop falls inside one
  /// constant-routing regime; hop enqueue fields are offsets from the
  /// send time, so the record covers the whole [k_begin, k_end) range.
  struct Batch {
    std::uint64_t k_begin = 0;
    std::uint64_t k_end = 0;
    std::vector<Hop> hops;
    Terminal terminal = Terminal::kNoRoute;
  };

  /// A send whose path straddles a routing change: hops[0..final_count)
  /// were decided by past regimes and are final; the rest is the
  /// optimistic continuation under the newest state, truncated and
  /// re-traced whenever the routing state changes again.
  struct Pending {
    std::uint64_t k = 0;
    std::vector<Hop> hops;
    std::size_t final_count = 0;
    Terminal terminal = Terminal::kNoRoute;
  };

  struct Transition {
    sim::Time at = 0;
    bool up = true;
  };

  void attach_hooks();
  void mark_routing_dirty();
  void process_change();
  sim::Time send_time(std::uint64_t k) const;
  std::uint64_t first_k_at_or_after(sim::Time t) const;
  sim::Time hop_flight(const net::Link& link) const;
  /// Traces the forwarding walk from `node` (a packet arriving there at
  /// `at` with `ttl`), appending hops. Pure read of the live routing
  /// state.
  Terminal trace_from(const net::Node* node, sim::Time at, int ttl,
                      std::vector<Hop>& hops);
  /// Traces the full path from the source host; offsets when base == 0.
  Terminal trace_path(sim::Time base, std::vector<Hop>& hops);
  void retrace_regime();
  /// Decision horizon of the current regime path: a send at t is fully
  /// decided once now > t + off_dec (all forwarding and drop decisions
  /// behind it).
  sim::Time regime_decision_offset() const;
  void partition_sends(sim::Time now);
  void advance_pending(Pending& p, sim::Time now);
  void sync_flow_path();
  bool channel_clean(std::uint32_t channel) const;
  bool hop_open(std::uint32_t channel, sim::Time enqueue,
                sim::Time flight) const;
  bool send_delivered(const std::vector<Hop>& hops, sim::Time base) const;
  void emit_arrival(std::uint64_t k, sim::Time at);

  net::Network& network_;
  sim::Simulator& sim_;
  const net::Host& src_;
  const net::Host& dst_;
  Options options_;
  net::Packet probe_;  ///< header fields the ECMP hash consumes
  std::uint32_t wire_bytes_ = 0;
  std::uint64_t total_sends_ = 0;

  /// Per-channel availability: initial state at attach + every transition
  /// since, indexed by link id * 2 + direction.
  std::vector<std::vector<Transition>> channel_log_;
  std::vector<char> channel_init_up_;

  bool routing_dirty_ = false;
  std::vector<Hop> regime_hops_;  ///< enqueue = offset from send time
  Terminal regime_terminal_ = Terminal::kNoRoute;
  std::uint64_t next_k_ = 0;  ///< first send not yet batched or pended

  std::vector<Batch> batches_;
  std::vector<Pending> pendings_;
  std::vector<Pending> resolved_;  ///< fully decided straddlers
  std::vector<UdpSink::Arrival> arrivals_;
  bool finalized_ = false;

  std::unique_ptr<FluidFlowTable> flows_;
  std::uint32_t probe_flow_ = 0;

  Stats stats_;
};

/// Per-flow max-min fair rate shares over directed link channels.
///
/// Progressive water-filling: every unfrozen flow's rate rises uniformly;
/// a flow freezes when it hits its demand or when a channel on its path
/// saturates. Channels are identified as link id * 2 + direction, matching
/// FluidProbe's channel keys. Solves are incremental in the epoch-stamped
/// flat-array style of routing/lsgraph: per-channel scratch (residual
/// capacity, unfrozen-flow count) lives in flat arrays stamped with a
/// solve epoch, so a solve touches only the channels actually crossed by
/// flows — never O(all channels) — and add/remove/set_path just mark the
/// table dirty for the next rates() query.
class FluidFlowTable {
 public:
  using FlowId = std::uint32_t;
  static constexpr double kUnbounded = std::numeric_limits<double>::max();

  /// `channel_count` = 2 * link count; `default_capacity_bps` seeds every
  /// channel (override per channel with set_capacity).
  FluidFlowTable(std::size_t channel_count, double default_capacity_bps);

  void set_capacity(std::uint32_t channel, double bps);

  /// Registers a flow crossing `path` (channel keys, in order) with an
  /// application demand ceiling. An empty path means "currently unrouted":
  /// the flow's rate is 0 until set_path gives it one.
  FlowId add_flow(std::vector<std::uint32_t> path,
                  double demand_bps = kUnbounded);
  void remove_flow(FlowId id);
  void set_path(FlowId id, std::vector<std::uint32_t> path);
  void set_demand(FlowId id, double demand_bps);

  /// The flow's max-min rate in bps; re-solves if the table is dirty.
  double rate_of(FlowId id);

  std::size_t flow_count() const { return live_flows_; }
  std::uint64_t solve_count() const { return solves_; }

 private:
  struct Flow {
    std::vector<std::uint32_t> path;
    double demand = kUnbounded;
    double rate = 0.0;
    bool live = false;
    bool frozen = false;
  };

  void solve();
  double& residual(std::uint32_t channel);
  std::uint32_t& load(std::uint32_t channel);

  std::vector<Flow> flows_;
  std::vector<double> capacity_;
  /// Epoch-stamped scratch: valid for channel c iff stamp_[c] == epoch_.
  std::vector<std::uint64_t> stamp_;
  std::vector<double> residual_;
  std::vector<std::uint32_t> load_;
  std::uint64_t epoch_ = 0;
  std::size_t live_flows_ = 0;
  bool dirty_ = false;
  std::uint64_t solves_ = 0;
};

}  // namespace f2t::transport
