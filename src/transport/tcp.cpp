#include "transport/tcp.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace f2t::transport {

TcpEndpoint::TcpEndpoint(HostStack& stack, net::Ipv4Addr remote,
                         std::uint16_t remote_port, std::uint16_t local_port,
                         const TcpConfig& config)
    : stack_(stack),
      remote_(remote),
      remote_port_(remote_port),
      local_port_(local_port),
      config_(config),
      cwnd_(std::uint64_t{config.initial_cwnd_segments} * config.mss),
      ssthresh_(~std::uint64_t{0}),
      rto_(config.initial_rto) {
  stack_.register_tcp(remote_, remote_port_, local_port_, this);
}

TcpEndpoint::~TcpEndpoint() {
  disarm_rto();
  if (delack_timer_ != sim::kInvalidEventId) {
    stack_.simulator().cancel(delack_timer_);
  }
  stack_.unregister_tcp(remote_, remote_port_, local_port_);
}

void TcpEndpoint::write(std::uint64_t bytes) {
  write_total_ += bytes;
  try_send();
}

void TcpEndpoint::try_send() {
  while (snd_nxt_ < write_total_ && flight() < cwnd_) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.mss, write_total_ - snd_nxt_));
    // Anything below the recovery watermark is a go-back-N retransmission.
    send_segment(snd_nxt_, len, /*retransmission=*/snd_nxt_ < recover_point_);
    snd_nxt_ += len;
  }
}

void TcpEndpoint::send_segment(std::uint64_t seq, std::uint32_t len,
                               bool retransmission) {
  // Data segments piggyback the cumulative ACK.
  unacked_segments_ = 0;
  if (delack_timer_ != sim::kInvalidEventId) {
    stack_.simulator().cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEventId;
  }
  net::Packet packet;
  packet.dst = remote_;
  packet.proto = net::Protocol::kTcp;
  packet.sport = local_port_;
  packet.dport = remote_port_;
  packet.size_bytes = len + net::kTcpHeaderBytes;
  packet.tcp.seq = seq;
  packet.tcp.ack = rcv_nxt_;
  packet.tcp.payload_bytes = len;
  packet.tcp.flags = net::TcpFlags::kAck;
  ++stats_.segments_sent;
  if (retransmission) {
    ++stats_.segments_retransmitted;
    // Karn's rule: an in-progress RTT sample is poisoned by retransmission.
    sample_pending_ = false;
  } else if (!sample_pending_) {
    sample_pending_ = true;
    sample_end_seq_ = seq + len;
    sample_sent_at_ = stack_.simulator().now();
  }
  if (rto_timer_ == sim::kInvalidEventId) arm_rto();
  stack_.send(std::move(packet));
}

void TcpEndpoint::send_ack() {
  unacked_segments_ = 0;
  if (delack_timer_ != sim::kInvalidEventId) {
    stack_.simulator().cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEventId;
  }
  net::Packet packet;
  packet.dst = remote_;
  packet.proto = net::Protocol::kTcp;
  packet.sport = local_port_;
  packet.dport = remote_port_;
  packet.size_bytes = net::kTcpHeaderBytes;
  packet.tcp.seq = snd_nxt_;
  packet.tcp.ack = rcv_nxt_;
  packet.tcp.payload_bytes = 0;
  packet.tcp.flags = net::TcpFlags::kAck;
  if (echo_ce_) packet.tcp.flags |= net::TcpFlags::kEce;
  stack_.send(std::move(packet));
}

void TcpEndpoint::on_packet(const net::Packet& packet) {
  if (packet.tcp.flags & net::TcpFlags::kAck) {
    handle_ack(packet.tcp.ack,
               (packet.tcp.flags & net::TcpFlags::kEce) != 0);
  }
  if (packet.tcp.payload_bytes > 0) {
    handle_data(packet.tcp.seq, packet.tcp.payload_bytes, packet.ecn_ce);
  }
}

void TcpEndpoint::dctcp_on_ack(std::uint64_t newly, bool ece) {
  dctcp_acked_ += newly;
  if (ece) dctcp_marked_ += newly;
  if (snd_una_ < dctcp_window_end_) return;  // window still in flight
  // One observation window completed: fold the marked fraction into
  // alpha and apply the proportional cut (DCTCP's control law).
  if (dctcp_acked_ > 0) {
    const double fraction = static_cast<double>(dctcp_marked_) /
                            static_cast<double>(dctcp_acked_);
    dctcp_alpha_ = (1.0 - config_.dctcp_g) * dctcp_alpha_ +
                   config_.dctcp_g * fraction;
    if (dctcp_marked_ > 0) {
      const auto reduced = static_cast<std::uint64_t>(
          static_cast<double>(cwnd_) * (1.0 - dctcp_alpha_ / 2.0));
      cwnd_ = std::max<std::uint64_t>(reduced, config_.mss);
      ssthresh_ = cwnd_;
    }
  }
  dctcp_acked_ = 0;
  dctcp_marked_ = 0;
  dctcp_window_end_ = snd_nxt_;
}

void TcpEndpoint::handle_ack(std::uint64_t ack, bool ece) {
  ++stats_.acks_received;
  if (ack > snd_nxt_) ack = snd_nxt_;  // never ack unsent data
  if (ack > snd_una_) {
    const std::uint64_t newly = ack - snd_una_;
    snd_una_ = ack;
    stats_.bytes_acked = snd_una_;
    dupacks_ = 0;
    // RTT sample (only if untouched by retransmission).
    if (sample_pending_ && ack >= sample_end_seq_) {
      sample_pending_ = false;
      take_rtt_sample(stack_.simulator().now() - sample_sent_at_);
    }
    // Forward progress clears RTO backoff (as in Linux): recompute from
    // the smoothed estimate.
    rto_ = rtt_seeded_
               ? std::clamp(srtt_ + 4 * rttvar_, config_.min_rto,
                            config_.max_rto)
               : config_.initial_rto;
    if (config_.dctcp) dctcp_on_ack(newly, ece);
    if (in_fast_recovery_) {
      if (snd_una_ >= recover_point_) {
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;  // deflate
      } else {
        // NewReno partial ACK: the next hole is lost too; retransmit it
        // immediately instead of waiting for three more dupacks.
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(config_.mss, write_total_ - snd_una_));
        if (len > 0) send_segment(snd_una_, len, /*retransmission=*/true);
      }
    } else if (flight() + newly + config_.mss >= cwnd_) {
      // Congestion window validation (RFC 2861): only grow when the app
      // actually filled the window. An app-limited paced flow keeps a
      // small window, which is what makes the paper's post-failure RTO
      // behaviour (no dupack feedback, 200 ms stall) reproduce.
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min<std::uint64_t>(newly, config_.mss);  // slow start
      } else {
        // Congestion avoidance: ~one MSS per cwnd of acked data.
        cwnd_ += std::max<std::uint64_t>(
            1, (std::uint64_t{config_.mss} * config_.mss) / cwnd_);
      }
    }
    if (snd_una_ == snd_nxt_) {
      disarm_rto();
    } else {
      arm_rto();  // restart for remaining flight
    }
    if (on_acked_) on_acked_(snd_una_);
    try_send();
    return;
  }
  // Duplicate ACK (only meaningful while data is in flight).
  if (snd_nxt_ > snd_una_) {
    ++dupacks_;
    if (!in_fast_recovery_ && dupacks_ == config_.dupack_threshold) {
      ++stats_.fast_retransmits;
      ssthresh_ = std::max<std::uint64_t>(flight() / 2,
                                          2 * std::uint64_t{config_.mss});
      recover_point_ = snd_nxt_;  // NewReno recovery ends here
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(config_.mss, write_total_ - snd_una_));
      send_segment(snd_una_, len, /*retransmission=*/true);
      cwnd_ = ssthresh_ + 3 * std::uint64_t{config_.mss};
      in_fast_recovery_ = true;
    } else if (in_fast_recovery_) {
      cwnd_ += config_.mss;  // window inflation per extra dupack
      try_send();
    }
  }
}

void TcpEndpoint::handle_data(std::uint64_t seq, std::uint32_t len, bool ce) {
  if (config_.dctcp) echo_ce_ = ce;  // per-packet echo, DCTCP style
  const std::uint64_t end = seq + len;
  bool in_order = false;
  if (end > rcv_nxt_) {
    if (seq <= rcv_nxt_) {
      in_order = true;
      rcv_nxt_ = end;
      // Drain any contiguous out-of-order blocks.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= rcv_nxt_) {
        rcv_nxt_ = std::max(rcv_nxt_, it->second);
        it = ooo_.erase(it);
      }
    } else {
      auto [it, inserted] = ooo_.try_emplace(seq, end);
      if (!inserted) it->second = std::max(it->second, end);
    }
  }
  stats_.bytes_delivered = rcv_nxt_;
  if (config_.delayed_ack <= 0 || !in_order || !ooo_.empty()) {
    // Immediate ACK: delack disabled, or this is dupack/gap feedback.
    send_ack();
  } else if (++unacked_segments_ >= 2) {
    send_ack();
  } else if (delack_timer_ == sim::kInvalidEventId) {
    delack_timer_ = stack_.simulator().after(config_.delayed_ack, [this] {
      delack_timer_ = sim::kInvalidEventId;
      if (unacked_segments_ > 0) send_ack();
    });
  }
  if (on_delivered_) on_delivered_(rcv_nxt_);
}

void TcpEndpoint::take_rtt_sample(sim::Time sample) {
  if (!rtt_seeded_) {
    rtt_seeded_ = true;
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const sim::Time err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.min_rto, config_.max_rto);
}

void TcpEndpoint::arm_rto() {
  disarm_rto();
  rto_timer_ = stack_.simulator().after(rto_, [this] {
    rto_timer_ = sim::kInvalidEventId;
    on_rto();
  });
}

void TcpEndpoint::disarm_rto() {
  if (rto_timer_ != sim::kInvalidEventId) {
    stack_.simulator().cancel(rto_timer_);
    rto_timer_ = sim::kInvalidEventId;
  }
}

void TcpEndpoint::on_rto() {
  if (snd_una_ == snd_nxt_) return;  // nothing outstanding
  ++stats_.rto_fires;
  F2T_LOG(stack_.simulator().logger(), sim::LogLevel::kDebug,
          stack_.simulator().now(),
          stack_.host().name() << " TCP RTO, rto=" << sim::format_time(rto_));
  // Exponential backoff and go-back-N loss response: everything beyond
  // snd_una is presumed lost and will be resent as cwnd allows (the
  // receiver's out-of-order buffer makes duplicates cheap).
  rto_ = std::min(rto_ * 2, config_.max_rto);
  ssthresh_ =
      std::max<std::uint64_t>(flight() / 2, 2 * std::uint64_t{config_.mss});
  cwnd_ = config_.mss;
  in_fast_recovery_ = false;
  dupacks_ = 0;
  recover_point_ = std::max(recover_point_, snd_nxt_);
  snd_nxt_ = snd_una_;
  sample_pending_ = false;
  try_send();
  arm_rto();
}

TcpConnection::TcpConnection(HostStack& a, HostStack& b, std::uint16_t a_port,
                             std::uint16_t b_port, const TcpConfig& config)
    : a_(std::make_unique<TcpEndpoint>(a, b.host().addr(), b_port, a_port,
                                       config)),
      b_(std::make_unique<TcpEndpoint>(b, a.host().addr(), a_port, b_port,
                                       config)) {}

std::unique_ptr<TcpConnection> TcpConnection::open(HostStack& a, HostStack& b,
                                                   const TcpConfig& config) {
  const std::uint16_t a_port = a.alloc_port();
  const std::uint16_t b_port = b.alloc_port();
  return std::make_unique<TcpConnection>(a, b, a_port, b_port, config);
}

}  // namespace f2t::transport
