#include "routing/fib.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::routing {

const Route* Fib::Slot::best() const {
  const Route* best = nullptr;
  for (const Route& r : by_source) {
    if (best == nullptr ||
        static_cast<int>(r.source) < static_cast<int>(best->source)) {
      best = &r;
    }
  }
  return best;
}

Route* Fib::Slot::find(RouteSource source) {
  for (Route& r : by_source) {
    if (r.source == source) return &r;
  }
  return nullptr;
}

void Fib::install(Route route) {
  if (route.next_hops.empty()) {
    throw std::invalid_argument("Fib::install: route without next hops: " +
                                route.prefix.str());
  }
  // Deterministic next-hop order so ECMP hashing is stable across runs.
  std::sort(route.next_hops.begin(), route.next_hops.end());
  Slot& slot = by_length_[static_cast<std::size_t>(route.prefix.length())]
                         [route.prefix.address().value()];
  if (Route* existing = slot.find(route.source)) {
    *existing = std::move(route);
  } else {
    slot.by_source.push_back(std::move(route));
    ++count_;
  }
}

void Fib::remove(const net::Prefix& prefix, RouteSource source) {
  auto& bucket = by_length_[static_cast<std::size_t>(prefix.length())];
  auto it = bucket.find(prefix.address().value());
  if (it == bucket.end()) return;
  auto& routes = it->second.by_source;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (routes[i].source == source) {
      routes.erase(routes.begin() + static_cast<std::ptrdiff_t>(i));
      --count_;
      break;
    }
  }
  if (routes.empty()) bucket.erase(it);
}

void Fib::clear_source(RouteSource source) {
  for (auto& bucket : by_length_) {
    for (auto it = bucket.begin(); it != bucket.end();) {
      auto& routes = it->second.by_source;
      for (std::size_t i = 0; i < routes.size(); ++i) {
        if (routes[i].source == source) {
          routes.erase(routes.begin() + static_cast<std::ptrdiff_t>(i));
          --count_;
          break;
        }
      }
      it = routes.empty() ? bucket.erase(it) : std::next(it);
    }
  }
}

void Fib::replace_source(RouteSource source, std::vector<Route> routes) {
  clear_source(source);
  for (Route& r : routes) {
    r.source = source;
    install(std::move(r));
  }
}

std::vector<NextHop> Fib::lookup(net::Ipv4Addr dst,
                                 const PortUpFn& port_up) const {
  for (int length = 32; length >= 0; --length) {
    const auto& bucket = by_length_[static_cast<std::size_t>(length)];
    if (bucket.empty()) continue;
    const std::uint32_t mask =
        length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
    const auto it = bucket.find(dst.value() & mask);
    if (it == bucket.end()) continue;
    const Route* route = it->second.best();
    if (route == nullptr) continue;
    std::vector<NextHop> usable;
    usable.reserve(route->next_hops.size());
    for (const NextHop& nh : route->next_hops) {
      if (!port_up || port_up(nh.port)) usable.push_back(nh);
    }
    if (!usable.empty()) return usable;
    // All next hops locally dead: fall through to the next-shorter prefix.
    // This single line is what makes the paper's pre-installed backup
    // statics take over instantly after failure detection.
  }
  return {};
}

std::optional<Route> Fib::find(const net::Prefix& prefix,
                               RouteSource source) const {
  const auto& bucket = by_length_[static_cast<std::size_t>(prefix.length())];
  const auto it = bucket.find(prefix.address().value());
  if (it == bucket.end()) return std::nullopt;
  for (const Route& r : it->second.by_source) {
    if (r.source == source) return r;
  }
  return std::nullopt;
}

std::vector<Route> Fib::dump() const {
  std::vector<Route> out;
  out.reserve(count_);
  for (const auto& bucket : by_length_) {
    for (const auto& [key, slot] : bucket) {
      for (const Route& r : slot.by_source) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(), [](const Route& a, const Route& b) {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    return static_cast<int>(a.source) < static_cast<int>(b.source);
  });
  return out;
}

}  // namespace f2t::routing
