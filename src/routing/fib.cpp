#include "routing/fib.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace f2t::routing {

Route* Fib::Slot::find(RouteSource source) {
  for (Route& r : by_source) {
    if (r.source == source) return &r;
  }
  return nullptr;
}

void Fib::Slot::recompute_best() {
  best_idx = 0;
  for (std::size_t i = 1; i < by_source.size(); ++i) {
    if (static_cast<int>(by_source[i].source) <
        static_cast<int>(by_source[best_idx].source)) {
      best_idx = i;
    }
  }
}

void Fib::install(Route route) {
  if (route.next_hops.empty()) {
    throw std::invalid_argument("Fib::install: route without next hops: " +
                                route.prefix.str());
  }
  // Deterministic next-hop order so ECMP hashing is stable across runs.
  std::sort(route.next_hops.begin(), route.next_hops.end());
  const auto length = static_cast<std::size_t>(route.prefix.length());
  Slot& slot = by_length_[length][route.prefix.address().value()];
  if (Route* existing = slot.find(route.source)) {
    *existing = std::move(route);
  } else {
    slot.by_source.push_back(std::move(route));
    slot.recompute_best();
    ++count_;
  }
  nonempty_lengths_ |= std::uint64_t{1} << length;
  ++generation_;
  notify_changed();
}

void Fib::remove(const net::Prefix& prefix, RouteSource source) {
  const auto length = static_cast<std::size_t>(prefix.length());
  auto& bucket = by_length_[length];
  auto it = bucket.find(prefix.address().value());
  if (it == bucket.end()) return;
  auto& routes = it->second.by_source;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (routes[i].source == source) {
      routes.erase(routes.begin() + static_cast<std::ptrdiff_t>(i));
      it->second.recompute_best();
      --count_;
      ++generation_;
      notify_changed();
      break;
    }
  }
  if (routes.empty()) {
    bucket.erase(it);
    if (bucket.empty()) nonempty_lengths_ &= ~(std::uint64_t{1} << length);
  }
}

void Fib::clear_source(RouteSource source) {
  for (std::size_t length = 0; length < by_length_.size(); ++length) {
    auto& bucket = by_length_[length];
    for (auto it = bucket.begin(); it != bucket.end();) {
      auto& routes = it->second.by_source;
      for (std::size_t i = 0; i < routes.size(); ++i) {
        if (routes[i].source == source) {
          routes.erase(routes.begin() + static_cast<std::ptrdiff_t>(i));
          it->second.recompute_best();
          --count_;
          ++generation_;
          notify_changed();
          break;
        }
      }
      it = routes.empty() ? bucket.erase(it) : std::next(it);
    }
    if (bucket.empty()) nonempty_lengths_ &= ~(std::uint64_t{1} << length);
  }
}

void Fib::replace_source(RouteSource source, std::vector<Route> routes) {
  clear_source(source);
  for (Route& r : routes) {
    r.source = source;
    install(std::move(r));
  }
}

std::size_t Fib::apply_source_delta(RouteSource source,
                                    std::vector<Route> routes) {
  std::size_t touched = 0;
  std::vector<net::Prefix> kept;
  kept.reserve(routes.size());
  for (Route& r : routes) {
    if (r.next_hops.empty()) {
      throw std::invalid_argument(
          "Fib::apply_source_delta: route without next hops: " +
          r.prefix.str());
    }
    r.source = source;
    // Canonical order up front so the equality check is meaningful
    // (install() would sort anyway).
    std::sort(r.next_hops.begin(), r.next_hops.end());
    kept.push_back(r.prefix);
    const auto length = static_cast<std::size_t>(r.prefix.length());
    auto& bucket = by_length_[length];
    if (const auto it = bucket.find(r.prefix.address().value());
        it != bucket.end()) {
      if (const Route* existing = it->second.find(source);
          existing != nullptr && *existing == r) {
        continue;  // identical entry already installed: zero writes
      }
    }
    install(std::move(r));
    ++touched;
  }
  // Removal pass: entries of `source` whose prefix the new set dropped.
  std::sort(kept.begin(), kept.end());
  std::vector<net::Prefix> stale;
  for (const auto& bucket : by_length_) {
    for (const auto& [key, slot] : bucket) {
      for (const Route& r : slot.by_source) {
        if (r.source != source) continue;
        if (!std::binary_search(kept.begin(), kept.end(), r.prefix)) {
          stale.push_back(r.prefix);
        }
      }
    }
  }
  for (const net::Prefix& prefix : stale) {
    remove(prefix, source);
    ++touched;
  }
  return touched;
}

template <typename PortPred, typename OutVec>
void Fib::lookup_walk(net::Ipv4Addr dst, const PortPred& up, OutVec& out,
                      RouteSource* source_out) const {
  std::uint64_t lengths = nonempty_lengths_;
  while (lengths != 0) {
    // Highest set bit = longest populated prefix length still unvisited.
    const int length = 63 - std::countl_zero(lengths);
    lengths &= ~(std::uint64_t{1} << length);
    const auto& bucket = by_length_[static_cast<std::size_t>(length)];
    const std::uint32_t mask =
        length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
    const auto it = bucket.find(dst.value() & mask);
    if (it == bucket.end()) continue;
    const Route* route = it->second.best();
    if (route == nullptr) continue;
    for (const NextHop& nh : route->next_hops) {
      if (up(nh.port)) out.push_back(nh);
    }
    if (!out.empty()) {
      if (source_out != nullptr) *source_out = route->source;
      return;
    }
    // All next hops locally dead: fall through to the next-shorter prefix.
    // This single line is what makes the paper's pre-installed backup
    // statics take over instantly after failure detection.
  }
}

std::vector<NextHop> Fib::lookup(net::Ipv4Addr dst,
                                 const PortUpFn& port_up) const {
  std::vector<NextHop> out;
  if (port_up) {
    lookup_walk(dst, port_up, out);
  } else {
    lookup_walk(dst, [](net::PortId) { return true; }, out);
  }
  return out;
}

void Fib::lookup_into(net::Ipv4Addr dst, PortStateView ports,
                      HopVec& out) const {
  lookup_walk(dst, ports, out);
}

void Fib::lookup_into(net::Ipv4Addr dst, PortStateView ports, HopVec& out,
                      RouteSource& source) const {
  lookup_walk(dst, ports, out, &source);
}

std::optional<Route> Fib::find(const net::Prefix& prefix,
                               RouteSource source) const {
  const auto& bucket = by_length_[static_cast<std::size_t>(prefix.length())];
  const auto it = bucket.find(prefix.address().value());
  if (it == bucket.end()) return std::nullopt;
  for (const Route& r : it->second.by_source) {
    if (r.source == source) return r;
  }
  return std::nullopt;
}

std::vector<Route> Fib::dump() const {
  std::vector<Route> out;
  out.reserve(count_);
  for (const auto& bucket : by_length_) {
    for (const auto& [key, slot] : bucket) {
      for (const Route& r : slot.by_source) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(), [](const Route& a, const Route& b) {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    return static_cast<int>(a.source) < static_cast<int>(b.source);
  });
  return out;
}

}  // namespace f2t::routing
