#include "routing/ecmp.hpp"

#include <stdexcept>

namespace f2t::routing {

namespace {
// SplitMix64 finalizer: cheap and well mixed for 64-bit lanes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t ecmp_hash(const net::Packet& packet, std::uint64_t salt) {
  std::uint64_t h = salt;
  h = mix64(h ^ packet.src.value());
  h = mix64(h ^ packet.dst.value());
  h = mix64(h ^ ((std::uint64_t{packet.sport} << 32) | packet.dport));
  h = mix64(h ^ static_cast<std::uint64_t>(packet.proto));
  return h;
}

std::size_t ecmp_select(const net::Packet& packet, std::uint64_t salt,
                        std::size_t n) {
  if (n == 0) throw std::invalid_argument("ecmp_select: empty next-hop set");
  // Lemire fixed-point reduction: scale the 64-bit hash into [0, n) with a
  // 128-bit multiply instead of `% n`. The modulo maps the hash space
  // unevenly onto any non-power-of-two member count — exactly the 3- and
  // 5-member sets left behind after a failure — and costs a hardware
  // divide on the forwarding fast path; the multiply does neither.
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(ecmp_hash(packet, salt)) *
       static_cast<unsigned __int128>(n)) >>
      64);
}

const NextHop& ecmp_pick(const net::Packet& packet, std::uint64_t salt,
                         const NextHop* hops, std::size_t n) {
  return hops[ecmp_select(packet, salt, n)];
}

}  // namespace f2t::routing
