#include "routing/lsdb.hpp"

#include <stdexcept>

namespace f2t::routing {

bool Lsdb::consider(LsaPtr lsa) {
  if (!lsa) throw std::invalid_argument("Lsdb::consider: null LSA");
  auto [it, inserted] = by_origin_.try_emplace(lsa->origin, lsa);
  if (inserted) {
    graph_.apply(it->second, nullptr);
    return true;
  }
  if (lsa->sequence > it->second->sequence) {
    const LsaPtr previous = std::move(it->second);
    it->second = std::move(lsa);
    graph_.apply(it->second, previous.get());
    return true;
  }
  return false;
}

const Lsa* Lsdb::find(net::Ipv4Addr origin) const {
  const auto it = by_origin_.find(origin);
  return it == by_origin_.end() ? nullptr : it->second.get();
}

std::uint64_t Lsdb::sequence_of(net::Ipv4Addr origin) const {
  const Lsa* lsa = find(origin);
  return lsa == nullptr ? 0 : lsa->sequence;
}

std::vector<LsaPtr> Lsdb::all() const {
  std::vector<LsaPtr> out;
  out.reserve(by_origin_.size());
  for (const auto& [origin, lsa] : by_origin_) out.push_back(lsa);
  return out;
}

}  // namespace f2t::routing
