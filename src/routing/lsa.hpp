#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"

namespace f2t::routing {

/// One router-to-router adjacency advertised in an LSA.
struct LsaLink {
  net::Ipv4Addr neighbor;  ///< peer router id
  int cost = 1;

  friend bool operator==(const LsaLink&, const LsaLink&) = default;
};

/// Router link-state advertisement (the model's equivalent of an OSPF
/// router-LSA plus redistributed prefixes).
///
/// `links` lists the adjacencies the origin currently believes up;
/// `prefixes` carries subnets the origin redistributes (a ToR advertises
/// its rack's /24, per the production addressing scheme in Fig 3(d)).
struct Lsa final : net::ControlPayload {
  net::Ipv4Addr origin;    ///< originating router id
  std::uint64_t sequence = 0;
  std::vector<LsaLink> links;
  std::vector<net::Prefix> prefixes;

  /// Approximate wire size used for transmission timing.
  std::uint32_t wire_size() const {
    return 64 + 12 * static_cast<std::uint32_t>(links.size()) +
           8 * static_cast<std::uint32_t>(prefixes.size());
  }

  std::string describe() const;
};

using LsaPtr = std::shared_ptr<const Lsa>;

}  // namespace f2t::routing
