#pragma once

#include <unordered_map>
#include <vector>

#include "routing/lsa.hpp"

namespace f2t::routing {

/// Link-state database: newest LSA per origin.
class Lsdb {
 public:
  /// Installs `lsa` if it is newer than what we hold for its origin.
  /// Returns true when the database changed (caller should re-flood and
  /// schedule SPF).
  bool consider(LsaPtr lsa);

  const Lsa* find(net::Ipv4Addr origin) const;

  /// Newest known sequence for an origin (0 if unknown).
  std::uint64_t sequence_of(net::Ipv4Addr origin) const;

  std::vector<LsaPtr> all() const;
  std::size_t size() const { return by_origin_.size(); }

 private:
  std::unordered_map<net::Ipv4Addr, LsaPtr> by_origin_;
};

}  // namespace f2t::routing
