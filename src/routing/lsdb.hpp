#pragma once

#include <unordered_map>
#include <vector>

#include "routing/lsa.hpp"
#include "routing/lsgraph.hpp"

namespace f2t::routing {

/// Link-state database: newest LSA per origin.
///
/// Alongside the LSA map the database maintains a `LinkStateGraph` — a
/// dense router graph with the two-way check precomputed per edge —
/// patched in place by every accepted LSA. SPF consumers (`compute_spf`,
/// `SpfSolver`, `lsdb_reachable`) run on the graph instead of rescanning
/// LSAs, and the graph's change log is what lets `SpfSolver` repair its
/// tree incrementally.
class Lsdb {
 public:
  /// Installs `lsa` if it is newer than what we hold for its origin.
  /// Returns true when the database changed (caller should re-flood and
  /// schedule SPF).
  bool consider(LsaPtr lsa);

  const Lsa* find(net::Ipv4Addr origin) const;

  /// Newest known sequence for an origin (0 if unknown).
  std::uint64_t sequence_of(net::Ipv4Addr origin) const;

  std::vector<LsaPtr> all() const;
  std::size_t size() const { return by_origin_.size(); }

  /// The dense graph kept in sync with the accepted LSAs.
  const LinkStateGraph& graph() const { return graph_; }

 private:
  std::unordered_map<net::Ipv4Addr, LsaPtr> by_origin_;
  LinkStateGraph graph_;
};

}  // namespace f2t::routing
