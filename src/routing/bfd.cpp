#include "routing/bfd.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/logging.hpp"

namespace f2t::routing {

namespace {

std::uint64_t key_of(net::NodeId node, net::PortId port) {
  return (std::uint64_t{node} << 16) | port;
}

}  // namespace

BfdManager::BfdManager(net::Network& network, const BfdConfig& config)
    : network_(network), config_(config) {}

void BfdManager::attach_all() {
  for (net::Link* link : network_.links()) create_sessions(*link);
  network_.add_link_hook([this](net::Link& link) { create_sessions(link); });
}

void BfdManager::create_sessions(net::Link& link) {
  auto* a = dynamic_cast<net::L3Switch*>(link.end_a().node);
  auto* b = dynamic_cast<net::L3Switch*>(link.end_b().node);
  if (a == nullptr || b == nullptr) return;  // host links carry no session
  create_session(*a, link.end_a().port);
  create_session(*b, link.end_b().port);
}

void BfdManager::create_session(net::L3Switch& sw, net::PortId port) {
  const std::uint64_t key = key_of(sw.id(), port);
  if (sessions_.count(key) != 0) return;
  auto session = std::make_unique<Session>();
  Session& s = *session;
  s.sw = &sw;
  s.port = port;
  s.index = next_index_++;
  s.penalty_at = network_.simulator().now();
  sessions_.emplace(key, std::move(session));

  if (!handler_installed_[sw.id()]) {
    handler_installed_[sw.id()] = true;
    sw.add_control_handler(
        [this, &sw](net::PortId in_port, const net::Packet& packet) {
          const auto hello =
              std::dynamic_pointer_cast<const BfdHello>(packet.control);
          if (!hello) return;
          on_hello(sw, in_port, *hello);
        });
  }

  // Deterministic per-session phase (no RNG draw: probing must not perturb
  // the seeded streams other components consume) spreads hello clocks so
  // sessions do not fire in lockstep.
  const sim::Time phase =
      (static_cast<sim::Time>(s.index) * 7919137) % config_.tx_interval;
  network_.simulator().after(phase, [this, &s] { send_hello(s); });
  arm_detect_timer(s);
}

void BfdManager::send_hello(Session& s) {
  auto hello = std::make_shared<BfdHello>();
  hello->i_hear_you = s.hearing;
  net::Packet packet;
  packet.src = s.sw->router_id();
  packet.dst = s.sw->port(s.port).peer_addr;
  packet.proto = net::Protocol::kRouting;
  packet.size_bytes = config_.hello_bytes;
  packet.control = std::move(hello);
  ++counters_.hellos_sent;
  // Hellos keep flowing while the session is down — that is how the
  // session comes back once the path heals.
  s.sw->send(s.port, std::move(packet));
  network_.simulator().after(config_.tx_interval,
                             [this, &s] { send_hello(s); });
}

void BfdManager::arm_detect_timer(Session& s) {
  auto& sim = network_.simulator();
  if (s.detect_timer != sim::kInvalidEventId) sim.cancel(s.detect_timer);
  s.detect_timer = sim.after(config_.detect_time(), [this, &s] {
    s.detect_timer = sim::kInvalidEventId;
    ++counters_.hellos_missed;
    s.hearing = false;
    update_session(s);
  });
}

void BfdManager::on_hello(net::L3Switch& sw, net::PortId port,
                          const BfdHello& hello) {
  Session* s = find(sw.id(), port);
  if (s == nullptr) return;  // hello on a port we never sessioned
  ++counters_.hellos_received;
  if (s->remote_hears_us && !hello.i_hear_you) {
    ++counters_.remote_down_signals;
  }
  s->remote_hears_us = hello.i_hear_you;
  s->hearing = true;
  arm_detect_timer(*s);
  update_session(*s);
}

void BfdManager::update_session(Session& s) {
  const bool now_up = s.hearing && s.remote_hears_us;
  if (now_up == s.up) return;
  s.up = now_up;
  if (now_up) {
    ++counters_.sessions_up;
    if (obs_hook_) obs_hook_(ObsEvent::kSessionUp, s.sw->id(), s.port);
  } else {
    ++counters_.sessions_down;
    if (obs_hook_) obs_hook_(ObsEvent::kSessionDown, s.sw->id(), s.port);
    add_flap_penalty(s);
  }
  F2T_LOG(network_.simulator().logger(), sim::LogLevel::kDebug,
          network_.simulator().now(),
          s.sw->name() << " BFD port " << s.port
                       << (now_up ? " up" : " down"));
  report(s, now_up);
}

void BfdManager::report(Session& s, bool up) {
  if (config_.dampening.enabled) {
    if (s.suppressed) return;  // transitions withheld until reuse
    if (decayed_penalty(s) >= config_.dampening.suppress_threshold) {
      s.suppressed = true;
      ++counters_.suppresses;
      if (obs_hook_) obs_hook_(ObsEvent::kSuppress, s.sw->id(), s.port);
      // A suppressed port is held detected-down regardless of session
      // state: a route through a flapping link is worse than no route.
      s.sw->set_port_detected(s.port, false);
      schedule_reuse_check(s);
      return;
    }
  }
  s.sw->set_port_detected(s.port, up);
}

double BfdManager::decayed_penalty(const Session& s) const {
  const sim::Time elapsed = network_.simulator().now() - s.penalty_at;
  if (elapsed <= 0 || s.penalty <= 0) return s.penalty;
  const double half_lives = static_cast<double>(elapsed) /
                            static_cast<double>(config_.dampening.half_life);
  return s.penalty * std::exp2(-half_lives);
}

void BfdManager::add_flap_penalty(Session& s) {
  if (!config_.dampening.enabled) return;
  s.penalty = std::min(decayed_penalty(s) + config_.dampening.penalty_per_flap,
                       config_.dampening.max_penalty);
  s.penalty_at = network_.simulator().now();
  ++counters_.flaps_recorded;
}

void BfdManager::schedule_reuse_check(Session& s) {
  // Exact decay horizon: penalty p reaches the reuse threshold after
  // half_life * log2(p / reuse). Recheck then; flaps accrued while
  // suppressed push the horizon out, so the check reschedules itself.
  const double p = decayed_penalty(s);
  const double reuse = config_.dampening.reuse_threshold;
  sim::Time wait = config_.tx_interval;
  if (p > reuse && reuse > 0) {
    wait = static_cast<sim::Time>(
        static_cast<double>(config_.dampening.half_life) *
        std::log2(p / reuse));
    wait = std::max(wait, config_.tx_interval);
  }
  network_.simulator().after(wait, [this, &s] {
    if (!s.suppressed) return;
    if (decayed_penalty(s) >= config_.dampening.reuse_threshold) {
      schedule_reuse_check(s);
      return;
    }
    s.suppressed = false;
    ++counters_.reuses;
    if (obs_hook_) obs_hook_(ObsEvent::kReuse, s.sw->id(), s.port);
    s.sw->set_port_detected(s.port, s.up);
  });
}

BfdManager::Session* BfdManager::find(net::NodeId node, net::PortId port) {
  const auto it = sessions_.find(key_of(node, port));
  return it == sessions_.end() ? nullptr : it->second.get();
}

const BfdManager::Session* BfdManager::find_or_throw(
    const net::L3Switch& sw, net::PortId port) const {
  const auto it = sessions_.find(key_of(sw.id(), port));
  if (it == sessions_.end()) {
    throw std::invalid_argument("no BFD session on " + sw.name() + " port " +
                                std::to_string(port));
  }
  return it->second.get();
}

bool BfdManager::session_up(const net::L3Switch& sw, net::PortId port) const {
  return find_or_throw(sw, port)->up;
}

bool BfdManager::session_suppressed(const net::L3Switch& sw,
                                    net::PortId port) const {
  return find_or_throw(sw, port)->suppressed;
}

double BfdManager::session_penalty(const net::L3Switch& sw,
                                   net::PortId port) const {
  return decayed_penalty(*find_or_throw(sw, port));
}

}  // namespace f2t::routing
