#include "routing/route.hpp"

#include <sstream>

namespace f2t::routing {

const char* route_source_name(RouteSource source) {
  switch (source) {
    case RouteSource::kConnected: return "connected";
    case RouteSource::kStatic: return "static";
    case RouteSource::kOspf: return "ospf";
  }
  return "?";
}

std::string Route::describe() const {
  std::ostringstream os;
  os << prefix.str() << " [" << route_source_name(source) << "] via";
  for (const auto& nh : next_hops) {
    os << " port" << nh.port << "(" << nh.via.str() << ")";
  }
  return os.str();
}

}  // namespace f2t::routing
