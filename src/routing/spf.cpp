#include "routing/spf.hpp"

#include <algorithm>

#include "routing/smallvec.hpp"

namespace f2t::routing {

namespace {

using FirstHopSet = SpfArrays::FirstHopSet;

void insert_first_hop(FirstHopSet& set, std::uint16_t index) {
  const auto it = std::lower_bound(set.begin(), set.end(), index);
  if (it != set.end() && *it == index) return;
  const auto pos = static_cast<std::size_t>(it - set.begin());
  set.push_back(index);
  std::rotate(set.begin() + pos, set.end() - 1, set.end());
}

/// Returns true when `into` gained at least one element.
bool union_first_hops(FirstHopSet& into, const FirstHopSet& from) {
  const std::size_t before = into.size();
  for (const std::uint16_t index : from) insert_first_hop(into, index);
  return into.size() != before;
}

/// The computing router's own attachment points, pre-sorted: neighbor
/// addresses ascending with the local ports reaching each one. First-hop
/// sets store indices into `neighbors`, so emission order matches the
/// former std::set<Ipv4Addr> iteration exactly.
struct SelfView {
  std::vector<net::Ipv4Addr> neighbors;
  std::vector<SmallVec<net::PortId, 4>> ports;  // parallel to neighbors

  int index_of(net::Ipv4Addr addr) const {
    const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), addr);
    if (it == neighbors.end() || *it != addr) return -1;
    return static_cast<int>(it - neighbors.begin());
  }
};

SelfView build_self_view(const std::vector<LocalAdjacency>& adjacency) {
  SelfView view;
  view.neighbors.reserve(adjacency.size());
  for (const LocalAdjacency& adj : adjacency) {
    view.neighbors.push_back(adj.neighbor);
  }
  std::sort(view.neighbors.begin(), view.neighbors.end());
  view.neighbors.erase(
      std::unique(view.neighbors.begin(), view.neighbors.end()),
      view.neighbors.end());
  view.ports.resize(view.neighbors.size());
  // Parallel links to the same neighbor keep their adjacency (port-id)
  // order, matching the former ports_of map construction.
  for (const LocalAdjacency& adj : adjacency) {
    view.ports[static_cast<std::size_t>(view.index_of(adj.neighbor))]
        .push_back(adj.port);
  }
  return view;
}

void heap_push(SpfArrays& a, int dist, std::uint32_t addr, RouterIndex node) {
  a.heap.push_back(SpfArrays::HeapItem{dist, addr, node});
  std::push_heap(a.heap.begin(), a.heap.end());
}

SpfArrays::HeapItem heap_pop(SpfArrays& a) {
  std::pop_heap(a.heap.begin(), a.heap.end());
  const SpfArrays::HeapItem item = a.heap.back();
  a.heap.pop_back();
  return item;
}

/// Full Dijkstra from `self` into `a` (starts a fresh epoch). Edge rules
/// mirror OSPF: from `self`, trust only live local adjacencies (the
/// SelfView gate) with costs from self's own LSA; from anyone else,
/// require the precomputed two-way flag.
void dijkstra_full(const LinkStateGraph& g, RouterIndex self,
                   const SelfView& view, SpfArrays& a) {
  a.begin(g.node_count());
  a.touch(self);
  a.dist[self] = 0;
  heap_push(a, 0, g.router_of(self).value(), self);
  while (!a.heap.empty()) {
    const SpfArrays::HeapItem item = heap_pop(a);
    const RouterIndex u = item.node;
    if (a.is_settled(u)) continue;
    a.settle(u);
    const int du = a.dist[u];
    for (const DenseEdge& e : g.edges(u)) {
      const RouterIndex v = e.to;
      int hop_index = -1;
      if (u == self) {
        hop_index = view.index_of(g.router_of(v));
        if (hop_index < 0) continue;
      } else if (!e.two_way) {
        continue;
      }
      const int nd = du + e.cost;
      FirstHopSet& hv = a.touch(v);
      if (nd < a.dist[v]) {
        a.dist[v] = nd;
        hv.clear();
      }
      if (nd == a.dist[v]) {
        if (u == self) {
          insert_first_hop(hv, static_cast<std::uint16_t>(hop_index));
        } else {
          union_first_hops(hv, a.hops[u]);
        }
        heap_push(a, nd, g.router_of(v).value(), v);
      }
    }
  }
}

/// Emits routes from the tree in `a`: one route per (reachable
/// destination, redistributed prefix), with the first-hop indices mapped
/// back to local ports. Always a full O(nodes) pass — which is what lets
/// prefix-only LSA churn reuse the cached tree untouched.
std::vector<Route> emit_routes(const LinkStateGraph& g, RouterIndex self,
                               const SelfView& view, const SpfArrays& a) {
  std::vector<Route> routes;
  const std::size_t n = g.node_count();
  for (RouterIndex i = 0; i < n; ++i) {
    if (i == self || !a.reached(i)) continue;
    const FirstHopSet& hv = a.hops[i];
    if (hv.empty()) continue;
    const Lsa* lsa = g.lsa_of(i);
    if (lsa == nullptr || lsa->prefixes.empty()) continue;
    std::vector<NextHop> next_hops;
    for (const std::uint16_t hop_index : hv) {
      const net::Ipv4Addr hop = view.neighbors[hop_index];
      for (const net::PortId port : view.ports[hop_index]) {
        next_hops.push_back(NextHop{port, hop});
      }
    }
    if (next_hops.empty()) continue;
    for (const net::Prefix& prefix : lsa->prefixes) {
      routes.push_back(Route{prefix, next_hops, RouteSource::kOspf});
    }
  }
  return routes;
}

/// Starts a fresh epoch on a mark vector sized for `n` nodes.
void begin_marks(std::vector<std::uint32_t>& marks, std::uint32_t& epoch,
                 std::size_t n) {
  if (marks.size() < n) marks.resize(n, 0u);
  if (++epoch == 0) {
    std::fill(marks.begin(), marks.end(), 0u);
    epoch = 1;
  }
}

}  // namespace

std::vector<Route> compute_spf(const Lsdb& lsdb, net::Ipv4Addr self,
                               const std::vector<LocalAdjacency>& adjacency) {
  const LinkStateGraph& g = lsdb.graph();
  const RouterIndex self_index = g.index_of(self);
  if (self_index == kNoRouter) return {};
  const SelfView view = build_self_view(adjacency);
  SpfArrays& a = g.scratch();
  dijkstra_full(g, self_index, view, a);
  return emit_routes(g, self_index, view, a);
}

bool lsdb_reachable(const Lsdb& lsdb, net::Ipv4Addr from, net::Ipv4Addr to) {
  if (from == to) return true;
  const LinkStateGraph& g = lsdb.graph();
  const RouterIndex src = g.index_of(from);
  const RouterIndex dst = g.index_of(to);
  if (src == kNoRouter || dst == kNoRouter) return false;
  // BFS over the precomputed two-way edge set, using the shared scratch's
  // settled stamps as the visited set and its heap storage as the stack.
  SpfArrays& a = g.scratch();
  a.begin(g.node_count());
  a.settle(src);
  a.heap.push_back(SpfArrays::HeapItem{0, 0, src});
  while (!a.heap.empty()) {
    const RouterIndex u = a.heap.back().node;
    a.heap.pop_back();
    for (const DenseEdge& e : g.edges(u)) {
      if (!e.two_way) continue;
      if (e.to == dst) return true;
      if (!a.is_settled(e.to)) {
        a.settle(e.to);
        a.heap.push_back(SpfArrays::HeapItem{0, 0, e.to});
      }
    }
  }
  return false;
}

namespace {

/// Subtree repair after a two-way link between `ev.u` and `ev.v` (both
/// != self) disappeared; the graph no longer holds the edge, the event
/// carries its former costs.
///
/// Phase 1 finds the affected set A: if the dead edge lay on any shortest
/// path (dist[parent] + cost == dist[child]), every node with a shortest
/// path through it is a descendant of the child along shortest-path-DAG
/// edges, so a DAG-edge BFS from the child over-approximates exactly the
/// nodes whose distance or first-hop set may change; everything outside A
/// keeps its final state. Phase 2 resets A and seeds each member from its
/// unaffected parents (including `self`, handled specially because its
/// edges are gated by local adjacency, not the two-way flag). Phase 3 is
/// Dijkstra restricted to A: parents settle strictly before children
/// (costs are verified positive), so first-hop sets copied/unioned at
/// settle time are final.
void repair_link_down(const LinkStateGraph& g, RouterIndex self,
                      const SelfView& view, SpfArrays& a, const GraphEvent& ev,
                      std::vector<RouterIndex>& affected,
                      std::vector<RouterIndex>& stack,
                      std::vector<std::uint32_t>& affected_mark,
                      std::uint32_t& affected_epoch,
                      std::vector<std::uint32_t>& settled_mark,
                      std::uint32_t& settled_epoch) {
  const int du = a.distance(ev.u);
  const int dv = a.distance(ev.v);
  RouterIndex seed = kNoRouter;
  if (du != SpfArrays::kUnreached && dv == du + ev.cost_uv) {
    seed = ev.v;
  } else if (dv != SpfArrays::kUnreached && du == dv + ev.cost_vu) {
    seed = ev.u;
  }
  if (seed == kNoRouter) return;  // the dead edge was on no shortest path

  begin_marks(affected_mark, affected_epoch, g.node_count());
  const auto in_affected = [&](RouterIndex i) {
    return affected_mark[i] == affected_epoch;
  };
  affected.clear();
  stack.clear();
  affected_mark[seed] = affected_epoch;
  affected.push_back(seed);
  stack.push_back(seed);
  while (!stack.empty()) {
    const RouterIndex x = stack.back();
    stack.pop_back();
    const int dx = a.dist[x];  // finite: every member was reached
    for (const DenseEdge& e : g.edges(x)) {
      if (!e.two_way) continue;
      const RouterIndex b = e.to;
      if (b == self || in_affected(b)) continue;
      if (a.distance(b) == dx + e.cost) {
        affected_mark[b] = affected_epoch;
        affected.push_back(b);
        stack.push_back(b);
      }
    }
  }

  a.heap.clear();
  for (const RouterIndex b : affected) a.set_unreached(b);
  for (const RouterIndex b : affected) {
    int best = SpfArrays::kUnreached;
    FirstHopSet& hb = a.hops[b];
    // `self` as boundary parent: its edge to b is usable iff self's LSA
    // lists b AND a live local port reaches b. Not discoverable from b's
    // own edge list (b may not advertise self back), hence the probe.
    const net::Ipv4Addr baddr = g.router_of(b);
    if (const int ni = view.index_of(baddr); ni >= 0) {
      if (const DenseEdge* se = g.find_edge(self, b)) {
        best = se->cost;
        insert_first_hop(hb, static_cast<std::uint16_t>(ni));
      }
    }
    for (const DenseEdge& e : g.edges(b)) {
      if (!e.two_way) continue;
      const RouterIndex y = e.to;
      if (y == self || in_affected(y)) continue;
      const int dy = a.distance(y);
      if (dy == SpfArrays::kUnreached) continue;
      const int cand = dy + e.rev_cost;  // cost of the y→b direction
      if (cand < best) {
        best = cand;
        hb = a.hops[y];
      } else if (cand == best) {
        union_first_hops(hb, a.hops[y]);
      }
    }
    if (best != SpfArrays::kUnreached) {
      a.dist[b] = best;
      heap_push(a, best, baddr.value(), b);
    }
  }

  begin_marks(settled_mark, settled_epoch, g.node_count());
  while (!a.heap.empty()) {
    const SpfArrays::HeapItem item = heap_pop(a);
    const RouterIndex u = item.node;
    if (item.dist > a.dist[u] || settled_mark[u] == settled_epoch) continue;
    settled_mark[u] = settled_epoch;
    const int duu = a.dist[u];
    for (const DenseEdge& e : g.edges(u)) {
      if (!e.two_way) continue;
      const RouterIndex v = e.to;
      if (v == self || !in_affected(v)) continue;
      const int nd = duu + e.cost;
      if (nd < a.dist[v]) {
        a.dist[v] = nd;
        a.hops[v] = a.hops[u];
        heap_push(a, nd, g.router_of(v).value(), v);
      } else if (nd == a.dist[v]) {
        union_first_hops(a.hops[v], a.hops[u]);
      }
    }
  }
}

/// Tree growth after a two-way link between `ev.u` and `ev.v` (both
/// != self) appeared; the graph already holds the edge.
///
/// Label-correcting pass seeded at the reached endpoints: every
/// improvement (a strictly smaller distance, or a first-hop set gaining
/// members at equal distance) is pushed and its children re-relaxed.
/// Improvements propagate in nondecreasing distance order, distances only
/// decrease toward their final values, and equal-distance unions only add
/// hops that some shortest path really uses — so the pass converges to
/// exactly the full-Dijkstra fixpoint without touching unaffected nodes.
void repair_link_up(const LinkStateGraph& g, RouterIndex self, SpfArrays& a,
                    const GraphEvent& ev) {
  a.heap.clear();
  if (a.distance(ev.u) != SpfArrays::kUnreached) {
    heap_push(a, a.dist[ev.u], g.router_of(ev.u).value(), ev.u);
  }
  if (a.distance(ev.v) != SpfArrays::kUnreached) {
    heap_push(a, a.dist[ev.v], g.router_of(ev.v).value(), ev.v);
  }
  while (!a.heap.empty()) {
    const SpfArrays::HeapItem item = heap_pop(a);
    const RouterIndex u = item.node;
    if (a.distance(u) == SpfArrays::kUnreached || item.dist > a.dist[u]) {
      continue;  // stale entry
    }
    const int du = a.dist[u];
    for (const DenseEdge& e : g.edges(u)) {
      if (!e.two_way) continue;
      const RouterIndex v = e.to;
      if (v == self) continue;
      const int nd = du + e.cost;
      FirstHopSet& hv = a.touch(v);
      if (nd < a.dist[v]) {
        a.dist[v] = nd;
        hv = a.hops[u];
        heap_push(a, nd, g.router_of(v).value(), v);
      } else if (nd == a.dist[v]) {
        if (union_first_hops(hv, a.hops[u])) {
          heap_push(a, nd, g.router_of(v).value(), v);
        }
      }
    }
  }
}

}  // namespace

std::vector<Route> SpfSolver::run(const Lsdb& lsdb, net::Ipv4Addr self,
                                  const std::vector<LocalAdjacency>& adjacency) {
  const LinkStateGraph& g = lsdb.graph();
  const RouterIndex self_index = g.index_of(self);
  last_incremental_ = false;
  if (self_index == kNoRouter) {
    have_state_ = false;
    return {};
  }
  const SelfView view = build_self_view(adjacency);

  // Classify the delta since the cached tree. Anything not provably
  // confined to one two-way link away from `self` falls back to a full
  // run; origin-only (one-way) churn elsewhere is invisible to this
  // router's SPF and is skipped outright.
  bool incremental = false;
  const GraphEvent* structural = nullptr;
  GraphEvent structural_storage;
  if (have_state_ && graph_ == &g && self_index_ == self_index &&
      !g.has_nonpositive_cost() && last_adjacency_ == adjacency) {
    events_.clear();
    if (g.changes_since(last_version_, events_)) {
      bool confined = true;
      int structural_count = 0;
      for (const GraphEvent& ev : events_) {
        if (ev.u == self_index || ev.v == self_index) {
          confined = false;
          break;
        }
        switch (ev.kind) {
          case GraphEventKind::kOriginOnly:
            break;  // one-way membership change away from self: no effect
          case GraphEventKind::kCostChange:
            confined = false;
            break;
          case GraphEventKind::kLinkUp:
          case GraphEventKind::kLinkDown:
            // Subtree repair needs strictly positive costs on both
            // directions (also covers edges already gone from the graph,
            // which has_nonpositive_cost no longer counts).
            if (ev.cost_uv <= 0 || ev.cost_vu <= 0) {
              confined = false;
              break;
            }
            ++structural_count;
            structural_storage = ev;
            structural = &structural_storage;
            break;
        }
        if (!confined) break;
      }
      incremental = confined && structural_count <= 1;
      if (structural_count == 0) structural = nullptr;
    }
  }

  if (incremental) {
    arrays_.ensure(g.node_count());
    if (structural != nullptr) {
      if (structural->kind == GraphEventKind::kLinkDown) {
        repair_link_down(g, self_index, view, arrays_, *structural, affected_,
                         stack_, affected_mark_, affected_epoch_,
                         settled_mark_, settled_epoch_);
      } else {
        repair_link_up(g, self_index, arrays_, *structural);
      }
    }
    last_incremental_ = true;
  } else {
    dijkstra_full(g, self_index, view, arrays_);
  }

  graph_ = &g;
  last_version_ = g.version();
  self_index_ = self_index;
  last_adjacency_ = adjacency;
  have_state_ = true;
  return emit_routes(g, self_index, view, arrays_);
}

}  // namespace f2t::routing
