#include "routing/spf.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>

namespace f2t::routing {

namespace {

struct NodeState {
  int dist = std::numeric_limits<int>::max();
  // First-hop neighbor router ids (relative to the computing router)
  // across all equal-cost shortest paths.
  std::set<net::Ipv4Addr> first_hops;
};

bool two_way(const Lsdb& lsdb, net::Ipv4Addr u, net::Ipv4Addr v) {
  const Lsa* lv = lsdb.find(v);
  if (lv == nullptr) return false;
  return std::any_of(lv->links.begin(), lv->links.end(),
                     [&](const LsaLink& l) { return l.neighbor == u; });
}

}  // namespace

std::vector<Route> compute_spf(const Lsdb& lsdb, net::Ipv4Addr self,
                               const std::vector<LocalAdjacency>& adjacency) {
  // Ports per first-hop neighbor: parallel links become parallel next hops.
  std::unordered_map<net::Ipv4Addr, std::vector<net::PortId>> ports_of;
  for (const LocalAdjacency& adj : adjacency) {
    ports_of[adj.neighbor].push_back(adj.port);
  }

  std::unordered_map<net::Ipv4Addr, NodeState> state;
  state[self].dist = 0;

  using QueueItem = std::pair<int, net::Ipv4Addr>;  // (dist, router)
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;  // deterministic tie-break
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push({0, self});
  std::unordered_set<net::Ipv4Addr> done;

  while (!queue.empty()) {
    const auto [dist, u] = queue.top();
    queue.pop();
    if (!done.insert(u).second) continue;
    const Lsa* lsa = lsdb.find(u);
    if (lsa == nullptr) continue;
    for (const LsaLink& edge : lsa->links) {
      const net::Ipv4Addr v = edge.neighbor;
      // For the computing router trust only its live local adjacencies;
      // for everyone else require two-way agreement in the LSDB.
      if (u == self) {
        if (!ports_of.contains(v)) continue;
      } else if (!two_way(lsdb, u, v)) {
        continue;
      }
      const int ndist = dist + edge.cost;
      NodeState& sv = state[v];
      if (ndist < sv.dist) {
        sv.dist = ndist;
        sv.first_hops.clear();
      }
      if (ndist == sv.dist) {
        if (u == self) {
          sv.first_hops.insert(v);
        } else {
          const NodeState& su = state[u];
          sv.first_hops.insert(su.first_hops.begin(), su.first_hops.end());
        }
        queue.push({ndist, v});
      }
    }
  }

  std::vector<Route> routes;
  for (const auto& [router, node_state] : state) {
    if (router == self || node_state.first_hops.empty()) continue;
    const Lsa* lsa = lsdb.find(router);
    if (lsa == nullptr || lsa->prefixes.empty()) continue;
    std::vector<NextHop> next_hops;
    for (const net::Ipv4Addr& hop : node_state.first_hops) {
      const auto it = ports_of.find(hop);
      if (it == ports_of.end()) continue;
      for (const net::PortId port : it->second) {
        next_hops.push_back(NextHop{port, hop});
      }
    }
    if (next_hops.empty()) continue;
    for (const net::Prefix& prefix : lsa->prefixes) {
      routes.push_back(Route{prefix, next_hops, RouteSource::kOspf});
    }
  }
  return routes;
}

bool lsdb_reachable(const Lsdb& lsdb, net::Ipv4Addr from, net::Ipv4Addr to) {
  if (from == to) return true;
  std::unordered_set<net::Ipv4Addr> visited{from};
  std::vector<net::Ipv4Addr> frontier{from};
  while (!frontier.empty()) {
    const net::Ipv4Addr u = frontier.back();
    frontier.pop_back();
    const Lsa* lsa = lsdb.find(u);
    if (lsa == nullptr) continue;
    for (const LsaLink& edge : lsa->links) {
      if (!two_way(lsdb, u, edge.neighbor)) continue;
      if (edge.neighbor == to) return true;
      if (visited.insert(edge.neighbor).second) {
        frontier.push_back(edge.neighbor);
      }
    }
  }
  return false;
}

}  // namespace f2t::routing
