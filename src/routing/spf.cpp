#include "routing/spf.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "routing/smallvec.hpp"

namespace f2t::routing {

namespace {

// First hops are tracked as indices into the sorted list of the computing
// router's neighbours, kept sorted and unique in a small inline vector:
// ECMP fan-outs are at most the port count, and typical fat-tree groups
// (≤ k/2) fit inline, so relaxations during Dijkstra never hit the heap —
// unlike the former std::set<Ipv4Addr>, which allocated a red-black node
// per (destination, first-hop) pair.
using FirstHopSet = SmallVec<std::uint16_t, 8>;

void insert_first_hop(FirstHopSet& set, std::uint16_t index) {
  const auto it = std::lower_bound(set.begin(), set.end(), index);
  if (it != set.end() && *it == index) return;
  const auto pos = static_cast<std::size_t>(it - set.begin());
  set.push_back(index);
  std::rotate(set.begin() + pos, set.end() - 1, set.end());
}

void union_first_hops(FirstHopSet& into, const FirstHopSet& from) {
  for (const std::uint16_t index : from) insert_first_hop(into, index);
}

struct NodeState {
  int dist = std::numeric_limits<int>::max();
  // First-hop neighbors (as indices into the sorted self-neighbour list)
  // across all equal-cost shortest paths.
  FirstHopSet first_hops;
};

bool two_way(const Lsdb& lsdb, net::Ipv4Addr u, net::Ipv4Addr v) {
  const Lsa* lv = lsdb.find(v);
  if (lv == nullptr) return false;
  return std::any_of(lv->links.begin(), lv->links.end(),
                     [&](const LsaLink& l) { return l.neighbor == u; });
}

}  // namespace

std::vector<Route> compute_spf(const Lsdb& lsdb, net::Ipv4Addr self,
                               const std::vector<LocalAdjacency>& adjacency) {
  // Ports per first-hop neighbor: parallel links become parallel next hops.
  std::unordered_map<net::Ipv4Addr, std::vector<net::PortId>> ports_of;
  for (const LocalAdjacency& adj : adjacency) {
    ports_of[adj.neighbor].push_back(adj.port);
  }

  // Dense, address-sorted list of the computing router's neighbours, so
  // first-hop sets can be compact index vectors and emission order matches
  // the former std::set<Ipv4Addr> iteration exactly.
  std::vector<net::Ipv4Addr> self_neighbors;
  self_neighbors.reserve(ports_of.size());
  for (const auto& [neighbor, ports] : ports_of) {
    self_neighbors.push_back(neighbor);
  }
  std::sort(self_neighbors.begin(), self_neighbors.end());
  std::unordered_map<net::Ipv4Addr, std::uint16_t> neighbor_index;
  neighbor_index.reserve(self_neighbors.size());
  for (std::size_t i = 0; i < self_neighbors.size(); ++i) {
    neighbor_index[self_neighbors[i]] = static_cast<std::uint16_t>(i);
  }

  std::unordered_map<net::Ipv4Addr, NodeState> state;
  state[self].dist = 0;

  using QueueItem = std::pair<int, net::Ipv4Addr>;  // (dist, router)
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;  // deterministic tie-break
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push({0, self});
  std::unordered_set<net::Ipv4Addr> done;

  while (!queue.empty()) {
    const auto [dist, u] = queue.top();
    queue.pop();
    if (!done.insert(u).second) continue;
    const Lsa* lsa = lsdb.find(u);
    if (lsa == nullptr) continue;
    for (const LsaLink& edge : lsa->links) {
      const net::Ipv4Addr v = edge.neighbor;
      // For the computing router trust only its live local adjacencies;
      // for everyone else require two-way agreement in the LSDB.
      if (u == self) {
        if (!ports_of.contains(v)) continue;
      } else if (!two_way(lsdb, u, v)) {
        continue;
      }
      const int ndist = dist + edge.cost;
      NodeState& sv = state[v];
      if (ndist < sv.dist) {
        sv.dist = ndist;
        sv.first_hops.clear();
      }
      if (ndist == sv.dist) {
        if (u == self) {
          insert_first_hop(sv.first_hops, neighbor_index.at(v));
        } else {
          union_first_hops(sv.first_hops, state[u].first_hops);
        }
        queue.push({ndist, v});
      }
    }
  }

  std::vector<Route> routes;
  for (const auto& [router, node_state] : state) {
    if (router == self || node_state.first_hops.empty()) continue;
    const Lsa* lsa = lsdb.find(router);
    if (lsa == nullptr || lsa->prefixes.empty()) continue;
    std::vector<NextHop> next_hops;
    for (const std::uint16_t hop_index : node_state.first_hops) {
      const net::Ipv4Addr hop = self_neighbors[hop_index];
      const auto it = ports_of.find(hop);
      if (it == ports_of.end()) continue;
      for (const net::PortId port : it->second) {
        next_hops.push_back(NextHop{port, hop});
      }
    }
    if (next_hops.empty()) continue;
    for (const net::Prefix& prefix : lsa->prefixes) {
      routes.push_back(Route{prefix, next_hops, RouteSource::kOspf});
    }
  }
  return routes;
}

bool lsdb_reachable(const Lsdb& lsdb, net::Ipv4Addr from, net::Ipv4Addr to) {
  if (from == to) return true;
  std::unordered_set<net::Ipv4Addr> visited{from};
  std::vector<net::Ipv4Addr> frontier{from};
  while (!frontier.empty()) {
    const net::Ipv4Addr u = frontier.back();
    frontier.pop_back();
    const Lsa* lsa = lsdb.find(u);
    if (lsa == nullptr) continue;
    for (const LsaLink& edge : lsa->links) {
      if (!two_way(lsdb, u, edge.neighbor)) continue;
      if (edge.neighbor == to) return true;
      if (visited.insert(edge.neighbor).second) {
        frontier.push_back(edge.neighbor);
      }
    }
  }
  return false;
}

}  // namespace f2t::routing
