#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace f2t::routing {

/// How the control plane learns that a link died.
///
///  - kOracle: the DetectionAgent below observes physical link transitions
///    directly and reports them after a fixed delay — the model every
///    paper-timing experiment uses. It cannot see gray failures (a link
///    that silently drops packets never transitions) or react to
///    unidirectional cuts with real protocol dynamics.
///  - kProbe: per-port BFD sessions (routing/bfd.hpp) exchange real hello
///    control packets through the data plane, so queues, per-direction
///    loss rates and one-way cuts all apply. Detection can be wrong, slow
///    and flappy — which is the point.
enum class DetectionMode { kOracle, kProbe };

/// Failure-detection timing. The 60 ms default is what the paper measured
/// for interface-down detection on its testbed and calls comparable to BFD.
/// `mode` selects the oracle agent (default — keeps every existing
/// experiment byte-identical) or the probe-based BFD layer.
struct DetectionConfig {
  DetectionMode mode = DetectionMode::kOracle;
  sim::Time down_delay = sim::millis(60);
  sim::Time up_delay = sim::millis(60);
};

/// Interface-liveness detector (BFD-like).
///
/// Observes physical link transitions and, after the configured delay,
/// flips the *detected* port state on each attached switch. The detected
/// state is what the data plane's ECMP filter and the control plane react
/// to — the physical/detected gap is the unavoidable floor of every
/// recovery scheme in the paper.
///
/// Flaps inside the detection window cancel the pending update, so a link
/// that comes back before detection completes is never reported down.
class DetectionAgent {
 public:
  struct Counters {
    std::uint64_t reports_scheduled = 0;  ///< detection windows opened
    std::uint64_t flaps_suppressed = 0;   ///< pending reports cancelled
    std::uint64_t detections_fired = 0;   ///< detected-state flips applied
  };

  DetectionAgent(net::Network& network, const DetectionConfig& config = {});

  /// Registers observers on every link currently in the network *and* a
  /// network hook that observes links added later — a topology mutation
  /// after attach_all() must not silently escape detection.
  void attach_all();

  const DetectionConfig& config() const { return config_; }
  const Counters& counters() const { return counters_; }

 private:
  void on_link_event(net::Link& link, bool up);
  void schedule_for_end(const net::Link::End& end, bool up);

  net::Network& network_;
  DetectionConfig config_;
  // Pending detection event per (node, port).
  std::unordered_map<std::uint64_t, sim::EventId> pending_;
  Counters counters_;
};

}  // namespace f2t::routing
