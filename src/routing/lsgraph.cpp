#include "routing/lsgraph.hpp"

#include <algorithm>

namespace f2t::routing {

void SpfArrays::ensure(std::size_t n) {
  if (dist.size() >= n) return;
  dist.resize(n, kUnreached);
  hops.resize(n);
  stamp.resize(n, 0u);
  settled.resize(n, 0u);
}

void SpfArrays::begin(std::size_t n) {
  ensure(n);
  if (++epoch == 0) {
    // Stamp wrap: a hard reset keeps `stamp[i] == epoch` unambiguous.
    std::fill(stamp.begin(), stamp.end(), 0u);
    std::fill(settled.begin(), settled.end(), 0u);
    epoch = 1;
  }
  heap.clear();
}

RouterIndex LinkStateGraph::intern(net::Ipv4Addr router) {
  const auto [it, inserted] =
      index_.try_emplace(router, static_cast<RouterIndex>(routers_.size()));
  if (inserted) {
    routers_.push_back(router);
    lsas_.emplace_back();
    adj_.emplace_back();
  }
  return it->second;
}

const DenseEdge* LinkStateGraph::find_edge(RouterIndex from,
                                           RouterIndex to) const {
  for (const DenseEdge& e : adj_[from]) {
    if (e.to == to) return &e;
  }
  return nullptr;
}

DenseEdge* LinkStateGraph::find_edge_mut(RouterIndex from, RouterIndex to) {
  for (DenseEdge& e : adj_[from]) {
    if (e.to == to) return &e;
  }
  return nullptr;
}

void LinkStateGraph::record(GraphEventKind kind, RouterIndex u, RouterIndex v,
                            int cost_uv, int cost_vu) {
  events_.push_back(GraphEvent{kind, u, v, cost_uv, cost_vu});
  ++version_;
  if (events_.size() > kMaxLog) {
    const std::size_t drop = events_.size() / 2;
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(drop));
    log_base_ += drop;
  }
}

bool LinkStateGraph::changes_since(std::uint64_t since,
                                   std::vector<GraphEvent>& out) const {
  if (since >= version_) return true;
  if (since < log_base_) return false;  // trimmed away
  for (std::size_t i = since - log_base_; i < events_.size(); ++i) {
    out.push_back(events_[i]);
  }
  return true;
}

void LinkStateGraph::track_cost(int cost, int delta) {
  if (cost <= 0) nonpositive_entries_ += delta;
}

void LinkStateGraph::apply(const LsaPtr& lsa, const Lsa* previous) {
  const RouterIndex u = intern(lsa->origin);

  // Canonical adjacency of the new LSA: router-level, min cost per peer.
  // Duplicate links to the same peer can never produce a shorter path or
  // an extra first hop than the cheapest one, so collapsing them keeps
  // SPF results identical while giving the graph one edge per pair.
  struct Want {
    RouterIndex to;
    int cost;
  };
  std::vector<Want> want;
  want.reserve(lsa->links.size());
  for (const LsaLink& link : lsa->links) {
    const RouterIndex v = intern(link.neighbor);
    bool merged = false;
    for (Want& w : want) {
      if (w.to == v) {
        w.cost = std::min(w.cost, link.cost);
        merged = true;
        break;
      }
    }
    if (!merged) want.push_back(Want{v, link.cost});
  }

  lsas_[u] = lsa;
  (void)previous;  // the diff below runs against the live edge list

  std::vector<DenseEdge>& out = adj_[u];

  // Removals and cost changes: walk the existing edges against `want`.
  for (std::size_t i = 0; i < out.size();) {
    DenseEdge& e = out[i];
    const Want* kept = nullptr;
    for (const Want& w : want) {
      if (w.to == e.to) {
        kept = &w;
        break;
      }
    }
    if (kept == nullptr) {
      // u no longer advertises e.to.
      track_cost(e.cost, -1);
      const RouterIndex v = e.to;
      const int removed_cost = e.cost;
      const bool was_two_way = e.two_way;
      out[i] = out.back();
      out.pop_back();
      if (was_two_way) {
        DenseEdge* back = find_edge_mut(v, u);
        // `back` must exist: two_way means v advertises u.
        back->two_way = false;
        record(GraphEventKind::kLinkDown, u, v, removed_cost, back->cost);
      } else {
        record(GraphEventKind::kOriginOnly, u, v, removed_cost, 0);
      }
      continue;  // re-examine the swapped-in edge at index i
    }
    if (kept->cost != e.cost) {
      track_cost(e.cost, -1);
      track_cost(kept->cost, +1);
      const int old_cost = e.cost;
      e.cost = kept->cost;
      if (e.two_way) {
        find_edge_mut(e.to, u)->rev_cost = kept->cost;
        record(GraphEventKind::kCostChange, u, e.to, kept->cost, e.rev_cost);
      } else {
        // One-way edges only matter to u's own SPF, but a cost change is
        // rare enough that the conservative classification is fine.
        record(GraphEventKind::kCostChange, u, e.to, kept->cost, old_cost);
      }
    }
    ++i;
  }

  // Additions: anything wanted that has no edge yet.
  for (const Want& w : want) {
    if (find_edge(u, w.to) != nullptr) continue;
    track_cost(w.cost, +1);
    DenseEdge e;
    e.to = w.to;
    e.cost = w.cost;
    if (DenseEdge* back = find_edge_mut(w.to, u); back != nullptr) {
      e.two_way = true;
      e.rev_cost = back->cost;
      back->two_way = true;
      back->rev_cost = w.cost;
      adj_[u].push_back(e);
      record(GraphEventKind::kLinkUp, u, w.to, w.cost, back->cost);
    } else {
      adj_[u].push_back(e);
      record(GraphEventKind::kOriginOnly, u, w.to, w.cost, 0);
    }
  }
}

}  // namespace f2t::routing
