#pragma once

#include <cstdint>
#include <unordered_map>

#include "routing/fib.hpp"

namespace f2t::routing {

/// Memoizes fully resolved LPM lookups, keyed by destination address.
///
/// Every per-hop forwarding decision funnels through `Fib::lookup`; in the
/// steady state the answer for a given destination only changes when the
/// FIB is written or a local port's detected state flips. The cache stores
/// the resolved next-hop set stamped with the *combined generation* it was
/// computed under — `Fib::generation()` plus the owner's port-state epoch —
/// and treats any stamp mismatch as a miss. That makes invalidation exact
/// without hooks: a FIB write bumps the FIB generation, a
/// `set_port_detected` transition bumps the port epoch, and either bump
/// invalidates every cached resolution at once.
///
/// Correctness note (F²Tree §II-B): the backup fall-through — /24 dead,
/// forward via the /16 static — happens with *zero FIB writes*; only the
/// detected port state changes. Folding the port epoch into the stamp is
/// therefore load-bearing: a cache keyed on the FIB generation alone would
/// keep steering packets into the dead /24 until the control plane
/// eventually rewrote the FIB, erasing exactly the effect the paper
/// measures.
///
/// The control plane cooperates from the other side: SPF results are
/// installed through `Fib::apply_source_delta`, so a recompute that does
/// not change the route set performs no FIB write, leaves the generation
/// alone, and keeps every entry here warm — periodic no-op reinstalls no
/// longer flush the cache.
class ResolvedRouteCache {
 public:
  /// Resolved usable next hops for `dst` under the current combined
  /// generation. Consults the cache first; on miss re-walks the FIB via
  /// `lookup_into` and stores the result (empty results are cached too).
  /// The returned reference is valid until the next `resolve` or `clear`.
  const Fib::HopVec& resolve(const Fib& fib, net::Ipv4Addr dst,
                             Fib::PortStateView ports,
                             std::uint64_t port_epoch);

  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return entries_.size(); }

  /// RouteSource of the most recent `resolve` (cached alongside the hop
  /// set, so reading it costs nothing extra on hits). kStatic means the
  /// last resolution fell through to an F²Tree backup route. Meaningless
  /// when the last resolve returned an empty hop set.
  RouteSource last_source() const { return last_source_; }

 private:
  // Safety valve: one entry per destination actually forwarded to, so
  // growth is bounded by the host count in any real experiment; the cap
  // only guards against adversarial destination scans.
  static constexpr std::size_t kMaxEntries = 1u << 20;

  struct Entry {
    std::uint64_t generation = ~std::uint64_t{0};  // never a real stamp
    RouteSource source = RouteSource::kConnected;
    Fib::HopVec hops;
  };

  std::unordered_map<std::uint32_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  RouteSource last_source_ = RouteSource::kConnected;
};

}  // namespace f2t::routing
