#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/l3switch.hpp"
#include "routing/route.hpp"

namespace f2t::routing {

/// One advertised path: the prefix plus the router-id vector it traversed
/// (most recent hop first, like an AS path).
struct PvRoute {
  net::Prefix prefix;
  std::vector<net::Ipv4Addr> path;  ///< empty path == withdrawal
  bool withdraw = false;
};

/// A BGP UPDATE-like control message.
struct PvUpdate final : net::ControlPayload {
  net::Ipv4Addr origin;  ///< sending router
  std::vector<PvRoute> routes;

  std::uint32_t wire_size() const {
    std::uint32_t size = 64;
    for (const auto& r : routes) {
      size += 8 + 4 * static_cast<std::uint32_t>(r.path.size());
    }
    return size;
  }
};

/// Path-vector protocol timing (§V "Other Distributed Routing Schemes").
///
/// `mrai` is the BGP Min Route Advertisement Interval: consecutive
/// updates to the same neighbour are spaced at least this far apart —
/// the knob the paper's citation [13] blames for slow (potentially
/// exponential) BGP convergence. Data-centre BGP deployments shrink it,
/// so the default here is modest; the bench sweeps it.
struct PathVectorConfig {
  sim::Time mrai = sim::millis(100);
  sim::Time processing_delay = sim::micros(300);
  sim::Time fib_update_delay = sim::millis(10);
  bool multipath = true;  ///< ECMP over equal-length best paths
};

/// Per-switch path-vector (BGP-like) routing instance.
///
/// Best-path selection is shortest path vector with a deterministic
/// tie-break; loops are rejected by the presence of self in the path.
/// Multipath installs every tied best path as an ECMP next hop, as DCN
/// BGP deployments do. Withdrawals are implicit: a detected-down port
/// invalidates everything learned from it, and updates carrying a
/// `withdraw` flag remove specific adjacency entries.
class PathVector {
 public:
  struct Counters {
    std::uint64_t updates_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t routes_withdrawn = 0;
    /// Installs that changed at least one FIB entry; recomputes yielding
    /// the identical route set count as fib_noop_installs instead.
    std::uint64_t fib_installs = 0;
    std::uint64_t fib_noop_installs = 0;
  };

  /// Protocol milestones surfaced to the observability layer.
  enum class ObsEvent { kUpdateSent, kUpdateReceived, kFibInstall };
  using ObsHook = std::function<void(ObsEvent)>;

  PathVector(net::L3Switch& sw, const PathVectorConfig& config = {});

  /// Unset by default; one guarded branch per milestone.
  void set_obs_hook(ObsHook hook) { obs_hook_ = std::move(hook); }

  net::L3Switch& device() { return sw_; }
  const Counters& counters() const { return counters_; }

  void redistribute(const net::Prefix& prefix);

  /// Non-transit routers (ToRs, per RFC 7938-style DCN BGP design) only
  /// advertise the prefixes they originate: without this, a ToR would
  /// offer valley paths (up-down-up) through its rack.
  void set_transit(bool transit) { transit_ = transit; }
  bool transit() const { return transit_; }

  /// Hooks into the switch. Call once after topology construction.
  void attach();

  /// Instantly converges a set of instances by iterating synchronous
  /// exchange rounds until no instance changes (initial setup at t = 0).
  static void warm_start_all(
      const std::vector<std::unique_ptr<PathVector>>& instances);

 private:
  friend struct PathVectorWarmStart;

  struct AdjIn {
    std::vector<net::Ipv4Addr> path;  ///< as received (no self)
  };
  struct PrefixState {
    // Learned paths per ingress port (Adj-RIB-In).
    std::map<net::PortId, AdjIn> in;
    // The path we currently export (empty = unreachable/withdrawn).
    std::vector<net::Ipv4Addr> exported;
    bool originated = false;
  };

  void on_port_state(net::PortId port, bool up);
  void handle_control(net::PortId in_port, const net::Packet& packet);
  /// Returns true if the selection (and export) for `prefix` changed.
  bool reselect(const net::Prefix& prefix);
  void schedule_export(const net::Prefix& prefix);
  void flush_exports(net::PortId port);
  void schedule_fib_install();
  std::vector<Route> build_routes() const;
  std::vector<net::PortId> neighbor_ports() const;

  net::L3Switch& sw_;
  PathVectorConfig config_;
  std::unordered_map<net::Prefix, PrefixState> prefixes_;
  // Per-neighbour MRAI machinery: pending prefixes + timer.
  struct NeighborOut {
    std::vector<net::Prefix> pending;
    sim::Time last_sent = -1;
    sim::EventId timer = sim::kInvalidEventId;
  };
  std::unordered_map<net::PortId, NeighborOut> out_;
  sim::EventId pending_install_ = sim::kInvalidEventId;
  bool transit_ = true;
  Counters counters_;
  ObsHook obs_hook_;
};

}  // namespace f2t::routing
