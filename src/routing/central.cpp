#include "routing/central.hpp"

#include <stdexcept>

namespace f2t::routing {

void CentralController::manage(net::L3Switch& sw,
                               std::vector<net::Prefix> prefixes) {
  if (sim_ == nullptr) {
    sim_ = &sw.simulator();
  } else if (sim_ != &sw.simulator()) {
    throw std::invalid_argument("CentralController: mixed simulators");
  }
  switches_.push_back(Managed{&sw, std::move(prefixes)});
  net::L3Switch* ptr = &sw;
  // A port-state transition is the switch's failure (or recovery) report.
  sw.add_port_state_handler([this, ptr](net::PortId, bool) {
    sim_->after(config_.report_delay, [this, ptr] { on_report(*ptr); });
  });
}

LsaPtr CentralController::view_of(const Managed& m) const {
  auto lsa = std::make_shared<Lsa>();
  lsa->origin = m.sw->router_id();
  lsa->sequence = view_version_;
  for (net::PortId p = 0; p < m.sw->port_count(); ++p) {
    const auto& info = m.sw->port(p);
    if (!info.peer_is_switch || !m.sw->port_detected_up(p)) continue;
    const LsaLink link{info.peer_addr, 1};
    if (std::find(lsa->links.begin(), lsa->links.end(), link) ==
        lsa->links.end()) {
      lsa->links.push_back(link);
    }
  }
  lsa->prefixes = m.prefixes;
  return lsa;
}

Lsdb CentralController::build_view() const {
  // The controller's view is the union of the switches' *detected* local
  // states — exactly the information failure reports carry.
  Lsdb view;
  for (const Managed& m : switches_) view.consider(view_of(m));
  return view;
}

void CentralController::converge() {
  ++view_version_;
  const Lsdb view = build_view();
  for (const Managed& m : switches_) {
    std::vector<LocalAdjacency> adjacency;
    for (net::PortId p = 0; p < m.sw->port_count(); ++p) {
      const auto& info = m.sw->port(p);
      if (info.peer_is_switch && m.sw->port_detected_up(p)) {
        adjacency.push_back(LocalAdjacency{p, info.peer_addr});
      }
    }
    auto routes = compute_spf(view, m.sw->router_id(), adjacency);
    std::erase_if(routes, [&](const Route& r) {
      return std::find(m.prefixes.begin(), m.prefixes.end(), r.prefix) !=
             m.prefixes.end();
    });
    m.sw->fib().apply_source_delta(RouteSource::kOspf, std::move(routes));
  }
  ++counters_.computations;
}

void CentralController::on_report(net::L3Switch& /*sw*/) {
  ++counters_.reports;
  if (pending_compute_ != sim::kInvalidEventId) return;  // already batching
  pending_compute_ =
      sim_->after(config_.batch_window + config_.compute_delay, [this] {
        pending_compute_ = sim::kInvalidEventId;
        recompute_and_push();
      });
}

void CentralController::recompute_and_push() {
  ++counters_.computations;
  ++view_version_;
  const Lsdb view = build_view();
  for (const Managed& m : switches_) {
    std::vector<LocalAdjacency> adjacency;
    for (net::PortId p = 0; p < m.sw->port_count(); ++p) {
      const auto& info = m.sw->port(p);
      if (info.peer_is_switch && m.sw->port_detected_up(p)) {
        adjacency.push_back(LocalAdjacency{p, info.peer_addr});
      }
    }
    auto routes = compute_spf(view, m.sw->router_id(), adjacency);
    std::erase_if(routes, [&](const Route& r) {
      return std::find(m.prefixes.begin(), m.prefixes.end(), r.prefix) !=
             m.prefixes.end();
    });
    net::L3Switch* sw = m.sw;
    // The push (and its hook) still happens even when the delta turns out
    // empty — the controller does not know that before the switch applies
    // it — so fib_pushes and the simulated event stream are unchanged;
    // only the redundant FIB writes disappear.
    ++counters_.fib_pushes;
    sim_->after(config_.push_delay + config_.fib_update_delay,
                [this, sw, routes = std::move(routes)]() mutable {
                  sw->fib().apply_source_delta(RouteSource::kOspf,
                                               std::move(routes));
                  if (push_hook_) push_hook_(*sw);
                });
  }
}

}  // namespace f2t::routing
