#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "routing/route.hpp"
#include "routing/smallvec.hpp"

namespace f2t::routing {

/// Forwarding Information Base with longest-prefix match and next-hop
/// liveness fallback.
///
/// This structure encodes the mechanism at the heart of F²Tree (§II-B of
/// the paper): the lookup walks prefix lengths longest-first and *skips*
/// any entry whose next hops are all locally detected down, so that a /24
/// learned from OSPF with a dead downlink falls through to the
/// pre-installed /16 static backup (right across neighbour) and then to the
/// /15 (left across neighbour) — with no control-plane involvement and no
/// FIB write. ECMP's failed-member elimination for upward links is the
/// same filter applied within one entry's next-hop set.
///
/// One entry is stored per (prefix, source); forwarding uses the best
/// source (lowest administrative distance) per prefix, like a real RIB→FIB
/// selection. The best source per slot is cached at install time, a bitmask
/// tracks which prefix lengths are populated, and `lookup_into` resolves a
/// destination without touching the heap — the data-plane fast path.
class Fib {
 public:
  /// Predicate telling whether a local egress port is usable (i.e. the
  /// data plane has not detected it down). Retained for tests and generic
  /// callers; the forwarding fast path uses `PortStateView` instead.
  using PortUpFn = std::function<bool(net::PortId)>;

  /// ECMP groups wider than this spill to the heap; production fabrics in
  /// the paper use 2-wide groups, fat trees up to k/2.
  static constexpr std::size_t kInlineHops = 4;
  using HopVec = SmallVec<NextHop, kInlineHops>;

  /// Zero-cost view over a switch's detected-port-state vector. Ports
  /// beyond the vector's size are considered up, matching the lazily-grown
  /// default in `net::L3Switch`. A null vector means "all ports up".
  struct PortStateView {
    const std::vector<bool>* up = nullptr;

    bool operator()(net::PortId p) const {
      return up == nullptr || p >= up->size() || (*up)[p];
    }
  };

  /// Installs or replaces the route for (route.prefix, route.source).
  void install(Route route);

  /// Removes the entry for (prefix, source). No-op if absent.
  void remove(const net::Prefix& prefix, RouteSource source);

  /// Removes every route from `source` (used when SPF reinstalls its
  /// whole result).
  void clear_source(RouteSource source);

  /// Atomically replaces all routes of `source` with `routes`.
  void replace_source(RouteSource source, std::vector<Route> routes);

  /// Diffs `routes` — the complete desired set for `source` — against the
  /// installed entries and touches only the changed slots: unchanged
  /// entries are left alone, changed/new ones installed, and entries of
  /// `source` absent from `routes` removed. Returns the number of slots
  /// written (installs + removals). The final FIB state is identical to
  /// `replace_source(source, routes)`, but an empty delta performs no
  /// write and does not move `generation()` — which is what keeps
  /// `ResolvedRouteCache` entries warm across no-op SPF reinstalls.
  std::size_t apply_source_delta(RouteSource source, std::vector<Route> routes);

  /// Longest-prefix match over *usable* entries: returns the usable next
  /// hops of the longest prefix containing `dst` whose best-source entry
  /// has at least one next hop with port_up(port). Falls through to
  /// shorter prefixes otherwise. Allocates its result; prefer
  /// `lookup_into` on hot paths.
  std::vector<NextHop> lookup(net::Ipv4Addr dst, const PortUpFn& port_up) const;

  /// Allocation-free LPM walk: appends the usable next hops of the
  /// longest matching live prefix to `out` (which the caller clears).
  /// Observably identical to `lookup` given the same port state.
  void lookup_into(net::Ipv4Addr dst, PortStateView ports, HopVec& out) const;

  /// As above, additionally reporting which RouteSource the matched entry
  /// came from (untouched when no route matched). kStatic means a
  /// pre-installed F²Tree backup answered — the observability layer's
  /// "backup activated" signal.
  void lookup_into(net::Ipv4Addr dst, PortStateView ports, HopVec& out,
                   RouteSource& source) const;

  /// Monotone counter bumped by every mutating call (`install`,
  /// `remove`, `clear_source`, `replace_source`). Callers memoizing
  /// resolved lookups (see `ResolvedRouteCache`) compare generations
  /// instead of registering invalidation hooks.
  std::uint64_t generation() const { return generation_; }

  /// Observer fired after every mutation that moves `generation()` (once
  /// per written slot). Hooks must not mutate the FIB: they may run while
  /// a bulk operation is mid-flight, so the useful pattern is to set a
  /// dirty flag and re-read state later (the fluid transport model does
  /// exactly that). No hooks are installed by default, so the mutation
  /// paths pay a single empty-vector test.
  void add_change_hook(std::function<void()> hook) {
    if (hook) change_hooks_.push_back(std::move(hook));
  }

  /// Exact-match query of the installed route (ignoring liveness).
  std::optional<Route> find(const net::Prefix& prefix, RouteSource source) const;

  /// All installed routes (every source), sorted by prefix then source;
  /// for dumps and tests.
  std::vector<Route> dump() const;

  std::size_t size() const { return count_; }

 private:
  struct Slot {
    // Routes for one prefix keyed by source; kept tiny (≤3 sources).
    std::vector<Route> by_source;
    // Index of the lowest-administrative-distance route, maintained on
    // every slot mutation so lookups never rescan.
    std::size_t best_idx = 0;

    const Route* best() const {
      return by_source.empty() ? nullptr : &by_source[best_idx];
    }
    Route* find(RouteSource source);
    void recompute_best();
  };

  template <typename PortPred, typename OutVec>
  void lookup_walk(net::Ipv4Addr dst, const PortPred& up, OutVec& out,
                   RouteSource* source_out = nullptr) const;

  void notify_changed() {
    for (const auto& hook : change_hooks_) hook();
  }

  // One hash map per prefix length; lookup probes lengths 32..0, skipping
  // empty lengths via the bitmask (bit l set iff by_length_[l] nonempty).
  std::array<std::unordered_map<std::uint32_t, Slot>, 33> by_length_;
  std::uint64_t nonempty_lengths_ = 0;
  std::size_t count_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::function<void()>> change_hooks_;
};

}  // namespace f2t::routing
