#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "routing/route.hpp"

namespace f2t::routing {

/// Forwarding Information Base with longest-prefix match and next-hop
/// liveness fallback.
///
/// This structure encodes the mechanism at the heart of F²Tree (§II-B of
/// the paper): the lookup walks prefix lengths longest-first and *skips*
/// any entry whose next hops are all locally detected down, so that a /24
/// learned from OSPF with a dead downlink falls through to the
/// pre-installed /16 static backup (right across neighbour) and then to the
/// /15 (left across neighbour) — with no control-plane involvement and no
/// FIB write. ECMP's failed-member elimination for upward links is the
/// same filter applied within one entry's next-hop set.
///
/// One entry is stored per (prefix, source); forwarding uses the best
/// source (lowest administrative distance) per prefix, like a real RIB→FIB
/// selection.
class Fib {
 public:
  /// Predicate telling whether a local egress port is usable (i.e. the
  /// data plane has not detected it down).
  using PortUpFn = std::function<bool(net::PortId)>;

  /// Installs or replaces the route for (route.prefix, route.source).
  void install(Route route);

  /// Removes the entry for (prefix, source). No-op if absent.
  void remove(const net::Prefix& prefix, RouteSource source);

  /// Removes every route from `source` (used when SPF reinstalls its
  /// whole result).
  void clear_source(RouteSource source);

  /// Atomically replaces all routes of `source` with `routes`.
  void replace_source(RouteSource source, std::vector<Route> routes);

  /// Longest-prefix match over *usable* entries: returns the usable next
  /// hops of the longest prefix containing `dst` whose best-source entry
  /// has at least one next hop with port_up(port). Falls through to
  /// shorter prefixes otherwise.
  std::vector<NextHop> lookup(net::Ipv4Addr dst, const PortUpFn& port_up) const;

  /// Exact-match query of the installed route (ignoring liveness).
  std::optional<Route> find(const net::Prefix& prefix, RouteSource source) const;

  /// All installed routes (every source), sorted by prefix then source;
  /// for dumps and tests.
  std::vector<Route> dump() const;

  std::size_t size() const { return count_; }

 private:
  struct Slot {
    // Routes for one prefix keyed by source; kept tiny (≤3 sources).
    std::vector<Route> by_source;

    const Route* best() const;
    Route* find(RouteSource source);
  };

  // One hash map per prefix length; lookup probes lengths 32..0.
  std::array<std::unordered_map<std::uint32_t, Slot>, 33> by_length_;
  std::size_t count_ = 0;
};

}  // namespace f2t::routing
