#pragma once

#include <compare>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "net/ipv4.hpp"

namespace f2t::routing {

/// Where a FIB entry came from. Doubles as administrative distance:
/// lower wins when two sources install the same prefix.
enum class RouteSource : int {
  kConnected = 0,  ///< directly attached host subnet / neighbor
  kStatic = 1,     ///< operator-configured (the F²Tree backup routes)
  kOspf = 110,     ///< computed by the link-state protocol
};

const char* route_source_name(RouteSource source);

/// One forwarding alternative: the local egress port plus the far-side
/// address (kept for diagnostics and route dumps, not for forwarding).
struct NextHop {
  net::PortId port = net::kInvalidPort;
  net::Ipv4Addr via;

  friend auto operator<=>(const NextHop&, const NextHop&) = default;
};

/// A route as installed into the FIB: a prefix and its ECMP next-hop set.
struct Route {
  net::Prefix prefix;
  std::vector<NextHop> next_hops;
  RouteSource source = RouteSource::kOspf;

  std::string describe() const;

  /// Memberwise equality; `Fib::apply_source_delta` uses it to skip
  /// rewriting unchanged entries (next_hops must be in canonical sorted
  /// order on both sides for the comparison to be meaningful).
  friend bool operator==(const Route&, const Route&) = default;
};

}  // namespace f2t::routing
