#include "routing/spf_throttle.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::routing {

SpfThrottle::SpfThrottle(const SpfThrottleConfig& config)
    : config_(config),
      hold_(config.initial_delay),
      last_run_(-config.max_wait * 4) {
  if (config.initial_delay < 0 || config.max_wait < config.initial_delay) {
    throw std::invalid_argument("SpfThrottle: bad configuration");
  }
}

sim::Time SpfThrottle::schedule(sim::Time now) {
  if (now - last_run_ > 2 * hold_) {
    hold_ = config_.initial_delay;  // network has been quiet: reset backoff
  }
  const sim::Time when =
      std::max(now + config_.initial_delay, last_run_ + hold_);
  hold_ = std::min(hold_ * 2, config_.max_wait);
  return when;
}

}  // namespace f2t::routing
