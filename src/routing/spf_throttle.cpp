#include "routing/spf_throttle.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::routing {

SpfThrottle::SpfThrottle(const SpfThrottleConfig& config)
    : config_(config),
      hold_(config.initial_delay),
      last_run_(-config.max_wait * 4) {
  if (config.initial_delay < 0 || config.max_wait < config.initial_delay) {
    throw std::invalid_argument("SpfThrottle: bad configuration");
  }
}

sim::Time SpfThrottle::schedule(sim::Time now) {
  if (!pending_ && now - last_run_ > 2 * hold_) {
    hold_ = config_.initial_delay;  // network has been quiet: reset backoff
  }
  const sim::Time when =
      std::max(now + config_.initial_delay, last_run_ + hold_);
  // Back off per scheduled *run*, not per trigger: a burst of LSAs that
  // coalesces into one pending SPF must cost exactly one doubling, or a
  // single failure's flood inflates every later recovery (Cisco-style
  // throttling increments the hold once per run of the timer).
  if (!pending_) {
    pending_ = true;
    hold_ = std::min(hold_ * 2, config_.max_wait);
  }
  return when;
}

}  // namespace f2t::routing
