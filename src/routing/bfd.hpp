#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace f2t::routing {

/// Flap dampening in the style of RFC 2439: every session-down transition
/// adds `penalty_per_flap` to a per-port penalty that decays exponentially
/// with `half_life`. When the penalty crosses `suppress_threshold` the
/// port is *suppressed* — reported down to the switch and held there, with
/// further session transitions withheld — until the penalty decays below
/// `reuse_threshold`, at which point the current session state is
/// reported. This is what keeps a lossy or flapping link from driving
/// unbounded LSA origination and SPF churn across the fabric.
struct BfdDampeningConfig {
  bool enabled = true;
  double penalty_per_flap = 1000;
  double suppress_threshold = 2500;
  double reuse_threshold = 800;
  double max_penalty = 10000;  ///< accumulation ceiling (RFC 2439 §4.2)
  sim::Time half_life = sim::seconds(4);
};

/// Probe-based detection timing. The defaults give a 60 ms detection
/// floor (20 ms × 3), matching the paper's measured "BFD-comparable"
/// interface-down detection.
struct BfdConfig {
  sim::Time tx_interval = sim::millis(20);
  int miss_multiplier = 3;  ///< missed hellos before declaring down
  /// Wire size of one hello (BFD control packet + UDP/IP/Ethernet).
  std::uint32_t hello_bytes = 66;
  BfdDampeningConfig dampening;

  sim::Time detect_time() const { return tx_interval * miss_multiplier; }
};

/// Hello control payload. `i_hear_you` carries the sender's view of the
/// session (it received a hello within its detection window) — the
/// remote-state signalling that takes *both* ends down on a one-way cut:
/// the deaf end times out, and its hellos then tell the still-hearing end
/// that the session is dead.
struct BfdHello : net::ControlPayload {
  bool i_hear_you = true;
};

/// Probe-based failure detection (DetectionMode::kProbe).
///
/// One session per (switch, port) over every switch-to-switch link. Each
/// session transmits hello packets through the real data plane every
/// tx_interval — so link queues, per-direction gray loss and
/// unidirectional cuts all apply — and declares the session down when no
/// hello arrives for tx_interval × miss_multiplier, or when the peer's
/// hellos signal that it no longer hears us. Session state reaches the
/// data plane through L3Switch::set_port_detected, exactly like the
/// oracle DetectionAgent, gated by RFC 2439-style flap dampening.
///
/// Unlike the oracle, this layer detects what a real BFD session detects:
/// a 100%-loss gray direction (hellos silently eaten) and a one-way cut
/// both take the session down; a link that flaps faster than the detect
/// window may never be declared down; and a lossy link that flaps the
/// session is eventually suppressed rather than allowed to churn SPF.
class BfdManager {
 public:
  struct Counters {
    std::uint64_t hellos_sent = 0;
    std::uint64_t hellos_received = 0;
    std::uint64_t hellos_missed = 0;  ///< detection timeouts fired
    std::uint64_t sessions_up = 0;    ///< up transitions
    std::uint64_t sessions_down = 0;  ///< down transitions
    std::uint64_t remote_down_signals = 0;  ///< peer said it cannot hear us
    std::uint64_t flaps_recorded = 0;       ///< dampening penalty additions
    std::uint64_t suppresses = 0;
    std::uint64_t reuses = 0;
  };

  /// Milestones surfaced to the observability layer, stamped with the
  /// session's switch and port.
  enum class ObsEvent { kSessionUp, kSessionDown, kSuppress, kReuse };
  using ObsHook = std::function<void(ObsEvent, net::NodeId, net::PortId)>;

  BfdManager(net::Network& network, const BfdConfig& config = {});

  /// Creates sessions on both ends of every switch-to-switch link and
  /// starts their hello clocks; also installs a network hook so links
  /// added later get sessions the moment they are wired.
  void attach_all();

  const BfdConfig& config() const { return config_; }
  const Counters& counters() const { return counters_; }
  void set_obs_hook(ObsHook hook) { obs_hook_ = std::move(hook); }

  std::size_t session_count() const { return sessions_.size(); }

  /// Test/diagnostic introspection for one session; all three throw
  /// std::invalid_argument when no session exists on (sw, port).
  bool session_up(const net::L3Switch& sw, net::PortId port) const;
  bool session_suppressed(const net::L3Switch& sw, net::PortId port) const;
  double session_penalty(const net::L3Switch& sw, net::PortId port) const;

 private:
  struct Session {
    net::L3Switch* sw = nullptr;
    net::PortId port = net::kInvalidPort;
    int index = 0;  ///< creation order; staggers the hello phase
    bool hearing = true;         ///< hello received within detect window
    bool remote_hears_us = true; ///< last hello's i_hear_you
    bool up = true;              ///< hearing && remote_hears_us
    sim::EventId detect_timer = sim::kInvalidEventId;
    double penalty = 0;          ///< dampening penalty at penalty_at
    sim::Time penalty_at = 0;
    bool suppressed = false;
  };

  void create_sessions(net::Link& link);
  void create_session(net::L3Switch& sw, net::PortId port);
  Session* find(net::NodeId node, net::PortId port);
  const Session* find_or_throw(const net::L3Switch& sw,
                               net::PortId port) const;

  void send_hello(Session& s);
  void arm_detect_timer(Session& s);
  void on_hello(net::L3Switch& sw, net::PortId port, const BfdHello& hello);
  void update_session(Session& s);
  void report(Session& s, bool up);
  double decayed_penalty(const Session& s) const;
  void add_flap_penalty(Session& s);
  void schedule_reuse_check(Session& s);

  net::Network& network_;
  BfdConfig config_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::unordered_map<net::NodeId, bool> handler_installed_;
  int next_index_ = 0;
  Counters counters_;
  ObsHook obs_hook_;
};

}  // namespace f2t::routing
