#include "routing/lsa.hpp"

#include <sstream>

namespace f2t::routing {

std::string Lsa::describe() const {
  std::ostringstream os;
  os << "LSA[" << origin.str() << " seq=" << sequence << " links={";
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i > 0) os << ",";
    os << links[i].neighbor.str();
  }
  os << "} prefixes={";
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    if (i > 0) os << ",";
    os << prefixes[i].str();
  }
  os << "}]";
  return os.str();
}

}  // namespace f2t::routing
