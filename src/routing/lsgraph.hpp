#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "routing/lsa.hpp"
#include "routing/smallvec.hpp"

namespace f2t::routing {

/// Stable index of a router inside a LinkStateGraph. Assigned the first
/// time an address appears (as an LSA origin or a link target) and never
/// recycled, so SPF state keyed by index survives LSA churn.
using RouterIndex = std::uint32_t;
inline constexpr RouterIndex kNoRouter = ~RouterIndex{0};

/// One directed adjacency in the dense graph, owned by the advertising
/// router. `two_way` caches OSPF's bidirectional check (the peer also
/// advertises the reverse direction), so SPF never rescans the peer's
/// LSA per relaxed edge; `rev_cost` is the peer's advertised cost back
/// (meaningful only while `two_way`), which incremental repair needs when
/// walking in-edges through a node's own edge list.
struct DenseEdge {
  RouterIndex to = kNoRouter;
  int cost = 1;
  int rev_cost = 1;
  bool two_way = false;
};

/// A tree-relevant change recorded by the graph as LSAs are accepted.
/// Consumers (SpfSolver) replay these to decide whether the delta since
/// their last run is confined enough for an incremental repair.
enum class GraphEventKind : std::uint8_t {
  kLinkUp,      ///< pair (u,v) became two-way
  kLinkDown,    ///< pair (u,v) stopped being two-way
  kCostChange,  ///< an advertised cost changed (conservative: full SPF)
  kOriginOnly,  ///< one-way membership change: only the origin's own SPF
                ///< (which trusts local adjacency over the two-way check)
                ///< can be affected
};

struct GraphEvent {
  GraphEventKind kind = GraphEventKind::kCostChange;
  RouterIndex u = kNoRouter;  ///< for kOriginOnly: the origin
  RouterIndex v = kNoRouter;
  /// Directional costs of the pair at event time. For kLinkDown these are
  /// the removed costs (no longer available from the graph itself).
  int cost_uv = 1;
  int cost_vu = 1;
};

/// Scratch state for a full SPF run over the dense graph: flat
/// index-addressed arrays with versioned stamps, so starting a run is an
/// O(1) epoch bump instead of a per-run clear/rehash. A slot is live only
/// while its stamp matches the current epoch; stale slots read as
/// "unreached, empty first hops" and are lazily reset on first write.
struct SpfArrays {
  /// First-hop neighbors as indices into the computing router's sorted
  /// neighbor list (ECMP fan-out ≤ port count; fits inline).
  using FirstHopSet = SmallVec<std::uint16_t, 8>;
  static constexpr int kUnreached = std::numeric_limits<int>::max();

  std::vector<int> dist;
  std::vector<FirstHopSet> hops;
  std::vector<std::uint32_t> stamp;    ///< dist/hops live iff == epoch
  std::vector<std::uint32_t> settled;  ///< node settled iff == epoch
  std::uint32_t epoch = 0;

  /// Binary heap reused across runs: (dist, router address, index) with
  /// the address as tie-break, mirroring the original implementation's
  /// deterministic ordering.
  struct HeapItem {
    int dist;
    std::uint32_t addr;
    RouterIndex node;
    friend bool operator<(const HeapItem& a, const HeapItem& b) {
      // std::push_heap keeps the *largest* on top; invert for a min-heap.
      if (a.dist != b.dist) return a.dist > b.dist;
      return a.addr > b.addr;
    }
  };
  std::vector<HeapItem> heap;

  /// Grows the arrays to `n` nodes and starts a new run epoch.
  void begin(std::size_t n);
  /// Grows the arrays without invalidating live state (incremental SPF
  /// keeps its tree across runs while new routers appear).
  void ensure(std::size_t n);

  bool reached(RouterIndex i) const {
    return stamp[i] == epoch && dist[i] != kUnreached;
  }
  int distance(RouterIndex i) const {
    return stamp[i] == epoch ? dist[i] : kUnreached;
  }
  bool is_settled(RouterIndex i) const { return settled[i] == epoch; }
  void settle(RouterIndex i) { settled[i] = epoch; }
  void unsettle(RouterIndex i) { settled[i] = epoch - 1; }

  /// Makes slot `i` live (lazily clearing stale contents) and returns it.
  FirstHopSet& touch(RouterIndex i) {
    if (stamp[i] != epoch) {
      stamp[i] = epoch;
      dist[i] = kUnreached;
      hops[i].clear();
    }
    return hops[i];
  }
  void set_unreached(RouterIndex i) {
    touch(i);
    dist[i] = kUnreached;
    hops[i].clear();
  }
};

/// Dense materialization of the LSDB's router graph.
///
/// Owned by `Lsdb` and patched in place every time `Lsdb::consider`
/// accepts an LSA, instead of being rebuilt per SPF run: router→index
/// interning, per-router adjacency arrays with the two-way check
/// precomputed per edge, the newest LSA per index (for prefix emission
/// without hashing), and a bounded change log that lets `SpfSolver`
/// classify the delta since its previous run.
///
/// The embedded `SpfArrays` scratch is mutable so `compute_spf` (a const
/// consumer of the Lsdb) can reuse it across runs. One graph must only be
/// used from one thread at a time — the campaign engine's shards each own
/// their simulation, so this holds by construction.
class LinkStateGraph {
 public:
  RouterIndex index_of(net::Ipv4Addr router) const {
    const auto it = index_.find(router);
    return it == index_.end() ? kNoRouter : it->second;
  }
  net::Ipv4Addr router_of(RouterIndex i) const { return routers_[i]; }
  std::size_t node_count() const { return routers_.size(); }

  /// Newest LSA of the router at index `i` (null if the address was only
  /// ever seen as a link target).
  const Lsa* lsa_of(RouterIndex i) const { return lsas_[i].get(); }

  const std::vector<DenseEdge>& edges(RouterIndex i) const { return adj_[i]; }

  /// Monotone change counter: one tick per recorded GraphEvent. Equal
  /// versions guarantee an identical two-way edge set and costs.
  std::uint64_t version() const { return version_; }

  /// Appends the events with version in (since, version()] to `out`,
  /// oldest first. Returns false when the log has been trimmed past
  /// `since` (caller must fall back to a full computation).
  bool changes_since(std::uint64_t since, std::vector<GraphEvent>& out) const;

  /// True if any advertised cost is ≤ 0. Incremental repair assumes
  /// strictly positive costs (parents strictly closer than children);
  /// degenerate databases force the full path.
  bool has_nonpositive_cost() const { return nonpositive_entries_ > 0; }

  /// Patches the graph for an accepted LSA. `previous` is the LSA it
  /// replaced (null on first sight of the origin).
  void apply(const LsaPtr& lsa, const Lsa* previous);

  /// Directed edge from→to, or null. Degree-bounded linear scan.
  const DenseEdge* find_edge(RouterIndex from, RouterIndex to) const;

  SpfArrays& scratch() const { return scratch_; }

 private:
  RouterIndex intern(net::Ipv4Addr router);
  DenseEdge* find_edge_mut(RouterIndex from, RouterIndex to);
  void record(GraphEventKind kind, RouterIndex u, RouterIndex v,
              int cost_uv, int cost_vu);
  void track_cost(int cost, int delta);

  std::vector<net::Ipv4Addr> routers_;
  std::vector<LsaPtr> lsas_;
  std::vector<std::vector<DenseEdge>> adj_;
  std::unordered_map<net::Ipv4Addr, RouterIndex> index_;

  std::uint64_t version_ = 0;
  std::uint64_t log_base_ = 0;  ///< events_[0] has version log_base_ + 1
  std::vector<GraphEvent> events_;
  int nonpositive_entries_ = 0;

  mutable SpfArrays scratch_;

  // The log only exists to classify small deltas; once it outgrows this
  // bound every consumer would fall back to full SPF anyway, so the old
  // half is dropped and `changes_since` reports the trim.
  static constexpr std::size_t kMaxLog = 512;
};

}  // namespace f2t::routing
