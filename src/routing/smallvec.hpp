#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>

namespace f2t::routing {

/// Small-buffer vector for the forwarding fast path.
///
/// The first `N` elements live inline in the object; growing past N
/// spills to a heap buffer. Per-hop FIB resolution keeps its result in a
/// `SmallVec<NextHop, 4>`, so the common case (ECMP groups of 1–4
/// members) performs zero heap allocations — the property the paper's
/// scale sweeps lean on when millions of forwarding decisions are made
/// per simulated second.
///
/// Restricted to trivially-copyable, default-constructible element types
/// (next hops, adjacency indices): elements are moved with plain copies
/// and never individually destroyed.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec needs a nonzero inline capacity");
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialised for POD-like elements");
  static_assert(std::is_default_constructible_v<T>,
                "SmallVec requires default-constructible elements");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  SmallVec(const SmallVec& other) { append(other.data_, other.size_); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      size_ = 0;  // keep whatever capacity we already have
      append(other.data_, other.size_);
    }
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  void push_back(const T& value) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = value;
  }

  /// Drops all elements but keeps the current capacity (inline or heap),
  /// so a reused scratch vector never re-allocates.
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  bool on_heap() const { return data_ != inline_buf_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  void grow(std::size_t need) {
    std::size_t cap = capacity_ * 2;
    while (cap < need) cap *= 2;
    T* heap = new T[cap];
    std::copy(data_, data_ + size_, heap);
    if (on_heap()) delete[] data_;
    data_ = heap;
    capacity_ = cap;
  }

  void append(const T* src, std::size_t n) {
    if (size_ + n > capacity_) grow(size_ + n);
    std::copy(src, src + n, data_ + size_);
    size_ += n;
  }

  void release() {
    if (on_heap()) delete[] data_;
    data_ = inline_buf_;
    size_ = 0;
    capacity_ = N;
  }

  void steal(SmallVec& other) {
    if (other.on_heap()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_buf_;
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      data_ = inline_buf_;
      capacity_ = N;
      size_ = 0;
      append(other.data_, other.size_);
      other.size_ = 0;
    }
  }

  T inline_buf_[N] = {};
  T* data_ = inline_buf_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace f2t::routing
