#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/l3switch.hpp"
#include "routing/lsdb.hpp"
#include "routing/spf.hpp"

namespace f2t::routing {

/// Timing model of a centralized routing scheme (§V "Centralized Routing
/// DCNs", in the spirit of PortLand [26]): the switch that detects a
/// failure reports it to the controller over an out-of-band channel, the
/// controller recomputes routes from its global view, and pushes new FIBs
/// to every affected switch. Recovery therefore costs
///   detection + report + (batch) + compute + push + FIB update,
/// and F²Tree's local reroute covers exactly that window.
struct CentralConfig {
  sim::Time report_delay = sim::millis(2);   ///< switch -> controller
  sim::Time batch_window = sim::millis(10);  ///< coalesce nearby reports
  sim::Time compute_delay = sim::millis(30); ///< global route computation
  sim::Time push_delay = sim::millis(2);     ///< controller -> switch
  sim::Time fib_update_delay = sim::millis(10);
};

/// The controller plus its per-switch agents. Replaces the distributed
/// protocol entirely: switches run no routing code, they only report port
/// state transitions; the controller owns the global topology view and
/// writes every FIB.
class CentralController {
 public:
  explicit CentralController(const CentralConfig& config = {})
      : config_(config) {}

  struct Counters {
    std::uint64_t reports = 0;
    std::uint64_t computations = 0;
    std::uint64_t fib_pushes = 0;
  };

  /// Registers a switch (and optionally the prefixes it originates, e.g.
  /// a ToR's rack subnet). Call for every switch before converge().
  void manage(net::L3Switch& sw, std::vector<net::Prefix> prefixes = {});

  /// Computes routes from the current global view and installs them on
  /// every managed switch synchronously (initial convergence at t = 0).
  void converge();

  const Counters& counters() const { return counters_; }
  const CentralConfig& config() const { return config_; }

  /// Observer fired when a pushed FIB actually lands on a switch (after
  /// push + FIB-update delay). Unset by default; one branch per push.
  using PushHook = std::function<void(net::L3Switch&)>;
  void set_push_hook(PushHook hook) { push_hook_ = std::move(hook); }

 private:
  struct Managed {
    net::L3Switch* sw = nullptr;
    std::vector<net::Prefix> prefixes;
  };

  void on_report(net::L3Switch& sw);
  void recompute_and_push();
  Lsdb build_view() const;
  LsaPtr view_of(const Managed& m) const;

  CentralConfig config_;
  std::vector<Managed> switches_;
  sim::Simulator* sim_ = nullptr;
  sim::EventId pending_compute_ = sim::kInvalidEventId;
  std::uint64_t view_version_ = 0;
  Counters counters_;
  PushHook push_hook_;
};

}  // namespace f2t::routing
