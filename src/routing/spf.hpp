#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"
#include "routing/lsdb.hpp"
#include "routing/lsgraph.hpp"
#include "routing/route.hpp"

namespace f2t::routing {

/// Inputs describing the computing router's own attachment points:
/// every local port that faces another router, with the peer's id.
/// Only detected-up ports should be listed.
struct LocalAdjacency {
  net::PortId port = net::kInvalidPort;
  net::Ipv4Addr neighbor;

  friend bool operator==(const LocalAdjacency&, const LocalAdjacency&) =
      default;
};

/// Shortest-path-first calculation (Dijkstra with ECMP).
///
/// Edges require two-way agreement (u lists v AND v lists u), as in OSPF,
/// so a router whose LSA is stale cannot attract traffic over a dead link
/// for longer than flooding takes. For every destination router, all
/// equal-cost first hops are retained; routes are emitted for each prefix
/// the destination redistributes, mapping first-hop routers back to the
/// local ports in `adjacency` (parallel links to the same neighbor all
/// become next hops, which is how the testbed's doubled across links form
/// a 2-wide ECMP group).
///
/// Runs on the LSDB's dense link-state graph: the two-way check is read
/// from precomputed per-edge flags and the per-run state lives in flat
/// index-addressed arrays (the graph's shared scratch), so a run performs
/// no hashing and no per-run clearing.
std::vector<Route> compute_spf(const Lsdb& lsdb, net::Ipv4Addr self,
                               const std::vector<LocalAdjacency>& adjacency);

/// Reachability probe on the LSDB graph (two-way check applied); used by
/// tests and topology validation.
bool lsdb_reachable(const Lsdb& lsdb, net::Ipv4Addr from, net::Ipv4Addr to);

/// Incremental SPF engine: one instance per computing router.
///
/// `run` returns exactly what `compute_spf` would return for the same
/// (lsdb, self, adjacency) inputs — that equivalence is the contract,
/// enforced by tests/test_spf_incremental.cpp. Internally the solver keeps
/// the previous run's shortest-path tree and, when the graph's event log
/// shows the delta since then is a single two-way link coming up or going
/// down away from `self`, repairs only the affected subtree instead of
/// re-running global Dijkstra.
///
/// Fallback to a full run happens whenever confinement cannot be proven:
/// first run, event log trimmed, any cost change, any event touching
/// `self` (its relaxation trusts local adjacency, not the two-way set),
/// a changed local adjacency, more than one structural event, or any
/// non-positive cost in the database (subtree repair assumes parents are
/// strictly closer than children). Prefix-only LSA churn produces no
/// graph events, so the cached tree is reused and only route emission
/// re-runs.
class SpfSolver {
 public:
  /// Computes this router's OSPF routes. Always equivalent to
  /// `compute_spf(lsdb, self, adjacency)`.
  std::vector<Route> run(const Lsdb& lsdb, net::Ipv4Addr self,
                         const std::vector<LocalAdjacency>& adjacency);

  /// True when the previous `run` repaired the cached tree instead of
  /// recomputing it (including the no-structural-change case).
  bool last_run_incremental() const { return last_incremental_; }

  /// Drops the cached tree; the next `run` recomputes from scratch.
  void reset() { have_state_ = false; }

 private:
  // Identity of the graph the cached tree was computed on. Compared by
  // address: a different (or reconstructed) Lsdb invalidates the state.
  const LinkStateGraph* graph_ = nullptr;
  std::uint64_t last_version_ = 0;
  RouterIndex self_index_ = kNoRouter;
  std::vector<LocalAdjacency> last_adjacency_;
  bool have_state_ = false;
  bool last_incremental_ = false;

  SpfArrays arrays_;  ///< persistent shortest-path tree, epoch-stamped

  // Repair scratch, reused across runs (see spf.cpp for the algorithms).
  std::vector<GraphEvent> events_;
  std::vector<RouterIndex> affected_;
  std::vector<RouterIndex> stack_;
  std::vector<std::uint32_t> affected_mark_;
  std::uint32_t affected_epoch_ = 0;
  std::vector<std::uint32_t> settled_mark_;
  std::uint32_t settled_epoch_ = 0;
};

}  // namespace f2t::routing
