#pragma once

#include <unordered_map>
#include <vector>

#include "net/ids.hpp"
#include "routing/lsdb.hpp"
#include "routing/route.hpp"

namespace f2t::routing {

/// Inputs describing the computing router's own attachment points:
/// every local port that faces another router, with the peer's id.
/// Only detected-up ports should be listed.
struct LocalAdjacency {
  net::PortId port = net::kInvalidPort;
  net::Ipv4Addr neighbor;
};

/// Shortest-path-first calculation (Dijkstra with ECMP).
///
/// Edges require two-way agreement (u lists v AND v lists u), as in OSPF,
/// so a router whose LSA is stale cannot attract traffic over a dead link
/// for longer than flooding takes. For every destination router, all
/// equal-cost first hops are retained; routes are emitted for each prefix
/// the destination redistributes, mapping first-hop routers back to the
/// local ports in `adjacency` (parallel links to the same neighbor all
/// become next hops, which is how the testbed's doubled across links form
/// a 2-wide ECMP group).
std::vector<Route> compute_spf(const Lsdb& lsdb, net::Ipv4Addr self,
                               const std::vector<LocalAdjacency>& adjacency);

/// Reachability probe on the LSDB graph (two-way check applied); used by
/// tests and topology validation.
bool lsdb_reachable(const Lsdb& lsdb, net::Ipv4Addr from, net::Ipv4Addr to);

}  // namespace f2t::routing
