#pragma once

#include <memory>
#include <vector>

#include "net/l3switch.hpp"
#include "routing/lsdb.hpp"
#include "routing/spf.hpp"
#include "routing/spf_throttle.hpp"

namespace f2t::routing {

/// Protocol timing knobs. Defaults reproduce the anatomy the paper
/// measured: 200 ms SPF timer (with churn backoff) and 10 ms FIB update,
/// with sub-millisecond per-hop LSA processing ("LSA messages take very
/// little time to get propagated").
struct OspfConfig {
  SpfThrottleConfig throttle;
  sim::Time fib_update_delay = sim::millis(10);
  sim::Time flood_processing_delay = sim::micros(300);
  /// Per-router SPF computation cost: the calculation takes
  /// `spf_compute_per_router * |LSDB|` before the FIB download starts.
  /// Zero by default (the 10 ms FIB delay measured on the paper's small
  /// testbed already includes its computation); the scale-sweep bench
  /// sets it to model why "failure recovery … may be much longer" in a
  /// production-size DCN (§I / [12]).
  sim::Time spf_compute_per_router = 0;
  /// Periodic LSA refresh (OSPF's LSRefreshTime, 30 min in the RFC):
  /// re-originates the self LSA so databases re-synchronize even if a
  /// flood was lost to congestion. Zero disables (the default: flooding
  /// redundancy over a multi-rooted tree makes total loss improbable, and
  /// refresh noise would perturb the paper's timing experiments).
  sim::Time lsa_refresh_interval = 0;
};

/// Link-state routing instance running on one L3 switch.
///
/// Responsibilities: originate the switch's LSA whenever a local port's
/// detected state changes, flood LSAs hop-by-hop, maintain the LSDB, run
/// throttled SPF, and install the result into the switch's FIB after the
/// FIB-update delay. Static and connected routes are never touched.
class Ospf {
 public:
  struct Counters {
    std::uint64_t lsas_originated = 0;
    std::uint64_t lsas_accepted = 0;
    std::uint64_t lsas_ignored = 0;
    std::uint64_t spf_runs = 0;
    /// Subset of spf_runs served by the incremental subtree repair
    /// instead of a full Dijkstra (see SpfSolver).
    std::uint64_t spf_incremental_runs = 0;
    /// FIB installs that actually changed at least one entry. Recomputes
    /// yielding an identical route set leave the FIB (and its generation)
    /// untouched and count as fib_noop_installs instead.
    std::uint64_t fib_installs = 0;
    std::uint64_t fib_noop_installs = 0;
  };

  /// Protocol milestones surfaced to the observability layer. Fired at the
  /// sim time the milestone happens (e.g. kFibInstall only after the
  /// FIB-update delay elapsed and the routes are live). SPF runs report
  /// which solver path served them — kSpfRun for a full Dijkstra,
  /// kSpfRunIncremental when the incremental subtree repair applied — so
  /// the span tracer can attribute recovery latency to the solver mode.
  enum class ObsEvent {
    kLsaOriginated,
    kLsaAccepted,
    kSpfRun,
    kSpfRunIncremental,
    kFibInstall,
  };
  using ObsHook = std::function<void(ObsEvent)>;

  Ospf(net::L3Switch& sw, const OspfConfig& config = {});

  /// Unset by default; guarded with one branch per milestone (never on the
  /// per-packet path).
  void set_obs_hook(ObsHook hook) { obs_hook_ = std::move(hook); }

  net::L3Switch& device() { return sw_; }
  const Lsdb& lsdb() const { return lsdb_; }
  const Counters& counters() const { return counters_; }
  const OspfConfig& config() const { return config_; }
  SpfThrottle& throttle() { return throttle_; }

  /// Adds a prefix this router redistributes (a ToR's rack subnet).
  void redistribute(const net::Prefix& prefix);
  const std::vector<net::Prefix>& redistributed() const {
    return redistributed_;
  }

  /// Hooks the instance into the switch (control handler + port-state
  /// observer). Call once after topology construction.
  void attach();

  /// The LSA describing this router's current local state.
  LsaPtr make_self_lsa();

  /// Jump-starts the network to a converged state at t=0: used by
  /// experiment setup instead of simulating cold-start flooding. Installs
  /// the given full LSDB and runs SPF + FIB install synchronously.
  void warm_start(const std::vector<LsaPtr>& all_lsas);

  /// Runs SPF against the current LSDB and installs the result into the
  /// FIB immediately (no timers). Exposed for tests.
  void run_spf_now();

 private:
  void on_port_state(net::PortId port, bool up);
  void handle_control(net::PortId in_port, const net::Packet& packet);
  void originate_and_flood();
  void schedule_refresh();
  void flood(const LsaPtr& lsa, net::PortId except_port);
  void schedule_spf();
  void run_spf_and_schedule_install();
  std::vector<LocalAdjacency> live_adjacency() const;

  /// Runs the solver and drops redistributed prefixes from the result.
  std::vector<Route> compute_routes();
  /// Applies a computed route set to the FIB as a delta and maintains the
  /// install counters/observability events. Shared tail of every install.
  void install_routes(std::vector<Route> routes);

  net::L3Switch& sw_;
  OspfConfig config_;
  Lsdb lsdb_;
  SpfSolver solver_;
  SpfThrottle throttle_;
  std::vector<net::Prefix> redistributed_;
  std::uint64_t self_sequence_ = 0;
  sim::EventId pending_spf_ = sim::kInvalidEventId;
  sim::EventId pending_install_ = sim::kInvalidEventId;
  Counters counters_;
  ObsHook obs_hook_;
};

/// Builds all self-LSAs and warm-starts every instance with the union —
/// the standard way experiments reach initial convergence instantly.
void warm_start_all(std::vector<std::unique_ptr<Ospf>>& instances);

}  // namespace f2t::routing
