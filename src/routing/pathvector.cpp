#include "routing/pathvector.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace f2t::routing {

namespace {

bool contains(const std::vector<net::Ipv4Addr>& path, net::Ipv4Addr router) {
  return std::find(path.begin(), path.end(), router) != path.end();
}

/// Shortest path wins; ties break on the lexicographically smallest path
/// so selection is deterministic.
bool better(const std::vector<net::Ipv4Addr>& a,
            const std::vector<net::Ipv4Addr>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

}  // namespace

PathVector::PathVector(net::L3Switch& sw, const PathVectorConfig& config)
    : sw_(sw), config_(config) {}

void PathVector::redistribute(const net::Prefix& prefix) {
  PrefixState& state = prefixes_[prefix];
  state.originated = true;
  state.exported = {sw_.router_id()};
}

void PathVector::attach() {
  sw_.add_control_handler([this](net::PortId port, const net::Packet& packet) {
    handle_control(port, packet);
  });
  sw_.add_port_state_handler(
      [this](net::PortId port, bool up) { on_port_state(port, up); });
}

std::vector<net::PortId> PathVector::neighbor_ports() const {
  std::vector<net::PortId> ports;
  for (net::PortId p = 0; p < sw_.port_count(); ++p) {
    if (sw_.port(p).peer_is_switch && sw_.port_detected_up(p)) {
      ports.push_back(p);
    }
  }
  return ports;
}

bool PathVector::reselect(const net::Prefix& prefix) {
  PrefixState& state = prefixes_[prefix];
  std::vector<net::Ipv4Addr> fresh;
  if (state.originated) {
    fresh = {sw_.router_id()};
  } else {
    const std::vector<net::Ipv4Addr>* best = nullptr;
    for (const auto& [port, adj] : state.in) {
      if (!sw_.port_detected_up(port)) continue;
      if (contains(adj.path, sw_.router_id())) continue;
      if (best == nullptr || better(adj.path, *best)) best = &adj.path;
    }
    if (best != nullptr) {
      fresh.reserve(best->size() + 1);
      fresh.push_back(sw_.router_id());
      fresh.insert(fresh.end(), best->begin(), best->end());
    }
  }
  if (fresh == state.exported) return false;
  state.exported = std::move(fresh);
  return true;
}

std::vector<Route> PathVector::build_routes() const {
  std::vector<Route> routes;
  for (const auto& [prefix, state] : prefixes_) {
    if (state.originated) continue;
    // Best length among valid adjacency entries.
    std::size_t best_len = ~std::size_t{0};
    for (const auto& [port, adj] : state.in) {
      if (!sw_.port_detected_up(port)) continue;
      if (contains(adj.path, sw_.router_id())) continue;
      best_len = std::min(best_len, adj.path.size());
    }
    if (best_len == ~std::size_t{0}) continue;
    std::vector<NextHop> hops;
    for (const auto& [port, adj] : state.in) {
      if (!sw_.port_detected_up(port)) continue;
      if (contains(adj.path, sw_.router_id())) continue;
      if (adj.path.size() != best_len) continue;
      hops.push_back(NextHop{port, sw_.port(port).peer_addr});
      if (!config_.multipath) break;
    }
    if (!hops.empty()) {
      routes.push_back(Route{prefix, std::move(hops), RouteSource::kOspf});
    }
  }
  return routes;
}

void PathVector::schedule_fib_install() {
  if (pending_install_ != sim::kInvalidEventId) return;
  pending_install_ =
      sw_.simulator().after(config_.fib_update_delay, [this] {
        pending_install_ = sim::kInvalidEventId;
        const std::size_t touched = sw_.fib().apply_source_delta(
            RouteSource::kOspf, build_routes());
        if (touched > 0) {
          ++counters_.fib_installs;
          if (obs_hook_) obs_hook_(ObsEvent::kFibInstall);
        } else {
          ++counters_.fib_noop_installs;
        }
      });
}

void PathVector::schedule_export(const net::Prefix& prefix) {
  auto& sim = sw_.simulator();
  for (const net::PortId port : neighbor_ports()) {
    NeighborOut& out = out_[port];
    if (std::find(out.pending.begin(), out.pending.end(), prefix) ==
        out.pending.end()) {
      out.pending.push_back(prefix);
    }
    if (out.timer != sim::kInvalidEventId) continue;
    // MRAI: the first update goes after the processing delay; repeats to
    // the same neighbour wait out the interval.
    const sim::Time earliest =
        out.last_sent < 0 ? sim.now() : out.last_sent + config_.mrai;
    const sim::Time when =
        std::max(earliest, sim.now()) + config_.processing_delay;
    out.timer = sim.at(when, [this, port] {
      out_[port].timer = sim::kInvalidEventId;
      flush_exports(port);
    });
  }
}

void PathVector::flush_exports(net::PortId port) {
  NeighborOut& out = out_[port];
  if (out.pending.empty() || !sw_.port_detected_up(port)) {
    out.pending.clear();
    return;
  }
  auto update = std::make_shared<PvUpdate>();
  update->origin = sw_.router_id();
  for (const net::Prefix& prefix : out.pending) {
    const PrefixState& state = prefixes_[prefix];
    if (!transit_ && !state.originated) continue;  // no ToR valley transit
    PvRoute route;
    route.prefix = prefix;
    route.path = state.exported;
    route.withdraw = state.exported.empty();
    update->routes.push_back(std::move(route));
  }
  if (update->routes.empty()) {
    out.last_sent = sw_.simulator().now();
    return;
  }
  out.pending.clear();
  out.last_sent = sw_.simulator().now();

  net::Packet packet;
  packet.src = sw_.router_id();
  packet.dst = sw_.port(port).peer_addr;
  packet.proto = net::Protocol::kRouting;
  packet.size_bytes = update->wire_size();
  packet.control = update;
  ++counters_.updates_sent;
  if (obs_hook_) obs_hook_(ObsEvent::kUpdateSent);
  sw_.send(port, std::move(packet));
}

void PathVector::handle_control(net::PortId in_port,
                                const net::Packet& packet) {
  const auto update =
      std::dynamic_pointer_cast<const PvUpdate>(packet.control);
  if (!update) return;
  ++counters_.updates_received;
  if (obs_hook_) obs_hook_(ObsEvent::kUpdateReceived);
  bool any_change = false;
  for (const PvRoute& route : update->routes) {
    PrefixState& state = prefixes_[route.prefix];
    if (route.withdraw || route.path.empty() ||
        contains(route.path, sw_.router_id())) {
      if (state.in.erase(in_port) > 0) {
        ++counters_.routes_withdrawn;
        any_change = true;
      }
    } else {
      auto [it, inserted] = state.in.insert_or_assign(
          in_port, AdjIn{route.path});
      (void)it;
      any_change = true;
    }
    if (reselect(route.prefix)) schedule_export(route.prefix);
  }
  if (any_change) schedule_fib_install();
}

void PathVector::on_port_state(net::PortId port, bool up) {
  bool any_change = false;
  if (!up) {
    // Session loss: everything learned from that neighbour is invalid.
    for (auto& [prefix, state] : prefixes_) {
      if (state.in.erase(port) > 0) {
        ++counters_.routes_withdrawn;
        any_change = true;
      }
      if (reselect(prefix)) schedule_export(prefix);
    }
    // Dump any queued updates for the dead session.
    if (auto it = out_.find(port); it != out_.end()) {
      if (it->second.timer != sim::kInvalidEventId) {
        sw_.simulator().cancel(it->second.timer);
      }
      out_.erase(it);
    }
  } else {
    // Session (re-)established: advertise the full table to the neighbour.
    for (const auto& [prefix, state] : prefixes_) {
      if (!state.exported.empty() && (transit_ || state.originated)) {
        NeighborOut& out = out_[port];
        out.pending.push_back(prefix);
      }
    }
    NeighborOut& out = out_[port];
    if (!out.pending.empty() && out.timer == sim::kInvalidEventId) {
      out.timer = sw_.simulator().after(config_.processing_delay,
                                        [this, port] {
                                          out_[port].timer =
                                              sim::kInvalidEventId;
                                          flush_exports(port);
                                        });
    }
    any_change = true;
  }
  if (any_change) schedule_fib_install();
}

void PathVector::warm_start_all(
    const std::vector<std::unique_ptr<PathVector>>& instances) {
  // Map router id -> instance for neighbour lookups.
  std::unordered_map<net::Ipv4Addr, PathVector*> by_router;
  for (const auto& instance : instances) {
    by_router.emplace(instance->sw_.router_id(), instance.get());
  }
  // Iterate synchronous exchange rounds to a fixed point. Path lengths in
  // a DCN are short, so this converges in a handful of rounds.
  bool changed = true;
  std::size_t guard = instances.size() * 8 + 8;
  while (changed && guard-- > 0) {
    changed = false;
    for (const auto& instance : instances) {
      PathVector& self = *instance;
      for (const net::PortId port : self.neighbor_ports()) {
        const auto peer_it = by_router.find(self.sw_.port(port).peer_addr);
        if (peer_it == by_router.end()) continue;
        const PathVector& peer = *peer_it->second;
        for (const auto& [prefix, peer_state] : peer.prefixes_) {
          PrefixState& state = self.prefixes_[prefix];
          const bool valid = !peer_state.exported.empty() &&
                             (peer.transit_ || peer_state.originated) &&
                             !contains(peer_state.exported,
                                       self.sw_.router_id());
          const auto it = state.in.find(port);
          if (valid) {
            if (it == state.in.end() || it->second.path !=
                                            peer_state.exported) {
              state.in.insert_or_assign(port, AdjIn{peer_state.exported});
              changed = true;
            }
          } else if (it != state.in.end()) {
            state.in.erase(it);
            changed = true;
          }
          if (self.reselect(prefix)) changed = true;
        }
      }
    }
  }
  for (const auto& instance : instances) {
    const std::size_t touched = instance->sw_.fib().apply_source_delta(
        RouteSource::kOspf, instance->build_routes());
    if (touched > 0) {
      ++instance->counters_.fib_installs;
    } else {
      ++instance->counters_.fib_noop_installs;
    }
  }
}

}  // namespace f2t::routing
