#include "routing/detection.hpp"

namespace f2t::routing {

namespace {
std::uint64_t key_of(net::NodeId node, net::PortId port) {
  return (std::uint64_t{node} << 16) | port;
}
}  // namespace

DetectionAgent::DetectionAgent(net::Network& network,
                               const DetectionConfig& config)
    : network_(network), config_(config) {}

void DetectionAgent::attach_all() {
  for (net::Link* link : network_.links()) {
    link->add_observer(
        [this](net::Link& l, bool up) { on_link_event(l, up); });
  }
  // Links connected after this call get the same observer the moment they
  // are wired; without this, a late add_host/connect produced a link whose
  // failures were never detected.
  network_.add_link_hook([this](net::Link& link) {
    link.add_observer(
        [this](net::Link& l, bool up) { on_link_event(l, up); });
  });
}

void DetectionAgent::on_link_event(net::Link& link, bool up) {
  schedule_for_end(link.end_a(), up);
  schedule_for_end(link.end_b(), up);
}

void DetectionAgent::schedule_for_end(const net::Link::End& end, bool up) {
  auto* sw = dynamic_cast<net::L3Switch*>(end.node);
  if (sw == nullptr) return;  // hosts have no detector in this model
  auto& sim = network_.simulator();
  const std::uint64_t key = key_of(sw->id(), end.port);
  // A flap within the window supersedes the pending report.
  if (const auto it = pending_.find(key); it != pending_.end()) {
    sim.cancel(it->second);
    pending_.erase(it);
    ++counters_.flaps_suppressed;
  }
  const sim::Time delay = up ? config_.up_delay : config_.down_delay;
  const net::PortId port = end.port;
  ++counters_.reports_scheduled;
  pending_[key] = sim.after(delay, [this, sw, port, up, key] {
    pending_.erase(key);
    ++counters_.detections_fired;
    sw->set_port_detected(port, up);
  });
}

}  // namespace f2t::routing
