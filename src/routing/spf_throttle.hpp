#pragma once

#include "sim/time.hpp"

namespace f2t::routing {

/// SPF scheduling parameters (Quagga/Cisco-style throttling).
///
/// `initial_delay` is the familiar 200 ms shortest-path-calculation timer
/// the paper's testbed measured; `max_wait` caps the exponential backoff
/// that inflates the timer to multiple seconds under failure churn
/// (the paper observed ~9 s in the Fig 6 experiment).
struct SpfThrottleConfig {
  sim::Time initial_delay = sim::millis(200);
  sim::Time max_wait = sim::seconds(10);
};

/// Exponential-backoff SPF timer.
///
/// Each trigger schedules an SPF run no earlier than `initial_delay` from
/// now and no earlier than the previous run plus the current hold time.
/// The hold doubles once per *scheduled run* (capped at max_wait): any
/// number of triggers that coalesce into one pending run cost exactly one
/// doubling, matching Cisco/Quagga "spf throttling" ([14]), which
/// increments the timer per run of the backoff machinery — not per LSA. A
/// quiet period of twice the current hold resets the backoff; together
/// these reproduce the multi-second timers seen under frequent failures
/// without inflating them on single-failure LSA bursts.
class SpfThrottle {
 public:
  explicit SpfThrottle(const SpfThrottleConfig& config = {});

  /// Called when topology change requires an SPF; returns the absolute
  /// time at which the run should execute. Repeated calls before ran()
  /// describe the same pending run and do not back off further.
  sim::Time schedule(sim::Time now);

  /// Called when the SPF actually runs; completes the pending run so the
  /// next trigger starts (and backs off) a new one.
  void ran(sim::Time now) {
    last_run_ = now;
    pending_ = false;
  }

  sim::Time current_hold() const { return hold_; }
  /// True between a schedule() and the ran() that retires it.
  bool pending() const { return pending_; }
  const SpfThrottleConfig& config() const { return config_; }

 private:
  SpfThrottleConfig config_;
  sim::Time hold_;
  sim::Time last_run_;
  bool pending_ = false;
};

}  // namespace f2t::routing
