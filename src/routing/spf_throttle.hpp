#pragma once

#include "sim/time.hpp"

namespace f2t::routing {

/// SPF scheduling parameters (Quagga/Cisco-style throttling).
///
/// `initial_delay` is the familiar 200 ms shortest-path-calculation timer
/// the paper's testbed measured; `max_wait` caps the exponential backoff
/// that inflates the timer to multiple seconds under failure churn
/// (the paper observed ~9 s in the Fig 6 experiment).
struct SpfThrottleConfig {
  sim::Time initial_delay = sim::millis(200);
  sim::Time max_wait = sim::seconds(10);
};

/// Exponential-backoff SPF timer.
///
/// Each trigger schedules an SPF run no earlier than `initial_delay` from
/// now and no earlier than the previous run plus the current hold time;
/// every scheduling decision doubles the hold (capped at max_wait). A
/// quiet period of twice the current hold resets it — this mirrors the
/// "spf throttling" behaviour cited by the paper ([14]) and reproduces the
/// multi-second timers seen under frequent failures.
class SpfThrottle {
 public:
  explicit SpfThrottle(const SpfThrottleConfig& config = {});

  /// Called when topology change requires an SPF; returns the absolute
  /// time at which the run should execute.
  sim::Time schedule(sim::Time now);

  /// Called when the SPF actually runs.
  void ran(sim::Time now) { last_run_ = now; }

  sim::Time current_hold() const { return hold_; }
  const SpfThrottleConfig& config() const { return config_; }

 private:
  SpfThrottleConfig config_;
  sim::Time hold_;
  sim::Time last_run_;
};

}  // namespace f2t::routing
