#include "routing/route_cache.hpp"

namespace f2t::routing {

const Fib::HopVec& ResolvedRouteCache::resolve(const Fib& fib,
                                               net::Ipv4Addr dst,
                                               Fib::PortStateView ports,
                                               std::uint64_t port_epoch) {
  // Both counters are monotone, so the sum strictly increases whenever
  // either does — a single 64-bit stamp covers both invalidation sources.
  const std::uint64_t generation = fib.generation() + port_epoch;
  if (entries_.size() >= kMaxEntries) entries_.clear();
  Entry& entry = entries_[dst.value()];
  if (entry.generation == generation) {
    ++hits_;
    last_source_ = entry.source;
    return entry.hops;
  }
  ++misses_;
  entry.hops.clear();
  fib.lookup_into(dst, ports, entry.hops, entry.source);
  entry.generation = generation;
  last_source_ = entry.source;
  return entry.hops;
}

void ResolvedRouteCache::clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace f2t::routing
