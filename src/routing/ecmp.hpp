#pragma once

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"
#include "routing/route.hpp"

namespace f2t::routing {

/// Deterministic five-tuple hash for ECMP member selection.
///
/// The salt is the switch id: hashing the same flow differently at each hop
/// avoids the classic ECMP polarization problem, matching what production
/// gear does with per-device hash seeds.
std::uint64_t ecmp_hash(const net::Packet& packet, std::uint64_t salt);

/// Picks the ECMP member index for a packet among `n` usable next hops.
///
/// Selection is Lemire's fixed-point reduction of the 64-bit hash,
/// `(hash * n) >> 64` via a 128-bit multiply: unbiased for every member
/// count (a plain `% n` over-selects low indices for non-power-of-two
/// sets — e.g. the 3 live uplinks after one failure) and divide-free on
/// the forwarding fast path. Note: changing this mapping re-routes every
/// simulated flow, so recorded scenario baselines assume this reduction.
std::size_t ecmp_select(const net::Packet& packet, std::uint64_t salt,
                        std::size_t n);

/// Picks the ECMP member for a packet from a resolved next-hop span (the
/// forwarding fast path: no index bookkeeping at the call site). `n` must
/// be nonzero; selection is identical to `ecmp_select`.
const NextHop& ecmp_pick(const net::Packet& packet, std::uint64_t salt,
                         const NextHop* hops, std::size_t n);

}  // namespace f2t::routing
