#pragma once

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"
#include "routing/route.hpp"

namespace f2t::routing {

/// Deterministic five-tuple hash for ECMP member selection.
///
/// The salt is the switch id: hashing the same flow differently at each hop
/// avoids the classic ECMP polarization problem, matching what production
/// gear does with per-device hash seeds.
std::uint64_t ecmp_hash(const net::Packet& packet, std::uint64_t salt);

/// Picks the ECMP member index for a packet among `n` usable next hops.
std::size_t ecmp_select(const net::Packet& packet, std::uint64_t salt,
                        std::size_t n);

/// Picks the ECMP member for a packet from a resolved next-hop span (the
/// forwarding fast path: no index bookkeeping at the call site). `n` must
/// be nonzero; selection is identical to `ecmp_select`.
const NextHop& ecmp_pick(const net::Packet& packet, std::uint64_t salt,
                         const NextHop* hops, std::size_t n);

}  // namespace f2t::routing
