#include "routing/ospf.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace f2t::routing {

Ospf::Ospf(net::L3Switch& sw, const OspfConfig& config)
    : sw_(sw), config_(config), throttle_(config.throttle) {}

void Ospf::redistribute(const net::Prefix& prefix) {
  if (std::find(redistributed_.begin(), redistributed_.end(), prefix) ==
      redistributed_.end()) {
    redistributed_.push_back(prefix);
  }
}

void Ospf::attach() {
  sw_.add_control_handler([this](net::PortId port, const net::Packet& packet) {
    handle_control(port, packet);
  });
  sw_.add_port_state_handler(
      [this](net::PortId port, bool up) { on_port_state(port, up); });
  if (config_.lsa_refresh_interval > 0) schedule_refresh();
}

void Ospf::schedule_refresh() {
  sw_.simulator().after(config_.lsa_refresh_interval, [this] {
    originate_and_flood();
    schedule_spf();  // a refresh may carry news if a flood was lost
    schedule_refresh();
  });
}

LsaPtr Ospf::make_self_lsa() {
  auto lsa = std::make_shared<Lsa>();
  lsa->origin = sw_.router_id();
  lsa->sequence = ++self_sequence_;
  for (net::PortId p = 0; p < sw_.port_count(); ++p) {
    const auto& info = sw_.port(p);
    if (!info.peer_is_switch || !sw_.port_detected_up(p)) continue;
    // Adjacencies are router-level: deduplicate parallel links.
    const LsaLink link{info.peer_addr, 1};
    if (std::find(lsa->links.begin(), lsa->links.end(), link) ==
        lsa->links.end()) {
      lsa->links.push_back(link);
    }
  }
  lsa->prefixes = redistributed_;
  ++counters_.lsas_originated;
  if (obs_hook_) obs_hook_(ObsEvent::kLsaOriginated);
  return lsa;
}

void Ospf::warm_start(const std::vector<LsaPtr>& all_lsas) {
  for (const LsaPtr& lsa : all_lsas) lsdb_.consider(lsa);
  run_spf_now();
  throttle_.ran(sw_.simulator().now());
}

std::vector<Route> Ospf::compute_routes() {
  auto routes = solver_.run(lsdb_, sw_.router_id(), live_adjacency());
  if (solver_.last_run_incremental()) ++counters_.spf_incremental_runs;
  // Do not learn a route to a prefix we redistribute ourselves.
  std::erase_if(routes, [this](const Route& r) {
    return std::find(redistributed_.begin(), redistributed_.end(), r.prefix) !=
           redistributed_.end();
  });
  return routes;
}

void Ospf::install_routes(std::vector<Route> routes) {
  const std::size_t touched =
      sw_.fib().apply_source_delta(RouteSource::kOspf, std::move(routes));
  if (touched > 0) {
    ++counters_.fib_installs;
    if (obs_hook_) obs_hook_(ObsEvent::kFibInstall);
  } else {
    ++counters_.fib_noop_installs;
  }
}

void Ospf::run_spf_now() {
  ++counters_.spf_runs;
  auto routes = compute_routes();
  // The hook fires after the solver ran so the event can say whether the
  // incremental repair served this run.
  if (obs_hook_) {
    obs_hook_(solver_.last_run_incremental() ? ObsEvent::kSpfRunIncremental
                                             : ObsEvent::kSpfRun);
  }
  install_routes(std::move(routes));
}

std::vector<LocalAdjacency> Ospf::live_adjacency() const {
  std::vector<LocalAdjacency> adjacency;
  for (net::PortId p = 0; p < sw_.port_count(); ++p) {
    const auto& info = sw_.port(p);
    if (info.peer_is_switch && sw_.port_detected_up(p)) {
      adjacency.push_back(LocalAdjacency{p, info.peer_addr});
    }
  }
  return adjacency;
}

void Ospf::on_port_state(net::PortId /*port*/, bool /*up*/) {
  originate_and_flood();
  schedule_spf();
}

void Ospf::originate_and_flood() {
  LsaPtr lsa = make_self_lsa();
  lsdb_.consider(lsa);
  flood(lsa, net::kInvalidPort);
}

void Ospf::flood(const LsaPtr& lsa, net::PortId except_port) {
  auto& sim = sw_.simulator();
  for (net::PortId p = 0; p < sw_.port_count(); ++p) {
    if (p == except_port) continue;
    const auto& info = sw_.port(p);
    if (!info.peer_is_switch || !sw_.port_detected_up(p)) continue;
    net::Packet packet;
    packet.src = sw_.router_id();
    packet.dst = info.peer_addr;
    packet.proto = net::Protocol::kRouting;
    packet.size_bytes = lsa->wire_size();
    packet.control = lsa;
    // Per-hop protocol processing before the packet hits the wire.
    sim.after(config_.flood_processing_delay,
              [this, p, packet = std::move(packet)]() mutable {
                sw_.send(p, std::move(packet));
              });
  }
}

void Ospf::handle_control(net::PortId in_port, const net::Packet& packet) {
  const auto lsa = std::dynamic_pointer_cast<const Lsa>(packet.control);
  if (!lsa) return;
  if (!lsdb_.consider(lsa)) {
    ++counters_.lsas_ignored;
    return;
  }
  ++counters_.lsas_accepted;
  if (obs_hook_) obs_hook_(ObsEvent::kLsaAccepted);
  F2T_LOG(sw_.simulator().logger(), sim::LogLevel::kTrace,
          sw_.simulator().now(), sw_.name() << " accepted " << lsa->describe());
  flood(lsa, in_port);
  schedule_spf();
}

void Ospf::schedule_spf() {
  if (pending_spf_ != sim::kInvalidEventId) return;  // run already queued
  auto& sim = sw_.simulator();
  const sim::Time when = throttle_.schedule(sim.now());
  pending_spf_ = sim.at(when, [this] {
    pending_spf_ = sim::kInvalidEventId;
    run_spf_and_schedule_install();
  });
}

void Ospf::run_spf_and_schedule_install() {
  auto& sim = sw_.simulator();
  throttle_.ran(sim.now());
  ++counters_.spf_runs;
  auto routes = compute_routes();
  if (obs_hook_) {
    obs_hook_(solver_.last_run_incremental() ? ObsEvent::kSpfRunIncremental
                                             : ObsEvent::kSpfRun);
  }
  // Model the SPF computation cost (grows with the LSDB) plus the
  // RIB->FIB download delay: the data plane keeps using the old entries
  // (and the static backups) until the install completes. The install
  // event is scheduled even when the route set turns out unchanged — the
  // delta apply inside the callback then performs zero FIB writes — so
  // the simulated event stream is identical either way.
  const sim::Time compute =
      config_.spf_compute_per_router * static_cast<sim::Time>(lsdb_.size());
  if (pending_install_ != sim::kInvalidEventId) sim.cancel(pending_install_);
  pending_install_ = sim.after(
      compute + config_.fib_update_delay,
      [this, routes = std::move(routes)]() mutable {
        pending_install_ = sim::kInvalidEventId;
        install_routes(std::move(routes));
        F2T_LOG(sw_.simulator().logger(), sim::LogLevel::kDebug,
                sw_.simulator().now(), sw_.name() << " installed OSPF routes");
      });
}

void warm_start_all(std::vector<std::unique_ptr<Ospf>>& instances) {
  std::vector<LsaPtr> lsas;
  lsas.reserve(instances.size());
  for (auto& instance : instances) lsas.push_back(instance->make_self_lsa());
  for (auto& instance : instances) instance->warm_start(lsas);
}

}  // namespace f2t::routing
