#include "failure/random_failures.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::failure {

RandomFailureGenerator::RandomFailureGenerator(
    FailureInjector& injector, sim::Random rng,
    const RandomFailureOptions& options)
    : injector_(injector), rng_(std::move(rng)), options_(options) {
  for (net::Link* link : injector_.network().links()) {
    const bool a_switch =
        dynamic_cast<net::L3Switch*>(link->end_a().node) != nullptr;
    const bool b_switch =
        dynamic_cast<net::L3Switch*>(link->end_b().node) != nullptr;
    if (a_switch && b_switch) candidates_.push_back(link);
  }
  if (candidates_.empty()) {
    throw std::invalid_argument("random failures: no switch-switch links");
  }
}

void RandomFailureGenerator::start() {
  injector_.network().simulator().at(options_.start,
                                     [this] { schedule_next(); });
}

void RandomFailureGenerator::schedule_next() {
  auto& sim = injector_.network().simulator();
  if (sim.now() >= options_.stop) return;
  maybe_fail();
  sim.after(sim::lognormal_interval(rng_, options_.interarrival_median_s,
                                    options_.interarrival_sigma,
                                    sim::millis(1)),
            [this] { schedule_next(); });
}

void RandomFailureGenerator::maybe_fail() {
  auto& sim = injector_.network().simulator();
  if (injector_.active_failures() >= options_.max_concurrent) {
    ++suppressed_;  // concurrency cap reached: skip this failure slot
    return;
  }
  // Pick an up link uniformly at random (bounded retries for determinism).
  net::Link* victim = nullptr;
  for (int attempt = 0; attempt < 64 && victim == nullptr; ++attempt) {
    net::Link* candidate = candidates_[rng_.index(candidates_.size())];
    if (candidate->is_up()) victim = candidate;
  }
  if (victim == nullptr) {
    ++suppressed_;
    return;
  }
  injector_.fail_for(*victim, sim.now(),
                     sim::lognormal_interval(rng_, options_.duration_median_s,
                                             options_.duration_sigma,
                                             sim::millis(100)));
  ++injected_;
}

}  // namespace f2t::failure
