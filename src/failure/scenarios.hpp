#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "failure/injector.hpp"
#include "topo/topology.hpp"

namespace f2t::failure {

/// Deterministic data-plane walk of the path a 5-tuple would take right
/// now: repeated FIB lookup + ECMP selection from the source host's ToR.
/// Returns every node visited, source and destination hosts included, or
/// an empty vector when forwarding would fail. Requires converged FIBs.
std::vector<const net::Node*> trace_route(const net::Host& src,
                                          const net::Host& dst,
                                          const net::Packet& probe,
                                          int max_hops = 64);

/// Like trace_route, but also reports the exact links traversed —
/// required when parallel links exist (F² across-link pairs, Aspen's
/// duplicated core links) and a scenario must fail the member the flow
/// actually hashes onto.
struct TracedPath {
  std::vector<const net::Node*> nodes;  ///< src host ... dst host
  std::vector<net::Link*> links;        ///< nodes.size() - 1 entries

  bool empty() const { return nodes.empty(); }
};

TracedPath trace_route_detailed(const net::Host& src, const net::Host& dst,
                                const net::Packet& probe, int max_hops = 64);

/// The paper's failure conditions (Table IV), defined relative to a
/// reference flow's downward forwarding path. C8 is the parenthetical
/// case of §II-C ("the failures of both two across links of S8, which
/// F²Tree obviously degrades to fat tree"): Sx's downward link plus both
/// of its across links.
enum class Condition { kC1, kC2, kC3, kC4, kC5, kC6, kC7, kC8 };

const char* condition_name(Condition c);
/// True for the conditions that only exist in F² topologies (they fail
/// across links).
bool condition_requires_f2(Condition c);

/// A constructed failure scenario: the reference flow, the links to fail,
/// and the actors for diagnostics.
struct ScenarioPlan {
  Condition condition = Condition::kC1;
  const net::Host* src = nullptr;
  const net::Host* dst = nullptr;
  std::uint16_t sport = 0;
  std::uint16_t dport = 9000;
  std::vector<net::Link*> fail_links;
  net::L3Switch* sx = nullptr;       ///< downward agg on the path
  net::L3Switch* dst_tor = nullptr;  ///< destination ToR
  std::string description;
  /// Campaign metadata: the aggregation class of this scenario ("C1".."C8"
  /// for Table IV conditions, the link class for link sites) and whether
  /// the probe flow actually crosses a failed link pre-failure. An
  /// off-path scenario is still a valid experiment — its expected loss is
  /// zero (e.g. failing an idle across link), and campaigns report the
  /// two populations separately.
  std::string site_class;
  bool on_path = true;
};

/// Builds a Table IV condition against a *converged* topology. Picks the
/// paper's leftmost-to-rightmost host flow and searches source ports until
/// the ECMP path satisfies the condition's structural prerequisites (e.g.
/// the right across neighbour still owning a downlink to the destination
/// ToR). Returns nullopt only when no port in the search budget works.
/// `proto` must match the workload that will be measured — ECMP hashes
/// the protocol, so a plan built for UDP does not pin a TCP flow's path.
std::optional<ScenarioPlan> build_condition(
    const topo::BuiltTopology& topo, Condition condition,
    net::Protocol proto = net::Protocol::kUdp,
    std::uint16_t base_sport = 20000, int search_budget = 512);

/// Which layer pair a switch-to-switch link connects; the per-failure-
/// class breakdown campaigns aggregate over.
enum class LinkClass { kTorAgg, kAggCore, kAcross, kOther };

const char* link_class_name(LinkClass c);

/// The failure-site universe for exhaustive campaigns: every
/// switch-to-switch link (host uplinks excluded) in network construction
/// order, which is deterministic for a given topology spec — site index i
/// names the same physical link in every run, on every thread.
std::vector<net::Link*> switch_links(const topo::BuiltTopology& topo);

LinkClass classify_link(const topo::BuiltTopology& topo,
                        const net::Link& link);

/// Builds the single-link failure scenario for `site` (an index into
/// switch_links). Picks a probe flow directed *under* the link where the
/// topology allows it and searches source ports until the ECMP path
/// crosses the failed link; when no port in the budget crosses (e.g. an
/// across link, which carries no pre-failure traffic by design), the plan
/// is returned with on_path = false and the first candidate flow. Returns
/// nullopt only for an out-of-range site.
std::optional<ScenarioPlan> build_link_site_plan(
    const topo::BuiltTopology& topo, int site,
    net::Protocol proto = net::Protocol::kUdp,
    std::uint16_t base_sport = 20000, int search_budget = 256);

/// How the planned links fail. kCut is the paper's bidirectional
/// interface-down failure; the rest are the adversarial fault models the
/// probe-based detector exists for:
///  - kUnidirectional: only the downward direction (upper layer → lower)
///    is cut. The oracle still sees a transition; a real detector has to
///    discover it from asymmetric hello loss.
///  - kGray: the downward direction silently drops `gray_loss` of its
///    packets. No physical transition ever happens, so oracle-mode
///    detection is structurally blind to it.
///  - kFlap: the link cycles down/up `flap_cycles` times with period
///    `flap_period` (down for half, up for half), ending up — the
///    route-churn generator flap dampening is measured against.
enum class FaultKind { kCut, kUnidirectional, kGray, kFlap };

const char* fault_kind_name(FaultKind kind);
/// Parses "cut" / "unidir" / "gray" / "flap"; nullopt otherwise.
std::optional<FaultKind> parse_fault_kind(std::string_view name);

struct FaultSpec {
  FaultKind kind = FaultKind::kCut;
  double gray_loss = 1.0;  ///< drop probability for kGray
  sim::Time flap_period = sim::millis(300);
  int flap_cycles = 5;
};

/// The end of `link` on the higher topology layer (core > agg > ToR) —
/// the origin of its downward direction. Across links connect peers;
/// those (and unknown layers) deterministically resolve to end_a.
const net::Node& upper_end(const topo::BuiltTopology& topo,
                           const net::Link& link);

/// Applies `spec` to every link in `plan.fail_links` starting at `when`.
/// kCut goes through the injector exactly as before (byte-identical
/// schedules for existing experiments); kUnidirectional and kGray act on
/// the downward direction per upper_end; kFlap schedules the full
/// down/up train through the injector so the history stays auditable.
void apply_fault(const topo::BuiltTopology& topo, FailureInjector& injector,
                 const ScenarioPlan& plan, const FaultSpec& spec,
                 sim::Time when);

}  // namespace f2t::failure
