#include "failure/injector.hpp"

#include "sim/logging.hpp"

namespace f2t::failure {

void FailureInjector::apply(net::Link& link, bool up) {
  history_.push_back(Event{link.id(), network_.simulator().now(), up});
  F2T_LOG(network_.simulator().logger(), sim::LogLevel::kInfo,
          network_.simulator().now(),
          "link " << link.end_a().node->name() << "<->"
                  << link.end_b().node->name() << (up ? " up" : " DOWN"));
  link.set_up(up);
}

void FailureInjector::fail_at(net::Link& link, sim::Time when) {
  network_.simulator().at(when, [this, &link] { apply(link, false); });
}

void FailureInjector::recover_at(net::Link& link, sim::Time when) {
  network_.simulator().at(when, [this, &link] { apply(link, true); });
}

void FailureInjector::fail_for(net::Link& link, sim::Time when,
                               sim::Time duration) {
  fail_at(link, when);
  recover_at(link, when + duration);
}

void FailureInjector::fail_direction_at(net::Link& link, const net::Node& from,
                                        sim::Time when) {
  const auto direction = link.direction_from(from);
  network_.simulator().at(when, [this, &link, direction] {
    history_.push_back(Event{link.id(), network_.simulator().now(), false});
    link.set_direction_up(direction, false);
  });
}

void FailureInjector::recover_direction_at(net::Link& link,
                                           const net::Node& from,
                                           sim::Time when) {
  const auto direction = link.direction_from(from);
  network_.simulator().at(when, [this, &link, direction] {
    history_.push_back(Event{link.id(), network_.simulator().now(), true});
    link.set_direction_up(direction, true);
  });
}

void FailureInjector::fail_switch_at(net::L3Switch& sw, sim::Time when) {
  for (const auto& port : sw.ports()) {
    if (port.link != nullptr) fail_at(*port.link, when);
  }
}

int FailureInjector::active_failures() const {
  int n = 0;
  for (const auto* link :
       const_cast<FailureInjector*>(this)->network_.links()) {
    if (!link->is_up()) ++n;
  }
  return n;
}

}  // namespace f2t::failure
