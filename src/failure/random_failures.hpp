#pragma once

#include "failure/injector.hpp"
#include "sim/random.hpp"

namespace f2t::failure {

/// Random failure process for the Fig 6 experiment: inter-failure gaps and
/// failure durations are log-normal (the shape measured for production
/// DCNs in Gill et al. SIGCOMM'11, which the paper cites), failed links
/// are picked uniformly among switch-to-switch links, and at most
/// `max_concurrent` failures are active at once (the paper's "1 CF" / "5
/// CF" conditions).
struct RandomFailureOptions {
  double interarrival_median_s = 12.0;
  double interarrival_sigma = 0.8;
  double duration_median_s = 8.0;
  double duration_sigma = 0.8;
  int max_concurrent = 1;
  sim::Time start = sim::seconds(5);
  sim::Time stop = sim::seconds(600);
};

class RandomFailureGenerator {
 public:
  RandomFailureGenerator(FailureInjector& injector, sim::Random rng,
                         const RandomFailureOptions& options);

  void start();

  int failures_injected() const { return injected_; }
  int failures_suppressed() const { return suppressed_; }

 private:
  void schedule_next();
  void maybe_fail();

  FailureInjector& injector_;
  sim::Random rng_;
  RandomFailureOptions options_;
  std::vector<net::Link*> candidates_;
  int injected_ = 0;
  int suppressed_ = 0;
};

}  // namespace f2t::failure
