#include "failure/scenarios.hpp"

#include <algorithm>
#include <sstream>

#include "routing/ecmp.hpp"

namespace f2t::failure {

TracedPath trace_route_detailed(const net::Host& src, const net::Host& dst,
                                const net::Packet& probe, int max_hops) {
  TracedPath path;
  if (src.port_count() == 0) return {};
  path.nodes.push_back(&src);
  path.links.push_back(src.port(0).link);
  const net::Node* current = src.port(0).link->peer_of(src).node;
  for (int hop = 0; hop < max_hops; ++hop) {
    path.nodes.push_back(current);
    if (current == &dst) return path;
    const auto* sw = dynamic_cast<const net::L3Switch*>(current);
    if (sw == nullptr) return {};  // ended on a wrong host
    const auto& next_hops = sw->resolve_next_hops(probe.dst);
    if (next_hops.empty()) return {};
    const std::size_t pick = routing::ecmp_select(
        probe, static_cast<std::uint64_t>(sw->id()), next_hops.size());
    net::Link* link = sw->port(next_hops[pick].port).link;
    path.links.push_back(link);
    current = link->peer_of(*sw).node;
  }
  return {};  // loop / too long
}

std::vector<const net::Node*> trace_route(const net::Host& src,
                                          const net::Host& dst,
                                          const net::Packet& probe,
                                          int max_hops) {
  return trace_route_detailed(src, dst, probe, max_hops).nodes;
}

const char* condition_name(Condition c) {
  switch (c) {
    case Condition::kC1: return "C1";
    case Condition::kC2: return "C2";
    case Condition::kC3: return "C3";
    case Condition::kC4: return "C4";
    case Condition::kC5: return "C5";
    case Condition::kC6: return "C6";
    case Condition::kC7: return "C7";
    case Condition::kC8: return "C8";
  }
  return "?";
}

bool condition_requires_f2(Condition c) {
  return c == Condition::kC6 || c == Condition::kC7 || c == Condition::kC8;
}

namespace {

net::Link* ring_link(const topo::BuiltTopology& topo, net::L3Switch* sw,
                     bool right) {
  const auto it = topo.rings.find(sw);
  if (it == topo.rings.end()) return nullptr;
  const auto& ports = right ? it->second.right : it->second.left;
  if (ports.empty()) return nullptr;
  return sw->port(ports.front()).link;
}

std::string link_name(const net::Link* link) {
  return link->end_a().node->name() + "<->" + link->end_b().node->name();
}

/// Attempts to construct `condition` for one concrete 5-tuple; returns
/// nullopt when the traced path lacks the structural prerequisites.
std::optional<ScenarioPlan> try_build(const topo::BuiltTopology& topo,
                                      Condition condition,
                                      net::Protocol proto,
                                      std::uint16_t sport,
                                      std::uint16_t dport) {
  net::Network& network = *topo.network;
  const net::Host* src = topo.hosts.front();
  const net::Host* dst = topo.hosts.back();

  net::Packet probe;
  probe.src = src->addr();
  probe.dst = dst->addr();
  probe.proto = proto;
  probe.sport = sport;
  probe.dport = dport;

  const auto traced = trace_route_detailed(*src, *dst, probe);
  const auto& path = traced.nodes;
  if (path.size() < 5) return std::nullopt;  // expect host,tor,...,tor,host

  // Identify the downward aggregation switch Sx and the destination ToR.
  auto* dst_tor = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[path.size() - 2]));
  auto* sx = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[path.size() - 3]));
  if (dst_tor == nullptr || sx == nullptr) return std::nullopt;
  const int pod_index = topo.pod_of_agg(sx);
  if (pod_index < 0) return std::nullopt;
  const auto& pod = topo.pods[static_cast<std::size_t>(pod_index)];
  const int a = static_cast<int>(std::distance(
      pod.aggs.begin(), std::find(pod.aggs.begin(), pod.aggs.end(), sx)));
  const int width = static_cast<int>(pod.aggs.size());
  net::L3Switch* right = pod.aggs[static_cast<std::size_t>((a + 1) % width)];
  net::L3Switch* left =
      pod.aggs[static_cast<std::size_t>((a - 1 + width) % width)];

  // The core feeding Sx (present whenever src and dst pods differ).
  auto* core = path.size() >= 6
                   ? const_cast<net::L3Switch*>(
                         dynamic_cast<const net::L3Switch*>(
                             path[path.size() - 4]))
                   : nullptr;
  const bool core_on_path =
      core != nullptr &&
      std::find(topo.cores.begin(), topo.cores.end(), core) !=
          topo.cores.end();

  // The exact on-path links (parallel-link aware: the flow's hash picks a
  // specific member, and the scenario must fail that one).
  net::Link* sx_down = traced.links[traced.links.size() - 2];
  net::Link* core_down =
      core_on_path ? traced.links[traced.links.size() - 3] : nullptr;
  if (sx_down == nullptr) return std::nullopt;

  ScenarioPlan plan;
  plan.condition = condition;
  plan.src = src;
  plan.dst = dst;
  plan.sport = sport;
  plan.dport = dport;
  plan.sx = sx;
  plan.dst_tor = dst_tor;

  auto require = [](bool ok) { return ok; };

  switch (condition) {
    case Condition::kC1: {
      if (topo.f2 && !require(network.find_link(*right, *dst_tor) != nullptr &&
                              ring_link(topo, sx, true) != nullptr)) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down};
      break;
    }
    case Condition::kC2: {
      if (!core_on_path || core_down == nullptr) return std::nullopt;
      if (topo.f2) {
        net::Link* core_ring = ring_link(topo, core, true);
        if (core_ring == nullptr) return std::nullopt;
        // The core's right across neighbour must own a downlink into the
        // destination pod (to Sx, its same-position agg).
        net::L3Switch* right_core = dynamic_cast<net::L3Switch*>(
            &network.node(core->port(topo.rings.at(core).right.front())
                              .peer_node));
        if (right_core == nullptr ||
            network.find_link(*right_core, *sx) == nullptr) {
          return std::nullopt;
        }
      }
      plan.fail_links = {core_down};
      break;
    }
    case Condition::kC3: {
      if (!core_on_path || core_down == nullptr) return std::nullopt;
      if (topo.f2) {
        // Both layers must satisfy condition 1 independently (§II-C:
        // "the combination of failures above different layers will not
        // affect the working scheme"): Sx's right across neighbour needs
        // the downlink to the ToR, and the core's right across neighbour
        // needs a downlink into the destination pod.
        if (!require(network.find_link(*right, *dst_tor) != nullptr &&
                     ring_link(topo, sx, true) != nullptr)) {
          return std::nullopt;
        }
        net::Link* core_ring = ring_link(topo, core, true);
        if (core_ring == nullptr) return std::nullopt;
        net::L3Switch* right_core = dynamic_cast<net::L3Switch*>(
            &network.node(core->port(topo.rings.at(core).right.front())
                              .peer_node));
        if (right_core == nullptr ||
            network.find_link(*right_core, *sx) == nullptr) {
          return std::nullopt;
        }
      }
      plan.fail_links = {sx_down, core_down};
      break;
    }
    case Condition::kC4: {
      if (width < 3) return std::nullopt;  // needs a third relay switch
      net::Link* right_down = network.find_link(*right, *dst_tor);
      if (right_down == nullptr) return std::nullopt;
      if (topo.f2) {
        net::L3Switch* right2 =
            pod.aggs[static_cast<std::size_t>((a + 2) % width)];
        if (network.find_link(*right2, *dst_tor) == nullptr) {
          return std::nullopt;
        }
      }
      plan.fail_links = {sx_down, right_down};
      break;
    }
    case Condition::kC5: {
      if (network.find_link(*left, *dst_tor) == nullptr) return std::nullopt;
      for (net::L3Switch* agg : pod.aggs) {
        if (agg == left) continue;
        if (net::Link* link = network.find_link(*agg, *dst_tor)) {
          plan.fail_links.push_back(link);
        }
      }
      if (plan.fail_links.empty()) return std::nullopt;
      break;
    }
    case Condition::kC6: {
      net::Link* across = ring_link(topo, sx, true);
      if (across == nullptr) return std::nullopt;
      if (network.find_link(*left, *dst_tor) == nullptr ||
          ring_link(topo, sx, false) == nullptr) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down, across};
      break;
    }
    case Condition::kC7: {
      net::Link* right_down = network.find_link(*right, *dst_tor);
      net::Link* right_across = ring_link(topo, right, true);
      if (right_down == nullptr || right_across == nullptr) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down, right_down, right_across};
      break;
    }
    case Condition::kC8: {
      net::Link* right_across = ring_link(topo, sx, true);
      net::Link* left_across = ring_link(topo, sx, false);
      if (right_across == nullptr || left_across == nullptr) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down, right_across, left_across};
      break;
    }
  }

  std::ostringstream os;
  os << condition_name(condition) << ": flow " << src->name() << "->"
     << dst->name() << " sport=" << sport << " Sx=" << sx->name()
     << " failing {";
  for (std::size_t i = 0; i < plan.fail_links.size(); ++i) {
    if (i > 0) os << ", ";
    os << link_name(plan.fail_links[i]);
  }
  os << "}";
  plan.description = os.str();
  plan.site_class = condition_name(condition);
  return plan;
}

}  // namespace

std::optional<ScenarioPlan> build_condition(const topo::BuiltTopology& topo,
                                            Condition condition,
                                            net::Protocol proto,
                                            std::uint16_t base_sport,
                                            int search_budget) {
  if (condition_requires_f2(condition) && !topo.f2) return std::nullopt;
  for (int i = 0; i < search_budget; ++i) {
    const auto sport = static_cast<std::uint16_t>(base_sport + i);
    if (auto plan = try_build(topo, condition, proto, sport, 9000)) {
      return plan;
    }
  }
  return std::nullopt;
}

const char* link_class_name(LinkClass c) {
  switch (c) {
    case LinkClass::kTorAgg: return "tor-agg";
    case LinkClass::kAggCore: return "agg-core";
    case LinkClass::kAcross: return "across";
    case LinkClass::kOther: return "other";
  }
  return "?";
}

std::vector<net::Link*> switch_links(const topo::BuiltTopology& topo) {
  std::vector<net::Link*> out;
  for (net::Link* link : topo.network->links()) {
    if (dynamic_cast<net::L3Switch*>(link->end_a().node) != nullptr &&
        dynamic_cast<net::L3Switch*>(link->end_b().node) != nullptr) {
      out.push_back(link);
    }
  }
  return out;
}

LinkClass classify_link(const topo::BuiltTopology& topo,
                        const net::Link& link) {
  const auto* a = dynamic_cast<const net::L3Switch*>(link.end_a().node);
  const auto* b = dynamic_cast<const net::L3Switch*>(link.end_b().node);
  if (a == nullptr || b == nullptr) return LinkClass::kOther;
  const auto is_ring_port = [&topo](const net::L3Switch* sw,
                                    net::PortId port) {
    const auto it = topo.rings.find(sw);
    if (it == topo.rings.end()) return false;
    const auto& ring = it->second;
    return std::find(ring.right.begin(), ring.right.end(), port) !=
               ring.right.end() ||
           std::find(ring.left.begin(), ring.left.end(), port) !=
               ring.left.end();
  };
  if (is_ring_port(a, link.end_a().port) || is_ring_port(b, link.end_b().port)) {
    return LinkClass::kAcross;
  }
  const auto layer = [&topo](const net::L3Switch* sw) {
    if (std::find(topo.tors.begin(), topo.tors.end(), sw) != topo.tors.end()) {
      return 0;
    }
    if (std::find(topo.aggs.begin(), topo.aggs.end(), sw) != topo.aggs.end()) {
      return 1;
    }
    if (std::find(topo.cores.begin(), topo.cores.end(), sw) !=
        topo.cores.end()) {
      return 2;
    }
    return -1;
  };
  const int la = layer(a);
  const int lb = layer(b);
  if (la + lb == 1 && la != lb) return LinkClass::kTorAgg;
  if (la + lb == 3 && la != lb) return LinkClass::kAggCore;
  return LinkClass::kOther;
}

std::optional<ScenarioPlan> build_link_site_plan(
    const topo::BuiltTopology& topo, int site, net::Protocol proto,
    std::uint16_t base_sport, int search_budget) {
  const auto links = switch_links(topo);
  if (site < 0 || static_cast<std::size_t>(site) >= links.size()) {
    return std::nullopt;
  }
  net::Link* link = links[static_cast<std::size_t>(site)];
  const LinkClass cls = classify_link(topo, *link);

  // Direct the probe *under* the failed link when the topology tells us
  // where "under" is: a host of the link's ToR end, else a host in the
  // pod of an agg end. This makes most ToR-agg and agg-core sites
  // reachable by some ECMP hash; across links stay off-path by design.
  const auto hosts_under = [&topo](net::Link::End end) -> const net::Host* {
    auto* sw = dynamic_cast<net::L3Switch*>(end.node);
    if (sw == nullptr) return nullptr;
    const auto it = topo.hosts_of_tor.find(sw);
    if (it != topo.hosts_of_tor.end() && !it->second.empty()) {
      return it->second.front();
    }
    const int pod = topo.pod_of_agg(sw);
    if (pod < 0) return nullptr;
    for (const net::L3Switch* tor :
         topo.pods[static_cast<std::size_t>(pod)].tors) {
      const auto ht = topo.hosts_of_tor.find(tor);
      if (ht != topo.hosts_of_tor.end() && !ht->second.empty()) {
        return ht->second.front();
      }
    }
    return nullptr;
  };
  const net::Host* dst = hosts_under(link->end_a());
  if (dst == nullptr) dst = hosts_under(link->end_b());
  if (dst == nullptr) dst = topo.hosts.back();
  const net::Host* src = topo.hosts.front();
  if (topo.tor_of_host(src) == topo.tor_of_host(dst)) src = topo.hosts.back();
  if (src == dst || topo.tor_of_host(src) == topo.tor_of_host(dst)) {
    return std::nullopt;  // degenerate single-ToR topology
  }

  ScenarioPlan plan;
  plan.src = src;
  plan.dst = dst;
  plan.sport = base_sport;
  plan.fail_links = {link};
  plan.site_class = link_class_name(cls);
  plan.on_path = false;

  net::Packet probe;
  probe.src = src->addr();
  probe.dst = dst->addr();
  probe.proto = proto;
  probe.dport = plan.dport;
  for (int i = 0; i < search_budget; ++i) {
    const auto sport = static_cast<std::uint16_t>(base_sport + i);
    probe.sport = sport;
    const auto traced = trace_route_detailed(*src, *dst, probe);
    if (traced.empty()) continue;
    if (std::find(traced.links.begin(), traced.links.end(), link) !=
        traced.links.end()) {
      plan.sport = sport;
      plan.on_path = true;
      break;
    }
  }

  std::ostringstream os;
  os << "L" << site << " (" << link_class_name(cls) << "): flow "
     << src->name() << "->" << dst->name() << " sport=" << plan.sport
     << " failing {" << link_name(link) << "}"
     << (plan.on_path ? "" : " [off-path]");
  plan.description = os.str();
  return plan;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCut: return "cut";
    case FaultKind::kUnidirectional: return "unidir";
    case FaultKind::kGray: return "gray";
    case FaultKind::kFlap: return "flap";
  }
  return "?";
}

std::optional<FaultKind> parse_fault_kind(std::string_view name) {
  if (name == "cut") return FaultKind::kCut;
  if (name == "unidir") return FaultKind::kUnidirectional;
  if (name == "gray") return FaultKind::kGray;
  if (name == "flap") return FaultKind::kFlap;
  return std::nullopt;
}

namespace {

int layer_of(const topo::BuiltTopology& topo, const net::L3Switch* sw) {
  if (std::find(topo.tors.begin(), topo.tors.end(), sw) != topo.tors.end()) {
    return 0;
  }
  if (std::find(topo.aggs.begin(), topo.aggs.end(), sw) != topo.aggs.end()) {
    return 1;
  }
  if (std::find(topo.cores.begin(), topo.cores.end(), sw) !=
      topo.cores.end()) {
    return 2;
  }
  return -1;
}

}  // namespace

const net::Node& upper_end(const topo::BuiltTopology& topo,
                           const net::Link& link) {
  const auto* a = dynamic_cast<const net::L3Switch*>(link.end_a().node);
  const auto* b = dynamic_cast<const net::L3Switch*>(link.end_b().node);
  if (a != nullptr && b != nullptr && layer_of(topo, b) > layer_of(topo, a)) {
    return *link.end_b().node;
  }
  return *link.end_a().node;
}

void apply_fault(const topo::BuiltTopology& topo, FailureInjector& injector,
                 const ScenarioPlan& plan, const FaultSpec& spec,
                 sim::Time when) {
  auto& sim = injector.network().simulator();
  for (net::Link* link : plan.fail_links) {
    switch (spec.kind) {
      case FaultKind::kCut:
        injector.fail_at(*link, when);
        break;
      case FaultKind::kUnidirectional:
        injector.fail_direction_at(*link, upper_end(topo, *link), when);
        break;
      case FaultKind::kGray: {
        // Gray failures never transition the link, so they bypass the
        // injector's up/down history — the link simply starts eating
        // `gray_loss` of the downward direction's packets.
        const auto direction = link->direction_from(upper_end(topo, *link));
        sim.at(when, [link, direction, &sim, rate = spec.gray_loss] {
          link->set_loss_rate(direction, rate, &sim.random());
        });
        break;
      }
      case FaultKind::kFlap:
        for (int cycle = 0; cycle < spec.flap_cycles; ++cycle) {
          const sim::Time down_at = when + cycle * spec.flap_period;
          injector.fail_at(*link, down_at);
          injector.recover_at(*link, down_at + spec.flap_period / 2);
        }
        break;
    }
  }
}

}  // namespace f2t::failure
